package repro_test

// Allocation budget for the per-packet hot path: once the event pool,
// the FIFO rings and the pre-bound link Timers are warm, pushing a
// packet through enqueue → serialization → propagation → delivery
// must not allocate at all. This is the short-mode guard behind
// BenchmarkLinkHotPath's 0 allocs/op.

import (
	"testing"

	"repro/internal/client"
	"repro/internal/flowbatch"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
)

// TestLinkHotPathAllocationBudget pins the tracing-disabled contract:
// with every Tap nil (the default), the link+queue hot path allocates
// nothing — the per-event cost of the disabled tracing subsystem is a
// pointer comparison, not an allocation.
func TestLinkHotPathAllocationBudget(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	l := link.New(s, 100*units.Mbps, units.Millisecond, queue.NewEFPriority(0, 0), &sink)
	var p packet.Packet
	p.Size = 1500
	p.DSCP = packet.EF
	// Warm the pools: event free list, calendar buckets, FIFO ring,
	// in-flight ring.
	for i := 0; i < 200; i++ {
		l.Handle(&p)
		s.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		l.Handle(&p)
		s.Run() // drains the tx-done and delivery events
	})
	if allocs != 0 {
		t.Errorf("link+queue hot path allocates %.2f/op, want 0", allocs)
	}
}

// TestLinkHotPathTracedAllocationBudget pins the tracing-enabled
// budget: with a ring Recorder attached the same path must stay at
// ≤ 1 amortized allocation per simulator event — and in fact stays at
// 0, because Emit writes into storage preallocated at construction.
func TestLinkHotPathTracedAllocationBudget(t *testing.T) {
	s := sim.New(1)
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 4096})
	rec.SetClock(s)
	var sink packet.Sink
	l := link.New(s, 100*units.Mbps, units.Millisecond, queue.NewEFPriority(0, 0), &sink)
	l.Tap, l.Hop = rec, rec.Hop("link")
	var p packet.Packet
	p.Size = 1500
	p.DSCP = packet.EF
	for i := 0; i < 200; i++ {
		l.Handle(&p)
		s.Run()
	}
	allocs := testing.AllocsPerRun(500, func() {
		l.Handle(&p)
		s.Run() // two simulator events plus three trace emissions
	})
	if allocs > 1 {
		t.Errorf("traced link+queue hot path allocates %.2f/op, want <= 1 amortized (expect 0)", allocs)
	}
	if rec.Seen() == 0 {
		t.Fatal("recorder saw nothing — tap not wired")
	}
}

// batchedFixture builds a warmed-up BatchedPaced fan-out — four
// virtual flows on a dense synthetic schedule, folded access chain,
// terminal pooled sink — ready for allocation measurement. The folded
// jitter is zero so the steady state is exactly periodic: like the
// CBR fixture below, an AllocsPerRun=0 pin needs a deterministic
// occupancy envelope (random jitter makes calendar-bucket and
// event-pool capacities chase occasional new maxima — a simulator
// growth trickle, not a per-packet source cost; the jittered path's
// behaviour is pinned byte-identical by the experiment package's
// differential harness instead).
func batchedFixture(tap *ptrace.Recorder) (*sim.Simulator, *flowbatch.BatchedPaced) {
	s := sim.New(1)
	pool := packet.NewPool()
	sched := &flowbatch.Schedule{}
	for i := 0; i < 12000; i++ {
		sched.Entries = append(sched.Entries, flowbatch.Entry{
			At: units.Time(i) * 500 * units.Microsecond, Size: 1200,
			FrameSeq: int32(i / 4), FragIndex: int32(i % 4), FragCount: 4,
		})
	}
	sink := packet.Sink{Pool: pool}
	src := &flowbatch.BatchedPaced{
		Sim: s, Sched: sched, N: 4, BaseFlow: 10, Offset: 7 * units.Millisecond,
		Chain: flowbatch.ChainSpec{AccessRate: 100 * units.Mbps,
			AccessDelay: 500 * units.Microsecond},
		Next: []packet.Handler{&sink}, Pool: pool,
	}
	if tap != nil {
		tap.SetClock(s)
		src.Tap, src.Hop = tap, tap.Hop("vflows")
	}
	src.Start()
	s.RunUntil(200 * units.Millisecond) // warm pools, heaps and rings
	return s, src
}

// TestBatchedSourceAllocationBudget pins the batched fan-out's hot
// path at zero allocations: once the drawn-ahead rings, the merge
// heaps, the event pool and the packet arena are warm, emitting N
// virtual flows' packets through the folded chain allocates nothing.
func TestBatchedSourceAllocationBudget(t *testing.T) {
	s, src := batchedFixture(nil)
	var at units.Time = 200 * units.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		at += 10 * units.Millisecond
		s.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("batched emission hot path allocates %.2f/op, want 0", allocs)
	}
	if src.TotalSent() == 0 {
		t.Fatal("fixture emitted nothing — budget measured an idle simulator")
	}
}

// TestBatchedSourceTracedAllocationBudget pins the same path with a
// ring Recorder attached: Emit writes into preallocated storage, so
// the traced budget is still zero.
func TestBatchedSourceTracedAllocationBudget(t *testing.T) {
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 8192})
	s, src := batchedFixture(rec)
	var at units.Time = 200 * units.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		at += 10 * units.Millisecond
		s.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("traced batched emission hot path allocates %.2f/op, want 0", allocs)
	}
	if src.TotalSent() == 0 || rec.Seen() == 0 {
		t.Fatal("fixture emitted nothing or tap not wired")
	}
}

// shardPipeline drives the three-stage sharded pipeline of
// internal/flowbatch synchronously — shard arrival walks, jitter
// sequencing, border replay — one lookahead window per step. The
// goroutine pipelining of the real runner is irrelevant to the
// allocation budget (AllocsPerRun is process-global), so the stages
// run inline in the same hand-off order.
type shardPipeline struct {
	border   *sim.Simulator
	src      *flowbatch.BatchedPaced
	sas      []*flowbatch.ShardArrivals
	seq      *flowbatch.JitterSequencer
	chunks   [][]flowbatch.Arrival
	dels     []flowbatch.Delivery
	frontier units.Time
	window   units.Time
}

func (p *shardPipeline) step() {
	p.frontier += p.window
	for i, sa := range p.sas {
		sa.AdvanceTo(p.frontier)
		p.chunks[i] = sa.Out
	}
	p.dels = p.seq.Feed(p.chunks, p.frontier, p.dels[:0])
	for i := range p.dels {
		d := &p.dels[i]
		p.border.RunBefore(d.At)
		p.border.AdvanceTo(d.At)
		p.src.Inject(d.Flow, d.Entry)
	}
	for _, sa := range p.sas {
		sa.Out = sa.Out[:0]
	}
	p.border.RunBefore(p.frontier)
}

// shardedBorderFixture assembles the warmed pipeline: four virtual
// flows dealt round-robin over two shard walkers, the zero-jitter
// degenerate sequencer (periodic steady state — same rationale as
// batchedFixture), and a border link so replay exercises the real
// event path, not just the fan-out.
func shardedBorderFixture(tap *ptrace.Recorder) *shardPipeline {
	s := sim.New(1)
	pool := packet.NewPool()
	sched := &flowbatch.Schedule{}
	for i := 0; i < 12000; i++ {
		sched.Entries = append(sched.Entries, flowbatch.Entry{
			At: units.Time(i) * 500 * units.Microsecond, Size: 1200,
			FrameSeq: int32(i / 4), FragIndex: int32(i % 4), FragCount: 4,
		})
	}
	sink := packet.Sink{Pool: pool}
	l := link.New(s, 100*units.Mbps, 500*units.Microsecond, queue.NewEFPriority(0, 0), &sink)
	l.Pool = pool
	chain := flowbatch.ChainSpec{AccessRate: 100 * units.Mbps,
		AccessDelay: 500 * units.Microsecond}
	src := &flowbatch.BatchedPaced{
		Sim: s, Sched: sched, N: 4, BaseFlow: 10, Offset: 7 * units.Millisecond,
		Chain: chain, Next: []packet.Handler{l}, Pool: pool,
	}
	if tap != nil {
		tap.SetClock(s)
		src.Tap, src.Hop = tap, tap.Hop("vflows")
		l.Tap, l.Hop = tap, tap.Hop("border")
	}
	src.InitReplay()
	base := flowbatch.BaseArrivals(sched, chain)
	const shards = 2
	p := &shardPipeline{border: s, src: src, window: 10 * units.Millisecond,
		chunks: make([][]flowbatch.Arrival, shards)}
	for i := 0; i < shards; i++ {
		sa := &flowbatch.ShardArrivals{Base: base}
		for f := i; f < src.N; f += shards {
			sa.Flows = append(sa.Flows, int32(f))
			sa.Start = append(sa.Start, src.StartOf(f))
		}
		sa.Init()
		p.sas = append(p.sas, sa)
	}
	p.seq = &flowbatch.JitterSequencer{RNG: s.RNG(), N: src.N}
	p.seq.Init()
	for i := 0; i < 20; i++ { // warm buffers, pools, rings
		p.step()
	}
	return p
}

// TestShardBorderMergeAllocationBudget pins the sharded border-merge
// hot path at zero allocations once warm: walking arrivals, merging
// and releasing deliveries, and replaying them through the border
// link must all run on reused buffers, pooled packets and pooled
// events.
func TestShardBorderMergeAllocationBudget(t *testing.T) {
	p := shardedBorderFixture(nil)
	allocs := testing.AllocsPerRun(100, p.step)
	if allocs != 0 {
		t.Errorf("sharded border-merge hot path allocates %.2f/op, want 0", allocs)
	}
	if p.src.TotalSent() == 0 {
		t.Fatal("fixture injected nothing — budget measured an idle pipeline")
	}
}

// TestShardBorderMergeTracedAllocationBudget pins the same path with a
// ring Recorder tapping both the fan-out and the border link: Emit
// writes into preallocated storage, so the traced budget is still
// zero.
func TestShardBorderMergeTracedAllocationBudget(t *testing.T) {
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 8192})
	p := shardedBorderFixture(rec)
	allocs := testing.AllocsPerRun(100, p.step)
	if allocs != 0 {
		t.Errorf("traced sharded border-merge hot path allocates %.2f/op, want 0", allocs)
	}
	if p.src.TotalSent() == 0 || rec.Seen() == 0 {
		t.Fatal("fixture injected nothing or tap not wired")
	}
}

// aggregateFixture warms a class-level Aggregate receiver on a pooled
// delivery stream with varied delays, so the P² sketch markers have
// settled into steady-state interpolation before measurement.
func aggregateFixture(tap *ptrace.Recorder) (*sim.Simulator, *client.Aggregate, func()) {
	s := sim.New(1)
	pool := packet.NewPool()
	agg := client.NewAggregate(s)
	agg.Pool = pool
	if tap != nil {
		tap.SetClock(s)
		agg.Tap, agg.Hop = tap, tap.Hop("class")
	}
	var i units.Time
	deliver := func() {
		for k := 0; k < 8; k++ {
			i++
			p := pool.Get()
			p.Size = 1200
			p.Flow = 42
			// A deterministic sawtooth of one-way delays in [1ms, 9ms):
			// enough spread to keep all three sketches interpolating.
			p.SentAt = s.Now() - units.Millisecond - (i%8)*units.Millisecond
			agg.Handle(p)
		}
	}
	for k := 0; k < 100; k++ {
		deliver()
	}
	return s, agg, deliver
}

// TestAggregateDeliveryAllocationBudget pins the aggregated-stats
// delivery path at zero allocations once warm: counting, the Welford
// moments, and the three P² quantile sketches all run on fixed-size
// state, and the packet returns to its pool.
func TestAggregateDeliveryAllocationBudget(t *testing.T) {
	_, agg, deliver := aggregateFixture(nil)
	allocs := testing.AllocsPerRun(500, deliver)
	if allocs != 0 {
		t.Errorf("aggregate delivery hot path allocates %.2f/op, want 0", allocs)
	}
	if agg.Packets == 0 || agg.Delay.N() == 0 {
		t.Fatal("fixture delivered nothing — budget measured an idle receiver")
	}
}

// TestAggregateDeliveryTracedAllocationBudget pins the same path with
// a ring Recorder attached: the per-delivery Deliver event goes into
// preallocated storage, so the traced budget is still zero.
func TestAggregateDeliveryTracedAllocationBudget(t *testing.T) {
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 8192})
	_, agg, deliver := aggregateFixture(rec)
	allocs := testing.AllocsPerRun(500, deliver)
	if allocs != 0 {
		t.Errorf("traced aggregate delivery hot path allocates %.2f/op, want 0", allocs)
	}
	if agg.Packets == 0 || rec.Seen() == 0 {
		t.Fatal("fixture delivered nothing or tap not wired")
	}
}

// steadyTick is a self-rescheduling timer with a fixed period: the
// simplest workload whose firing spacing the adaptive calendar policy
// can observe and converge on.
type steadyTick struct {
	s   *sim.Simulator
	gap units.Time
	n   int
}

func (a *steadyTick) Fire(now units.Time) {
	a.n++
	a.s.AfterTimer(a.gap, a)
}

// TestAdaptiveWidthAllocationBudget pins the density-tracking path at
// zero allocations warm: the streaming statistics the adaptive policy
// reads (scheduled count, spacing EWMA, per-rebase firing totals) are
// plain counters, and once the width has converged on the observed
// spacing — which the warm-up guarantees, firing ~20k events at a
// fixed 20 µs period across several window rebases — steady-state
// running neither allocates nor moves the width again.
func TestAdaptiveWidthAllocationBudget(t *testing.T) {
	s := sim.New(1)
	tick := &steadyTick{s: s, gap: 20 * units.Microsecond}
	s.AfterTimer(0, tick)
	s.RunUntil(400 * units.Millisecond) // several rebases: width converges
	qs := s.QueueStats()
	if !qs.Adaptive {
		t.Fatal("sim.New did not produce an adaptive queue")
	}
	if qs.WidthMoves == 0 || qs.Width >= sim.DefaultBucketWidth {
		t.Fatalf("width did not converge below the default during warm-up: %+v", qs)
	}
	var at units.Time = 400 * units.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		at += 10 * units.Millisecond
		s.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("adaptive density-tracking path allocates %.2f/op, want 0", allocs)
	}
	after := s.QueueStats()
	if after.WidthMoves != qs.WidthMoves {
		t.Errorf("width moved during steady state: %d -> %d moves (width %v -> %v)",
			qs.WidthMoves, after.WidthMoves, qs.Width, after.Width)
	}
	if after.Rebases == qs.Rebases {
		t.Error("no rebase inside the measured window — budget did not cover migration")
	}
}

// TestPooledSourceAllocationBudget pins the same property for a
// steady-state traffic source feeding a link from a packet pool: the
// whole emit → enqueue → transmit → sink-release cycle reuses pooled
// packets and events.
func TestPooledSourceAllocationBudget(t *testing.T) {
	s := sim.New(1)
	pool := packet.NewPool()
	sink := packet.Sink{Pool: pool}
	l := link.New(s, 100*units.Mbps, 0, queue.NewEFPriority(0, 0), &sink)
	l.Pool = pool
	src := &traffic.CBR{Sim: s, Rate: 10 * units.Mbps, Size: 1500, Next: l, Pool: pool}
	src.Start()
	s.RunUntil(100 * units.Millisecond) // warm
	var at units.Time = 100 * units.Millisecond
	allocs := testing.AllocsPerRun(200, func() {
		at += 10 * units.Millisecond
		s.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("pooled CBR→link cycle allocates %.2f/op, want 0", allocs)
	}
}
