// Command dstrace summarizes a packet-level trace produced by
// `dsbench -trace` (or any ptrace.Data writer): per-hop forwarding
// and drop breakdown, residence-delay percentiles, conditioner
// verdict counts and timeline, and per-flow one-way latency. Both
// trace encodings — JSONL v1 and binary v2 — are accepted
// transparently, and the summary path streams the file through a
// bounded-memory digest, so fleet-scale spilled traces summarize in
// constant space. With -frames it joins the packet trace against the
// client's frame trace and attributes each lost video frame to the
// hop that dropped its fragments — the "why did this point score what
// it did" question the figure tables cannot answer. With -compare it
// diffs two traces' digests per hop and per flow and exits non-zero
// on a threshold breach: a behavioral regression gate for CI. With
// -compare-golden it diffs one trace against a stored .digest file
// (written by `dsbench -trace-digest`), so the baseline side of the
// gate is a small checked-in artifact instead of a full trace.
//
// Examples:
//
//	dsbench -scenario tandem -trace traces/ -trace-verdicts
//	dstrace -in traces/tandem-2border-tok1100000-B3000-s42.ptrace
//	dstrace -in run.ptrace -bucket 500ms
//	dstrace -in run.ptrace -frames run.trace -top 20
//	dstrace -compare base.ptrace candidate.ptrace -rel 0.02 -abs-ms 0.1
//	dstrace -compare-golden golden.digest run.ptrace
//
// Exit codes: 0 success, 1 unreadable input or a -compare /
// -compare-golden breach, 2 usage error or unreadable/truncated/
// garbage trace or digest file.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/ptrace"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the command logic
// is testable in-process (the same pattern dsbench, dsstream and
// vqmtool use). It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dstrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "packet trace file produced by dsbench -trace")
	frames := fs.String("frames", "", "frame trace (dsstream -trace format) to attribute losses against")
	bucket := fs.Duration("bucket", time.Second, "verdict-timeline bucket width")
	top := fs.Int("top", 10, "max lost frames listed individually (0 = all)")
	compare := fs.Bool("compare", false, "diff two traces: dstrace -compare a.ptrace b.ptrace")
	compareGolden := fs.String("compare-golden", "",
		"diff one trace against a stored digest: dstrace -compare-golden golden.digest run.ptrace")
	rel := fs.Float64("rel", 0, "-compare relative tolerance per field (0 = exact)")
	absMS := fs.Float64("abs-ms", 0, "-compare absolute noise floor for delay fields, in ms")
	rows := fs.Int("rows", 20, "-compare max entities listed per delta table (0 = all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *bucket <= 0 {
		fmt.Fprintln(stderr, "dstrace: -bucket must be positive")
		return 2
	}
	if *compare && *compareGolden != "" {
		fmt.Fprintln(stderr, "dstrace: -compare and -compare-golden are mutually exclusive")
		return 2
	}
	if *compareGolden != "" {
		if fs.NArg() != 1 {
			fmt.Fprintln(stderr, "dstrace: -compare-golden needs exactly one trace file")
			return 2
		}
		if *rel < 0 || *absMS < 0 {
			fmt.Fprintln(stderr, "dstrace: -rel and -abs-ms must be non-negative")
			return 2
		}
		return runCompareGolden(*compareGolden, fs.Arg(0), ptrace.Thresholds{
			Rel:     *rel,
			AbsTime: units.Time(*absMS * float64(units.Millisecond)),
		}, *rows, stdout, stderr)
	}
	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "dstrace: -compare needs exactly two trace files")
			return 2
		}
		if *rel < 0 || *absMS < 0 {
			fmt.Fprintln(stderr, "dstrace: -rel and -abs-ms must be non-negative")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), ptrace.Thresholds{
			Rel:     *rel,
			AbsTime: units.Time(*absMS * float64(units.Millisecond)),
		}, units.FromDuration(*bucket), *rows, stdout, stderr)
	}
	if *in == "" {
		fmt.Fprintln(stderr, "dstrace: -in is required")
		return 2
	}

	if *frames != "" {
		// Frame-loss attribution walks the events twice, so this path
		// materializes the trace; the plain summary below streams it.
		d, format, code := readTrace(*in, stderr)
		if code != 0 {
			return code
		}
		fmt.Fprintf(stdout, "trace: %s (%s, %d events, %d hops)\n",
			*in, format, len(d.Events), len(d.Hops))
		fmt.Fprint(stdout, ptrace.Analyze(d, units.FromDuration(*bucket)).Format())
		ff, err := os.Open(*frames)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		ft, err := trace.Read(ff)
		ff.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nframe-loss attribution against %s:\n", *frames)
		fmt.Fprint(stdout, ptrace.AttributeFrameLoss(d, ft).Format(*top))
		return 0
	}

	s, info, code := analyzeFile(*in, units.FromDuration(*bucket), stderr)
	if code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "trace: %s (%s, %d events, %d hops)\n",
		*in, info.Format, info.Events, info.Hops)
	fmt.Fprint(stdout, s.Format())
	return 0
}

// readTrace opens and fully decodes a trace. The non-zero return is
// the process exit code: 1 when the file cannot be opened, 2 when it
// opens but is not a readable trace (garbage or truncated).
func readTrace(path string, stderr io.Writer) (*ptrace.Data, ptrace.Format, int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, ptrace.FormatUnknown, 1
	}
	defer f.Close()
	d, format, err := ptrace.ReadFormat(f)
	if err != nil {
		fmt.Fprintf(stderr, "dstrace: %s: unreadable or truncated trace: %v\n", path, err)
		return nil, format, 2
	}
	return d, format, 0
}

// analyzeFile streams a trace file through the bounded-memory digest,
// with the same exit-code convention as readTrace.
func analyzeFile(path string, bucket units.Time, stderr io.Writer) (*ptrace.Summary, ptrace.StreamInfo, int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, ptrace.StreamInfo{}, 1
	}
	defer f.Close()
	s, info, err := ptrace.AnalyzeStream(f, bucket)
	if err != nil {
		fmt.Fprintf(stderr, "dstrace: %s: unreadable or truncated trace: %v\n", path, err)
		return nil, info, 2
	}
	return s, info, 0
}

// runCompareGolden diffs one trace against a stored digest file: the
// golden side is the small .digest artifact `dsbench -trace-digest`
// wrote, not a full trace. The candidate is analyzed at bucket 0,
// matching how digests are produced; -bucket does not apply here
// (CompareSummaries joins hops and flows, never the timeline). Exit
// codes follow the file-kind convention: an unopenable golden is 1,
// an unreadable (garbage/foreign/stale-version) golden is 2, and any
// threshold breach is 1.
func runCompareGolden(goldenPath, tracePath string, th ptrace.Thresholds, rows int, stdout, stderr io.Writer) int {
	gf, err := os.Open(goldenPath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	golden, err := ptrace.ReadSummary(gf)
	gf.Close()
	if err != nil {
		fmt.Fprintf(stderr, "dstrace: %s: %v\n", goldenPath, err)
		return 2
	}
	s, info, code := analyzeFile(tracePath, 0, stderr)
	if code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "golden: %s\nrun:    %s (%s, %d events)\n",
		goldenPath, tracePath, info.Format, info.Events)
	diff := ptrace.CompareSummaries(golden, s, th)
	fmt.Fprint(stdout, diff.Format(rows))
	if diff.Breaches > 0 {
		fmt.Fprintf(stderr, "dstrace: %d behavioral threshold breach(es) against golden\n", diff.Breaches)
		return 1
	}
	return 0
}

// runCompare digests two traces (any format mix) and renders their
// per-hop/per-flow delta table. Exit 1 on any threshold breach.
func runCompare(pathA, pathB string, th ptrace.Thresholds, bucket units.Time, rows int, stdout, stderr io.Writer) int {
	sa, ia, code := analyzeFile(pathA, bucket, stderr)
	if code != 0 {
		return code
	}
	sb, ib, code := analyzeFile(pathB, bucket, stderr)
	if code != 0 {
		return code
	}
	fmt.Fprintf(stdout, "a: %s (%s, %d events)\nb: %s (%s, %d events)\n",
		pathA, ia.Format, ia.Events, pathB, ib.Format, ib.Events)
	diff := ptrace.CompareSummaries(sa, sb, th)
	fmt.Fprint(stdout, diff.Format(rows))
	if diff.Breaches > 0 {
		fmt.Fprintf(stderr, "dstrace: %d behavioral threshold breach(es)\n", diff.Breaches)
		return 1
	}
	return 0
}
