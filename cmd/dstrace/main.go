// Command dstrace summarizes a packet-level trace produced by
// `dsbench -trace` (or any ptrace.Data writer): per-hop forwarding
// and drop breakdown, residence-delay percentiles, conditioner
// verdict counts and timeline, and per-flow one-way latency. With
// -frames it joins the packet trace against the client's frame trace
// and attributes each lost video frame to the hop that dropped its
// fragments — the "why did this point score what it did" question the
// figure tables cannot answer.
//
// Examples:
//
//	dsbench -scenario tandem -trace traces/ -trace-verdicts
//	dstrace -in traces/tandem-2border-tok1100000-B3000-s42.ptrace
//	dstrace -in run.ptrace -bucket 500ms
//	dstrace -in run.ptrace -frames run.trace -top 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/ptrace"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the command logic
// is testable in-process (the same pattern dsbench, dsstream and
// vqmtool use). It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dstrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "packet trace file produced by dsbench -trace (required)")
	frames := fs.String("frames", "", "frame trace (dsstream -trace format) to attribute losses against")
	bucket := fs.Duration("bucket", time.Second, "verdict-timeline bucket width")
	top := fs.Int("top", 10, "max lost frames listed individually (0 = all)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *in == "" {
		fmt.Fprintln(stderr, "dstrace: -in is required")
		return 2
	}
	if *bucket <= 0 {
		fmt.Fprintln(stderr, "dstrace: -bucket must be positive")
		return 2
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	d, err := ptrace.Read(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "trace: %s (%d hops)\n", *in, len(d.Hops))
	fmt.Fprint(stdout, ptrace.Analyze(d, units.FromDuration(*bucket)).Format())

	if *frames != "" {
		ff, err := os.Open(*frames)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		ft, err := trace.Read(ff)
		ff.Close()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "\nframe-loss attribution against %s:\n", *frames)
		fmt.Fprint(stdout, ptrace.AttributeFrameLoss(d, ft).Format(*top))
	}
	return 0
}
