package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunRequiresInput(t *testing.T) {
	code, _, errOut := runCapture(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-in is required") {
		t.Errorf("stderr %q lacks the usage hint", errOut)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code, _, _ := runCapture(t, "-nope"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-in", "x.ptrace", "-bucket", "-1s"); code != 2 {
		t.Errorf("negative bucket: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-h"); code != 0 {
		t.Errorf("-h: exit non-zero")
	}
}

func TestRunMissingFile(t *testing.T) {
	code, _, errOut := runCapture(t, "-in", filepath.Join(t.TempDir(), "absent.ptrace"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if errOut == "" {
		t.Error("no error reported")
	}
}

func TestRunRejectsNonTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.ptrace")
	if err := os.WriteFile(path, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCapture(t, "-in", path)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "unreadable or truncated trace") {
		t.Errorf("stderr %q does not identify the decode failure", errOut)
	}
}

func TestRunRejectsTruncatedV2(t *testing.T) {
	dir := t.TempDir()
	pt, _ := traceTandem(t, dir)
	d, err := readData(pt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteV2To(&buf); err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.ptrace")
	if err := os.WriteFile(cut, buf.Bytes()[:buf.Len()/2], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCapture(t, "-in", cut)
	if code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, errOut)
	}
	if !strings.Contains(errOut, "unreadable or truncated trace") {
		t.Errorf("stderr %q does not identify the truncation", errOut)
	}
}

func readData(path string) (*ptrace.Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ptrace.Read(f)
}

// traceTandem runs one traced tandem simulation and writes both the
// packet trace and the client frame trace to dir.
func traceTandem(t *testing.T, dir string) (ptracePath, framePath string) {
	t.Helper()
	rec := ptrace.NewRecorder(ptrace.Config{
		Capacity: 1 << 17, Kinds: ptrace.VerdictKinds(),
		Flows: []packet.FlowID{topology.VideoFlow},
	})
	tn := topology.BuildTandem(topology.TandemConfig{
		Seed: 42, Enc: video.CachedCBR(video.Lost(), 1.0e6),
		TokenRate: 1100 * units.Kbps, Depth: 3000, SecondBorder: true,
		Trace: rec,
	})
	tn.Run()

	ptracePath = filepath.Join(dir, "run.ptrace")
	f, err := os.Create(ptracePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Data().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	framePath = filepath.Join(dir, "run.trace")
	ff, err := os.Create(framePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Client.Trace().WriteTo(ff); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	return ptracePath, framePath
}

func TestRunSummarizesTandemTrace(t *testing.T) {
	dir := t.TempDir()
	pt, ft := traceTandem(t, dir)

	code, out, errOut := runCapture(t, "-in", pt)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"per-hop:", "border1", "border2", "client",
		"conditioner verdicts:", "verdict timeline:", "per-flow one-way delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}

	// Join against the frame trace: losses must be attributed, and
	// with two tight borders at least one frame kill lands on one.
	code, out, errOut = runCapture(t, "-in", pt, "-frames", ft, "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "frame-loss attribution") ||
		!strings.Contains(out, "frame kills by hop:") {
		t.Errorf("attribution section missing:\n%s", out)
	}
	if !strings.Contains(out, "border") {
		t.Errorf("no border blamed for any frame:\n%s", out)
	}
}

// TestRunHeaderShowsFormat pins the satellite: the header line names
// the detected encoding and the decoded event count for both formats.
func TestRunHeaderShowsFormat(t *testing.T) {
	dir := t.TempDir()
	pt, _ := traceTandem(t, dir)
	d, err := readData(pt)
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "run-v2.ptrace")
	f, err := os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteV2To(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	code, out, errOut := runCapture(t, "-in", pt)
	if code != 0 {
		t.Fatalf("jsonl: exit %d: %s", code, errOut)
	}
	wantEvents := fmt.Sprintf("%d events", len(d.Events))
	if !strings.Contains(out, "(jsonl, ") || !strings.Contains(out, wantEvents) {
		t.Errorf("jsonl header lacks format/count: %q", firstLine(out))
	}

	code, out, errOut = runCapture(t, "-in", v2)
	if code != 0 {
		t.Fatalf("v2: exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "(binary-v2, ") || !strings.Contains(out, wantEvents) {
		t.Errorf("v2 header lacks format/count: %q", firstLine(out))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func TestCompareUsage(t *testing.T) {
	if code, _, _ := runCapture(t, "-compare", "one.ptrace"); code != 2 {
		t.Errorf("one arg: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-compare", "-rel", "-0.5", "a", "b"); code != 2 {
		t.Errorf("negative rel: exit %d, want 2", code)
	}
}

// TestCompareSelfAndPerturbed pins the tentpole acceptance criteria:
// a run compared against itself (across formats) reports zero deltas
// and exits 0; a perturbed run breaches and exits non-zero.
func TestCompareSelfAndPerturbed(t *testing.T) {
	dir := t.TempDir()
	pt, _ := traceTandem(t, dir)
	d, err := readData(pt)
	if err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "run-v2.ptrace")
	f, err := os.Create(v2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteV2To(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Self-compare, mixing encodings: the digest must be identical.
	code, out, errOut := runCapture(t, "-compare", pt, v2)
	if code != 0 {
		t.Fatalf("self-compare exit %d: %s\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "no behavioral deltas") {
		t.Errorf("self-compare output lacks the clean verdict:\n%s", out)
	}

	// Perturb: drop the last quarter of the events. Counts shift, so
	// the exact (zero-threshold) gate must breach.
	perturbed := &ptrace.Data{Hops: d.Hops, Seen: d.Seen,
		Events: d.Events[:len(d.Events)*3/4]}
	pp := filepath.Join(dir, "perturbed.ptrace")
	pf, err := os.Create(pp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := perturbed.WriteV2To(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	code, out, errOut = runCapture(t, "-compare", pt, pp)
	if code != 1 {
		t.Fatalf("perturbed compare exit %d, want 1: %s", code, errOut)
	}
	if !strings.Contains(out, "BREACH") || !strings.Contains(errOut, "breach") {
		t.Errorf("perturbed compare did not flag breaches:\nstdout:\n%s\nstderr:\n%s", out, errOut)
	}

	// A huge relative tolerance swallows the count shifts: exit 0 even
	// though deltas are listed.
	code, out, errOut = runCapture(t, "-compare", "-rel", "100", "-abs-ms", "1e9", pt, pp)
	if code != 0 {
		t.Fatalf("tolerant compare exit %d, want 0: %s\n%s", code, errOut, out)
	}
}

// writeDigestFor analyzes a trace at bucket 0 (the digest-producer
// convention) and stores its summary as a .digest file.
func writeDigestFor(t *testing.T, tracePath, digestPath string) {
	t.Helper()
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, _, err := ptrace.AnalyzeStream(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	df, err := os.Create(digestPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := ptrace.WriteSummary(df, s); err != nil {
		t.Fatal(err)
	}
	df.Close()
}

func TestCompareGoldenUsage(t *testing.T) {
	if code, _, _ := runCapture(t, "-compare-golden", "g.digest"); code != 2 {
		t.Errorf("zero traces: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-compare-golden", "g.digest", "a.ptrace", "b.ptrace"); code != 2 {
		t.Errorf("two traces: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-compare-golden", "g.digest", "-rel", "-1", "a.ptrace"); code != 2 {
		t.Errorf("negative rel: exit %d, want 2", code)
	}
	code, _, errOut := runCapture(t, "-compare", "-compare-golden", "g.digest", "a.ptrace", "b.ptrace")
	if code != 2 || !strings.Contains(errOut, "mutually exclusive") {
		t.Errorf("compare+compare-golden: exit %d (%q), want 2 with conflict message", code, errOut)
	}
}

// TestCompareGoldenGate pins the golden-digest gate end to end: the
// stored digest passes against the run that produced it, a perturbed
// run breaches with exit 1, a garbage digest is a hard 2, and a
// missing digest file is a 1 like any other unopenable input.
func TestCompareGoldenGate(t *testing.T) {
	dir := t.TempDir()
	pt, _ := traceTandem(t, dir)
	golden := filepath.Join(dir, "golden.digest")
	writeDigestFor(t, pt, golden)

	code, out, errOut := runCapture(t, "-compare-golden", golden, pt)
	if code != 0 {
		t.Fatalf("self gate exit %d: %s\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "no behavioral deltas") || !strings.Contains(out, "golden:") {
		t.Errorf("clean gate output unexpected:\n%s", out)
	}

	// Perturb the run the same way the trace-compare test does: the
	// zero-threshold gate must breach.
	d, err := readData(pt)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := &ptrace.Data{Hops: d.Hops, Seen: d.Seen,
		Events: d.Events[:len(d.Events)*3/4]}
	pp := filepath.Join(dir, "perturbed.ptrace")
	pf, err := os.Create(pp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := perturbed.WriteV2To(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	code, out, errOut = runCapture(t, "-compare-golden", golden, pp)
	if code != 1 {
		t.Fatalf("perturbed gate exit %d, want 1: %s", code, errOut)
	}
	if !strings.Contains(out, "BREACH") || !strings.Contains(errOut, "breach") {
		t.Errorf("perturbed gate did not flag breaches:\nstdout:\n%s\nstderr:\n%s", out, errOut)
	}

	// Garbage digest: opens fine, is not a digest — usage-class 2.
	junk := filepath.Join(dir, "junk.digest")
	if err := os.WriteFile(junk, []byte("not a digest\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCapture(t, "-compare-golden", junk, pt)
	if code != 2 {
		t.Fatalf("junk digest exit %d, want 2: %s", code, errOut)
	}

	// Missing digest file: unopenable input — exit 1.
	code, _, _ = runCapture(t, "-compare-golden", filepath.Join(dir, "absent.digest"), pt)
	if code != 1 {
		t.Fatalf("missing digest exit %d, want 1", code)
	}
}
