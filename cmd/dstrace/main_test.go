package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunRequiresInput(t *testing.T) {
	code, _, errOut := runCapture(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "-in is required") {
		t.Errorf("stderr %q lacks the usage hint", errOut)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if code, _, _ := runCapture(t, "-nope"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-in", "x.ptrace", "-bucket", "-1s"); code != 2 {
		t.Errorf("negative bucket: exit %d, want 2", code)
	}
	if code, _, _ := runCapture(t, "-h"); code != 0 {
		t.Errorf("-h: exit non-zero")
	}
}

func TestRunMissingFile(t *testing.T) {
	code, _, errOut := runCapture(t, "-in", filepath.Join(t.TempDir(), "absent.ptrace"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if errOut == "" {
		t.Error("no error reported")
	}
}

func TestRunRejectsNonTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.ptrace")
	if err := os.WriteFile(path, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCapture(t, "-in", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "ptrace") {
		t.Errorf("stderr %q does not identify the format error", errOut)
	}
}

// traceTandem runs one traced tandem simulation and writes both the
// packet trace and the client frame trace to dir.
func traceTandem(t *testing.T, dir string) (ptracePath, framePath string) {
	t.Helper()
	rec := ptrace.NewRecorder(ptrace.Config{
		Capacity: 1 << 17, Kinds: ptrace.VerdictKinds(),
		Flows: []packet.FlowID{topology.VideoFlow},
	})
	tn := topology.BuildTandem(topology.TandemConfig{
		Seed: 42, Enc: video.CachedCBR(video.Lost(), 1.0e6),
		TokenRate: 1100 * units.Kbps, Depth: 3000, SecondBorder: true,
		Trace: rec,
	})
	tn.Run()

	ptracePath = filepath.Join(dir, "run.ptrace")
	f, err := os.Create(ptracePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Data().WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	framePath = filepath.Join(dir, "run.trace")
	ff, err := os.Create(framePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Client.Trace().WriteTo(ff); err != nil {
		t.Fatal(err)
	}
	ff.Close()
	return ptracePath, framePath
}

func TestRunSummarizesTandemTrace(t *testing.T) {
	dir := t.TempDir()
	pt, ft := traceTandem(t, dir)

	code, out, errOut := runCapture(t, "-in", pt)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	for _, want := range []string{"per-hop:", "border1", "border2", "client",
		"conditioner verdicts:", "verdict timeline:", "per-flow one-way delay"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}

	// Join against the frame trace: losses must be attributed, and
	// with two tight borders at least one frame kill lands on one.
	code, out, errOut = runCapture(t, "-in", pt, "-frames", ft, "-top", "5")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "frame-loss attribution") ||
		!strings.Contains(out, "frame kills by hop:") {
		t.Errorf("attribution section missing:\n%s", out)
	}
	if !strings.Contains(out, "border") {
		t.Errorf("no border blamed for any frame:\n%s", out)
	}
}
