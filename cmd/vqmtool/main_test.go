package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// runCmd invokes the command in-process, returning (exit, stdout,
// stderr).
func runCmd(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// writeTrace saves a synthetic near-perfect frame trace for the Lost
// clip (every 50th frame missing) and returns its path.
func writeTrace(t *testing.T) string {
	t.Helper()
	clip := video.Lost()
	tr := &trace.Trace{ClipFrames: clip.FrameCount()}
	iv := video.FrameInterval()
	for i := 0; i < clip.FrameCount(); i++ {
		if i%50 == 17 {
			continue
		}
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	path := filepath.Join(t.TempDir(), "run.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagValidation(t *testing.T) {
	tracePath := writeTrace(t)
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"missing -in", nil, "-in is required"},
		{"unknown clip", []string{"-in", tracePath, "-clip", "Nosuch"}, "unknown clip"},
		{"bad rate", []string{"-in", tracePath, "-rate", "fast"}, ""},
		{"bad ref rate", []string{"-in", tracePath, "-ref", "x"}, ""},
		{"undefined flag", []string{"-bogus"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if tc.wantErr != "" && !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
		})
	}
}

func TestMissingTraceFileExitsOne(t *testing.T) {
	code, _, stderr := runCmd("-in", filepath.Join(t.TempDir(), "nope.trace"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr)
	}
}

func TestGarbageTraceExitsOne(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.trace")
	if err := os.WriteFile(path, []byte("not a trace\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCmd("-in", path); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}

// TestScoreSmoke scores a synthetic trace end to end, including the
// Figs. 13-14 cross-reference mode and per-segment output.
func TestScoreSmoke(t *testing.T) {
	tracePath := writeTrace(t)
	code, stdout, stderr := runCmd("-in", tracePath, "-clip", "Lost", "-rate", "1.7M")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"trace:", "decodable:", "display slots:", "VQM index:", "calib failures:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}

	code, ref, _ := runCmd("-in", tracePath, "-rate", "1.0M", "-ref", "1.7M", "-segments")
	if code != 0 {
		t.Fatalf("ref-mode exit = %d", code)
	}
	if !strings.Contains(ref, "seg ") {
		t.Errorf("-segments output lacks per-segment rows:\n%s", ref)
	}
}
