// Command vqmtool scores a stored frame timing trace against a
// reference encoding — the offline half of the paper's measurement
// pipeline (§3.1): dsstream plays the role of the instrumented client
// writing the trace; vqmtool plays the role of the ITS VQM tool run
// afterwards over the stored frames.
//
// Example:
//
//	dsstream -testbed qbone -token 1.8M -trace run.trace
//	vqmtool -clip Lost -rate 1.7M -in run.trace
//	vqmtool -clip Lost -rate 1.0M -ref 1.7M -in run.trace   # Figs. 13-14 mode
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/client"
	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the command logic
// is testable in-process (the same pattern dsbench and dsstream use).
// It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vqmtool", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "trace file produced by dsstream -trace (required)")
	clipName := fs.String("clip", "Lost", "Lost or Dark")
	rateStr := fs.String("rate", "1.7M", "encoding rate of the received stream (CBR) or 'wmv'")
	refStr := fs.String("ref", "", "reference encoding rate (default: same as -rate)")
	perSegment := fs.Bool("segments", false, "print per-segment scores")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "vqmtool: -in is required")
		return 2
	}
	clip := video.ByName(*clipName)
	if clip == nil {
		fmt.Fprintf(stderr, "unknown clip %q\n", *clipName)
		return 2
	}
	encode := func(s string) (*video.Encoding, error) {
		if s == "wmv" {
			return video.EncodeVBR(clip, units.BitRate(video.WMVCapKbps)*units.Kbps), nil
		}
		r, err := units.ParseBitRate(s)
		if err != nil {
			return nil, err
		}
		return video.EncodeCBR(clip, r), nil
	}
	enc, err := encode(*rateStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ref := enc
	if *refStr != "" {
		if ref, err = encode(*refStr); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	decoded := tr
	if enc.CBR {
		decoded = client.DecodeMPEG(tr, enc)
	}
	d := render.Conceal(decoded, render.DefaultOptions())
	res := vqm.Score(d, enc, ref, vqm.Options{})

	fmt.Fprintf(stdout, "trace:          %s (%d/%d frames received)\n", *in, len(tr.Records), tr.ClipFrames)
	fmt.Fprintf(stdout, "decodable:      %d (frame loss %.4f)\n",
		len(decoded.Records), decoded.FrameLossFraction())
	fmt.Fprintf(stdout, "display slots:  %d (%d repeats, longest freeze %d)\n",
		len(d.Frames), d.Repeats, d.LongestFreeze())
	fmt.Fprintf(stdout, "VQM index:      %.3f\n", res.Index)
	fmt.Fprintf(stdout, "calib failures: %d of %d segments\n", res.CalibrationFailures, len(res.Segments))
	if *perSegment {
		for i, s := range res.Segments {
			status := "ok"
			if !s.Aligned {
				status = "CALIBRATION FAILED"
			}
			fmt.Fprintf(stdout, "  seg %2d @%5d shift=%4d idx=%.3f %s\n",
				i, s.StartSlot, s.Shift, s.Index, status)
		}
	}
	return 0
}
