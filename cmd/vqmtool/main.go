// Command vqmtool scores a stored frame timing trace against a
// reference encoding — the offline half of the paper's measurement
// pipeline (§3.1): dsstream plays the role of the instrumented client
// writing the trace; vqmtool plays the role of the ITS VQM tool run
// afterwards over the stored frames.
//
// Example:
//
//	dsstream -testbed qbone -token 1.8M -trace run.trace
//	vqmtool -clip Lost -rate 1.7M -in run.trace
//	vqmtool -clip Lost -rate 1.0M -ref 1.7M -in run.trace   # Figs. 13-14 mode
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

func main() {
	in := flag.String("in", "", "trace file produced by dsstream -trace (required)")
	clipName := flag.String("clip", "Lost", "Lost or Dark")
	rateStr := flag.String("rate", "1.7M", "encoding rate of the received stream (CBR) or 'wmv'")
	refStr := flag.String("ref", "", "reference encoding rate (default: same as -rate)")
	perSegment := flag.Bool("segments", false, "print per-segment scores")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "vqmtool: -in is required")
		os.Exit(2)
	}
	clip := video.ByName(*clipName)
	if clip == nil {
		fmt.Fprintf(os.Stderr, "unknown clip %q\n", *clipName)
		os.Exit(2)
	}
	encode := func(s string) (*video.Encoding, error) {
		if s == "wmv" {
			return video.EncodeVBR(clip, units.BitRate(video.WMVCapKbps)*units.Kbps), nil
		}
		r, err := units.ParseBitRate(s)
		if err != nil {
			return nil, err
		}
		return video.EncodeCBR(clip, r), nil
	}
	enc, err := encode(*rateStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	ref := enc
	if *refStr != "" {
		if ref, err = encode(*refStr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	decoded := tr
	if enc.CBR {
		decoded = client.DecodeMPEG(tr, enc)
	}
	d := render.Conceal(decoded, render.DefaultOptions())
	res := vqm.Score(d, enc, ref, vqm.Options{})

	fmt.Printf("trace:          %s (%d/%d frames received)\n", *in, len(tr.Records), tr.ClipFrames)
	fmt.Printf("decodable:      %d (frame loss %.4f)\n",
		len(decoded.Records), decoded.FrameLossFraction())
	fmt.Printf("display slots:  %d (%d repeats, longest freeze %d)\n",
		len(d.Frames), d.Repeats, d.LongestFreeze())
	fmt.Printf("VQM index:      %.3f\n", res.Index)
	fmt.Printf("calib failures: %d of %d segments\n", res.CalibrationFailures, len(res.Segments))
	if *perSegment {
		for i, s := range res.Segments {
			status := "ok"
			if !s.Aligned {
				status = "CALIBRATION FAILED"
			}
			fmt.Printf("  seg %2d @%5d shift=%4d idx=%.3f %s\n",
				i, s.StartSlot, s.Shift, s.Index, status)
		}
	}
}
