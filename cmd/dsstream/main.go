// Command dsstream runs a single streaming experiment and prints the
// network- and application-level outcome, optionally saving the raw
// frame timing trace for offline scoring with vqmtool — the same
// two-step workflow the paper's instrumented clients used.
//
// Examples:
//
//	dsstream -testbed qbone -clip Lost -rate 1.7M -token 1.9M -depth 3000
//	dsstream -testbed local -clip Lost -token 1.3M -depth 4500 -shape
//	dsstream -testbed local -tcp -token 1.5M -trace out.trace
//
// With -scenario it instead regenerates a whole registered figure
// scenario on the parallel runner:
//
//	dsstream -scenario fig7 -parallel 8
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/render"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the command logic
// is testable in-process. It returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsstream", flag.ContinueOnError)
	fs.SetOutput(stderr)
	testbed := fs.String("testbed", "qbone", "qbone or local")
	clipName := fs.String("clip", "Lost", "Lost or Dark")
	rateStr := fs.String("rate", "1.7M", "encoding rate (qbone: CBR target; local uses the WMV cap)")
	tokenStr := fs.String("token", "1.9M", "policer token rate")
	depth := fs.Int64("depth", 3000, "token bucket depth in bytes")
	shape := fs.Bool("shape", false, "shape instead of (qbone) / ahead of (local) the dropping policer")
	tcp := fs.Bool("tcp", false, "local testbed: stream over TCP")
	seed := fs.Uint64("seed", experiment.DefaultSeed, "simulation seed")
	traceOut := fs.String("trace", "", "write the frame timing trace to this file")
	scenario := fs.String("scenario", "", "run a registered figure scenario instead of a single stream")
	parallel := fs.Int("parallel", 0, "scenario worker-pool size (0 = all cores, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *scenario != "" {
		// The single-stream flags have no effect on a registered
		// scenario; reject them rather than silently ignore them.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "scenario", "parallel":
			default:
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			fmt.Fprintf(stderr, "-scenario runs a fixed figure configuration; %s cannot be combined with it\n",
				strings.Join(conflicts, ", "))
			return 2
		}
		s := experiment.Lookup(*scenario)
		if s == nil {
			fmt.Fprintf(stderr, "unknown scenario %q (known: %s)\n",
				*scenario, strings.Join(experiment.Names(), ", "))
			return 2
		}
		fmt.Fprint(stdout, experiment.RunScenario(s, *parallel).Format())
		return 0
	}

	clip := video.ByName(*clipName)
	if clip == nil {
		fmt.Fprintf(stderr, "unknown clip %q\n", *clipName)
		return 2
	}
	token, err := units.ParseBitRate(*tokenStr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	var tr *trace.Trace
	var enc *video.Encoding
	var pktLoss float64

	switch *testbed {
	case "qbone":
		rate, err := units.ParseBitRate(*rateStr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		enc = video.EncodeCBR(clip, rate)
		q := topology.BuildQBone(topology.QBoneConfig{
			Seed: *seed, Enc: enc, TokenRate: token,
			Depth: units.ByteSize(*depth), Shape: *shape,
		})
		q.Client.Tolerance = client.SliceTolerance
		q.Run()
		tr = q.Client.Trace()
		if q.Policer != nil {
			pktLoss = q.Policer.LossFraction()
		}
	case "local":
		enc = video.EncodeVBR(clip, units.BitRate(video.WMVCapKbps)*units.Kbps)
		l := topology.BuildLocal(topology.LocalConfig{
			Seed: *seed, Enc: enc, TokenRate: token,
			Depth: units.ByteSize(*depth), UseShaper: *shape, UseTCP: *tcp,
		})
		if l.UDPClient != nil {
			l.UDPClient.Tolerance = client.SliceTolerance
		}
		l.Run()
		tr = l.Trace()
		pktLoss = l.Policer.LossFraction()
	default:
		fmt.Fprintf(stderr, "unknown testbed %q\n", *testbed)
		return 2
	}

	decoded := tr
	if enc.CBR {
		decoded = client.DecodeMPEG(tr, enc)
	}
	d := render.Conceal(decoded, render.DefaultOptions())
	res := vqm.Score(d, enc, enc, vqm.Options{})

	fmt.Fprintf(stdout, "testbed:        %s\n", *testbed)
	fmt.Fprintf(stdout, "encoding:       %s\n", enc.Name)
	fmt.Fprintf(stdout, "token rate:     %v, depth %d B, shape=%v\n", token, *depth, *shape)
	fmt.Fprintf(stdout, "packet loss:    %.4f\n", pktLoss)
	fmt.Fprintf(stdout, "frame loss:     %.4f (%d of %d frames)\n",
		decoded.FrameLossFraction(), decoded.LostFrames(), decoded.ClipFrames)
	fmt.Fprintf(stdout, "freeze slots:   %d (longest %d)\n", d.Repeats, d.LongestFreeze())
	fmt.Fprintf(stdout, "VQM index:      %.3f  (0 = perfect, 1 = worst)\n", res.Index)
	fmt.Fprintf(stdout, "calib failures: %d of %d segments\n", res.CalibrationFailures, len(res.Segments))

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "trace written:  %s\n", *traceOut)
	}
	return 0
}
