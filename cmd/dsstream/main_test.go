package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCmd invokes the command in-process, returning (exit, stdout,
// stderr).
func runCmd(args ...string) (int, string, string) {
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown testbed", []string{"-testbed", "mars"}, "unknown testbed"},
		{"unknown clip", []string{"-clip", "Nosuch"}, "unknown clip"},
		{"bad token rate", []string{"-token", "fast"}, ""},
		{"bad encoding rate", []string{"-testbed", "qbone", "-rate", "x"}, ""},
		{"unknown scenario", []string{"-scenario", "fig99"}, "unknown scenario"},
		{"scenario flag conflict", []string{"-scenario", "fig7", "-token", "1M"}, "cannot be combined"},
		{"undefined flag", []string{"-bogus"}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCmd(tc.args...)
			if code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
			}
			if tc.wantErr != "" && !strings.Contains(stderr, tc.wantErr) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
		})
	}
}

// TestSingleStreamSmoke runs one real (fast) local stream end to end,
// including the trace-file output — this stays enabled under -short.
func TestSingleStreamSmoke(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "out.trace")
	code, stdout, stderr := runCmd(
		"-testbed", "local", "-clip", "Lost",
		"-token", "2M", "-depth", "4500", "-tcp",
		"-trace", tracePath,
	)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		"testbed:        local", "packet loss:", "frame loss:", "VQM index:", "trace written:",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %q:\n%s", want, stdout)
		}
	}
	if fi, err := os.Stat(tracePath); err != nil || fi.Size() == 0 {
		t.Errorf("trace file missing or empty: %v", err)
	}
}

// TestScenarioSmoke exercises the -scenario path. The full figure grid
// is benchmark-scale, so this runs only without -short.
func TestScenarioSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure scenario is too heavy for -short")
	}
	code, stdout, stderr := runCmd("-scenario", "fig9", "-parallel", "0")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Figure 9") {
		t.Errorf("scenario output missing figure header:\n%s", stdout)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runCmd("-h")
	if code != 0 {
		t.Errorf("-h exit = %d, want 0", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "-testbed") {
		t.Errorf("-h printed no usage:\n%s", stderr)
	}
}
