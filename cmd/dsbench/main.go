// Command dsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dsbench -list
//	dsbench -run all
//	dsbench -run fig7,fig15,table2
//	dsbench -scale 4          # thin token sweeps for a quick pass
//
// Output is plain text, one block per artifact, in the same layout the
// paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/experiment"
	"repro/internal/link"
	"repro/internal/video"
)

type artifact struct {
	name string
	desc string
	run  func(scale int) string
}

// plotMode is set by the -plot flag: render figures as ASCII charts
// in addition to the numeric tables.
var plotMode bool

func render(f *experiment.Figure) string {
	out := f.Format()
	if plotMode {
		out += "\n" + f.Plot(64, 16, false)
	}
	return out
}

func qbone(spec func() experiment.QBoneSpec) func(int) string {
	return func(scale int) string {
		s := spec()
		s.Tokens = experiment.Scale(s.Tokens, scale)
		return render(s.Run())
	}
}

func relative(spec func() experiment.RelativeSpec) func(int) string {
	return func(scale int) string {
		s := spec()
		s.Tokens = experiment.Scale(s.Tokens, scale)
		return render(s.Run())
	}
}

func local(spec func() experiment.LocalSpec) func(int) string {
	return func(scale int) string {
		s := spec()
		s.Tokens = experiment.Scale(s.Tokens, scale)
		return render(s.Run())
	}
}

func artifacts() []artifact {
	return []artifact{
		{"table1", "Frame Relay interface configuration", func(int) string {
			var b strings.Builder
			b.WriteString("Table 1 — Frame Relay interface configuration\n")
			fmt.Fprintf(&b, "%-14s %-10s %-10s %-6s %-6s\n", "Interface", "CIR", "Bc", "Be", "Type")
			for _, r := range videoTable1() {
				fmt.Fprintf(&b, "%-14s %-10.0f %-10d %-6d %-6s\n", r.name, r.cir, r.bc, r.be, r.kind)
			}
			return b.String()
		}},
		{"table2", "MPEG encoding properties of Lost and Dark", func(int) string {
			return video.FormatTable2("Lost", video.Table2(video.Lost())) + "\n" +
				video.FormatTable2("Dark", video.Table2(video.Dark()))
		}},
		{"table3", "Windows Media encoded clip properties", func(int) string {
			return video.FormatTable3([]video.WMVRow{
				video.Table3(video.Lost()), video.Table3(video.Dark()),
			})
		}},
		{"table4", "Summary of experimental configurations", func(int) string {
			return experiment.Table4()
		}},
		{"fig6", "Instantaneous transmission rates of the MPEG clips", func(scale int) string {
			every := 31 * scale
			return experiment.Figure6(video.Lost(), every) + "\n" + experiment.Figure6(video.Dark(), every)
		}},
		{"fig7", "QBone, Lost @ 1.7M", qbone(experiment.Figure7Spec)},
		{"fig8", "QBone, Lost @ 1.5M", qbone(experiment.Figure8Spec)},
		{"fig9", "QBone, Lost @ 1.0M", qbone(experiment.Figure9Spec)},
		{"fig10", "QBone, Dark @ 1.7M", qbone(experiment.Figure10Spec)},
		{"fig11", "QBone, Dark @ 1.5M", qbone(experiment.Figure11Spec)},
		{"fig12", "QBone, Dark @ 1.0M", qbone(experiment.Figure12Spec)},
		{"fig13", "Dark relative quality vs 1.7M reference", relative(experiment.Figure13Spec)},
		{"fig14", "Lost relative quality vs 1.7M reference", relative(experiment.Figure14Spec)},
		{"fig15", "Local testbed, drop policing", local(experiment.Figure15Spec)},
		{"fig16", "Local testbed, shaper + drop policing", local(experiment.Figure16Spec)},
		{"abl-shape", "Ablation: drop vs shape at the QBone border", func(int) string {
			return experiment.AblationShaperVsDrop(experiment.DefaultSeed).Format()
		}},
		{"abl-hops", "Ablation: EF burst accumulation over hop count", func(int) string {
			return experiment.AblationHopCount(experiment.DefaultSeed)
		}},
		{"abl-jitter", "Ablation: pre-policer jitter vs conformance", func(int) string {
			return experiment.AblationJitter(experiment.DefaultSeed)
		}},
		{"abl-af", "Ablation: Assured Forwarding (srTCM + RIO)", func(int) string {
			return experiment.FormatAF(experiment.AblationAF(experiment.DefaultSeed))
		}},
		{"abl-tcp", "Ablation: local TCP, era stack vs RFC 3042", func(int) string {
			return experiment.AblationLocalTCP(experiment.DefaultSeed)
		}},
		{"ef-service", "EF delay/jitter/loss vs cross load", func(int) string {
			return experiment.EFServiceReport(experiment.DefaultSeed)
		}},
	}
}

type frRow struct {
	name string
	cir  float64
	bc   int64
	be   int64
	kind string
}

func videoTable1() []frRow {
	var rows []frRow
	for _, c := range link.Table1() {
		rows = append(rows, frRow{c.Name, float64(c.CIR), c.Bc, c.Be, c.Kind})
	}
	return rows
}

func main() {
	list := flag.Bool("list", false, "list available artifacts")
	run := flag.String("run", "all", "comma-separated artifact names, or 'all'")
	scale := flag.Int("scale", 1, "token-sweep thinning factor (1 = full resolution)")
	plot := flag.Bool("plot", false, "render figures as ASCII charts too")
	flag.Parse()
	plotMode = *plot

	all := artifacts()
	if *list {
		for _, a := range all {
			fmt.Printf("%-8s %s\n", a.name, a.desc)
		}
		return
	}
	want := map[string]bool{}
	if *run != "all" {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var known []string
		for _, a := range all {
			known = append(known, a.name)
		}
		sort.Strings(known)
		for n := range want {
			found := false
			for _, k := range known {
				if k == n {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown artifact %q (known: %s)\n", n, strings.Join(known, ", "))
				os.Exit(2)
			}
		}
	}
	for _, a := range all {
		if *run != "all" && !want[a.name] {
			continue
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(a.run(*scale))
	}
}
