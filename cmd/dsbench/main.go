// Command dsbench regenerates the paper's tables and figures.
//
// Usage:
//
//	dsbench -list
//	dsbench -run all
//	dsbench -run fig7,fig15,table2
//	dsbench -scenario fig9            # one registered scenario
//	dsbench -parallel 8               # worker-pool size (0 = all cores)
//	dsbench -shards 4                 # intra-run sharding per simulation
//	dsbench -scale 4                  # thin token sweeps for a quick pass
//	dsbench -json BENCH.json          # machine-readable scenario results
//	dsbench -scenario tandem -trace traces/   # dump per-point packet traces
//	dsbench -scenario-file dumbbell.scenario.json   # compile + run a config-file scenario
//
// With -trace DIR every scenario point writes a bounded packet-level
// trace (<scenario>-<point>.ptrace) that cmd/dstrace summarizes.
// Tracing is pure observation: figure output is byte-identical with
// and without it. -trace-cap/-trace-head/-trace-sample bound each
// capture; -trace-verdicts restricts it to conditioner verdicts,
// drops and deliveries so the bound covers the whole run.
// -trace-format picks the on-disk encoding (jsonl, the default, or
// the ~5× denser binary v2); -trace-spill streams the complete
// filtered capture to disk during the run, unbounded by -trace-cap
// (always binary v2 — sampling still applies, so -trace-sample
// bounds the file size). -trace-digest additionally writes a
// <point>.digest behavioral summary beside each sealed trace, the
// currency of the `dstrace -compare-golden` gate. Trace files are
// written atomically (temp file + rename), so an interrupted run
// never leaves a torn .ptrace.
//
// Figure scenarios come from the experiment scenario registry and are
// executed on the deterministic runner pool: -parallel changes only
// wall-clock time, never a byte of output. -scenario-file compiles a
// JSON scenario file (internal/scenfile) into the same registry and
// runs it under the identical contract — -shards and -bucket-width
// are honored when the file's declared capabilities allow them and
// rejected up front otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/atomicfile"
	"repro/internal/experiment"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/scenfile"
	"repro/internal/units"
	"repro/internal/video"
)

type artifact struct {
	name string
	desc string
	run  func(scale int) string
}

// plotMode is set by the -plot flag: render figures as ASCII charts
// in addition to the numeric tables.
var plotMode bool

// parallelism is set by the -parallel flag; 0 means GOMAXPROCS.
var parallelism int

// shardCount is set by the -shards flag; > 1 runs each scenario
// point's simulation on the intra-run sharded pipeline. Output is
// byte-identical at any value (the shardeq harness pins this); the
// knob trades cores-per-point against points-in-flight. Scenarios
// whose jobs do not dispatch to a sharded pipeline are rejected up
// front rather than silently ignoring the flag.
var shardCount int

// bucketWidth is set by the -bucket-width flag; nonzero pins every
// simulation's calendar-queue bucket width, disabling the simulator's
// density-adaptive policy (zero, the default, leaves it adaptive). A
// pure perf knob: event order — and therefore every byte of output —
// is width-invariant. Artifacts that cannot honor the pin reject it
// up front (see rejectWidthBlind).
var bucketWidth units.Time

// jsonPath is set by the -json flag; scenario artifacts then record
// machine-readable results (points, wall time, parallelism) that main
// writes out at exit, so BENCH_*.json perf trajectories can accumulate
// across runs.
var jsonPath string

// jsonRecords collects one record per scenario artifact that ran.
var jsonRecords []scenarioRecord

// traceDir and traceCfg are set by the -trace* flags; when traceDir is
// non-empty every scenario artifact dumps per-point packet traces.
// traceFormat picks the encoding ("jsonl" or "v2"), traceSpill
// streams complete captures during the run (implies v2), and
// traceDigest writes a behavioral .digest beside each sealed trace.
var (
	traceDir    string
	traceCfg    ptrace.Config
	traceFormat string
	traceSpill  bool
	traceDigest bool
)

type jsonPoint struct {
	TokenRateBps float64 `json:"token_rate_bps"`
	DepthBytes   int64   `json:"depth_bytes"`
	Label        string  `json:"label,omitempty"`
	FrameLoss    float64 `json:"frame_loss"`
	Quality      float64 `json:"quality"`
	PacketLoss   float64 `json:"packet_loss"`
	// Events and VirtualFlows expose the per-point scaling trajectory:
	// for the batched wide sweeps, events per virtual flow falling as N
	// grows is the recorded sublinearity evidence.
	Events       uint64 `json:"events,omitempty"`
	VirtualFlows int    `json:"virtual_flows,omitempty"`
	// Shards and ShardStallRatio describe the intra-run sharded
	// pipeline when -shards ran the point on it: the effective worker
	// count and the fraction of border replay wall-clock spent blocked
	// on shard chunks.
	Shards          int     `json:"shards,omitempty"`
	ShardStallRatio float64 `json:"shard_stall_ratio,omitempty"`
	// PeakHeapBytes is the live heap sampled right after the point's
	// simulation (meaningful at -parallel 1), and BytesPerVFlow divides
	// it by the point's virtual-flow count: the fleet sweeps record it
	// staying ~flat as N grows into six figures.
	PeakHeapBytes uint64  `json:"peak_heap_bytes,omitempty"`
	BytesPerVFlow float64 `json:"bytes_per_vflow,omitempty"`
	// RunMS is the point's own simulation wall-clock (scenarios that
	// sample it; meaningful at -parallel 1) — the fleet sweeps' direct
	// sublinear-wall-clock evidence.
	RunMS float64 `json:"run_ms,omitempty"`
	// Calendar-queue telemetry: window rebases, the final bucket width
	// (the adaptive policy's converged choice, or the -bucket-width
	// pin) and the share of schedules that landed in the overflow heap.
	QueueRebases       uint64  `json:"queue_rebases,omitempty"`
	QueueWidthUS       float64 `json:"queue_width_us,omitempty"`
	QueueOverflowRatio float64 `json:"queue_overflow_ratio,omitempty"`
	// Classes carries the per-equivalence-class aggregated statistics
	// of mixture points (aggregated-stats mode).
	Classes []jsonClass `json:"classes,omitempty"`
}

// jsonClass is one equivalence class's aggregated statistics in a
// mixture point.
type jsonClass struct {
	Name             string  `json:"name"`
	Flows            int     `json:"flows"`
	ScheduledPackets int64   `json:"scheduled_packets"`
	ScheduledBytes   int64   `json:"scheduled_bytes"`
	Packets          int64   `json:"packets"`
	Bytes            int64   `json:"bytes"`
	DelayMeanMs      float64 `json:"delay_mean_ms"`
	DelayStdMs       float64 `json:"delay_std_ms"`
	DelayP50Ms       float64 `json:"delay_p50_ms"`
	DelayP95Ms       float64 `json:"delay_p95_ms"`
	DelayP99Ms       float64 `json:"delay_p99_ms"`
}

type jsonSeries struct {
	Label  string      `json:"label"`
	Points []jsonPoint `json:"points"`
}

type scenarioRecord struct {
	Name     string `json:"name"`
	Title    string `json:"title"`
	Parallel int    `json:"parallel"`
	Scale    int    `json:"scale"`
	// Shards is the requested intra-run shard count (-shards);
	// ShardStallRatio averages the per-point border stall fractions of
	// the points that actually ran sharded.
	Shards          int     `json:"shards,omitempty"`
	ShardStallRatio float64 `json:"shard_stall_ratio,omitempty"`
	WallMS          float64 `json:"wall_ms"`
	// Events is the total simulator events executed across every point
	// of the scenario; EventsPerSec = Events / wall time is the
	// throughput number the perf trajectory tracks, and AllocsPerEvent
	// is the process-wide heap allocations attributed to each event —
	// the pooled hot paths drive it toward zero.
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// VirtualFlows totals the flows simulated across the scenario
	// (each simulation counted once); EventsPerVFlow = Events /
	// VirtualFlows is the per-flow cost the batched sources drive down
	// as aggregates widen.
	VirtualFlows   int          `json:"virtual_flows,omitempty"`
	EventsPerVFlow float64      `json:"events_per_vflow,omitempty"`
	Series         []jsonSeries `json:"series"`
}

func makeRecord(name string, fig *experiment.Figure, wall time.Duration, scale int, allocs uint64) scenarioRecord {
	rec := scenarioRecord{
		Name: name, Title: fig.Title, Parallel: parallelism, Scale: scale,
		Shards: shardCount,
		WallMS: float64(wall.Microseconds()) / 1000,
	}
	var stallSum float64
	var stallN int
	for _, s := range fig.Series {
		js := jsonSeries{Label: s.Label}
		for _, p := range s.Points {
			rec.Events += p.Events
			rec.VirtualFlows += p.VFlows
			if p.Shards > 1 {
				stallSum += p.StallRatio
				stallN++
			}
			jp := jsonPoint{
				TokenRateBps: float64(p.TokenRate), DepthBytes: int64(p.Depth),
				Label: p.Label, FrameLoss: p.FrameLoss, Quality: p.Quality,
				PacketLoss: p.PacketLoss, Events: p.Events, VirtualFlows: p.VFlows,
				Shards: p.Shards, ShardStallRatio: p.StallRatio,
				PeakHeapBytes: p.HeapBytes, RunMS: p.RunMS,
				QueueRebases:       p.QRebases,
				QueueWidthUS:       float64(p.QWidth) / float64(units.Microsecond),
				QueueOverflowRatio: p.QOverflow,
			}
			if p.VFlows > 0 && p.HeapBytes > 0 {
				jp.BytesPerVFlow = float64(p.HeapBytes) / float64(p.VFlows)
			}
			for _, c := range p.Classes {
				jp.Classes = append(jp.Classes, jsonClass{
					Name: c.Name, Flows: c.Flows,
					ScheduledPackets: c.ScheduledPackets, ScheduledBytes: c.ScheduledBytes,
					Packets: c.Packets, Bytes: c.Bytes,
					DelayMeanMs: c.DelayMeanMs, DelayStdMs: c.DelayStdMs,
					DelayP50Ms: c.DelayP50Ms, DelayP95Ms: c.DelayP95Ms,
					DelayP99Ms: c.DelayP99Ms,
				})
			}
			js.Points = append(js.Points, jp)
		}
		rec.Series = append(rec.Series, js)
	}
	if stallN > 0 {
		rec.ShardStallRatio = stallSum / float64(stallN)
	}
	if secs := wall.Seconds(); secs > 0 {
		rec.EventsPerSec = float64(rec.Events) / secs
	}
	if rec.Events > 0 {
		rec.AllocsPerEvent = float64(allocs) / float64(rec.Events)
	}
	if rec.VirtualFlows > 0 {
		rec.EventsPerVFlow = float64(rec.Events) / float64(rec.VirtualFlows)
	}
	return rec
}

// writeJSON dumps the collected records ("-" means stdout).
func writeJSON(path string) error {
	out := struct {
		Parallel  int              `json:"parallel"`
		Scenarios []scenarioRecord `json:"scenarios"`
	}{Parallel: parallelism, Scenarios: jsonRecords}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	// Atomic like every other artifact: a reader polling for the
	// trajectory file never observes a torn JSON document.
	return atomicfile.WriteFile(path, data)
}

func render(f *experiment.Figure) string {
	out := f.Format()
	if plotMode {
		out += "\n" + f.Plot(64, 16, false)
	}
	return out
}

// scenarioArtifact adapts a registered scenario to the artifact table,
// recording a JSON result when -json is set.
func scenarioArtifact(s experiment.Scenario) artifact {
	return artifact{s.Name(), s.Describe(), func(scale int) string {
		sc := s
		if sl, ok := sc.(experiment.Scalable); ok && scale > 1 {
			sc = sl.Scaled(scale)
		}
		var msBefore runtime.MemStats
		if jsonPath != "" {
			runtime.ReadMemStats(&msBefore)
		}
		var tr *experiment.TraceRequest
		if traceDir != "" {
			tr = &experiment.TraceRequest{Dir: traceDir, Config: traceCfg,
				Format: traceFormat, Spill: traceSpill, Digest: traceDigest}
		}
		start := time.Now()
		fig := experiment.RunScenarioOpts(sc, experiment.RunOptions{
			Parallel: parallelism, Trace: tr, Shards: shardCount,
			BucketWidth: bucketWidth,
		})
		wall := time.Since(start)
		if jsonPath != "" {
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			jsonRecords = append(jsonRecords,
				makeRecord(sc.Name(), fig, wall, scale, msAfter.Mallocs-msBefore.Mallocs))
		}
		out := render(fig)
		if tr != nil {
			out += fmt.Sprintf("\n[%d packet traces written to %s]\n", len(tr.Files()), traceDir)
		}
		return out
	}}
}

func artifacts() []artifact {
	all := []artifact{
		{"table1", "Frame Relay interface configuration", func(int) string {
			var b strings.Builder
			b.WriteString("Table 1 — Frame Relay interface configuration\n")
			fmt.Fprintf(&b, "%-14s %-10s %-10s %-6s %-6s\n", "Interface", "CIR", "Bc", "Be", "Type")
			for _, r := range videoTable1() {
				fmt.Fprintf(&b, "%-14s %-10.0f %-10d %-6d %-6s\n", r.name, r.cir, r.bc, r.be, r.kind)
			}
			return b.String()
		}},
		{"table2", "MPEG encoding properties of Lost and Dark", func(int) string {
			return video.FormatTable2("Lost", video.Table2(video.Lost())) + "\n" +
				video.FormatTable2("Dark", video.Table2(video.Dark()))
		}},
		{"table3", "Windows Media encoded clip properties", func(int) string {
			return video.FormatTable3([]video.WMVRow{
				video.Table3(video.Lost()), video.Table3(video.Dark()),
			})
		}},
		{"table4", "Summary of experimental configurations", func(int) string {
			return experiment.Table4()
		}},
		{"fig6", "Instantaneous transmission rates of the MPEG clips", func(scale int) string {
			every := 31 * scale
			return experiment.Figure6(video.Lost(), every) + "\n" + experiment.Figure6(video.Dark(), every)
		}},
	}
	// Scenarios() is already in natural paper order (fig7 … fig16).
	for _, s := range experiment.Scenarios() {
		all = append(all, scenarioArtifact(s))
	}
	all = append(all,
		artifact{"abl-shape", "Ablation: drop vs shape at the QBone border", func(int) string {
			return experiment.AblationShaperVsDrop(experiment.DefaultSeed).Format()
		}},
		artifact{"abl-hops", "Ablation: EF burst accumulation over hop count", func(int) string {
			return experiment.AblationHopCount(experiment.DefaultSeed)
		}},
		artifact{"abl-jitter", "Ablation: pre-policer jitter vs conformance", func(int) string {
			return experiment.AblationJitter(experiment.DefaultSeed)
		}},
		artifact{"abl-af", "Ablation: Assured Forwarding (srTCM + RIO)", func(int) string {
			return experiment.FormatAF(experiment.AblationAF(experiment.DefaultSeed))
		}},
		artifact{"abl-tcp", "Ablation: local TCP, era stack vs RFC 3042", func(int) string {
			return experiment.AblationLocalTCP(experiment.DefaultSeed)
		}},
		artifact{"ef-service", "EF delay/jitter/loss vs cross load", func(int) string {
			return experiment.EFServiceReport(experiment.DefaultSeed)
		}},
	)
	return all
}

type frRow struct {
	name string
	cir  float64
	bc   int64
	be   int64
	kind string
}

func videoTable1() []frRow {
	var rows []frRow
	for _, c := range link.Table1() {
		rows = append(rows, frRow{c.Name, float64(c.CIR), c.Bc, c.Be, c.Kind})
	}
	return rows
}

// rejectUnshardable exits with a clear error when -shards > 1 was
// combined with scenarios whose jobs would silently ignore it. Only
// the scenarios actually selected for this invocation are checked, so
// e.g. `-run nflow-fleet -shards 4` never trips over fig7.
func rejectUnshardable(names map[string]bool, runAll bool) {
	if shardCount <= 1 {
		return
	}
	var bad []string
	for _, s := range experiment.Scenarios() {
		if (runAll || names[s.Name()]) && !experiment.SupportsSharding(s) {
			bad = append(bad, s.Name())
		}
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr,
			"-shards %d is not supported by: %s (these scenarios run single-simulator jobs; drop -shards or select shard-capable scenarios such as %s)\n",
			shardCount, strings.Join(bad, ", "), strings.Join(shardableNames(), ", "))
		os.Exit(2)
	}
}

// rejectWidthBlind exits with a clear error when -bucket-width was
// combined with artifacts that cannot honor it: everything that is
// not a registered scenario (the static tables, fig6's encoder dump,
// the ablations and the EF service report run fixed internal
// configurations with no width plumbing). Mirrors rejectUnshardable:
// only the artifacts actually selected for this invocation are
// checked, so e.g. `-run nflow-fleet -bucket-width 50us` never trips
// over table1.
func rejectWidthBlind(all []artifact, names map[string]bool, runAll bool) {
	if bucketWidth == 0 {
		return
	}
	if bad := widthBlindSelected(all, names, runAll); len(bad) > 0 {
		fmt.Fprintf(os.Stderr,
			"-bucket-width %v is not honored by: %s (these artifacts run fixed internal configurations; drop -bucket-width or select registered scenarios: %s)\n",
			time.Duration(bucketWidth), strings.Join(bad, ", "), strings.Join(experiment.Names(), ", "))
		os.Exit(2)
	}
}

// widthBlindSelected returns the selected artifact names that would
// silently ignore a -bucket-width pin — everything selected that is
// not a registered scenario.
func widthBlindSelected(all []artifact, names map[string]bool, runAll bool) []string {
	scen := map[string]bool{}
	for _, s := range experiment.Scenarios() {
		scen[s.Name()] = true
	}
	var bad []string
	for _, a := range all {
		if (runAll || names[a.name]) && !scen[a.name] {
			bad = append(bad, a.name)
		}
	}
	return bad
}

// shardableNames lists the registered scenarios whose jobs dispatch to
// the intra-run sharded pipeline.
func shardableNames() []string {
	var out []string
	for _, s := range experiment.Scenarios() {
		if experiment.SupportsSharding(s) {
			out = append(out, s.Name())
		}
	}
	return out
}

// validateScale rejects non-positive -scale values at parse time
// rather than letting a zero or negative thinning factor produce an
// empty sweep deep inside a scenario.
func validateScale(n int) error {
	if n < 1 {
		return fmt.Errorf("-scale must be >= 1, got %d", n)
	}
	return nil
}

// validateTraceFlow rejects negative -trace-flow values: 0 means
// "every flow" by documented contract, but a negative id used to
// silently mean the same thing, turning typos like `-trace-flow -1`
// into unfiltered captures.
func validateTraceFlow(n int) error {
	if n < 0 {
		return fmt.Errorf("-trace-flow must be >= 0 (0 = every flow), got %d", n)
	}
	return nil
}

// resolveTraceFormat decides the on-disk trace encoding. Spilled
// traces are always binary v2 (JSONL's header carries the event count
// up front, so it cannot be streamed during a run): when -trace-format
// was left at its default the upgrade is silent and documented, but an
// explicitly requested jsonl combined with -trace-spill is a
// contradiction, rejected rather than silently overridden.
func resolveTraceFormat(format string, explicit, spill bool) (string, error) {
	switch format {
	case "jsonl":
		if spill {
			if explicit {
				return "", fmt.Errorf("-trace-format jsonl cannot be combined with -trace-spill: spilled traces stream binary v2 (drop one of the flags)")
			}
			return "v2", nil
		}
		return "jsonl", nil
	case "v2":
		return "v2", nil
	default:
		return "", fmt.Errorf("-trace-format must be jsonl or v2, got %q", format)
	}
}

func main() {
	list := flag.Bool("list", false, "list available artifacts")
	run := flag.String("run", "all", "comma-separated artifact names, or 'all'")
	scenario := flag.String("scenario", "", "run one registered scenario by name (see -list)")
	scenarioFile := flag.String("scenario-file", "",
		"compile and register a JSON scenario file (see internal/scenfile); runs it unless -run/-scenario selects otherwise")
	parallel := flag.Int("parallel", 0, "simulation worker-pool size (0 = all cores, 1 = serial)")
	shards := flag.Int("shards", 1,
		"intra-run shard count per simulation (1 = serial; output is identical at any value)")
	bucket := flag.Duration("bucket-width", 0,
		"pin the calendar-queue bucket width, e.g. 50us, disabling width adaptation (0 = adaptive; pure perf knob)")
	scale := flag.Int("scale", 1, "token-sweep thinning factor (1 = full resolution)")
	plot := flag.Bool("plot", false, "render figures as ASCII charts too")
	jsonFlag := flag.String("json", "", "write per-scenario results as JSON to this file (\"-\" = stdout)")
	trace := flag.String("trace", "", "write per-point packet traces (.ptrace) into this directory")
	traceCap := flag.Int("trace-cap", 1<<17, "max events retained per trace")
	traceHead := flag.Int("trace-head", 4096, "events pinned from the start of each run")
	traceSample := flag.Int("trace-sample", 1, "keep 1 event in N after the head fills")
	traceVerdicts := flag.Bool("trace-verdicts", false,
		"capture only conditioner verdicts, drops, deliveries and TCP events")
	traceFlow := flag.Int("trace-flow", 0, "capture only this flow id (0 = every flow)")
	traceFormatFlag := flag.String("trace-format", "jsonl",
		"trace encoding: jsonl (line-oriented v1) or v2 (binary, ~5x denser)")
	traceSpillFlag := flag.Bool("trace-spill", false,
		"stream the complete filtered capture to disk during the run, unbounded by -trace-cap (implies -trace-format v2)")
	traceDigestFlag := flag.Bool("trace-digest", false,
		"write a behavioral .digest beside each sealed trace (requires -trace; input to dstrace -compare-golden)")
	flag.Parse()
	// explicit records which flags the user actually set, so defaults
	// and deliberate choices can be told apart (resolveTraceFormat,
	// scenario-file auto-selection).
	explicit := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	plotMode = *plot
	parallelism = *parallel
	shardCount = *shards
	if *bucket < 0 {
		fmt.Fprintf(os.Stderr, "-bucket-width must be >= 0, got %v\n", *bucket)
		os.Exit(2)
	}
	bucketWidth = units.Time(*bucket)
	if err := validateScale(*scale); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := validateTraceFlow(*traceFlow); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	jsonPath = *jsonFlag
	traceDir = *trace
	traceCfg = ptrace.Config{Capacity: *traceCap, Head: *traceHead, Sample: *traceSample}
	if *traceVerdicts {
		traceCfg.Kinds = ptrace.VerdictKinds()
	}
	if *traceFlow > 0 {
		traceCfg.Flows = []packet.FlowID{packet.FlowID(*traceFlow)}
	}
	traceSpill = *traceSpillFlag
	var formatErr error
	traceFormat, formatErr = resolveTraceFormat(*traceFormatFlag, explicit["trace-format"], traceSpill)
	if formatErr != nil {
		fmt.Fprintln(os.Stderr, formatErr)
		os.Exit(2)
	}
	traceDigest = *traceDigestFlag
	if traceDigest && traceDir == "" {
		fmt.Fprintln(os.Stderr,
			"-trace-digest requires -trace DIR (digests are written beside the traces they summarize)")
		os.Exit(2)
	}
	if *scenarioFile != "" {
		s, err := scenfile.LoadAndRegister(*scenarioFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// A scenario file names one workload; run it by default. An
		// explicit -scenario/-run selection still wins, so a preset
		// re-expressed as a file can be compared against its Go twin
		// in a single invocation.
		if *scenario == "" && !explicit["run"] {
			*scenario = s.Name()
		}
	}

	all := artifacts()
	if *list {
		for _, a := range all {
			fmt.Printf("%-8s %s\n", a.name, a.desc)
		}
		fmt.Printf("\nscenarios (runnable via -scenario): %s\n",
			strings.Join(experiment.Names(), ", "))
		return
	}
	if *scenario != "" {
		s := experiment.Lookup(*scenario)
		if s == nil {
			fmt.Fprintf(os.Stderr, "unknown scenario %q (known: %s)\n",
				*scenario, strings.Join(experiment.Names(), ", "))
			os.Exit(2)
		}
		rejectUnshardable(map[string]bool{s.Name(): true}, false)
		fmt.Println(scenarioArtifact(s).run(*scale))
		if jsonPath != "" {
			if err := writeJSON(jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	want := map[string]bool{}
	if *run != "all" {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var known []string
		for _, a := range all {
			known = append(known, a.name)
		}
		sort.Strings(known)
		for n := range want {
			found := false
			for _, k := range known {
				if k == n {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown artifact %q (known: %s)\n", n, strings.Join(known, ", "))
				os.Exit(2)
			}
		}
	}
	rejectUnshardable(want, *run == "all")
	rejectWidthBlind(all, want, *run == "all")
	for _, a := range all {
		if *run != "all" && !want[a.name] {
			continue
		}
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(a.run(*scale))
	}
	if jsonPath != "" {
		if err := writeJSON(jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
