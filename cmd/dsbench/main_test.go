package main

import "testing"

func TestArtifactRegistry(t *testing.T) {
	all := artifacts()
	if len(all) < 15 {
		t.Fatalf("only %d artifacts registered", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.name == "" || a.desc == "" || a.run == nil {
			t.Errorf("malformed artifact %+v", a)
		}
		if seen[a.name] {
			t.Errorf("duplicate artifact name %q", a.name)
		}
		seen[a.name] = true
	}
	// Every paper artifact must be present.
	for _, want := range []string{
		"table1", "table2", "table3", "table4",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16",
	} {
		if !seen[want] {
			t.Errorf("missing paper artifact %q", want)
		}
	}
}

func TestStaticArtifactsRender(t *testing.T) {
	for _, a := range artifacts() {
		switch a.name {
		case "table1", "table2", "table3", "table4":
			if out := a.run(1); len(out) < 40 {
				t.Errorf("%s output suspiciously short: %q", a.name, out)
			}
		}
	}
}
