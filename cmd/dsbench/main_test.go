package main

import (
	"testing"

	"repro/internal/experiment"
)

func TestArtifactRegistry(t *testing.T) {
	all := artifacts()
	if len(all) < 15 {
		t.Fatalf("only %d artifacts registered", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.name == "" || a.desc == "" || a.run == nil {
			t.Errorf("malformed artifact %+v", a)
		}
		if seen[a.name] {
			t.Errorf("duplicate artifact name %q", a.name)
		}
		seen[a.name] = true
	}
	// Every paper artifact must be present.
	for _, want := range []string{
		"table1", "table2", "table3", "table4",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16",
	} {
		if !seen[want] {
			t.Errorf("missing paper artifact %q", want)
		}
	}
}

// TestScenarioArtifactsComeFromRegistry: every registered scenario
// must be runnable through the artifact table, in natural figure
// order, so `-run figN` and `-scenario figN` reach the same code.
func TestScenarioArtifactsComeFromRegistry(t *testing.T) {
	byName := map[string]artifact{}
	var order []string
	for _, a := range artifacts() {
		byName[a.name] = a
		order = append(order, a.name)
	}
	for _, s := range experiment.Scenarios() {
		a, ok := byName[s.Name()]
		if !ok {
			t.Errorf("registered scenario %q missing from artifact table", s.Name())
			continue
		}
		if a.desc != s.Describe() {
			t.Errorf("%s: artifact desc %q != scenario desc %q", s.Name(), a.desc, s.Describe())
		}
	}
	// fig7 must precede fig10 despite lexicographic order.
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["fig7"] > pos["fig10"] {
		t.Errorf("artifact order not natural: %v", order)
	}
}

func TestStaticArtifactsRender(t *testing.T) {
	for _, a := range artifacts() {
		switch a.name {
		case "table1", "table2", "table3", "table4":
			if out := a.run(1); len(out) < 40 {
				t.Errorf("%s output suspiciously short: %q", a.name, out)
			}
		}
	}
}
