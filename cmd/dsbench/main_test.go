package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/units"
)

func TestArtifactRegistry(t *testing.T) {
	all := artifacts()
	if len(all) < 15 {
		t.Fatalf("only %d artifacts registered", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.name == "" || a.desc == "" || a.run == nil {
			t.Errorf("malformed artifact %+v", a)
		}
		if seen[a.name] {
			t.Errorf("duplicate artifact name %q", a.name)
		}
		seen[a.name] = true
	}
	// Every paper artifact must be present.
	for _, want := range []string{
		"table1", "table2", "table3", "table4",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16",
	} {
		if !seen[want] {
			t.Errorf("missing paper artifact %q", want)
		}
	}
}

// TestScenarioArtifactsComeFromRegistry: every registered scenario
// must be runnable through the artifact table, in natural figure
// order, so `-run figN` and `-scenario figN` reach the same code.
func TestScenarioArtifactsComeFromRegistry(t *testing.T) {
	byName := map[string]artifact{}
	var order []string
	for _, a := range artifacts() {
		byName[a.name] = a
		order = append(order, a.name)
	}
	for _, s := range experiment.Scenarios() {
		a, ok := byName[s.Name()]
		if !ok {
			t.Errorf("registered scenario %q missing from artifact table", s.Name())
			continue
		}
		if a.desc != s.Describe() {
			t.Errorf("%s: artifact desc %q != scenario desc %q", s.Name(), a.desc, s.Describe())
		}
	}
	// fig7 must precede fig10 despite lexicographic order.
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["fig7"] > pos["fig10"] {
		t.Errorf("artifact order not natural: %v", order)
	}
}

func TestStaticArtifactsRender(t *testing.T) {
	for _, a := range artifacts() {
		switch a.name {
		case "table1", "table2", "table3", "table4":
			if out := a.run(1); len(out) < 40 {
				t.Errorf("%s output suspiciously short: %q", a.name, out)
			}
		}
	}
}

// fakeScenario is a no-simulation scenario for exercising the JSON
// recording path.
type fakeScenario struct{}

func (fakeScenario) Name() string     { return "fake" }
func (fakeScenario) Describe() string { return "fake scenario" }
func (fakeScenario) Jobs() []experiment.Job {
	return []experiment.Job{
		func(*experiment.Ctx) experiment.Point {
			return experiment.Point{
				TokenRate: 1.5e6, Depth: 3000, Label: "N=2",
				Evaluation: experiment.Evaluation{FrameLoss: 0.25, Quality: 0.5, PacketLoss: 0.1},
				Events:     1000,
				QRebases:   7, QWidth: 32 * units.Microsecond, QOverflow: 0.125,
			}
		},
	}
}
func (fakeScenario) Assemble(results []experiment.Point) *experiment.Figure {
	return &experiment.Figure{ID: "F", Title: "fake title", XLabel: "Flows",
		Series: []experiment.Series{{Label: "s", Points: results}}}
}

func TestJSONRecording(t *testing.T) {
	oldPath, oldRecords, oldParallel := jsonPath, jsonRecords, parallelism
	defer func() { jsonPath, jsonRecords, parallelism = oldPath, oldRecords, oldParallel }()
	jsonPath = filepath.Join(t.TempDir(), "bench.json")
	jsonRecords = nil
	parallelism = 2

	if out := scenarioArtifact(fakeScenario{}).run(1); !strings.Contains(out, "fake title") {
		t.Fatalf("artifact did not render: %q", out)
	}
	if len(jsonRecords) != 1 {
		t.Fatalf("recorded %d scenarios, want 1", len(jsonRecords))
	}
	if err := writeJSON(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Parallel  int              `json:"parallel"`
		Scenarios []scenarioRecord `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("invalid JSON written: %v\n%s", err, data)
	}
	if got.Parallel != 2 || len(got.Scenarios) != 1 {
		t.Fatalf("bad envelope: %+v", got)
	}
	rec := got.Scenarios[0]
	if rec.Name != "fake" || rec.Parallel != 2 || rec.Scale != 1 || rec.WallMS < 0 {
		t.Errorf("bad record: %+v", rec)
	}
	p := rec.Series[0].Points[0]
	if p.TokenRateBps != 1.5e6 || p.DepthBytes != 3000 || p.Label != "N=2" ||
		p.FrameLoss != 0.25 || p.Quality != 0.5 || p.PacketLoss != 0.1 {
		t.Errorf("bad point: %+v", p)
	}
	if p.QueueRebases != 7 || p.QueueWidthUS != 32 || p.QueueOverflowRatio != 0.125 {
		t.Errorf("queue telemetry not recorded: %+v", p)
	}
}

// TestScaleValidation pins the parse-time -scale contract: a thinning
// factor below 1 is a usage error, never an empty sweep.
func TestScaleValidation(t *testing.T) {
	for _, n := range []int{1, 2, 1000} {
		if err := validateScale(n); err != nil {
			t.Errorf("-scale %d rejected: %v", n, err)
		}
	}
	for _, n := range []int{0, -1, -1000} {
		if err := validateScale(n); err == nil {
			t.Errorf("-scale %d accepted", n)
		}
	}
}

// TestTraceFlowValidation pins the parse-time -trace-flow contract:
// 0 means every flow, negatives are rejected instead of silently
// meaning the same thing.
func TestTraceFlowValidation(t *testing.T) {
	for _, n := range []int{0, 1, 7} {
		if err := validateTraceFlow(n); err != nil {
			t.Errorf("-trace-flow %d rejected: %v", n, err)
		}
	}
	if err := validateTraceFlow(-1); err == nil {
		t.Error("-trace-flow -1 accepted")
	}
}

// TestResolveTraceFormat pins the spill/format interaction: the
// default format silently upgrades to v2 under -trace-spill, but an
// explicitly requested jsonl combined with spill is a contradiction
// and must be rejected, not overridden.
func TestResolveTraceFormat(t *testing.T) {
	cases := []struct {
		format          string
		explicit, spill bool
		want            string
		wantErr         bool
	}{
		{"jsonl", false, false, "jsonl", false},
		{"jsonl", true, false, "jsonl", false},
		{"jsonl", false, true, "v2", false}, // silent upgrade at default
		{"jsonl", true, true, "", true},     // explicit contradiction
		{"v2", false, true, "v2", false},
		{"v2", true, false, "v2", false},
		{"proto", true, false, "", true},
	}
	for _, c := range cases {
		got, err := resolveTraceFormat(c.format, c.explicit, c.spill)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("resolveTraceFormat(%q, explicit=%v, spill=%v) = (%q, %v), want (%q, err=%v)",
				c.format, c.explicit, c.spill, got, err, c.want, c.wantErr)
		}
	}
}

// TestWriteJSONAtomic pins the -json publish path: the file appears
// whole under its final name with no temp debris, and a failed write
// (unwritable directory) leaves no destination file at all.
func TestWriteJSONAtomic(t *testing.T) {
	oldPath, oldRecords, oldParallel := jsonPath, jsonRecords, parallelism
	defer func() { jsonPath, jsonRecords, parallelism = oldPath, oldRecords, oldParallel }()
	jsonRecords = nil
	parallelism = 1

	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := writeJSON(path); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		Parallel int `json:"parallel"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &envelope); err != nil {
		t.Fatalf("torn or invalid JSON: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("temp debris left beside bench.json: %v", ents)
	}

	missing := filepath.Join(dir, "no-such-subdir", "bench.json")
	if err := writeJSON(missing); err == nil {
		t.Error("writeJSON into a missing directory succeeded")
	}
	if _, err := os.Stat(missing); !os.IsNotExist(err) {
		t.Errorf("failed write left a destination file: %v", err)
	}
}

// TestWidthBlindSelection pins which artifacts reject -bucket-width:
// exactly the non-scenario ones (static tables, fig6, ablations, the
// EF service report), and only when actually selected.
func TestWidthBlindSelection(t *testing.T) {
	all := artifacts()

	// A pure scenario selection is clean.
	if bad := widthBlindSelected(all, map[string]bool{"fig7": true, "nflow-fleet": true}, false); len(bad) != 0 {
		t.Errorf("scenario-only selection flagged: %v", bad)
	}
	// Static artifacts are width-blind.
	bad := widthBlindSelected(all, map[string]bool{"table1": true, "fig7": true}, false)
	if len(bad) != 1 || bad[0] != "table1" {
		t.Errorf("want [table1], got %v", bad)
	}
	// -run all trips over every non-scenario artifact.
	bad = widthBlindSelected(all, nil, true)
	want := map[string]bool{
		"table1": true, "table2": true, "table3": true, "table4": true,
		"fig6": true, "abl-shape": true, "abl-hops": true, "abl-jitter": true,
		"abl-af": true, "abl-tcp": true, "ef-service": true,
	}
	if len(bad) != len(want) {
		t.Fatalf("run-all width-blind set: got %v, want keys of %v", bad, want)
	}
	for _, n := range bad {
		if !want[n] {
			t.Errorf("unexpectedly width-blind: %q", n)
		}
	}
}
