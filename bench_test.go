package repro_test

// One benchmark per table and figure of the paper (DESIGN.md carries
// the index). Figure benchmarks run scaled-down sweeps (thinned token
// grids, single seed) so `go test -bench=. -benchmem` finishes in
// minutes while still exercising the full pipeline; cmd/dsbench runs
// the full-resolution versions.

import (
	"fmt"
	"testing"

	"repro/internal/experiment"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

// --- Tables ---

func BenchmarkTable1FrameRelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New(1)
		var sink packet.Sink
		l := link.NewFrameRelay(s, link.Table1()[0], units.Millisecond, queue.NewEFPriority(100, 100), &sink)
		for j := 0; j < 1000; j++ {
			j := j
			s.At(units.Time(j)*6*units.Millisecond, func() {
				l.Handle(&packet.Packet{ID: uint64(j), Size: 1500, DSCP: packet.EF})
			})
		}
		s.Run()
		if sink.Count != 1000 {
			b.Fatalf("delivered %d", sink.Count)
		}
	}
}

func BenchmarkTable2MPEGProperties(b *testing.B) {
	clip := video.Lost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := video.Table2(clip)
		if len(rows) != 3 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable3WMVProperties(b *testing.B) {
	lost, dark := video.Lost(), video.Dark()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = video.Table3(lost)
		_ = video.Table3(dark)
	}
}

func BenchmarkTable4Configurations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table4() == "" {
			b.Fatal("empty")
		}
	}
}

// --- Figures ---

func BenchmarkFigure6TransmissionRates(b *testing.B) {
	clip := video.Lost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiment.Figure6(clip, 30)
	}
}

func benchQBone(b *testing.B, spec experiment.QBoneSpec) {
	b.Helper()
	spec.Tokens = experiment.Scale(spec.Tokens, 5)
	spec.Runs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := spec.Run()
		if len(fig.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure7QBoneLost17(b *testing.B)  { benchQBone(b, experiment.Figure7Spec()) }
func BenchmarkFigure8QBoneLost15(b *testing.B)  { benchQBone(b, experiment.Figure8Spec()) }
func BenchmarkFigure9QBoneLost10(b *testing.B)  { benchQBone(b, experiment.Figure9Spec()) }
func BenchmarkFigure10QBoneDark17(b *testing.B) { benchQBone(b, experiment.Figure10Spec()) }
func BenchmarkFigure11QBoneDark15(b *testing.B) { benchQBone(b, experiment.Figure11Spec()) }
func BenchmarkFigure12QBoneDark10(b *testing.B) { benchQBone(b, experiment.Figure12Spec()) }

func benchRelative(b *testing.B, spec experiment.RelativeSpec) {
	b.Helper()
	spec.Tokens = experiment.Scale(spec.Tokens, 5)
	spec.Runs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := spec.Run()
		if len(fig.Series) != 3 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure13DarkRelative(b *testing.B) { benchRelative(b, experiment.Figure13Spec()) }
func BenchmarkFigure14LostRelative(b *testing.B) { benchRelative(b, experiment.Figure14Spec()) }

func benchLocal(b *testing.B, spec experiment.LocalSpec) {
	b.Helper()
	spec.Tokens = experiment.Scale(spec.Tokens, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := spec.Run()
		if len(fig.Series) != 2 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure15LocalDrop(b *testing.B)   { benchLocal(b, experiment.Figure15Spec()) }
func BenchmarkFigure16LocalShaped(b *testing.B) { benchLocal(b, experiment.Figure16Spec()) }

// --- Ablations called out in DESIGN.md ---

func BenchmarkAblationShaperVsDropper(b *testing.B) {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiment.RunQBonePoint(enc, enc, 1.75e6, 3000, experiment.DefaultSeed, 0)
	}
}

func BenchmarkAblationHopCount(b *testing.B) {
	// Multi-hop EF burst accumulation: same profile, more hops.
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiment.RunQBonePoint(enc, enc, 1.1e6, 4500, experiment.DefaultSeed, 0.02)
	}
}

// BenchmarkEndToEndQBone runs one full QBone point — paced server,
// campus jitter, border policer, four EF-priority backbone hops with
// Poisson cross traffic, client reassembly, VQM scoring — on a reused
// packet arena, and reports simulator events/sec. This is the
// end-to-end number BENCH_PR3.json tracks.
func BenchmarkEndToEndQBone(b *testing.B) {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	pool := packet.NewPool()
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		p := experiment.RunQBonePointArena(pool, enc, enc, 1.9e6, 3000, experiment.DefaultSeed, 0.15)
		events += p.Events
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// --- Micro-benchmarks for the hot substrate paths ---

// BenchmarkLinkHotPath measures the full per-packet link path —
// enqueue, serialization event, propagation event, delivery — on a
// delayed link. The transmit path is closure-free (pre-bound
// callbacks), so allocs/op is the two heap events plus nothing else.
func BenchmarkLinkHotPath(b *testing.B) {
	s := sim.New(1)
	var sink packet.Sink
	l := link.New(s, 100*units.Mbps, units.Millisecond, queue.NewEFPriority(0, 0), &sink)
	var p packet.Packet
	p.Size = 1500
	p.DSCP = packet.EF
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Handle(&p)
		s.Run() // drain: one tx-done event, one delivery event
	}
	if sink.Count != b.N {
		b.Fatalf("delivered %d of %d", sink.Count, b.N)
	}
}

func BenchmarkTokenBucketConform(b *testing.B) {
	tb := tokenbucket.NewBucket(2*units.Mbps, 3000)
	now := units.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 6 * units.Millisecond
		tb.Conform(now, 1500)
	}
}

func BenchmarkSRTCMMark(b *testing.B) {
	m := tokenbucket.NewSRTCM(2*units.Mbps, 3000, 6000)
	now := units.Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 2 * units.Millisecond
		m.Mark(now, 1500)
	}
}

func BenchmarkSimulatorEventThroughput(b *testing.B) {
	s := sim.New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(units.Microsecond, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.Run()
}

func BenchmarkEncodeCBR(b *testing.B) {
	clip := video.Lost()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = video.EncodeCBR(clip, 1.5e6)
	}
}

func BenchmarkVQMScore(b *testing.B) {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	iv := video.FrameInterval()
	for i := 0; i < enc.Clip.FrameCount(); i++ {
		if i%97 == 0 {
			continue // sprinkle losses so scoring does real work
		}
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	d := render.Conceal(tr, render.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vqm.ScoreSame(d, enc, vqm.Options{})
	}
}

func BenchmarkConceal(b *testing.B) {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	iv := video.FrameInterval()
	for i := 0; i < enc.Clip.FrameCount(); i++ {
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = render.Conceal(tr, render.DefaultOptions())
	}
}

// --- Calendar-queue bucket-width matrix ---

// benchBucketWidth keeps a 512-event working set live in a simulator
// built with an explicit calendar bucket width, each firing event
// rescheduling itself by the pattern's next inter-event gap. The
// matrix (pattern × width) maps where the calendar degrades: dense
// patterns punish wide buckets (long intra-bucket scans), sparse ones
// punish narrow buckets (empty-bucket walks), bimodal ones stress the
// overflow path. Width is a pure performance knob — firing order is
// identical at every width (the sim package's width-invariance test
// pins that) — so this matrix is the evidence behind the default.
func benchBucketWidth(b *testing.B, width units.Time, gap func(i int) units.Time) {
	s := sim.NewWithBucketWidth(1, width)
	const working = 512
	fired, scheduled := 0, 0
	var tick func()
	tick = func() {
		fired++
		if scheduled < b.N {
			scheduled++
			s.After(gap(scheduled), tick)
		}
	}
	b.ResetTimer()
	for i := 0; i < working && scheduled < b.N; i++ {
		scheduled++
		s.After(gap(i), tick)
	}
	s.Run()
	if fired != scheduled {
		b.Fatalf("fired %d of %d", fired, scheduled)
	}
}

// BenchmarkCalendarBucketWidth is the pattern × width matrix.
func BenchmarkCalendarBucketWidth(b *testing.B) {
	patterns := []struct {
		name string
		gap  func(i int) units.Time
	}{
		// Dense: sub-bucket gaps at the default width — many events per
		// bucket, the intra-bucket ordered-insert path dominates.
		{"dense", func(i int) units.Time {
			return units.Time(i%23+1) * units.Microsecond
		}},
		// Sparse: multi-millisecond gaps — most buckets empty, the
		// empty-bucket advance path dominates.
		{"sparse", func(i int) units.Time {
			return units.Time(i%11+5) * units.Millisecond
		}},
		// Bimodal: microsecond bursts separated by 20 ms silences — the
		// link-lattice-plus-frame-interval shape real runs produce.
		{"bimodal", func(i int) units.Time {
			if i%64 == 0 {
				return 20 * units.Millisecond
			}
			return units.Time(i%3+1) * units.Microsecond
		}},
	}
	widths := []struct {
		name string
		w    units.Time
	}{
		{"w=1us", units.Microsecond},
		{"w=50us", 50 * units.Microsecond},
		{"w=default", sim.DefaultBucketWidth},
		{"w=4ms", 4 * units.Millisecond},
		// Width 0 = the density-adaptive policy: it should track the
		// best pinned column of each pattern once the width converges.
		{"w=adaptive", 0},
	}
	for _, p := range patterns {
		for _, w := range widths {
			p, w := p, w
			b.Run(p.name+"/"+w.name, func(b *testing.B) {
				benchBucketWidth(b, w.w, p.gap)
			})
		}
	}
}

// legacyWidthFor is the retired PR 7 fleet width rule — the anchor
// width at N=10000 shrinking inversely with N, floored at 500 ns —
// kept here so the width-policy bake-off can compare the adaptive
// policy against what it replaced.
func legacyWidthFor(n int) units.Time {
	w := 50 * units.Microsecond
	if n > 10000 {
		w = 50 * units.Microsecond * 10000 / units.Time(n)
	}
	if w < 500 {
		w = 500
	}
	return w
}

// BenchmarkWidthPolicy is the end-to-end width bake-off: three real
// workloads — a wide batched nflow point (dense homogeneous), a fleet
// mixture point (dense two-class), and a tcp local-testbed point
// (sparse, cancel-heavy RTO schedules) — each run with the static
// default width, the retired widthFor rule, and the adaptive policy.
// Output is byte-identical across the three policies (width is never
// semantic); only the wall clock moves. BENCH_PR8.json records this
// matrix as the evidence behind shipping the adaptive default.
func BenchmarkWidthPolicy(b *testing.B) {
	lost := video.CachedCBR(video.Lost(), 1.0e6)
	dark := video.CachedCBR(video.Dark(), 1.5e6)
	wmv := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)

	workloads := []struct {
		name string
		n    int // flow count the widthFor rule sees
		run  func(b *testing.B, width units.Time)
	}{
		{"nflow-wide", 512, func(b *testing.B, width units.Time) {
			m := topology.BuildMultiFlow(topology.MultiFlowConfig{
				Seed: experiment.DefaultSeed, Enc: lost, N: 512,
				TokenRate: 1.3e6, Depth: 4500, BottleneckRate: 24e6,
				BELoad: 0.15, Stagger: 53 * units.Millisecond,
				Batch: true, BucketWidth: width,
			})
			m.Run()
			if m.Bottleneck.Sent == 0 {
				b.Fatal("bottleneck carried nothing")
			}
		}},
		{"fleet", 20000, func(b *testing.B, width units.Time) {
			vn := 17000
			en := 3000
			m := topology.BuildMultiFlow(topology.MultiFlowConfig{
				Seed: experiment.DefaultSeed,
				Classes: []topology.FlowClass{
					{Name: "viewers", Enc: lost, N: vn, TokenRate: 1.3e6,
						Truncate: units.Second,
						Stagger:  4 * units.Second / units.Time(vn)},
					{Name: "elephants", Enc: dark, N: en, TokenRate: 1.95e6,
						Truncate: units.Second, Phase: units.Millisecond,
						Stagger: 4 * units.Second / units.Time(en)},
				},
				Depth: 4500, BottleneckRate: 3.2e9,
				Sched: topology.PriorityBottleneck, BELoad: 0.02,
				Batch: true, AggregateStats: true, BucketWidth: width,
			})
			m.Run()
			if m.Aggregates[0].Packets == 0 {
				b.Fatal("viewer class delivered nothing")
			}
		}},
		{"tcp-heavy", 1, func(b *testing.B, width units.Time) {
			l := topology.BuildLocal(topology.LocalConfig{
				Seed: experiment.DefaultSeed, Enc: wmv,
				TokenRate: 1.3e6, Depth: 3000, UseTCP: true,
				BucketWidth: width,
			})
			l.Run()
			if l.Sim.Fired() == 0 {
				b.Fatal("tcp run fired nothing")
			}
		}},
	}
	for _, wl := range workloads {
		policies := []struct {
			name  string
			width units.Time
		}{
			{"static-default", sim.DefaultBucketWidth},
			{"widthfor", legacyWidthFor(wl.n)},
			{"adaptive", 0},
		}
		for _, pol := range policies {
			wl, pol := wl, pol
			b.Run(wl.name+"/"+pol.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					wl.run(b, pol.width)
				}
			})
		}
	}
}

// BenchmarkNFlowWideSharded runs one nflow-wide grid point (batched,
// 24 Mbps bottleneck, 53 ms stagger) at increasing intra-run shard
// counts. The shards=1 row is the serial baseline; the speedup at 4
// shards on N=512 is the headline number BENCH_PR6.json records, with
// byte-identical output pinned by the shardeq harness.
func BenchmarkNFlowWideSharded(b *testing.B) {
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	for _, n := range []int{128, 512} {
		for _, shards := range []int{1, 2, 4, 8} {
			n, shards := n, shards
			b.Run(fmt.Sprintf("N=%d/shards=%d", n, shards), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m := topology.BuildMultiFlow(topology.MultiFlowConfig{
						Seed: experiment.DefaultSeed, Enc: enc, N: n,
						TokenRate: 1.3e6, Depth: 4500, BottleneckRate: 24e6,
						BELoad: 0.15, Stagger: 53 * units.Millisecond,
						Batch: true, Shards: shards,
					})
					m.Run()
					if m.Bottleneck.Sent == 0 {
						b.Fatal("bottleneck carried nothing")
					}
				}
			})
		}
	}
}

// BenchmarkFleetMixture runs one fleet-style mixture point — two
// equivalence classes on the batched mixture fan-out with aggregated
// per-class receivers — at increasing total flow counts. Events and
// heap growing sublinearly in N here is the micro-scale version of
// what BENCH_PR7.json records for the full nflow-fleet sweep.
func BenchmarkFleetMixture(b *testing.B) {
	viewers := video.CachedCBR(video.Lost(), 1.0e6)
	elephants := video.CachedCBR(video.Dark(), 1.5e6)
	for _, n := range []int{1000, 4000} {
		n := n
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			vn := n * 85 / 100
			en := n - vn
			for i := 0; i < b.N; i++ {
				m := topology.BuildMultiFlow(topology.MultiFlowConfig{
					Seed: experiment.DefaultSeed,
					Classes: []topology.FlowClass{
						{Name: "viewers", Enc: viewers, N: vn, TokenRate: 1.3e6,
							Truncate: units.Second,
							Stagger:  4 * units.Second / units.Time(vn)},
						{Name: "elephants", Enc: elephants, N: en, TokenRate: 1.95e6,
							Truncate: units.Second, Phase: units.Millisecond,
							Stagger: 4 * units.Second / units.Time(en)},
					},
					Depth: 4500, BottleneckRate: 650e6,
					Sched: topology.PriorityBottleneck, BELoad: 0.02,
					Batch: true, AggregateStats: true,
				})
				m.Run()
				if m.Aggregates[0].Packets == 0 {
					b.Fatal("viewer class delivered nothing")
				}
			}
		})
	}
}

// BenchmarkNFlowPoint contrasts one wide nflow grid point built on N
// real paced servers (per-flow access chains, per-frame closures)
// against the flow-batched fan-out source covering the same N virtual
// flows — the byte-identical fast path nflow-wide sweeps on.
func BenchmarkNFlowPoint(b *testing.B) {
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	for _, bc := range []struct {
		name  string
		batch bool
	}{{"unbatched", false}, {"batched", true}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := topology.BuildMultiFlow(topology.MultiFlowConfig{
					Seed: experiment.DefaultSeed, Enc: enc, N: 64,
					TokenRate: 1.3e6, Depth: 4500, BottleneckRate: 6e6,
					BELoad: 0.15, Stagger: 53 * units.Millisecond, Batch: bc.batch,
				})
				m.Run()
				if m.Bottleneck.Sent == 0 {
					b.Fatal("bottleneck carried nothing")
				}
			}
		})
	}
}
