package vqm

import (
	"testing"

	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestNearTotalLossScoresWorst is the regression test for the
// zero-segments bug: a stream where only a handful of frames survive
// must score 1, not 0.
func TestNearTotalLossScoresWorst(t *testing.T) {
	enc := lostEnc()
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	// Three stray frames delivered out of 2150.
	for _, seq := range []int{10, 500, 1500} {
		tr.Add(trace.FrameRecord{
			Seq: seq, Arrival: units.Time(seq) * units.Millisecond,
			Presentation: units.Time(seq) * units.Millisecond, Frags: 1,
		})
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.Index < 0.9 {
		t.Errorf("near-total loss scored %v, want ≈1", res.Index)
	}
}

// TestSingleFrameDisplayScoresWorst covers the exact zero-segment path.
func TestSingleFrameDisplayScoresWorst(t *testing.T) {
	enc := lostEnc()
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	tr.Add(trace.FrameRecord{Seq: 0, Frags: 1})
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.Index != 1 {
		t.Errorf("single-frame display scored %v, want 1", res.Index)
	}
	if res.CalibrationFailures == 0 {
		t.Error("unmeasurable clip must count as a calibration failure")
	}
}
