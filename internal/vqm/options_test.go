package vqm

import (
	"testing"

	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

func TestCustomSegmentSizes(t *testing.T) {
	enc := lostEnc()
	d := render.Conceal(perfectTrace(enc.Clip.FrameCount()), render.DefaultOptions())
	res := ScoreSame(d, enc, Options{SegmentFrames: 150, OverlapFrames: 50, AlignUncertainty: 40})
	if res.Index > 0.02 {
		t.Errorf("perfect stream with custom segmentation scored %v", res.Index)
	}
	// 2150 frames / stride 100 ≈ 21 segments.
	if len(res.Segments) < 18 || len(res.Segments) > 23 {
		t.Errorf("segments = %d with stride 100", len(res.Segments))
	}
}

func TestScoreBoundsProperty(t *testing.T) {
	// For arbitrary random loss patterns the index stays in [0, 1].
	enc := lostEnc()
	n := enc.Clip.FrameCount()
	iv := video.FrameInterval()
	for seed := uint64(0); seed < 8; seed++ {
		rng := sim.NewRNG(seed)
		tr := &trace.Trace{ClipFrames: n}
		lossP := rng.Float64() * 0.8
		for i := 0; i < n; i++ {
			if rng.Float64() < lossP {
				continue
			}
			at := units.Time(int64(i)) * iv
			tr.Add(trace.FrameRecord{
				Seq: i, Arrival: at + units.Time(rng.Intn(40))*units.Millisecond,
				Presentation: at, Frags: 1 + rng.Intn(6), LostFrags: rng.Intn(2),
			})
		}
		d := render.Conceal(tr, render.DefaultOptions())
		res := ScoreSame(d, enc, Options{})
		if res.Index < 0 || res.Index > 1 {
			t.Fatalf("seed %d: index %v out of [0,1]", seed, res.Index)
		}
		if res.MOS() < 1 || res.MOS() > 5 {
			t.Fatalf("seed %d: MOS %v out of [1,5]", seed, res.MOS())
		}
	}
}

func TestShortClipScorable(t *testing.T) {
	// A clip shorter than one segment must still produce a verdict.
	clip := &video.Clip{Name: "tiny", Scenes: []video.Scene{{Frames: 200, Motion: 0.5, Detail: 0.5}}}
	// Build features through the public constructor path: ByName only
	// covers the two paper clips, so craft the encoding directly from
	// Lost's prefix instead.
	full := video.Lost()
	enc := video.EncodeCBR(full, 1.0e6)
	_ = clip
	tr := &trace.Trace{ClipFrames: 200}
	iv := video.FrameInterval()
	for i := 0; i < 200; i++ {
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if len(res.Segments) == 0 {
		t.Fatal("no verdict for a short clip")
	}
	if res.Index > 0.05 {
		t.Errorf("clean short clip scored %v", res.Index)
	}
}
