package vqm

import (
	"testing"

	"repro/internal/render"
)

func TestMOSMapping(t *testing.T) {
	cases := []struct {
		index float64
		want  float64
	}{
		{0, 5}, {0.25, 4}, {0.5, 3}, {1, 1},
	}
	for _, c := range cases {
		r := &Result{Index: c.index}
		if got := r.MOS(); got != c.want {
			t.Errorf("MOS(index=%v) = %v, want %v", c.index, got, c.want)
		}
	}
	// Out-of-range indices clamp.
	if (&Result{Index: 1.5}).MOS() != 1 {
		t.Error("MOS below 1 not clamped")
	}
}

func TestColorTermZeroWhenAligned(t *testing.T) {
	enc := lostEnc()
	d := render.Conceal(perfectTrace(enc.Clip.FrameCount()), render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.Index > 0.02 {
		t.Errorf("aligned stream picked up color penalty: %v", res.Index)
	}
	if res.MOS() < 4.9 {
		t.Errorf("MOS = %v for a clean stream", res.MOS())
	}
}
