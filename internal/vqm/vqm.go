// Package vqm is the objective video quality measurement model — the
// stand-in for the ITS VQM tool (ANSI T1.801.03-1996) the paper used.
//
// Like the original, it is a reduced-reference method: it never looks
// at "pixels", only at per-frame feature streams (temporal information
// TI, spatial information SI, color) extracted from the reference clip
// and from the displayed output sequence, and it scores a clip by
//
//  1. segmenting the displayed stream into 300-frame (10 s) segments
//     whose first 100 frames overlap the previous segment (Fig. 3),
//  2. temporally calibrating each segment — searching an alignment
//     shift within the Alignment Uncertainty window by maximizing the
//     correlation of the TI feature histories; segments that cannot be
//     calibrated get the worst quality index 1.0 (§3.1.3),
//  3. computing perception-based parameters (lost motion energy from
//     freezes, added motion from skips, spatial coding distortion) on
//     the frames following the alignment point, and
//  4. combining them into a composite index — 0 is perfect, 1 is the
//     worst the subjective-assessment calibration covers — and
//     averaging segment scores into the clip score.
package vqm

import (
	"math"

	"repro/internal/render"
	"repro/internal/units"
	"repro/internal/video"
)

// Options configures the tool; zero fields take the paper's defaults.
type Options struct {
	SegmentFrames    int     // segment length, default 300 (10 s)
	OverlapFrames    int     // inter-segment overlap, default 100
	AlignUncertainty int     // calibration search half-window, default 100
	CalibThreshold   float64 // min TI correlation to accept alignment
}

func (o Options) withDefaults() Options {
	if o.SegmentFrames == 0 {
		o.SegmentFrames = 300
	}
	if o.OverlapFrames == 0 {
		o.OverlapFrames = 100
	}
	if o.AlignUncertainty == 0 {
		o.AlignUncertainty = 100
	}
	if o.CalibThreshold == 0 {
		o.CalibThreshold = 0.35
	}
	return o
}

// Composite model weights, calibrated once against the behavioural
// targets in DESIGN.md (see vqm tests): a clean stream scores ≈0, a
// segment frozen half the time scores ≈0.8.
const (
	wLostMotion  = 1.30
	powLost      = 0.65
	wAddedMotion = 0.45
	wSpatial     = 1.00
	wDamage      = 2.50  // weight of concealed slice-loss damage
	wColor       = 0.60  // weight of chroma mismatch at aligned frames
	wResidual    = 0.002 // per frame of residual alignment error
)

// SegmentScore is the verdict on one 10-second segment.
type SegmentScore struct {
	StartSlot int
	Aligned   bool
	Shift     int // chosen alignment shift, in frames
	Index     float64
}

// Result is the tool's output for a clip.
type Result struct {
	Segments            []SegmentScore
	Index               float64 // mean of segment indices (the clip score)
	CalibrationFailures int
}

// MOS maps the 0..1 quality index onto the ITU-T five-point mean
// opinion score scale the subjective studies behind the tool used
// (§2.3): index 0 ⇒ MOS 5 (excellent), index 1 ⇒ MOS 1 (bad).
func (r *Result) MOS() float64 {
	return units.Clamp(5-4*r.Index, 1, 5)
}

// featureStreams derives the output feature histories from a displayed
// sequence. outTI[s] is the motion energy the viewer saw at slot s:
// zero during a freeze, the sum of the skipped frames' TI after a jump.
func featureStreams(d *render.Displayed, clip *video.Clip) (outTI []float64) {
	outTI = make([]float64, len(d.Frames))
	prev := -1
	for s, f := range d.Frames {
		switch {
		case f < 0:
			outTI[s] = 0
		case prev < 0:
			outTI[s] = clip.TI[f]
		case f == prev:
			outTI[s] = 0
		case f > prev:
			sum := 0.0
			for k := prev + 1; k <= f && k < len(clip.TI); k++ {
				sum += clip.TI[k]
			}
			outTI[s] = sum
		default:
			outTI[s] = clip.TI[f]
		}
		prev = f
	}
	return outTI
}

// correlation computes the Pearson correlation of two equal-length
// vectors; degenerate (constant) inputs yield 0.
func correlation(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/float64(n), sb/float64(n)
	var cov, va, vb float64
	for i := 0; i < n; i++ {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va <= 1e-12 || vb <= 1e-12 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func refTIAt(clip *video.Clip, i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= len(clip.TI) {
		i = len(clip.TI) - 1
	}
	return clip.TI[i]
}

// Score runs the tool on a displayed sequence.
//
// recv is the encoding that was actually streamed; ref is the encoding
// to score against. For the paper's first experiment set (Figs. 7–12)
// recv == ref: network impairments only. For the relative experiments
// (Figs. 13–14) ref is the 1.7 Mbps encoding, so coding distortion of
// the lower-rate stream contributes to the score.
func Score(d *render.Displayed, recv, ref *video.Encoding, opt Options) *Result {
	opt = opt.withDefaults()
	clip := recv.Clip
	res := &Result{}
	if len(d.Frames) == 0 {
		// Nothing was ever displayed: total failure.
		res.Index = 1
		res.CalibrationFailures = 1
		res.Segments = []SegmentScore{{Aligned: false, Index: 1}}
		return res
	}
	outTI := featureStreams(d, clip)

	step := opt.SegmentFrames - opt.OverlapFrames
	// Rolling anchor: each segment searches around where the previous
	// segment left off, which is how the sequential tool tracked the
	// cumulative playback shift introduced by stalls.
	anchor := 0
	for start := 0; start == 0 || start+opt.OverlapFrames <= len(d.Frames); start += step {
		segLen := opt.SegmentFrames
		if start+segLen > len(d.Frames) {
			segLen = len(d.Frames) - start
		}
		if segLen < opt.OverlapFrames/2 {
			break
		}
		seg := scoreSegment(d, outTI, recv, ref, start, segLen, anchor, opt)
		res.Segments = append(res.Segments, seg)
		if seg.Aligned {
			anchor = seg.Shift
		}
		if !seg.Aligned {
			res.CalibrationFailures++
		}
		if start+segLen >= len(d.Frames) {
			break
		}
	}
	sum := 0.0
	for _, s := range res.Segments {
		sum += s.Index
	}
	if len(res.Segments) > 0 {
		res.Index = sum / float64(len(res.Segments))
	} else {
		// Too little was ever displayed to score even one segment:
		// that is the worst outcome, not a perfect one.
		res.Index = 1
		res.CalibrationFailures++
	}
	return res
}

// scoreSegment calibrates and scores one segment. anchor is the
// playback shift (ref frame minus slot index) the previous segment
// established.
func scoreSegment(d *render.Displayed, outTI []float64, recv, ref *video.Encoding, start, segLen, anchor int, opt Options) SegmentScore {
	clip := recv.Clip
	best, bestShift := math.Inf(-1), 0
	// The tool aligns on the overlap region then scores the frames
	// that follow; use the first OverlapFrames slots for calibration.
	calLen := opt.OverlapFrames
	if calLen > segLen {
		calLen = segLen
	}
	out := outTI[start : start+calLen]
	refVec := make([]float64, calLen)
	for delta := -opt.AlignUncertainty; delta <= opt.AlignUncertainty; delta++ {
		shift := anchor + delta
		for s := 0; s < calLen; s++ {
			refVec[s] = refTIAt(clip, start+s-shift)
		}
		c := correlation(out, refVec)
		if c > best {
			best = c
			bestShift = shift
		}
	}
	seg := SegmentScore{StartSlot: start, Shift: bestShift}
	if best < opt.CalibThreshold {
		// Temporal calibration failed: worst index, per §3.1.3.
		seg.Aligned = false
		seg.Index = 1
		return seg
	}
	seg.Aligned = true

	// Quality parameters over the frames following the alignment
	// region (the "next 100 frames" in the paper; use the remainder
	// of the segment for a denser estimate).
	lo := start + calLen
	hi := start + segLen
	if lo >= hi {
		lo = start
	}
	var refEnergy, lost, added, spatial, damage, color, residual float64
	n := 0
	prevDisp := -1
	if lo > 0 {
		prevDisp = d.Frames[lo-1]
	}
	for s := lo; s < hi; s++ {
		if s < len(d.Damage) {
			damage += d.Damage[s]
		}
		r := s - bestShift // aligned reference frame for this slot
		rt := refTIAt(clip, r)
		refEnergy += rt
		diff := rt - outTI[s]
		if diff > 0 {
			lost += diff
		} else {
			added += -diff
		}
		f := d.Frames[s]
		if f >= 0 && f < len(recv.Frames) {
			dr := recv.Frames[f].Distortion
			ri := r
			if ri < 0 {
				ri = 0
			}
			if ri >= len(ref.Frames) {
				ri = len(ref.Frames) - 1
			}
			ds := dr - ref.Frames[ri].Distortion
			if ds > 0 {
				spatial += ds
			}
			// Chroma comparison: showing the wrong content at an
			// aligned instant surfaces as a color-feature mismatch.
			cd := clip.Color[f] - clip.Color[ri]
			if cd < 0 {
				cd = -cd
			}
			color += cd
			if f != ri && f != prevDisp {
				// Residual misalignment: displayed content drifts
				// from where calibration put it.
				residual += math.Min(30, math.Abs(float64(f-ri)))
			}
		}
		prevDisp = f
	}
	if n = hi - lo; n == 0 {
		seg.Index = 1
		return seg
	}
	if refEnergy < 1e-9 {
		refEnergy = 1e-9
	}
	lostFrac := units.Clamp(lost/refEnergy, 0, 1)
	addedFrac := units.Clamp(added/refEnergy, 0, 2)
	idx := wLostMotion*math.Pow(lostFrac, powLost) +
		wAddedMotion*math.Min(1, addedFrac) +
		wSpatial*(spatial/float64(n)) +
		wDamage*(damage/float64(n)) +
		wColor*(color/float64(n)) +
		wResidual*(residual/float64(n))*30
	seg.Index = units.Clamp(idx, 0, 1)
	return seg
}

// ScoreSame scores a displayed sequence against the encoding that was
// streamed (the Figs. 7–12 configuration).
func ScoreSame(d *render.Displayed, enc *video.Encoding, opt Options) *Result {
	return Score(d, enc, enc, opt)
}
