package vqm

import (
	"testing"

	"repro/internal/render"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

func perfectTrace(n int) *trace.Trace {
	tr := &trace.Trace{ClipFrames: n}
	iv := video.FrameInterval()
	for i := 0; i < n; i++ {
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	return tr
}

func lostEnc() *video.Encoding { return video.EncodeCBR(video.Lost(), 1.7e6) }

func TestPerfectStreamScoresNearZero(t *testing.T) {
	enc := lostEnc()
	d := render.Conceal(perfectTrace(enc.Clip.FrameCount()), render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.Index > 0.02 {
		t.Errorf("perfect stream index = %v, want ≈0", res.Index)
	}
	if res.CalibrationFailures != 0 {
		t.Errorf("calibration failures on perfect stream: %d", res.CalibrationFailures)
	}
}

func TestEmptyDisplayScoresWorst(t *testing.T) {
	enc := lostEnc()
	res := ScoreSame(&render.Displayed{}, enc, Options{})
	if res.Index != 1 {
		t.Errorf("empty display index = %v, want 1", res.Index)
	}
}

func TestQualityMonotoneInBurstLoss(t *testing.T) {
	enc := lostEnc()
	n := enc.Clip.FrameCount()
	score := func(burst int) float64 {
		tr := perfectTrace(n)
		recs := tr.Records[:0]
		for _, r := range tr.Records {
			// Periodic bursts: drop `burst` frames every 300.
			if r.Seq%300 < burst {
				continue
			}
			recs = append(recs, r)
		}
		tr.Records = recs
		d := render.Conceal(tr, render.DefaultOptions())
		return ScoreSame(d, enc, Options{}).Index
	}
	s0, s5, s30, s120 := score(0), score(5), score(30), score(120)
	if !(s0 <= s5 && s5 < s30 && s30 < s120) {
		t.Errorf("not monotone: %v %v %v %v", s0, s5, s30, s120)
	}
	if s120 < 0.5 {
		t.Errorf("40%% loss scored too well: %v", s120)
	}
}

func TestLongFreezeFailsCalibration(t *testing.T) {
	enc := lostEnc()
	n := enc.Clip.FrameCount()
	tr := perfectTrace(n)
	// Drop a 12-second run of frames (longer than a segment): the
	// affected segments cannot calibrate and take index 1 (§3.1.3).
	recs := tr.Records[:0]
	for _, r := range tr.Records {
		if r.Seq >= 600 && r.Seq < 960 {
			continue
		}
		recs = append(recs, r)
	}
	tr.Records = recs
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.CalibrationFailures == 0 {
		t.Error("12s outage did not break temporal calibration")
	}
	failed := false
	for _, s := range res.Segments {
		if !s.Aligned && s.Index == 1 {
			failed = true
		}
	}
	if !failed {
		t.Error("no segment carries the default index 1")
	}
}

func TestCalibrationRecoversAfterStall(t *testing.T) {
	enc := lostEnc()
	n := enc.Clip.FrameCount()
	// A mid-clip 4 s delivery stall shifts the playback timeline; the
	// rolling-anchor calibration must re-lock on later segments.
	tr := &trace.Trace{ClipFrames: n}
	iv := video.FrameInterval()
	for i := 0; i < n; i++ {
		at := units.Time(int64(i)) * iv
		arr := at
		if i >= 900 {
			arr += 4 * units.Second
		}
		tr.Add(trace.FrameRecord{Seq: i, Arrival: arr, Presentation: at, Frags: 1})
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if len(res.Segments) < 5 {
		t.Fatalf("segments = %d", len(res.Segments))
	}
	lastSeg := res.Segments[len(res.Segments)-1]
	if !lastSeg.Aligned {
		t.Error("calibration never recovered after the stall")
	}
	if lastSeg.Shift == 0 {
		t.Error("recovered segment should carry the accumulated shift")
	}
	if lastSeg.Index > 0.05 {
		t.Errorf("clean post-stall segment scored %v", lastSeg.Index)
	}
}

func TestCrossEncodingOffset(t *testing.T) {
	clip := video.Lost()
	ref := video.EncodeCBR(clip, 1.7e6)
	low := video.EncodeCBR(clip, 1.0e6)
	n := clip.FrameCount()
	d := render.Conceal(perfectTrace(n), render.DefaultOptions())
	same := Score(d, ref, ref, Options{}).Index
	rel := Score(d, low, ref, Options{}).Index
	if rel <= same+0.05 {
		t.Errorf("1.0M vs 1.7M reference scored %v, same-ref %v: no coding offset", rel, same)
	}
	if rel > 0.35 {
		t.Errorf("coding offset too large: %v", rel)
	}
}

func TestDamageRaisesScore(t *testing.T) {
	enc := lostEnc()
	n := enc.Clip.FrameCount()
	tr := perfectTrace(n)
	for i := range tr.Records {
		if i%3 == 0 {
			tr.Records[i].Frags = 5
			tr.Records[i].LostFrags = 1
		}
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	if res.Index < 0.1 {
		t.Errorf("pervasive slice damage scored %v, want clearly > 0.1", res.Index)
	}
	if res.CalibrationFailures != 0 {
		t.Error("damage must not break calibration")
	}
}

func TestCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if c := correlation(a, a); c < 0.999 {
		t.Errorf("self correlation = %v", c)
	}
	b := []float64{4, 3, 2, 1}
	if c := correlation(a, b); c > -0.999 {
		t.Errorf("anti correlation = %v", c)
	}
	if c := correlation(a, []float64{5, 5, 5, 5}); c != 0 {
		t.Errorf("constant correlation = %v", c)
	}
	if c := correlation(a, []float64{1, 2}); c != 0 {
		t.Errorf("length mismatch correlation = %v", c)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.SegmentFrames != 300 || o.OverlapFrames != 100 || o.AlignUncertainty != 100 {
		t.Errorf("defaults: %+v", o)
	}
	o2 := Options{SegmentFrames: 150}.withDefaults()
	if o2.SegmentFrames != 150 || o2.OverlapFrames != 100 {
		t.Errorf("partial defaults: %+v", o2)
	}
}

func TestSegmentationCoversStream(t *testing.T) {
	enc := lostEnc()
	d := render.Conceal(perfectTrace(enc.Clip.FrameCount()), render.DefaultOptions())
	res := ScoreSame(d, enc, Options{})
	// 2150 frames, stride 200: ≈10-11 segments.
	if len(res.Segments) < 9 || len(res.Segments) > 12 {
		t.Errorf("segments = %d for 2150 frames", len(res.Segments))
	}
	for i := 1; i < len(res.Segments); i++ {
		if res.Segments[i].StartSlot-res.Segments[i-1].StartSlot != 200 {
			t.Errorf("segment stride wrong at %d", i)
		}
	}
}
