package link

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestLinkNeverReorders: a FIFO-scheduled link delivers packets in
// arrival order for any arrival pattern and sizes.
func TestLinkNeverReorders(t *testing.T) {
	f := func(gaps []uint16, sizes []uint8) bool {
		if len(gaps) == 0 {
			return true
		}
		s := sim.New(1)
		var got []uint64
		l := New(s, 2*units.Mbps, 3*units.Millisecond, queue.NewSingleFIFO(0),
			packet.HandlerFunc(func(p *packet.Packet) { got = append(got, p.ID) }))
		now := units.Time(0)
		for i, g := range gaps {
			now += units.Time(g) * units.Microsecond
			size := 64
			if i < len(sizes) {
				size = int(sizes[i])%1436 + 64
			}
			id := uint64(i + 1)
			s.At(now, func() {
				l.Handle(&packet.Packet{ID: id, Size: size})
			})
		}
		s.Run()
		if len(got) != len(gaps) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLinkConservesBytes: everything enqueued on an unbounded link is
// delivered, byte for byte.
func TestLinkConservesBytes(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	l := New(s, units.Mbps, units.Millisecond, queue.NewSingleFIFO(0), &sink)
	var sent int64
	rng := sim.NewRNG(3)
	now := units.Time(0)
	for i := 0; i < 500; i++ {
		now += units.Time(rng.Intn(20000)) * units.Microsecond
		size := rng.Intn(1400) + 100
		sent += int64(size)
		s.At(now, func() { l.Handle(&packet.Packet{Size: size}) })
	}
	s.Run()
	if sink.Bytes != sent {
		t.Errorf("delivered %d of %d bytes", sink.Bytes, sent)
	}
	if l.SentBytes != sent {
		t.Errorf("link counted %d of %d bytes", l.SentBytes, sent)
	}
}
