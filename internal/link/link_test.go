package link

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestLinkSerializationTiming(t *testing.T) {
	s := sim.New(1)
	var at units.Time
	l := New(s, 2*units.Mbps, 0, nil, packet.HandlerFunc(func(*packet.Packet) { at = s.Now() }))
	s.At(0, func() { l.Handle(&packet.Packet{Size: 1500}) })
	s.Run()
	// 1500B at 2Mbps = 6ms.
	if at != 6*units.Millisecond {
		t.Errorf("delivery at %v, want 6ms", at)
	}
}

func TestLinkPropagationDelay(t *testing.T) {
	s := sim.New(1)
	var at units.Time
	l := New(s, 2*units.Mbps, 10*units.Millisecond, nil,
		packet.HandlerFunc(func(*packet.Packet) { at = s.Now() }))
	s.At(0, func() { l.Handle(&packet.Packet{Size: 1500}) })
	s.Run()
	if at != 16*units.Millisecond {
		t.Errorf("delivery at %v, want 16ms", at)
	}
}

func TestLinkQueuesBackToBack(t *testing.T) {
	s := sim.New(1)
	var times []units.Time
	l := New(s, 2*units.Mbps, 0, nil,
		packet.HandlerFunc(func(*packet.Packet) { times = append(times, s.Now()) }))
	s.At(0, func() {
		l.Handle(&packet.Packet{Size: 1500})
		l.Handle(&packet.Packet{Size: 1500})
		l.Handle(&packet.Packet{Size: 1500})
	})
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d", len(times))
	}
	for i, want := range []units.Time{6, 12, 18} {
		if times[i] != want*units.Millisecond {
			t.Errorf("packet %d at %v, want %dms", i, times[i], want)
		}
	}
	if l.Sent != 3 || l.SentBytes != 4500 {
		t.Errorf("stats: %d pkts %d bytes", l.Sent, l.SentBytes)
	}
}

func TestLinkEFPriority(t *testing.T) {
	s := sim.New(1)
	var order []packet.DSCP
	l := New(s, 2*units.Mbps, 0, queue.NewEFPriority(0, 0),
		packet.HandlerFunc(func(p *packet.Packet) { order = append(order, p.DSCP) }))
	s.At(0, func() {
		// First BE packet grabs the wire; the queued EF packet must
		// jump ahead of the remaining BE packets.
		l.Handle(&packet.Packet{Size: 1500, DSCP: packet.BestEffort})
		l.Handle(&packet.Packet{Size: 1500, DSCP: packet.BestEffort})
		l.Handle(&packet.Packet{Size: 1500, DSCP: packet.EF})
	})
	s.Run()
	want := []packet.DSCP{packet.BestEffort, packet.EF, packet.BestEffort}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestLinkUtilization(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	l := New(s, units.Mbps, 0, nil, &sink)
	s.At(0, func() { l.Handle(&packet.Packet{Size: 12500}) }) // 100ms at 1Mbps
	s.At(200*units.Millisecond, func() {})                    // extend the clock
	s.Run()
	u := l.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", u)
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CIR != 2e6 || r.Bc != 2e6 || r.Be != 0 {
			t.Errorf("row %s: CIR=%v Bc=%d Be=%d", r.Name, r.CIR, r.Bc, r.Be)
		}
		if r.Tc() != units.Second {
			t.Errorf("row %s: Tc = %v, want 1s", r.Name, r.Tc())
		}
	}
	kinds := map[string]int{}
	for _, r := range rows {
		kinds[r.Kind]++
	}
	if kinds["HSSI"] != 2 || kinds["V.35"] != 2 {
		t.Errorf("interface kinds: %v", kinds)
	}
}

func TestFrameRelayEmulatesCIR(t *testing.T) {
	s := sim.New(1)
	var at units.Time
	fr := NewFrameRelay(s, Table1()[0], 0, nil,
		packet.HandlerFunc(func(*packet.Packet) { at = s.Now() }))
	s.At(0, func() { fr.Handle(&packet.Packet{Size: 2500}) }) // 10ms at 2Mbps
	s.Run()
	if at != 10*units.Millisecond {
		t.Errorf("delivered at %v, want 10ms", at)
	}
}

func TestJitterPreservesOrder(t *testing.T) {
	s := sim.New(3)
	var ids []uint64
	j := &Jitter{Sim: s, Max: 10 * units.Millisecond,
		Next: packet.HandlerFunc(func(p *packet.Packet) { ids = append(ids, p.ID) })}
	for i := 1; i <= 200; i++ {
		i := i
		s.At(units.Time(i)*units.Millisecond, func() {
			j.Handle(&packet.Packet{ID: uint64(i), Size: 100})
		})
	}
	s.Run()
	if len(ids) != 200 {
		t.Fatalf("delivered %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("reordered: %d before %d", ids[i-1], ids[i])
		}
	}
}

func TestJitterZeroMaxPassthrough(t *testing.T) {
	s := sim.New(1)
	var at units.Time
	j := &Jitter{Sim: s, Max: 0,
		Next: packet.HandlerFunc(func(*packet.Packet) { at = s.Now() })}
	s.At(units.Second, func() { j.Handle(&packet.Packet{Size: 1}) })
	s.Run()
	if at != units.Second {
		t.Errorf("zero jitter delayed to %v", at)
	}
}

func TestLossDropsFraction(t *testing.T) {
	s := sim.New(5)
	var sink packet.Sink
	l := &Loss{Sim: s, P: 0.3, Next: &sink}
	n := 20000
	s.At(0, func() {
		for i := 0; i < n; i++ {
			l.Handle(&packet.Packet{Size: 1})
		}
	})
	s.Run()
	frac := float64(l.Dropped) / float64(n)
	if frac < 0.28 || frac > 0.32 {
		t.Errorf("loss fraction = %v, want ~0.3", frac)
	}
	if sink.Count+l.Dropped != n {
		t.Error("conservation violated")
	}
}
