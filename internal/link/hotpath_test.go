package link

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestInflightStaysBounded: a link that never drains (propagation
// always outstanding) must not accumulate delivered packets in its
// in-flight buffer.
func TestInflightStaysBounded(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	// TxTime(1500B @ 6Mbps) = 2 ms < Delay 5 ms: at every transmit
	// completion some packet is still in propagation, so the
	// fully-drained reset never fires and only compaction bounds the
	// buffer.
	l := New(s, 6*units.Mbps, 5*units.Millisecond, queue.NewSingleFIFO(0), &sink)
	const n = 20000
	for i := 0; i < n; i++ {
		i := i
		s.At(units.Time(i)*2*units.Millisecond, func() {
			l.Handle(&packet.Packet{ID: uint64(i + 1), Size: 1500})
		})
	}
	s.Run()
	if sink.Count != n {
		t.Fatalf("delivered %d of %d", sink.Count, n)
	}
	if l.inflight.Cap() > 256 {
		t.Errorf("inflight grew to %d entries on a busy link — compaction ineffective", l.inflight.Cap())
	}
}
