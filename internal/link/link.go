// Package link models transmission resources: a serializing Link with
// a finite bit rate, propagation delay and an attached scheduler, plus
// a Frame Relay interface emulation (CIR/Bc/Be) matching Table 1 of
// the paper, and a jitter element standing in for the uncontrolled
// campus segments upstream of the QBone policer.
package link

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

// Link serializes packets at Rate, adds propagation Delay, and hands
// them to Next. Arriving packets enter the Scheduler; the link drains
// it one transmission time at a time — the standard output-queued
// router port model.
type Link struct {
	Sim   *sim.Simulator
	Rate  units.BitRate
	Delay units.Time
	Sched queue.Scheduler
	Next  packet.Handler
	// Pool, when set, receives packets the scheduler rejects at
	// enqueue (the link owns drops at its port).
	Pool *packet.Pool

	// Tap, when set, receives enqueue/queue-drop/tx/deliver events
	// under the Hop id. A nil Tap costs one pointer comparison per
	// tap point — the hot path stays allocation-free.
	Tap ptrace.Tap
	Hop ptrace.HopID

	busy bool
	cur  *packet.Packet // packet on the wire

	// Pre-bound Timer values so the hot path schedules with zero
	// allocations: txDone fires at serialization end, deliver at
	// propagation end. Bound once in New (or lazily on first Handle
	// for zero-value construction).
	txDone  sim.Timer
	deliver sim.Timer

	// inflight holds packets in propagation, delivery order. Constant
	// Delay means deliveries complete FIFO, so a ring suffices.
	inflight packet.Ring

	Sent      int
	SentBytes int64
	// BusyTime accumulates transmission time for utilization stats.
	BusyTime units.Time
}

// txDoneTimer and deliverTimer give the link two Fire methods without
// per-schedule closures: a *Link pointer-converted to either type is
// the Timer, so the interface values in bind() never allocate.
type (
	txDoneTimer  Link
	deliverTimer Link
)

// Fire completes the current serialization.
func (t *txDoneTimer) Fire(units.Time) { (*Link)(t).finishTx() }

// Fire completes the oldest propagation.
func (d *deliverTimer) Fire(units.Time) { (*Link)(d).deliverHead() }

// New returns a link with the given rate, propagation delay, scheduler
// and next hop.
func New(s *sim.Simulator, rate units.BitRate, delay units.Time, sched queue.Scheduler, next packet.Handler) *Link {
	if sched == nil {
		sched = queue.NewSingleFIFO(0)
	}
	l := &Link{Sim: s, Rate: rate, Delay: delay, Sched: sched, Next: next}
	l.bind()
	return l
}

// bind materializes the Timer interface values exactly once.
func (l *Link) bind() {
	l.txDone = (*txDoneTimer)(l)
	l.deliver = (*deliverTimer)(l)
}

// Handle enqueues p for transmission. A scheduler rejection is a
// terminal drop owned by the link: the packet is released to Pool.
func (l *Link) Handle(p *packet.Packet) {
	p.EnqueuedAt = l.Sim.Now()
	if !l.Sched.Enqueue(p) {
		if l.Tap != nil {
			l.Tap.Emit(l.event(ptrace.QueueDrop, p))
		}
		l.Pool.Put(p) // queue drop, counted by the scheduler
		return
	}
	if l.Tap != nil {
		l.Tap.Emit(l.event(ptrace.LinkEnqueue, p))
	}
	if !l.busy {
		l.transmitNext()
	}
}

// event copies the fields a trace record needs out of p — the packet
// pointer is never retained (it may be recycled the moment ownership
// moves on).
func (l *Link) event(k ptrace.Kind, p *packet.Packet) ptrace.Event {
	return ptrace.Event{
		Kind: k, Hop: l.Hop, Flow: p.Flow, PktID: p.ID,
		Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
		QLen: int32(l.Sched.Len()),
	}
}

func (l *Link) transmitNext() {
	p := l.Sched.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	if l.txDone == nil {
		l.bind() // zero-value Link constructed without New
	}
	l.busy = true
	l.cur = p
	tx := l.Rate.TxTime(p.Size)
	l.BusyTime += tx
	l.Sim.AfterTimer(tx, l.txDone)
}

// finishTx runs at serialization end: account the packet, hand it to
// propagation (or directly to Next on a zero-delay link), and start
// the next transmission.
func (l *Link) finishTx() {
	p := l.cur
	l.cur = nil
	l.Sent++
	l.SentBytes += int64(p.Size)
	if l.Tap != nil {
		e := l.event(ptrace.LinkTx, p)
		e.Delay = l.Sim.Now() - p.EnqueuedAt // queueing + serialization here
		l.Tap.Emit(e)
	}
	if l.Delay > 0 {
		l.inflight.Push(p)
		l.Sim.AfterTimer(l.Delay, l.deliver)
	} else {
		if l.Tap != nil {
			l.Tap.Emit(l.event(ptrace.LinkDeliver, p))
		}
		l.Next.Handle(p)
	}
	l.transmitNext()
}

// deliverHead completes propagation of the oldest in-flight packet.
func (l *Link) deliverHead() {
	p := l.inflight.Pop()
	if l.Tap != nil {
		l.Tap.Emit(l.event(ptrace.LinkDeliver, p))
	}
	l.Next.Handle(p)
}

// Utilization reports the fraction of elapsed time spent transmitting.
func (l *Link) Utilization() float64 {
	now := l.Sim.Now()
	if now == 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(now)
}

// FrameRelayConfig is one row of the paper's Table 1: the Committed
// Information Rate, Committed Burst Size, and Excess Burst Size of a
// Frame Relay interface.
type FrameRelayConfig struct {
	Name string        // e.g. "router2/FR1"
	CIR  units.BitRate // committed information rate
	Bc   int64         // committed burst, bits per Tc
	Be   int64         // excess burst, bits per Tc
	Kind string        // "HSSI" or "V.35"
}

// Tc reports the committed measurement interval Bc/CIR.
func (c FrameRelayConfig) Tc() units.Time {
	if c.CIR <= 0 {
		return 0
	}
	return units.Time(float64(c.Bc) / float64(c.CIR) * float64(units.Second))
}

// Table1 reproduces the paper's Table 1: every interface at CIR =
// 2 Mbps, Bc = 2 Mbit, Be = 0 — i.e. the FR network emulates constant
// 2 Mbps pipes, with the V.35 E1 interface as the bottleneck.
func Table1() []FrameRelayConfig {
	return []FrameRelayConfig{
		{Name: "router2/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "V.35"},
		{Name: "router2/FR0", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "HSSI"},
		{Name: "router1/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "HSSI"},
		{Name: "router3/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "V.35"},
	}
}

// NewFrameRelay builds a Link whose effective rate is the FR CIR with
// Be=0 — the paper's configuration "to emulate a set of constant rate
// links". The serialization behaviour of a CIR-limited PVC with Be=0
// is exactly a constant-rate link at CIR.
func NewFrameRelay(s *sim.Simulator, cfg FrameRelayConfig, delay units.Time, sched queue.Scheduler, next packet.Handler) *Link {
	return New(s, cfg.CIR, delay, sched, next)
}

// Jitter perturbs inter-packet spacing by a random delay in [0, Max],
// modeling the uncontrolled campus/cross-traffic segments that the
// paper notes can push a stream out of profile before it reaches the
// policer (the ATM CDV-tolerance analogy, §3.2). Delivery order is
// preserved by never scheduling a packet before its predecessor.
type Jitter struct {
	Sim  *sim.Simulator
	Max  units.Time
	Next packet.Handler

	lastDelivery units.Time

	// Delivery times are monotone (see Handle), so the packets in
	// flight form a FIFO ring: each scheduled event delivers the head.
	pending packet.Ring
	timer   sim.Timer
}

// jitterTimer is the pointer-conversion Timer of a Jitter.
type jitterTimer Jitter

// Fire delivers the oldest delayed packet.
func (j *jitterTimer) Fire(units.Time) { (*Jitter)(j).deliverHead() }

// Handle delays p by a uniform random jitter, preserving order. One
// event is scheduled per packet (so same-instant ordering against the
// rest of the simulation is identical to direct scheduling), but the
// packet rides the Jitter's own ring instead of a captured closure.
func (j *Jitter) Handle(p *packet.Packet) {
	d := units.Time(0)
	if j.Max > 0 {
		d = units.Time(j.Sim.RNG().Float64() * float64(j.Max))
	}
	t := j.Sim.Now() + d
	if t < j.lastDelivery {
		t = j.lastDelivery
	}
	j.lastDelivery = t
	if j.timer == nil {
		j.timer = (*jitterTimer)(j)
	}
	j.pending.Push(p)
	j.Sim.AtTimer(t, j.timer)
}

func (j *Jitter) deliverHead() {
	j.Next.Handle(j.pending.Pop())
}

// Loss drops packets independently with probability P — a stand-in
// for residual uncontrolled loss on wide-area segments.
type Loss struct {
	Sim  *sim.Simulator
	P    float64
	Next packet.Handler
	Pool *packet.Pool // terminal release target for dropped packets

	// Tap, when set, receives a Loss event per dropped packet.
	Tap ptrace.Tap
	Hop ptrace.HopID

	Dropped int
}

// Handle drops (releasing to Pool) or forwards p.
func (l *Loss) Handle(p *packet.Packet) {
	if l.P > 0 && l.Sim.RNG().Float64() < l.P {
		l.Dropped++
		if l.Tap != nil {
			l.Tap.Emit(ptrace.Event{
				Kind: ptrace.Loss, Hop: l.Hop, Flow: p.Flow, PktID: p.ID,
				Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
			})
		}
		l.Pool.Put(p)
		return
	}
	l.Next.Handle(p)
}
