// Package link models transmission resources: a serializing Link with
// a finite bit rate, propagation delay and an attached scheduler, plus
// a Frame Relay interface emulation (CIR/Bc/Be) matching Table 1 of
// the paper, and a jitter element standing in for the uncontrolled
// campus segments upstream of the QBone policer.
package link

import (
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/units"
)

// Link serializes packets at Rate, adds propagation Delay, and hands
// them to Next. Arriving packets enter the Scheduler; the link drains
// it one transmission time at a time — the standard output-queued
// router port model.
type Link struct {
	Sim   *sim.Simulator
	Rate  units.BitRate
	Delay units.Time
	Sched queue.Scheduler
	Next  packet.Handler

	busy bool
	cur  *packet.Packet // packet on the wire

	// Pre-bound callbacks so the hot path schedules no per-packet
	// closures: txDone fires at serialization end, deliver at
	// propagation end. Bound once in New (or lazily on first Handle
	// for zero-value construction).
	txDone  func()
	deliver func()

	// inflight holds packets in propagation, delivery order. Constant
	// Delay means deliveries complete FIFO, so a ring suffices.
	inflight     []*packet.Packet
	inflightHead int

	Sent      int
	SentBytes int64
	// BusyTime accumulates transmission time for utilization stats.
	BusyTime units.Time
}

// New returns a link with the given rate, propagation delay, scheduler
// and next hop.
func New(s *sim.Simulator, rate units.BitRate, delay units.Time, sched queue.Scheduler, next packet.Handler) *Link {
	if sched == nil {
		sched = queue.NewSingleFIFO(0)
	}
	l := &Link{Sim: s, Rate: rate, Delay: delay, Sched: sched, Next: next}
	l.bind()
	return l
}

// bind caches the method-value callbacks (each `l.method` expression
// allocates a fresh closure, so they are materialized exactly once).
func (l *Link) bind() {
	l.txDone = l.finishTx
	l.deliver = l.deliverHead
}

// Handle enqueues p for transmission.
func (l *Link) Handle(p *packet.Packet) {
	p.EnqueuedAt = l.Sim.Now()
	if !l.Sched.Enqueue(p) {
		return // queue drop, counted by the scheduler
	}
	if !l.busy {
		l.transmitNext()
	}
}

func (l *Link) transmitNext() {
	p := l.Sched.Dequeue()
	if p == nil {
		l.busy = false
		return
	}
	if l.txDone == nil {
		l.bind() // zero-value Link constructed without New
	}
	l.busy = true
	l.cur = p
	tx := l.Rate.TxTime(p.Size)
	l.BusyTime += tx
	l.Sim.After(tx, l.txDone)
}

// finishTx runs at serialization end: account the packet, hand it to
// propagation (or directly to Next on a zero-delay link), and start
// the next transmission.
func (l *Link) finishTx() {
	p := l.cur
	l.cur = nil
	l.Sent++
	l.SentBytes += int64(p.Size)
	if l.Delay > 0 {
		l.inflight = append(l.inflight, p)
		l.Sim.After(l.Delay, l.deliver)
	} else {
		l.Next.Handle(p)
	}
	l.transmitNext()
}

// deliverHead completes propagation of the oldest in-flight packet.
// The consumed prefix is compacted away once it dominates the slice,
// so memory stays proportional to the packets concurrently in
// propagation (~Delay/TxTime) even on a continuously busy link.
func (l *Link) deliverHead() {
	p := l.inflight[l.inflightHead]
	l.inflight[l.inflightHead] = nil
	l.inflightHead++
	if l.inflightHead == len(l.inflight) {
		l.inflight = l.inflight[:0]
		l.inflightHead = 0
	} else if l.inflightHead >= 32 && l.inflightHead*2 >= len(l.inflight) {
		n := copy(l.inflight, l.inflight[l.inflightHead:])
		for i := n; i < len(l.inflight); i++ {
			l.inflight[i] = nil
		}
		l.inflight = l.inflight[:n]
		l.inflightHead = 0
	}
	l.Next.Handle(p)
}

// Utilization reports the fraction of elapsed time spent transmitting.
func (l *Link) Utilization() float64 {
	now := l.Sim.Now()
	if now == 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(now)
}

// FrameRelayConfig is one row of the paper's Table 1: the Committed
// Information Rate, Committed Burst Size, and Excess Burst Size of a
// Frame Relay interface.
type FrameRelayConfig struct {
	Name string        // e.g. "router2/FR1"
	CIR  units.BitRate // committed information rate
	Bc   int64         // committed burst, bits per Tc
	Be   int64         // excess burst, bits per Tc
	Kind string        // "HSSI" or "V.35"
}

// Tc reports the committed measurement interval Bc/CIR.
func (c FrameRelayConfig) Tc() units.Time {
	if c.CIR <= 0 {
		return 0
	}
	return units.Time(float64(c.Bc) / float64(c.CIR) * float64(units.Second))
}

// Table1 reproduces the paper's Table 1: every interface at CIR =
// 2 Mbps, Bc = 2 Mbit, Be = 0 — i.e. the FR network emulates constant
// 2 Mbps pipes, with the V.35 E1 interface as the bottleneck.
func Table1() []FrameRelayConfig {
	return []FrameRelayConfig{
		{Name: "router2/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "V.35"},
		{Name: "router2/FR0", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "HSSI"},
		{Name: "router1/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "HSSI"},
		{Name: "router3/FR1", CIR: 2e6, Bc: 2e6, Be: 0, Kind: "V.35"},
	}
}

// NewFrameRelay builds a Link whose effective rate is the FR CIR with
// Be=0 — the paper's configuration "to emulate a set of constant rate
// links". The serialization behaviour of a CIR-limited PVC with Be=0
// is exactly a constant-rate link at CIR.
func NewFrameRelay(s *sim.Simulator, cfg FrameRelayConfig, delay units.Time, sched queue.Scheduler, next packet.Handler) *Link {
	return New(s, cfg.CIR, delay, sched, next)
}

// Jitter perturbs inter-packet spacing by a random delay in [0, Max],
// modeling the uncontrolled campus/cross-traffic segments that the
// paper notes can push a stream out of profile before it reaches the
// policer (the ATM CDV-tolerance analogy, §3.2). Delivery order is
// preserved by never scheduling a packet before its predecessor.
type Jitter struct {
	Sim  *sim.Simulator
	Max  units.Time
	Next packet.Handler

	lastDelivery units.Time
}

// Handle delays p by a uniform random jitter, preserving order.
func (j *Jitter) Handle(p *packet.Packet) {
	d := units.Time(0)
	if j.Max > 0 {
		d = units.Time(j.Sim.RNG().Float64() * float64(j.Max))
	}
	t := j.Sim.Now() + d
	if t < j.lastDelivery {
		t = j.lastDelivery
	}
	j.lastDelivery = t
	j.Sim.At(t, func() { j.Next.Handle(p) })
}

// Loss drops packets independently with probability P — a stand-in
// for residual uncontrolled loss on wide-area segments.
type Loss struct {
	Sim  *sim.Simulator
	P    float64
	Next packet.Handler

	Dropped int
}

// Handle drops or forwards p.
func (l *Loss) Handle(p *packet.Packet) {
	if l.P > 0 && l.Sim.RNG().Float64() < l.P {
		l.Dropped++
		return
	}
	l.Next.Handle(p)
}
