package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// tempLeftovers counts the hidden temp files the helper may have
// leaked into dir.
func tempLeftovers(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if e.Name()[0] == '.' {
			n++
		}
	}
	return n
}

func TestWriteFilePublishesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Errorf("content %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("perm %o, want 644", perm)
	}
	if n := tempLeftovers(t, dir); n != 0 {
		t.Errorf("%d temp files left behind", n)
	}

	// Overwrite replaces wholesale.
	if err := WriteFile(path, []byte("v2\n")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2\n" {
		t.Errorf("overwrite content %q", got)
	}
}

func TestWriteToFailureLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, []byte("original\n")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := WriteTo(path, func(w io.Writer) error {
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "original\n" {
		t.Errorf("destination corrupted: %q", got)
	}
	if n := tempLeftovers(t, dir); n != 0 {
		t.Errorf("%d temp files left behind", n)
	}
}

func TestWriteToMissingDirectoryFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope", "out.json")
	if err := WriteFile(path, []byte("x")); err == nil {
		t.Fatal("expected error writing into a missing directory")
	}
}
