// Package atomicfile publishes files atomically: bytes land in a
// temporary file in the destination directory and only an os.Rename —
// atomic on POSIX filesystems — makes them visible under the final
// name. A crashed or interrupted writer therefore never leaves a torn
// half-file where a reader (dstrace, a CI artifact collector, a later
// dsbench run appending to a BENCH_*.json trajectory) expects a whole
// one. Every artifact the repo writes — packet traces, trace digests,
// benchmark JSON — routes through this one helper.
package atomicfile

import (
	"io"
	"os"
	"path/filepath"
)

// WriteTo streams a file's contents through write and publishes the
// result at path atomically. If write (or any filesystem step) fails,
// the temporary file is removed and the destination is left untouched
// — either the old content or nothing, never a partial write.
func WriteTo(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	// CreateTemp opens 0600; published artifacts are world-readable
	// like os.WriteFile's conventional 0644.
	if err == nil {
		err = os.Chmod(f.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(f.Name(), path)
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// WriteFile is the []byte convenience form of WriteTo.
func WriteFile(path string, data []byte) error {
	return WriteTo(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}
