package sim

import "math"

// RNG is a small, fast, deterministic random source (xoshiro256**
// seeded via splitmix64). It is intentionally not safe for concurrent
// use: the simulator is single-threaded by design, and determinism is
// the point.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64 so that
// nearby seeds produce unrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A generator with an all-zero state would stay at zero forever.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto-ish heavy-tailed variate with the
// given shape alpha and scale xm; used for on-off cross traffic bursts.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Fork derives an independent child generator; used so each traffic
// source gets its own stream while remaining a pure function of the
// experiment seed.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
