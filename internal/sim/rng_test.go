package sim

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collided %d times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a dead generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("value %d never produced", i)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Exp(3.0)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("Exp mean = %v, want ~3", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	over := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(1.5, 1.0)
		if v < 1 {
			t.Fatalf("Pareto below scale: %v", v)
		}
		if v > 10 {
			over++
		}
	}
	// P(X > 10) = 10^-1.5 ≈ 0.0316.
	frac := float64(over) / float64(n)
	if math.Abs(frac-0.0316) > 0.01 {
		t.Errorf("tail fraction = %v, want ~0.0316", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Fork()
	// Child stream must not replay the parent stream.
	p, c := NewRNG(21), child
	same := 0
	for i := 0; i < 100; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("fork replays parent: %d collisions", same)
	}
}
