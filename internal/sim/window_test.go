package sim

import (
	"testing"

	"repro/internal/units"
)

// TestRunBeforeStrictBound pins the window primitive's contract:
// events strictly before the bound fire, events at the bound stay
// queued, and the clock rests on the last fired event.
func TestRunBeforeStrictBound(t *testing.T) {
	s := New(1)
	var fired []units.Time
	for _, at := range []units.Time{10, 20, 30, 40} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	now := s.RunBefore(30)
	if now != 20 {
		t.Errorf("clock after RunBefore(30) = %v, want 20", now)
	}
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Errorf("fired %v, want [10 20]", fired)
	}
	if next, ok := s.NextEventTime(); !ok || next != 30 {
		t.Errorf("NextEventTime = %v/%v, want 30/true", next, ok)
	}
	// The event at the bound is still live and fires on the next pass.
	s.RunBefore(31)
	if len(fired) != 3 || fired[2] != 30 {
		t.Errorf("after RunBefore(31) fired %v, want the t=30 event", fired)
	}
	s.Run()
	if len(fired) != 4 {
		t.Errorf("drain fired %d events, want 4", len(fired))
	}
}

// TestRunBeforeIgnoresHorizon pins that the caller's bound, not the
// horizon, limits a windowed drain — shards bound their own windows.
func TestRunBeforeIgnoresHorizon(t *testing.T) {
	s := New(1)
	n := 0
	s.At(10, func() { n++ })
	s.At(20, func() { n++ })
	s.SetHorizon(15)
	s.RunBefore(25)
	if n != 2 {
		t.Errorf("fired %d events, want 2 (horizon must not bind RunBefore)", n)
	}
}

// TestAdvanceTo pins the clock-only advance and both of its panics.
func TestAdvanceTo(t *testing.T) {
	s := New(1)
	s.At(50, func() {})
	s.AdvanceTo(40)
	if s.Now() != 40 {
		t.Errorf("Now = %v, want 40", s.Now())
	}
	// Advancing exactly onto a pending event is allowed: the event has
	// not been skipped, it fires at now on the next drain.
	s.AdvanceTo(50)
	if s.Now() != 50 {
		t.Errorf("Now = %v, want 50", s.Now())
	}
	mustPanic(t, "skip a pending event", func() { s.AdvanceTo(60) })
	mustPanic(t, "move backwards", func() {
		s2 := New(1)
		s2.At(5, func() {})
		s2.Run()
		s2.AdvanceTo(1)
	})
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("AdvanceTo did not panic when asked to %s", what)
		}
	}()
	fn()
}

// TestBucketWidthIsNotSemantic pins the calendar-width contract: the
// same event workload fires in the same order at every width, because
// selection is by (time, seq), never by bucket geometry.
func TestBucketWidthIsNotSemantic(t *testing.T) {
	run := func(width units.Time) []units.Time {
		s := NewWithBucketWidth(7, width)
		var fired []units.Time
		// A spread that straddles any window: dense near-future, a far
		// tail, and same-instant ties.
		for i := 0; i < 500; i++ {
			at := units.Time(int64((i*997)%1000)) * units.Microsecond
			at += units.Time(i%3) * 40 * units.Millisecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		return fired
	}
	ref := run(DefaultBucketWidth)
	for _, w := range []units.Time{units.Microsecond, 50 * units.Microsecond, 4 * units.Millisecond, 500 * units.Millisecond} {
		got := run(w)
		if len(got) != len(ref) {
			t.Fatalf("width %v fired %d events, want %d", w, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("width %v diverged at event %d: %v vs %v", w, i, got[i], ref[i])
			}
		}
	}
}
