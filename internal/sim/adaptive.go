package sim

import "repro/internal/units"

// Density-adaptive calendar width.
//
// The calendar's bucket width is the one geometry parameter that
// matters for dequeue cost: too wide and min() scans crowded buckets
// (O(occupancy) per pop), too narrow and most events bypass the
// window into the overflow heap (O(log n) per event, plus a migration
// touch at every rebase). The classic calendar-queue rule is to keep
// bucket occupancy near one — width ≈ the mean spacing between
// events.
//
// Instead of guessing that spacing at construction time, the
// simulator measures it: every window rebase knows exactly how many
// events fired since the last width decision and how much simulated
// time they covered, so mean firing spacing is two counters and one
// division on a path that runs once per window, not per event. A
// sampled EWMA of inter-schedule spacing (fed in schedule(), every
// 8th call) is kept alongside as telemetry: it resolves burst-level
// density that the window-mean hides, and QueueStats exposes both.
//
// The decision is deliberately sluggish — geometry changes cost a
// lattice re-derivation, so width only moves on sustained pressure:
//
//   - a decision needs at least adaptMinFired firings of evidence
//     (windows accumulate until they have it);
//   - the pow2 target must sit a full dead band (two octaves) away
//     from the current width; and
//   - two consecutive decisions must agree on the direction.
//
// Rebase is the only mutation point because the lattice is provably
// empty there: changing width is a slice-header swap, never an event
// move, so the (time, seq) firing order is untouched by construction.
// Widths pinned via NewWithBucketWidth (the -bucket-width escape
// hatch) disable the policy entirely.

const (
	// adaptMinWidth / adaptMaxWidth clamp adaptive width targets.
	// 512 ns resolves the densest six-figure fleet runs while
	// bucketCount's maxBuckets cap keeps the window span at tens of
	// milliseconds; 2^22 ns (~4.2 ms) spans a full second of sparse
	// schedule per window at numBuckets buckets.
	adaptMinWidth units.Time = 512
	adaptMaxWidth units.Time = 1 << 22

	// adaptMinFired is the minimum evidence for a width decision;
	// rebases with fewer firings since the last decision accumulate
	// instead of deciding on noise.
	adaptMinFired = 64

	// widthDeadBand is the hysteresis band: a target moves the width
	// only when it is at least this factor (two octaves) away.
	widthDeadBand = 4

	// compactMinDead is the overflow-compaction floor: rebases rebuild
	// the heap only once at least this many cancelled events are
	// resident and they make up a quarter of the heap.
	compactMinDead = 64

	// bucketSeedCap is the per-bucket capacity pre-carved out of one
	// shared backing array when a lattice is (re)built, so post-move
	// warm-up appends at the target occupancy of ~1 do not allocate.
	bucketSeedCap = 4
)

// makeLattice allocates an n-bucket lattice whose bucket slices share
// one pre-capped backing array.
func makeLattice(n int) [][]*Event {
	lat := make([][]*Event, n)
	backing := make([]*Event, n*bucketSeedCap)
	for i := range lat {
		lat[i] = backing[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
	}
	return lat
}

// widthForSpacing rounds a mean event spacing up to the next power of
// two, clamped to the adaptive range.
func widthForSpacing(spacing units.Time) units.Time {
	w := adaptMinWidth
	for w < spacing && w < adaptMaxWidth {
		w <<= 1
	}
	return w
}

// adaptWidth runs the width decision at a rebase whose next window
// base is nextBase. Only called on adaptive simulators, with the
// lattice empty.
func (s *Simulator) adaptWidth(nextBase units.Time) {
	fired := s.fired - s.decideFired
	if fired < adaptMinFired {
		return // not enough evidence yet; keep accumulating
	}
	elapsed := nextBase - s.decideTime
	s.decideFired = s.fired
	s.decideTime = nextBase
	if elapsed <= 0 {
		return
	}
	target := widthForSpacing(elapsed / units.Time(fired))
	var dir int8
	switch {
	case target >= s.width*widthDeadBand:
		dir = 1
	case target*widthDeadBand <= s.width:
		dir = -1
	}
	if dir == 0 || dir != s.lastDir {
		s.lastDir = dir
		return
	}
	s.lastDir = 0
	s.setWidth(target)
}

// setWidth moves the calendar to a new bucket width, re-deriving the
// lattice size. Reached only with an empty lattice, so resizing is a
// slice operation; a previously grown backing array is re-sliced
// rather than reallocated, keeping repeated grow/shrink transitions
// allocation-free after the first.
func (s *Simulator) setWidth(w units.Time) {
	s.width = w
	s.qWidthMoves++
	n := bucketCount(w)
	switch {
	case n == len(s.buckets):
	case n <= cap(s.buckets):
		s.buckets = s.buckets[:n]
	default:
		s.buckets = makeLattice(n)
	}
}

// compactOverflow rebuilds the overflow heap without its cancelled
// events. Migration already drops dead events it pops, but a
// cancel-heavy schedule (tcp retransmit timers that almost always get
// cancelled) can bury dead weight deep in the heap where only a full
// sweep reclaims it; doing that sweep at the rebase point amortizes
// it against the migration the rebase performs anyway.
func (s *Simulator) compactOverflow() {
	h := s.overflow
	n := len(h)
	live := h[:0]
	for _, e := range h {
		if e.cancelled {
			e.inHeap = false
			s.release(e)
			continue
		}
		live = append(live, e)
	}
	for i := len(live); i < n; i++ {
		h[i] = nil
	}
	s.overflow = live
	s.heapDead = 0
	for i := len(live)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.qCompactions++
}

// QueueStats is a point-in-time snapshot of calendar-queue telemetry:
// current geometry, how often the window rebased and the width moved,
// and how the scheduled-event population split between the bucket
// lattice and the overflow heap.
type QueueStats struct {
	Width    units.Time // current bucket width
	Buckets  int        // current lattice size
	Adaptive bool       // false when the width was pinned at construction

	Rebases    uint64 // window rebases performed
	WidthMoves uint64 // adaptive width transitions
	Scheduled  uint64 // events ever scheduled
	Overflowed uint64 // schedules that landed in the overflow heap

	Compactions     uint64 // overflow-heap compactions
	PurgedCancelled uint64 // cancelled events reclaimed before firing

	// SampledSpacing is the EWMA of |Δwhen| between sampled schedule
	// calls — a burst-resolved density diagnostic complementing the
	// window-mean spacing the width decision uses.
	SampledSpacing units.Time
}

// QueueStats returns the simulator's calendar-queue telemetry.
func (s *Simulator) QueueStats() QueueStats {
	return QueueStats{
		Width: s.width, Buckets: len(s.buckets), Adaptive: s.adaptive,
		Rebases: s.qRebases, WidthMoves: s.qWidthMoves,
		Scheduled: s.qScheduled, Overflowed: s.qOverflowed,
		Compactions: s.qCompactions, PurgedCancelled: s.qPurged,
		SampledSpacing: units.Time(s.spacingEWMA),
	}
}

// OverflowRatio reports the share of scheduled events that landed in
// the overflow heap rather than the bucket window; 0 for an empty
// run.
func (qs QueueStats) OverflowRatio() float64 {
	if qs.Scheduled == 0 {
		return 0
	}
	return float64(qs.Overflowed) / float64(qs.Scheduled)
}
