package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*units.Millisecond, func() { order = append(order, 3) })
	s.At(10*units.Millisecond, func() { order = append(order, 1) })
	s.At(20*units.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*units.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same instant fire in scheduling order, the
	// property determinism rests on.
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(units.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(units.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(units.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestAfterFromWithinEvent(t *testing.T) {
	s := New(1)
	var at units.Time
	s.After(units.Second, func() {
		s.After(500*units.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*units.Millisecond {
		t.Errorf("nested After fired at %v", at)
	}
}

// TestHorizonKeepsFutureEvents is the regression test for the
// pop-and-drop horizon bug: an event beyond a RunUntil horizon must
// survive to a later Run call.
func TestHorizonKeepsFutureEvents(t *testing.T) {
	s := New(1)
	fired := false
	s.At(2*units.Second, func() { fired = true })
	s.RunUntil(units.Second)
	if fired {
		t.Fatal("event fired before its time")
	}
	if s.Now() != units.Second {
		t.Fatalf("Now = %v after RunUntil(1s)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(3 * units.Second)
	if !fired {
		t.Fatal("event lost across RunUntil boundary")
	}
}

func TestRunUntilRepeatedBoundaries(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 50 {
			s.After(100*units.Millisecond, tick)
		}
	}
	s.After(100*units.Millisecond, tick)
	for sec := 1; sec <= 6; sec++ {
		s.RunUntil(units.Time(sec) * units.Second)
	}
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i)*units.Second, func() {
			n++
			if n == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	// A subsequent Run resumes the remaining events.
	s.Run()
	if n != 10 {
		t.Errorf("after resume n = %d, want 10", n)
	}
}

func TestFiredCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(units.Time(i)*units.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired = %d", s.Fired())
	}
}
