package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*units.Millisecond, func() { order = append(order, 3) })
	s.At(10*units.Millisecond, func() { order = append(order, 1) })
	s.At(20*units.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*units.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same instant fire in scheduling order, the
	// property determinism rests on.
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(units.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

// TestCalendarMatchesReferenceOrder stress-tests the calendar queue
// against the (time, seq) reference order across bucket boundaries,
// window migrations and same-time ties.
func TestCalendarMatchesReferenceOrder(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(7))
	type key struct {
		when units.Time
		seq  int
	}
	var want []key
	var got []key
	for i := 0; i < 5000; i++ {
		// Mix sub-bucket, in-window and far-overflow times.
		var when units.Time
		switch rng.Intn(3) {
		case 0:
			when = units.Time(rng.Int63n(int64(DefaultBucketWidth)))
		case 1:
			when = units.Time(rng.Int63n(int64(numBuckets * DefaultBucketWidth)))
		default:
			when = units.Time(rng.Int63n(int64(10 * units.Second)))
		}
		i := i
		w := when
		s.At(when, func() { got = append(got, key{w, i}) })
		want = append(want, key{when, i})
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(units.Second, func() { fired = true })
	if !e.Active() {
		t.Fatal("fresh handle not active")
	}
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Active() {
		t.Error("Active() = true after Cancel")
	}
}

func TestCancelStopsCountingInPending(t *testing.T) {
	s := New(1)
	events := make([]Handle, 100)
	for i := range events {
		events[i] = s.At(units.Time(i+1)*units.Millisecond, func() {})
	}
	for i, e := range events {
		if i%2 == 1 {
			e.Cancel()
		}
	}
	if s.Pending() != 50 {
		t.Errorf("Pending = %d after cancelling half, want 50", s.Pending())
	}
	s.Run()
	if s.Fired() != 50 {
		t.Errorf("Fired = %d, want 50", s.Fired())
	}
}

// TestCancelAfterFireIsInert is the regression test for the stale
// handle hazard: once an event fired (and its Event slot was
// recycled), Cancel through the old handle must not touch whatever
// event is now using the slot, and the closure must not stay pinned.
func TestCancelAfterFireIsInert(t *testing.T) {
	s := New(1)
	n := 0
	e := s.At(units.Millisecond, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("event did not fire")
	}
	if e.Active() {
		t.Error("handle still active after fire")
	}
	e.Cancel() // after firing: must be a no-op
	e.Cancel() // and idempotent
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
	// The recycled slot is likely reused by the next schedule; the
	// stale handle must not be able to cancel the new occupant.
	e2 := s.At(2*units.Millisecond, func() { n++ })
	e.Cancel()
	if !e2.Active() {
		t.Fatal("stale Cancel deactivated a recycled event")
	}
	s.Run()
	if n != 2 {
		t.Errorf("n = %d after post-cancel schedule", n)
	}
}

// TestCancelReleasesClosure verifies a cancelled event does not pin
// its closure until its timestamp: the event's fn is nilled at Cancel
// time even though the slot is reclaimed lazily.
func TestCancelReleasesClosure(t *testing.T) {
	s := New(1)
	big := make([]byte, 1<<20)
	h := s.At(3600*units.Second, func() { _ = big })
	h.Cancel()
	if h.e.fn != nil || h.e.timer != nil {
		t.Fatal("cancelled event still pins its callback")
	}
}

func TestCancelInterleavedKeepsOrdering(t *testing.T) {
	// Cancelling a subset must not disturb the (time, seq) ordering of
	// the surviving events.
	s := New(1)
	var order []int
	var cancels []Handle
	for i := 0; i < 50; i++ {
		i := i
		e := s.At(units.Time(50-i)*units.Millisecond, func() { order = append(order, 50-i) })
		if i%3 == 0 {
			cancels = append(cancels, e)
		}
	}
	for _, e := range cancels {
		e.Cancel()
	}
	s.Run()
	for j := 1; j < len(order); j++ {
		if order[j] < order[j-1] {
			t.Fatalf("ordering broken after lazy removals: %v", order)
		}
	}
}

type countTimer struct {
	n     int
	s     *Simulator
	limit int
	every units.Time
}

func (c *countTimer) Fire(now units.Time) {
	c.n++
	if c.n < c.limit {
		c.s.AfterTimer(c.every, c)
	}
}

func TestTimerScheduling(t *testing.T) {
	s := New(1)
	ct := &countTimer{s: s, limit: 10, every: units.Millisecond}
	s.AfterTimer(units.Millisecond, ct)
	s.Run()
	if ct.n != 10 {
		t.Fatalf("timer fired %d times, want 10", ct.n)
	}
	if s.Now() != 10*units.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestTimerSteadyStateAllocFree(t *testing.T) {
	s := New(1)
	ct := &countTimer{s: s, limit: 1 << 30, every: units.Microsecond}
	// Warm the free list and bucket slices.
	ct.limit = 100
	s.AfterTimer(0, ct)
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		ct.limit = ct.n + 10
		s.AfterTimer(units.Microsecond, ct)
		s.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state timer scheduling allocates %.1f/op, want 0", allocs)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(units.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestAfterFromWithinEvent(t *testing.T) {
	s := New(1)
	var at units.Time
	s.After(units.Second, func() {
		s.After(500*units.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*units.Millisecond {
		t.Errorf("nested After fired at %v", at)
	}
}

// TestHorizonKeepsFutureEvents is the regression test for the
// pop-and-drop horizon bug: an event beyond a RunUntil horizon must
// survive to a later Run call.
func TestHorizonKeepsFutureEvents(t *testing.T) {
	s := New(1)
	fired := false
	s.At(2*units.Second, func() { fired = true })
	s.RunUntil(units.Second)
	if fired {
		t.Fatal("event fired before its time")
	}
	if s.Now() != units.Second {
		t.Fatalf("Now = %v after RunUntil(1s)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(3 * units.Second)
	if !fired {
		t.Fatal("event lost across RunUntil boundary")
	}
}

// TestScheduleBehindAdvancedWindow covers the calendar cursor reset:
// after the window advances to a far-future event (horizon pause), a
// new event scheduled before the window base must still fire first.
func TestScheduleBehindAdvancedWindow(t *testing.T) {
	s := New(1)
	var order []string
	s.At(10*units.Second, func() { order = append(order, "far") })
	s.RunUntil(units.Second) // advances the window toward the far event
	s.At(2*units.Second, func() { order = append(order, "near") })
	s.Run()
	if len(order) != 2 || order[0] != "near" || order[1] != "far" {
		t.Fatalf("order = %v", order)
	}
}

func TestRunUntilRepeatedBoundaries(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 50 {
			s.After(100*units.Millisecond, tick)
		}
	}
	s.After(100*units.Millisecond, tick)
	for sec := 1; sec <= 6; sec++ {
		s.RunUntil(units.Time(sec) * units.Second)
	}
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i)*units.Second, func() {
			n++
			if n == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	// A subsequent Run resumes the remaining events.
	s.Run()
	if n != 10 {
		t.Errorf("after resume n = %d, want 10", n)
	}
}

func TestFiredCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(units.Time(i)*units.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired = %d", s.Fired())
	}
}

func TestZeroHandle(t *testing.T) {
	var h Handle
	if h.Active() {
		t.Error("zero handle active")
	}
	if h.When() != 0 {
		t.Error("zero handle has a When")
	}
	h.Cancel() // must not panic
}

func TestHandleWhen(t *testing.T) {
	s := New(1)
	h := s.At(3*units.Second, func() {})
	if h.When() != 3*units.Second {
		t.Errorf("When = %v", h.When())
	}
	h.Cancel()
	if h.When() != 0 {
		t.Errorf("When after cancel = %v", h.When())
	}
}
