package sim

import (
	"testing"

	"repro/internal/units"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30*units.Millisecond, func() { order = append(order, 3) })
	s.At(10*units.Millisecond, func() { order = append(order, 1) })
	s.At(20*units.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30*units.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same instant fire in scheduling order, the
	// property determinism rests on.
	s := New(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(units.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(units.Second, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false")
	}
}

func TestCancelRemovesFromQueue(t *testing.T) {
	s := New(1)
	events := make([]*Event, 100)
	for i := range events {
		events[i] = s.At(units.Time(i+1)*units.Millisecond, func() {})
	}
	for i, e := range events {
		if i%2 == 1 {
			e.Cancel()
		}
	}
	if s.Pending() != 50 {
		t.Errorf("Pending = %d after cancelling half, want 50", s.Pending())
	}
	s.Run()
	if s.Fired() != 50 {
		t.Errorf("Fired = %d, want 50", s.Fired())
	}
}

func TestCancelTwiceAndAfterFire(t *testing.T) {
	s := New(1)
	n := 0
	e := s.At(units.Millisecond, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("event did not fire")
	}
	e.Cancel() // after firing: must be a no-op, not a heap corruption
	e.Cancel() // and idempotent
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
	// The queue must still work after post-fire cancels.
	s.At(2*units.Millisecond, func() { n++ })
	s.Run()
	if n != 2 {
		t.Errorf("n = %d after post-cancel schedule", n)
	}
}

func TestCancelInterleavedKeepsOrdering(t *testing.T) {
	// Removing from the middle of the heap must not disturb the
	// (time, seq) ordering of the surviving events.
	s := New(1)
	var order []int
	var cancels []*Event
	for i := 0; i < 50; i++ {
		i := i
		e := s.At(units.Time(50-i)*units.Millisecond, func() { order = append(order, 50-i) })
		if i%3 == 0 {
			cancels = append(cancels, e)
		}
	}
	for _, e := range cancels {
		e.Cancel()
	}
	s.Run()
	for j := 1; j < len(order); j++ {
		if order[j] < order[j-1] {
			t.Fatalf("ordering broken after mid-heap removals: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(units.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(0, func() {})
	})
	s.Run()
}

func TestAfterFromWithinEvent(t *testing.T) {
	s := New(1)
	var at units.Time
	s.After(units.Second, func() {
		s.After(500*units.Millisecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 1500*units.Millisecond {
		t.Errorf("nested After fired at %v", at)
	}
}

// TestHorizonKeepsFutureEvents is the regression test for the
// pop-and-drop horizon bug: an event beyond a RunUntil horizon must
// survive to a later Run call.
func TestHorizonKeepsFutureEvents(t *testing.T) {
	s := New(1)
	fired := false
	s.At(2*units.Second, func() { fired = true })
	s.RunUntil(units.Second)
	if fired {
		t.Fatal("event fired before its time")
	}
	if s.Now() != units.Second {
		t.Fatalf("Now = %v after RunUntil(1s)", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(3 * units.Second)
	if !fired {
		t.Fatal("event lost across RunUntil boundary")
	}
}

func TestRunUntilRepeatedBoundaries(t *testing.T) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 50 {
			s.After(100*units.Millisecond, tick)
		}
	}
	s.After(100*units.Millisecond, tick)
	for sec := 1; sec <= 6; sec++ {
		s.RunUntil(units.Time(sec) * units.Second)
	}
	if count != 50 {
		t.Errorf("count = %d, want 50", count)
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	n := 0
	for i := 1; i <= 10; i++ {
		s.At(units.Time(i)*units.Second, func() {
			n++
			if n == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	// A subsequent Run resumes the remaining events.
	s.Run()
	if n != 10 {
		t.Errorf("after resume n = %d, want 10", n)
	}
}

func TestFiredCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(units.Time(i)*units.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Errorf("Fired = %d", s.Fired())
	}
}
