package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/units"
)

// Sparse-workload stress for the calendar queue: a tcp-only run with
// long retransmission timeouts schedules almost nothing inside the
// 64 ms calendar window — every RTO lands in the overflow heap, and
// each firing rebases the window onto the overflow minimum and
// migrates whatever now fits. This is the regime the ROADMAP's
// "adaptive calendar-queue width" item targets; before touching the
// width policy, pin the current structure's exact (time, seq) firing
// order against the reference sort under heavy rebase pressure.

// rtoEvent mirrors the shape of a tcpsim long-RTO schedule entry.
type rtoEvent struct {
	when units.Time
	seq  int
}

// TestCalendarSparseLongRTOSchedule drives the schedule a tcp-only
// simulation with repeated RTO backoff produces: short in-window
// bursts (a flight of segments and their ACK timers), then an
// exponentially backed-off silence — 200 ms doubling to the 64 s RTO
// ceiling — far beyond the 64 ms calendar window, so every burst
// forces a window rebase and an overflow migration. Cancels model
// ACKs disarming pending retransmission timers. The firing order must
// match the (time, seq) reference sort exactly.
func TestCalendarSparseLongRTOSchedule(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(17))

	var want []rtoEvent
	var got []rtoEvent
	seq := 0
	add := func(when units.Time, cancelled bool) {
		id := seq
		seq++
		h := s.At(when, func() { got = append(got, rtoEvent{when, id}) })
		if cancelled {
			h.Cancel()
			return
		}
		want = append(want, rtoEvent{when, id})
	}

	// Ten connections, each cycling through RTO backoff epochs.
	for conn := 0; conn < 10; conn++ {
		base := units.Time(conn) * 37 * units.Millisecond
		rto := 200 * units.Millisecond
		for epoch := 0; epoch < 9; epoch++ {
			// The flight: a handful of segment transmissions clustered
			// within a few bucket widths of the epoch start.
			flight := 3 + rng.Intn(5)
			for i := 0; i < flight; i++ {
				at := base + units.Time(rng.Int63n(int64(2*units.Millisecond)))
				// Roughly half the per-segment timers are disarmed by an
				// "ACK" before firing, the calendar's lazy-purge path.
				add(at, rng.Intn(2) == 0)
			}
			// The retransmission timer itself: one far-future event per
			// epoch, doubling each time (the overflow resident).
			add(base+rto, false)
			base += rto
			if rto < 64*units.Second {
				rto *= 2
			}
		}
	}

	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending after drain", s.Pending())
	}
}

// TestCalendarCancelStormPurgesHeap models the schedule a cancel-heavy
// tcp run produces: sprays of retransmission timers pushed far beyond
// the calendar window, almost all of which are disarmed by an "ACK"
// before firing. The dead events accumulate deep inside the overflow
// heap where the lazy top-purge never reaches them; the rebase-point
// compaction must reclaim them mid-run (not at drain time), and the
// surviving events must still fire in exact (time, seq) order.
func TestCalendarCancelStormPurgesHeap(t *testing.T) {
	s := New(3)
	rng := rand.New(rand.NewSource(41))

	var want []rtoEvent
	var got []rtoEvent
	id := 0
	add := func(when units.Time, cancel bool) {
		k := rtoEvent{when, id}
		id++
		h := s.At(when, func() { got = append(got, k) })
		if cancel {
			h.Cancel()
			return
		}
		want = append(want, k)
	}

	// Forty rounds: each sprays RTO timers 200 ms – 1 s out (overflow
	// residents) and cancels 90% of them, plus a trickle of in-window
	// traffic that keeps the window draining and rebasing through the
	// storm.
	for round := 0; round < 40; round++ {
		base := units.Time(round) * 50 * units.Millisecond
		for i := 0; i < 100; i++ {
			at := base + 200*units.Millisecond + units.Time(rng.Int63n(int64(800*units.Millisecond)))
			add(at, rng.Intn(10) != 0)
		}
		for i := 0; i < 4; i++ {
			add(base+units.Time(rng.Int63n(int64(40*units.Millisecond))), false)
		}
	}

	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	qs := s.QueueStats()
	if qs.Compactions == 0 {
		t.Errorf("cancel storm triggered no overflow compaction (purged %d, rebases %d)",
			qs.PurgedCancelled, qs.Rebases)
	}
	if qs.PurgedCancelled == 0 {
		t.Errorf("no cancelled events purged")
	}
	if s.heapDead != 0 {
		t.Errorf("%d dead events still accounted in the drained heap", s.heapDead)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending after drain", s.Pending())
	}
}

// TestCalendarBimodalWidthTransitions alternates dense (~20 µs
// spacing) and sparse (~1 ms spacing) phases, each long enough for
// the adaptive policy's hysteresis to act, so the width is forced
// through repeated shrink and grow transitions. Every phase is
// differentially checked against the (time, seq) reference sort, and
// the sampled widths must show movement in both directions.
func TestCalendarBimodalWidthTransitions(t *testing.T) {
	s := New(7)
	rng := rand.New(rand.NewSource(53))

	var want []rtoEvent
	var got []rtoEvent
	id := 0
	add := func(when units.Time, cancel bool) {
		k := rtoEvent{when, id}
		id++
		h := s.At(when, func() { got = append(got, k) })
		if cancel {
			h.Cancel()
			return
		}
		want = append(want, k)
	}

	now := units.Time(0)
	var widths []units.Time
	for cycle := 0; cycle < 3; cycle++ {
		// Dense phase: 20k events at ~20 µs spacing (≈400 ms — several
		// calendar windows at any width the policy can pick), 5%
		// cancelled.
		for i := 0; i < 20000; i++ {
			at := now + units.Time(i)*20*units.Microsecond + units.Time(rng.Int63n(int64(10*units.Microsecond)))
			add(at, rng.Intn(20) == 0)
		}
		now += 410 * units.Millisecond
		s.RunUntil(now)
		widths = append(widths, s.width)

		// Sparse phase: 600 events at ~1 ms spacing (≈600 ms).
		for i := 0; i < 600; i++ {
			at := now + units.Time(i)*units.Millisecond + units.Time(rng.Int63n(int64(500*units.Microsecond)))
			add(at, false)
		}
		now += 610 * units.Millisecond
		s.RunUntil(now)
		widths = append(widths, s.width)
	}
	s.Run()

	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	var shrank, grew bool
	for _, w := range widths {
		if w < DefaultBucketWidth {
			shrank = true
		}
		if w > DefaultBucketWidth {
			grew = true
		}
	}
	qs := s.QueueStats()
	if !shrank || !grew || qs.WidthMoves < 2 {
		t.Errorf("bimodal load did not force both transitions: widths %v, moves %d",
			widths, qs.WidthMoves)
	}
}

// TestCalendarBurstGapAdaptiveSchedule is the burst-gap pattern: tight
// event bursts (300 events within 1.5 ms) separated by 300 ms
// silences, then a long dense tail. The window-mean spacing of the
// burst phase (~1 ms) must grow the width past the default; the dense
// tail must bring it back down — with the full firing sequence still
// matching the reference sort across every transition.
func TestCalendarBurstGapAdaptiveSchedule(t *testing.T) {
	s := New(11)
	rng := rand.New(rand.NewSource(67))

	var want []rtoEvent
	var got []rtoEvent
	id := 0
	add := func(when units.Time, cancel bool) {
		k := rtoEvent{when, id}
		id++
		h := s.At(when, func() { got = append(got, k) })
		if cancel {
			h.Cancel()
			return
		}
		want = append(want, k)
	}

	for burst := 0; burst < 40; burst++ {
		base := units.Time(burst) * 300 * units.Millisecond
		for i := 0; i < 300; i++ {
			at := base + units.Time(i)*5*units.Microsecond + units.Time(rng.Int63n(int64(2*units.Microsecond)))
			add(at, rng.Intn(8) == 0)
		}
	}
	tail := 12 * units.Second
	for i := 0; i < 200000; i++ {
		at := tail + units.Time(i)*10*units.Microsecond + units.Time(rng.Int63n(int64(5*units.Microsecond)))
		add(at, false)
	}

	s.RunUntil(tail)
	wideWidth := s.width
	s.Run()

	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if wideWidth <= DefaultBucketWidth {
		t.Errorf("burst-gap phase did not widen: width %v after bursts", wideWidth)
	}
	if s.width >= DefaultBucketWidth {
		t.Errorf("dense tail did not narrow: width %v at drain", s.width)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending after drain", s.Pending())
	}
}

// TestCalendarRebaseInterleavedWithDense interleaves the sparse RTO
// pattern with a dense near-future packet stream, so window advances
// happen while buckets still drain — rebases must never reorder or
// drop the in-window traffic that races them.
func TestCalendarRebaseInterleavedWithDense(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(29))

	type key struct {
		when units.Time
		seq  int
	}
	var want []key
	var got []key
	for i := 0; i < 4000; i++ {
		var when units.Time
		switch rng.Intn(4) {
		case 0:
			// Dense sub-window traffic.
			when = units.Time(rng.Int63n(int64(numBuckets * DefaultBucketWidth)))
		case 1:
			// Just past the window edge: migrates on the first rebase.
			when = units.Time(numBuckets*DefaultBucketWidth) + units.Time(rng.Int63n(int64(DefaultBucketWidth)))
		default:
			// Long-RTO silence: seconds to minutes out.
			when = units.Time(rng.Int63n(int64(120 * units.Second)))
		}
		i := i
		w := when
		s.At(when, func() { got = append(got, key{w, i}) })
		want = append(want, key{when, i})
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
