package sim

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/units"
)

// Sparse-workload stress for the calendar queue: a tcp-only run with
// long retransmission timeouts schedules almost nothing inside the
// 64 ms calendar window — every RTO lands in the overflow heap, and
// each firing rebases the window onto the overflow minimum and
// migrates whatever now fits. This is the regime the ROADMAP's
// "adaptive calendar-queue width" item targets; before touching the
// width policy, pin the current structure's exact (time, seq) firing
// order against the reference sort under heavy rebase pressure.

// rtoEvent mirrors the shape of a tcpsim long-RTO schedule entry.
type rtoEvent struct {
	when units.Time
	seq  int
}

// TestCalendarSparseLongRTOSchedule drives the schedule a tcp-only
// simulation with repeated RTO backoff produces: short in-window
// bursts (a flight of segments and their ACK timers), then an
// exponentially backed-off silence — 200 ms doubling to the 64 s RTO
// ceiling — far beyond the 64 ms calendar window, so every burst
// forces a window rebase and an overflow migration. Cancels model
// ACKs disarming pending retransmission timers. The firing order must
// match the (time, seq) reference sort exactly.
func TestCalendarSparseLongRTOSchedule(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(17))

	var want []rtoEvent
	var got []rtoEvent
	seq := 0
	add := func(when units.Time, cancelled bool) {
		id := seq
		seq++
		h := s.At(when, func() { got = append(got, rtoEvent{when, id}) })
		if cancelled {
			h.Cancel()
			return
		}
		want = append(want, rtoEvent{when, id})
	}

	// Ten connections, each cycling through RTO backoff epochs.
	for conn := 0; conn < 10; conn++ {
		base := units.Time(conn) * 37 * units.Millisecond
		rto := 200 * units.Millisecond
		for epoch := 0; epoch < 9; epoch++ {
			// The flight: a handful of segment transmissions clustered
			// within a few bucket widths of the epoch start.
			flight := 3 + rng.Intn(5)
			for i := 0; i < flight; i++ {
				at := base + units.Time(rng.Int63n(int64(2*units.Millisecond)))
				// Roughly half the per-segment timers are disarmed by an
				// "ACK" before firing, the calendar's lazy-purge path.
				add(at, rng.Intn(2) == 0)
			}
			// The retransmission timer itself: one far-future event per
			// epoch, doubling each time (the overflow resident).
			add(base+rto, false)
			base += rto
			if rto < 64*units.Second {
				rto *= 2
			}
		}
	}

	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending after drain", s.Pending())
	}
}

// TestCalendarRebaseInterleavedWithDense interleaves the sparse RTO
// pattern with a dense near-future packet stream, so window advances
// happen while buckets still drain — rebases must never reorder or
// drop the in-window traffic that races them.
func TestCalendarRebaseInterleavedWithDense(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(29))

	type key struct {
		when units.Time
		seq  int
	}
	var want []key
	var got []key
	for i := 0; i < 4000; i++ {
		var when units.Time
		switch rng.Intn(4) {
		case 0:
			// Dense sub-window traffic.
			when = units.Time(rng.Int63n(int64(numBuckets * DefaultBucketWidth)))
		case 1:
			// Just past the window edge: migrates on the first rebase.
			when = units.Time(numBuckets*DefaultBucketWidth) + units.Time(rng.Int63n(int64(DefaultBucketWidth)))
		default:
			// Long-RTO silence: seconds to minutes out.
			when = units.Time(rng.Int63n(int64(120 * units.Second)))
		}
		i := i
		w := when
		s.At(when, func() { got = append(got, key{w, i}) })
		want = append(want, key{when, i})
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].when < want[b].when })
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
