// Package sim is a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a pending-event structure
// ordered by (time, sequence): two events scheduled for the same
// instant fire in scheduling order, which keeps every experiment
// bit-for-bit reproducible for a given seed.
//
// # Scheduling APIs
//
// There are two ways to schedule work:
//
//   - At / After take a closure. Convenient, but each call heap
//     allocates the closure (plus whatever it captures), so they are
//     meant for setup-time and low-rate scheduling.
//   - AtTimer / AfterTimer take a Timer — any value with a
//     Fire(now units.Time) method. A component that keeps one
//     long-lived Timer value (typically a pointer-conversion type of
//     the component itself) schedules with zero allocations per
//     event, which is what the per-packet hot paths use.
//
// Both return a Handle. Events themselves are pooled: once fired or
// cancelled an Event is recycled, so steady-state scheduling performs
// no allocation at all. Handles are generation-checked, so a stale
// Handle held after its event fired is inert — Cancel on it is a
// no-op and Active reports false — never a corruption of whichever
// event happens to be reusing the same slot.
//
// # Internal structure
//
// Pending events live in a calendar queue: a window of equal-width
// time buckets covering the near future, with a binary-heap overflow
// for events beyond the window. Dequeue cost is O(1) amortized for
// the dense near-future traffic a packet simulation generates, while
// far-future events (a clip's whole frame schedule, multi-second
// timeouts) wait in the heap and migrate into buckets as the window
// advances. The bucket width is self-tuning: the simulator tracks the
// observed event density and re-derives the width at window rebases
// (see adaptive.go), unless a width was pinned at construction.
// Selection is always by the unique (time, seq) key, so the firing
// order is exactly the order a single global heap would produce — the
// structure, including its width, is a performance choice, never a
// semantic one.
package sim

import (
	"fmt"

	"repro/internal/units"
)

// Timer is the closure-free scheduling interface: Fire runs at the
// scheduled instant with the simulator clock already advanced to it.
// Components implement Fire on cheap pointer-conversion types (e.g.
// `type txDoneTimer Link`) so one long-lived interface value serves
// every scheduling of that callback.
type Timer interface {
	Fire(now units.Time)
}

// Event is one pending callback. Events are owned and recycled by the
// Simulator; user code only ever holds Handles.
type Event struct {
	when      units.Time
	seq       uint64
	fn        func()
	timer     Timer
	gen       uint32
	cancelled bool
	inHeap    bool // currently resident in the overflow heap
	sim       *Simulator
}

// release clears an event's payload and returns it to the free list.
// Bumping the generation invalidates every Handle pointing at it.
func (s *Simulator) release(e *Event) {
	if e.cancelled {
		s.qPurged++
	}
	e.gen++
	e.fn = nil
	e.timer = nil
	e.cancelled = false
	e.inHeap = false
	s.free = append(s.free, e)
}

// Handle identifies a scheduled event. The zero Handle is valid and
// inactive. Handles are generation-checked: once the event fires or
// is cancelled, the handle goes stale and every method is a no-op.
type Handle struct {
	e   *Event
	gen uint32
}

// Active reports whether the event is still pending: not yet fired
// and not cancelled.
func (h Handle) Active() bool {
	return h.e != nil && h.e.gen == h.gen && !h.e.cancelled
}

// When reports the scheduled time of a still-active event; 0 for a
// stale or cancelled handle.
func (h Handle) When() units.Time {
	if !h.Active() {
		return 0
	}
	return h.e.when
}

// Cancel prevents a pending event from firing. The closure or Timer
// is released immediately — a cancelled event pins nothing until its
// timestamp — and Pending() drops at once. Safe to call any number of
// times, on the zero Handle, and after the event has fired (all
// no-ops).
func (h Handle) Cancel() {
	e := h.e
	if e == nil || e.gen != h.gen || e.cancelled {
		return
	}
	e.cancelled = true
	e.fn = nil
	e.timer = nil
	e.sim.live--
	if e.inHeap {
		// Dead weight in the overflow heap; once enough accumulates the
		// next window rebase compacts it away (see compactOverflow).
		e.sim.heapDead++
	}
	// Cancelling anything other than the cached minimum cannot change
	// the minimum, so the peek cache survives.
	if e.sim.cachedMin == e {
		e.sim.cachedMin = nil
	}
}

// numBuckets is the calendar window size at the default width. 256
// buckets of the default width cover 64 ms — a few frame intervals of
// a streaming experiment — which keeps per-bucket occupancy near one
// for packet-rate traffic. Narrower widths get proportionally more
// buckets (see bucketCount) so the window — and with it the share of
// events that bypass the overflow heap — does not shrink with the
// granularity.
const numBuckets = 256

// maxBuckets caps the lattice growth for very narrow widths: 2^17
// slice headers are ~3 MB, and below ~500 ns granularity the window
// already spans tens of milliseconds.
const maxBuckets = 1 << 17

// bucketCount picks the lattice size for a width: enough buckets to
// keep the window at numBuckets × DefaultBucketWidth, rounded up to a
// power of two, within [numBuckets, maxBuckets].
func bucketCount(width units.Time) int {
	span := units.Time(numBuckets) * DefaultBucketWidth
	n := numBuckets
	for n < maxBuckets && units.Time(n)*width < span {
		n <<= 1
	}
	return n
}

// DefaultBucketWidth is the default calendar bucket granularity. The
// bucket-width microbenchmarks in the repo root sweep widths around
// this value over dense, sparse and bimodal schedules; 250 µs sits on
// the flat part of all three curves.
const DefaultBucketWidth = 250 * units.Microsecond

// Simulator owns the event structures, the virtual clock, and the
// run's random number source. The zero value is not usable; call New.
type Simulator struct {
	now units.Time
	seq uint64
	rng *RNG

	// Calendar window: buckets[i] holds events with
	// when < base + (i+1)*bucketWidth (an event may sit in an earlier
	// bucket than its natural one, never a later one). Events at or
	// beyond the window end wait in the overflow heap.
	buckets  [][]*Event // lattice; len is bucketCount(width), re-derived on width moves
	width    units.Time // bucket granularity (adaptive unless pinned at construction)
	base     units.Time
	cur      int // lowest possibly non-empty bucket
	nBuckets int // events physically present in buckets
	overflow []*Event
	heapDead int // cancelled events still resident in the overflow heap

	// Density-adaptive width policy state (see adaptive.go). The
	// counters are streaming telemetry; decideFired/decideTime and
	// lastDir drive the hysteretic width decision at window rebases.
	adaptive     bool       // false when the width was pinned at construction
	decideFired  uint64     // s.fired at the last width decision
	decideTime   units.Time // window base at the last width decision
	lastDir      int8       // direction of the previous decision's pressure
	lastSched    units.Time // previous schedule() timestamp (spacing sampler)
	spacingEWMA  int64      // EWMA of sampled |Δwhen| between schedules, ns
	qScheduled   uint64     // events ever scheduled
	qOverflowed  uint64     // schedules that landed in the overflow heap
	qRebases     uint64     // window rebases
	qWidthMoves  uint64     // adaptive width transitions
	qCompactions uint64     // overflow-heap compactions
	qPurged      uint64     // cancelled events reclaimed before firing

	// min() caches the located minimum so the Run loop's
	// peek-then-pop costs one scan, not two. The minimum always lives
	// in a bucket: the window-advance path migrates at least the
	// overflow top into the window before returning.
	cachedMin    *Event
	cachedBucket int
	cachedSlot   int

	live   int // pending, non-cancelled events (Pending)
	free   []*Event
	fired  uint64
	maxT   units.Time // horizon; 0 means none
	halted bool
}

// New returns a simulator whose random source is seeded with seed.
// The calendar width starts at DefaultBucketWidth and adapts to the
// observed event density (see adaptive.go).
func New(seed uint64) *Simulator {
	return NewWithBucketWidth(seed, 0)
}

// NewWithBucketWidth is New with an explicit calendar bucket
// granularity. Bucket width is a performance knob, never a semantic
// one: selection is always by the unique (time, seq) key, so two
// simulators differing only in width fire the same events in the same
// order. A positive width pins the calendar geometry and disables
// adaptation — the -bucket-width escape hatch; non-positive widths
// start at the default and let the density-adaptive policy re-derive
// the width at window rebases.
func NewWithBucketWidth(seed uint64, width units.Time) *Simulator {
	adaptive := width <= 0
	if adaptive {
		width = DefaultBucketWidth
	}
	return &Simulator{rng: NewRNG(seed), width: width, adaptive: adaptive,
		buckets: makeLattice(bucketCount(width))}
}

// Now reports the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many live events remain scheduled. Cancelled
// events stop counting at Cancel time even though their slots are
// reclaimed lazily.
func (s *Simulator) Pending() int { return s.live }

// alloc takes an event from the free list (or the heap allocator on a
// cold start) and initializes it for scheduling at t.
func (s *Simulator) alloc(t units.Time) *Event {
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &Event{sim: s}
	}
	e.when = t
	e.seq = s.seq
	s.seq++
	return e
}

// schedule inserts e into the calendar window or the overflow heap,
// feeding the density sampler on the way (every 8th call, shift-based
// EWMA — no divisions, no allocation).
func (s *Simulator) schedule(e *Event) {
	s.live++
	s.cachedMin = nil
	s.qScheduled++
	if s.qScheduled&7 == 0 {
		d := int64(e.when - s.lastSched)
		if d < 0 {
			d = -d
		}
		s.spacingEWMA += (d - s.spacingEWMA) >> 3
	}
	s.lastSched = e.when
	end := s.base + units.Time(len(s.buckets))*s.width
	if e.when >= end {
		s.qOverflowed++
		s.heapPush(e)
		return
	}
	i := 0
	if e.when > s.base {
		i = int((e.when - s.base) / s.width)
	}
	if i < s.cur {
		s.cur = i
	}
	s.buckets[i] = append(s.buckets[i], e)
	s.nBuckets++
}

func (s *Simulator) checkPast(t units.Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
}

// At schedules fn to run at absolute simulated time t. Scheduling in
// the past panics: that is always a logic error in a discrete-event
// model and silently reordering time would corrupt the run.
func (s *Simulator) At(t units.Time, fn func()) Handle {
	s.checkPast(t)
	e := s.alloc(t)
	e.fn = fn
	s.schedule(e)
	return Handle{e: e, gen: e.gen}
}

// After schedules fn to run d from now.
func (s *Simulator) After(d units.Time, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtTimer schedules tm.Fire at absolute time t without allocating.
func (s *Simulator) AtTimer(t units.Time, tm Timer) Handle {
	s.checkPast(t)
	e := s.alloc(t)
	e.timer = tm
	s.schedule(e)
	return Handle{e: e, gen: e.gen}
}

// AfterTimer schedules tm.Fire d from now without allocating.
func (s *Simulator) AfterTimer(d units.Time, tm Timer) Handle {
	if d < 0 {
		d = 0
	}
	return s.AtTimer(s.now+d, tm)
}

// min locates (and caches) the earliest pending event, lazily purging
// cancelled events it passes over. Returns nil when nothing is
// pending.
func (s *Simulator) min() *Event {
	if s.cachedMin != nil {
		return s.cachedMin
	}
	for {
		// Scan the window from the cursor — but only when something is
		// physically in it, so draining the queue does not walk every
		// empty bucket.
		for b := s.cur; s.nBuckets > 0 && b < len(s.buckets); b++ {
			bucket := s.buckets[b]
			var best *Event
			slot := -1
			for i := 0; i < len(bucket); {
				e := bucket[i]
				if e.cancelled {
					// Swap-delete and recycle; selection is by the
					// unique (when, seq) key, so storage order within
					// a bucket is irrelevant.
					last := len(bucket) - 1
					bucket[i] = bucket[last]
					bucket[last] = nil
					bucket = bucket[:last]
					s.nBuckets--
					s.release(e)
					continue
				}
				if best == nil || e.when < best.when || (e.when == best.when && e.seq < best.seq) {
					best, slot = e, i
				}
				i++
			}
			s.buckets[b] = bucket
			if best != nil {
				s.cur = b
				s.cachedMin, s.cachedBucket, s.cachedSlot = best, b, slot
				return best
			}
			s.cur = b + 1
		}
		// Window exhausted: purge cancelled overflow tops, then either
		// finish (empty) or rebase the window onto the overflow minimum.
		for len(s.overflow) > 0 && s.overflow[0].cancelled {
			s.release(s.heapPop())
		}
		if len(s.overflow) == 0 {
			return nil
		}
		s.rebase()
	}
}

// rebase advances the calendar window to the overflow minimum and
// migrates everything that fits into buckets. The lattice is provably
// empty here (the min scan drained or purged every bucket), which
// makes this the one point where geometry may change: the heap is
// compacted if cancellations dominate it, and — unless the width was
// pinned at construction — the adaptive policy re-derives the bucket
// width from the density observed since the last decision.
func (s *Simulator) rebase() {
	s.qRebases++
	if s.heapDead >= compactMinDead && s.heapDead*4 >= len(s.overflow) {
		s.compactOverflow()
	}
	if s.adaptive {
		s.adaptWidth(s.overflow[0].when)
	}
	s.base = s.overflow[0].when
	s.cur = 0
	end := s.base + units.Time(len(s.buckets))*s.width
	for len(s.overflow) > 0 && s.overflow[0].when < end {
		e := s.heapPop()
		if e.cancelled {
			s.release(e)
			continue
		}
		i := int((e.when - s.base) / s.width)
		s.buckets[i] = append(s.buckets[i], e)
		s.nBuckets++
	}
}

// popMin removes the event min() located (always bucket-resident —
// see the cachedMin field comment).
func (s *Simulator) popMin() *Event {
	e := s.min()
	if e == nil {
		return nil
	}
	bucket := s.buckets[s.cachedBucket]
	last := len(bucket) - 1
	bucket[s.cachedSlot] = bucket[last]
	bucket[last] = nil
	s.buckets[s.cachedBucket] = bucket[:last]
	s.nBuckets--
	s.cachedMin = nil
	s.live--
	return e
}

// Halt stops Run before the next event fires. Intended to be called
// from inside an event callback.
func (s *Simulator) Halt() { s.halted = true }

// SetHorizon makes Run stop once the clock would pass t. Zero removes
// the horizon.
func (s *Simulator) SetHorizon(t units.Time) { s.maxT = t }

// Run executes events until none remain pending, the horizon passes,
// or Halt is called. It returns the final simulated time.
func (s *Simulator) Run() units.Time {
	s.halted = false
	for !s.halted {
		e := s.min()
		if e == nil {
			break
		}
		// Peek: an event beyond the horizon must stay queued so a
		// later Run/RunUntil can still execute it.
		if s.maxT > 0 && e.when > s.maxT {
			if s.now < s.maxT {
				s.now = s.maxT
			}
			return s.now
		}
		s.popMin()
		s.now = e.when
		s.fired++
		fn, tm := e.fn, e.timer
		// Recycle before firing so a periodic Timer's re-schedule
		// reuses this very event — the steady state allocates nothing.
		s.release(e)
		if tm != nil {
			tm.Fire(s.now)
		} else {
			fn()
		}
	}
	return s.now
}

// RunUntil executes events with a horizon of t, then restores the
// previous horizon.
func (s *Simulator) RunUntil(t units.Time) units.Time {
	old := s.maxT
	s.maxT = t
	defer func() { s.maxT = old }()
	return s.Run()
}

// NextEventTime peeks at the earliest pending event without firing
// it. The second result is false when nothing is pending.
func (s *Simulator) NextEventTime() (units.Time, bool) {
	e := s.min()
	if e == nil {
		return 0, false
	}
	return e.when, true
}

// RunBefore executes every pending event scheduled strictly before t
// and stops, leaving events at or after t queued and the clock on the
// last fired event (never advanced to t itself — AdvanceTo does
// that). It ignores the horizon: the caller's bound is t. This is the
// window primitive of the sharded execution mode: a shard drains its
// private calendar one conservative-lookahead window at a time, and
// the border simulator catches up to just before each injected
// emission so the injection lands in exact (time, seq) order relative
// to the border's own events.
func (s *Simulator) RunBefore(t units.Time) units.Time {
	s.halted = false
	for !s.halted {
		e := s.min()
		if e == nil || e.when >= t {
			break
		}
		s.popMin()
		s.now = e.when
		s.fired++
		fn, tm := e.fn, e.timer
		s.release(e)
		if tm != nil {
			tm.Fire(s.now)
		} else {
			fn()
		}
	}
	return s.now
}

// AdvanceTo moves the clock forward to t without firing anything.
// Advancing over a pending event panics — that would reorder time —
// so callers drain with RunBefore(t) first. Advancing to the past is
// a no-op for t == now and a panic below it, matching the scheduling
// guard.
func (s *Simulator) AdvanceTo(t units.Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now %v", t, s.now))
	}
	if e := s.min(); e != nil && e.when < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) would skip event at %v", t, e.when))
	}
	s.now = t
}

// --- overflow heap (min by (when, seq)) ---
//
// Hand-rolled rather than container/heap to avoid the interface
// boxing on every push/pop of the hot path.

func eventLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (s *Simulator) heapPush(e *Event) {
	e.inHeap = true
	s.overflow = append(s.overflow, e)
	i := len(s.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(s.overflow[i], s.overflow[parent]) {
			break
		}
		s.overflow[i], s.overflow[parent] = s.overflow[parent], s.overflow[i]
		i = parent
	}
}

func (s *Simulator) heapPop() *Event {
	h := s.overflow
	top := h[0]
	top.inHeap = false
	if top.cancelled {
		s.heapDead--
	}
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nil
	s.overflow = h[:last]
	s.siftDown(0)
	return top
}

func (s *Simulator) siftDown(i int) {
	h := s.overflow
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h[l], h[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h[r], h[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}
