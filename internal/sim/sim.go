// Package sim is a deterministic discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a priority queue of timestamped
// events. Components schedule closures with At or After; Run drains the
// queue in (time, sequence) order so that two events scheduled for the
// same instant fire in scheduling order, which keeps every experiment
// bit-for-bit reproducible for a given seed.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/units"
)

// Event is a scheduled callback.
type Event struct {
	when   units.Time
	seq    uint64
	fn     func()
	owner  *Simulator
	index  int // heap index, -1 once popped or cancelled
	cancel bool
}

// Cancel prevents the event from firing and removes it from the
// owner's queue immediately, so cancelled events neither inflate
// Pending() nor pin their closures until their timestamp is reached.
// Safe to call multiple times and after the event has fired (then it
// is a no-op).
func (e *Event) Cancel() {
	if e == nil || e.cancel {
		return
	}
	e.cancel = true
	if e.owner != nil && e.index >= 0 {
		heap.Remove(&e.owner.queue, e.index)
		e.fn = nil // release the closure and whatever it captures
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// When reports the simulated time the event is scheduled for.
func (e *Event) When() units.Time { return e.when }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Simulator owns the event queue, the virtual clock, and the run's
// random number source. The zero value is not usable; call New.
type Simulator struct {
	now    units.Time
	queue  eventQueue
	seq    uint64
	rng    *RNG
	fired  uint64
	maxT   units.Time // horizon; 0 means none
	halted bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed uint64) *Simulator {
	return &Simulator{rng: NewRNG(seed)}
}

// Now reports the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// RNG returns the simulator's deterministic random source.
func (s *Simulator) RNG() *RNG { return s.rng }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many live events remain queued. Cancelled
// events are removed from the queue at Cancel time, so they never
// count here.
func (s *Simulator) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute simulated time t. Scheduling in
// the past panics: that is always a logic error in a discrete-event
// model and silently reordering time would corrupt the run.
func (s *Simulator) At(t units.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.seq, fn: fn, owner: s}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d from now.
func (s *Simulator) After(d units.Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Halt stops Run before the next event fires. Intended to be called
// from inside an event callback.
func (s *Simulator) Halt() { s.halted = true }

// SetHorizon makes Run stop once the clock would pass t. Zero removes
// the horizon.
func (s *Simulator) SetHorizon(t units.Time) { s.maxT = t }

// Run executes events until the queue is empty, the horizon passes, or
// Halt is called. It returns the final simulated time.
func (s *Simulator) Run() units.Time {
	s.halted = false
	for len(s.queue) > 0 && !s.halted {
		// Peek: an event beyond the horizon must stay queued so a
		// later Run/RunUntil can still execute it.
		if s.maxT > 0 && s.queue[0].when > s.maxT {
			if s.now < s.maxT {
				s.now = s.maxT
			}
			return s.now
		}
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			// Unreachable in normal operation — Cancel removes the
			// event from the queue — but kept as a guard.
			continue
		}
		s.now = e.when
		s.fired++
		e.fn()
	}
	return s.now
}

// RunUntil executes events with a horizon of t, then restores the
// previous horizon.
func (s *Simulator) RunUntil(t units.Time) units.Time {
	old := s.maxT
	s.maxT = t
	defer func() { s.maxT = old }()
	return s.Run()
}
