// Package traffic provides background (cross) traffic sources: CBR,
// Poisson, and heavy-tailed on-off generators. The QBone experiments
// could not control interfering traffic; the simulator injects it
// explicitly so its effect on the EF service can be studied (and, as
// the paper found, shown to be minor when EF is prioritized).
//
// Every source emits through the sim.Timer API and draws packets from
// an optional packet.Pool, so a running source allocates nothing per
// packet.
package traffic

import (
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// NewPacketID hands out globally unique packet ids across all sources
// in a process — the single process-wide counter in the packet
// package, shared with the server-side stampers so source and server
// packets never alias in a trace.
func NewPacketID() uint64 { return packet.NewID() }

// ResetPacketIDs restarts the id counter (tests and experiment
// isolation).
func ResetPacketIDs() { packet.ResetIDs() }

// CBR emits fixed-size packets at a constant bit rate.
type CBR struct {
	Sim   *sim.Simulator
	Rate  units.BitRate
	Size  int
	Flow  packet.FlowID
	DSCP  packet.DSCP
	Next  packet.Handler
	Pool  *packet.Pool
	Until units.Time // stop time; 0 = run to horizon

	Sent int
}

// cbrTimer is the pointer-conversion Timer of a CBR source.
type cbrTimer CBR

// Fire emits the next packet.
func (c *cbrTimer) Fire(units.Time) { (*CBR)(c).emit() }

// Start schedules the first emission.
func (c *CBR) Start() {
	if c.Size <= 0 {
		c.Size = units.EthernetMTU
	}
	c.Sim.AfterTimer(0, (*cbrTimer)(c))
}

func (c *CBR) emit() {
	if c.Until > 0 && c.Sim.Now() >= c.Until {
		return
	}
	p := c.Pool.Get()
	p.ID, p.Flow, p.Size = NewPacketID(), c.Flow, c.Size
	p.DSCP, p.SentAt, p.FrameSeq = c.DSCP, c.Sim.Now(), -1
	c.Sent++
	c.Next.Handle(p)
	c.Sim.AfterTimer(c.Rate.TxTime(c.Size), (*cbrTimer)(c))
}

// Poisson emits fixed-size packets with exponential inter-arrivals
// averaging the configured rate.
type Poisson struct {
	Sim   *sim.Simulator
	Rate  units.BitRate
	Size  int
	Flow  packet.FlowID
	DSCP  packet.DSCP
	Next  packet.Handler
	Pool  *packet.Pool
	Until units.Time

	rng  *sim.RNG
	Sent int
}

// poissonTimer is the pointer-conversion Timer of a Poisson source.
type poissonTimer Poisson

// Fire emits one arrival and schedules the next.
func (p *poissonTimer) Fire(units.Time) { (*Poisson)(p).arrive() }

// Start forks a dedicated RNG stream and schedules the first arrival.
func (p *Poisson) Start() {
	if p.Size <= 0 {
		p.Size = units.EthernetMTU
	}
	p.rng = p.Sim.RNG().Fork()
	p.scheduleNext()
}

func (p *Poisson) scheduleNext() {
	mean := float64(p.Rate.TxTime(p.Size))
	d := units.Time(p.rng.Exp(mean))
	p.Sim.AfterTimer(d, (*poissonTimer)(p))
}

func (p *Poisson) arrive() {
	if p.Until > 0 && p.Sim.Now() >= p.Until {
		return
	}
	pkt := p.Pool.Get()
	pkt.ID, pkt.Flow, pkt.Size = NewPacketID(), p.Flow, p.Size
	pkt.DSCP, pkt.SentAt, pkt.FrameSeq = p.DSCP, p.Sim.Now(), -1
	p.Sent++
	p.Next.Handle(pkt)
	p.scheduleNext()
}

// OnOff alternates exponentially distributed ON periods, during which
// it sends CBR at PeakRate, with Pareto-tailed OFF periods — the
// classic self-similar cross-traffic model.
type OnOff struct {
	Sim      *sim.Simulator
	PeakRate units.BitRate
	Size     int
	MeanOn   units.Time
	MeanOff  units.Time
	Flow     packet.FlowID
	DSCP     packet.DSCP
	Next     packet.Handler
	Pool     *packet.Pool
	Until    units.Time

	rng   *sim.RNG
	onEnd units.Time
	Sent  int
}

// onOffStartTimer begins an ON period; onOffEmitTimer sends the next
// packet within it. Both are pointer conversions of the source.
type (
	onOffStartTimer OnOff
	onOffEmitTimer  OnOff
)

// Fire begins an ON period.
func (o *onOffStartTimer) Fire(units.Time) { (*OnOff)(o).beginOn() }

// Fire emits the next packet of the ON period.
func (o *onOffEmitTimer) Fire(units.Time) { (*OnOff)(o).emit() }

// Start begins with an OFF period so sources desynchronize.
func (o *OnOff) Start() {
	if o.Size <= 0 {
		o.Size = units.EthernetMTU
	}
	o.rng = o.Sim.RNG().Fork()
	o.scheduleOn()
}

func (o *OnOff) scheduleOn() {
	off := units.Time(o.rng.Pareto(1.5, float64(o.MeanOff)/3))
	o.Sim.AfterTimer(off, (*onOffStartTimer)(o))
}

func (o *OnOff) beginOn() {
	if o.Until > 0 && o.Sim.Now() >= o.Until {
		return
	}
	on := units.Time(o.rng.Exp(float64(o.MeanOn)))
	o.onEnd = o.Sim.Now() + on
	o.emit()
}

func (o *OnOff) emit() {
	if o.Sim.Now() >= o.onEnd {
		o.scheduleOn()
		return
	}
	p := o.Pool.Get()
	p.ID, p.Flow, p.Size = NewPacketID(), o.Flow, o.Size
	p.DSCP, p.SentAt, p.FrameSeq = o.DSCP, o.Sim.Now(), -1
	o.Sent++
	o.Next.Handle(p)
	o.Sim.AfterTimer(o.PeakRate.TxTime(o.Size), (*onOffEmitTimer)(o))
}
