package traffic

import (
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestCBRRate(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	c := &CBR{Sim: s, Rate: 2 * units.Mbps, Size: 1500, Next: &sink, Until: 10 * units.Second}
	c.Start()
	s.SetHorizon(10 * units.Second)
	s.Run()
	gotRate := float64(sink.Bytes) * 8 / 10
	if math.Abs(gotRate-2e6) > 2e4 {
		t.Errorf("rate = %v, want ~2e6", gotRate)
	}
}

func TestCBRDefaultSize(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	c := &CBR{Sim: s, Rate: units.Mbps, Next: &sink, Until: units.Second}
	c.Start()
	s.SetHorizon(units.Second)
	s.Run()
	if sink.Last.Size != units.EthernetMTU {
		t.Errorf("default size = %d", sink.Last.Size)
	}
}

func TestPoissonMeanRate(t *testing.T) {
	s := sim.New(2)
	var sink packet.Sink
	p := &Poisson{Sim: s, Rate: 5 * units.Mbps, Size: 1500, Next: &sink, Until: 60 * units.Second}
	p.Start()
	s.SetHorizon(60 * units.Second)
	s.Run()
	gotRate := float64(sink.Bytes) * 8 / 60
	if math.Abs(gotRate-5e6)/5e6 > 0.05 {
		t.Errorf("rate = %v, want ~5e6 ±5%%", gotRate)
	}
}

func TestPoissonInterArrivalVariability(t *testing.T) {
	s := sim.New(3)
	var times []units.Time
	p := &Poisson{Sim: s, Rate: units.Mbps, Size: 1500, Until: 30 * units.Second,
		Next: packet.HandlerFunc(func(*packet.Packet) { times = append(times, s.Now()) })}
	p.Start()
	s.SetHorizon(30 * units.Second)
	s.Run()
	if len(times) < 100 {
		t.Fatalf("too few arrivals: %d", len(times))
	}
	// Coefficient of variation of exponential inter-arrivals ≈ 1.
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	var sum, sumSq float64
	for _, g := range gaps {
		sum += g
	}
	mean := sum / float64(len(gaps))
	for _, g := range gaps {
		sumSq += (g - mean) * (g - mean)
	}
	cv := math.Sqrt(sumSq/float64(len(gaps))) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Errorf("CV = %v, want ~1 (exponential)", cv)
	}
}

func TestOnOffAlternates(t *testing.T) {
	s := sim.New(4)
	var sink packet.Sink
	o := &OnOff{
		Sim: s, PeakRate: 10 * units.Mbps, Size: 1500,
		MeanOn: 100 * units.Millisecond, MeanOff: 300 * units.Millisecond,
		Next: &sink, Until: 30 * units.Second,
	}
	o.Start()
	s.SetHorizon(30 * units.Second)
	s.Run()
	if sink.Count == 0 {
		t.Fatal("on-off source never sent")
	}
	// Average rate must be well below peak (off periods dominate).
	avgRate := float64(sink.Bytes) * 8 / 30
	if avgRate > 8e6 {
		t.Errorf("avg rate %v too close to peak; no off periods?", avgRate)
	}
}

func TestPacketIDsUnique(t *testing.T) {
	ResetPacketIDs()
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewPacketID()
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
}
