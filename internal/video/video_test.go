package video

import (
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestClipDimensionsMatchPaper(t *testing.T) {
	lost, dark := Lost(), Dark()
	if lost.FrameCount() != 2150 {
		t.Errorf("Lost frames = %d, want 2150", lost.FrameCount())
	}
	if dark.FrameCount() != 4219 {
		t.Errorf("Dark frames = %d, want 4219", dark.FrameCount())
	}
	// Paper: 71.74 s and 140.77 s at NTSC rate.
	if d := lost.DurationSeconds(); math.Abs(d-71.74) > 0.02 {
		t.Errorf("Lost duration = %v, want 71.74", d)
	}
	if d := dark.DurationSeconds(); math.Abs(d-140.77) > 0.02 {
		t.Errorf("Dark duration = %v, want 140.77", d)
	}
}

func TestFPSAndFrameInterval(t *testing.T) {
	if math.Abs(FPS-29.97) > 0.01 {
		t.Errorf("FPS = %v", FPS)
	}
	iv := FrameInterval()
	if iv < 33*units.Millisecond || iv > 34*units.Millisecond {
		t.Errorf("FrameInterval = %v", iv)
	}
	if BigYUVFrameBytes != 153600 {
		t.Errorf("BigYUV frame = %d, want 153600 (§3.2.1.1)", BigYUVFrameBytes)
	}
}

func TestClipDeterminism(t *testing.T) {
	a, b := Lost(), Lost()
	for i := range a.TI {
		if a.TI[i] != b.TI[i] || a.SI[i] != b.SI[i] {
			t.Fatalf("clip generation not deterministic at frame %d", i)
		}
	}
}

func TestClipFeatureBounds(t *testing.T) {
	for _, c := range []*Clip{Lost(), Dark()} {
		for i := 0; i < c.FrameCount(); i++ {
			if c.TI[i] < 0.01 || c.TI[i] > 1.2 {
				t.Fatalf("%s TI[%d] = %v out of bounds", c.Name, i, c.TI[i])
			}
			if c.Complexity[i] < 0.02 || c.Complexity[i] > 1.2 {
				t.Fatalf("%s complexity[%d] = %v out of bounds", c.Name, i, c.Complexity[i])
			}
			if c.Color[i] < 0 || c.Color[i] > 1 {
				t.Fatalf("%s color out of bounds", c.Name)
			}
		}
	}
}

func TestDarkHasHighMotionFinale(t *testing.T) {
	d := Dark()
	n := d.FrameCount()
	var early, late float64
	for i := 0; i < n/2; i++ {
		early += d.TI[i]
	}
	for i := 2 * n / 3; i < n; i++ {
		late += d.TI[i]
	}
	early /= float64(n / 2)
	late /= float64(n - 2*n/3)
	if late <= early*1.15 {
		t.Errorf("Dark finale motion %.3f not above early %.3f (Fig. 6 property)", late, early)
	}
}

func TestByName(t *testing.T) {
	if ByName("Lost") == nil || ByName("dark") == nil || ByName("nope") != nil {
		t.Error("ByName lookup wrong")
	}
}

func TestCBREncodingRateAccuracy(t *testing.T) {
	for _, rate := range []units.BitRate{1.0e6, 1.5e6, 1.7e6} {
		for _, c := range []*Clip{Lost(), Dark()} {
			e := EncodeCBR(c, rate)
			_, avg, _ := e.RateStats()
			if math.Abs(avg-float64(rate))/float64(rate) > 0.005 {
				t.Errorf("%s @ %v: avg rate %v, want within 0.5%%", c.Name, rate, avg)
			}
		}
	}
}

func TestCBRStatsShapeMatchTable2(t *testing.T) {
	// Table 2 for Lost @1.7M: max 2047496, avg 1702659, min 128640.
	// The shape targets: max/avg ≈ 1.20, min well below avg.
	e := EncodeCBR(Lost(), 1.7e6)
	max, avg, min := e.RateStats()
	if r := max / avg; r < 1.1 || r > 1.25 {
		t.Errorf("max/avg = %v, want ≈1.2", r)
	}
	if min > 0.25*avg {
		t.Errorf("min rate %v not small relative to avg %v", min, avg)
	}
	// Avg frame size ≈ 7101 bytes for the 1.7M encoding.
	if afs := e.AvgFrameSize(); math.Abs(afs-7101) > 150 {
		t.Errorf("avg frame size = %v, want ≈7101", afs)
	}
}

func TestGoPPattern(t *testing.T) {
	e := EncodeCBR(Lost(), 1.5e6)
	for i := 0; i < 48; i++ {
		want := frameTypeAt(i)
		if e.Frames[i].Type != want {
			t.Fatalf("frame %d type %v, want %v", i, e.Frames[i].Type, want)
		}
	}
	if frameTypeAt(0) != IFrame || frameTypeAt(3) != PFrame || frameTypeAt(1) != BFrame {
		t.Error("GoP pattern wrong")
	}
	if IFrame.String() != "I" || PFrame.String() != "P" || BFrame.String() != "B" {
		t.Error("type names wrong")
	}
}

func TestFrameSizeCapAndFloor(t *testing.T) {
	e := EncodeCBR(Dark(), 1.7e6)
	avgB := 1.7e6 / 8 / FPS
	for i, f := range e.Frames {
		if float64(f.Size) > avgB*frameCapRatio+1 {
			t.Fatalf("frame %d size %d exceeds cap", i, f.Size)
		}
		if float64(f.Size) < avgB*frameFloorRatio-1 {
			t.Fatalf("frame %d size %d below floor", i, f.Size)
		}
	}
}

func TestIFramesLargerThanBFrames(t *testing.T) {
	e := EncodeCBR(Lost(), 1.5e6)
	var iSum, bSum float64
	var iN, bN int
	for _, f := range e.Frames {
		switch f.Type {
		case IFrame:
			iSum += float64(f.Size)
			iN++
		case BFrame:
			bSum += float64(f.Size)
			bN++
		}
	}
	if iSum/float64(iN) <= bSum/float64(bN)*1.3 {
		t.Errorf("I avg %.0f not clearly larger than B avg %.0f", iSum/float64(iN), bSum/float64(bN))
	}
}

func TestVBRRespectsCapLikeTable3(t *testing.T) {
	cap := units.BitRate(WMVCapKbps * 1000)
	for _, c := range []*Clip{Lost(), Dark()} {
		e := EncodeVBR(c, cap)
		max, avg, _ := e.RateStats()
		if max > float64(cap)+1 {
			t.Errorf("%s: max %v exceeds cap %v", c.Name, max, float64(cap))
		}
		// Table 3: average well below the requested bandwidth
		// (771.7 and 680.5 kbps for 1015.5 requested).
		if ratio := avg / float64(cap); ratio < 0.55 || ratio > 0.9 {
			t.Errorf("%s: avg/cap = %v, want in [0.55, 0.9]", c.Name, ratio)
		}
	}
}

func TestVBRDarkLowerAvgThanLost(t *testing.T) {
	// Table 3: Dark averages lower (680.5) than Lost (771.7) — in our
	// model that reflects content statistics; assert the two differ
	// and both sit in the paper's band rather than forcing order.
	cap := units.BitRate(WMVCapKbps * 1000)
	_, la, _ := EncodeVBR(Lost(), cap).RateStats()
	_, da, _ := EncodeVBR(Dark(), cap).RateStats()
	if math.Abs(la-da) < 1000 {
		t.Logf("note: Lost %.0f vs Dark %.0f very close", la, da)
	}
	for n, v := range map[string]float64{"Lost": la, "Dark": da} {
		if v < 600e3 || v > 900e3 {
			t.Errorf("%s avg %v outside Table 3 band", n, v)
		}
	}
}

func TestDistortionOrdering(t *testing.T) {
	c := Lost()
	d10 := EncodeCBR(c, 1.0e6).MeanDistortion()
	d15 := EncodeCBR(c, 1.5e6).MeanDistortion()
	d17 := EncodeCBR(c, 1.7e6).MeanDistortion()
	if !(d10 > d15 && d15 > d17) {
		t.Errorf("distortion not monotone in rate: %v %v %v", d10, d15, d17)
	}
	// Figs. 13–14 plateau targets.
	if diff := d10 - d17; diff < 0.10 || diff > 0.25 {
		t.Errorf("1.0M vs 1.7M distortion gap %v, want ≈0.13-0.17", diff)
	}
	if diff := d15 - d17; diff < 0.015 || diff > 0.12 {
		t.Errorf("1.5M vs 1.7M distortion gap %v, want ≈0.05", diff)
	}
}

func TestWindowRate(t *testing.T) {
	e := EncodeCBR(Lost(), 1.5e6)
	r := e.WindowRate(100, 30)
	if math.Abs(r-1.5e6)/1.5e6 > 0.25 {
		t.Errorf("window rate %v far from target", r)
	}
	if e.WindowRate(0, 30) != e.FrameRate(0) {
		t.Error("window at frame 0 should be the single-frame rate")
	}
}

func TestTable2Rows(t *testing.T) {
	rows := Table2(Lost())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].EncodingRate != 1.7e6 || rows[2].EncodingRate != 1.0e6 {
		t.Error("row order wrong")
	}
	for _, r := range rows {
		if r.Frames != 2150 || r.BytesRead <= 0 || r.AvgFrameSize <= 0 {
			t.Errorf("bad row: %+v", r)
		}
		if !(r.MinRate < r.AvgRate && r.AvgRate < r.MaxRate) {
			t.Errorf("rate ordering wrong: %+v", r)
		}
	}
	s := FormatTable2("Lost", rows)
	if !strings.Contains(s, "Clip Lost") || !strings.Contains(s, "Encoding") {
		t.Error("FormatTable2 output malformed")
	}
}

func TestTable3Rows(t *testing.T) {
	r := Table3(Lost())
	if r.FramesTotal != 2150 || r.ExpectedKbps != WMVCapKbps {
		t.Errorf("bad row: %+v", r)
	}
	if r.AverageKbps >= r.ExpectedKbps {
		t.Errorf("average %v not below expected %v", r.AverageKbps, r.ExpectedKbps)
	}
	s := FormatTable3([]WMVRow{r, Table3(Dark())})
	if !strings.Contains(s, "Lost Clip") || !strings.Contains(s, "Dark Clip") {
		t.Error("FormatTable3 output malformed")
	}
}

func TestEncodingDeterminism(t *testing.T) {
	a := EncodeCBR(Lost(), 1.5e6)
	b := EncodeCBR(Lost(), 1.5e6)
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("encoding not deterministic at %d", i)
		}
	}
}

func TestCustomClip(t *testing.T) {
	scenes := []Scene{
		{Frames: 90, Motion: 0.2, Detail: 0.6, Color: 0.3},
		{Frames: 60, Motion: 0.9, Detail: 0.4, Color: 0.7},
	}
	c := Custom("myclip", scenes, 42)
	if c.FrameCount() != 150 {
		t.Fatalf("frames = %d", c.FrameCount())
	}
	// Second scene is higher motion on average.
	var a, b float64
	for i := 0; i < 90; i++ {
		a += c.TI[i]
	}
	for i := 90; i < 150; i++ {
		b += c.TI[i]
	}
	if b/60 <= a/90 {
		t.Errorf("scene motion not reflected: %.3f vs %.3f", a/90, b/60)
	}
	// Deterministic and encodable.
	c2 := Custom("myclip", scenes, 42)
	if c2.TI[37] != c.TI[37] {
		t.Error("Custom not deterministic")
	}
	e := EncodeCBR(c, 800*units.Kbps)
	_, avg, _ := e.RateStats()
	if avg < 790e3 || avg > 810e3 {
		t.Errorf("custom clip CBR avg %v", avg)
	}
}
