package video

import (
	"sync"
	"testing"
)

func TestCachedCBRSharesAndMatches(t *testing.T) {
	ResetEncodingCache()
	defer ResetEncodingCache()
	a := CachedCBR(Lost(), 1.7e6)
	b := CachedCBR(Lost(), 1.7e6)
	if a != b {
		t.Error("same clip+rate did not share one encoding")
	}
	if c := CachedCBR(Lost(), 1.5e6); c == a {
		t.Error("different rates shared an encoding")
	}
	if d := CachedCBR(Dark(), 1.7e6); d == a {
		t.Error("different clips shared an encoding")
	}
	// Cached content must equal a direct encode, frame for frame.
	direct := EncodeCBR(Lost(), 1.7e6)
	if len(direct.Frames) != len(a.Frames) {
		t.Fatalf("frame counts differ: %d vs %d", len(a.Frames), len(direct.Frames))
	}
	for i := range direct.Frames {
		if direct.Frames[i] != a.Frames[i] {
			t.Fatalf("frame %d differs: %+v vs %+v", i, a.Frames[i], direct.Frames[i])
		}
	}
}

// TestCachedCustomClipNoNameCollision: a Custom clip that reuses a
// built-in name (and even its frame count) must not be served the
// built-in's cached encoding — the key is content, not name.
func TestCachedCustomClipNoNameCollision(t *testing.T) {
	ResetEncodingCache()
	defer ResetEncodingCache()
	builtin := CachedCBR(Lost(), 1.7e6)
	n := Lost().FrameCount()
	impostor := Custom("Lost", []Scene{{Frames: n, Motion: 0.9, Detail: 0.9, Color: 0.5}}, 7)
	if impostor.FrameCount() != n {
		t.Fatalf("impostor has %d frames, want %d", impostor.FrameCount(), n)
	}
	got := CachedCBR(impostor, 1.7e6)
	if got == builtin {
		t.Fatal("custom clip colliding on name+length was served the built-in's encoding")
	}
	direct := EncodeCBR(impostor, 1.7e6)
	if got.TotalBytes() != direct.TotalBytes() {
		t.Errorf("cached custom encoding differs from direct encode: %d vs %d bytes",
			got.TotalBytes(), direct.TotalBytes())
	}
}

func TestCachedVBRDistinctFromCBR(t *testing.T) {
	ResetEncodingCache()
	defer ResetEncodingCache()
	v := CachedVBR(Lost(), 1.0e6)
	c := CachedCBR(Lost(), 1.0e6)
	if v == c {
		t.Error("VBR and CBR at the same rate shared a cache slot")
	}
	if v.CBR || !c.CBR {
		t.Error("cache returned the wrong mode")
	}
	direct := EncodeVBR(Lost(), 1.0e6)
	if v.TotalBytes() != direct.TotalBytes() {
		t.Errorf("cached VBR differs from direct encode: %d vs %d bytes", v.TotalBytes(), direct.TotalBytes())
	}
}

func TestCachedEncodingConcurrent(t *testing.T) {
	ResetEncodingCache()
	defer ResetEncodingCache()
	const n = 16
	got := make([]*Encoding, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = CachedCBR(Lost(), 1.7e6)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent callers observed different encodings")
		}
	}
}
