// Package video models the content side of the experiments: the two
// movie-trailer clips ("Lost", 2150 frames / 71.74 s, and "Dark",
// 4219 frames / 140.77 s, both 320x240 at NTSC 29.97 fps), and the two
// encoders used in the paper — an MPEG-1-style constant-bit-rate
// encoder with an IBBPBB GoP structure, and a Windows-Media-style
// capped-VBR encoder.
//
// The original pixel data is unavailable (and irrelevant: both the
// policer interaction and the VQM quality model are driven entirely by
// per-frame sizes and per-frame feature streams). Each clip is
// therefore a deterministic synthetic content model: a sequence of
// scenes, each with a motion level, a spatial-detail level and a color
// signature, from which per-frame temporal information (TI), spatial
// information (SI) and color features are derived. "Dark" carries the
// high-motion scenes near its end that the paper points out in Fig. 6.
package video

import (
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// NTSC frame rate: 30000/1001 ≈ 29.97 fps. The paper's frame counts
// and durations (2150/71.74 s, 4219/140.77 s) are consistent with this
// rate, not with exactly 30 fps.
const (
	FPSNum = 30000
	FPSDen = 1001
)

// FPS is the frame rate as a float.
const FPS = float64(FPSNum) / float64(FPSDen)

// FrameInterval is the simulated time between frames.
func FrameInterval() units.Time {
	return units.Time(int64(FPSDen) * int64(units.Second) / int64(FPSNum))
}

// Frame dimensions used throughout the experiments (§3.2.1.1).
const (
	Width  = 320
	Height = 240
)

// BigYUVFrameBytes is the size of one decoded frame in the BigYUV
// 4:2:2 format: 2 bytes per pixel = 153.6 kB (§3.2.1.1).
const BigYUVFrameBytes = Width * Height * 2

// Scene is a contiguous run of frames sharing content statistics.
type Scene struct {
	Frames int     // length in frames
	Motion float64 // temporal activity in [0,1]
	Detail float64 // spatial detail in [0,1]
	Color  float64 // dominant chroma signature in [0,1]
}

// Clip is a content model: scene structure expanded to per-frame
// feature streams.
type Clip struct {
	Name   string
	Scenes []Scene

	// Per-frame feature streams, all len == FrameCount.
	TI    []float64 // temporal information (motion energy vs previous frame)
	SI    []float64 // spatial information (detail)
	Color []float64 // chroma signature

	// Complexity is the encoder-facing coding difficulty per frame.
	Complexity []float64
}

// FrameCount reports the number of frames.
func (c *Clip) FrameCount() int { return len(c.TI) }

// DurationSeconds reports the playback duration.
func (c *Clip) DurationSeconds() float64 { return float64(c.FrameCount()) / FPS }

// build expands scenes into feature streams using a deterministic RNG.
func (c *Clip) build(seed uint64) {
	n := 0
	for _, s := range c.Scenes {
		n += s.Frames
	}
	c.TI = make([]float64, n)
	c.SI = make([]float64, n)
	c.Color = make([]float64, n)
	c.Complexity = make([]float64, n)
	rng := sim.NewRNG(seed)
	i := 0
	for si, s := range c.Scenes {
		for f := 0; f < s.Frames; f++ {
			// Slow within-scene modulation plus frame noise.
			phase := float64(f) / math.Max(1, float64(s.Frames))
			wobble := 0.25 * math.Sin(2*math.Pi*(phase*3+rng.Float64()*0.02))
			ti := s.Motion * (1 + wobble + 0.15*rng.Norm())
			siF := s.Detail * (1 + 0.08*rng.Norm())
			if f == 0 && si > 0 {
				// A scene cut is a large temporal discontinuity.
				ti = math.Max(ti, 0.85+0.1*rng.Float64())
			}
			if rng.Float64() < 0.004 {
				// Occasional fade/black frame: near-zero complexity,
				// the source of the tiny minimum frame sizes Table 2
				// reports.
				ti, siF = 0.02, 0.03
			}
			c.TI[i] = units.Clamp(ti, 0.01, 1.2)
			c.SI[i] = units.Clamp(siF, 0.02, 1.2)
			c.Color[i] = units.Clamp(s.Color+0.05*rng.Norm(), 0, 1)
			c.Complexity[i] = units.Clamp(0.55*c.TI[i]+0.45*c.SI[i], 0.02, 1.2)
			i++
		}
	}
}

// sceneSplit deterministically partitions total frames into scenes of
// 2–8 seconds, assigning motion/detail levels from the supplied
// profile function (which receives the scene's position in [0,1]).
func sceneSplit(total int, seed uint64, profile func(pos float64, rng *sim.RNG) Scene) []Scene {
	rng := sim.NewRNG(seed)
	var scenes []Scene
	used := 0
	for used < total {
		dur := int((2 + 6*rng.Float64()) * FPS)
		const minScene = 2 * FPSNum / FPSDen // ≈ 2 s in frames
		if total-used < dur || total-used-dur < minScene {
			dur = total - used
		}
		s := profile(float64(used)/float64(total), rng)
		s.Frames = dur
		scenes = append(scenes, s)
		used += dur
	}
	return scenes
}

// Lost returns the model of the "Lost" trailer: 2150 frames, 71.74 s,
// moderate and fairly uniform motion (its Fig. 6 trace fluctuates but
// without the late-clip surge "Dark" shows).
func Lost() *Clip {
	c := &Clip{Name: "Lost"}
	c.Scenes = sceneSplit(2150, 0x105714C057, func(pos float64, rng *sim.RNG) Scene {
		return Scene{
			Motion: units.Clamp(0.35+0.25*rng.Float64(), 0, 1),
			Detail: units.Clamp(0.45+0.25*rng.Float64(), 0, 1),
			Color:  rng.Float64(),
		}
	})
	c.build(0x105714C057 ^ 0xBEEF)
	return c
}

// Dark returns the model of the "Dark" trailer: 4219 frames, 140.77 s,
// with high-motion content concentrated toward the end of the clip
// ("especially towards the end", §3.3.1 / Fig. 6).
func Dark() *Clip {
	c := &Clip{Name: "Dark"}
	c.Scenes = sceneSplit(4219, 0xDA2C0FFEE, func(pos float64, rng *sim.RNG) Scene {
		motion := 0.26 + 0.20*rng.Float64()
		if pos > 0.62 {
			// Action-heavy finale: bursts of very high motion.
			motion = 0.55 + 0.4*rng.Float64()
		}
		return Scene{
			Motion: units.Clamp(motion, 0, 1),
			// Dark scenes carry less spatial detail, which is why the
			// WMV encoder averages lower on Dark than on Lost even
			// though Dark has the high-motion finale (Table 3).
			Detail: units.Clamp(0.28+0.22*rng.Float64(), 0, 1),
			Color:  rng.Float64(),
		}
	})
	c.build(0xDA2C0FFEE ^ 0xBEEF)
	return c
}

// Custom builds a clip model from an explicit scene list, for
// workloads beyond the two paper clips. Scene lengths are taken as
// given; the per-frame feature streams are derived deterministically
// from seed exactly as for the built-in clips.
func Custom(name string, scenes []Scene, seed uint64) *Clip {
	c := &Clip{Name: name, Scenes: scenes}
	c.build(seed)
	return c
}

// ByName returns a built-in clip model.
func ByName(name string) *Clip {
	switch name {
	case "Lost", "lost":
		return Lost()
	case "Dark", "dark":
		return Dark()
	default:
		return nil
	}
}
