package video

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// MPEGRow is one row of the paper's Table 2.
type MPEGRow struct {
	EncodingRate units.BitRate
	BytesRead    int64
	Frames       int
	LengthSec    float64
	AvgFrameSize float64
	MaxRate      float64
	AvgRate      float64
	MinRate      float64
}

// Table2 computes the MPEG encoding properties of a clip at the
// paper's three CBR rates — the reproduction of Table 2.
func Table2(c *Clip) []MPEGRow {
	rates := []units.BitRate{1.7e6, 1.5e6, 1.0e6}
	rows := make([]MPEGRow, 0, len(rates))
	for _, r := range rates {
		e := EncodeCBR(c, r)
		max, avg, min := e.RateStats()
		rows = append(rows, MPEGRow{
			EncodingRate: r,
			BytesRead:    e.TotalBytes(),
			Frames:       c.FrameCount(),
			LengthSec:    c.DurationSeconds(),
			AvgFrameSize: e.AvgFrameSize(),
			MaxRate:      max,
			AvgRate:      avg,
			MinRate:      min,
		})
	}
	return rows
}

// FormatTable2 renders Table 2 rows in the paper's layout.
func FormatTable2(name string, rows []MPEGRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Clip %s\n", name)
	fmt.Fprintf(&b, "%-9s %-11s %-7s %-9s %-14s %-10s %-12s %-8s\n",
		"Encoding", "Bytes read", "frames", "Length", "AvgFrameSize", "Max(bps)", "Avg(bps)", "Min(bps)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %-11d %-7d %-9.2f %-14.0f %-10.0f %-12.2f %-8.0f\n",
			r.EncodingRate.String(), r.BytesRead, r.Frames, r.LengthSec,
			r.AvgFrameSize, r.MaxRate, r.AvgRate, r.MinRate)
	}
	return b.String()
}

// WMVRow is one clip's summary in the paper's Table 3.
type WMVRow struct {
	Clip         string
	BytesEncoded int64
	ExpectedKbps float64
	AverageKbps  float64
	FramesTotal  int
	FPSExpected  float64
	FPSAverage   float64
}

// WMVCapKbps is the encoder bandwidth setting used in §3.3.2.
const WMVCapKbps = 1015.5

// Table3 computes Windows-Media encoded clip properties — the
// reproduction of Table 3 (video session; audio was configured near
// zero and is ignored).
func Table3(c *Clip) WMVRow {
	e := EncodeVBR(c, units.BitRate(WMVCapKbps*1000))
	avgKbps := float64(e.TotalBytes()) * 8 / c.DurationSeconds() / 1000
	return WMVRow{
		Clip:         c.Name,
		BytesEncoded: e.TotalBytes(),
		ExpectedKbps: WMVCapKbps,
		AverageKbps:  avgKbps,
		FramesTotal:  c.FrameCount(),
		FPSExpected:  30.0,
		FPSAverage:   FPS,
	}
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []WMVRow) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s Clip\n", r.Clip)
		fmt.Fprintf(&b, "  Bytes encoded (total): %d\n", r.BytesEncoded)
		fmt.Fprintf(&b, "  Bit rate (expected):   %.1f Kbps\n", r.ExpectedKbps)
		fmt.Fprintf(&b, "  Bit rate (average):    %.1f Kbps\n", r.AverageKbps)
		fmt.Fprintf(&b, "  Frames (total):        %d\n", r.FramesTotal)
		fmt.Fprintf(&b, "  FPS (expected/avg):    %.1f / %.1f\n", r.FPSExpected, r.FPSAverage)
	}
	return b.String()
}
