package video

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/units"
)

// FrameType is the MPEG picture type.
type FrameType uint8

// MPEG picture types.
const (
	IFrame FrameType = iota
	PFrame
	BFrame
)

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case IFrame:
		return "I"
	case PFrame:
		return "P"
	default:
		return "B"
	}
}

// EncodedFrame is one coded picture.
type EncodedFrame struct {
	Type FrameType
	Size int // bytes
	// Distortion is the coding-quality penalty of this frame on the
	// VQM 0..1 scale: roughly how far from transparent the encoding
	// is, given the bits spent versus the frame's complexity. It is
	// what makes a 1.0 Mbps encoding score worse than the 1.7 Mbps
	// original even over a perfect network (Figs. 13–14).
	Distortion float64
}

// Encoding is a clip coded at a particular rate.
type Encoding struct {
	Clip   *Clip
	Name   string
	Target units.BitRate // CBR target, or VBR cap
	CBR    bool
	Frames []EncodedFrame
}

// GoP structure used by the CBR encoder: N=12, M=3 (IBBPBBPBBPBB),
// the classic MPEG-1 pattern.
const (
	GoPSize    = 12
	GoPPattern = "IBBPBBPBBPBB"
)

func frameTypeAt(i int) FrameType {
	switch GoPPattern[i%GoPSize] {
	case 'I':
		return IFrame
	case 'P':
		return PFrame
	default:
		return BFrame
	}
}

// Relative bit allocation per picture type before rate control. The
// I-frame weight is deliberately modest and the per-frame cap tight:
// Table 2's max/avg per-frame rate ratio is only ≈1.20, i.e. the
// original encoder ran a small VBV that clipped I frames hard.
const (
	weightI = 1.55
	weightP = 0.85
	weightB = 0.62

	frameCapRatio   = 1.205 // max frame size as a multiple of the mean
	frameFloorRatio = 0.072 // min frame size as a multiple of the mean
)

// distortion models the coding penalty for spending `size` bytes on a
// frame of the given complexity. transparentBytes is the per-frame
// budget at which coding artifacts become invisible for complexity 1.
const transparentBytes = 10500.0

func distortion(complexity float64, size int) float64 {
	if size <= 0 {
		return 1
	}
	need := complexity * transparentBytes
	r := need / float64(size)
	if r <= 0.72 {
		return 0.002 * r
	}
	// MOS-style curve: artifacts appear quickly once the budget drops
	// below what the content needs, then saturate — starved frames
	// can't look much worse than "bad". Calibrated so that, against
	// the 1.7 Mbps reference, the 1.5 Mbps encoding plateaus near
	// 0.06–0.09 and the 1.0 Mbps encoding near 0.13–0.17 (Figs. 13–14).
	return units.Clamp(0.29*math.Tanh(3.2*(r-0.72)), 0, 0.9)
}

// EncodeCBR codes the clip at a constant bit rate with per-GoP rate
// control, mimicking the MPEG-1 encodings of §3.3.1. The carry term
// keeps the long-run rate exact; the per-frame cap and floor bound
// instantaneous excursions the way Table 2 reports.
func EncodeCBR(c *Clip, rate units.BitRate) *Encoding {
	n := c.FrameCount()
	e := &Encoding{
		Clip: c, Name: fmt.Sprintf("%s/CBR-%s", c.Name, rate),
		Target: rate, CBR: true,
		Frames: make([]EncodedFrame, n),
	}
	avgB := float64(rate) / 8 / FPS
	capB := avgB * frameCapRatio
	floorB := avgB * frameFloorRatio
	rng := sim.NewRNG(uint64(rate) ^ 0xC0DEC)
	carry := 0.0
	for g := 0; g < n; g += GoPSize {
		end := g + GoPSize
		if end > n {
			end = n
		}
		gl := end - g
		budget := float64(gl)*avgB + carry
		// Raw wishes.
		raw := make([]float64, gl)
		sum := 0.0
		for j := 0; j < gl; j++ {
			i := g + j
			var w float64
			switch frameTypeAt(j) {
			case IFrame:
				w = weightI
			case PFrame:
				w = weightP
			default:
				w = weightB
			}
			raw[j] = w * (0.06 + 1.22*c.Complexity[i]) * (1 + 0.06*rng.Norm())
			if raw[j] < 0.05 {
				raw[j] = 0.05
			}
			sum += raw[j]
		}
		scale := budget / sum
		spent := 0.0
		for j := 0; j < gl; j++ {
			i := g + j
			sz := units.Clamp(raw[j]*scale, floorB, capB)
			e.Frames[i] = EncodedFrame{
				Type:       frameTypeAt(j),
				Size:       int(sz),
				Distortion: distortion(c.Complexity[i], int(sz)),
			}
			spent += float64(e.Frames[i].Size)
		}
		carry = budget - spent
		// Bound the carry so a pathological scene cannot build an
		// unbounded credit (a real VBV would saturate the same way).
		carry = units.Clamp(carry, -4*avgB, 4*avgB)
	}
	return e
}

// EncodeVBR codes the clip the way the Windows Media encoder of §3.3.2
// does: the requested bandwidth is a *maximum*; actual sizes track
// content complexity, so the average comes out well below the cap
// (Table 3: 1015.5 kbps requested, 771.7/680.5 kbps average).
func EncodeVBR(c *Clip, cap units.BitRate) *Encoding {
	n := c.FrameCount()
	e := &Encoding{
		Clip: c, Name: fmt.Sprintf("%s/VBR-%s", c.Name, cap),
		Target: cap, CBR: false,
		Frames: make([]EncodedFrame, n),
	}
	capB := float64(cap) / 8 / FPS
	rng := sim.NewRNG(uint64(cap) ^ 0x3731)
	for i := 0; i < n; i++ {
		// Content-driven size, hard-capped at the requested bandwidth.
		want := capB * (0.18 + 1.05*c.Complexity[i]) * (1 + 0.10*rng.Norm())
		sz := units.Clamp(want, 0.05*capB, capB)
		e.Frames[i] = EncodedFrame{
			Type:       PFrame, // WMV: treat as a uniform predicted stream
			Size:       int(sz),
			Distortion: distortion(c.Complexity[i], int(sz)),
		}
	}
	return e
}

// TotalBytes reports the coded size of the whole clip.
func (e *Encoding) TotalBytes() int64 {
	var t int64
	for _, f := range e.Frames {
		t += int64(f.Size)
	}
	return t
}

// AvgFrameSize reports the mean coded frame size in bytes.
func (e *Encoding) AvgFrameSize() float64 {
	if len(e.Frames) == 0 {
		return 0
	}
	return float64(e.TotalBytes()) / float64(len(e.Frames))
}

// FrameRate reports the instantaneous per-frame transmission rate in
// bits per second, the quantity MPEG_stat reports and Fig. 6 plots:
// frame bits × frame rate.
func (e *Encoding) FrameRate(i int) float64 {
	return float64(e.Frames[i].Size) * 8 * FPS
}

// RateStats reports the (max, avg, min) of the per-frame rate trace,
// the three rate columns of Table 2.
func (e *Encoding) RateStats() (max, avg, min float64) {
	if len(e.Frames) == 0 {
		return 0, 0, 0
	}
	min = math.Inf(1)
	sum := 0.0
	for i := range e.Frames {
		r := e.FrameRate(i)
		sum += r
		if r > max {
			max = r
		}
		if r < min {
			min = r
		}
	}
	return max, sum / float64(len(e.Frames)), min
}

// WindowRate reports the rate over a sliding w-frame window ending at
// frame i (used by examples for smoother Fig. 6-style traces).
func (e *Encoding) WindowRate(i, w int) float64 {
	if w <= 0 {
		w = 1
	}
	lo := i - w + 1
	if lo < 0 {
		lo = 0
	}
	var bytes int64
	for j := lo; j <= i; j++ {
		bytes += int64(e.Frames[j].Size)
	}
	return float64(bytes) * 8 * FPS / float64(i-lo+1)
}

// MeanDistortion reports the average per-frame coding penalty.
func (e *Encoding) MeanDistortion() float64 {
	if len(e.Frames) == 0 {
		return 0
	}
	s := 0.0
	for _, f := range e.Frames {
		s += f.Distortion
	}
	return s / float64(len(e.Frames))
}
