package video

import (
	"hash/fnv"
	"math"
	"sync"

	"repro/internal/units"
)

// The encoding cache. Encodings are deterministic functions of (clip
// content, rate, mode), and the experiment grid asks for the same few
// encodings over and over: every point of a figure, and several whole
// figures, share one encoding. Caching them keeps the encoder out of
// the per-point cost entirely and lets concurrent runner jobs share
// the exact *Encoding value the serial path would have used.
//
// The key is (content fingerprint, rate, mode). The fingerprint hashes
// the per-frame complexity stream — the only clip feature the encoders
// read — so two clips produce the same cache slot exactly when they
// would produce the same encoding, regardless of how they were named
// or constructed (built-in vs Custom).

type encKey struct {
	clip   string
	print  uint64
	frames int
	rate   units.BitRate
	cbr    bool
}

// fingerprint hashes the encoder-facing content of the clip.
func fingerprint(c *Clip) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range c.Complexity {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

var (
	encMu    sync.Mutex
	encCache = map[encKey]*Encoding{}
)

// CachedCBR returns the shared CBR encoding of c at rate, encoding it
// on first use. Safe for concurrent use; the returned Encoding must be
// treated as read-only (every caller already does: encodings are
// immutable after construction).
func CachedCBR(c *Clip, rate units.BitRate) *Encoding {
	return cachedEncoding(c, rate, true)
}

// CachedVBR returns the shared VBR encoding of c capped at rate,
// encoding it on first use. Safe for concurrent use.
func CachedVBR(c *Clip, cap units.BitRate) *Encoding {
	return cachedEncoding(c, cap, false)
}

func cachedEncoding(c *Clip, rate units.BitRate, cbr bool) *Encoding {
	key := encKey{clip: c.Name, print: fingerprint(c), frames: c.FrameCount(), rate: rate, cbr: cbr}
	encMu.Lock()
	defer encMu.Unlock()
	if e, ok := encCache[key]; ok {
		return e
	}
	var e *Encoding
	if cbr {
		e = EncodeCBR(c, rate)
	} else {
		e = EncodeVBR(c, rate)
	}
	encCache[key] = e
	return e
}

// ResetEncodingCache empties the cache (tests).
func ResetEncodingCache() {
	encMu.Lock()
	defer encMu.Unlock()
	encCache = map[encKey]*Encoding{}
}
