// Package tcpsim is a compact TCP implementation over the simulated
// network: slow start, congestion avoidance, fast retransmit/fast
// recovery, RTO with Jacobson/Karels estimation, and cumulative ACKs.
// It exists because the local-testbed experiments (§4.2) found that
// "TCP streaming, because of the intrinsic rate adaptation capability
// of TCP, resulted in a smoother traffic flow that produced better
// quality results" — reproducing Figs. 15–16 requires a real
// congestion-controlled sender interacting with the policer.
//
// Payload bytes are virtual: only lengths travel through the network,
// and message framing is reconstructed on the receive side via
// client.StreamAssembler.
package tcpsim

import (
	"sync/atomic"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/sim"
	"repro/internal/units"
)

// MSS is the maximum segment payload; with the 40-byte TCP/IP header
// a full segment fills one 1500-byte Ethernet MTU.
const (
	MSS        = 1460
	HeaderSize = 40
)

// Sender is the TCP sending endpoint.
type Sender struct {
	Sim  *sim.Simulator
	Flow packet.FlowID
	Out  packet.Handler // forward path toward the receiver
	Pool *packet.Pool   // segment arena; nil falls back to the heap

	// Congestion state (bytes).
	cwnd     float64
	ssthresh float64
	rwnd     int64 // receiver window bound on flight
	sndUna   int64
	sndNxt   int64
	appBytes int64 // bytes the application has written so far

	// Loss recovery.
	dupAcks       int
	inRecovery    bool
	recoverSeq    int64
	rtoRecovering bool
	rtoRecover    int64
	rtoTimer      sim.Handle
	rto           units.Time
	srtt          units.Time
	rttvar        units.Time
	hasRTT        bool
	sendTimes     map[int64]units.Time // seq -> first-send time (for RTT)
	retransSeqs   map[int64]bool

	// LimitedTransmit enables RFC 3042 (January 2001 — newer than the
	// stacks in the paper's testbed, so off by default): the first two
	// duplicate ACKs each release a new segment so small windows can
	// reach fast retransmit instead of stalling into an RTO. Enabling
	// it is the "what if" ablation for the B=3000 TCP curves.
	LimitedTransmit bool

	// Tap, when set, receives TCPSend (Flag=1 for retransmissions),
	// TCPAck (Flag=1 for duplicates, Delay=smoothed RTT) and TCPRTO
	// (Delay=the expired timeout) events; QLen carries the flight in
	// MSS-sized segments.
	Tap ptrace.Tap
	Hop ptrace.HopID

	// Stats.
	Sent        int
	Retransmits int
	Timeouts    int

	onDeliverable func() // kicked when window may have opened
}

// emit records a TCP endpoint event; flight is reported in segments.
func (t *Sender) emit(k ptrace.Kind, pktID uint64, size int, flag uint8, delay units.Time) {
	t.Tap.Emit(ptrace.Event{
		Kind: k, Hop: t.Hop, Flow: t.Flow, PktID: pktID,
		Size: int32(size), FrameSeq: -1, Flag: flag, Delay: delay,
		QLen: int32((t.sndNxt - t.sndUna + MSS - 1) / MSS),
	})
}

// NewSender returns a sender in initial slow start.
func NewSender(s *sim.Simulator, flow packet.FlowID, out packet.Handler) *Sender {
	return &Sender{
		Sim: s, Flow: flow, Out: out,
		cwnd:        2 * MSS,
		ssthresh:    17520, // Windows-2000-era default window
		rwnd:        17520,
		rto:         1 * units.Second,
		sendTimes:   make(map[int64]units.Time),
		retransSeqs: make(map[int64]bool),
	}
}

// Write makes n more application bytes available to send.
func (t *Sender) Write(n int64) {
	t.appBytes += n
	t.trySend()
}

// Backlog reports unsent application bytes (used by server-side
// stream thinning).
func (t *Sender) Backlog() int64 { return t.appBytes - t.sndNxt }

// Unacked reports bytes in flight.
func (t *Sender) Unacked() int64 { return t.sndNxt - t.sndUna }

// Cwnd reports the congestion window in bytes.
func (t *Sender) Cwnd() float64 { return t.cwnd }

// Delivered reports cumulatively acknowledged bytes.
func (t *Sender) Delivered() int64 { return t.sndUna }

func (t *Sender) trySend() {
	for t.sndNxt < t.appBytes && float64(t.sndNxt-t.sndUna) < t.cwnd &&
		t.sndNxt-t.sndUna < t.rwnd {
		size := t.appBytes - t.sndNxt
		if size > MSS {
			size = MSS
		}
		t.sendSegment(t.sndNxt, int(size), false)
		t.sndNxt += size
	}
	t.armRTO()
}

func (t *Sender) sendSegment(seq int64, size int, retrans bool) {
	p := t.Pool.Get()
	p.ID, p.Flow, p.Proto = nextID(), t.Flow, packet.TCP
	p.Size, p.Seq = size+HeaderSize, seq
	p.SentAt, p.FrameSeq = t.Sim.Now(), -1
	t.Sent++
	if retrans {
		t.Retransmits++
		t.retransSeqs[seq] = true
	} else if _, dup := t.sendTimes[seq]; !dup {
		t.sendTimes[seq] = t.Sim.Now()
	}
	if t.Tap != nil {
		var flag uint8
		if retrans {
			flag = 1
		}
		t.emit(ptrace.TCPSend, p.ID, p.Size, flag, 0)
	}
	t.Out.Handle(p)
}

// idCounter is atomic because independent simulations run
// concurrently on the experiment runner pool; ids only need to be
// unique and non-zero.
var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// rtoFire is the Sender's retransmission-timeout Timer (a pointer
// conversion, so arming the RTO never allocates a closure).
type rtoFire Sender

// Fire runs the retransmission timeout.
func (t *rtoFire) Fire(units.Time) { (*Sender)(t).onRTO() }

// armRTO starts the retransmission timer if it is not already
// running. The timer tracks the *oldest* outstanding segment, so
// ordinary sends must not push it back — only restartRTO (new
// cumulative ACK) or expiry reset it.
func (t *Sender) armRTO() {
	if t.rtoTimer.Active() {
		return
	}
	if t.sndUna >= t.sndNxt {
		return // nothing outstanding
	}
	t.rtoTimer = t.Sim.AfterTimer(t.rto, (*rtoFire)(t))
}

// restartRTO re-bases the timer after progress.
func (t *Sender) restartRTO() {
	t.rtoTimer.Cancel()
	t.armRTO()
}

func (t *Sender) onRTO() {
	t.rtoTimer = sim.Handle{} // the firing consumed the event
	if t.sndUna >= t.sndNxt {
		return
	}
	t.Timeouts++
	if t.Tap != nil {
		t.emit(ptrace.TCPRTO, 0, 0, 0, t.rto)
	}
	t.ssthresh = maxf(float64(t.sndNxt-t.sndUna)/2, 2*MSS)
	t.cwnd = MSS
	t.rto *= 2
	if t.rto > 60*units.Second {
		t.rto = 60 * units.Second
	}
	t.dupAcks = 0
	t.inRecovery = false
	// Go-back-N from the last cumulative ACK; subsequent ACKs keep the
	// retransmission pipeline going (see HandleAck).
	t.rtoRecovering = true
	t.rtoRecover = t.sndNxt
	size := t.sndNxt - t.sndUna
	if size > MSS {
		size = MSS
	}
	t.sendSegment(t.sndUna, int(size), true)
	t.armRTO()
}

// OnDeliverable registers a callback fired whenever acked progress may
// allow the application to push more data (used by thinning servers).
func (t *Sender) OnDeliverable(fn func()) { t.onDeliverable = fn }

// HandleAck processes — and consumes — a cumulative acknowledgment
// arriving from the receiver's reverse path: the ACK packet is
// released to the sender's pool before returning.
func (t *Sender) HandleAck(p *packet.Packet) {
	ack := p.Ack
	if t.Tap != nil {
		var flag uint8
		if ack == t.sndUna && t.sndNxt > t.sndUna {
			flag = 1 // duplicate
		}
		t.emit(ptrace.TCPAck, p.ID, p.Size, flag, t.srtt)
	}
	t.Pool.Put(p)
	switch {
	case ack > t.sndUna:
		// New data acknowledged.
		acked := ack - t.sndUna
		flightBefore := t.sndNxt - t.sndUna
		if st, ok := t.sendTimes[t.sndUna]; ok && !t.retransSeqs[t.sndUna] {
			t.updateRTT(t.Sim.Now() - st)
		}
		for s := range t.sendTimes {
			if s < ack {
				delete(t.sendTimes, s)
				delete(t.retransSeqs, s)
			}
		}
		t.sndUna = ack
		t.dupAcks = 0
		// An ACK of new data collapses any exponential RTO backoff
		// back to the estimator's value.
		if t.hasRTT {
			t.setRTO()
		}
		switch {
		case t.inRecovery:
			if ack >= t.recoverSeq {
				t.inRecovery = false
				t.cwnd = t.ssthresh
			} else {
				// NewReno partial ACK: retransmit the next hole and
				// deflate the window by the amount acknowledged, so
				// a long recovery cannot snowball the inflation.
				size := minI64(MSS, t.sndNxt-t.sndUna)
				if size > 0 {
					t.sendSegment(t.sndUna, int(size), true)
				}
				t.cwnd = maxf(t.ssthresh, t.cwnd-float64(acked)+MSS)
			}
		case t.rtoRecovering:
			if ack >= t.rtoRecover {
				t.rtoRecovering = false
			} else {
				// Post-timeout go-back-N, ACK-clocked one segment at
				// a time: a single spaced retransmission conforms at
				// even the smallest policer bucket, where a
				// back-to-back pair would be re-dropped and the
				// recovery would never converge. cwnd stays at one
				// segment until the hole field is drained.
				size := minI64(MSS, t.sndNxt-t.sndUna)
				if size > 0 {
					t.sendSegment(t.sndUna, int(size), true)
				}
			}
		case float64(flightBefore) < t.cwnd*0.75:
			// Congestion window validation: an application-limited
			// sender was not probing the path, so the window it
			// never filled must not grow — otherwise a later backlog
			// burst dumps an unvalidated window onto the policer.
		case t.cwnd < t.ssthresh:
			t.cwnd += float64(minI64(acked, MSS)) // slow start
		default:
			t.cwnd += float64(MSS) * float64(MSS) / t.cwnd // CA
		}
		t.restartRTO()
		t.trySend()
		if t.onDeliverable != nil {
			t.onDeliverable()
		}
	case ack == t.sndUna && t.sndNxt > t.sndUna:
		t.dupAcks++
		if t.LimitedTransmit && t.dupAcks < 3 && !t.inRecovery && !t.rtoRecovering {
			// Limited transmit (RFC 3042): the first two duplicate
			// ACKs each release one new segment, so that small
			// windows — the normal state behind a 2-MTU policer —
			// generate the third duplicate ACK that triggers fast
			// retransmit instead of stalling into an RTO.
			size := t.appBytes - t.sndNxt
			if size > MSS {
				size = MSS
			}
			if size > 0 && t.sndNxt-t.sndUna < t.rwnd {
				t.sendSegment(t.sndNxt, int(size), false)
				t.sndNxt += size
				t.armRTO()
			}
		}
		if t.dupAcks == 3 && !t.inRecovery {
			// Fast retransmit + fast recovery (Reno).
			t.inRecovery = true
			t.recoverSeq = t.sndNxt
			t.ssthresh = maxf(float64(t.sndNxt-t.sndUna)/2, 2*MSS)
			t.cwnd = t.ssthresh + 3*MSS
			size := minI64(MSS, t.sndNxt-t.sndUna)
			t.sendSegment(t.sndUna, int(size), true)
			t.armRTO()
		} else if t.inRecovery {
			t.cwnd += MSS // inflate per extra dupack
			t.trySend()
		}
	}
}

func (t *Sender) updateRTT(sample units.Time) {
	if sample <= 0 {
		return
	}
	if !t.hasRTT {
		t.hasRTT = true
		t.srtt = sample
		t.rttvar = sample / 2
	} else {
		d := t.srtt - sample
		if d < 0 {
			d = -d
		}
		t.rttvar = (3*t.rttvar + d) / 4
		t.srtt = (7*t.srtt + sample) / 8
	}
	t.setRTO()
}

// setRTO derives the retransmission timeout from the estimator with
// the conventional clamps.
func (t *Sender) setRTO() {
	t.rto = t.srtt + 4*t.rttvar
	if t.rto < 200*units.Millisecond {
		t.rto = 200 * units.Millisecond
	}
	if t.rto > 60*units.Second {
		t.rto = 60 * units.Second
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Receiver is the TCP receiving endpoint: it reassembles the byte
// stream, delivers in-order progress, and emits cumulative ACKs on the
// reverse path.
type Receiver struct {
	Sim     *sim.Simulator
	Flow    packet.FlowID
	AckOut  packet.Handler // reverse path toward the sender
	Pool    *packet.Pool   // ACK arena + release target for data segments
	Deliver func(newBytes int64)

	rcvNxt int64
	ooo    map[int64]int // seq -> payload size of out-of-order segments

	Received int
	Acked    int
}

// NewReceiver returns a receiver delivering in-order progress to
// deliver.
func NewReceiver(s *sim.Simulator, flow packet.FlowID, ackOut packet.Handler, deliver func(int64)) *Receiver {
	return &Receiver{Sim: s, Flow: flow, AckOut: ackOut, Deliver: deliver, ooo: make(map[int64]int)}
}

// Handle consumes a data segment from the network: only lengths and
// sequence numbers matter (payload bytes are virtual), so the packet
// is read, released to the pool, and acknowledged.
func (r *Receiver) Handle(p *packet.Packet) {
	r.Received++
	payload := int64(p.Size - HeaderSize)
	if payload < 0 {
		payload = 0
	}
	seq := p.Seq
	r.Pool.Put(p)
	if seq+payload > r.rcvNxt {
		if seq <= r.rcvNxt {
			// In-order (possibly overlapping) data: advance.
			advance := seq + payload - r.rcvNxt
			r.rcvNxt = seq + payload
			// Drain any contiguous out-of-order segments.
			for {
				sz, ok := r.ooo[r.rcvNxt]
				if !ok {
					break
				}
				delete(r.ooo, r.rcvNxt)
				r.rcvNxt += int64(sz)
				advance += int64(sz)
			}
			if r.Deliver != nil && advance > 0 {
				r.Deliver(advance)
			}
		} else {
			r.ooo[seq] = int(payload)
		}
	}
	r.sendAck()
}

func (r *Receiver) sendAck() {
	r.Acked++
	ack := r.Pool.Get()
	ack.ID, ack.Flow, ack.Proto = nextID(), r.Flow, packet.TCP
	ack.Size, ack.Ack, ack.IsAck = HeaderSize, r.rcvNxt, true
	ack.SentAt, ack.FrameSeq = r.Sim.Now(), -1
	r.AckOut.Handle(ack)
}
