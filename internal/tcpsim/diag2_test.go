package tcpsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestDiagStall(t *testing.T) {
	s := sim.New(7)
	rng := sim.NewRNG(42)
	var dropLog []int64
	snd, rcv, delivered := newPair(t, s, func(p *packet.Packet) bool {
		if rng.Float64() < 0.02 {
			dropLog = append(dropLog, p.Seq)
			return true
		}
		return false
	})
	total := int64(3000 * MSS)
	snd.Write(total)
	for sec := 1; sec <= 40; sec++ {
		s.RunUntil(units.Time(sec) * units.Second)
		t.Logf("t=%2d una=%8d nxt=%8d cwnd=%6.0f rto=%v inRec=%v dup=%d timeouts=%d rcvNxt=%d ooo=%d del=%d timerIdle=%v",
			sec, snd.sndUna, snd.sndNxt, snd.cwnd, snd.rto, snd.inRecovery, snd.dupAcks, snd.Timeouts, rcv.rcvNxt, len(rcv.ooo), *delivered, !snd.rtoTimer.Active())
	}
}
