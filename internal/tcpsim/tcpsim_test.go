package tcpsim

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// pipe delivers packets to a receiver after a fixed delay, optionally
// dropping chosen packet ids.
type pipe struct {
	s     *sim.Simulator
	delay units.Time
	drop  func(*packet.Packet) bool
	to    func(*packet.Packet)
	sent  int
	lost  int
}

func (p *pipe) Handle(pkt *packet.Packet) {
	p.sent++
	if p.drop != nil && p.drop(pkt) {
		p.lost++
		return
	}
	p.s.After(p.delay, func() { p.to(pkt) })
}

func newPair(t *testing.T, s *sim.Simulator, dropData func(*packet.Packet) bool) (*Sender, *Receiver, *int64) {
	t.Helper()
	var snd *Sender
	var rcv *Receiver
	delivered := new(int64)
	fwd := &pipe{s: s, delay: 5 * units.Millisecond, drop: dropData, to: func(p *packet.Packet) { rcv.Handle(p) }}
	rev := &pipe{s: s, delay: 5 * units.Millisecond, to: func(p *packet.Packet) { snd.HandleAck(p) }}
	snd = NewSender(s, 1, fwd)
	rcv = NewReceiver(s, 1, rev, func(n int64) { *delivered += n })
	return snd, rcv, delivered
}

func TestLosslessDelivery(t *testing.T) {
	s := sim.New(1)
	snd, _, delivered := newPair(t, s, nil)
	snd.Write(1 << 20)
	s.RunUntil(60 * units.Second)
	if *delivered != 1<<20 {
		t.Fatalf("delivered %d of %d bytes", *delivered, 1<<20)
	}
	if snd.Retransmits != 0 {
		t.Errorf("unexpected retransmits: %d", snd.Retransmits)
	}
}

func TestSingleLossRecovers(t *testing.T) {
	s := sim.New(1)
	dropped := false
	snd, _, delivered := newPair(t, s, func(p *packet.Packet) bool {
		if !dropped && p.Seq == 5*MSS {
			dropped = true
			return true
		}
		return false
	})
	snd.Write(200 * MSS)
	s.RunUntil(60 * units.Second)
	if *delivered != 200*MSS {
		t.Fatalf("delivered %d of %d bytes (rexmit=%d timeouts=%d una=%d)",
			*delivered, 200*MSS, snd.Retransmits, snd.Timeouts, snd.Delivered())
	}
	if snd.Retransmits == 0 {
		t.Error("expected at least one retransmission")
	}
}

func TestBurstLossRecovers(t *testing.T) {
	s := sim.New(1)
	// Drop a contiguous run of 10 segments on first transmission.
	seen := map[int64]bool{}
	snd, _, delivered := newPair(t, s, func(p *packet.Packet) bool {
		if p.Seq >= 20*MSS && p.Seq < 30*MSS && !seen[p.Seq] {
			seen[p.Seq] = true
			return true
		}
		return false
	})
	snd.Write(500 * MSS)
	s.RunUntil(120 * units.Second)
	if *delivered != 500*MSS {
		t.Fatalf("delivered %d of %d bytes (rexmit=%d timeouts=%d una=%d cwnd=%.0f)",
			*delivered, 500*MSS, snd.Retransmits, snd.Timeouts, snd.Delivered(), snd.Cwnd())
	}
}

func TestRandomLossSustainsThroughput(t *testing.T) {
	s := sim.New(7)
	rng := sim.NewRNG(42)
	snd, _, delivered := newPair(t, s, func(p *packet.Packet) bool {
		return rng.Float64() < 0.02
	})
	// Keep the app writing continuously.
	total := int64(3000 * MSS)
	snd.Write(total)
	s.RunUntil(300 * units.Second)
	if *delivered != total {
		t.Fatalf("delivered %d of %d bytes (rexmit=%d timeouts=%d una=%d cwnd=%.0f)",
			*delivered, total, snd.Retransmits, snd.Timeouts, snd.Delivered(), snd.Cwnd())
	}
}
