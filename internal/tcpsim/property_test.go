package tcpsim

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestDeliveryProperties drives a connection through random loss and
// checks the fundamental transport invariants:
//
//  1. delivered byte count never exceeds what was written;
//  2. delivery is exactly in-order and gapless (cumulative);
//  3. with loss below a sane bound the transfer completes.
func TestDeliveryProperties(t *testing.T) {
	f := func(seed uint64, lossPct uint8) bool {
		loss := float64(lossPct%15) / 100 // 0..14%
		s := sim.New(seed)
		rng := sim.NewRNG(seed ^ 0x10551)
		var snd *Sender
		var rcv *Receiver
		var delivered int64
		fwd := &pipe{s: s, delay: 5 * units.Millisecond,
			drop: func(p *packet.Packet) bool { return rng.Float64() < loss },
			to:   func(p *packet.Packet) { rcv.Handle(p) }}
		rev := &pipe{s: s, delay: 5 * units.Millisecond,
			to: func(p *packet.Packet) { snd.HandleAck(p) }}
		snd = NewSender(s, 1, fwd)
		rcv = NewReceiver(s, 1, rev, func(n int64) {
			if n <= 0 {
				t.Fatal("non-positive delivery")
			}
			delivered += n
		})
		total := int64(500 * MSS)
		snd.Write(total)
		s.RunUntil(600 * units.Second)
		if delivered > total {
			return false
		}
		return delivered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLimitedTransmitReducesTimeouts(t *testing.T) {
	run := func(lt bool) int {
		s := sim.New(99)
		rng := sim.NewRNG(424242)
		var snd *Sender
		var rcv *Receiver
		fwd := &pipe{s: s, delay: 5 * units.Millisecond,
			drop: func(p *packet.Packet) bool { return rng.Float64() < 0.03 },
			to:   func(p *packet.Packet) { rcv.Handle(p) }}
		rev := &pipe{s: s, delay: 5 * units.Millisecond,
			to: func(p *packet.Packet) { snd.HandleAck(p) }}
		snd = NewSender(s, 1, fwd)
		snd.LimitedTransmit = lt
		rcv = NewReceiver(s, 1, rev, func(int64) {})
		// App-limited writes: 3 KB every 33 ms, the streaming pattern
		// whose tiny windows starve fast retransmit of dupacks.
		for i := 0; i < 900; i++ {
			i := i
			s.At(units.Time(i)*33*units.Millisecond, func() { snd.Write(3000) })
		}
		s.RunUntil(60 * units.Second)
		return snd.Timeouts
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("limited transmit did not reduce timeouts: with=%d without=%d", with, without)
	}
}

func TestRTTEstimation(t *testing.T) {
	s := sim.New(1)
	snd, _, _ := newPair(t, s, nil)
	snd.Write(100 * MSS)
	s.RunUntil(30 * units.Second)
	// Path RTT is exactly 10 ms (5 ms each way); srtt must converge.
	if snd.srtt < 9*units.Millisecond || snd.srtt > 12*units.Millisecond {
		t.Errorf("srtt = %v, want ≈10ms", snd.srtt)
	}
	if snd.rto < 200*units.Millisecond {
		t.Errorf("rto = %v below the conventional floor", snd.rto)
	}
}

func TestReceiverDuplicateData(t *testing.T) {
	s := sim.New(1)
	var delivered int64
	var acks int
	rcv := NewReceiver(s, 1, packet.HandlerFunc(func(p *packet.Packet) {
		acks++
		if p.Ack > 2*MSS {
			t.Fatalf("ack %d beyond delivered data", p.Ack)
		}
	}), func(n int64) { delivered += n })
	seg := func(seq int64) *packet.Packet {
		return &packet.Packet{Flow: 1, Proto: packet.TCP, Size: MSS + HeaderSize, Seq: seq}
	}
	rcv.Handle(seg(0))
	rcv.Handle(seg(0)) // exact duplicate
	rcv.Handle(seg(MSS))
	rcv.Handle(seg(MSS)) // duplicate again
	if delivered != 2*MSS {
		t.Errorf("delivered %d, want %d (duplicates must not double-count)", delivered, 2*MSS)
	}
	if acks != 4 {
		t.Errorf("every segment must be acked: %d", acks)
	}
}

func TestReceiverOutOfOrderReassembly(t *testing.T) {
	s := sim.New(1)
	var delivered int64
	rcv := NewReceiver(s, 1, packet.HandlerFunc(func(*packet.Packet) {}), func(n int64) { delivered += n })
	seg := func(seq int64) *packet.Packet {
		return &packet.Packet{Flow: 1, Proto: packet.TCP, Size: MSS + HeaderSize, Seq: seq}
	}
	rcv.Handle(seg(2 * MSS))
	rcv.Handle(seg(MSS))
	if delivered != 0 {
		t.Fatalf("delivered %d before the stream head arrived", delivered)
	}
	rcv.Handle(seg(0))
	if delivered != 3*MSS {
		t.Errorf("delivered %d after hole filled, want %d", delivered, 3*MSS)
	}
}

func TestBacklogAccounting(t *testing.T) {
	s := sim.New(1)
	snd := NewSender(s, 1, packet.HandlerFunc(func(*packet.Packet) {}))
	snd.Write(100_000)
	// cwnd 2*MSS: only 2920 bytes leave immediately.
	if got := snd.Backlog(); got != 100_000-2*MSS {
		t.Errorf("backlog = %d", got)
	}
	if snd.Unacked() != 2*MSS {
		t.Errorf("unacked = %d", snd.Unacked())
	}
}
