// Package topology assembles the simulated networks the experiments
// run on. The declarative Builder ("builder.go") is the general
// mechanism: declare named links, routers, conditioning elements,
// traffic sources and taps, then Build() wires the graph and hands
// back handles. The paper's two testbeds — the QBone wide-area path
// (Fig. 5) and the local three-router Frame Relay testbed (Fig. 4) —
// plus the Assured Forwarding extension and the N-flow scaling
// topology are thin presets over that builder.
package topology

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokenbucket"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// VideoFlow is the flow id the experiments' video connection uses.
const VideoFlow packet.FlowID = 1

// QBoneConfig parameterizes the wide-area experiment (Figs. 7–14).
type QBoneConfig struct {
	Seed      uint64
	Enc       *video.Encoding
	TokenRate units.BitRate  // APS profile peak rate
	Depth     units.ByteSize // APS profile burst size (3000 or 4500)
	Shape     bool           // shape instead of drop at the border
	Pool      *packet.Pool   // packet arena; nil builds a fresh one
	// Trace, when set, records packet-level events from every element
	// of the path (and the client) into the given bounded recorder.
	Trace *ptrace.Recorder
	// BucketWidth pins the simulator's calendar bucket width and
	// disables width adaptation; 0 (the default) is adaptive. Purely a
	// perf knob — results are width-invariant.
	BucketWidth units.Time

	Hops         int           // backbone hops; default 4
	HopRate      units.BitRate // default 45 Mbps
	HopDelay     units.Time    // default 5 ms per hop
	CampusJitter units.Time    // default 3 ms (pre-policer jitter, §3.2)
	CrossLoad    float64       // best-effort load fraction per hop; default 0.15
	AccessRate   units.BitRate // client access link; default 10 Mbps
	MsgSize      int           // server message payload; default one MTU
}

func (c QBoneConfig) withDefaults() QBoneConfig {
	if c.Hops == 0 {
		c.Hops = 4
	}
	if c.HopRate == 0 {
		c.HopRate = 45 * units.Mbps
	}
	if c.HopDelay == 0 {
		c.HopDelay = 5 * units.Millisecond
	}
	if c.CampusJitter == 0 {
		c.CampusJitter = 5 * units.Millisecond
	}
	if c.CrossLoad == 0 {
		c.CrossLoad = 0.15
	}
	if c.AccessRate == 0 {
		c.AccessRate = 10 * units.Mbps
	}
	return c
}

// QBone is a built wide-area experiment ready to run. Hops and Cross
// are both indexed ingress-first: Hops[0] is the first backbone hop
// after the border conditioner and Cross[i] is the source injecting at
// Hops[i] (flow id 1000+i).
type QBone struct {
	Sim     *sim.Simulator
	Net     *Network
	Server  *server.Paced
	Client  *client.UDP
	Policer *tokenbucket.Policer
	Shaper  *tokenbucket.Shaper
	Hops    []*link.Link
	Cross   []*traffic.Poisson

	// Delay records one-way delay and jitter of everything reaching
	// the client — the network-level EF service quality (§2: EF's
	// promise is low loss, low delay, low jitter).
	Delay *stats.DelayCollector
}

// BuildQBone declares Fig. 5 on the Builder: the Video Charger server
// at the remote campus, campus jitter, the border CAR policer (drop,
// or shaper when cfg.Shape), cfg.Hops backbone routers with EF
// priority queues and best-effort cross traffic, and the client behind
// its access link.
func BuildQBone(cfg QBoneConfig) *QBone {
	cfg = cfg.withDefaults()
	b := NewBuilderWidth(cfg.Seed, cfg.BucketWidth)
	b.UsePool(cfg.Pool)
	b.UseTrace(cfg.Trace)
	q := &QBone{Sim: b.Sim()}

	cl := client.NewUDP(b.Sim(), cfg.Enc.Clip.FrameCount())
	cl.Pool = b.Pool()
	if cfg.Trace != nil {
		cl.Tap, cl.Hop = cfg.Trace, cfg.Trace.Hop("client")
	}
	q.Client = cl
	b.Handler("client", cl)
	b.DelayTap("delay", func(p *packet.Packet) bool { return p.Flow == VideoFlow }, "client")
	b.Link("access", LinkSpec{Rate: cfg.AccessRate, Delay: units.Millisecond,
		Sched: EFPriority(0, 200), To: "delay"})

	// Backbone hops, declared client-side first so cross sources start
	// in the same order the hand-wired constructor used. Core routers
	// classify on DSCP only (§3.2.1.2): EF to the high queue, the rest
	// best effort — which the EF priority scheduler does by
	// construction, so each hop router is just its output link.
	for i := cfg.Hops - 1; i >= 0; i-- {
		to := "access"
		if i < cfg.Hops-1 {
			to = hopName(i + 1)
		}
		b.Link(hopName(i), LinkSpec{Rate: cfg.HopRate, Delay: cfg.HopDelay,
			Sched: EFPriority(400, 400), To: to})
		if cfg.CrossLoad > 0 {
			b.Source(crossName(i), SourceSpec{
				Kind: PoissonSource,
				Rate: units.BitRate(cfg.CrossLoad * float64(cfg.HopRate)),
				Size: units.EthernetMTU, Flow: packet.FlowID(1000 + i),
				DSCP: packet.BestEffort, To: hopName(i),
			})
		}
	}

	// Border conditioning: Cisco CAR configured to drop out-of-profile
	// packets (§3.2.2), or a shaper for the ablation.
	conditioner := "policer"
	if cfg.Shape {
		conditioner = "shaper"
		b.Shaper("shaper", cfg.TokenRate, cfg.Depth, packet.EF, 0, hopName(0))
	} else {
		b.Policer("policer", cfg.TokenRate, cfg.Depth, packet.EF, hopName(0))
	}
	b.Router("border", hopName(0))
	b.Rule("border", "video-aps", node.FlowMatch(VideoFlow), conditioner)

	// Campus segment: fast LAN plus the jitter the paper identifies as
	// the reason conformance at the policer is perturbed.
	b.Jitter("jit", cfg.CampusJitter, "border")
	b.Link("campus", LinkSpec{Rate: 100 * units.Mbps, Delay: 500 * units.Microsecond,
		Sched: PlainFIFO(0), To: "jit"})

	net := b.MustBuild()
	q.Net = net
	q.Delay = net.DelayTap("delay")
	if cfg.Shape {
		q.Shaper = net.Shaper("shaper")
	} else {
		q.Policer = net.Policer("policer")
	}
	for i := 0; i < cfg.Hops; i++ {
		q.Hops = append(q.Hops, net.Link(hopName(i)))
		if cfg.CrossLoad > 0 {
			q.Cross = append(q.Cross, net.Poisson(crossName(i)))
		}
	}

	q.Server = &server.Paced{
		Sim: q.Sim, Enc: cfg.Enc, Flow: VideoFlow,
		Next: net.Handler("campus"), MsgSize: cfg.MsgSize,
		Pool: net.Pool,
	}
	return q
}

func hopName(i int) string   { return fmt.Sprintf("hop%d", i) }
func crossName(i int) string { return fmt.Sprintf("cross%d", i) }

// Run starts the server and executes the simulation to completion,
// returning the client's sorted frame trace.
func (q *QBone) Run() {
	q.Server.Start()
	horizon := units.FromSeconds(q.Server.Enc.Clip.DurationSeconds() + 30)
	q.Sim.SetHorizon(horizon)
	q.Sim.Run()
	q.Client.Finish()
}
