// Package topology assembles the two experimental networks of §3.2:
// the QBone wide-area path (Fig. 5) and the local three-router Frame
// Relay testbed (Fig. 4), wiring servers, conditioning elements,
// links, routers, cross traffic and clients into runnable simulations.
package topology

import (
	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokenbucket"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// VideoFlow is the flow id the experiments' video connection uses.
const VideoFlow packet.FlowID = 1

// QBoneConfig parameterizes the wide-area experiment (Figs. 7–14).
type QBoneConfig struct {
	Seed      uint64
	Enc       *video.Encoding
	TokenRate units.BitRate  // APS profile peak rate
	Depth     units.ByteSize // APS profile burst size (3000 or 4500)
	Shape     bool           // shape instead of drop at the border

	Hops         int           // backbone hops; default 4
	HopRate      units.BitRate // default 45 Mbps
	HopDelay     units.Time    // default 5 ms per hop
	CampusJitter units.Time    // default 3 ms (pre-policer jitter, §3.2)
	CrossLoad    float64       // best-effort load fraction per hop; default 0.15
	AccessRate   units.BitRate // client access link; default 10 Mbps
	MsgSize      int           // server message payload; default one MTU
}

func (c QBoneConfig) withDefaults() QBoneConfig {
	if c.Hops == 0 {
		c.Hops = 4
	}
	if c.HopRate == 0 {
		c.HopRate = 45 * units.Mbps
	}
	if c.HopDelay == 0 {
		c.HopDelay = 5 * units.Millisecond
	}
	if c.CampusJitter == 0 {
		c.CampusJitter = 5 * units.Millisecond
	}
	if c.CrossLoad == 0 {
		c.CrossLoad = 0.15
	}
	if c.AccessRate == 0 {
		c.AccessRate = 10 * units.Mbps
	}
	return c
}

// QBone is a built wide-area experiment ready to run.
type QBone struct {
	Sim     *sim.Simulator
	Server  *server.Paced
	Client  *client.UDP
	Policer *tokenbucket.Policer
	Shaper  *tokenbucket.Shaper
	Hops    []*link.Link
	Cross   []*traffic.Poisson

	// Delay records one-way delay and jitter of everything reaching
	// the client — the network-level EF service quality (§2: EF's
	// promise is low loss, low delay, low jitter).
	Delay *stats.DelayCollector
}

// BuildQBone wires Fig. 5: the Video Charger server at the remote
// campus, campus jitter, the border CAR policer (drop, or shaper when
// cfg.Shape), cfg.Hops backbone routers with EF priority queues and
// best-effort cross traffic, and the client behind its access link.
func BuildQBone(cfg QBoneConfig) *QBone {
	cfg = cfg.withDefaults()
	s := sim.New(cfg.Seed)
	q := &QBone{Sim: s}

	cl := client.NewUDP(s, cfg.Enc.Clip.FrameCount())
	q.Client = cl
	q.Delay = &stats.DelayCollector{
		Clock: s, Next: cl,
		Match: func(p *packet.Packet) bool { return p.Flow == VideoFlow },
	}

	// Build the chain back to front: access link, then hops.
	var next packet.Handler = q.Delay
	next = link.New(s, cfg.AccessRate, units.Millisecond, queue.NewEFPriority(0, 200), next)
	for i := cfg.Hops - 1; i >= 0; i-- {
		sched := queue.NewEFPriority(400, 400)
		hop := link.New(s, cfg.HopRate, cfg.HopDelay, sched, next)
		q.Hops = append([]*link.Link{hop}, q.Hops...)
		// Core routers classify on DSCP only (§3.2.1.2): EF to the
		// high queue, the rest best effort — which the EF priority
		// scheduler does by construction, so the hop router is just
		// the link itself.
		next = hop
		if cfg.CrossLoad > 0 {
			cross := &traffic.Poisson{
				Sim: s, Rate: units.BitRate(cfg.CrossLoad * float64(cfg.HopRate)),
				Size: units.EthernetMTU, Flow: packet.FlowID(1000 + i),
				DSCP: packet.BestEffort, Next: hop,
			}
			cross.Start()
			q.Cross = append(q.Cross, cross)
		}
	}

	// Border conditioning: Cisco CAR configured to drop out-of-profile
	// packets (§3.2.2), or a shaper for the ablation.
	var conditioned packet.Handler
	if cfg.Shape {
		q.Shaper = tokenbucket.NewShaper(s, cfg.TokenRate, cfg.Depth, packet.EF, next)
		conditioned = q.Shaper
	} else {
		q.Policer = tokenbucket.NewPolicer(s, cfg.TokenRate, cfg.Depth, packet.EF, next)
		conditioned = q.Policer
	}
	border := node.NewRouter("border", next)
	border.AddRule("video-aps", node.FlowMatch(VideoFlow), conditioned)

	// Campus segment: fast LAN plus the jitter the paper identifies as
	// the reason conformance at the policer is perturbed.
	jit := &link.Jitter{Sim: s, Max: cfg.CampusJitter, Next: border}
	campus := link.New(s, 100*units.Mbps, 500*units.Microsecond, queue.NewSingleFIFO(0), jit)

	q.Server = &server.Paced{
		Sim: s, Enc: cfg.Enc, Flow: VideoFlow, Next: campus, MsgSize: cfg.MsgSize,
	}
	return q
}

// Run starts the server and executes the simulation to completion,
// returning the client's sorted frame trace.
func (q *QBone) Run() {
	q.Server.Start()
	horizon := units.FromSeconds(q.Server.Enc.Clip.DurationSeconds() + 30)
	q.Sim.SetHorizon(horizon)
	q.Sim.Run()
	q.Client.Finish()
}
