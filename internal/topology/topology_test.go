package topology

import (
	"testing"

	"repro/internal/client"

	"repro/internal/units"
	"repro/internal/video"
)

func TestQBoneDeliversAtGenerousProfile(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	q := BuildQBone(QBoneConfig{
		Seed: 1, Enc: enc, TokenRate: 3e6, Depth: 9000, CrossLoad: 0.05,
	})
	q.Run()
	tr := q.Client.Trace()
	if tr.FrameLossFraction() > 0.001 {
		t.Errorf("frame loss %v at a generous profile", tr.FrameLossFraction())
	}
	if q.Policer.Dropped != 0 {
		t.Errorf("policer dropped %d at 3 Mbps for a 1 Mbps stream", q.Policer.Dropped)
	}
	if q.Server.Sent == 0 || q.Client.Packets == 0 {
		t.Error("nothing flowed")
	}
}

func TestQBoneDeterminism(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.5e6)
	run := func() (int, int) {
		q := BuildQBone(QBoneConfig{Seed: 42, Enc: enc, TokenRate: 1.6e6, Depth: 3000})
		q.Run()
		return q.Policer.Dropped, len(q.Client.Trace().Records)
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("runs diverged: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
	if d1 == 0 {
		t.Error("expected some policing at 1.6M for a 1.5M stream with jitter")
	}
}

func TestQBoneShaperMode(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	q := BuildQBone(QBoneConfig{
		Seed: 1, Enc: enc, TokenRate: 1.05e6, Depth: 3000, Shape: true, CrossLoad: 0,
	})
	q.Run()
	if q.Policer != nil {
		t.Fatal("shape mode built a policer")
	}
	if q.Shaper == nil || q.Shaper.Delayed == 0 {
		t.Error("shaper never delayed anything at a tight profile")
	}
	tr := q.Client.Trace()
	// Shaping preserves packets: loss only from never-conform or
	// queue overflow, which should be rare here.
	if tr.FrameLossFraction() > 0.05 {
		t.Errorf("shaped frame loss %v", tr.FrameLossFraction())
	}
}

func TestQBoneCrossTrafficDoesNotHurtEF(t *testing.T) {
	// The paper's observation: with EF prioritized, interfering
	// best-effort traffic caused only minor variations.
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	run := func(load float64) float64 {
		q := BuildQBone(QBoneConfig{
			Seed: 5, Enc: enc, TokenRate: 1.3e6, Depth: 4500, CrossLoad: load,
		})
		q.Run()
		return q.Client.Trace().FrameLossFraction()
	}
	quiet := run(0.001)
	busy := run(0.5)
	if busy > quiet+0.02 {
		t.Errorf("EF loss rose from %v to %v under cross load", quiet, busy)
	}
}

func TestLocalUDPTooBursty(t *testing.T) {
	// §4.2: "UDP streaming remained too bursty to allow meaningful
	// experimentation" — large VBR frames burst at host rate through a
	// small bucket and lose fragments at any token rate.
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	l := BuildLocal(LocalConfig{
		Seed: 1, Enc: enc, TokenRate: 2e6, Depth: 3000, UseTCP: false,
	})
	l.Run()
	if l.Policer.LossFraction() < 0.02 {
		t.Errorf("UDP packet loss %v — expected significant policing of bursts",
			l.Policer.LossFraction())
	}
}

func TestLocalTCPReliableDelivery(t *testing.T) {
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	l := BuildLocal(LocalConfig{
		Seed: 1, Enc: enc, TokenRate: 1.8e6, Depth: 4500, UseTCP: true,
	})
	l.Run()
	tr := l.Trace()
	if tr.FrameLossFraction() > 0.01 {
		t.Errorf("TCP frame loss %v at a generous profile", tr.FrameLossFraction())
	}
	if l.TCPServer.FramesSent == 0 {
		t.Error("no frames sent")
	}
}

func TestLocalShaperPreventsPolicerDrops(t *testing.T) {
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	l := BuildLocal(LocalConfig{
		Seed: 1, Enc: enc, TokenRate: 1.5e6, Depth: 3000, UseTCP: true, UseShaper: true,
	})
	l.Run()
	if l.Shaper == nil {
		t.Fatal("no shaper built")
	}
	if l.Policer.LossFraction() > 0.005 {
		t.Errorf("policer still dropping %v behind the shaper", l.Policer.LossFraction())
	}
	if l.Trace().FrameLossFraction() > 0.01 {
		t.Errorf("frame loss %v with shaping at 1.5M", l.Trace().FrameLossFraction())
	}
}

func TestLocalDeterminism(t *testing.T) {
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	run := func() (float64, int) {
		l := BuildLocal(LocalConfig{Seed: 9, Enc: enc, TokenRate: 1.1e6, Depth: 3000, UseTCP: true})
		l.Run()
		return l.Trace().FrameLossFraction(), l.Sender.Retransmits
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1 != a2 || b1 != b2 {
		t.Errorf("local runs diverged: (%v,%d) vs (%v,%d)", a1, b1, a2, b2)
	}
}

func TestLocalCrossTrafficDoesNotHurtEF(t *testing.T) {
	// The paper's finding: once packets are EF-marked, best-effort
	// cross traffic causes only minor variations (§4). Frames are lost
	// at the policer, not to the congested V.35 link.
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	run := func(cross bool) float64 {
		l := BuildLocal(LocalConfig{
			Seed: 2, Enc: enc, TokenRate: 1.8e6, Depth: 4500,
			UseTCP: false, CrossTraffic: cross,
		})
		l.UDPClient.Tolerance = client.SliceTolerance
		l.Run()
		return l.Trace().FrameLossFraction()
	}
	quiet, busy := run(false), run(true)
	if busy > quiet+0.02 {
		t.Errorf("EF frame loss rose from %v to %v under cross traffic", quiet, busy)
	}
}

func TestQBoneEFDelayIsSmallAndStable(t *testing.T) {
	// The EF promise the paper leans on: conformant packets see small,
	// stable delay even with cross traffic — which is also why the
	// bursty servers' adaptation misread the signals.
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	q := BuildQBone(QBoneConfig{
		Seed: 7, Enc: enc, TokenRate: 1.3e6, Depth: 4500, CrossLoad: 0.4,
	})
	q.Run()
	if q.Delay.Delay.N() == 0 {
		t.Fatal("no delay samples")
	}
	p99 := q.Delay.Delay.Percentile(99)
	mean := q.Delay.Delay.Mean()
	if mean > 0.05 {
		t.Errorf("mean one-way delay %.4fs too large", mean)
	}
	if p99 > mean*3+0.01 {
		t.Errorf("delay tail p99=%.4fs vs mean %.4fs — EF not protected", p99, mean)
	}
	if q.Delay.Jitter.Mean() > 0.01 {
		t.Errorf("mean jitter %.4fs too large for EF", q.Delay.Jitter.Mean())
	}
}
