package topology

import (
	"time"

	"repro/internal/flowbatch"
	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/video"
)

// Sharded intra-run execution: one big run partitioned across cores.
//
// The experiment topologies are trees of source-side access chains
// (a paced server or batched virtual flow, its dedicated access link,
// its jitter element) joining at shared border elements (policers, the
// bottleneck, the demux, the clients). Everything upstream of the
// jitter element is deterministic per-flow arithmetic — no RNG, no
// cross-flow coupling — so those chains can advance on private
// per-shard simulators in parallel. Everything from the first shared
// or RNG-consuming element on runs serially on the border simulator,
// replaying the shards' emissions in exact global order, so a sharded
// run is bit-identical to the serial one (the shardeq harness in
// internal/experiment pins this).
//
// # The lookahead rule
//
// Shards advance in conservative lookahead windows derived from the
// minimum latency of the access chain feeding the border: a packet
// emitted by a source at time t cannot reach the border before
// t + minLatency (propagation delay plus the serialization time of
// the smallest packet), so once every shard has advanced past a
// frontier F, every border arrival before F is known. The topology is
// feed-forward — nothing flows from the border back into a chain — so
// the window width governs pipelining grain and buffering, never
// correctness; it is sized at a multiple of the chain latency
// (lookaheadScale) so each cross-thread hand-off carries a meaningful
// batch.
//
// # Border-merge ordering
//
// Shard emissions carry their exact simulated instants. The border
// drains them in global (time, flow-or-shard) order, and before
// applying an emission at time t it first fires every border event
// strictly before t (sim.RunBefore) and advances the clock to exactly
// t (sim.AdvanceTo), so policers conform-check, taps stamp, and
// downstream queues evolve against the identical timeline the serial
// run produces. Same-instant ties between an injected packet and a
// native border event are resolved injection-first where a serial run
// resolves them in event-sequence order; the tie set is measure-zero
// (jittered delivery instants against lattice-valued link events) and
// the differential harness pins its absence on the tested grids — the
// same standard flow batching set (see internal/flowbatch).
type ShardStats struct {
	// Shards is the effective shard-worker count (requested count
	// capped at the number of partitionable chains).
	Shards int
	// ShardFired counts work done off the border simulator: timer
	// firings on shard-private simulators in chain-clone mode, arrivals
	// walked by the direct generators in batched mode. The border
	// simulator's own count is reported by Sim.Fired() as usual.
	ShardFired uint64
	// Injected counts shard emissions replayed at the border.
	Injected int
	// StallRatio is the fraction of the border goroutine's replay
	// wall-clock spent blocked waiting on shard chunks — near 0 means
	// the border is the bottleneck (healthy pipelining), near 1 means
	// the shards are.
	StallRatio float64
}

// lookaheadScale sizes windows as a multiple of the minimum chain
// latency: wide enough to amortize the per-window channel hand-off and
// heap maintenance, narrow enough that a few windows of buffering keep
// every worker busy (the bounded chunk channels cap memory at
// chanCap+freeCap windows of emissions per shard).
const lookaheadScale = 64

const (
	chunkChanCap = 4
	freeChanCap  = chunkChanCap + 2
)

// lookaheadWindow derives the shard window width from the minimum
// latency of an access chain: propagation delay plus the wire time of
// the smallest schedulable packet.
func lookaheadWindow(rate units.BitRate, delay units.Time, minSize int) units.Time {
	l := delay + rate.TxTime(minSize)
	if l <= 0 {
		l = units.Millisecond
	}
	w := l * lookaheadScale
	if w > 100*units.Millisecond {
		w = 100 * units.Millisecond
	}
	return w
}

// minEntrySize scans a schedule for its smallest wire size.
func minEntrySize(sched *flowbatch.Schedule) int {
	min := units.EthernetMTU
	for i := range sched.Entries {
		if s := sched.Entries[i].Size; s < min {
			min = s
		}
	}
	return min
}

// takeBuf recycles a chunk buffer from a free-list channel, or reports
// none available (the producer then grows a fresh one via append).
func takeBuf[T any](free chan []T) []T {
	select {
	case b := <-free:
		return b[:0]
	default:
		return nil
	}
}

// giveBuf returns a drained chunk buffer to the free list, dropping it
// when the list is full.
func giveBuf[T any](free chan []T, b []T) {
	if b == nil {
		return
	}
	select {
	case free <- b:
	default:
	}
}

// runShardedBatched executes a batched multi-flow run as the three-
// stage pipeline described in internal/flowbatch/shard.go: S shard
// workers walk disjoint virtual-flow subsets' arrival sequences over
// one shared base sequence, a sequencer goroutine merges them and
// draws the jitter stream in serial order, and the calling goroutine
// replays the released deliveries on the border simulator.
func (m *MultiFlow) runShardedBatched(shards int, horizon units.Time) ShardStats {
	bp := m.Batched
	bp.InitReplay()
	n := bp.N
	s := shards
	if s > n {
		s = n
	}
	w := lookaheadWindow(bp.Chain.AccessRate, bp.Chain.AccessDelay, minEntrySize(bp.Sched))

	// Every virtual flow is a time-shifted copy of the same access-chain
	// walk (shift-invariance, see flowbatch.BaseArrivals), so the walk
	// is done once here and the shards merge shifted replays of it.
	base := flowbatch.BaseArrivals(bp.Sched, bp.Chain)

	// Flows are dealt round-robin so the staggered starts spread evenly
	// across workers; any ascending per-shard assignment preserves the
	// global (time, flow) merge order.
	sas := make([]*flowbatch.ShardArrivals, s)
	for i := 0; i < s; i++ {
		sa := &flowbatch.ShardArrivals{Base: base, Horizon: horizon}
		for f := i; f < n; f += s {
			sa.Flows = append(sa.Flows, int32(f))
			sa.Start = append(sa.Start, bp.StartOf(f))
		}
		sa.Init()
		sas[i] = sa
	}
	seq := &flowbatch.JitterSequencer{RNG: m.Sim.RNG(), JitterMax: bp.Chain.JitterMax,
		Horizon: horizon, N: n}
	seq.Init()
	return runFanoutPipeline(m.Sim, sas, seq, w, horizon, bp.Inject)
}

// runFanoutPipeline is the shard-worker / sequencer / border-replay
// pipeline shared by the batched homogeneous and mixture runs: the
// initialized ShardArrivals advance in lookahead windows w, the
// sequencer merges and jitters their chunks, and the calling goroutine
// replays released deliveries through inject in exact serial order.
func runFanoutPipeline(border *sim.Simulator, sas []*flowbatch.ShardArrivals,
	seq *flowbatch.JitterSequencer, w, horizon units.Time,
	inject func(flow, entry int32)) ShardStats {

	s := len(sas)
	g := runner.NewGroup()
	arrCh := make([]chan []flowbatch.Arrival, s)
	arrFree := make([]chan []flowbatch.Arrival, s)
	for i := range arrCh {
		arrCh[i] = make(chan []flowbatch.Arrival, chunkChanCap)
		arrFree[i] = make(chan []flowbatch.Arrival, freeChanCap)
	}
	delCh := make(chan []flowbatch.Delivery, chunkChanCap)
	delFree := make(chan []flowbatch.Delivery, freeChanCap)

	for i := 0; i < s; i++ {
		i := i
		sa := sas[i]
		g.Go(i, func() {
			defer close(arrCh[i])
			for frontier := w; ; frontier += w {
				sa.AdvanceTo(frontier)
				chunk := sa.Out
				sa.Out = takeBuf(arrFree[i])
				select {
				case arrCh[i] <- chunk:
				case <-g.Quit():
					return
				}
				if sa.Done() {
					return
				}
			}
		})
	}
	g.Go(s, func() {
		defer close(delCh)
		chunks := make([][]flowbatch.Arrival, s)
		emit := func(dels []flowbatch.Delivery) bool {
			select {
			case delCh <- dels:
				return true
			case <-g.Quit():
				return false
			}
		}
		live := s
		for frontier := w; live > 0; frontier += w {
			for i := 0; i < s; i++ {
				chunks[i] = nil
				if arrCh[i] == nil {
					continue
				}
				select {
				case c, ok := <-arrCh[i]:
					if !ok {
						arrCh[i] = nil
						live--
						continue
					}
					chunks[i] = c
				case <-g.Quit():
					return
				}
			}
			if !emit(seq.Feed(chunks, frontier, takeBuf(delFree))) {
				return
			}
			for i := 0; i < s; i++ {
				giveBuf(arrFree[i], chunks[i])
			}
		}
		emit(seq.Flush(takeBuf(delFree)))
	})

	st := ShardStats{Shards: s}
	var stall time.Duration
	wall := time.Now()
	for {
		t0 := time.Now()
		dels, ok := <-delCh
		stall += time.Since(t0)
		if !ok {
			break
		}
		for _, d := range dels {
			border.RunBefore(d.At)
			border.AdvanceTo(d.At)
			inject(d.Flow, d.Entry)
		}
		st.Injected += len(dels)
		giveBuf(delFree, dels)
	}
	g.Wait()
	border.SetHorizon(horizon)
	border.Run()

	for _, sa := range sas {
		st.ShardFired += sa.Produced
	}
	if el := time.Since(wall); el > 0 {
		st.StallRatio = float64(stall) / float64(el)
	}
	return st
}

// sourceChain describes one shard-able source-side chain of an
// unbatched topology: a paced server and its dedicated access link,
// cloned onto a shard-private simulator; the chain's output crosses
// back to the named border handler at its exact delivery instants.
type sourceChain struct {
	enc     *video.Encoding
	flow    packet.FlowID
	startAt units.Time
	rate    units.BitRate // access link clone
	delay   units.Time
	sched   SchedulerSpec
	name    string         // cloned link's element name (trace hop, stats copy-back)
	next    packet.Handler // border handler the chain feeds

	hop ptrace.HopID // interned before workers spawn (Recorder is not goroutine-safe)
}

// shardAction is one border-replay step shipped from a shard worker:
// an inject (pkt != nil — hand pkt to next at at) or a trace emission
// a cloned element produced at at. One stream per shard keeps the
// shard's trace and inject actions in exact emission order.
type shardAction struct {
	at   units.Time
	pkt  *packet.Packet
	next packet.Handler
	ev   ptrace.Event
}

// shardStream collects one shard's actions in shard-sim time order.
type shardStream struct {
	sim *sim.Simulator
	out []shardAction
}

// streamTap routes a cloned element's trace events into the stream,
// stamped with the shard clock (the main recorder re-stamps with the
// border clock at replay, which the replay loop has advanced to the
// same instant).
type streamTap shardStream

// Emit implements ptrace.Tap.
func (t *streamTap) Emit(e ptrace.Event) {
	st := (*shardStream)(t)
	e.T = st.sim.Now()
	st.out = append(st.out, shardAction{at: e.T, ev: e})
}

// chainCollector terminates a cloned chain: packets cross to the
// border as inject actions.
type chainCollector struct {
	stream *shardStream
	next   packet.Handler
}

// Handle implements packet.Handler.
func (c *chainCollector) Handle(p *packet.Packet) {
	c.stream.out = append(c.stream.out, shardAction{at: c.stream.sim.Now(), pkt: p, next: c.next})
}

// shardedChainResult carries a shard worker's clones back for stats
// copy-back once the run completes.
type shardedChainResult struct {
	chain  int
	server *server.Paced
	link   *link.Link
}

// runShardedChains executes an unbatched run by cloning each source
// chain onto a shard-private simulator and replaying the merged action
// streams on the border simulator. borderSim is the shared simulator
// of the already-built network; trace is the main recorder (nil when
// untraced). Chains are dealt round-robin across min(shards,
// len(chains)) workers. Returns the pipeline stats and the per-chain
// clones for counter copy-back.
func runShardedChains(borderSim *sim.Simulator, trace *ptrace.Recorder,
	chains []sourceChain, shards int, horizon units.Time) (ShardStats, []shardedChainResult) {

	s := shards
	if s > len(chains) {
		s = len(chains)
	}
	var w units.Time
	for i := range chains {
		if trace != nil {
			chains[i].hop = trace.Hop(chains[i].name)
		}
		cw := lookaheadWindow(chains[i].rate, chains[i].delay, 64)
		if w == 0 || cw < w {
			w = cw
		}
	}

	g := runner.NewGroup()
	actCh := make([]chan []shardAction, s)
	actFree := make([]chan []shardAction, s)
	for i := range actCh {
		actCh[i] = make(chan []shardAction, chunkChanCap)
		actFree[i] = make(chan []shardAction, freeChanCap)
	}
	results := make([]shardedChainResult, len(chains))
	shardSims := make([]*sim.Simulator, s)

	for i := 0; i < s; i++ {
		i := i
		g.Go(i, func() {
			defer close(actCh[i])
			ssim := sim.New(uint64(i + 1))
			shardSims[i] = ssim
			pool := packet.NewPool()
			stream := &shardStream{sim: ssim}
			for c := i; c < len(chains); c += s {
				ch := &chains[c]
				cl := link.New(ssim, ch.rate, ch.delay, ch.sched(ssim),
					&chainCollector{stream: stream, next: ch.next})
				cl.Pool = pool
				if trace != nil {
					cl.Tap, cl.Hop = (*streamTap)(stream), ch.hop
				}
				srv := &server.Paced{Sim: ssim, Enc: ch.enc, Flow: ch.flow, Next: cl, Pool: pool}
				ssim.At(ch.startAt, srv.Start)
				results[c] = shardedChainResult{chain: c, server: srv, link: cl}
			}
			for frontier := w; ; frontier += w {
				ssim.RunBefore(frontier)
				chunk := stream.out
				stream.out = takeBuf(actFree[i])
				select {
				case actCh[i] <- chunk:
				case <-g.Quit():
					return
				}
				if _, ok := ssim.NextEventTime(); !ok {
					return
				}
				if frontier > horizon {
					return // safety cap; chain events all precede the horizon
				}
			}
		})
	}

	// Border replay: one chunk per live shard per window, S-way merged
	// by (time, shard). Cross-shard ties are measure-zero (distinct
	// flows' chain arithmetic off a shared lattice); intra-shard order
	// is the shard's own emission order, preserved verbatim.
	st := ShardStats{Shards: s}
	chunks := make([][]shardAction, s)
	pos := make([]int, s)
	var stall time.Duration
	wall := time.Now()
	live := s
	for live > 0 {
		for i := 0; i < s; i++ {
			chunks[i] = nil
			pos[i] = 0
			if actCh[i] == nil {
				continue
			}
			t0 := time.Now()
			c, ok := <-actCh[i]
			stall += time.Since(t0)
			if !ok {
				actCh[i] = nil
				live--
				continue
			}
			chunks[i] = c
		}
		for {
			best := -1
			for i := 0; i < s; i++ {
				if pos[i] >= len(chunks[i]) {
					continue
				}
				if best < 0 || chunks[i][pos[i]].at < chunks[best][pos[best]].at {
					best = i
				}
			}
			if best < 0 {
				break
			}
			a := &chunks[best][pos[best]]
			pos[best]++
			if a.at > horizon {
				if a.pkt != nil {
					a.pkt = nil // unreachable in practice; serial would never fire it
				}
				continue
			}
			borderSim.RunBefore(a.at)
			borderSim.AdvanceTo(a.at)
			if a.pkt != nil {
				a.next.Handle(a.pkt)
				st.Injected++
			} else if trace != nil {
				trace.Emit(a.ev)
			}
		}
		for i := 0; i < s; i++ {
			giveBuf(actFree[i], chunks[i])
		}
	}
	g.Wait()
	borderSim.SetHorizon(horizon)
	borderSim.Run()

	for _, ss := range shardSims {
		if ss != nil {
			st.ShardFired += ss.Fired()
		}
	}
	if el := time.Since(wall); el > 0 {
		st.StallRatio = float64(stall) / float64(el)
	}
	return st, results
}

// copyLinkStats mirrors a cloned access link's counters onto the idle
// border-side element so Network introspection reads the same totals
// a serial run leaves behind.
func copyLinkStats(dst, src *link.Link) {
	dst.Sent, dst.SentBytes, dst.BusyTime = src.Sent, src.SentBytes, src.BusyTime
}
