package topology

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/flowbatch"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/units"
	"repro/internal/video"
)

// BottleneckSched selects the scheduling discipline of the shared
// bottleneck in the multi-flow topology.
type BottleneckSched int

// Bottleneck scheduler kinds.
const (
	// PriorityBottleneck serves EF strictly first (the paper's core
	// configuration).
	PriorityBottleneck BottleneckSched = iota
	// DRRBottleneck shares the port by deficit round robin across
	// EF / AF / best-effort classes (quanta 4500/3000/1500).
	DRRBottleneck
	// WFQBottleneck shares the port by weighted fair queueing across
	// EF / AF / best-effort classes (weights 3/2/1).
	WFQBottleneck
)

// String names the scheduler kind.
func (k BottleneckSched) String() string {
	switch k {
	case PriorityBottleneck:
		return "priority"
	case DRRBottleneck:
		return "drr"
	case WFQBottleneck:
		return "wfq"
	default:
		return fmt.Sprintf("BottleneckSched(%d)", int(k))
	}
}

// BottleneckSchedulers lists the kinds the scheduler-comparison
// scenario sweeps.
func BottleneckSchedulers() []BottleneckSched {
	return []BottleneckSched{PriorityBottleneck, DRRBottleneck, WFQBottleneck}
}

func (k BottleneckSched) spec(classLimit int) SchedulerSpec {
	afMatch := queue.MatchDSCP(packet.AF11, packet.AF12, packet.AF13)
	switch k {
	case DRRBottleneck:
		return DRRSched(
			queue.ClassSpec{Name: "ef", Match: queue.MatchDSCP(packet.EF), Quantum: 4500, Limit: classLimit},
			queue.ClassSpec{Name: "af", Match: afMatch, Quantum: 3000, Limit: classLimit},
			queue.ClassSpec{Name: "be", Quantum: 1500, Limit: classLimit},
		)
	case WFQBottleneck:
		return WFQSched(
			queue.ClassSpec{Name: "ef", Match: queue.MatchDSCP(packet.EF), Weight: 3, Limit: classLimit},
			queue.ClassSpec{Name: "af", Match: afMatch, Weight: 2, Limit: classLimit},
			queue.ClassSpec{Name: "be", Weight: 1, Limit: classLimit},
		)
	default:
		return EFPriority(classLimit, classLimit)
	}
}

// MultiFlowConfig parameterizes the N-flow scaling topology: N
// identical video streams, each edge-policed into EF, competing with
// AF-marked and best-effort aggregates for one DiffServ bottleneck.
// This is the first topology beyond the paper's single-flow figures —
// built entirely on the declarative Builder.
type MultiFlowConfig struct {
	Seed uint64
	Enc  *video.Encoding // shared by every flow (use the cached encodings)
	N    int             // video flow count; default 2
	Pool *packet.Pool    // packet arena; nil builds a fresh one
	// Trace, when set, records packet-level events from every element
	// (and every per-flow client) into the bounded recorder.
	Trace *ptrace.Recorder

	TokenRate units.BitRate  // per-flow APS profile; default 1.3×enc nominal is the caller's business
	Depth     units.ByteSize // per-flow burst size; default 4500

	BottleneckRate units.BitRate   // default 10 Mbps
	Sched          BottleneckSched // bottleneck discipline; default strict priority

	AFLoad float64 // AF-marked competing load fraction of the bottleneck; default 0
	BELoad float64 // best-effort load fraction; default 0.15

	// Stagger offsets each flow's start so GoP structures do not
	// align; default 331 ms per flow (coprime-ish with the frame
	// interval).
	Stagger units.Time

	// Batch replaces the N server.Paced instances and their per-flow
	// access-link + jitter chains with one flowbatch.BatchedPaced that
	// fans a shared cached emission schedule out as N phase-offset
	// virtual flows. Policers, the bottleneck, the demux and the
	// per-flow clients are declared identically, so a batched build is
	// byte-identical to an unbatched one (the experiment package's
	// differential harness pins this) while paying the source-side
	// cost once instead of N times.
	Batch bool

	// Shards > 1 executes the run on the intra-run sharded pipeline
	// (see shard.go): the per-flow source chains advance on
	// shard-private simulators under conservative lookahead windows
	// and the border replays their emissions in exact serial order, so
	// a sharded run is bit-identical to a serial one at any shard
	// count (the shardeq harness pins this). <= 1 runs serially.
	Shards int

	// Classes, when non-empty, replaces the homogeneous N-flow
	// population with a mixture of equivalence classes (see mixture.go):
	// each class fans its own cached emission schedule out as its own
	// phase-offset virtual-flow set, interleaved in exact global
	// (time, flow) order. N and Enc are ignored; flow ids are assigned
	// class-major starting at VideoFlow.
	Classes []FlowClass

	// AggregateStats replaces the O(N) per-flow receivers with one
	// client.Aggregate per class: streaming moments and P² delay
	// sketches instead of frame traces, so receive-side memory and
	// assembly are O(classes). Only valid with Classes. Frame-level
	// evaluation (VQM, decode dependencies) is unavailable in this
	// mode; delivery is measured at packet granularity.
	AggregateStats bool

	// BucketWidth overrides the simulator's calendar-queue bucket
	// width (0 keeps sim.DefaultBucketWidth). A pure performance knob:
	// event order — and therefore every figure — is identical at any
	// width. Dense six-figure-flow schedules want narrower buckets
	// (see BenchmarkCalendarBucketWidth).
	BucketWidth units.Time
}

func (c MultiFlowConfig) withDefaults() MultiFlowConfig {
	if c.N == 0 {
		c.N = 2
	}
	if c.Depth == 0 {
		c.Depth = 4500
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 10 * units.Mbps
	}
	if c.BELoad == 0 {
		c.BELoad = 0.15
	}
	if c.Stagger == 0 {
		c.Stagger = 331 * units.Millisecond
	}
	return c
}

// MultiFlow is a built N-flow experiment. Exactly one of Servers
// (unbatched: one paced server per flow), Batched (one fan-out source
// covering every flow) or Mixture (a K-class fan-out, see mixture.go)
// is populated.
type MultiFlow struct {
	Sim        *sim.Simulator
	Net        *Network
	Servers    []*server.Paced
	Batched    *flowbatch.BatchedPaced
	Mixture    *flowbatch.BatchedMixture
	Clients    []*client.UDP
	Policers   []*tokenbucket.Policer
	Bottleneck *link.Link

	// Aggregates holds one class-level delivery accumulator per mixture
	// class when the config asked for AggregateStats (Clients is empty
	// then); ClassNames labels them.
	Aggregates []*client.Aggregate
	ClassNames []string

	// Stats describes the sharded pipeline after Run when Shards > 1
	// (Stats.Shards is 1 after a serial run).
	Stats ShardStats

	enc     *video.Encoding
	n       int
	stagger units.Time
	shards  int
	trace   *ptrace.Recorder

	// Mixture-run state: per-flow class/start/encoding layout (set by
	// the mixture build; nil on homogeneous builds) and the precomputed
	// run horizon (0 means derive the homogeneous one from enc).
	classOf []int32
	starts  []units.Time
	encOf   []*video.Encoding
	horizon units.Time
}

// flowID maps flow index to the packet flow id (flow 0 keeps the
// single-flow experiments' VideoFlow id).
func flowID(i int) packet.FlowID { return VideoFlow + packet.FlowID(i) }

// BuildMultiFlow declares the N-flow graph: per flow a paced server →
// campus link → jitter → EF policer → shared bottleneck; the
// bottleneck's scheduler is selectable; a demux router fans flows back
// out to per-flow clients and drops the cross traffic.
func BuildMultiFlow(cfg MultiFlowConfig) *MultiFlow {
	cfg = cfg.withDefaults()
	if len(cfg.Classes) > 0 {
		return buildMixtureMultiFlow(cfg)
	}
	if cfg.AggregateStats {
		panic("topology: AggregateStats requires Classes (aggregation is per equivalence class)")
	}
	b := NewBuilderWidth(cfg.Seed, cfg.BucketWidth)
	b.UsePool(cfg.Pool)
	b.UseTrace(cfg.Trace)
	m := &MultiFlow{Sim: b.Sim(), enc: cfg.Enc, n: cfg.N, stagger: cfg.Stagger,
		shards: cfg.Shards, trace: cfg.Trace}

	// Receive side: one client per flow behind a demux router; cross
	// traffic that crosses the bottleneck is absorbed by the default
	// sink.
	sink := packet.Sink{Pool: b.Pool()}
	b.Handler("sink", &sink)
	b.Router("demux", "sink")
	for i := 0; i < cfg.N; i++ {
		cl := client.NewUDP(b.Sim(), cfg.Enc.Clip.FrameCount())
		cl.Pool = b.Pool()
		cl.Tolerance = client.SliceTolerance
		m.Clients = append(m.Clients, cl)
		name := fmt.Sprintf("client%d", i)
		if cfg.Trace != nil {
			cl.Tap, cl.Hop = cfg.Trace, cfg.Trace.Hop(name)
		}
		b.Handler(name, cl)
		b.Rule("demux", name, node.FlowMatch(flowID(i)), name)
	}

	b.Link("bottleneck", LinkSpec{
		Rate: cfg.BottleneckRate, Delay: 5 * units.Millisecond,
		Sched: cfg.Sched.spec(400), To: "demux",
	})

	// Send side: per-flow edge policers, and — unbatched — one
	// dedicated access-link + jitter chain per flow. A batched build
	// declares only the policers; the chain is folded (exactly) into
	// the fan-out source below.
	for i := 0; i < cfg.N; i++ {
		pol := fmt.Sprintf("policer%d", i)
		b.Policer(pol, cfg.TokenRate, cfg.Depth, packet.EF, "bottleneck")
		if cfg.Batch {
			continue
		}
		jit := fmt.Sprintf("jit%d", i)
		hub := fmt.Sprintf("hub%d", i)
		b.Jitter(jit, accessJitterMax, pol)
		b.Link(hub, LinkSpec{Rate: accessRate, Delay: accessDelay,
			Sched: PlainFIFO(0), To: jit})
	}

	// Competing aggregates at the bottleneck.
	if cfg.AFLoad > 0 {
		b.Source("af-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.AFLoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 900, DSCP: packet.AF12, To: "bottleneck",
		})
	}
	if cfg.BELoad > 0 {
		b.Source("be-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.BELoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 901, DSCP: packet.BestEffort, To: "bottleneck",
		})
	}

	net := b.MustBuild()
	m.Net = net
	m.Bottleneck = net.Link("bottleneck")
	for i := 0; i < cfg.N; i++ {
		m.Policers = append(m.Policers, net.Policer(fmt.Sprintf("policer%d", i)))
		if cfg.Batch {
			continue
		}
		m.Servers = append(m.Servers, &server.Paced{
			Sim: m.Sim, Enc: cfg.Enc, Flow: flowID(i),
			Next: net.Handler(fmt.Sprintf("hub%d", i)),
			Pool: net.Pool,
		})
	}
	if cfg.Batch {
		nexts := make([]packet.Handler, cfg.N)
		for i := range nexts {
			nexts[i] = net.Handler(fmt.Sprintf("policer%d", i))
		}
		m.Batched = &flowbatch.BatchedPaced{
			Sim: m.Sim, Sched: flowbatch.CachedPacedSchedule(cfg.Enc),
			N: cfg.N, BaseFlow: VideoFlow, Offset: cfg.Stagger,
			Chain: flowbatch.ChainSpec{
				AccessRate: accessRate, AccessDelay: accessDelay,
				JitterMax: accessJitterMax,
			},
			Next: nexts, Pool: net.Pool,
		}
		if cfg.Trace != nil {
			m.Batched.Tap, m.Batched.Hop = cfg.Trace, cfg.Trace.Hop("vflows")
		}
	}
	return m
}

// Per-flow access chain parameters, shared by the unbatched element
// declarations and the batched fold so the two builds stay
// byte-identical.
const (
	accessRate      = 100 * units.Mbps
	accessDelay     = 500 * units.Microsecond
	accessJitterMax = 3 * units.Millisecond
)

// Run starts every flow (staggered) and executes the simulation to
// completion — serially, or on the sharded pipeline when the config
// asked for Shards > 1.
func (m *MultiFlow) Run() {
	horizon := m.horizon
	if horizon == 0 {
		horizon = units.FromSeconds(m.enc.Clip.DurationSeconds()+30) +
			units.Time(int64(m.n))*m.stagger
	}
	switch {
	case m.shards > 1 && m.Mixture != nil:
		m.Stats = m.runShardedMixture(m.shards, horizon)
	case m.shards > 1 && m.Batched != nil:
		m.Stats = m.runShardedBatched(m.shards, horizon)
	case m.shards > 1:
		m.Stats = m.runShardedUnbatched(m.shards, horizon)
	default:
		if m.Batched != nil {
			m.Batched.Start()
		}
		if m.Mixture != nil {
			m.Mixture.Start()
		}
		for i, srv := range m.Servers {
			srv := srv
			at := units.Time(int64(i)) * m.stagger
			if m.starts != nil {
				at = m.starts[i]
			}
			m.Sim.At(at, srv.Start)
		}
		m.Sim.SetHorizon(horizon)
		m.Sim.Run()
		m.Stats = ShardStats{Shards: 1}
	}
	for _, cl := range m.Clients {
		cl.Finish()
	}
}

// runShardedUnbatched clones each flow's server + access link onto
// shard simulators and replays their emissions into the border-side
// jitter elements (the first root-RNG consumers, which must stay
// serial) in exact merged order.
func (m *MultiFlow) runShardedUnbatched(shards int, horizon units.Time) ShardStats {
	chains := make([]sourceChain, m.n)
	for i := 0; i < m.n; i++ {
		enc, startAt := m.enc, units.Time(int64(i))*m.stagger
		if m.encOf != nil {
			enc = m.encOf[i]
		}
		if m.starts != nil {
			startAt = m.starts[i]
		}
		chains[i] = sourceChain{
			enc: enc, flow: flowID(i),
			startAt: startAt,
			rate:    accessRate, delay: accessDelay, sched: PlainFIFO(0),
			name: fmt.Sprintf("hub%d", i),
			next: m.Net.Handler(fmt.Sprintf("jit%d", i)),
		}
	}
	st, results := runShardedChains(m.Sim, m.trace, chains, shards, horizon)
	for _, r := range results {
		// Mirror the clones' counters onto the idle border-side elements
		// so post-run introspection matches a serial run.
		copyLinkStats(m.Net.Link(chains[r.chain].name), r.link)
		srv := m.Servers[r.chain]
		srv.Sent, srv.SentBytes = r.server.Sent, r.server.SentBytes
	}
	return st
}

// AggregatePolicerLoss reports packet loss across all per-flow
// policers.
func (m *MultiFlow) AggregatePolicerLoss() float64 {
	var passed, dropped int
	for _, p := range m.Policers {
		passed += p.Passed
		dropped += p.Dropped
	}
	if passed+dropped == 0 {
		return 0
	}
	return float64(dropped) / float64(passed+dropped)
}
