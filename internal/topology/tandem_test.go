package topology

import (
	"testing"

	"repro/internal/ptrace"
	"repro/internal/video"
)

func tandemConfig(second bool) TandemConfig {
	return TandemConfig{
		Seed: 7, Enc: video.CachedCBR(video.Lost(), 1.0e6),
		TokenRate: 1.1e6, Depth: 3000, SecondBorder: second,
	}
}

func TestTandemBaselineDelivers(t *testing.T) {
	t.Parallel()
	tn := BuildTandem(tandemConfig(false))
	if tn.Border2 != nil {
		t.Fatal("baseline built a second border")
	}
	tn.Run()
	if tn.Client.Packets == 0 {
		t.Fatal("client received nothing")
	}
	if tn.Border1.Passed == 0 {
		t.Fatal("border 1 passed nothing")
	}
}

func TestTandemSecondBorderReDrops(t *testing.T) {
	t.Parallel()
	tn := BuildTandem(tandemConfig(true))
	if tn.Border2 == nil {
		t.Fatal("second border missing")
	}
	tn.Run()
	b1, b2 := tn.PolicerLoss()
	// The whole point of the topology: traffic that conformed at
	// border 1 is re-clocked by domain 1's queues and re-dropped at
	// border 2 against the identical profile.
	if b2 <= 0 {
		t.Errorf("border 2 dropped nothing (b1=%.4f) — no burst accumulation visible", b1)
	}
	if tn.Border2.Passed+tn.Border2.Dropped != tn.Border1.Passed {
		t.Errorf("border 2 saw %d packets, border 1 passed %d",
			tn.Border2.Passed+tn.Border2.Dropped, tn.Border1.Passed)
	}
}

func TestTandemTraceCapturesBothBorders(t *testing.T) {
	t.Parallel()
	// Bulk forwarding events would overrun any bounded ring over a
	// whole run; the verdict mask keeps every conditioner decision
	// and delivery instead.
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 1 << 17, Kinds: ptrace.VerdictKinds()})
	cfg := tandemConfig(true)
	cfg.Trace = rec
	tn := BuildTandem(cfg)
	tn.Run()
	if rec.Seen() == 0 {
		t.Fatal("recorder saw nothing")
	}
	counts := map[string]map[ptrace.Kind]int{}
	for _, e := range rec.Events() {
		m := counts[rec.HopName(e.Hop)]
		if m == nil {
			m = map[ptrace.Kind]int{}
			counts[rec.HopName(e.Hop)] = m
		}
		m[e.Kind]++
	}
	for _, border := range []string{"border1", "border2"} {
		if counts[border][ptrace.PolicerPass] == 0 {
			t.Errorf("%s recorded no pass verdicts", border)
		}
	}
	if counts["border2"][ptrace.PolicerDrop] == 0 {
		t.Error("border2 recorded no drops in the trace")
	}
	if counts["client"][ptrace.Deliver] == 0 {
		t.Error("client recorded no deliveries")
	}
	// Delivery events must carry a positive one-way delay.
	for _, e := range rec.Events() {
		if e.Kind == ptrace.Deliver && e.Delay <= 0 {
			t.Fatalf("delivery with non-positive delay: %+v", e)
		}
	}
}

// TestTandemTraceDoesNotPerturb pins the observation-only contract:
// the same seed with and without a recorder produces the identical
// simulation (event count, client packets, border verdicts).
func TestTandemTraceDoesNotPerturb(t *testing.T) {
	t.Parallel()
	plain := BuildTandem(tandemConfig(true))
	plain.Run()

	cfg := tandemConfig(true)
	cfg.Trace = ptrace.NewRecorder(ptrace.Config{Capacity: 1024, Sample: 8})
	traced := BuildTandem(cfg)
	traced.Run()

	if plain.Sim.Fired() != traced.Sim.Fired() {
		t.Errorf("event counts diverge: %d vs %d", plain.Sim.Fired(), traced.Sim.Fired())
	}
	if plain.Client.Packets != traced.Client.Packets {
		t.Errorf("client packets diverge: %d vs %d", plain.Client.Packets, traced.Client.Packets)
	}
	if plain.Border1.Dropped != traced.Border1.Dropped ||
		plain.Border2.Dropped != traced.Border2.Dropped {
		t.Errorf("border drops diverge: %d/%d vs %d/%d",
			plain.Border1.Dropped, plain.Border2.Dropped,
			traced.Border1.Dropped, traced.Border2.Dropped)
	}
}
