package topology

import (
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

func TestAFBuildsAndRuns(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	a := BuildAF(AFConfig{Seed: 1, Enc: enc, CIR: 1.2e6})
	a.Run()
	if a.Marker.Green == 0 {
		t.Fatal("marker saw no traffic")
	}
	tr := a.Client.Trace()
	if tr.FrameLossFraction() > 0.02 {
		t.Errorf("frame loss %v with adequate CIR and default load", tr.FrameLossFraction())
	}
}

func TestAFColoringMonotoneInCIR(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	reds := func(cir units.BitRate) int {
		a := BuildAF(AFConfig{Seed: 1, Enc: enc, CIR: cir})
		a.Run()
		return a.Marker.Red
	}
	small, big := reds(0.5e6), reds(1.5e6)
	if small <= big {
		t.Errorf("red count not decreasing in CIR: %d vs %d", small, big)
	}
}

func TestAFNeverDropsAtEdge(t *testing.T) {
	// AF conditioning marks; it must not drop. Every sent packet is
	// either delivered or lost inside the network, and with no
	// congestion everything arrives even when heavily red-marked.
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	a := BuildAF(AFConfig{Seed: 3, Enc: enc, CIR: 0.4e6, AFLoad: 0.01, BELoad: 0.01})
	a.Run()
	if a.Marker.Red == 0 {
		t.Fatal("expected heavy red marking at CIR 0.4M")
	}
	if got := a.Client.Trace().FrameLossFraction(); got > 0.01 {
		t.Errorf("frame loss %v in an uncongested AF class", got)
	}
}
