package topology

import (
	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tokenbucket"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// LocalConfig parameterizes the local-testbed experiment (Figs. 15–16):
// a Windows Media server streaming the WMV-encoded clip through the
// three-router Frame Relay chain of Fig. 4.
type LocalConfig struct {
	Seed      uint64
	Enc       *video.Encoding
	TokenRate units.BitRate
	Depth     units.ByteSize
	Pool      *packet.Pool // packet arena; nil builds a fresh one
	// Trace, when set, records packet-level events (including the TCP
	// sender's send/ACK/RTO in TCP mode) into the bounded recorder.
	Trace *ptrace.Recorder
	// BucketWidth pins the simulator's calendar bucket width and
	// disables width adaptation; 0 (the default) is adaptive. Purely a
	// perf knob — results are width-invariant.
	BucketWidth units.Time

	UseTCP bool // TCP streaming with server-side thinning (the usable mode)

	// LimitedTransmit enables RFC 3042 on the TCP sender (ablation;
	// the 2001 testbed stacks predate it).
	LimitedTransmit bool

	// UseShaper inserts the Linux shaping router between the server
	// and router 1 (Fig. 4 / Table 4 "Shape – Linux router").
	UseShaper   bool
	ShaperRate  units.BitRate  // default: the policer token rate
	ShaperDepth units.ByteSize // default: the policer depth

	HostRate     units.BitRate // server NIC; default 10 Mbps
	CrossTraffic bool          // inject best-effort cross traffic at router 2
}

func (c LocalConfig) withDefaults() LocalConfig {
	if c.HostRate == 0 {
		c.HostRate = 10 * units.Mbps
	}
	if c.ShaperRate == 0 {
		c.ShaperRate = c.TokenRate
	}
	if c.ShaperDepth == 0 {
		c.ShaperDepth = c.Depth
	}
	return c
}

// Local is a built local-testbed experiment.
type Local struct {
	Sim     *sim.Simulator
	Net     *Network
	Policer *tokenbucket.Policer
	Shaper  *tokenbucket.Shaper

	// UDP mode.
	UDPServer *server.WMTUDP
	UDPClient *client.UDP

	// TCP mode.
	TCPServer *server.WMTTCP
	TCPClient *client.Stream
	Sender    *tcpsim.Sender
	Receiver  *tcpsim.Receiver

	enc *video.Encoding
}

// BuildLocal declares Fig. 4 on the Builder: server host → hub →
// (optional Linux shaper) → router 1 (classifier + EF policer, drop) →
// FR/HSSI 2 Mbps → router 2 → FR/V.35 2 Mbps (the E1 bottleneck) →
// router 3 → client. Router 3 classifies positionally — everything
// goes to its port — so it needs no policy rules and is represented by
// the port link alone.
func BuildLocal(cfg LocalConfig) *Local {
	cfg = cfg.withDefaults()
	b := NewBuilderWidth(cfg.Seed, cfg.BucketWidth)
	b.UsePool(cfg.Pool)
	b.UseTrace(cfg.Trace)
	l := &Local{Sim: b.Sim(), enc: cfg.Enc}
	frames := cfg.Enc.Clip.FrameCount()

	fr := link.Table1()

	// Receive-side endpoint: the UDP client directly, or a late-bound
	// hook into the TCP receiver (constructed after Build).
	var deliver packet.Handler
	if cfg.UseTCP {
		l.TCPClient = client.NewStream(b.Sim(), frames)
		deliver = packet.HandlerFunc(func(p *packet.Packet) { l.Receiver.Handle(p) })
	} else {
		l.UDPClient = client.NewUDP(b.Sim(), frames)
		l.UDPClient.Pool = b.Pool()
		if cfg.Trace != nil {
			l.UDPClient.Tap, l.UDPClient.Hop = cfg.Trace, cfg.Trace.Hop("client")
		}
		deliver = l.UDPClient
	}
	b.Handler("deliver", deliver)

	// Router 3 → client hub (fast Ethernet), then the FR chain.
	b.Link("hub2", LinkSpec{Rate: 10 * units.Mbps, Delay: 200 * units.Microsecond,
		Sched: PlainFIFO(0), To: "deliver"})
	b.FrameRelayLink("r3port", fr[3], units.Millisecond, EFPriority(100, 100), "hub2")
	b.FrameRelayLink("r2port", fr[0], units.Millisecond, EFPriority(100, 100), "r3port")
	b.FrameRelayLink("r1port", fr[2], units.Millisecond, EFPriority(100, 100), "r2port")

	// Router 1: EF policer on the video flow, everything else straight
	// to the HSSI port.
	b.Policer("policer", cfg.TokenRate, cfg.Depth, packet.EF, "r1port")
	b.Router("router1", "r1port")
	b.Rule("router1", "video", node.FlowMatch(VideoFlow), "policer")

	// Optional Linux shaping router between server hub and router 1.
	ingress := "router1"
	if cfg.UseShaper {
		ingress = "shaper"
		b.Shaper("shaper", cfg.ShaperRate, cfg.ShaperDepth, packet.BestEffort, 200, "router1")
	}

	// Server hub: host NIC serialization.
	b.Link("hub1", LinkSpec{Rate: cfg.HostRate, Delay: 200 * units.Microsecond,
		Sched: PlainFIFO(0), To: ingress})

	if cfg.CrossTraffic {
		b.Source("cross", SourceSpec{
			Kind: OnOffSource, Rate: 1.5 * units.Mbps,
			MeanOn: 200 * units.Millisecond, MeanOff: 400 * units.Millisecond,
			Flow: 99, DSCP: packet.BestEffort, To: "r2port",
		})
	}

	if cfg.UseTCP {
		// ACKs return over an uncongested reverse path.
		b.Handler("sender-ack", packet.HandlerFunc(func(p *packet.Packet) { l.Sender.HandleAck(p) }))
		b.Link("ackback", LinkSpec{Rate: 10 * units.Mbps, Delay: 2 * units.Millisecond,
			Sched: PlainFIFO(0), To: "sender-ack"})
	}

	net := b.MustBuild()
	l.Net = net
	l.Policer = net.Policer("policer")
	if cfg.UseShaper {
		l.Shaper = net.Shaper("shaper")
	}

	hub1 := net.Handler("hub1")
	if cfg.UseTCP {
		l.Sender = tcpsim.NewSender(l.Sim, VideoFlow, hub1)
		l.Sender.Pool = net.Pool
		l.Sender.LimitedTransmit = cfg.LimitedTransmit
		if cfg.Trace != nil {
			l.Sender.Tap, l.Sender.Hop = cfg.Trace, cfg.Trace.Hop("tcp-sender")
		}
		asm := &client.StreamAssembler{}
		l.Receiver = tcpsim.NewReceiver(l.Sim, VideoFlow, net.Handler("ackback"), func(n int64) {
			l.TCPClient.OnDelivered(asm, n)
		})
		l.Receiver.Pool = net.Pool
		l.TCPServer = &server.WMTTCP{Sim: l.Sim, Enc: cfg.Enc, Sender: l.Sender, Asm: asm}
	} else {
		l.UDPServer = &server.WMTUDP{
			Sim: l.Sim, Enc: cfg.Enc, Flow: VideoFlow, Next: hub1, HostRate: cfg.HostRate,
			Pool: net.Pool,
		}
	}
	return l
}

// Run executes the experiment and returns when the clip (plus drain
// time) has played out.
func (l *Local) Run() {
	if l.TCPServer != nil {
		l.TCPServer.Start()
	} else {
		l.UDPServer.Start()
	}
	horizon := units.FromSeconds(l.enc.Clip.DurationSeconds() + 60)
	l.Sim.SetHorizon(horizon)
	l.Sim.Run()
	if l.TCPClient != nil {
		l.TCPClient.Finish()
	}
	if l.UDPClient != nil {
		l.UDPClient.Finish()
	}
}

// Trace returns the client's frame trace for whichever mode ran.
func (l *Local) Trace() *trace.Trace {
	if l.TCPClient != nil {
		return l.TCPClient.Trace()
	}
	return l.UDPClient.Trace()
}
