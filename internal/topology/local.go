package topology

import (
	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/tokenbucket"
	"repro/internal/trace"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// LocalConfig parameterizes the local-testbed experiment (Figs. 15–16):
// a Windows Media server streaming the WMV-encoded clip through the
// three-router Frame Relay chain of Fig. 4.
type LocalConfig struct {
	Seed      uint64
	Enc       *video.Encoding
	TokenRate units.BitRate
	Depth     units.ByteSize

	UseTCP bool // TCP streaming with server-side thinning (the usable mode)

	// LimitedTransmit enables RFC 3042 on the TCP sender (ablation;
	// the 2001 testbed stacks predate it).
	LimitedTransmit bool

	// UseShaper inserts the Linux shaping router between the server
	// and router 1 (Fig. 4 / Table 4 "Shape – Linux router").
	UseShaper   bool
	ShaperRate  units.BitRate  // default: the policer token rate
	ShaperDepth units.ByteSize // default: the policer depth

	HostRate     units.BitRate // server NIC; default 10 Mbps
	CrossTraffic bool          // inject best-effort cross traffic at router 2
}

func (c LocalConfig) withDefaults() LocalConfig {
	if c.HostRate == 0 {
		c.HostRate = 10 * units.Mbps
	}
	if c.ShaperRate == 0 {
		c.ShaperRate = c.TokenRate
	}
	if c.ShaperDepth == 0 {
		c.ShaperDepth = c.Depth
	}
	return c
}

// Local is a built local-testbed experiment.
type Local struct {
	Sim     *sim.Simulator
	Policer *tokenbucket.Policer
	Shaper  *tokenbucket.Shaper

	// UDP mode.
	UDPServer *server.WMTUDP
	UDPClient *client.UDP

	// TCP mode.
	TCPServer *server.WMTTCP
	TCPClient *client.Stream
	Sender    *tcpsim.Sender
	Receiver  *tcpsim.Receiver

	enc *video.Encoding
}

// BuildLocal wires Fig. 4: server host → hub → (optional Linux
// shaper) → router 1 (classifier + EF policer, drop) → FR/HSSI 2 Mbps
// → router 2 → FR/V.35 2 Mbps (the E1 bottleneck) → router 3 → client.
func BuildLocal(cfg LocalConfig) *Local {
	cfg = cfg.withDefaults()
	s := sim.New(cfg.Seed)
	l := &Local{Sim: s, enc: cfg.Enc}
	frames := cfg.Enc.Clip.FrameCount()

	fr := link.Table1()

	// Receive side first (chain is built back to front).
	var clientSide packet.Handler
	var ackBack packet.Handler // reverse path for TCP ACKs
	if cfg.UseTCP {
		l.TCPClient = client.NewStream(s, frames)
	} else {
		l.UDPClient = client.NewUDP(s, frames)
		clientSide = l.UDPClient
	}

	// Router 3 → client hub (fast Ethernet).
	var deliver packet.Handler
	if cfg.UseTCP {
		deliver = packet.HandlerFunc(func(p *packet.Packet) { l.Receiver.Handle(p) })
	} else {
		deliver = clientSide
	}
	hub2 := link.New(s, 10*units.Mbps, 200*units.Microsecond, queue.NewSingleFIFO(0), deliver)

	// Router 3: BA classifier, EF priority port.
	r3port := link.NewFrameRelay(s, fr[3], units.Millisecond, queue.NewEFPriority(100, 100), hub2)
	router3 := node.NewRouter("router3", r3port)
	_ = router3 // classification is positional: everything goes to the port
	// Router 2: V.35 bottleneck toward router 3.
	r2port := link.NewFrameRelay(s, fr[0], units.Millisecond, queue.NewEFPriority(100, 100), r3port)
	// Router 1: HSSI toward router 2, EF policer on the video flow.
	r1port := link.NewFrameRelay(s, fr[2], units.Millisecond, queue.NewEFPriority(100, 100), r2port)

	l.Policer = tokenbucket.NewPolicer(s, cfg.TokenRate, cfg.Depth, packet.EF, r1port)
	router1 := node.NewRouter("router1", r1port)
	router1.AddRule("video", node.FlowMatch(VideoFlow), l.Policer)

	// Optional Linux shaping router between server hub and router 1.
	var ingress packet.Handler = router1
	if cfg.UseShaper {
		l.Shaper = tokenbucket.NewShaper(s, cfg.ShaperRate, cfg.ShaperDepth, packet.BestEffort, router1)
		l.Shaper.SetQueueLimit(200)
		ingress = l.Shaper
	}

	// Server hub: host NIC serialization.
	hub1 := link.New(s, cfg.HostRate, 200*units.Microsecond, queue.NewSingleFIFO(0), ingress)

	if cfg.CrossTraffic {
		cross := &traffic.OnOff{
			Sim: s, PeakRate: 1.5 * units.Mbps, MeanOn: 200 * units.Millisecond,
			MeanOff: 400 * units.Millisecond, Flow: 99, DSCP: packet.BestEffort,
			Next: r2port,
		}
		cross.Start()
	}

	if cfg.UseTCP {
		// ACKs return over an uncongested reverse path.
		ackBack = link.New(s, 10*units.Mbps, 2*units.Millisecond, queue.NewSingleFIFO(0),
			packet.HandlerFunc(func(p *packet.Packet) { l.Sender.HandleAck(p) }))
		l.Sender = tcpsim.NewSender(s, VideoFlow, hub1)
		l.Sender.LimitedTransmit = cfg.LimitedTransmit
		asm := &client.StreamAssembler{}
		l.Receiver = tcpsim.NewReceiver(s, VideoFlow, ackBack, func(n int64) {
			l.TCPClient.OnDelivered(asm, n)
		})
		l.TCPServer = &server.WMTTCP{Sim: s, Enc: cfg.Enc, Sender: l.Sender, Asm: asm}
	} else {
		l.UDPServer = &server.WMTUDP{
			Sim: s, Enc: cfg.Enc, Flow: VideoFlow, Next: hub1, HostRate: cfg.HostRate,
		}
	}
	return l
}

// Run executes the experiment and returns when the clip (plus drain
// time) has played out.
func (l *Local) Run() {
	if l.TCPServer != nil {
		l.TCPServer.Start()
	} else {
		l.UDPServer.Start()
	}
	horizon := units.FromSeconds(l.enc.Clip.DurationSeconds() + 60)
	l.Sim.SetHorizon(horizon)
	l.Sim.Run()
	if l.TCPClient != nil {
		l.TCPClient.Finish()
	}
	if l.UDPClient != nil {
		l.UDPClient.Finish()
	}
}

// Trace returns the client's frame trace for whichever mode ran.
func (l *Local) Trace() *trace.Trace {
	if l.TCPClient != nil {
		return l.TCPClient.Trace()
	}
	return l.UDPClient.Trace()
}
