package topology

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ptrace"
	"repro/internal/units"
	"repro/internal/video"
)

// traceBytes encodes a recorder's capture with packet ids
// canonicalized — absolute ids come from process-global counters, so
// only the relabeled form is comparable across runs.
func traceBytes(t *testing.T, rec *ptrace.Recorder) []byte {
	t.Helper()
	d := rec.Data()
	ptrace.CanonicalizePacketIDs(d)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func shardTestRecorder() *ptrace.Recorder {
	return ptrace.NewRecorder(ptrace.Config{Capacity: 1 << 16, Kinds: ptrace.VerdictKinds()})
}

func multiFlowShardConfig(batch bool, n int) MultiFlowConfig {
	return MultiFlowConfig{
		Seed: 11, Enc: video.CachedCBR(video.Lost(), 1.0e6),
		N: n, TokenRate: 1.2e6, Depth: 3000, Batch: batch,
	}
}

// compareMultiFlow asserts a sharded run left behind the exact
// observable state of the serial reference.
func compareMultiFlow(t *testing.T, label string, ref, got *MultiFlow, refTrace, gotTrace []byte) {
	t.Helper()
	for i := range ref.Clients {
		if ref.Clients[i].Packets != got.Clients[i].Packets ||
			ref.Clients[i].PacketsBytes != got.Clients[i].PacketsBytes {
			t.Errorf("%s: client %d: %d pkts/%d B, want %d pkts/%d B", label, i,
				got.Clients[i].Packets, got.Clients[i].PacketsBytes,
				ref.Clients[i].Packets, ref.Clients[i].PacketsBytes)
		}
	}
	for i := range ref.Policers {
		if ref.Policers[i].Passed != got.Policers[i].Passed ||
			ref.Policers[i].Dropped != got.Policers[i].Dropped {
			t.Errorf("%s: policer %d: %d/%d, want %d/%d", label, i,
				got.Policers[i].Passed, got.Policers[i].Dropped,
				ref.Policers[i].Passed, ref.Policers[i].Dropped)
		}
	}
	if ref.Bottleneck.Sent != got.Bottleneck.Sent ||
		ref.Bottleneck.SentBytes != got.Bottleneck.SentBytes {
		t.Errorf("%s: bottleneck %d pkts/%d B, want %d pkts/%d B", label,
			got.Bottleneck.Sent, got.Bottleneck.SentBytes,
			ref.Bottleneck.Sent, ref.Bottleneck.SentBytes)
	}
	if !bytes.Equal(refTrace, gotTrace) {
		t.Errorf("%s: canonicalized traces are not byte-identical (%d vs %d bytes)",
			label, len(refTrace), len(gotTrace))
	}
}

func runMultiFlow(t *testing.T, cfg MultiFlowConfig) (*MultiFlow, []byte) {
	t.Helper()
	rec := shardTestRecorder()
	cfg.Trace = rec
	m := BuildMultiFlow(cfg)
	m.Run()
	if m.Stats.Shards != max(cfg.Shards, 1) && cfg.Shards <= cfg.N {
		t.Errorf("Stats.Shards = %d after Shards=%d run", m.Stats.Shards, cfg.Shards)
	}
	return m, traceBytes(t, rec)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestShardedBatchedMultiFlowMatchesSerial pins the tentpole contract
// on the batched topology: the three-stage pipeline (shard arrival
// walks → serial jitter sequencer → border replay) is bit-identical to
// the serial run at every shard count.
func TestShardedBatchedMultiFlowMatchesSerial(t *testing.T) {
	t.Parallel()
	ref, refTrace := runMultiFlow(t, multiFlowShardConfig(true, 6))
	if ref.Stats.Shards != 1 {
		t.Fatalf("serial run reported %d shards", ref.Stats.Shards)
	}
	for _, shards := range []int{2, 3, 4} {
		cfg := multiFlowShardConfig(true, 6)
		cfg.Shards = shards
		got, gotTrace := runMultiFlow(t, cfg)
		if got.Stats.Injected == 0 {
			t.Errorf("shards=%d: no injections recorded", shards)
		}
		compareMultiFlow(t, fmt.Sprintf("batched shards=%d", shards), ref, got, refTrace, gotTrace)
	}
}

// TestShardedUnbatchedMultiFlowMatchesSerial pins the chain-clone mode:
// each flow's server + access link advances on a shard simulator and
// the border replays the merged inject/trace action streams.
func TestShardedUnbatchedMultiFlowMatchesSerial(t *testing.T) {
	t.Parallel()
	ref, refTrace := runMultiFlow(t, multiFlowShardConfig(false, 4))
	for _, shards := range []int{2, 3} {
		cfg := multiFlowShardConfig(false, 4)
		cfg.Shards = shards
		got, gotTrace := runMultiFlow(t, cfg)
		compareMultiFlow(t, fmt.Sprintf("unbatched shards=%d", shards), ref, got, refTrace, gotTrace)
		// Copy-back: the idle border-side elements must read like a
		// serial run's.
		for i := range ref.Servers {
			if ref.Servers[i].Sent != got.Servers[i].Sent ||
				ref.Servers[i].SentBytes != got.Servers[i].SentBytes {
				t.Errorf("shards=%d: server %d sent %d/%d, want %d/%d", shards, i,
					got.Servers[i].Sent, got.Servers[i].SentBytes,
					ref.Servers[i].Sent, ref.Servers[i].SentBytes)
			}
			hub := fmt.Sprintf("hub%d", i)
			if ref.Net.Link(hub).Sent != got.Net.Link(hub).Sent {
				t.Errorf("shards=%d: %s sent %d, want %d", shards, hub,
					got.Net.Link(hub).Sent, ref.Net.Link(hub).Sent)
			}
		}
	}
}

// TestShardedTandemMatchesSerial pins the single-chain case: one
// worker plus the border, still byte-identical.
func TestShardedTandemMatchesSerial(t *testing.T) {
	t.Parallel()
	run := func(shards int) (*Tandem, []byte) {
		rec := shardTestRecorder()
		cfg := tandemConfig(true)
		cfg.Trace = rec
		cfg.Shards = shards
		tn := BuildTandem(cfg)
		tn.Run()
		return tn, traceBytes(t, rec)
	}
	ref, refTrace := run(0)
	for _, shards := range []int{2, 4} {
		got, gotTrace := run(shards)
		if got.Stats.Shards != 1 {
			t.Errorf("shards=%d: effective worker count %d, want 1 (one chain)",
				shards, got.Stats.Shards)
		}
		if ref.Client.Packets != got.Client.Packets ||
			ref.Client.PacketsBytes != got.Client.PacketsBytes {
			t.Errorf("shards=%d: client %d pkts/%d B, want %d/%d", shards,
				got.Client.Packets, got.Client.PacketsBytes,
				ref.Client.Packets, ref.Client.PacketsBytes)
		}
		if ref.Border1.Passed != got.Border1.Passed || ref.Border1.Dropped != got.Border1.Dropped ||
			ref.Border2.Passed != got.Border2.Passed || ref.Border2.Dropped != got.Border2.Dropped {
			t.Errorf("shards=%d: border verdicts diverge", shards)
		}
		if ref.Server.Sent != got.Server.Sent || ref.Server.SentBytes != got.Server.SentBytes {
			t.Errorf("shards=%d: server copy-back %d/%d, want %d/%d", shards,
				got.Server.Sent, got.Server.SentBytes, ref.Server.Sent, ref.Server.SentBytes)
		}
		if c := ref.Net.Link("campus"); c.Sent != got.Net.Link("campus").Sent {
			t.Errorf("shards=%d: campus link copy-back %d, want %d", shards,
				got.Net.Link("campus").Sent, c.Sent)
		}
		if !bytes.Equal(refTrace, gotTrace) {
			t.Errorf("shards=%d: canonicalized traces are not byte-identical (%d vs %d bytes)",
				shards, len(gotTrace), len(refTrace))
		}
	}
}

// TestShardedStaggeredStartsMatchSerial exercises the batched mode
// with a nonzero stagger (staggered starts are what spread flows
// across round-robin shards unevenly in time) and a wider jitter
// horizon interaction.
func TestShardedStaggeredStartsMatchSerial(t *testing.T) {
	t.Parallel()
	mk := func(shards int) MultiFlowConfig {
		cfg := multiFlowShardConfig(true, 8)
		cfg.Stagger = 53 * units.Millisecond
		cfg.Shards = shards
		return cfg
	}
	ref, refTrace := runMultiFlow(t, mk(0))
	for _, shards := range []int{2, 5, 8} {
		got, gotTrace := runMultiFlow(t, mk(shards))
		compareMultiFlow(t, fmt.Sprintf("staggered shards=%d", shards), ref, got, refTrace, gotTrace)
	}
}
