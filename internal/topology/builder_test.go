package topology

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/units"
)

// TestBuilderForwardReferences: declaration order is free — an element
// may target one declared later.
func TestBuilderForwardReferences(t *testing.T) {
	b := NewBuilder(1)
	b.Link("up", LinkSpec{Rate: units.Mbps, Delay: 0, To: "down"})
	b.Link("down", LinkSpec{Rate: units.Mbps, Delay: 0, To: "sink"})
	var sink packet.Sink
	b.Handler("sink", &sink)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net.Handler("up").Handle(&packet.Packet{Size: 100})
	net.Sim.Run()
	if sink.Count != 1 {
		t.Errorf("packet not delivered through forward-referenced chain: %d", sink.Count)
	}
}

func TestBuilderUnknownReference(t *testing.T) {
	b := NewBuilder(1)
	b.Link("l", LinkSpec{Rate: units.Mbps, To: "nowhere"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("want unknown-reference error, got %v", err)
	}
}

func TestBuilderDuplicateName(t *testing.T) {
	b := NewBuilder(1)
	var sink packet.Sink
	b.Handler("x", &sink)
	b.Link("x", LinkSpec{Rate: units.Mbps, To: "x"})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-name error, got %v", err)
	}
}

func TestBuilderRuleOnUnknownRouter(t *testing.T) {
	b := NewBuilder(1)
	b.Rule("ghost", "r", node.MatchAll{}, "ghost")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown router") {
		t.Errorf("want unknown-router error, got %v", err)
	}
}

// TestBuilderRouterPolicy: rules classify, unmatched traffic takes the
// default, and conditioning elements re-mark.
func TestBuilderRouterPolicy(t *testing.T) {
	b := NewBuilder(1)
	var matched, rest packet.Sink
	b.Handler("matched", &matched)
	b.Handler("rest", &rest)
	b.Policer("pol", 10*units.Mbps, 3000, packet.EF, "matched")
	b.Router("edge", "rest")
	b.Rule("edge", "video", node.FlowMatch(7), "pol")
	net := b.MustBuild()

	net.Handler("edge").Handle(&packet.Packet{Flow: 7, Size: 100})
	net.Handler("edge").Handle(&packet.Packet{Flow: 8, Size: 100})
	if matched.Count != 1 || rest.Count != 1 {
		t.Errorf("classification wrong: matched=%d rest=%d", matched.Count, rest.Count)
	}
	if matched.Last.DSCP != packet.EF {
		t.Errorf("policer did not re-mark: %v", matched.Last.DSCP)
	}
	if net.Policer("pol").Passed != 1 {
		t.Errorf("policer handle not shared: passed=%d", net.Policer("pol").Passed)
	}
}

// TestBuilderMultiClassLink: a DRR-scheduled link built declaratively
// shares a bottleneck by class.
func TestBuilderMultiClassLink(t *testing.T) {
	b := NewBuilder(1)
	var sink packet.Sink
	b.Handler("sink", &sink)
	b.Link("bottleneck", LinkSpec{
		Rate: units.Mbps, Delay: units.Millisecond,
		Sched: DRRSched(
			queue.ClassSpec{Name: "ef", Match: queue.MatchDSCP(packet.EF), Limit: 100},
			queue.ClassSpec{Name: "be", Limit: 100},
		),
		To: "sink",
	})
	net := b.MustBuild()
	in := net.Handler("bottleneck")
	for i := 0; i < 40; i++ {
		d := packet.BestEffort
		if i%2 == 0 {
			d = packet.EF
		}
		in.Handle(&packet.Packet{ID: uint64(i), Size: 1000, DSCP: d})
	}
	net.Sim.Run()
	if sink.Count != 40 {
		t.Fatalf("delivered %d of 40", sink.Count)
	}
	cs := net.Link("bottleneck").Sched.Classes()
	if len(cs) != 2 || cs[0].Name != "ef" || cs[0].Enqueued != 20 || cs[1].Enqueued != 20 {
		t.Errorf("per-class counters wrong: %+v", cs)
	}
}

// TestBuilderSourcesDeterministic: two identical builds produce
// identical traffic, and source handles are reachable by name.
func TestBuilderSourcesDeterministic(t *testing.T) {
	build := func() (int, int64) {
		b := NewBuilder(42)
		var sink packet.Sink
		b.Handler("sink", &sink)
		b.Link("l", LinkSpec{Rate: 10 * units.Mbps, Delay: units.Millisecond, To: "sink"})
		b.Source("p", SourceSpec{Kind: PoissonSource, Rate: 2 * units.Mbps, Flow: 5, To: "l"})
		b.Source("o", SourceSpec{Kind: OnOffSource, Rate: units.Mbps,
			MeanOn: 10 * units.Millisecond, MeanOff: 20 * units.Millisecond, Flow: 6, To: "l"})
		net := b.MustBuild()
		net.Sim.SetHorizon(units.FromSeconds(2))
		net.Sim.Run()
		if net.Poisson("p").Sent == 0 || net.OnOff("o").Sent == 0 {
			t.Fatal("sources idle")
		}
		return sink.Count, sink.Bytes
	}
	c1, b1 := build()
	c2, b2 := build()
	if c1 != c2 || b1 != b2 {
		t.Errorf("builds diverged: (%d,%d) vs (%d,%d)", c1, b1, c2, b2)
	}
}

func TestNetworkAccessorPanics(t *testing.T) {
	b := NewBuilder(1)
	var sink packet.Sink
	b.Handler("sink", &sink)
	net := b.MustBuild()
	for name, fn := range map[string]func(){
		"missing element": func() { net.Handler("ghost") },
		"kind mismatch":   func() { net.Link("sink") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestBuilderBatchedCBRSource pins the SourceSpec.Batch path: one
// batched declaration must be packet-for-packet identical to Batch
// separate CBR declarations in flow-id order, through a real built
// link.
func TestBuilderBatchedCBRSource(t *testing.T) {
	build := func(batched bool) (int, int64) {
		b := NewBuilder(7)
		var sink packet.Sink
		b.Handler("sink", &sink)
		b.Link("l", LinkSpec{Rate: 20 * units.Mbps, Delay: units.Millisecond, To: "sink"})
		if batched {
			b.Source("c", SourceSpec{Kind: CBRSource, Rate: units.Mbps, Size: 1000,
				Flow: 30, Batch: 3, Until: units.Second, To: "l"})
		} else {
			for i := 0; i < 3; i++ {
				b.Source(fmt.Sprintf("c%d", i), SourceSpec{Kind: CBRSource,
					Rate: units.Mbps, Size: 1000, Flow: 30 + packet.FlowID(i),
					Until: units.Second, To: "l"})
			}
		}
		net := b.MustBuild()
		net.Sim.SetHorizon(units.FromSeconds(2))
		net.Sim.Run()
		if batched && net.BatchedCBR("c").Sent == 0 {
			t.Fatal("batched source idle")
		}
		return sink.Count, sink.Bytes
	}
	uc, ub := build(false)
	bc, bb := build(true)
	if uc == 0 || uc != bc || ub != bb {
		t.Errorf("batched CBR diverged from separate sources: (%d,%d) vs (%d,%d)", uc, ub, bc, bb)
	}
}

// TestBuilderBatchRejectsRandomSources pins the gating: batching a
// source whose per-flow behaviour needs its own RNG fork is a Build
// error, not a silent approximation.
func TestBuilderBatchRejectsRandomSources(t *testing.T) {
	for _, kind := range []SourceKind{PoissonSource, OnOffSource} {
		b := NewBuilder(1)
		var sink packet.Sink
		b.Handler("sink", &sink)
		b.Source("s", SourceSpec{Kind: kind, Rate: units.Mbps, Flow: 9, Batch: 2,
			MeanOn: units.Millisecond, MeanOff: units.Millisecond, To: "sink"})
		if _, err := b.Build(); err == nil {
			t.Errorf("kind %d: batched random source built without error", kind)
		}
	}
}
