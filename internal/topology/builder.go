package topology

import (
	"fmt"

	"repro/internal/flowbatch"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tokenbucket"
	"repro/internal/traffic"
	"repro/internal/units"
)

// SchedulerSpec builds a scheduler for a link at Build time. Specs
// that need randomness (RED/RIO) fork the simulator's RNG when
// invoked, so the fork order is the declaration order of the links
// that use them — which keeps builder-made networks bit-identical to
// hand-wired ones.
type SchedulerSpec func(s *sim.Simulator) queue.Scheduler

// EFPriority is a strict-priority scheduler spec with EF high.
func EFPriority(highLimit, lowLimit int) SchedulerSpec {
	return func(*sim.Simulator) queue.Scheduler { return queue.NewEFPriority(highLimit, lowLimit) }
}

// PlainFIFO is a single drop-tail queue spec.
func PlainFIFO(limit int) SchedulerSpec {
	return func(*sim.Simulator) queue.Scheduler { return queue.NewSingleFIFO(limit) }
}

// DRRSched is a deficit-round-robin scheduler spec.
func DRRSched(classes ...queue.ClassSpec) SchedulerSpec {
	return func(*sim.Simulator) queue.Scheduler { return queue.NewDRR(classes...) }
}

// WFQSched is a weighted-fair-queueing scheduler spec.
func WFQSched(classes ...queue.ClassSpec) SchedulerSpec {
	return func(*sim.Simulator) queue.Scheduler { return queue.NewWFQ(classes...) }
}

// AFRIO is an AF-class RIO-over-best-effort scheduler spec; it forks
// the simulator RNG for the RED drop tests.
func AFRIO(in, out queue.REDConfig, beLimit int) SchedulerSpec {
	return func(s *sim.Simulator) queue.Scheduler {
		return queue.NewAFScheduler(in, out, s.RNG().Fork().Float64, beLimit)
	}
}

// LinkSpec declares a serializing link.
type LinkSpec struct {
	Rate  units.BitRate
	Delay units.Time
	Sched SchedulerSpec // nil = unbounded FIFO
	To    string
}

// SourceKind selects a background-traffic generator model.
type SourceKind int

// Source kinds.
const (
	PoissonSource SourceKind = iota
	CBRSource
	OnOffSource
)

// SourceSpec declares a background traffic source.
type SourceSpec struct {
	Kind SourceKind
	Rate units.BitRate // mean rate (Poisson/CBR) or peak rate (OnOff)
	Size int           // packet size; 0 = Ethernet MTU
	Flow packet.FlowID
	DSCP packet.DSCP

	MeanOn  units.Time // OnOff only
	MeanOff units.Time // OnOff only

	// Batch > 1 fans the source out as Batch phase-offset virtual
	// flows (ids Flow..Flow+Batch-1) driven by one timer — see
	// internal/flowbatch. Only deterministic kinds support batching:
	// declaring Batch on a Poisson or on-off source is a Build error,
	// because their per-flow RNG forks cannot be reproduced exactly by
	// a shared stream. Rate and Size are per virtual flow.
	Batch int
	// BatchPhase staggers consecutive virtual flows' starts (0 starts
	// them together, which is packet-for-packet identical to declaring
	// Batch separate CBR sources in flow-id order).
	BatchPhase units.Time

	Until units.Time // stop time; 0 = run to horizon
	To    string
}

type elemKind int

const (
	kindHandler elemKind = iota
	kindLink
	kindJitter
	kindLoss
	kindRouter
	kindPolicer
	kindShaper
	kindAFMarker
	kindDelayTap
	kindSource
)

type ruleDecl struct {
	name  string
	match node.Classifier
	to    string
}

type elem struct {
	kind elemKind
	name string
	to   string

	// declaration payloads (per kind)
	linkSpec   LinkSpec
	maxJitter  units.Time
	lossP      float64
	rate       units.BitRate
	depth      units.ByteSize
	mark       packet.DSCP
	queueLimit int
	cbs, ebs   units.ByteSize
	match      func(*packet.Packet) bool
	rules      []ruleDecl
	srcSpec    SourceSpec

	// built objects (exactly one per kind is non-nil after Build)
	handler packet.Handler
	link    *link.Link
	jitter  *link.Jitter
	loss    *link.Loss
	router  *node.Router
	policer *tokenbucket.Policer
	shaper  *tokenbucket.Shaper
	marker  *tokenbucket.AFMarker
	tap     *stats.DelayCollector
	poisson *traffic.Poisson
	cbr     *traffic.CBR
	onoff   *traffic.OnOff
	bcbr    *flowbatch.BatchedCBR
}

// entry returns the element's packet entry point.
func (e *elem) entry() packet.Handler {
	switch e.kind {
	case kindHandler:
		return e.handler
	case kindLink:
		return e.link
	case kindJitter:
		return e.jitter
	case kindLoss:
		return e.loss
	case kindRouter:
		return e.router
	case kindPolicer:
		return e.policer
	case kindShaper:
		return e.shaper
	case kindAFMarker:
		return e.marker
	case kindDelayTap:
		return e.tap
	}
	return nil
}

// Builder assembles a network graph declaratively: declare named
// nodes, links, conditioning elements, traffic sources and taps in any
// dataflow order (forward references are fine), then Build() wires the
// sim/link/node objects and hands back a Network of handles.
//
// Determinism contract: Build instantiates elements in declaration
// order (this fixes the RNG fork order of random schedulers), then
// resolves references, then starts traffic sources in declaration
// order (this fixes both their RNG fork order and the sequence numbers
// of their initial events). Two builders with the same declarations
// therefore produce bit-identical simulations — and a builder that
// declares elements in the same order a hand-wired constructor created
// them reproduces that constructor exactly.
type Builder struct {
	sim    *sim.Simulator
	pool   *packet.Pool
	trace  *ptrace.Recorder
	elems  []*elem
	byName map[string]*elem
	errs   []error
}

// NewBuilder returns a builder owning a fresh simulator seeded with
// seed and a fresh packet arena. The simulator's calendar width is
// density-adaptive.
func NewBuilder(seed uint64) *Builder {
	return NewBuilderWidth(seed, 0)
}

// NewBuilderWidth is NewBuilder with an explicit calendar-queue bucket
// width: a positive width pins the geometry and disables adaptation,
// <= 0 keeps the adaptive default. Width is a pure performance knob —
// the simulator fires events in the identical order at any width — so
// topologies plumb it through without touching determinism contracts.
func NewBuilderWidth(seed uint64, width units.Time) *Builder {
	return &Builder{sim: sim.NewWithBucketWidth(seed, width), pool: packet.NewPool(), byName: map[string]*elem{}}
}

// Sim exposes the simulator so endpoints (servers, clients) can be
// constructed against it before Build.
func (b *Builder) Sim() *sim.Simulator { return b.sim }

// Pool exposes the builder's packet arena so endpoints built outside
// the builder (servers, clients, TCP endpoints) can share it.
func (b *Builder) Pool() *packet.Pool { return b.pool }

// UsePool replaces the builder's packet arena — the experiment runner
// hands each worker a persistent arena so consecutive jobs on the
// same worker recycle each other's packets. Must be called before
// Build and never with an arena owned by another live simulation.
func (b *Builder) UsePool(p *packet.Pool) {
	if p != nil {
		b.pool = p
	}
}

// UseTrace attaches a packet-trace recorder: Build wires every
// traceable element's Tap to it, with the element's declared name as
// the hop. The recorder's clock is set to the builder's simulator.
// A nil recorder leaves tracing disabled (every Tap stays nil, so the
// datapath keeps its allocation-free disabled path).
func (b *Builder) UseTrace(rec *ptrace.Recorder) {
	b.trace = rec
	if rec != nil {
		rec.SetClock(b.sim)
	}
}

func (b *Builder) add(e *elem) *elem {
	if e.name == "" {
		b.errs = append(b.errs, fmt.Errorf("topology: element with empty name (kind %d)", e.kind))
		return e
	}
	if _, dup := b.byName[e.name]; dup {
		b.errs = append(b.errs, fmt.Errorf("topology: duplicate element %q", e.name))
		return e
	}
	b.elems = append(b.elems, e)
	b.byName[e.name] = e
	return e
}

// Handler registers an externally built endpoint (a client, a TCP
// receiver adapter, a sink) under a name so links and rules can target
// it.
func (b *Builder) Handler(name string, h packet.Handler) {
	if h == nil {
		b.errs = append(b.errs, fmt.Errorf("topology: nil handler %q", name))
		return
	}
	b.add(&elem{kind: kindHandler, name: name, handler: h})
}

// Link declares a serializing link.
func (b *Builder) Link(name string, spec LinkSpec) {
	b.add(&elem{kind: kindLink, name: name, to: spec.To, linkSpec: spec})
}

// FrameRelayLink declares a link emulating a Frame Relay PVC (CIR with
// Be=0 behaves as a constant-rate pipe at CIR).
func (b *Builder) FrameRelayLink(name string, cfg link.FrameRelayConfig, delay units.Time, sched SchedulerSpec, to string) {
	b.Link(name, LinkSpec{Rate: cfg.CIR, Delay: delay, Sched: sched, To: to})
}

// Jitter declares an order-preserving uniform-jitter element.
func (b *Builder) Jitter(name string, max units.Time, to string) {
	b.add(&elem{kind: kindJitter, name: name, to: to, maxJitter: max})
}

// Loss declares an independent random-loss element.
func (b *Builder) Loss(name string, p float64, to string) {
	b.add(&elem{kind: kindLoss, name: name, to: to, lossP: p})
}

// Router declares a classifying router whose unmatched traffic goes to
// defaultTo. Attach policy with Rule.
func (b *Builder) Router(name, defaultTo string) {
	b.add(&elem{kind: kindRouter, name: name, to: defaultTo})
}

// Rule appends a policy rule to a declared router: packets matching m
// are conditioned by the element named to. Rules apply in declaration
// order, first match wins.
func (b *Builder) Rule(router, rule string, m node.Classifier, to string) {
	e, ok := b.byName[router]
	if !ok || e.kind != kindRouter {
		b.errs = append(b.errs, fmt.Errorf("topology: Rule %q on unknown router %q", rule, router))
		return
	}
	e.rules = append(e.rules, ruleDecl{name: rule, match: m, to: to})
}

// Policer declares a dropping token-bucket policer that re-marks
// conformant traffic with mark.
func (b *Builder) Policer(name string, rate units.BitRate, depth units.ByteSize, mark packet.DSCP, to string) {
	b.add(&elem{kind: kindPolicer, name: name, to: to, rate: rate, depth: depth, mark: mark})
}

// Shaper declares a delaying token-bucket shaper. queueLimit bounds
// its waiting room (0 keeps the shaper's generous default).
func (b *Builder) Shaper(name string, rate units.BitRate, depth units.ByteSize, mark packet.DSCP, queueLimit int, to string) {
	b.add(&elem{kind: kindShaper, name: name, to: to, rate: rate, depth: depth, mark: mark, queueLimit: queueLimit})
}

// AFMarkerSR declares an srTCM three-color marker (green/yellow/red →
// AF11/12/13).
func (b *Builder) AFMarkerSR(name string, cir units.BitRate, cbs, ebs units.ByteSize, to string) {
	b.add(&elem{kind: kindAFMarker, name: name, to: to, rate: cir, cbs: cbs, ebs: ebs})
}

// DelayTap declares a pass-through delay/jitter collector. A nil match
// measures every packet.
func (b *Builder) DelayTap(name string, match func(*packet.Packet) bool, to string) {
	b.add(&elem{kind: kindDelayTap, name: name, to: to, match: match})
}

// Source declares a background traffic source. Sources are started by
// Build, in declaration order.
func (b *Builder) Source(name string, spec SourceSpec) {
	b.add(&elem{kind: kindSource, name: name, to: spec.To, srcSpec: spec})
}

// resolve maps a target name to its entry handler.
func (b *Builder) resolve(from, target string) (packet.Handler, error) {
	e, ok := b.byName[target]
	if !ok {
		return nil, fmt.Errorf("topology: %q references unknown element %q", from, target)
	}
	h := e.entry()
	if h == nil {
		return nil, fmt.Errorf("topology: %q references %q before it was built", from, target)
	}
	return h, nil
}

// Build instantiates every declared element (declaration order), wires
// all references, and starts the traffic sources (declaration order).
// See the Builder doc comment for the determinism contract.
func (b *Builder) Build() (*Network, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	s := b.sim

	// Phase 1: instantiate. Schedulers that need randomness fork the
	// RNG here, in declaration order. No events are scheduled yet.
	for _, e := range b.elems {
		switch e.kind {
		case kindHandler:
			// already built by the caller
		case kindLink:
			sched := e.linkSpec.Sched
			if sched == nil {
				sched = PlainFIFO(0)
			}
			e.link = link.New(s, e.linkSpec.Rate, e.linkSpec.Delay, sched(s), nil)
			e.link.Pool = b.pool
		case kindJitter:
			e.jitter = &link.Jitter{Sim: s, Max: e.maxJitter}
		case kindLoss:
			e.loss = &link.Loss{Sim: s, P: e.lossP, Pool: b.pool}
		case kindRouter:
			e.router = node.NewRouter(e.name, nil)
		case kindPolicer:
			e.policer = tokenbucket.NewPolicer(s, e.rate, e.depth, e.mark, nil)
			e.policer.Pool = b.pool
		case kindShaper:
			e.shaper = tokenbucket.NewShaper(s, e.rate, e.depth, e.mark, nil)
			e.shaper.Pool = b.pool
			if e.queueLimit > 0 {
				e.shaper.SetQueueLimit(e.queueLimit)
			}
		case kindAFMarker:
			e.marker = tokenbucket.NewAFMarkerSR(s, tokenbucket.NewSRTCM(e.rate, e.cbs, e.ebs), nil)
		case kindDelayTap:
			e.tap = &stats.DelayCollector{Clock: s, Match: e.match}
		case kindSource:
			sp := e.srcSpec
			if sp.Batch > 1 {
				if sp.Kind != CBRSource {
					return nil, fmt.Errorf("topology: source %q: only CBR sources support batching (kind %d is random per flow)", e.name, sp.Kind)
				}
				e.bcbr = &flowbatch.BatchedCBR{Sim: s, Rate: sp.Rate, Size: sp.Size,
					BaseFlow: sp.Flow, DSCP: sp.DSCP, N: sp.Batch, Phase: sp.BatchPhase,
					Until: sp.Until, Pool: b.pool}
				continue
			}
			switch sp.Kind {
			case PoissonSource:
				e.poisson = &traffic.Poisson{Sim: s, Rate: sp.Rate, Size: sp.Size, Flow: sp.Flow, DSCP: sp.DSCP, Until: sp.Until, Pool: b.pool}
			case CBRSource:
				e.cbr = &traffic.CBR{Sim: s, Rate: sp.Rate, Size: sp.Size, Flow: sp.Flow, DSCP: sp.DSCP, Until: sp.Until, Pool: b.pool}
			case OnOffSource:
				e.onoff = &traffic.OnOff{Sim: s, PeakRate: sp.Rate, Size: sp.Size, Flow: sp.Flow, DSCP: sp.DSCP, MeanOn: sp.MeanOn, MeanOff: sp.MeanOff, Until: sp.Until, Pool: b.pool}
			default:
				return nil, fmt.Errorf("topology: source %q has unknown kind %d", e.name, sp.Kind)
			}
		}
	}

	// Phase 1.5: attach trace taps. Pure observation — no events are
	// scheduled and no RNG is touched, so a traced build remains
	// bit-identical to an untraced one.
	if b.trace != nil {
		for _, e := range b.elems {
			hop := b.trace.Hop(e.name)
			switch e.kind {
			case kindLink:
				e.link.Tap, e.link.Hop = b.trace, hop
				if t, ok := e.link.Sched.(queue.Tapped); ok {
					t.SetTap(b.trace, hop)
				}
			case kindLoss:
				e.loss.Tap, e.loss.Hop = b.trace, hop
			case kindPolicer:
				e.policer.Tap, e.policer.Hop = b.trace, hop
			case kindShaper:
				e.shaper.Tap, e.shaper.Hop = b.trace, hop
			case kindAFMarker:
				e.marker.Tap, e.marker.Hop = b.trace, hop
			}
		}
	}

	// Phase 2: wire references (forward references resolve here).
	for _, e := range b.elems {
		switch e.kind {
		case kindHandler:
			// terminals have no next hop
		case kindSource:
			next, err := b.resolve(e.name, e.to)
			if err != nil {
				return nil, err
			}
			switch {
			case e.poisson != nil:
				e.poisson.Next = next
			case e.cbr != nil:
				e.cbr.Next = next
			case e.onoff != nil:
				e.onoff.Next = next
			case e.bcbr != nil:
				e.bcbr.Next = next
			}
		case kindRouter:
			next, err := b.resolve(e.name, e.to)
			if err != nil {
				return nil, err
			}
			e.router.SetDefault(next)
			for _, r := range e.rules {
				action, err := b.resolve(e.name+"/"+r.name, r.to)
				if err != nil {
					return nil, err
				}
				e.router.AddRule(r.name, r.match, action)
			}
		default:
			next, err := b.resolve(e.name, e.to)
			if err != nil {
				return nil, err
			}
			switch e.kind {
			case kindLink:
				e.link.Next = next
			case kindJitter:
				e.jitter.Next = next
			case kindLoss:
				e.loss.Next = next
			case kindPolicer:
				e.policer.SetNext(next)
			case kindShaper:
				e.shaper.SetNext(next)
			case kindAFMarker:
				e.marker.SetNext(next)
			case kindDelayTap:
				e.tap.Next = next
			}
		}
	}

	// Phase 3: start sources in declaration order — each fork of the
	// RNG and each initial event keeps the declared sequence.
	for _, e := range b.elems {
		if e.kind != kindSource {
			continue
		}
		switch {
		case e.poisson != nil:
			e.poisson.Start()
		case e.cbr != nil:
			e.cbr.Start()
		case e.onoff != nil:
			e.onoff.Start()
		case e.bcbr != nil:
			e.bcbr.Start()
		}
	}

	return &Network{Sim: s, Pool: b.pool, Trace: b.trace, byName: b.byName}, nil
}

// MustBuild is Build for preset code where a wiring error is a bug.
func (b *Builder) MustBuild() *Network {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}

// Network is a built topology: the simulator plus every declared
// element, retrievable by name. The typed accessors panic on a missing
// name or kind mismatch — a wiring bug worth failing loudly on.
type Network struct {
	Sim *sim.Simulator
	// Pool is the simulation's packet arena: every element the builder
	// created releases and allocates through it, and externally built
	// endpoints should too.
	Pool *packet.Pool
	// Trace is the packet-trace recorder every built element taps
	// into, or nil when the run is untraced. Presets wire their
	// externally built endpoints (clients, TCP senders) to it too.
	Trace  *ptrace.Recorder
	byName map[string]*elem
}

func (n *Network) get(name string) *elem {
	e, ok := n.byName[name]
	if !ok {
		panic(fmt.Sprintf("topology: no element %q", name))
	}
	return e
}

// Handler returns the packet entry point of the named element.
func (n *Network) Handler(name string) packet.Handler {
	h := n.get(name).entry()
	if h == nil {
		panic(fmt.Sprintf("topology: element %q has no entry point", name))
	}
	return h
}

// Link returns the named link.
func (n *Network) Link(name string) *link.Link {
	e := n.get(name)
	if e.link == nil {
		panic(fmt.Sprintf("topology: %q is not a link", name))
	}
	return e.link
}

// Router returns the named router.
func (n *Network) Router(name string) *node.Router {
	e := n.get(name)
	if e.router == nil {
		panic(fmt.Sprintf("topology: %q is not a router", name))
	}
	return e.router
}

// Policer returns the named policer.
func (n *Network) Policer(name string) *tokenbucket.Policer {
	e := n.get(name)
	if e.policer == nil {
		panic(fmt.Sprintf("topology: %q is not a policer", name))
	}
	return e.policer
}

// Shaper returns the named shaper.
func (n *Network) Shaper(name string) *tokenbucket.Shaper {
	e := n.get(name)
	if e.shaper == nil {
		panic(fmt.Sprintf("topology: %q is not a shaper", name))
	}
	return e.shaper
}

// AFMarker returns the named three-color marker.
func (n *Network) AFMarker(name string) *tokenbucket.AFMarker {
	e := n.get(name)
	if e.marker == nil {
		panic(fmt.Sprintf("topology: %q is not an AF marker", name))
	}
	return e.marker
}

// DelayTap returns the named delay collector.
func (n *Network) DelayTap(name string) *stats.DelayCollector {
	e := n.get(name)
	if e.tap == nil {
		panic(fmt.Sprintf("topology: %q is not a delay tap", name))
	}
	return e.tap
}

// Poisson returns the named Poisson source.
func (n *Network) Poisson(name string) *traffic.Poisson {
	e := n.get(name)
	if e.poisson == nil {
		panic(fmt.Sprintf("topology: %q is not a Poisson source", name))
	}
	return e.poisson
}

// OnOff returns the named on-off source.
func (n *Network) OnOff(name string) *traffic.OnOff {
	e := n.get(name)
	if e.onoff == nil {
		panic(fmt.Sprintf("topology: %q is not an on-off source", name))
	}
	return e.onoff
}

// CBR returns the named CBR source.
func (n *Network) CBR(name string) *traffic.CBR {
	e := n.get(name)
	if e.cbr == nil {
		panic(fmt.Sprintf("topology: %q is not a CBR source", name))
	}
	return e.cbr
}

// BatchedCBR returns the named batched CBR source.
func (n *Network) BatchedCBR(name string) *flowbatch.BatchedCBR {
	e := n.get(name)
	if e.bcbr == nil {
		panic(fmt.Sprintf("topology: %q is not a batched CBR source", name))
	}
	return e.bcbr
}
