package topology

import (
	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/units"
	"repro/internal/video"
)

// AFConfig parameterizes the Assured Forwarding extension experiment.
// The paper ran preliminary AF tests but deferred them because "the
// results were heavily dependent on the level of cross traffic and its
// impact on the performance given to marked packets" (§2.1) — which is
// exactly the sensitivity this topology exposes: an srTCM colors the
// video at the edge, a congested bottleneck hop runs RIO, and the
// AFLoad knob controls how much *other* AF traffic competes inside the
// class.
type AFConfig struct {
	Seed uint64
	Enc  *video.Encoding

	CIR units.BitRate  // committed rate of the video's srTCM profile
	CBS units.ByteSize // committed burst; default 3000
	EBS units.ByteSize // excess burst; default 6000

	BottleneckRate units.BitRate // default 5 Mbps
	AFLoad         float64       // competing in-class AF load fraction; default 0.3
	BELoad         float64       // best-effort load fraction; default 0.4
}

func (c AFConfig) withDefaults() AFConfig {
	if c.CBS == 0 {
		c.CBS = 3000
	}
	if c.EBS == 0 {
		c.EBS = 6000
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 5 * units.Mbps
	}
	if c.AFLoad == 0 {
		c.AFLoad = 0.3
	}
	if c.BELoad == 0 {
		c.BELoad = 0.4
	}
	return c
}

// AF is a built Assured Forwarding experiment.
type AF struct {
	Sim        *sim.Simulator
	Net        *Network
	Server     *server.Paced
	Client     *client.UDP
	Marker     *tokenbucket.AFMarker
	Bottleneck *link.Link
	Sched      *queue.AFScheduler
}

// BuildAF declares on the Builder: paced server → srTCM marker
// (green/yellow/red → AF11/12/13) → bottleneck link with a RIO AF
// queue and competing AF-marked and best-effort cross traffic → client
// access → client. Unlike EF, nothing is dropped at the edge:
// conformance only changes the drop precedence inside the network.
func BuildAF(cfg AFConfig) *AF {
	cfg = cfg.withDefaults()
	b := NewBuilder(cfg.Seed)
	a := &AF{Sim: b.Sim()}

	a.Client = client.NewUDP(b.Sim(), cfg.Enc.Clip.FrameCount())
	a.Client.Pool = b.Pool()
	a.Client.Tolerance = client.SliceTolerance
	b.Handler("client", a.Client)
	b.Link("access", LinkSpec{Rate: 10 * units.Mbps, Delay: units.Millisecond,
		Sched: PlainFIFO(0), To: "client"})

	// Bottleneck with the AF PHB: in-profile (green) protected by the
	// permissive RIO profile, yellow/red exposed to the congestion.
	in := queue.REDConfig{MinTh: 40, MaxTh: 60, MaxP: 0.02, Wq: 0.002, MaxSize: 80}
	out := queue.REDConfig{MinTh: 8, MaxTh: 25, MaxP: 0.3, Wq: 0.002, MaxSize: 80}
	b.Link("bottleneck", LinkSpec{Rate: cfg.BottleneckRate, Delay: 5 * units.Millisecond,
		Sched: AFRIO(in, out, 100), To: "access"})

	// Competing traffic: an AF-marked aggregate (alternating colors —
	// someone else's partially conformant traffic) and best effort.
	if cfg.AFLoad > 0 {
		b.Source("af-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.AFLoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 900, DSCP: packet.AF12, To: "bottleneck",
		})
	}
	if cfg.BELoad > 0 {
		b.Source("be-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.BELoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 901, DSCP: packet.BestEffort, To: "bottleneck",
		})
	}

	// Edge: classify the video flow into the srTCM marker.
	b.AFMarkerSR("marker", cfg.CIR, cfg.CBS, cfg.EBS, "bottleneck")
	b.Router("af-edge", "bottleneck")
	b.Rule("af-edge", "video-af", node.FlowMatch(VideoFlow), "marker")

	b.Jitter("jit", 3*units.Millisecond, "af-edge")
	b.Link("campus", LinkSpec{Rate: 100 * units.Mbps, Delay: 500 * units.Microsecond,
		Sched: PlainFIFO(0), To: "jit"})

	net := b.MustBuild()
	a.Net = net
	a.Marker = net.AFMarker("marker")
	a.Bottleneck = net.Link("bottleneck")
	a.Sched = a.Bottleneck.Sched.(*queue.AFScheduler)

	a.Server = &server.Paced{Sim: a.Sim, Enc: cfg.Enc, Flow: VideoFlow, Next: net.Handler("campus"), Pool: net.Pool}
	return a
}

// Run executes the experiment.
func (a *AF) Run() {
	a.Server.Start()
	horizon := units.FromSeconds(a.Server.Enc.Clip.DurationSeconds() + 30)
	a.Sim.SetHorizon(horizon)
	a.Sim.Run()
	a.Client.Finish()
}
