package topology

import (
	"repro/internal/client"
	"repro/internal/link"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// AFConfig parameterizes the Assured Forwarding extension experiment.
// The paper ran preliminary AF tests but deferred them because "the
// results were heavily dependent on the level of cross traffic and its
// impact on the performance given to marked packets" (§2.1) — which is
// exactly the sensitivity this topology exposes: an srTCM colors the
// video at the edge, a congested bottleneck hop runs RIO, and the
// AFLoad knob controls how much *other* AF traffic competes inside the
// class.
type AFConfig struct {
	Seed uint64
	Enc  *video.Encoding

	CIR units.BitRate  // committed rate of the video's srTCM profile
	CBS units.ByteSize // committed burst; default 3000
	EBS units.ByteSize // excess burst; default 6000

	BottleneckRate units.BitRate // default 5 Mbps
	AFLoad         float64       // competing in-class AF load fraction; default 0.3
	BELoad         float64       // best-effort load fraction; default 0.4
}

func (c AFConfig) withDefaults() AFConfig {
	if c.CBS == 0 {
		c.CBS = 3000
	}
	if c.EBS == 0 {
		c.EBS = 6000
	}
	if c.BottleneckRate == 0 {
		c.BottleneckRate = 5 * units.Mbps
	}
	if c.AFLoad == 0 {
		c.AFLoad = 0.3
	}
	if c.BELoad == 0 {
		c.BELoad = 0.4
	}
	return c
}

// AF is a built Assured Forwarding experiment.
type AF struct {
	Sim        *sim.Simulator
	Server     *server.Paced
	Client     *client.UDP
	Marker     *tokenbucket.AFMarker
	Bottleneck *link.Link
	Sched      *queue.AFScheduler
}

// BuildAF wires: paced server → srTCM marker (green/yellow/red →
// AF11/12/13) → bottleneck link with a RIO AF queue and competing
// AF-marked and best-effort cross traffic → client access → client.
// Unlike EF, nothing is dropped at the edge: conformance only changes
// the drop precedence inside the network.
func BuildAF(cfg AFConfig) *AF {
	cfg = cfg.withDefaults()
	s := sim.New(cfg.Seed)
	a := &AF{Sim: s}

	a.Client = client.NewUDP(s, cfg.Enc.Clip.FrameCount())
	a.Client.Tolerance = client.SliceTolerance
	access := link.New(s, 10*units.Mbps, units.Millisecond, queue.NewSingleFIFO(0), a.Client)

	// Bottleneck with the AF PHB: in-profile (green) protected by the
	// permissive RIO profile, yellow/red exposed to the congestion.
	rng := s.RNG().Fork()
	in := queue.REDConfig{MinTh: 40, MaxTh: 60, MaxP: 0.02, Wq: 0.002, MaxSize: 80}
	out := queue.REDConfig{MinTh: 8, MaxTh: 25, MaxP: 0.3, Wq: 0.002, MaxSize: 80}
	a.Sched = queue.NewAFScheduler(in, out, rng.Float64, 100)
	a.Bottleneck = link.New(s, cfg.BottleneckRate, 5*units.Millisecond, a.Sched, access)

	// Competing traffic: an AF-marked aggregate (alternating colors —
	// someone else's partially conformant traffic) and best effort.
	if cfg.AFLoad > 0 {
		af := &traffic.Poisson{
			Sim: s, Rate: units.BitRate(cfg.AFLoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 900, DSCP: packet.AF12, Next: a.Bottleneck,
		}
		af.Start()
	}
	if cfg.BELoad > 0 {
		be := &traffic.Poisson{
			Sim: s, Rate: units.BitRate(cfg.BELoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: 901, DSCP: packet.BestEffort, Next: a.Bottleneck,
		}
		be.Start()
	}

	// Edge: classify the video flow into the srTCM marker.
	srtcm := tokenbucket.NewSRTCM(cfg.CIR, cfg.CBS, cfg.EBS)
	a.Marker = tokenbucket.NewAFMarkerSR(s, srtcm, a.Bottleneck)
	edge := node.NewRouter("af-edge", a.Bottleneck)
	edge.AddRule("video-af", node.FlowMatch(VideoFlow), a.Marker)

	jit := &link.Jitter{Sim: s, Max: 3 * units.Millisecond, Next: edge}
	campus := link.New(s, 100*units.Mbps, 500*units.Microsecond, queue.NewSingleFIFO(0), jit)

	a.Server = &server.Paced{Sim: s, Enc: cfg.Enc, Flow: VideoFlow, Next: campus}
	return a
}

// Run executes the experiment.
func (a *AF) Run() {
	a.Server.Start()
	horizon := units.FromSeconds(a.Server.Enc.Clip.DurationSeconds() + 30)
	a.Sim.SetHorizon(horizon)
	a.Sim.Run()
	a.Client.Finish()
}
