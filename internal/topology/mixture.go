package topology

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/flowbatch"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/server"
	"repro/internal/tokenbucket"
	"repro/internal/units"
	"repro/internal/video"
)

// Mixture builds: the N-flow topology generalized from one homogeneous
// population to K equivalence classes — "100k Lost-clip viewers plus
// 20k CBR-like elephants" as one run. Each class fans one cached
// emission schedule out as its own phase-offset virtual-flow set with
// its own policing profile; the classes' arrival sequences interleave
// in exact global (time, flow) order inside flowbatch.BatchedMixture,
// so the batched/unbatched and sharded/serial differential harnesses
// extend to mixtures unchanged.
//
// Two receive-side modes:
//
//   - Exact (default): one client.UDP per flow behind the demux, as in
//     the homogeneous topology. O(N) memory — for equivalence tests and
//     small populations.
//   - Aggregated (MultiFlowConfig.AggregateStats): one client.Aggregate
//     per class behind an O(1) flow→class demux. Streaming moments and
//     P² delay sketches instead of frame traces: memory and assembly
//     cost O(K), which is what lets a fleet sweep reach six-figure flow
//     counts with ~flat bytes per flow.

// FlowClass declares one equivalence class of a mixture population.
type FlowClass struct {
	Name string          // stats label; default "classK"
	Enc  *video.Encoding // class clip + encoding (use the cached encodings)
	N    int             // virtual flows in this class

	TokenRate units.BitRate  // per-flow EF policing rate
	Depth     units.ByteSize // per-flow burst depth; default cfg.Depth

	// Truncate caps each flow's emission schedule at this offset from
	// the flow's start (0 streams the whole clip). Batched builds only:
	// an unbatched server.Paced always plays the full clip, so a
	// truncated unbatched build would break the equivalence contract.
	Truncate units.Time

	Phase   units.Time // class start offset from the run's start
	Stagger units.Time // intra-class start stagger; default cfg.Stagger
}

// classDemux routes delivered packets to their class aggregate in O(1):
// video flows carry class-major indices off base, anything else (cross
// traffic) is absorbed by the sink.
type classDemux struct {
	base    packet.FlowID
	classOf []int32
	aggs    []*client.Aggregate
	sink    packet.Handler
}

// Handle implements packet.Handler.
func (d *classDemux) Handle(p *packet.Packet) {
	i := int64(p.Flow - d.base)
	if i < 0 || i >= int64(len(d.classOf)) {
		d.sink.Handle(p)
		return
	}
	d.aggs[d.classOf[i]].Handle(p)
}

// buildMixtureMultiFlow is BuildMultiFlow for a Classes config: the
// same bottleneck/demux/cross-traffic graph, with the homogeneous
// population replaced by a class mixture and — under AggregateStats —
// the per-flow receivers replaced by per-class accumulators.
func buildMixtureMultiFlow(cfg MultiFlowConfig) *MultiFlow {
	chain := flowbatch.ChainSpec{
		AccessRate: accessRate, AccessDelay: accessDelay, JitterMax: accessJitterMax,
	}
	k := len(cfg.Classes)
	classes := make([]flowbatch.MixtureClass, k)
	names := make([]string, k)
	total := 0
	for ci, fc := range cfg.Classes {
		if fc.Enc == nil || fc.N <= 0 {
			panic(fmt.Sprintf("topology: mixture class %d needs Enc and N > 0", ci))
		}
		if fc.Truncate > 0 && !cfg.Batch {
			panic(fmt.Sprintf("topology: mixture class %d: Truncate requires Batch (unbatched servers play the full clip)", ci))
		}
		stagger := fc.Stagger
		if stagger == 0 {
			stagger = cfg.Stagger
		}
		sched := flowbatch.TruncateSchedule(flowbatch.CachedPacedSchedule(fc.Enc), fc.Truncate)
		classes[ci] = flowbatch.MixtureClass{
			Sched: sched, N: fc.N, Phase: fc.Phase, Offset: stagger, Chain: chain,
		}
		names[ci] = fc.Name
		if names[ci] == "" {
			names[ci] = fmt.Sprintf("class%d", ci)
		}
		total += fc.N
	}

	// Class-major flow layout and per-flow start/encoding tables (the
	// unbatched and sharded paths index these).
	classOf := make([]int32, total)
	starts := make([]units.Time, total)
	encOf := make([]*video.Encoding, total)
	var horizon units.Time
	g := 0
	for ci := range classes {
		c := &classes[ci]
		span := units.Time(0)
		if n := len(c.Sched.Entries); n > 0 {
			span = c.Sched.Entries[n-1].At
		}
		// +5 s drains in-flight delivery after the last emission (access
		// chain + jitter + bottleneck queue + propagation are all
		// millisecond-scale; the homogeneous build's 30 s tail would be
		// paid in cross-traffic events at every point of a fleet sweep).
		end := c.Phase + units.Time(int64(c.N))*c.Offset + span + units.FromSeconds(5)
		if end > horizon {
			horizon = end
		}
		for j := 0; j < c.N; j++ {
			classOf[g] = int32(ci)
			starts[g] = c.Phase + units.Time(int64(j))*c.Offset
			encOf[g] = cfg.Classes[ci].Enc
			g++
		}
	}

	b := NewBuilderWidth(cfg.Seed, cfg.BucketWidth)
	b.UsePool(cfg.Pool)
	b.UseTrace(cfg.Trace)
	m := &MultiFlow{Sim: b.Sim(), n: total, stagger: cfg.Stagger,
		shards: cfg.Shards, trace: cfg.Trace, ClassNames: names,
		classOf: classOf, starts: starts, encOf: encOf, horizon: horizon}

	// Receive side.
	sink := packet.Sink{Pool: b.Pool()}
	b.Handler("sink", &sink)
	if cfg.AggregateStats {
		m.Aggregates = make([]*client.Aggregate, k)
		for ci := range m.Aggregates {
			agg := client.NewAggregate(b.Sim())
			agg.Pool = b.Pool()
			if cfg.Trace != nil {
				agg.Tap, agg.Hop = cfg.Trace, cfg.Trace.Hop("agg-"+names[ci])
			}
			m.Aggregates[ci] = agg
		}
		b.Handler("demux", &classDemux{
			base: VideoFlow, classOf: classOf, aggs: m.Aggregates, sink: &sink,
		})
	} else {
		b.Router("demux", "sink")
		for i := 0; i < total; i++ {
			cl := client.NewUDP(b.Sim(), encOf[i].Clip.FrameCount())
			cl.Pool = b.Pool()
			cl.Tolerance = client.SliceTolerance
			m.Clients = append(m.Clients, cl)
			name := fmt.Sprintf("client%d", i)
			if cfg.Trace != nil {
				cl.Tap, cl.Hop = cfg.Trace, cfg.Trace.Hop(name)
			}
			b.Handler(name, cl)
			b.Rule("demux", name, node.FlowMatch(flowID(i)), name)
		}
	}

	b.Link("bottleneck", LinkSpec{
		Rate: cfg.BottleneckRate, Delay: 5 * units.Millisecond,
		Sched: cfg.Sched.spec(400), To: "demux",
	})

	// Send side: per-flow EF policers, constructed directly rather than
	// through the builder's name map — at six-figure flow counts the
	// O(N) string-keyed declarations dominate build time, and policers
	// consume no RNG, so direct construction preserves bit-identity
	// with a builder declaration. Their next hop (the bottleneck) is
	// wired after Build. Unbatched builds still declare the per-flow
	// jitter + access-hub chains by name so the jitter targets resolve.
	// The policers live in one contiguous slice (with their buckets
	// embedded) — class-major flow order means a burst of
	// near-simultaneous arrivals from neighbouring flows hits adjacent
	// cache lines, which at 200k flows is the difference between a
	// policer check that costs a cache miss and one that doesn't.
	m.Policers = make([]*tokenbucket.Policer, total)
	pols := make([]tokenbucket.Policer, total)
	for i := 0; i < total; i++ {
		fc := &cfg.Classes[classOf[i]]
		depth := fc.Depth
		if depth == 0 {
			depth = cfg.Depth
		}
		pol := &pols[i]
		pol.Init(b.Sim(), fc.TokenRate, depth, packet.EF, nil)
		pol.Pool = b.Pool()
		if cfg.Trace != nil {
			pol.Tap, pol.Hop = cfg.Trace, cfg.Trace.Hop(fmt.Sprintf("policer%d", i))
		}
		m.Policers[i] = pol
		if cfg.Batch {
			continue
		}
		jit := fmt.Sprintf("jit%d", i)
		hub := fmt.Sprintf("hub%d", i)
		b.Handler(fmt.Sprintf("policer%d", i), pol)
		b.Jitter(jit, accessJitterMax, fmt.Sprintf("policer%d", i))
		b.Link(hub, LinkSpec{Rate: accessRate, Delay: accessDelay,
			Sched: PlainFIFO(0), To: jit})
	}

	// Competing aggregates at the bottleneck (declared last, as in the
	// homogeneous build, so the Poisson RNG forks keep their order).
	// Their flow ids sit just past the video range — the homogeneous
	// build's fixed 900/901 would collide with video flows once a
	// mixture passes a few hundred flows and leak cross traffic into a
	// class aggregate.
	crossFlow := VideoFlow + packet.FlowID(total)
	if cfg.AFLoad > 0 {
		b.Source("af-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.AFLoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: crossFlow, DSCP: packet.AF12, To: "bottleneck",
		})
	}
	if cfg.BELoad > 0 {
		b.Source("be-cross", SourceSpec{
			Kind: PoissonSource, Rate: units.BitRate(cfg.BELoad * float64(cfg.BottleneckRate)),
			Size: units.EthernetMTU, Flow: crossFlow + 1, DSCP: packet.BestEffort, To: "bottleneck",
		})
	}

	net := b.MustBuild()
	m.Net = net
	m.Bottleneck = net.Link("bottleneck")
	bottleneck := net.Handler("bottleneck")
	for _, pol := range m.Policers {
		pol.SetNext(bottleneck)
	}

	if cfg.Batch {
		nexts := make([]packet.Handler, total)
		for i := range nexts {
			nexts[i] = m.Policers[i]
		}
		m.Mixture = &flowbatch.BatchedMixture{
			Sim: m.Sim, Classes: classes, BaseFlow: VideoFlow,
			Next: nexts, Pool: net.Pool,
		}
		if cfg.Trace != nil {
			m.Mixture.Tap, m.Mixture.Hop = cfg.Trace, cfg.Trace.Hop("vflows")
		}
	} else {
		for i := 0; i < total; i++ {
			m.Servers = append(m.Servers, &server.Paced{
				Sim: m.Sim, Enc: encOf[i], Flow: flowID(i),
				Next: net.Handler(fmt.Sprintf("hub%d", i)),
				Pool: net.Pool,
			})
		}
	}
	return m
}

// runShardedMixture executes a batched mixture run on the fan-out
// pipeline of shard.go: per-class base walks feed per-flow shifted
// arrival streams, one sequencer draws the jitter of every class in
// exact global (time, flow) order, and the border replays the merged
// deliveries — bit-identical to the serial mixture run at any shard
// count (the mixture shardeq tests pin this).
func (m *MultiFlow) runShardedMixture(shards int, horizon units.Time) ShardStats {
	mix := m.Mixture
	mix.InitReplay()
	n := mix.TotalFlows()
	s := shards
	if s > n {
		s = n
	}

	// One base walk per class (shift-invariance within a class); the
	// lookahead window is the narrowest any class requires, so every
	// class's arrivals are final at the shared frontier.
	bases := make([][]units.Time, len(mix.Classes))
	jmOf := make([]units.Time, n)
	var w units.Time
	for ci := range mix.Classes {
		c := &mix.Classes[ci]
		bases[ci] = flowbatch.BaseArrivals(c.Sched, c.Chain)
		cw := lookaheadWindow(c.Chain.AccessRate, c.Chain.AccessDelay, minEntrySize(c.Sched))
		if w == 0 || cw < w {
			w = cw
		}
	}
	for g := 0; g < n; g++ {
		jmOf[g] = mix.Classes[mix.ClassOf(g)].Chain.JitterMax
	}

	sas := make([]*flowbatch.ShardArrivals, s)
	for i := 0; i < s; i++ {
		sa := &flowbatch.ShardArrivals{Horizon: horizon}
		for f := i; f < n; f += s {
			sa.Flows = append(sa.Flows, int32(f))
			sa.Start = append(sa.Start, mix.StartOf(f))
			sa.Bases = append(sa.Bases, bases[mix.ClassOf(f)])
		}
		sa.Init()
		sas[i] = sa
	}
	seq := &flowbatch.JitterSequencer{RNG: m.Sim.RNG(), JitterMaxOf: jmOf,
		Horizon: horizon, N: n}
	seq.Init()
	return runFanoutPipeline(m.Sim, sas, seq, w, horizon, mix.Inject)
}
