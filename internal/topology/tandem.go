package topology

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/tokenbucket"
	"repro/internal/units"
	"repro/internal/video"
)

// TandemConfig parameterizes the multi-bottleneck topology: two
// DiffServ domains in tandem, each guarding its ingress with an EF
// token-bucket policer. Traffic that conforms at the first border is
// re-clocked by the queues of the first domain's hops — EF burst
// accumulation — so by the time it reaches the second border its
// spacing no longer matches the profile it was shaped to, and the
// second policer drops packets the first one passed. This is the
// inter-domain effect a single-bottleneck testbed cannot show.
type TandemConfig struct {
	Seed uint64
	Enc  *video.Encoding
	Pool *packet.Pool // packet arena; nil builds a fresh one
	// Trace, when set, records packet-level events from every element
	// (both policers, every hop, the client) into the bounded
	// recorder — the natural input for cmd/dstrace.
	Trace *ptrace.Recorder

	TokenRate units.BitRate  // APS profile rate, applied at both borders
	Depth     units.ByteSize // APS profile burst, applied at both borders

	// BucketWidth pins the simulator's calendar bucket width and
	// disables width adaptation; 0 (the default) is adaptive. Purely a
	// perf knob — results are width-invariant.
	BucketWidth units.Time

	// SecondBorder inserts the second domain's ingress policer. With
	// it false the second domain trusts the first (the single-border
	// baseline the tandem series is compared against).
	SecondBorder bool
	// Border2Scale scales the second border's token rate relative to
	// the first (default 1.0 — the same contracted profile).
	Border2Scale float64
	// InterJitter models the uncontrolled peering segment between the
	// domains (default 3 ms) — the tandem analog of the campus jitter
	// ahead of border 1: clumping it introduces is what pushes
	// border-1-conformant traffic out of profile at border 2.
	InterJitter units.Time

	HopsPerDomain int           // backbone hops per domain; default 2
	HopRate       units.BitRate // default 45 Mbps
	HopDelay      units.Time    // default 5 ms
	CampusJitter  units.Time    // default 5 ms (pre-policer jitter)
	CrossLoad     float64       // best-effort load fraction per hop; default 0.15
	AccessRate    units.BitRate // client access link; default 10 Mbps

	// Shards > 1 runs the source chain (server + campus link) on a
	// shard-private simulator pipelined against the border (see
	// shard.go). The tandem topology has one partitionable chain, so
	// the effective shard count caps at 1 worker plus the border —
	// requests beyond that are byte-identical to 2 (the shardeq
	// harness pins sharded == serial at every count). <= 1 is serial.
	Shards int
}

func (c TandemConfig) withDefaults() TandemConfig {
	if c.Border2Scale == 0 {
		c.Border2Scale = 1
	}
	if c.HopsPerDomain == 0 {
		c.HopsPerDomain = 2
	}
	if c.InterJitter == 0 {
		c.InterJitter = 3 * units.Millisecond
	}
	if c.HopRate == 0 {
		c.HopRate = 45 * units.Mbps
	}
	if c.HopDelay == 0 {
		c.HopDelay = 5 * units.Millisecond
	}
	if c.CampusJitter == 0 {
		c.CampusJitter = 5 * units.Millisecond
	}
	if c.CrossLoad == 0 {
		c.CrossLoad = 0.15
	}
	if c.AccessRate == 0 {
		c.AccessRate = 10 * units.Mbps
	}
	return c
}

// Tandem is a built two-domain experiment.
type Tandem struct {
	Sim     *sim.Simulator
	Net     *Network
	Server  *server.Paced
	Client  *client.UDP
	Border1 *tokenbucket.Policer
	Border2 *tokenbucket.Policer // nil without SecondBorder

	// Stats describes the sharded pipeline after Run when Shards > 1
	// (Stats.Shards is 1 after a serial run).
	Stats ShardStats

	shards int
	trace  *ptrace.Recorder
}

func domainHop(d, i int) string { return fmt.Sprintf("d%dhop%d", d, i) }

// BuildTandem declares the two-domain graph on the Builder, client
// side first (matching the QBone preset's source-start order): server
// → campus → jitter → border1 policer → domain-1 hops → [border2
// policer] → domain-2 hops → access → client. Cross traffic loads
// every hop of both domains, so domain-1 queueing perturbs the EF
// spacing border2 measures.
func BuildTandem(cfg TandemConfig) *Tandem {
	cfg = cfg.withDefaults()
	b := NewBuilderWidth(cfg.Seed, cfg.BucketWidth)
	b.UsePool(cfg.Pool)
	b.UseTrace(cfg.Trace)
	t := &Tandem{Sim: b.Sim(), shards: cfg.Shards, trace: cfg.Trace}

	cl := client.NewUDP(b.Sim(), cfg.Enc.Clip.FrameCount())
	cl.Pool = b.Pool()
	cl.Tolerance = client.SliceTolerance
	if cfg.Trace != nil {
		cl.Tap, cl.Hop = cfg.Trace, cfg.Trace.Hop("client")
	}
	t.Client = cl
	b.Handler("client", cl)
	b.Link("access", LinkSpec{Rate: cfg.AccessRate, Delay: units.Millisecond,
		Sched: EFPriority(0, 200), To: "client"})

	// Domain 2, client side first.
	for i := cfg.HopsPerDomain - 1; i >= 0; i-- {
		to := "access"
		if i < cfg.HopsPerDomain-1 {
			to = domainHop(2, i+1)
		}
		b.Link(domainHop(2, i), LinkSpec{Rate: cfg.HopRate, Delay: cfg.HopDelay,
			Sched: EFPriority(400, 400), To: to})
		if cfg.CrossLoad > 0 {
			b.Source(domainHop(2, i)+"-cross", SourceSpec{
				Kind: PoissonSource,
				Rate: units.BitRate(cfg.CrossLoad * float64(cfg.HopRate)),
				Size: units.EthernetMTU, Flow: packet.FlowID(2000 + i),
				DSCP: packet.BestEffort, To: domainHop(2, i),
			})
		}
	}

	// Border 2: the second domain's ingress re-polices the EF
	// aggregate against the contracted profile (or trusts domain 1
	// when SecondBorder is off). The peering segment's jitter sits in
	// front of it either way, so the baseline differs only in the
	// policer itself.
	domain2 := domainHop(2, 0)
	if cfg.SecondBorder {
		b.Policer("border2", units.BitRate(cfg.Border2Scale*float64(cfg.TokenRate)),
			cfg.Depth, packet.EF, domain2)
		b.Router("interdomain", domain2)
		b.Rule("interdomain", "ef-resign", node.DSCPMatch(packet.EF), "border2")
		domain2 = "interdomain"
	}
	b.Jitter("peering", cfg.InterJitter, domain2)
	domain2 = "peering"

	// Domain 1, client side first; its last hop hands off to domain 2.
	for i := cfg.HopsPerDomain - 1; i >= 0; i-- {
		to := domain2
		if i < cfg.HopsPerDomain-1 {
			to = domainHop(1, i+1)
		}
		b.Link(domainHop(1, i), LinkSpec{Rate: cfg.HopRate, Delay: cfg.HopDelay,
			Sched: EFPriority(400, 400), To: to})
		if cfg.CrossLoad > 0 {
			b.Source(domainHop(1, i)+"-cross", SourceSpec{
				Kind: PoissonSource,
				Rate: units.BitRate(cfg.CrossLoad * float64(cfg.HopRate)),
				Size: units.EthernetMTU, Flow: packet.FlowID(1000 + i),
				DSCP: packet.BestEffort, To: domainHop(1, i),
			})
		}
	}

	// Border 1: the sender-side campus edge, exactly the QBone CAR.
	b.Policer("border1", cfg.TokenRate, cfg.Depth, packet.EF, domainHop(1, 0))
	b.Router("border", domainHop(1, 0))
	b.Rule("border", "video-aps", node.FlowMatch(VideoFlow), "border1")
	b.Jitter("jit", cfg.CampusJitter, "border")
	b.Link("campus", LinkSpec{Rate: 100 * units.Mbps, Delay: 500 * units.Microsecond,
		Sched: PlainFIFO(0), To: "jit"})

	net := b.MustBuild()
	t.Net = net
	t.Border1 = net.Policer("border1")
	if cfg.SecondBorder {
		t.Border2 = net.Policer("border2")
	}
	t.Server = &server.Paced{
		Sim: t.Sim, Enc: cfg.Enc, Flow: VideoFlow,
		Next: net.Handler("campus"), Pool: net.Pool,
	}
	return t
}

// Run starts the server and executes the simulation to completion —
// serially, or pipelined against a shard-hosted source chain when the
// config asked for Shards > 1.
func (t *Tandem) Run() {
	horizon := units.FromSeconds(t.Server.Enc.Clip.DurationSeconds() + 30)
	if t.shards > 1 {
		chains := []sourceChain{{
			enc: t.Server.Enc, flow: VideoFlow, startAt: 0,
			rate: 100 * units.Mbps, delay: 500 * units.Microsecond,
			sched: PlainFIFO(0), name: "campus", next: t.Net.Handler("jit"),
		}}
		st, results := runShardedChains(t.Sim, t.trace, chains, t.shards, horizon)
		t.Stats = st
		for _, r := range results {
			copyLinkStats(t.Net.Link("campus"), r.link)
			t.Server.Sent, t.Server.SentBytes = r.server.Sent, r.server.SentBytes
		}
	} else {
		t.Server.Start()
		t.Sim.SetHorizon(horizon)
		t.Sim.Run()
		t.Stats = ShardStats{Shards: 1}
	}
	t.Client.Finish()
}

// PolicerLoss reports each border's drop fraction (border2 is 0
// without a second border).
func (t *Tandem) PolicerLoss() (b1, b2 float64) {
	b1 = t.Border1.LossFraction()
	if t.Border2 != nil {
		b2 = t.Border2.LossFraction()
	}
	return b1, b2
}
