package node

import (
	"testing"

	"repro/internal/packet"
)

func TestFirstMatchWins(t *testing.T) {
	var a, b, d packet.Sink
	r := NewRouter("r", &d)
	ra := r.AddRule("flow1", FlowMatch(1), &a)
	rb := r.AddRule("all", MatchAll{}, &b)
	r.Handle(&packet.Packet{Flow: 1})
	r.Handle(&packet.Packet{Flow: 2})
	if a.Count != 1 || b.Count != 1 || d.Count != 0 {
		t.Errorf("a=%d b=%d default=%d", a.Count, b.Count, d.Count)
	}
	if ra.Hits != 1 || rb.Hits != 1 {
		t.Errorf("hits: %d %d", ra.Hits, rb.Hits)
	}
	if r.Received != 2 {
		t.Errorf("Received = %d", r.Received)
	}
}

func TestDefaultAction(t *testing.T) {
	var d packet.Sink
	r := NewRouter("r", &d)
	r.AddRule("flow9", FlowMatch(9), &packet.Sink{})
	r.Handle(&packet.Packet{Flow: 2})
	if d.Count != 1 {
		t.Error("unmatched packet not sent to default")
	}
}

func TestNilDefaultDiscards(t *testing.T) {
	r := NewRouter("r", nil)
	r.Handle(&packet.Packet{}) // must not panic
	if r.Received != 1 {
		t.Error("not counted")
	}
}

func TestDSCPMatch(t *testing.T) {
	m := DSCPMatch(packet.EF)
	if !m.Match(&packet.Packet{DSCP: packet.EF}) || m.Match(&packet.Packet{DSCP: packet.AF11}) {
		t.Error("DSCPMatch wrong")
	}
}

func TestMatchFunc(t *testing.T) {
	m := MatchFunc(func(p *packet.Packet) bool { return p.Size > 1000 })
	if !m.Match(&packet.Packet{Size: 1500}) || m.Match(&packet.Packet{Size: 64}) {
		t.Error("MatchFunc wrong")
	}
}

func TestRouterString(t *testing.T) {
	r := NewRouter("edge", nil)
	if r.String() == "" {
		t.Error("empty String")
	}
}
