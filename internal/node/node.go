// Package node assembles data-plane elements into routers.
//
// A Router applies a DiffServ policy at ingress — classify, then run
// the matching conditioning action (police / shape / mark / pass) —
// and forwards the result to an output port, which is a link.Link
// whose scheduler implements the PHBs (EF strict priority over best
// effort). This mirrors the split the paper describes in §2.1: "flow
// classifiers and policers at the edges … scheduling and buffer
// management mechanisms in the core".
package node

import (
	"fmt"

	"repro/internal/packet"
)

// Classifier decides whether a policy rule applies to a packet.
// Matching on FlowID is the simulation analog of the paper's
// (source addr, dest addr) profile at router 1; matching on DSCP is
// the behavior-aggregate classifier of routers 2 and 3.
type Classifier interface {
	Match(p *packet.Packet) bool
}

// FlowMatch matches a specific transport flow.
type FlowMatch packet.FlowID

// Match reports whether p belongs to the flow.
func (f FlowMatch) Match(p *packet.Packet) bool { return p.Flow == packet.FlowID(f) }

// DSCPMatch matches a code point.
type DSCPMatch packet.DSCP

// Match reports whether p carries the code point.
func (d DSCPMatch) Match(p *packet.Packet) bool { return p.DSCP == packet.DSCP(d) }

// MatchAll matches every packet.
type MatchAll struct{}

// Match always reports true.
func (MatchAll) Match(*packet.Packet) bool { return true }

// MatchFunc adapts a predicate to Classifier.
type MatchFunc func(*packet.Packet) bool

// Match calls the predicate.
func (f MatchFunc) Match(p *packet.Packet) bool { return f(p) }

// Rule pairs a classifier with the conditioning element that handles
// matching packets. The element is any Handler: a tokenbucket.Policer,
// a tokenbucket.Shaper, an AF marker, or the output port directly.
type Rule struct {
	Name   string
	Match  Classifier
	Action packet.Handler

	Hits int
}

// Router is an ordered rule list with a default action. First match
// wins, like a Cisco policy map.
type Router struct {
	Name     string
	rules    []*Rule
	deflt    packet.Handler
	Received int

	// flowIdx is the exact-match fast path: while every rule is a
	// FlowMatch on a distinct flow, first-match-wins degenerates to a
	// single map lookup. The wide demux router of the scaling scenarios
	// carries one rule per flow, and the linear scan there is O(flows)
	// per packet — a top profile entry at N=512. Any rule that breaks
	// the precondition (non-FlowMatch classifier, duplicate flow)
	// disables the index permanently and Handle falls back to the scan.
	flowIdx map[packet.FlowID]*Rule
	noIdx   bool
}

// NewRouter returns a router whose unmatched traffic goes to deflt.
func NewRouter(name string, deflt packet.Handler) *Router {
	if deflt == nil {
		deflt = packet.HandlerFunc(func(*packet.Packet) {})
	}
	return &Router{Name: name, deflt: deflt}
}

// SetDefault replaces the router's default (unmatched-traffic) action.
// The topology builder uses it to wire forward references after all
// elements exist; it must not be called once packets are flowing.
func (r *Router) SetDefault(h packet.Handler) {
	if h == nil {
		h = packet.HandlerFunc(func(*packet.Packet) {})
	}
	r.deflt = h
}

// AddRule appends a policy rule and returns it for stats inspection.
func (r *Router) AddRule(name string, m Classifier, action packet.Handler) *Rule {
	rule := &Rule{Name: name, Match: m, Action: action}
	r.rules = append(r.rules, rule)
	if !r.noIdx {
		if f, ok := m.(FlowMatch); ok {
			if r.flowIdx == nil {
				r.flowIdx = make(map[packet.FlowID]*Rule)
			}
			if _, dup := r.flowIdx[packet.FlowID(f)]; !dup {
				r.flowIdx[packet.FlowID(f)] = rule
				return rule
			}
		}
		r.noIdx, r.flowIdx = true, nil
	}
	return rule
}

// Handle classifies p and runs the first matching action.
func (r *Router) Handle(p *packet.Packet) {
	r.Received++
	if r.flowIdx != nil {
		if rule, ok := r.flowIdx[p.Flow]; ok {
			rule.Hits++
			rule.Action.Handle(p)
			return
		}
		r.deflt.Handle(p)
		return
	}
	for _, rule := range r.rules {
		if rule.Match.Match(p) {
			rule.Hits++
			rule.Action.Handle(p)
			return
		}
	}
	r.deflt.Handle(p)
}

// String summarizes the router's policy.
func (r *Router) String() string {
	return fmt.Sprintf("router{%s rules=%d rx=%d}", r.Name, len(r.rules), r.Received)
}
