package render

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// TestConcealProperties checks invariants of the concealment step over
// random loss/delay patterns:
//
//  1. every received frame is displayed exactly once (pause, not skip);
//  2. displayed indices are non-decreasing;
//  3. slot count = received frames + repeat slots;
//  4. the freeze ledger sums to the repeat count.
func TestConcealProperties(t *testing.T) {
	iv := video.FrameInterval()
	f := func(lossSeed uint64, delayedPct uint8) bool {
		n := 400
		rng := newSplitMix(lossSeed)
		tr := &trace.Trace{ClipFrames: n}
		for i := 0; i < n; i++ {
			if rng()%100 < 20 {
				continue // lost
			}
			at := units.Time(int64(i)) * iv
			arr := at
			if uint8(rng()%100) < delayedPct%40 {
				arr += units.Time(rng()%3) * units.Second
			}
			tr.Add(trace.FrameRecord{Seq: i, Arrival: arr, Presentation: at, Frags: 1})
		}
		// Arrival order may be perturbed by delays; records stay
		// sorted by seq (the client sorts before handing off).
		sort.Slice(tr.Records, func(a, b int) bool { return tr.Records[a].Seq < tr.Records[b].Seq })
		d := Conceal(tr, DefaultOptions())

		if len(tr.Records) == 0 {
			return len(d.Frames) == 0
		}
		shown := map[int]int{}
		prev := -1
		for _, f := range d.Frames {
			if f < prev {
				return false // went backwards
			}
			if f != prev {
				shown[f]++
			}
			prev = f
		}
		for _, r := range tr.Records {
			if shown[r.Seq] != 1 {
				return false // skipped or double-shown
			}
		}
		if len(d.Frames) != len(tr.Records)+d.Repeats {
			return false
		}
		sum := 0
		for _, fr := range d.Freezes {
			sum += fr
		}
		return sum == d.Repeats
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// newSplitMix gives the property test its own tiny deterministic
// generator so testing/quick's seeds fully determine the trace.
func newSplitMix(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
