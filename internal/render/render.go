// Package render reimplements the paper's renderer-concealment step
// (§3.1.2, Fig. 2): the PERL script that took the stored received
// frames plus their timing file and produced the frame sequence a
// viewer actually saw, with the previous frame repeated whenever the
// playback buffer ran dry because of lost or delayed frames.
//
// The output is a displayed-frame index sequence at uniform frame
// slots; index -1 marks slots before the first frame was available.
package render

import (
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Options configures playout.
type Options struct {
	// StartupDelay is the client's initial buffering time after the
	// first frame arrives before playback starts. Streaming clients of
	// the era buffered a few seconds; the default is 2 s.
	StartupDelay units.Time
}

// DefaultOptions returns the standard playout configuration.
func DefaultOptions() Options {
	return Options{StartupDelay: 2 * units.Second}
}

// Displayed is the concealed output sequence.
type Displayed struct {
	// Frames[i] is the source frame index shown at display slot i.
	Frames []int
	// Damage[i] is the concealed-loss damage fraction of the frame
	// shown at slot i (0 for intact frames and repeats of them).
	Damage []float64
	// Repeats counts slots where the previous frame was repeated
	// because the buffer was empty (the offset went negative).
	Repeats int
	// Freezes lists the length (in slots) of each repeat run.
	Freezes []int
}

// FreezeFraction reports the fraction of displayed slots that were
// concealment repeats.
func (d *Displayed) FreezeFraction() float64 {
	if len(d.Frames) == 0 {
		return 0
	}
	return float64(d.Repeats) / float64(len(d.Frames))
}

// LongestFreeze reports the longest repeat run in slots.
func (d *Displayed) LongestFreeze() int {
	max := 0
	for _, f := range d.Freezes {
		if f > max {
			max = f
		}
	}
	return max
}

// Conceal converts a received-frame trace into the displayed sequence.
//
// The model follows Fig. 2's offset mechanism: playback starts
// StartupDelay after the first frame arrives; at each uniform display
// slot the renderer shows the next received frame in sequence order if
// it has arrived, and otherwise repeats the last shown frame (the
// playback buffer is empty — a negative offset in the paper's terms).
// A frame that was lost in the network simply never arrives, so the
// renderer steps over the gap to the next received frame; a burst loss
// or a delivery stall therefore shows up as a freeze whose length
// matches the outage, after which playback resumes time-shifted, which
// is precisely what the VQM temporal-calibration stage has to chase.
func Conceal(tr *trace.Trace, opt Options) *Displayed {
	d := &Displayed{}
	recs := tr.Records
	if len(recs) == 0 {
		return d
	}
	interval := video.FrameInterval()
	start := recs[0].Arrival + opt.StartupDelay
	p0 := recs[0].Presentation
	var shift units.Time // accumulated playback pause from stalls
	i := 0               // next record to show
	last := -1
	lastDamage := 0.0
	freeze := 0
	endFreeze := func() {
		if freeze > 0 {
			d.Freezes = append(d.Freezes, freeze)
			freeze = 0
		}
	}
	for slot := 0; i < len(recs); slot++ {
		t := start + units.Time(int64(slot))*interval
		// The frame's position on the (possibly paused) playback
		// timeline.
		due := start + (recs[i].Presentation - p0) + shift
		switch {
		case due <= t && recs[i].Arrival <= t:
			// Frame is due and buffered: show it.
			last = recs[i].Seq
			lastDamage = recs[i].DamageFraction()
			i++
			endFreeze()
		case due <= t:
			// Frame is due but has not arrived: the playback buffer
			// is empty (negative offset in Fig. 2's terms). Repeat
			// the previous frame and pause the timeline one slot.
			shift += interval
			d.Repeats++
			freeze++
		default:
			// Frame is buffered (or absent) but not yet due — e.g.
			// its predecessors were lost. Repeat in place without
			// pausing the timeline.
			if last >= 0 {
				d.Repeats++
				freeze++
			}
		}
		d.Frames = append(d.Frames, last)
		d.Damage = append(d.Damage, lastDamage)
		// Safety valve: a pathological trace (arrival far in the
		// future) must not spin forever; cap any stall at 10 min.
		const maxStallSlots = 600 * video.FPSNum / video.FPSDen // ≈ 10 min
		if freeze > maxStallSlots {
			break
		}
	}
	endFreeze()
	return d
}
