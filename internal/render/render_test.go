package render

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// perfectTrace builds a trace where every frame arrives exactly on its
// source schedule.
func perfectTrace(n int) *trace.Trace {
	tr := &trace.Trace{ClipFrames: n}
	iv := video.FrameInterval()
	for i := 0; i < n; i++ {
		at := units.Time(int64(i)) * iv
		tr.Add(trace.FrameRecord{Seq: i, Arrival: at, Presentation: at, Frags: 1})
	}
	return tr
}

func TestConcealPerfectPlayback(t *testing.T) {
	d := Conceal(perfectTrace(300), DefaultOptions())
	if d.Repeats != 0 {
		t.Errorf("repeats = %d on perfect trace", d.Repeats)
	}
	if len(d.Frames) != 300 {
		t.Errorf("slots = %d, want 300", len(d.Frames))
	}
	for i, f := range d.Frames {
		if f != i {
			t.Fatalf("slot %d shows frame %d", i, f)
		}
	}
}

func TestConcealEmptyTrace(t *testing.T) {
	d := Conceal(&trace.Trace{ClipFrames: 10}, DefaultOptions())
	if len(d.Frames) != 0 || d.FreezeFraction() != 0 {
		t.Error("empty trace must produce empty output")
	}
}

func TestConcealIsolatedLossSingleRepeat(t *testing.T) {
	tr := perfectTrace(300)
	// Remove frame 100.
	recs := tr.Records[:0]
	for _, r := range tr.Records {
		if r.Seq != 100 {
			recs = append(recs, r)
		}
	}
	tr.Records = recs
	d := Conceal(tr, DefaultOptions())
	if d.Repeats != 1 {
		t.Errorf("repeats = %d, want 1 for an isolated loss", d.Repeats)
	}
	// Slot 100 must repeat frame 99; slot 101 shows 101 (back on time).
	if d.Frames[100] != 99 {
		t.Errorf("slot 100 shows %d, want repeat of 99", d.Frames[100])
	}
	if d.Frames[101] != 101 {
		t.Errorf("slot 101 shows %d, want 101", d.Frames[101])
	}
}

func TestConcealBurstLossFreeze(t *testing.T) {
	tr := perfectTrace(300)
	recs := tr.Records[:0]
	for _, r := range tr.Records {
		if r.Seq < 100 || r.Seq >= 130 {
			recs = append(recs, r)
		}
	}
	tr.Records = recs
	d := Conceal(tr, DefaultOptions())
	if d.Repeats != 30 {
		t.Errorf("repeats = %d, want 30", d.Repeats)
	}
	if d.LongestFreeze() != 30 {
		t.Errorf("longest freeze = %d, want 30", d.LongestFreeze())
	}
	for s := 100; s < 130; s++ {
		if d.Frames[s] != 99 {
			t.Fatalf("slot %d shows %d during freeze", s, d.Frames[s])
		}
	}
	if d.Frames[130] != 130 {
		t.Errorf("post-freeze slot shows %d", d.Frames[130])
	}
}

func TestConcealDeliveryStallShiftsTimeline(t *testing.T) {
	// All frames present, but frames ≥150 arrive 3 s late: the buffer
	// (2 s) drains and playback pauses ~1 s, then resumes shifted.
	tr := &trace.Trace{ClipFrames: 300}
	iv := video.FrameInterval()
	for i := 0; i < 300; i++ {
		at := units.Time(int64(i)) * iv
		arr := at
		if i >= 150 {
			arr += 3 * units.Second
		}
		tr.Add(trace.FrameRecord{Seq: i, Arrival: arr, Presentation: at, Frags: 1})
	}
	d := Conceal(tr, DefaultOptions())
	if d.Repeats == 0 {
		t.Fatal("stall produced no repeats")
	}
	// ~1 s worth of repeat slots (3 s late minus 2 s buffer).
	fps := video.FPS // force non-constant conversion
	wantRepeats := int(fps)
	if d.Repeats < wantRepeats-3 || d.Repeats > wantRepeats+3 {
		t.Errorf("repeats = %d, want ≈%d", d.Repeats, wantRepeats)
	}
	// Every source frame still gets displayed (pause, not skip).
	last := d.Frames[len(d.Frames)-1]
	if last != 299 {
		t.Errorf("last displayed frame = %d, want 299", last)
	}
	if len(d.Frames) != 300+d.Repeats {
		t.Errorf("slots = %d, want %d", len(d.Frames), 300+d.Repeats)
	}
}

func TestConcealDamagePropagates(t *testing.T) {
	tr := perfectTrace(10)
	tr.Records[4].Frags = 4
	tr.Records[4].LostFrags = 1
	d := Conceal(tr, DefaultOptions())
	if d.Damage[4] != 0.25 {
		t.Errorf("damage[4] = %v", d.Damage[4])
	}
	if d.Damage[3] != 0 || d.Damage[5] != 0 {
		t.Error("damage leaked to other slots")
	}
}

func TestFreezeFractionAndBookkeeping(t *testing.T) {
	tr := perfectTrace(100)
	recs := tr.Records[:0]
	for _, r := range tr.Records {
		if r.Seq != 10 && r.Seq != 50 && r.Seq != 51 {
			recs = append(recs, r)
		}
	}
	tr.Records = recs
	d := Conceal(tr, DefaultOptions())
	if d.Repeats != 3 {
		t.Fatalf("repeats = %d", d.Repeats)
	}
	if len(d.Freezes) != 2 {
		t.Fatalf("freeze runs = %d, want 2 (lengths %v)", len(d.Freezes), d.Freezes)
	}
	if got := d.FreezeFraction(); got <= 0 || got >= 0.1 {
		t.Errorf("FreezeFraction = %v", got)
	}
}
