// Package experiment is the measurement harness: it runs streaming
// experiments over the simulated testbeds, feeds the resulting frame
// traces through the renderer-concealment and VQM pipeline, and
// regenerates every table and figure of the paper's evaluation
// (Section 4). See DESIGN.md for the experiment index.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/client"
	"repro/internal/render"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

// Evaluation is the per-run outcome: the two quantities every figure
// plots against token rate.
type Evaluation struct {
	FrameLoss   float64 // fraction of clip frames never decodable
	Quality     float64 // VQM index: 0 best, 1 worst
	PacketLoss  float64 // network-level packet loss at the policer
	Calibration int     // VQM segments that failed temporal calibration
}

// Evaluate runs the offline pipeline of §3.1 on a frame trace:
// MPEG decode dependencies (for CBR/MPEG content), renderer
// concealment, then VQM scoring of the displayed sequence against ref.
func Evaluate(tr *trace.Trace, recv, ref *video.Encoding) Evaluation {
	if recv.CBR {
		tr = client.DecodeMPEG(tr, recv)
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := vqm.Score(d, recv, ref, vqm.Options{})
	return Evaluation{
		FrameLoss:   tr.FrameLossFraction(),
		Quality:     res.Index,
		Calibration: res.CalibrationFailures,
	}
}

// Point is one sweep sample.
type Point struct {
	TokenRate units.BitRate
	Depth     units.ByteSize
	Evaluation
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per
// token rate, one (loss, quality) column pair per series.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12s", "TokenRate")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %-10s %-10s", "Loss("+s.Label+")", "QI("+s.Label+")")
	}
	b.WriteString("\n")
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-12s", f.Series[0].Points[i].TokenRate)
		for _, s := range f.Series {
			if i < len(s.Points) {
				p := s.Points[i]
				fmt.Fprintf(&b, " | %-10.3f %-10.3f", p.FrameLoss, p.Quality)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TokenSweep builds an inclusive token-rate range in kbps steps.
func TokenSweep(fromKbps, toKbps, stepKbps int) []units.BitRate {
	var out []units.BitRate
	for k := fromKbps; k <= toKbps; k += stepKbps {
		out = append(out, units.BitRate(k)*units.Kbps)
	}
	return out
}

// QBoneSpec parameterizes one QBone figure (Figs. 7–12): a clip
// encoded at one CBR rate, streamed for every (token rate, depth)
// combination, scored against its own encoding.
type QBoneSpec struct {
	ID      string
	Title   string
	Clip    *video.Clip
	EncRate units.BitRate
	Tokens  []units.BitRate
	Depths  []units.ByteSize
	Seed    uint64
	// Runs averages each point over this many seeds (seed, seed+1, …);
	// 0 means 3. The paper repeated runs for the same reason: jitter
	// makes individual runs noisy (§4 "there is some variability").
	Runs int
	// CrossLoad overrides the default background load (0 keeps it).
	CrossLoad float64
}

// Run regenerates the figure.
func (spec QBoneSpec) Run() *Figure {
	enc := video.EncodeCBR(spec.Clip, spec.EncRate)
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	for _, depth := range spec.Depths {
		s := Series{Label: fmt.Sprintf("B=%d", int64(depth))}
		for _, tok := range spec.Tokens {
			s.Points = append(s.Points, RunQBonePointAvg(enc, enc, tok, depth, spec.Seed, spec.CrossLoad, runs))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RunQBonePointAvg averages RunQBonePoint over consecutive seeds.
func RunQBonePointAvg(enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64, runs int) Point {
	if runs <= 1 {
		return RunQBonePoint(enc, ref, tok, depth, seed, crossLoad)
	}
	var acc Point
	for r := 0; r < runs; r++ {
		p := RunQBonePoint(enc, ref, tok, depth, seed+uint64(r), crossLoad)
		acc.FrameLoss += p.FrameLoss
		acc.Quality += p.Quality
		acc.PacketLoss += p.PacketLoss
		acc.Calibration += p.Calibration
	}
	acc.TokenRate, acc.Depth = tok, depth
	acc.FrameLoss /= float64(runs)
	acc.Quality /= float64(runs)
	acc.PacketLoss /= float64(runs)
	return acc
}

// RunQBonePoint streams enc across the QBone with the given profile
// and evaluates the received video against ref.
func RunQBonePoint(enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64) Point {
	q := topology.BuildQBone(topology.QBoneConfig{
		Seed: seed, Enc: enc, TokenRate: tok, Depth: depth, CrossLoad: crossLoad,
	})
	q.Client.Tolerance = client.SliceTolerance
	q.Run()
	ev := Evaluate(q.Client.Trace(), enc, ref)
	if q.Policer != nil {
		ev.PacketLoss = q.Policer.LossFraction()
	}
	return Point{TokenRate: tok, Depth: depth, Evaluation: ev}
}

// RelativeSpec parameterizes the Figs. 13–14 experiments: three
// encodings of the same clip streamed at each token rate with a fixed
// depth, all scored against the highest-quality (1.7 Mbps) encoding.
type RelativeSpec struct {
	ID       string
	Title    string
	Clip     *video.Clip
	EncRates []units.BitRate
	RefRate  units.BitRate
	Tokens   []units.BitRate
	Depth    units.ByteSize
	Seed     uint64
	Runs     int // seeds averaged per point; 0 means 3
}

// Run regenerates the figure.
func (spec RelativeSpec) Run() *Figure {
	ref := video.EncodeCBR(spec.Clip, spec.RefRate)
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	for _, er := range spec.EncRates {
		var enc *video.Encoding
		if er == spec.RefRate {
			enc = ref
		} else {
			enc = video.EncodeCBR(spec.Clip, er)
		}
		s := Series{Label: er.String()}
		for _, tok := range spec.Tokens {
			s.Points = append(s.Points, RunQBonePointAvg(enc, ref, tok, spec.Depth, spec.Seed, 0, runs))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// LocalSpec parameterizes the Figs. 15–16 experiments: the WMV-encoded
// Lost clip streamed over TCP through the local testbed, with or
// without the Linux shaping router ahead of the dropping policer.
type LocalSpec struct {
	ID        string
	Title     string
	Clip      *video.Clip
	CapKbps   float64
	Tokens    []units.BitRate
	Depths    []units.ByteSize
	UseShaper bool
	UseTCP    bool
	Seed      uint64
}

// Run regenerates the figure.
func (spec LocalSpec) Run() *Figure {
	enc := video.EncodeVBR(spec.Clip, units.BitRate(spec.CapKbps)*units.Kbps)
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	for _, depth := range spec.Depths {
		s := Series{Label: fmt.Sprintf("B=%d", int64(depth))}
		for _, tok := range spec.Tokens {
			s.Points = append(s.Points, RunLocalPoint(enc, tok, depth, spec.UseShaper, spec.UseTCP, spec.Seed))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RunLocalPoint streams enc through the local testbed and evaluates.
func RunLocalPoint(enc *video.Encoding, tok units.BitRate, depth units.ByteSize, useShaper, useTCP bool, seed uint64) Point {
	l := topology.BuildLocal(topology.LocalConfig{
		Seed: seed, Enc: enc, TokenRate: tok, Depth: depth,
		UseTCP: useTCP, UseShaper: useShaper,
	})
	if l.UDPClient != nil {
		// WMT's reduced message sizes mean one lost packet damages a
		// frame instead of voiding a whole fragmented datagram (§2.2).
		l.UDPClient.Tolerance = client.SliceTolerance
	}
	l.Run()
	ev := Evaluate(l.Trace(), enc, enc)
	if l.Policer != nil {
		ev.PacketLoss = l.Policer.LossFraction()
	}
	return Point{TokenRate: tok, Depth: depth, Evaluation: ev}
}
