// Package experiment is the measurement harness: it runs streaming
// experiments over the simulated testbeds, feeds the resulting frame
// traces through the renderer-concealment and VQM pipeline, and
// regenerates every table and figure of the paper's evaluation
// (Section 4). See DESIGN.md for the experiment index.
package experiment

import (
	"fmt"
	"strings"

	"repro/internal/client"
	"repro/internal/packet"
	"repro/internal/render"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

// Evaluation is the per-run outcome: the two quantities every figure
// plots against token rate.
type Evaluation struct {
	FrameLoss   float64 // fraction of clip frames never decodable
	Quality     float64 // VQM index: 0 best, 1 worst
	PacketLoss  float64 // network-level packet loss at the policer
	Calibration int     // VQM segments that failed temporal calibration
}

// Evaluate runs the offline pipeline of §3.1 on a frame trace:
// MPEG decode dependencies (for CBR/MPEG content), renderer
// concealment, then VQM scoring of the displayed sequence against ref.
func Evaluate(tr *trace.Trace, recv, ref *video.Encoding) Evaluation {
	if recv.CBR {
		tr = client.DecodeMPEG(tr, recv)
	}
	d := render.Conceal(tr, render.DefaultOptions())
	res := vqm.Score(d, recv, ref, vqm.Options{})
	return Evaluation{
		FrameLoss:   tr.FrameLossFraction(),
		Quality:     res.Index,
		Calibration: res.CalibrationFailures,
	}
}

// Point is one sweep sample. Label optionally overrides the row label
// for scenarios whose x-axis is not a token rate (flow count, cross
// load); Flows carries per-flow evaluations for multi-flow scenarios
// (the embedded Evaluation is then the across-flow mean).
type Point struct {
	TokenRate units.BitRate
	Depth     units.ByteSize
	Label     string
	Evaluation
	Flows []Evaluation

	// Events counts the simulator events executed to produce this
	// point (summed across seed-averaged runs) — the denominator of
	// the events/sec and allocs/event throughput metrics dsbench
	// reports. It never appears in figure output. Assemble
	// implementations that place one result into several series must
	// keep Events on exactly one copy, so summing over every series
	// point of a figure counts each simulation once.
	Events uint64

	// VFlows counts the virtual flows this point simulated (len(Flows)
	// for multi-flow scenarios, 0 for the single-flow figures). Like
	// Events it rides exactly one series copy, so dsbench's
	// events-per-virtual-flow scaling metric counts each simulation
	// once.
	VFlows int

	// Shards is the effective intra-run shard count the point's
	// simulations executed with (1 for serial runs, 0 for scenarios
	// that do not report it). Diagnostic only — sharding never changes
	// figure output.
	Shards int
	// StallRatio is the border goroutine's blocked fraction when the
	// point ran sharded (averaged across seed-averaged runs): near 0
	// means the border replay dominates, near 1 means the shard
	// workers do.
	StallRatio float64

	// Classes carries per-equivalence-class delivery statistics for
	// mixture points run in aggregated-stats mode (nil otherwise). Like
	// Events it rides exactly one series copy of the assembled figure.
	Classes []ClassStat
	// HeapBytes is the process heap in use (runtime.ReadMemStats
	// HeapAlloc) sampled right after the point's simulation — a peak
	// proxy that is meaningful at -parallel 1, where no other job's
	// allocations mix in. 0 when the scenario does not sample it.
	HeapBytes uint64
	// RunMS is the point's simulation wall-clock in milliseconds (build
	// + run, excluding trace I/O), for scenarios that record it: the
	// fleet sweeps use it as direct evidence that wall time grows
	// sublinearly in N. 0 when not sampled; meaningful at -parallel 1.
	RunMS float64

	// Calendar-queue telemetry from the point's (border) simulator,
	// sampled after the run: window rebases performed, the final bucket
	// width (the adaptive policy's converged choice, or the manual
	// pin), and the share of schedules that landed in the overflow
	// heap. Diagnostic only — never figure output. For seed-averaged
	// points QRebases sums across runs and the others are last-run
	// samples; zero-valued when the scenario does not sample them.
	QRebases  uint64
	QWidth    units.Time
	QOverflow float64
}

// ClassStat summarizes one equivalence class of an aggregated-stats
// mixture point: packet-level delivery counts and one-way delay
// statistics from the class's streaming accumulator (exact moments,
// P²-sketched quantiles).
type ClassStat struct {
	Name             string
	Flows            int
	ScheduledPackets int64 // per-flow schedule length × class population
	ScheduledBytes   int64
	Packets          int64 // delivered
	Bytes            int64
	DelayMeanMs      float64
	DelayStdMs       float64
	DelayP50Ms       float64
	DelayP95Ms       float64
	DelayP99Ms       float64
}

// DeliveredFraction is the class's packet delivery ratio.
func (c ClassStat) DeliveredFraction() float64 {
	if c.ScheduledPackets == 0 {
		return 0
	}
	return float64(c.Packets) / float64(c.ScheduledPackets)
}

// rowLabel is what the figure table prints in the first column.
func (p Point) rowLabel() string {
	if p.Label != "" {
		return p.Label
	}
	return p.TokenRate.String()
}

// Series is one curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string // first-column header; "" means "TokenRate"
	Series []Series
}

// Format renders the figure as an aligned text table, one row per
// token rate, one (loss, quality) column pair per series.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	x := f.XLabel
	if x == "" {
		x = "TokenRate"
	}
	fmt.Fprintf(&b, "%-12s", x)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " | %-10s %-10s", "Loss("+s.Label+")", "QI("+s.Label+")")
	}
	b.WriteString("\n")
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return b.String()
	}
	for i := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-12s", f.Series[0].Points[i].rowLabel())
		for _, s := range f.Series {
			if i < len(s.Points) {
				p := s.Points[i]
				fmt.Fprintf(&b, " | %-10.3f %-10.3f", p.FrameLoss, p.Quality)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TokenSweep builds an inclusive token-rate range in kbps steps.
func TokenSweep(fromKbps, toKbps, stepKbps int) []units.BitRate {
	var out []units.BitRate
	for k := fromKbps; k <= toKbps; k += stepKbps {
		out = append(out, units.BitRate(k)*units.Kbps)
	}
	return out
}

// QBoneSpec parameterizes one QBone figure (Figs. 7–12): a clip
// encoded at one CBR rate, streamed for every (token rate, depth)
// combination, scored against its own encoding.
type QBoneSpec struct {
	Key     string // registry name, e.g. "fig7"
	ID      string
	Title   string
	Clip    *video.Clip
	EncRate units.BitRate
	Tokens  []units.BitRate
	Depths  []units.ByteSize
	Seed    uint64
	// Runs averages each point over this many seeds (seed, seed+1, …);
	// 0 means 3. The paper repeated runs for the same reason: jitter
	// makes individual runs noisy (§4 "there is some variability").
	Runs int
	// CrossLoad overrides the default background load (0 keeps it).
	CrossLoad float64
}

// Name implements Scenario.
func (spec QBoneSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec QBoneSpec) Describe() string { return spec.Title }

// Jobs enumerates one seed-averaged job per (depth, token) grid point,
// in the figure's row-major order.
func (spec QBoneSpec) Jobs() []Job {
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var jobs []Job
	for _, depth := range spec.Depths {
		for _, tok := range spec.Tokens {
			depth, tok := depth, tok
			jobs = append(jobs, func(ctx *Ctx) Point {
				return runQBonePointAvg(ctx, enc, enc, tok, depth, spec.Seed, spec.CrossLoad, runs)
			})
		}
	}
	return jobs
}

// Assemble implements Scenario: one series per depth, points in token
// order.
func (spec QBoneSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	for di, depth := range spec.Depths {
		s := Series{Label: fmt.Sprintf("B=%d", int64(depth))}
		s.Points = append(s.Points, results[di*len(spec.Tokens):(di+1)*len(spec.Tokens)]...)
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Scaled implements Scalable.
func (spec QBoneSpec) Scaled(n int) Scenario {
	spec.Tokens = Scale(spec.Tokens, n)
	return spec
}

// Run regenerates the figure on a default-size runner pool.
func (spec QBoneSpec) Run() *Figure { return RunScenario(spec, 0) }

// RunQBonePointAvg averages RunQBonePoint over consecutive seeds.
func RunQBonePointAvg(enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64, runs int) Point {
	return RunQBonePointAvgArena(nil, enc, ref, tok, depth, seed, crossLoad, runs)
}

// RunQBonePointAvgArena is RunQBonePointAvg on a caller-owned packet
// arena (the runner worker's pool).
func RunQBonePointAvgArena(pool *packet.Pool, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64, runs int) Point {
	return runQBonePointAvg(&Ctx{Pool: pool}, enc, ref, tok, depth, seed, crossLoad, runs)
}

// runQBonePointAvg averages runQBonePoint over consecutive seeds (see
// averagePoint for the averaging and tracing conventions).
func runQBonePointAvg(ctx *Ctx, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64, runs int) Point {
	return runQBonePointAvgLabeled(ctx, "", enc, ref, tok, depth, seed, crossLoad, runs)
}

// runQBonePointAvgLabeled is runQBonePointAvg with a trace-file label
// prefix for scenarios whose grids differ in something other than
// (token, depth, seed).
func runQBonePointAvgLabeled(ctx *Ctx, labelPrefix string, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64, runs int) Point {
	return averagePoint(ctx, tok, depth, seed, runs, func(c *Ctx, s uint64) Point {
		return runQBonePointLabeled(c, labelPrefix, enc, ref, tok, depth, s, crossLoad)
	})
}

// averagePoint averages a single-run point function over consecutive
// seeds. When the ctx requests tracing, only the first seed's run is
// traced: one representative capture per grid point keeps -trace
// output proportional to the figure, not to the seed averaging.
// Events accumulates (the events/sec denominator counts every
// simulation) and Calibration accumulates by the same convention the
// serial harness used.
func averagePoint(ctx *Ctx, tok units.BitRate, depth units.ByteSize, seed uint64, runs int, run func(c *Ctx, seed uint64) Point) Point {
	if runs <= 1 {
		return run(ctx, seed)
	}
	untraced := &Ctx{Pool: ctx.Pool, Shards: ctx.Shards, BucketWidth: ctx.BucketWidth}
	var acc Point
	for r := 0; r < runs; r++ {
		c := untraced
		if r == 0 {
			c = ctx
		}
		p := run(c, seed+uint64(r))
		acc.FrameLoss += p.FrameLoss
		acc.Quality += p.Quality
		acc.PacketLoss += p.PacketLoss
		acc.Calibration += p.Calibration
		acc.Events += p.Events
		acc.Shards = p.Shards
		acc.StallRatio += p.StallRatio
		acc.QRebases += p.QRebases
		acc.QWidth, acc.QOverflow = p.QWidth, p.QOverflow
	}
	acc.TokenRate, acc.Depth = tok, depth
	acc.FrameLoss /= float64(runs)
	acc.Quality /= float64(runs)
	acc.PacketLoss /= float64(runs)
	acc.StallRatio /= float64(runs)
	return acc
}

// RunQBonePoint streams enc across the QBone with the given profile
// and evaluates the received video against ref.
func RunQBonePoint(enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64) Point {
	return RunQBonePointArena(nil, enc, ref, tok, depth, seed, crossLoad)
}

// RunQBonePointArena is RunQBonePoint on a caller-owned packet arena.
func RunQBonePointArena(pool *packet.Pool, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64) Point {
	return runQBonePoint(&Ctx{Pool: pool}, enc, ref, tok, depth, seed, crossLoad)
}

// pointLabel names a grid point's trace file.
func pointLabel(tok units.BitRate, depth units.ByteSize, seed uint64) string {
	return fmt.Sprintf("tok%d-B%d-s%d", int64(tok), int64(depth), seed)
}

func runQBonePoint(ctx *Ctx, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64) Point {
	return runQBonePointLabeled(ctx, "", enc, ref, tok, depth, seed, crossLoad)
}

func runQBonePointLabeled(ctx *Ctx, labelPrefix string, enc, ref *video.Encoding, tok units.BitRate, depth units.ByteSize, seed uint64, crossLoad float64) Point {
	rec := ctx.NewRecorder()
	q := topology.BuildQBone(topology.QBoneConfig{
		Seed: seed, Enc: enc, TokenRate: tok, Depth: depth, CrossLoad: crossLoad,
		Pool: ctx.Pool, Trace: rec, BucketWidth: ctx.BucketWidth,
	})
	q.Client.Tolerance = client.SliceTolerance
	q.Run()
	if err := ctx.SaveTrace(labelPrefix+pointLabel(tok, depth, seed), rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}
	ev := Evaluate(q.Client.Trace(), enc, ref)
	if q.Policer != nil {
		ev.PacketLoss = q.Policer.LossFraction()
	}
	pt := Point{TokenRate: tok, Depth: depth, Evaluation: ev, Events: q.Sim.Fired()}
	fillQueueStats(&pt, q.Sim)
	return pt
}

// fillQueueStats copies a run simulator's calendar-queue telemetry
// into the point's diagnostic fields.
func fillQueueStats(pt *Point, s *sim.Simulator) {
	qs := s.QueueStats()
	pt.QRebases = qs.Rebases
	pt.QWidth = qs.Width
	pt.QOverflow = qs.OverflowRatio()
}

// RelativeSpec parameterizes the Figs. 13–14 experiments: three
// encodings of the same clip streamed at each token rate with a fixed
// depth, all scored against the highest-quality (1.7 Mbps) encoding.
type RelativeSpec struct {
	Key      string // registry name, e.g. "fig13"
	ID       string
	Title    string
	Clip     *video.Clip
	EncRates []units.BitRate
	RefRate  units.BitRate
	Tokens   []units.BitRate
	Depth    units.ByteSize
	Seed     uint64
	Runs     int // seeds averaged per point; 0 means 3
}

// Name implements Scenario.
func (spec RelativeSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec RelativeSpec) Describe() string { return spec.Title }

// Jobs enumerates one seed-averaged job per (encoding, token) grid
// point. The cached-encoding layer guarantees the reference-rate
// series streams the very *Encoding it is scored against, as the
// serial code did.
func (spec RelativeSpec) Jobs() []Job {
	ref := video.CachedCBR(spec.Clip, spec.RefRate)
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var jobs []Job
	for _, er := range spec.EncRates {
		enc := video.CachedCBR(spec.Clip, er)
		for _, tok := range spec.Tokens {
			enc, tok, er := enc, tok, er
			jobs = append(jobs, func(ctx *Ctx) Point {
				// The encoding rate disambiguates trace files: every
				// series shares the same (token, depth, seed) grid.
				return runQBonePointAvgLabeled(ctx, fmt.Sprintf("enc%d-", int64(er)),
					enc, ref, tok, spec.Depth, spec.Seed, 0, runs)
			})
		}
	}
	return jobs
}

// Assemble implements Scenario: one series per encoding rate.
func (spec RelativeSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	for ei, er := range spec.EncRates {
		s := Series{Label: er.String()}
		s.Points = append(s.Points, results[ei*len(spec.Tokens):(ei+1)*len(spec.Tokens)]...)
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Scaled implements Scalable.
func (spec RelativeSpec) Scaled(n int) Scenario {
	spec.Tokens = Scale(spec.Tokens, n)
	return spec
}

// Run regenerates the figure on a default-size runner pool.
func (spec RelativeSpec) Run() *Figure { return RunScenario(spec, 0) }

// LocalSpec parameterizes the Figs. 15–16 experiments: the WMV-encoded
// Lost clip streamed over TCP through the local testbed, with or
// without the Linux shaping router ahead of the dropping policer.
type LocalSpec struct {
	Key       string // registry name, e.g. "fig15"
	ID        string
	Title     string
	Clip      *video.Clip
	CapKbps   float64
	Tokens    []units.BitRate
	Depths    []units.ByteSize
	UseShaper bool
	UseTCP    bool
	Seed      uint64
}

// Name implements Scenario.
func (spec LocalSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec LocalSpec) Describe() string { return spec.Title }

// Jobs enumerates one job per (depth, token) grid point.
func (spec LocalSpec) Jobs() []Job {
	enc := video.CachedVBR(spec.Clip, units.BitRate(spec.CapKbps)*units.Kbps)
	var jobs []Job
	for _, depth := range spec.Depths {
		for _, tok := range spec.Tokens {
			depth, tok := depth, tok
			jobs = append(jobs, func(ctx *Ctx) Point {
				return runLocalPoint(ctx, enc, tok, depth, spec.UseShaper, spec.UseTCP, spec.Seed)
			})
		}
	}
	return jobs
}

// Assemble implements Scenario: one series per depth.
func (spec LocalSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	for di, depth := range spec.Depths {
		s := Series{Label: fmt.Sprintf("B=%d", int64(depth))}
		s.Points = append(s.Points, results[di*len(spec.Tokens):(di+1)*len(spec.Tokens)]...)
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Scaled implements Scalable.
func (spec LocalSpec) Scaled(n int) Scenario {
	spec.Tokens = Scale(spec.Tokens, n)
	return spec
}

// Run regenerates the figure on a default-size runner pool.
func (spec LocalSpec) Run() *Figure { return RunScenario(spec, 0) }

// RunLocalPoint streams enc through the local testbed and evaluates.
func RunLocalPoint(enc *video.Encoding, tok units.BitRate, depth units.ByteSize, useShaper, useTCP bool, seed uint64) Point {
	return RunLocalPointArena(nil, enc, tok, depth, useShaper, useTCP, seed)
}

// RunLocalPointArena is RunLocalPoint on a caller-owned packet arena.
func RunLocalPointArena(pool *packet.Pool, enc *video.Encoding, tok units.BitRate, depth units.ByteSize, useShaper, useTCP bool, seed uint64) Point {
	return runLocalPoint(&Ctx{Pool: pool}, enc, tok, depth, useShaper, useTCP, seed)
}

func runLocalPoint(ctx *Ctx, enc *video.Encoding, tok units.BitRate, depth units.ByteSize, useShaper, useTCP bool, seed uint64) Point {
	rec := ctx.NewRecorder()
	l := topology.BuildLocal(topology.LocalConfig{
		Seed: seed, Enc: enc, TokenRate: tok, Depth: depth,
		UseTCP: useTCP, UseShaper: useShaper, Pool: ctx.Pool, Trace: rec,
		BucketWidth: ctx.BucketWidth,
	})
	if l.UDPClient != nil {
		// WMT's reduced message sizes mean one lost packet damages a
		// frame instead of voiding a whole fragmented datagram (§2.2).
		l.UDPClient.Tolerance = client.SliceTolerance
	}
	l.Run()
	if err := ctx.SaveTrace(pointLabel(tok, depth, seed), rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}
	ev := Evaluate(l.Trace(), enc, enc)
	if l.Policer != nil {
		ev.PacketLoss = l.Policer.LossFraction()
	}
	pt := Point{TokenRate: tok, Depth: depth, Evaluation: ev, Events: l.Sim.Fired()}
	fillQueueStats(&pt, l.Sim)
	return pt
}
