package experiment

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/video"
)

// The differential equivalence harness: a batched nflow grid point
// must be byte-identical to the unbatched one — same per-flow
// delivered packet and byte counts, same per-flow policer verdicts,
// same bottleneck totals, and bit-identical quality figures. This is
// the contract that lets nflow-wide sweep to hundreds of virtual
// flows on the batched source without changing what is measured.

// runNFlowPoint builds and runs one nflow grid point at the
// registered scenario's configuration, batched or not.
func runNFlowPoint(n int, batch bool) (*topology.MultiFlow, []Evaluation) {
	spec := NFlowSweepSpec()
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	m := topology.BuildMultiFlow(topology.MultiFlowConfig{
		Seed: spec.Seed, Enc: enc, N: n,
		TokenRate: spec.TokenRate, Depth: spec.Depth,
		BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
		BELoad: spec.BELoad, Batch: batch,
	})
	m.Run()
	evs := make([]Evaluation, n)
	for i, cl := range m.Clients {
		evs[i] = Evaluate(cl.Trace(), enc, enc)
	}
	return m, evs
}

func TestBatchedNFlowEquivalence(t *testing.T) {
	t.Parallel()
	for _, n := range []int{2, 4, 8} {
		n := n
		t.Run(map[int]string{2: "N=2", 4: "N=4", 8: "N=8"}[n], func(t *testing.T) {
			t.Parallel()
			mu, evu := runNFlowPoint(n, false)
			mb, evb := runNFlowPoint(n, true)
			for i := 0; i < n; i++ {
				if mu.Clients[i].Packets != mb.Clients[i].Packets ||
					mu.Clients[i].PacketsBytes != mb.Clients[i].PacketsBytes {
					t.Errorf("flow %d delivered: unbatched %d pkts/%d B, batched %d pkts/%d B",
						i, mu.Clients[i].Packets, mu.Clients[i].PacketsBytes,
						mb.Clients[i].Packets, mb.Clients[i].PacketsBytes)
				}
				pu, pb := mu.Policers[i], mb.Policers[i]
				if pu.Passed != pb.Passed || pu.Dropped != pb.Dropped ||
					pu.PassedBytes != pb.PassedBytes || pu.DroppedBytes != pb.DroppedBytes {
					t.Errorf("flow %d policer: unbatched pass=%d drop=%d (%d/%d B), batched pass=%d drop=%d (%d/%d B)",
						i, pu.Passed, pu.Dropped, pu.PassedBytes, pu.DroppedBytes,
						pb.Passed, pb.Dropped, pb.PassedBytes, pb.DroppedBytes)
				}
				if evu[i] != evb[i] {
					t.Errorf("flow %d evaluation diverged:\nunbatched %+v\nbatched   %+v", i, evu[i], evb[i])
				}
			}
			if mu.Bottleneck.Sent != mb.Bottleneck.Sent ||
				mu.Bottleneck.SentBytes != mb.Bottleneck.SentBytes {
				t.Errorf("bottleneck: unbatched %d pkts/%d B, batched %d pkts/%d B",
					mu.Bottleneck.Sent, mu.Bottleneck.SentBytes,
					mb.Bottleneck.Sent, mb.Bottleneck.SentBytes)
			}
			// The point of batching: covering N flows with one source
			// must execute strictly fewer simulator events.
			if mb.Sim.Fired() >= mu.Sim.Fired() {
				t.Errorf("batched run fired %d events, unbatched %d — no source-side saving",
					mb.Sim.Fired(), mu.Sim.Fired())
			}
			// The batched source emitted the full schedule per flow.
			for i, sent := range mb.Batched.Sent {
				if sent != len(mb.Batched.Sched.Entries) {
					t.Errorf("virtual flow %d emitted %d of %d scheduled packets",
						i, sent, len(mb.Batched.Sched.Entries))
				}
			}
		})
	}
}

// TestBatchedWideConfigEquivalence extends the differential harness
// to the nflow-wide configuration (24 Mbps bottleneck, 53 ms
// stagger) at N=16 and N=32: per-flow delivered counts and the
// bottleneck totals must match the unbatched build exactly. At large
// N the wide config eventually realizes an exact same-instant
// cross-flow tie, where the batched fan-out's deterministic
// (time, flow) order and a real event queue's scheduling order
// legitimately differ — batched runs are then statistically
// equivalent samples rather than bit-equal ones (see the flowbatch
// package comment), so the exactness pin stops here;
// TestBatchedWideTieDivergence pins the first witnessed divergent
// grid point.
func TestBatchedWideConfigEquivalence(t *testing.T) {
	t.Parallel()
	spec := NFlowWideSpec()
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	run := func(n int, batch bool) *topology.MultiFlow {
		m := topology.BuildMultiFlow(topology.MultiFlowConfig{
			Seed: spec.Seed, Enc: enc, N: n,
			TokenRate: spec.TokenRate, Depth: spec.Depth,
			BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
			BELoad: spec.BELoad, Batch: batch, Stagger: spec.Stagger,
		})
		m.Run()
		return m
	}
	for _, n := range []int{16, 32} {
		n := n
		t.Run(map[int]string{16: "N=16", 32: "N=32"}[n], func(t *testing.T) {
			t.Parallel()
			mu, mb := run(n, false), run(n, true)
			for i := 0; i < n; i++ {
				if mu.Clients[i].Packets != mb.Clients[i].Packets ||
					mu.Clients[i].PacketsBytes != mb.Clients[i].PacketsBytes {
					t.Errorf("flow %d delivered: unbatched %d pkts/%d B, batched %d pkts/%d B",
						i, mu.Clients[i].Packets, mu.Clients[i].PacketsBytes,
						mb.Clients[i].Packets, mb.Clients[i].PacketsBytes)
				}
				pu, pb := mu.Policers[i], mb.Policers[i]
				if pu.Passed != pb.Passed || pu.Dropped != pb.Dropped ||
					pu.PassedBytes != pb.PassedBytes || pu.DroppedBytes != pb.DroppedBytes {
					t.Errorf("flow %d policer: unbatched pass=%d drop=%d (%d/%d B), batched pass=%d drop=%d (%d/%d B)",
						i, pu.Passed, pu.Dropped, pu.PassedBytes, pu.DroppedBytes,
						pb.Passed, pb.Dropped, pb.PassedBytes, pb.DroppedBytes)
				}
				eu := Evaluate(mu.Clients[i].Trace(), enc, enc)
				eb := Evaluate(mb.Clients[i].Trace(), enc, enc)
				if eu != eb {
					t.Errorf("flow %d evaluation diverged:\nunbatched %+v\nbatched   %+v", i, eu, eb)
				}
			}
			if mu.Bottleneck.Sent != mb.Bottleneck.Sent ||
				mu.Bottleneck.SentBytes != mb.Bottleneck.SentBytes {
				t.Errorf("bottleneck: unbatched %d pkts/%d B, batched %d pkts/%d B",
					mu.Bottleneck.Sent, mu.Bottleneck.SentBytes,
					mb.Bottleneck.Sent, mb.Bottleneck.SentBytes)
			}
		})
	}
}

// TestBatchedWideTieDivergence turns the documented large-N
// divergence from prose into a regression pin. On the wide config
// with the default seed, N=128 is the first scanned grid point where
// a same-instant cross-flow tie is realized and matters: the batched
// fan-out resolves it in (time, flow) order, a real event queue in
// scheduling-sequence order, and the bottleneck totals diverge (by a
// dozen packets out of ~192k). N=96 — also past the N≤32 exactness
// pin — still matches exactly. Both facts are deterministic given the
// seed; if either flips, the equivalence boundary documented in the
// flowbatch package comment has moved and the docs (and possibly the
// batcheq pin range) need re-deriving. Note the contrast with
// sharding: sharded-vs-serial is byte-identical at every N (see
// shardeq_test.go) because both sides resolve ties identically —
// batched-vs-unbatched is the only pairing with a divergence
// boundary.
func TestBatchedWideTieDivergence(t *testing.T) {
	if testing.Short() {
		t.Skip("unbatched N=128 wide run is slow; run without -short")
	}
	t.Parallel()
	spec := NFlowWideSpec()
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	run := func(n int, batch bool) *topology.MultiFlow {
		m := topology.BuildMultiFlow(topology.MultiFlowConfig{
			Seed: spec.Seed, Enc: enc, N: n,
			TokenRate: spec.TokenRate, Depth: spec.Depth,
			BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
			BELoad: spec.BELoad, Batch: batch, Stagger: spec.Stagger,
		})
		m.Run()
		return m
	}
	mu, mb := run(96, false), run(96, true)
	if mu.Bottleneck.Sent != mb.Bottleneck.Sent ||
		mu.Bottleneck.SentBytes != mb.Bottleneck.SentBytes {
		t.Errorf("N=96 diverged (%d/%d vs %d/%d pkts/B) — exactness boundary moved below the documented N=128",
			mu.Bottleneck.Sent, mu.Bottleneck.SentBytes,
			mb.Bottleneck.Sent, mb.Bottleneck.SentBytes)
	}
	mu, mb = run(128, false), run(128, true)
	if mu.Bottleneck.Sent == mb.Bottleneck.Sent &&
		mu.Bottleneck.SentBytes == mb.Bottleneck.SentBytes {
		t.Errorf("N=128 stayed bit-equal (%d pkts/%d B) — the documented tie divergence no longer reproduces; re-derive the boundary",
			mu.Bottleneck.Sent, mu.Bottleneck.SentBytes)
	}
}

// TestNFlowWideRegistered pins the wide-aggregate scenario's
// registration and its batched, large-N shape.
func TestNFlowWideRegistered(t *testing.T) {
	s := Lookup("nflow-wide")
	if s == nil {
		t.Fatal("nflow-wide not registered")
	}
	spec, ok := s.(MultiFlowSpec)
	if !ok {
		t.Fatalf("nflow-wide is %T, want MultiFlowSpec", s)
	}
	if !spec.Batch {
		t.Error("nflow-wide is not batched")
	}
	if max := spec.Ns[len(spec.Ns)-1]; max < 256 {
		t.Errorf("nflow-wide tops out at N=%d, want >= 256", max)
	}
	if _, ok := s.(Scalable); !ok {
		t.Error("nflow-wide is not Scalable")
	}
	// The spec's own Jobs must actually run on the batched source —
	// the knob reaching BuildMultiFlow is exactly what this guards
	// (same figure as an unbatched run, strictly fewer events).
	reduced := spec
	reduced.Ns = []int{4}
	batchedPt := reduced.Jobs()[0](&Ctx{})
	unb := reduced
	unb.Batch = false
	unbatchedPt := unb.Jobs()[0](&Ctx{})
	if batchedPt.Quality != unbatchedPt.Quality || batchedPt.FrameLoss != unbatchedPt.FrameLoss {
		t.Errorf("registered spec's batched point diverged: batched %+v vs unbatched %+v",
			batchedPt.Evaluation, unbatchedPt.Evaluation)
	}
	if batchedPt.Events >= unbatchedPt.Events {
		t.Errorf("registered spec's jobs fired %d events, unbatched %d — Batch knob not reaching the topology",
			batchedPt.Events, unbatchedPt.Events)
	}
}
