package experiment

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/atomicfile"
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/runner"
	"repro/internal/units"
)

// Scenario is a paper experiment decomposed for the runner: a figure
// (or figure family) whose points are independent simulation jobs.
//
// Jobs returns one closure per point of the figure grid; each closure
// builds its own simulator, so the slice can be executed on any number
// of goroutines. Assemble receives the results **in job order** —
// results[i] is what Jobs()[i] returned — and folds them back into the
// figure. Because the fold only depends on the (deterministic) results
// and their order, a Scenario produces byte-identical output at every
// parallelism level.
type Scenario interface {
	// Name is the registry key, e.g. "fig7".
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Jobs enumerates the independent simulation jobs of the grid.
	Jobs() []Job
	// Assemble folds job results (ordered by job index) into the figure.
	Assemble(results []Point) *Figure
}

// Job is one independent simulation: it runs a full (possibly
// seed-averaged) experiment and reduces it to a Point. The Ctx is
// owned by the executing worker: its Pool is the worker's packet
// arena, reused across consecutive jobs so pools never cross
// goroutines and steady-state jobs allocate no packets; its Trace is
// the run-wide trace request (nil in the common untraced case). Jobs
// must build their simulation on the given pool (or ignore it and pay
// the allocations), and may save a bounded packet trace through the
// Ctx when tracing is requested.
type Job func(ctx *Ctx) Point

// Ctx is what the runner hands each job.
type Ctx struct {
	Pool  *packet.Pool
	Trace *TraceRequest

	// Shards is the intra-run shard count each job should request from
	// its topology (dsbench -shards). <= 1 runs every simulation
	// serially; the assembled figure is byte-identical either way (the
	// shardeq harness pins this), so the knob trades cores-per-job
	// against jobs-in-flight without touching results.
	Shards int

	// BucketWidth overrides the calendar-queue bucket width of each
	// job's simulator (dsbench -bucket-width; 0 keeps the scenario's or
	// simulator's default). A pure performance knob: results are
	// byte-identical at any width.
	BucketWidth units.Time
}

// NewRecorder returns a bounded packet-trace recorder per the run's
// trace request, or nil when tracing is off — which is exactly the
// nil Tap the topology layer interprets as "disabled". When the
// request asks for spilling, the recorder streams its capture to a
// temporary file in the trace directory as the run progresses;
// SaveTrace seals and renames it into place.
func (c *Ctx) NewRecorder() *ptrace.Recorder {
	if c == nil || c.Trace == nil {
		return nil
	}
	rec := ptrace.NewRecorder(c.Trace.Config)
	if c.Trace.Spill {
		if err := c.Trace.startSpill(rec); err != nil {
			panic(fmt.Sprintf("experiment: trace spill: %v", err))
		}
	}
	return rec
}

// SaveTrace writes rec under the trace directory as
// "<scenario>-<label>.ptrace". A nil recorder is a no-op, so call
// sites need no tracing-enabled guard of their own.
func (c *Ctx) SaveTrace(label string, rec *ptrace.Recorder) error {
	if rec == nil || c == nil || c.Trace == nil {
		return nil
	}
	return c.Trace.save(label, rec)
}

// TraceRequest asks a scenario run to dump per-point packet traces:
// each traced job records into a bounded ptrace.Recorder and writes
// one .ptrace file per point into Dir. The request is shared by every
// worker; concurrent saves are safe because every grid point labels a
// distinct file (jobs must include any extra grid dimension in the
// label), and the shared file list is mutex-guarded.
type TraceRequest struct {
	Dir    string
	Config ptrace.Config

	// Format selects the on-disk encoding: "jsonl" (the default,
	// ptrace v1) or "v2" (binary). Spilled traces are always v2 — the
	// JSONL header carries the event count up front, so it cannot be
	// streamed during a run.
	Format string

	// Spill streams every capture-surviving event to disk as the run
	// progresses, unbounded by Config.Capacity: the complete filtered
	// capture lands in the .ptrace file while the in-RAM ring stays at
	// its fixed size. Sampling (Config.Sample) still applies, which is
	// what keeps a fleet-scale spill file's size in hand.
	Spill bool

	// Digest writes a "<scenario>-<label>.digest" beside every sealed
	// .ptrace — the bounded ptrace.Summary serialized by
	// ptrace.WriteSummary — so a run can be gated against a stored
	// golden with `dstrace -compare-golden`.
	Digest bool

	scenario string
	mu       sync.Mutex
	files    []string
	spills   map[*ptrace.Recorder]*spillState
}

// spillState is one recorder's open spill file, held until SaveTrace
// seals and renames it.
type spillState struct {
	f  *os.File
	bw *bufio.Writer
}

// startSpill opens a temporary spill file next to the final trace
// location (same directory, so the sealing rename stays atomic) and
// attaches it to the recorder.
func (tr *TraceRequest) startSpill(rec *ptrace.Recorder) error {
	f, err := os.CreateTemp(tr.Dir, ".spill-*")
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	rec.SpillTo(bw)
	tr.mu.Lock()
	if tr.spills == nil {
		tr.spills = map[*ptrace.Recorder]*spillState{}
	}
	tr.spills[rec] = &spillState{f: f, bw: bw}
	tr.mu.Unlock()
	return nil
}

// Files lists the trace files written so far (base names).
func (tr *TraceRequest) Files() []string {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return append([]string(nil), tr.files...)
}

// sanitizeLabel keeps file names shell-friendly.
func sanitizeLabel(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '.', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

// save writes the recorder's capture to its final name atomically:
// the bytes land in a temporary file in the same directory and only an
// os.Rename publishes them, so a crashed or interrupted run never
// leaves a half-written .ptrace that a later dstrace would trip over.
// Spilled recorders already streamed their events; save seals the v2
// trailer and renames the spill file into place.
func (tr *TraceRequest) save(label string, rec *ptrace.Recorder) error {
	name := sanitizeLabel(tr.scenario + "-" + label + ".ptrace")
	path := filepath.Join(tr.Dir, name)

	tr.mu.Lock()
	sp := tr.spills[rec]
	delete(tr.spills, rec)
	tr.mu.Unlock()

	if sp != nil {
		err := rec.FinishSpill()
		if ferr := sp.bw.Flush(); err == nil {
			err = ferr
		}
		if cerr := sp.f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(sp.f.Name(), path)
		}
		if err != nil {
			os.Remove(sp.f.Name())
			return err
		}
	} else {
		d := rec.Data()
		err := atomicfile.WriteTo(path, func(w io.Writer) error {
			var werr error
			if tr.Format == "v2" {
				_, werr = d.WriteV2To(w)
			} else {
				_, werr = d.WriteTo(w)
			}
			return werr
		})
		if err != nil {
			return err
		}
	}
	if tr.Digest {
		if err := tr.writeDigest(path); err != nil {
			return err
		}
	}
	tr.mu.Lock()
	tr.files = append(tr.files, name)
	tr.mu.Unlock()
	return nil
}

// writeDigest re-reads the sealed trace (spilled traces never held the
// full capture in memory, so the file is the only complete source) and
// publishes its bounded summary beside it.
func (tr *TraceRequest) writeDigest(tracePath string) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer f.Close()
	s, _, err := ptrace.AnalyzeStream(f, 0)
	if err != nil {
		return err
	}
	digestPath := strings.TrimSuffix(tracePath, ".ptrace") + ".digest"
	return atomicfile.WriteTo(digestPath, func(w io.Writer) error {
		return ptrace.WriteSummary(w, s)
	})
}

// Scalable is implemented by scenarios whose token sweep can be
// thinned for quick passes (dsbench -scale).
type Scalable interface {
	Scenario
	// Scaled returns a copy keeping every n-th token-sweep point.
	Scaled(n int) Scenario
}

// ShardCapable is implemented by scenarios whose jobs honor the
// intra-run shard knob (RunOptions.Shards / dsbench -shards).
// Scenarios without the method would silently run serial under
// -shards, so dsbench rejects the combination up front instead.
type ShardCapable interface {
	Scenario
	// SupportsShards reports whether the scenario's jobs dispatch to a
	// sharded pipeline when Ctx.Shards > 1.
	SupportsShards() bool
}

// SupportsSharding reports whether s honors the intra-run shard knob.
func SupportsSharding(s Scenario) bool {
	sc, ok := s.(ShardCapable)
	return ok && sc.SupportsShards()
}

// RunScenario executes the scenario's jobs on a runner pool of the
// given size (<= 0 means GOMAXPROCS, 1 means strictly serial) and
// assembles the figure. This is the single execution path for every
// figure: the serial and parallel cases differ only in worker count,
// never in result.
func RunScenario(s Scenario, parallel int) *Figure {
	return RunScenarioTrace(s, parallel, nil)
}

// RunScenarioTrace is RunScenario with an optional per-point packet
// trace request (dsbench -trace). Tracing is pure observation: the
// assembled figure is byte-identical with tr nil or set.
func RunScenarioTrace(s Scenario, parallel int, tr *TraceRequest) *Figure {
	return RunScenarioOpts(s, RunOptions{Parallel: parallel, Trace: tr})
}

// RunOptions bundles the execution knobs of a scenario run. The
// zero value is the default serial-result configuration: a
// GOMAXPROCS-sized job pool, no tracing, serial (unsharded) jobs.
type RunOptions struct {
	// Parallel is the job-pool size (<= 0 means GOMAXPROCS, 1 strictly
	// serial).
	Parallel int
	// Trace requests per-point packet traces.
	Trace *TraceRequest
	// Shards asks each job to run its simulation on the intra-run
	// sharded pipeline with this many shards (<= 1 serial). Results
	// are byte-identical at any value.
	Shards int
	// BucketWidth overrides each job's calendar-queue bucket width
	// (0 keeps defaults). Results are byte-identical at any width.
	BucketWidth units.Time
}

// RunScenarioOpts executes the scenario's jobs under the given
// options and assembles the figure. This is the single execution path
// for every figure: parallelism level, tracing, and intra-run
// sharding never change the assembled result.
func RunScenarioOpts(s Scenario, opts RunOptions) *Figure {
	if tr := opts.Trace; tr != nil {
		tr.scenario = s.Name()
		if err := os.MkdirAll(tr.Dir, 0o755); err != nil {
			panic(fmt.Sprintf("experiment: trace dir: %v", err))
		}
	}
	jobs := s.Jobs()
	fns := make([]func(*Ctx) Point, len(jobs))
	for i, j := range jobs {
		fns[i] = j
	}
	newCtx := func() *Ctx {
		return &Ctx{Pool: packet.NewPool(), Trace: opts.Trace, Shards: opts.Shards,
			BucketWidth: opts.BucketWidth}
	}
	return s.Assemble(runner.MapArena(opts.Parallel, newCtx, fns))
}

// The scenario registry. Scenarios register at init time (figures.go);
// commands list and select them by name.
var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario under its Name. Registering an empty or
// duplicate name panics: both are wiring bugs worth failing loudly on.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("experiment: Register with empty scenario name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiment: duplicate scenario %q", name))
	}
	registry[name] = s
}

// Lookup returns the scenario registered under name, or nil.
func Lookup(name string) Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name]
}

// Names lists the registered scenario names in natural order: "fig7"
// sorts before "fig10", so listings read in paper order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return naturalLess(out[i], out[j]) })
	return out
}

// naturalLess compares names numerically where both share a leading
// alphabetic prefix with a trailing integer ("fig7" < "fig10").
func naturalLess(a, b string) bool {
	pa, na, oka := splitTrailingInt(a)
	pb, nb, okb := splitTrailingInt(b)
	if oka && okb && pa == pb {
		return na < nb
	}
	return a < b
}

func splitTrailingInt(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n, true
}

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario {
	names := Names()
	out := make([]Scenario, len(names))
	for i, n := range names {
		out[i] = Lookup(n)
	}
	return out
}
