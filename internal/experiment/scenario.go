package experiment

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/packet"
	"repro/internal/runner"
)

// Scenario is a paper experiment decomposed for the runner: a figure
// (or figure family) whose points are independent simulation jobs.
//
// Jobs returns one closure per point of the figure grid; each closure
// builds its own simulator, so the slice can be executed on any number
// of goroutines. Assemble receives the results **in job order** —
// results[i] is what Jobs()[i] returned — and folds them back into the
// figure. Because the fold only depends on the (deterministic) results
// and their order, a Scenario produces byte-identical output at every
// parallelism level.
type Scenario interface {
	// Name is the registry key, e.g. "fig7".
	Name() string
	// Describe is a one-line summary for listings.
	Describe() string
	// Jobs enumerates the independent simulation jobs of the grid.
	Jobs() []Job
	// Assemble folds job results (ordered by job index) into the figure.
	Assemble(results []Point) *Figure
}

// Job is one independent simulation: it runs a full (possibly
// seed-averaged) experiment and reduces it to a Point. The pool is
// the executing worker's packet arena — each runner worker owns one
// and reuses it across consecutive jobs, so pools never cross
// goroutines and steady-state jobs allocate no packets. Jobs must
// build their simulation on the given pool (or ignore it and pay the
// allocations).
type Job func(pool *packet.Pool) Point

// Scalable is implemented by scenarios whose token sweep can be
// thinned for quick passes (dsbench -scale).
type Scalable interface {
	Scenario
	// Scaled returns a copy keeping every n-th token-sweep point.
	Scaled(n int) Scenario
}

// RunScenario executes the scenario's jobs on a runner pool of the
// given size (<= 0 means GOMAXPROCS, 1 means strictly serial) and
// assembles the figure. This is the single execution path for every
// figure: the serial and parallel cases differ only in worker count,
// never in result.
func RunScenario(s Scenario, parallel int) *Figure {
	jobs := s.Jobs()
	fns := make([]func(*packet.Pool) Point, len(jobs))
	for i, j := range jobs {
		fns[i] = j
	}
	return s.Assemble(runner.MapArena(parallel, packet.NewPool, fns))
}

// The scenario registry. Scenarios register at init time (figures.go);
// commands list and select them by name.
var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario under its Name. Registering an empty or
// duplicate name panics: both are wiring bugs worth failing loudly on.
func Register(s Scenario) {
	name := s.Name()
	if name == "" {
		panic("experiment: Register with empty scenario name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("experiment: duplicate scenario %q", name))
	}
	registry[name] = s
}

// Lookup returns the scenario registered under name, or nil.
func Lookup(name string) Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name]
}

// Names lists the registered scenario names in natural order: "fig7"
// sorts before "fig10", so listings read in paper order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return naturalLess(out[i], out[j]) })
	return out
}

// naturalLess compares names numerically where both share a leading
// alphabetic prefix with a trailing integer ("fig7" < "fig10").
func naturalLess(a, b string) bool {
	pa, na, oka := splitTrailingInt(a)
	pb, nb, okb := splitTrailingInt(b)
	if oka && okb && pa == pb {
		return na < nb
	}
	return a < b
}

func splitTrailingInt(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n, true
}

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario {
	names := Names()
	out := make([]Scenario, len(names))
	for i, n := range names {
		out[i] = Lookup(n)
	}
	return out
}
