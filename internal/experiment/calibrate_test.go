package experiment

import (
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

// TestCalibrationQBoneLost17 prints the Figure-7 style curve at a few
// rates; run with -v to inspect during model calibration.
func TestCalibrationQBoneLost17(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("calibration sweep")
	}
	clip := video.Lost()
	enc := video.EncodeCBR(clip, 1.7e6)
	max, avg, min := enc.RateStats()
	t.Logf("enc stats: max=%.0f avg=%.0f min=%.0f avgFrame=%.0f", max, avg, min, enc.AvgFrameSize())
	for _, depth := range []units.ByteSize{3000, 4500} {
		for _, tok := range []units.BitRate{1.2e6, 1.5e6, 1.7e6, 1.9e6, 2.1e6, 2.2e6} {
			p := RunQBonePoint(enc, enc, tok, depth, DefaultSeed, 0)
			t.Logf("B=%d tok=%v: pktloss=%.4f frameloss=%.4f quality=%.3f calfail=%d",
				int64(depth), tok, p.PacketLoss, p.FrameLoss, p.Quality, p.Calibration)
		}
	}
}
