package experiment

import (
	"testing"

	"repro/internal/units"
)

// The determinism contract of the runner-based experiment layer: for a
// fixed spec and seed, the assembled figure is byte-identical at every
// parallelism level. These tests are the acceptance criterion for
// `-parallel 1` vs `-parallel N`.

// quickQBone is a thinned QBone scenario small enough to run (twice)
// even under -short.
func quickQBone() Scenario {
	spec := Figure9Spec()
	spec.Tokens = []units.BitRate{1.05e6}
	spec.Runs = 1
	return spec
}

func TestRunScenarioParallelMatchesSerial(t *testing.T) {
	t.Parallel()
	s := quickQBone()
	serial := RunScenario(s, 1).Format()
	parallel := RunScenario(s, 8).Format()
	if serial != parallel {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

func TestRunScenarioParallelMatchesSerialLocal(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	spec := Figure15Spec()
	spec.Tokens = []units.BitRate{1.3e6}
	serial := RunScenario(spec, 1).Format()
	parallel := RunScenario(spec, 8).Format()
	if serial != parallel {
		t.Errorf("local testbed parallel output differs from serial:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestRunScenarioParallelMatchesSerialRelative(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	spec := Figure13Spec()
	spec.Tokens = []units.BitRate{1.2e6}
	spec.Runs = 1
	serial := RunScenario(spec, 1).Format()
	parallel := RunScenario(spec, 8).Format()
	if serial != parallel {
		t.Errorf("relative parallel output differs from serial:\n%s\nvs\n%s", serial, parallel)
	}
}

// TestJobsAssembleGridShape pins the job-index ↔ grid-cell mapping the
// Assemble implementations rely on.
func TestJobsAssembleGridShape(t *testing.T) {
	spec := Figure7Spec()
	jobs := spec.Jobs()
	want := len(spec.Depths) * len(spec.Tokens)
	if len(jobs) != want {
		t.Fatalf("QBone jobs = %d, want %d", len(jobs), want)
	}
	// Assemble a synthetic result set and check placement.
	results := make([]Point, want)
	for i := range results {
		results[i] = Point{TokenRate: units.BitRate(i)}
	}
	fig := spec.Assemble(results)
	if len(fig.Series) != len(spec.Depths) {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for di, s := range fig.Series {
		for ti, p := range s.Points {
			if int(p.TokenRate) != di*len(spec.Tokens)+ti {
				t.Fatalf("series %d point %d holds result %d — results not collected by index", di, ti, int(p.TokenRate))
			}
		}
	}

	rel := Figure13Spec()
	if n := len(rel.Jobs()); n != len(rel.EncRates)*len(rel.Tokens) {
		t.Errorf("relative jobs = %d, want %d", n, len(rel.EncRates)*len(rel.Tokens))
	}
	loc := Figure15Spec()
	if n := len(loc.Jobs()); n != len(loc.Depths)*len(loc.Tokens) {
		t.Errorf("local jobs = %d, want %d", n, len(loc.Depths)*len(loc.Tokens))
	}
}

func TestRegistryHasAllFigures(t *testing.T) {
	for _, name := range []string{"fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16"} {
		s := Lookup(name)
		if s == nil {
			t.Errorf("scenario %q not registered", name)
			continue
		}
		if s.Name() != name {
			t.Errorf("scenario %q reports Name %q", name, s.Name())
		}
		if s.Describe() == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if _, ok := s.(Scalable); !ok {
			t.Errorf("scenario %q is not Scalable", name)
		}
	}
	if Lookup("no-such-scenario") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if !naturalLess(names[i-1], names[i]) {
			t.Fatalf("Names not in natural order: %v", names)
		}
	}
}

func TestNaturalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"fig7", "fig10", true},
		{"fig10", "fig7", false},
		{"fig7", "fig7", false},
		{"abl-af", "fig7", true},
		{"table1", "table2", true},
		{"fig7x", "fig10", false}, // mixed suffix falls back to lexicographic
	}
	for _, c := range cases {
		if got := naturalLess(c.a, c.b); got != c.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Figure7Spec())
}

func TestScaledReturnsThinnedCopy(t *testing.T) {
	spec := Figure7Spec()
	thin := spec.Scaled(4).(QBoneSpec)
	if len(thin.Tokens) >= len(spec.Tokens) {
		t.Errorf("Scaled did not thin: %d vs %d", len(thin.Tokens), len(spec.Tokens))
	}
	if len(Figure7Spec().Tokens) != len(spec.Tokens) {
		t.Error("Scaled mutated the source spec")
	}
}
