package experiment

import (
	"fmt"
	"runtime"

	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// This file holds the first scenarios beyond the paper's single-flow
// figures, built on the declarative topology builder: an N-flow
// scaling sweep and a bottleneck-scheduler comparison. Both register
// in the scenario registry, so dsbench runs them on the parallel
// runner exactly like the paper figures.

func init() {
	Register(NFlowSweepSpec())
	Register(NFlowWideSpec())
	Register(SchedCompareSpecDefault())
}

// evaluateMultiFlow runs one multi-flow simulation and folds the
// per-flow traces into a Point: the embedded Evaluation is the
// across-flow mean, Flows keeps each flow's own scores. When the ctx
// requests tracing, the run's packet trace is saved under the label.
func evaluateMultiFlow(ctx *Ctx, cfg topology.MultiFlowConfig, enc *video.Encoding, label, traceLabel string, tok units.BitRate, depth units.ByteSize) Point {
	rec := ctx.NewRecorder()
	cfg.Trace = rec
	cfg.Shards = ctx.Shards
	if cfg.BucketWidth == 0 {
		cfg.BucketWidth = ctx.BucketWidth
	}
	m := topology.BuildMultiFlow(cfg)
	m.Run()
	if err := ctx.SaveTrace(traceLabel, rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}
	pt := Point{TokenRate: tok, Depth: depth, Label: label}
	for _, cl := range m.Clients {
		ev := Evaluate(cl.Trace(), enc, enc)
		pt.Flows = append(pt.Flows, ev)
		pt.FrameLoss += ev.FrameLoss
		pt.Quality += ev.Quality
		pt.Calibration += ev.Calibration
	}
	n := float64(len(pt.Flows))
	pt.FrameLoss /= n
	pt.Quality /= n
	pt.PacketLoss = m.AggregatePolicerLoss()
	// A sharded run splits the event count between the border simulator
	// and the shard-private ones; the sum is the comparable total.
	pt.Events = m.Sim.Fired() + m.Stats.ShardFired
	pt.VFlows = len(pt.Flows)
	pt.Shards = m.Stats.Shards
	pt.StallRatio = m.Stats.StallRatio
	// Live-heap sample right after the run (a peak proxy, meaningful at
	// -parallel 1): dsbench reports it per point as bytes per virtual
	// flow alongside the fleet sweeps'.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pt.HeapBytes = ms.HeapAlloc
	fillQueueStats(&pt, m.Sim)
	return pt
}

// worstFlow picks the flow with the worst (highest) quality index.
func worstFlow(p Point) Evaluation {
	worst := p.Evaluation
	for i, ev := range p.Flows {
		if i == 0 || ev.Quality > worst.Quality {
			worst = ev
		}
	}
	return worst
}

// MultiFlowSpec sweeps the number of concurrent video flows competing
// through one DiffServ bottleneck — the scenario family the paper's
// fixed single-flow testbeds could not express.
type MultiFlowSpec struct {
	Key   string
	ID    string
	Title string
	Clip  *video.Clip

	EncRate        units.BitRate
	Ns             []int // flow counts to sweep
	TokenRate      units.BitRate
	Depth          units.ByteSize
	BottleneckRate units.BitRate
	Sched          topology.BottleneckSched
	BELoad         float64
	Seed           uint64

	// Batch runs every point on the flow-batched fan-out source (one
	// simulated flow covering N virtual flows) instead of N paced
	// servers. Batched and unbatched points are byte-identical — the
	// differential harness in batcheq_test.go pins this — but batched
	// points pay the source-side cost once, which is what lets the
	// wide sweep reach hundreds of flows.
	Batch bool
	// Stagger overrides the per-flow start offset (0 keeps the
	// topology default of 331 ms).
	Stagger units.Time
}

// NFlowSweepSpec is the registered N-flow scenario: 1 Mbps Lost
// streams, each policed into EF at 1.3 Mbps, sharing a 6 Mbps strictly
// prioritized bottleneck — the sweep crosses the point where the EF
// aggregate overruns the link. The grid was re-tuned for the pooled
// post-PR3 core (~3.4× faster end to end): twice the N points of the
// original sweep, extending well past the overrun knee, for the same
// wall-clock budget the old grid cost on the slower engine.
func NFlowSweepSpec() MultiFlowSpec {
	return MultiFlowSpec{
		Key: "nflow", ID: "Scaling A",
		Title: "N Lost @ 1.0M flows through one 6 Mbps EF bottleneck",
		Clip:  video.Lost(), EncRate: 1.0e6,
		Ns:        []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16},
		TokenRate: 1.3e6, Depth: 4500,
		BottleneckRate: 6e6, Sched: topology.PriorityBottleneck,
		BELoad: 0.15, Seed: DefaultSeed,
	}
}

// Name implements Scenario.
func (spec MultiFlowSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec MultiFlowSpec) Describe() string { return spec.Title }

// Jobs enumerates one simulation per flow count.
func (spec MultiFlowSpec) Jobs() []Job {
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	var jobs []Job
	for _, n := range spec.Ns {
		n := n
		jobs = append(jobs, func(ctx *Ctx) Point {
			return evaluateMultiFlow(ctx, topology.MultiFlowConfig{
				Seed: spec.Seed, Enc: enc, N: n,
				TokenRate: spec.TokenRate, Depth: spec.Depth,
				BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
				BELoad: spec.BELoad, Pool: ctx.Pool,
				Batch: spec.Batch, Stagger: spec.Stagger,
			}, enc, fmt.Sprintf("N=%d", n), fmt.Sprintf("N%d", n), spec.TokenRate, spec.Depth)
		})
	}
	return jobs
}

// Assemble implements Scenario: a mean-across-flows series and a
// worst-flow series, one row per N.
func (spec MultiFlowSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title, XLabel: "Flows"}
	mean := Series{Label: "mean"}
	worst := Series{Label: "worst"}
	for _, p := range results {
		mean.Points = append(mean.Points, p)
		wp := p
		wp.Evaluation = worstFlow(p)
		wp.Flows = nil
		// Both series view the same simulation; only the mean series
		// carries its event and flow counts so figure-wide sums stay
		// exact.
		wp.Events = 0
		wp.VFlows = 0
		worst.Points = append(worst.Points, wp)
	}
	fig.Series = append(fig.Series, mean, worst)
	return fig
}

// Scaled implements Scalable: keep every n-th flow count (endpoints
// always).
func (spec MultiFlowSpec) Scaled(n int) Scenario {
	spec.Ns = scaleInts(spec.Ns, n)
	return spec
}

// SupportsShards implements ShardCapable: both the batched and the
// unbatched multi-flow runs dispatch to the sharded pipeline.
func (spec MultiFlowSpec) SupportsShards() bool { return true }

// Run regenerates the figure on a default-size runner pool.
func (spec MultiFlowSpec) Run() *Figure { return RunScenario(spec, 0) }

// NFlowWideSpec is the wide-aggregate N-flow scenario the paper's
// fixed testbeds (and the unbatched simulator) could not reach: the
// nflow configuration re-tuned for the batched fan-out source, N ∈
// {16, 64, 128, 256, 512} virtual flows into one 24 Mbps EF
// bottleneck — a pipe provisioned for roughly 20 policed flows, so
// the grid crosses the aggregate-overrun knee (N=16 healthy, N=64
// ~3x overrun, N=512 annihilation) instead of starting past it. The
// stagger is tightened from 331 ms to 53 ms (still coprime-ish with
// the 33.4 ms frame interval) so large sweeps actually overlap
// hundreds of concurrent flows instead of streaming past each other.
// Every point runs on one BatchedPaced source, so wall time and
// simulator events grow sublinearly in N (past the knee the
// bottleneck transmits at most a pipe's worth no matter how many
// flows feed it, and queue drops cost no events) — the
// BENCH_PR5.json trajectory records events per virtual flow falling
// as N grows.
func NFlowWideSpec() MultiFlowSpec {
	return MultiFlowSpec{
		Key: "nflow-wide", ID: "Scaling A2",
		Title: "Wide EF aggregates: N batched Lost @ 1.0M flows, one 24 Mbps bottleneck",
		Clip:  video.Lost(), EncRate: 1.0e6,
		Ns:        []int{16, 64, 128, 256, 512},
		TokenRate: 1.3e6, Depth: 4500,
		BottleneckRate: 24e6, Sched: topology.PriorityBottleneck,
		BELoad: 0.15, Seed: DefaultSeed,
		Batch: true, Stagger: 53 * units.Millisecond,
	}
}

// SchedCompareSpec compares bottleneck scheduling disciplines —
// strict priority vs DRR vs WFQ — at a fixed video load while the
// competing AF and best-effort aggregates sweep from light to
// overload. Priority protects EF unconditionally; DRR and WFQ cap the
// EF class at its configured share, so the overload rows expose the
// isolation-vs-fairness trade the PHB choice makes.
type SchedCompareSpec struct {
	Key   string
	ID    string
	Title string
	Clip  *video.Clip

	EncRate        units.BitRate
	N              int // concurrent video flows
	TokenRate      units.BitRate
	Depth          units.ByteSize
	BottleneckRate units.BitRate
	Loads          []float64 // total competing load fraction, split AF/BE
	Seed           uint64
}

// SchedCompareSpecDefault is the registered scheduler-comparison
// scenario. The load grid was re-tuned for the pooled post-PR3 core:
// seven load points from light load to 2× overload instead of the
// original three, resolving where each discipline's isolation breaks.
func SchedCompareSpecDefault() SchedCompareSpec {
	return SchedCompareSpec{
		Key: "schedcomp", ID: "Scaling B",
		Title: "Bottleneck schedulers under rising cross load (3× Lost @ 1.0M, 6 Mbps)",
		Clip:  video.Lost(), EncRate: 1.0e6,
		N:         3,
		TokenRate: 1.3e6, Depth: 4500,
		BottleneckRate: 6e6,
		Loads:          []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0},
		Seed:           DefaultSeed,
	}
}

// Name implements Scenario.
func (spec SchedCompareSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec SchedCompareSpec) Describe() string { return spec.Title }

// Jobs enumerates one simulation per (scheduler, load) grid point, in
// scheduler-major order.
func (spec SchedCompareSpec) Jobs() []Job {
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	var jobs []Job
	for _, sched := range topology.BottleneckSchedulers() {
		for _, load := range spec.Loads {
			sched, load := sched, load
			jobs = append(jobs, func(ctx *Ctx) Point {
				return evaluateMultiFlow(ctx, topology.MultiFlowConfig{
					Seed: spec.Seed, Enc: enc, N: spec.N,
					TokenRate: spec.TokenRate, Depth: spec.Depth,
					BottleneckRate: spec.BottleneckRate, Sched: sched,
					AFLoad: load / 2, BELoad: load / 2, Pool: ctx.Pool,
				}, enc, fmt.Sprintf("load=%.2f", load),
					fmt.Sprintf("%s-load%.2f", sched, load), spec.TokenRate, spec.Depth)
			})
		}
	}
	return jobs
}

// Assemble implements Scenario: one series per scheduler.
func (spec SchedCompareSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title, XLabel: "CrossLoad"}
	for si, sched := range topology.BottleneckSchedulers() {
		s := Series{Label: sched.String()}
		s.Points = append(s.Points, results[si*len(spec.Loads):(si+1)*len(spec.Loads)]...)
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Scaled implements Scalable: thin the load sweep.
func (spec SchedCompareSpec) Scaled(n int) Scenario {
	spec.Loads = scaleFloats(spec.Loads, n)
	return spec
}

// SupportsShards implements ShardCapable.
func (spec SchedCompareSpec) SupportsShards() bool { return true }

// Run regenerates the figure on a default-size runner pool.
func (spec SchedCompareSpec) Run() *Figure { return RunScenario(spec, 0) }

// scaleInts keeps every n-th entry, always keeping the endpoints.
func scaleInts(xs []int, n int) []int {
	if n <= 1 || len(xs) <= 2 {
		return xs
	}
	var out []int
	for i := 0; i < len(xs); i += n {
		out = append(out, xs[i])
	}
	if out[len(out)-1] != xs[len(xs)-1] {
		out = append(out, xs[len(xs)-1])
	}
	return out
}

// scaleFloats keeps every n-th entry, always keeping the endpoints.
func scaleFloats(xs []float64, n int) []float64 {
	if n <= 1 || len(xs) <= 2 {
		return xs
	}
	var out []float64
	for i := 0; i < len(xs); i += n {
		out = append(out, xs[i])
	}
	if out[len(out)-1] != xs[len(xs)-1] {
		out = append(out, xs[len(xs)-1])
	}
	return out
}
