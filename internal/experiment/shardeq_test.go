package experiment

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ptrace"
	"repro/internal/topology"
	"repro/internal/video"
)

// The sharding differential harness: an intra-run sharded grid point
// must be byte-identical to the serial one — same per-flow delivered
// packet and byte counts, same per-flow policer verdicts, same
// bottleneck totals, bit-equal quality figures, and an identical
// canonicalized .ptrace capture. This is the contract that makes
// `dsbench -shards` a pure throughput knob: the figure a sharded run
// assembles is the figure a serial run assembles, at every shard
// count. The tie standard is the flow-batching one (see
// internal/flowbatch): exact same-instant collisions between an
// injected delivery and a native border event are measure-zero on the
// tested grids.

// shardTrace builds the bounded verdict-masked recorder every harness
// run records into; canonicalized, two equivalent runs encode to
// identical bytes despite the process-global packet-id counters.
func shardTrace() *ptrace.Recorder {
	return ptrace.NewRecorder(ptrace.Config{Capacity: 1 << 16, Kinds: ptrace.VerdictKinds()})
}

func shardTraceBytes(t *testing.T, rec *ptrace.Recorder) []byte {
	t.Helper()
	d := rec.Data()
	ptrace.CanonicalizePacketIDs(d)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runShardedNFlowPoint builds and runs one multi-flow grid point at
// the given scenario spec's configuration with the given shard count
// (0 serial), recording a canonicalized trace.
func runShardedNFlowPoint(t *testing.T, spec MultiFlowSpec, n, shards int) (*topology.MultiFlow, []Evaluation, []byte) {
	t.Helper()
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	rec := shardTrace()
	m := topology.BuildMultiFlow(topology.MultiFlowConfig{
		Seed: spec.Seed, Enc: enc, N: n,
		TokenRate: spec.TokenRate, Depth: spec.Depth,
		BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
		BELoad: spec.BELoad, Batch: spec.Batch, Stagger: spec.Stagger,
		Trace: rec, Shards: shards,
	})
	m.Run()
	evs := make([]Evaluation, n)
	for i, cl := range m.Clients {
		evs[i] = Evaluate(cl.Trace(), enc, enc)
	}
	return m, evs, shardTraceBytes(t, rec)
}

// requireMultiFlowIdentical asserts the full byte-compare set between
// a serial reference run and a sharded run of the same point.
func requireMultiFlowIdentical(t *testing.T, label string, ref, got *topology.MultiFlow, refEv, gotEv []Evaluation, refTrace, gotTrace []byte) {
	t.Helper()
	for i := range ref.Clients {
		if ref.Clients[i].Packets != got.Clients[i].Packets ||
			ref.Clients[i].PacketsBytes != got.Clients[i].PacketsBytes {
			t.Errorf("%s: flow %d delivered: serial %d pkts/%d B, sharded %d pkts/%d B",
				label, i, ref.Clients[i].Packets, ref.Clients[i].PacketsBytes,
				got.Clients[i].Packets, got.Clients[i].PacketsBytes)
		}
		ps, pg := ref.Policers[i], got.Policers[i]
		if ps.Passed != pg.Passed || ps.Dropped != pg.Dropped ||
			ps.PassedBytes != pg.PassedBytes || ps.DroppedBytes != pg.DroppedBytes {
			t.Errorf("%s: flow %d policer: serial pass=%d drop=%d (%d/%d B), sharded pass=%d drop=%d (%d/%d B)",
				label, i, ps.Passed, ps.Dropped, ps.PassedBytes, ps.DroppedBytes,
				pg.Passed, pg.Dropped, pg.PassedBytes, pg.DroppedBytes)
		}
		if refEv[i] != gotEv[i] {
			t.Errorf("%s: flow %d evaluation diverged:\nserial  %+v\nsharded %+v",
				label, i, refEv[i], gotEv[i])
		}
	}
	if ref.Bottleneck.Sent != got.Bottleneck.Sent ||
		ref.Bottleneck.SentBytes != got.Bottleneck.SentBytes {
		t.Errorf("%s: bottleneck: serial %d pkts/%d B, sharded %d pkts/%d B",
			label, ref.Bottleneck.Sent, ref.Bottleneck.SentBytes,
			got.Bottleneck.Sent, got.Bottleneck.SentBytes)
	}
	if !bytes.Equal(refTrace, gotTrace) {
		t.Errorf("%s: canonicalized .ptrace captures differ (%d vs %d bytes)",
			label, len(refTrace), len(gotTrace))
	}
}

// TestShardedNFlowEquivalence pins sharded == serial on the nflow
// (unbatched, chain-clone mode) grid at 2–8 shards.
func TestShardedNFlowEquivalence(t *testing.T) {
	t.Parallel()
	spec := NFlowSweepSpec()
	for _, n := range []int{3, 6} {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			t.Parallel()
			ref, refEv, refTrace := runShardedNFlowPoint(t, spec, n, 0)
			for _, shards := range []int{2, 3, 8} {
				got, gotEv, gotTrace := runShardedNFlowPoint(t, spec, n, shards)
				if want := min(shards, n); got.Stats.Shards != want {
					t.Errorf("shards=%d: effective worker count %d, want %d",
						shards, got.Stats.Shards, want)
				}
				requireMultiFlowIdentical(t, fmt.Sprintf("shards=%d", shards),
					ref, got, refEv, gotEv, refTrace, gotTrace)
			}
		})
	}
}

// TestShardedNFlowWideEquivalence pins sharded == serial on the
// nflow-wide (batched, three-stage pipeline) grid at 2–8 shards.
func TestShardedNFlowWideEquivalence(t *testing.T) {
	t.Parallel()
	spec := NFlowWideSpec()
	ns := []int{16}
	if !testing.Short() {
		ns = append(ns, 64)
	}
	for _, n := range ns {
		n := n
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			t.Parallel()
			ref, refEv, refTrace := runShardedNFlowPoint(t, spec, n, 0)
			for _, shards := range []int{2, 4, 8} {
				got, gotEv, gotTrace := runShardedNFlowPoint(t, spec, n, shards)
				requireMultiFlowIdentical(t, fmt.Sprintf("shards=%d", shards),
					ref, got, refEv, gotEv, refTrace, gotTrace)
			}
		})
	}
}

// TestShardedTandemEquivalence pins sharded == serial on the tandem
// grid: one partitionable chain, so every requested count collapses
// to one worker plus the border — still byte-identical.
func TestShardedTandemEquivalence(t *testing.T) {
	t.Parallel()
	spec := TandemSweepSpec()
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	run := func(tok int, shards int) (*topology.Tandem, Evaluation, []byte) {
		rec := shardTrace()
		tn := topology.BuildTandem(topology.TandemConfig{
			Seed: spec.Seed, Enc: enc,
			TokenRate: spec.Tokens[tok], Depth: spec.Depth,
			SecondBorder: true, Trace: rec, Shards: shards,
		})
		tn.Run()
		return tn, Evaluate(tn.Client.Trace(), enc, enc), shardTraceBytes(t, rec)
	}
	for _, tok := range []int{0, len(spec.Tokens) - 1} {
		ref, refEv, refTrace := run(tok, 0)
		for _, shards := range []int{2, 8} {
			got, gotEv, gotTrace := run(tok, shards)
			label := fmt.Sprintf("tok=%d shards=%d", tok, shards)
			if refEv != gotEv {
				t.Errorf("%s: evaluation diverged:\nserial  %+v\nsharded %+v", label, refEv, gotEv)
			}
			if ref.Border1.Passed != got.Border1.Passed || ref.Border1.Dropped != got.Border1.Dropped ||
				ref.Border2.Passed != got.Border2.Passed || ref.Border2.Dropped != got.Border2.Dropped {
				t.Errorf("%s: border verdicts diverged", label)
			}
			if ref.Client.Packets != got.Client.Packets ||
				ref.Client.PacketsBytes != got.Client.PacketsBytes {
				t.Errorf("%s: client delivered %d pkts/%d B, want %d/%d", label,
					got.Client.Packets, got.Client.PacketsBytes,
					ref.Client.Packets, ref.Client.PacketsBytes)
			}
			if !bytes.Equal(refTrace, gotTrace) {
				t.Errorf("%s: canonicalized .ptrace captures differ", label)
			}
		}
	}
}

// TestShardsKnobReachesJobs pins the plumbing from RunOptions through
// Ctx into the topology configs: a sharded scenario job reports its
// effective shard count and stays figure-identical to the serial job.
func TestShardsKnobReachesJobs(t *testing.T) {
	t.Parallel()
	spec := NFlowWideSpec()
	spec.Ns = []int{8}
	serial := spec.Jobs()[0](&Ctx{})
	sharded := spec.Jobs()[0](&Ctx{Shards: 4})
	if sharded.Shards != 4 {
		t.Errorf("sharded point reports Shards=%d, want 4", sharded.Shards)
	}
	if serial.Shards != 1 {
		t.Errorf("serial point reports Shards=%d, want 1", serial.Shards)
	}
	if serial.Quality != sharded.Quality || serial.FrameLoss != sharded.FrameLoss ||
		serial.PacketLoss != sharded.PacketLoss {
		t.Errorf("sharded job diverged from serial:\nserial  %+v\nsharded %+v",
			serial.Evaluation, sharded.Evaluation)
	}
	for i := range serial.Flows {
		if serial.Flows[i] != sharded.Flows[i] {
			t.Errorf("flow %d evaluation diverged under sharding", i)
		}
	}
	// The tandem job path plumbs the knob through averagePoint's
	// untraced sibling contexts too.
	tspec := TandemSweepSpec()
	tspec.Tokens = tspec.Tokens[:1]
	tspec.Runs = 2
	ts := tspec.Jobs()[0](&Ctx{})
	tg := tspec.Jobs()[0](&Ctx{Shards: 2})
	if tg.Shards != 1 {
		t.Errorf("tandem sharded point reports Shards=%d, want 1 (single chain)", tg.Shards)
	}
	if ts.Quality != tg.Quality || ts.FrameLoss != tg.FrameLoss || ts.PacketLoss != tg.PacketLoss {
		t.Errorf("tandem sharded job diverged from serial:\nserial  %+v\nsharded %+v",
			ts.Evaluation, tg.Evaluation)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
