package experiment

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// The fleet scenario: the first sweep to reach six-figure virtual-flow
// counts. Where nflow-wide scales one homogeneous population, the
// fleet is a mixture of equivalence classes — a large population of
// ordinary viewers plus a smaller population of higher-rate elephants
// — run on the batched mixture fan-out with aggregated per-class
// statistics, so both simulation time and memory stay sublinear in N:
// each class pays its source-side cost once, the receive side is O(K)
// accumulators, and past the provisioning knee the bottleneck
// transmits at most a pipe's worth no matter how many flows feed it.

func init() {
	Register(NFlowFleetSpec())
}

// FleetClass parameterizes one equivalence class of the fleet: its
// content, encoding rate, share of the total population, and per-flow
// EF policing rate.
type FleetClass struct {
	Name      string
	Clip      *video.Clip
	EncRate   units.BitRate
	Share     float64 // fraction of the point's total flow count
	TokenRate units.BitRate
}

// FleetSpec sweeps the total virtual-flow count of a fixed-shape
// class mixture across the bottleneck's provisioning knee.
type FleetSpec struct {
	Key   string
	ID    string
	Title string

	Ns      []int // total virtual flows per point (split by class shares)
	Classes []FleetClass

	Depth          units.ByteSize
	BottleneckRate units.BitRate
	Sched          topology.BottleneckSched
	BELoad         float64
	Seed           uint64

	// Truncate caps each flow's emission schedule (the fleet streams a
	// clip prefix, not the whole clip — wall-clock scales with N, not
	// with N × clip length).
	Truncate units.Time
	// StartWindow spreads each class's flow starts uniformly over this
	// window (per-flow stagger = window / class population), so the
	// active-flow count — and with it the EF aggregate the bottleneck
	// sees — is independent of the per-flow stagger choice.
	StartWindow units.Time
}

// NFlowFleetSpec is the registered fleet scenario: 85% "viewers"
// (Lost @ 1.0 Mbps, policed at 1.3 Mbps) + 15% "elephants" (Dark @
// 1.5 Mbps, policed at 1.95 Mbps), N ∈ {10k … 200k} total flows, each
// streaming a 1 s clip prefix with starts spread over 4 s. With ~N/4
// flows active at once at ~1.1 Mbps mean policed rate, the 13 Gbps
// bottleneck is healthy at 10k, at its knee near 50k, and 2×/4×
// overloaded at 100k/200k — so the sweep records events per virtual
// flow falling past the knee (dropped packets cost no dequeue events)
// while bytes per virtual flow stay ~flat (O(K) receivers, O(1)
// per-flow source state).
func NFlowFleetSpec() FleetSpec {
	return FleetSpec{
		Key: "nflow-fleet", ID: "Scaling A3",
		Title: "Six-figure mixed fleets: batched viewer+elephant classes, aggregated stats",
		Ns:    []int{10000, 25000, 50000, 100000, 200000},
		Classes: []FleetClass{
			{Name: "viewers", Clip: video.Lost(), EncRate: 1.0e6, Share: 0.85, TokenRate: 1.3e6},
			{Name: "elephants", Clip: video.Dark(), EncRate: 1.5e6, Share: 0.15, TokenRate: 1.95e6},
		},
		Depth:          4500,
		BottleneckRate: 13e9, Sched: topology.PriorityBottleneck,
		// Under strict priority the best-effort aggregate never touches
		// EF delivery; a light load keeps the scenario honest without
		// dominating the event budget at 13 Gbps.
		BELoad: 0.02, Seed: DefaultSeed,
		Truncate:    units.Second,
		StartWindow: 4 * units.Second,
	}
}

// Name implements Scenario.
func (spec FleetSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec FleetSpec) Describe() string { return spec.Title }

// classesFor splits a total flow count by the class shares (the last
// class absorbs rounding) and lays out the per-class topology config.
func (spec FleetSpec) classesFor(n int) []topology.FlowClass {
	out := make([]topology.FlowClass, len(spec.Classes))
	rem := n
	for ci, fc := range spec.Classes {
		cn := int(float64(n)*fc.Share + 0.5)
		if ci == len(spec.Classes)-1 || cn > rem {
			cn = rem
		}
		rem -= cn
		stagger := units.Time(1)
		if cn > 0 {
			if stagger = spec.StartWindow / units.Time(cn); stagger <= 0 {
				stagger = 1
			}
		}
		out[ci] = topology.FlowClass{
			Name: fc.Name, Enc: video.CachedCBR(fc.Clip, fc.EncRate),
			N: cn, TokenRate: fc.TokenRate, Depth: spec.Depth,
			Truncate: spec.Truncate,
			Phase:    units.Time(ci) * units.Millisecond,
			Stagger:  stagger,
		}
	}
	return out
}

// Jobs enumerates one mixture simulation per total flow count. The
// calendar width is left adaptive (the PR 7 widthFor 1/N heuristic is
// retired): the simulator converges on the observed event spacing at
// every N, and dsbench -bucket-width still pins it manually.
func (spec FleetSpec) Jobs() []Job {
	var jobs []Job
	for _, n := range spec.Ns {
		n := n
		jobs = append(jobs, func(ctx *Ctx) Point {
			return evaluateFleet(ctx, topology.MultiFlowConfig{
				Seed: spec.Seed, Classes: spec.classesFor(n),
				Depth:          spec.Depth,
				BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
				BELoad: spec.BELoad, Pool: ctx.Pool,
				Batch: true, AggregateStats: true,
			}, fmt.Sprintf("N=%d", n), fmt.Sprintf("N%d", n))
		})
	}
	return jobs
}

// evaluateFleet runs one aggregated-stats mixture simulation and folds
// the per-class accumulators into a Point. The embedded FrameLoss is a
// packet-level proxy — 1 − delivered/scheduled across every class —
// because aggregated mode trades frame semantics for O(K) memory;
// Quality stays 0.
func evaluateFleet(ctx *Ctx, cfg topology.MultiFlowConfig, label, traceLabel string) Point {
	rec := ctx.NewRecorder()
	cfg.Trace = rec
	cfg.Shards = ctx.Shards
	if ctx.BucketWidth != 0 {
		cfg.BucketWidth = ctx.BucketWidth
	}
	start := time.Now()
	m := topology.BuildMultiFlow(cfg)
	m.Run()
	runWall := time.Since(start)
	if err := ctx.SaveTrace(traceLabel, rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}
	pt := Point{Label: label}
	var scheduled, delivered int64
	for ci, agg := range m.Aggregates {
		c := &m.Mixture.Classes[ci]
		cs := ClassStat{
			Name: m.ClassNames[ci], Flows: c.N,
			ScheduledPackets: int64(c.N) * int64(len(c.Sched.Entries)),
			ScheduledBytes:   int64(c.N) * c.Sched.Bytes,
			Packets:          agg.Packets, Bytes: agg.Bytes,
			DelayMeanMs: agg.Delay.Mean() * 1e3,
			DelayStdMs:  agg.Delay.Stddev() * 1e3,
			DelayP50Ms:  agg.DelayP50.Value() * 1e3,
			DelayP95Ms:  agg.DelayP95.Value() * 1e3,
			DelayP99Ms:  agg.DelayP99.Value() * 1e3,
		}
		scheduled += cs.ScheduledPackets
		delivered += cs.Packets
		pt.Classes = append(pt.Classes, cs)
	}
	if scheduled > 0 {
		pt.FrameLoss = 1 - float64(delivered)/float64(scheduled)
	}
	pt.PacketLoss = m.AggregatePolicerLoss()
	pt.Events = m.Sim.Fired() + m.Stats.ShardFired
	pt.VFlows = m.Mixture.TotalFlows()
	pt.Shards = m.Stats.Shards
	pt.StallRatio = m.Stats.StallRatio
	// Sampled after the run so the reading covers the simulation's live
	// set; a peak proxy that is meaningful at -parallel 1.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pt.HeapBytes = ms.HeapAlloc
	pt.RunMS = float64(runWall.Microseconds()) / 1000
	fillQueueStats(&pt, m.Sim)
	return pt
}

// Assemble implements Scenario: one row per total flow count. The
// Loss column is the packet-level delivery shortfall.
func (spec FleetSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title, XLabel: "Flows"}
	fig.Series = append(fig.Series, Series{Label: "fleet", Points: results})
	return fig
}

// Scaled implements Scalable: thin the flow-count sweep (endpoints
// always kept).
func (spec FleetSpec) Scaled(n int) Scenario {
	spec.Ns = scaleInts(spec.Ns, n)
	return spec
}

// SupportsShards implements ShardCapable: fleet points dispatch to the
// sharded mixture pipeline.
func (spec FleetSpec) SupportsShards() bool { return true }

// Run regenerates the figure on a default-size runner pool.
func (spec FleetSpec) Run() *Figure { return RunScenario(spec, 0) }
