package experiment

import (
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/video"
)

func reducedNFlow() MultiFlowSpec {
	spec := NFlowSweepSpec()
	spec.Ns = []int{1, 2}
	return spec
}

func reducedSchedCompare() SchedCompareSpec {
	spec := SchedCompareSpecDefault()
	spec.N = 2
	spec.Loads = []float64{1.2}
	return spec
}

func TestNFlowScenarioShape(t *testing.T) {
	t.Parallel()
	fig := RunScenario(reducedNFlow(), 0)
	if len(fig.Series) != 2 || fig.Series[0].Label != "mean" || fig.Series[1].Label != "worst" {
		t.Fatalf("series = %+v", fig.Series)
	}
	for si, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %d has %d points, want 2", si, len(s.Points))
		}
	}
	for i, want := range []string{"N=1", "N=2"} {
		p := fig.Series[0].Points[i]
		if p.Label != want {
			t.Errorf("point %d label %q, want %q", i, p.Label, want)
		}
		if len(p.Flows) != i+1 {
			t.Errorf("point %d carries %d flow evals, want %d", i, len(p.Flows), i+1)
		}
		if p.Quality < 0 || p.Quality > 1 {
			t.Errorf("point %d quality %v out of range", i, p.Quality)
		}
		worst := fig.Series[1].Points[i]
		if worst.Quality < p.Quality-1e-9 {
			t.Errorf("point %d: worst quality %v better than mean %v", i, worst.Quality, p.Quality)
		}
	}
	// The figure must render with N labels, not token rates.
	out := fig.Format()
	if !strings.Contains(out, "N=2") {
		t.Errorf("formatted figure lacks flow-count rows:\n%s", out)
	}
}

func TestNFlowDeterministicAcrossParallelism(t *testing.T) {
	t.Parallel()
	spec := reducedNFlow()
	serial := RunScenario(spec, 1).Format()
	parallel := RunScenario(spec, 8).Format()
	if serial != parallel {
		t.Errorf("nflow output depends on parallelism:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestSchedCompareScenarioShape(t *testing.T) {
	t.Parallel()
	fig := RunScenario(reducedSchedCompare(), 0)
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want 3 (priority/drr/wfq)", len(fig.Series))
	}
	for i, want := range []string{"priority", "drr", "wfq"} {
		if fig.Series[i].Label != want {
			t.Errorf("series %d label %q, want %q", i, fig.Series[i].Label, want)
		}
		if len(fig.Series[i].Points) != 1 {
			t.Fatalf("series %q has %d points, want 1", want, len(fig.Series[i].Points))
		}
		q := fig.Series[i].Points[0].Quality
		if q < 0 || q > 1 {
			t.Errorf("series %q quality %v out of range", want, q)
		}
	}
	// Under EF-overload cross traffic, strict priority must protect
	// the video at least as well as the share-capped schedulers.
	prio := fig.Series[0].Points[0].Quality
	for _, si := range []int{1, 2} {
		if fig.Series[si].Points[0].Quality+1e-9 < prio {
			t.Errorf("%s quality %v better than priority %v under overload — share cap not binding?",
				fig.Series[si].Label, fig.Series[si].Points[0].Quality, prio)
		}
	}
}

func TestScalingScenariosRegistered(t *testing.T) {
	for _, name := range []string{"nflow", "schedcomp"} {
		s := Lookup(name)
		if s == nil {
			t.Errorf("scenario %q not registered", name)
			continue
		}
		if _, ok := s.(Scalable); !ok {
			t.Errorf("scenario %q is not Scalable", name)
		}
	}
	// Scaled must thin interior points and keep endpoints.
	nf := NFlowSweepSpec().Scaled(2).(MultiFlowSpec)
	if len(nf.Ns) >= len(NFlowSweepSpec().Ns) || nf.Ns[len(nf.Ns)-1] != 16 {
		t.Errorf("nflow Scaled wrong: %v", nf.Ns)
	}
	sc := SchedCompareSpecDefault().Scaled(2).(SchedCompareSpec)
	if sc.Loads[len(sc.Loads)-1] != 2.0 {
		t.Errorf("schedcomp Scaled dropped the overload endpoint: %v", sc.Loads)
	}
}

func TestMultiFlowStaggerDesynchronizes(t *testing.T) {
	t.Parallel()
	// Two flows must not lose frames in lockstep: the staggered starts
	// plus per-flow jitter give each flow its own loss pattern when the
	// policer bites.
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	m := topology.BuildMultiFlow(topology.MultiFlowConfig{
		Seed: 11, Enc: enc, N: 2, TokenRate: 1.05e6, Depth: 3000,
		BottleneckRate: 6e6,
	})
	m.Run()
	if m.Policers[0].Dropped == 0 || m.Policers[1].Dropped == 0 {
		t.Skip("profile did not police at this seed — nothing to compare")
	}
	if m.Policers[0].Dropped == m.Policers[1].Dropped &&
		m.Clients[0].Packets == m.Clients[1].Packets {
		t.Errorf("flows behaved identically (drops %d/%d, packets %d/%d) — stagger ineffective",
			m.Policers[0].Dropped, m.Policers[1].Dropped,
			m.Clients[0].Packets, m.Clients[1].Packets)
	}
}
