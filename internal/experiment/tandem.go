package experiment

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// This file holds the multi-bottleneck scenario: the same stream
// policed at two tandem domain borders, compared against a
// single-border baseline. It is the first customer of the packet
// tracing subsystem — `dsbench -scenario tandem -trace DIR` dumps one
// bounded trace per point, and `dstrace` shows which border demoted
// or dropped what.

func init() {
	Register(TandemSweepSpec())
}

// TandemSpec sweeps the APS token rate through the two-border tandem
// topology, with a single-border series as the baseline. The gap
// between the series is the cost of EF burst accumulation: traffic
// that conformed at border 1 arrives at border 2 re-clocked by the
// first domain's queues and gets re-dropped against the very same
// profile.
type TandemSpec struct {
	Key   string
	ID    string
	Title string
	Clip  *video.Clip

	EncRate units.BitRate
	Tokens  []units.BitRate
	Depth   units.ByteSize
	Seed    uint64
	Runs    int // seeds averaged per point; 0 means 3
}

// TandemSweepSpec is the registered two-border scenario.
func TandemSweepSpec() TandemSpec {
	return TandemSpec{
		Key: "tandem", ID: "Scaling C",
		Title: "Tandem policed borders: burst accumulation vs one border (Lost @ 1.0M)",
		Clip:  video.Lost(), EncRate: 1.0e6,
		Tokens: TokenSweep(1000, 1600, 100),
		Depth:  3000,
		Seed:   DefaultSeed,
	}
}

// tandemVariants orders the two series: baseline first.
var tandemVariants = []struct {
	label        string
	secondBorder bool
}{
	{"1border", false},
	{"2border", true},
}

// Name implements Scenario.
func (spec TandemSpec) Name() string { return spec.Key }

// Describe implements Scenario.
func (spec TandemSpec) Describe() string { return spec.Title }

// Jobs enumerates one seed-averaged job per (variant, token) grid
// point, variant-major.
func (spec TandemSpec) Jobs() []Job {
	enc := video.CachedCBR(spec.Clip, spec.EncRate)
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var jobs []Job
	for _, v := range tandemVariants {
		for _, tok := range spec.Tokens {
			v, tok := v, tok
			jobs = append(jobs, func(ctx *Ctx) Point {
				return runTandemPointAvg(ctx, enc, tok, spec.Depth, v.secondBorder,
					v.label, spec.Seed, runs)
			})
		}
	}
	return jobs
}

// Assemble implements Scenario: one series per variant.
func (spec TandemSpec) Assemble(results []Point) *Figure {
	fig := &Figure{ID: spec.ID, Title: spec.Title}
	for vi, v := range tandemVariants {
		s := Series{Label: v.label}
		s.Points = append(s.Points, results[vi*len(spec.Tokens):(vi+1)*len(spec.Tokens)]...)
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Scaled implements Scalable.
func (spec TandemSpec) Scaled(n int) Scenario {
	spec.Tokens = Scale(spec.Tokens, n)
	return spec
}

// SupportsShards implements ShardCapable.
func (spec TandemSpec) SupportsShards() bool { return true }

// Run regenerates the figure on a default-size runner pool.
func (spec TandemSpec) Run() *Figure { return RunScenario(spec, 0) }

// runTandemPointAvg averages runTandemPoint over consecutive seeds
// through the shared averagePoint helper.
func runTandemPointAvg(ctx *Ctx, enc *video.Encoding, tok units.BitRate, depth units.ByteSize, secondBorder bool, variant string, seed uint64, runs int) Point {
	return averagePoint(ctx, tok, depth, seed, runs, func(c *Ctx, s uint64) Point {
		return runTandemPoint(c, enc, tok, depth, secondBorder, variant, s)
	})
}

// runTandemPoint streams one clip through the tandem topology.
// PacketLoss reports the loss across both borders combined — the
// second border's share is what the baseline series lacks.
func runTandemPoint(ctx *Ctx, enc *video.Encoding, tok units.BitRate, depth units.ByteSize, secondBorder bool, variant string, seed uint64) Point {
	rec := ctx.NewRecorder()
	t := topology.BuildTandem(topology.TandemConfig{
		Seed: seed, Enc: enc, TokenRate: tok, Depth: depth,
		SecondBorder: secondBorder, Pool: ctx.Pool, Trace: rec,
		Shards: ctx.Shards, BucketWidth: ctx.BucketWidth,
	})
	t.Run()
	if err := ctx.SaveTrace(variant+"-"+pointLabel(tok, depth, seed), rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}
	ev := Evaluate(t.Client.Trace(), enc, enc)
	// PacketLoss is the border-drop fraction of everything offered to
	// the policed path: both variants share the denominator
	// (border 1's input), so the series difference is exactly border
	// 2's re-drops. Drops between the borders (hop queues) are not a
	// policer verdict and are excluded here, as in every other
	// scenario's PacketLoss.
	offered := t.Border1.Passed + t.Border1.Dropped
	dropped := t.Border1.Dropped
	if t.Border2 != nil {
		dropped += t.Border2.Dropped
	}
	if offered > 0 {
		ev.PacketLoss = float64(dropped) / float64(offered)
	}
	pt := Point{TokenRate: tok, Depth: depth, Evaluation: ev,
		Events: t.Sim.Fired() + t.Stats.ShardFired,
		Shards: t.Stats.Shards, StallRatio: t.Stats.StallRatio}
	fillQueueStats(&pt, t.Sim)
	return pt
}
