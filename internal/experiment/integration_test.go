package experiment

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/client"
	"repro/internal/render"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/video"
	"repro/internal/vqm"
)

// TestOfflinePipelineViaTraceFile exercises the paper's actual
// workflow end to end: run a streaming experiment, serialize the frame
// timing trace to the ASCII format (the instrumented client's output
// file), read it back, and score it offline. The score must be
// identical to scoring the in-memory trace.
func TestOfflinePipelineViaTraceFile(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.5e6)
	q := topology.BuildQBone(topology.QBoneConfig{
		Seed: DefaultSeed, Enc: enc, TokenRate: 1.55e6, Depth: 3000,
	})
	q.Client.Tolerance = client.SliceTolerance
	q.Run()
	orig := q.Client.Trace()

	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	score := func(tr *trace.Trace) float64 {
		dec := client.DecodeMPEG(tr, enc)
		d := render.Conceal(dec, render.DefaultOptions())
		return vqm.ScoreSame(d, enc, vqm.Options{}).Index
	}
	a, b := score(orig), score(loaded)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("offline score %v != online score %v", b, a)
	}
	if a == 0 {
		t.Error("expected a non-trivial score at a tight profile")
	}
}

// TestSeedRobustness verifies the headline depth comparison holds
// across seeds, not just the published one — the reproduction's
// equivalent of the paper repeating runs.
func TestSeedRobustness(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	wins := 0
	const seeds = 4
	for s := uint64(0); s < seeds; s++ {
		p3 := RunQBonePoint(enc, enc, 1.75e6, 3000, 100+s, 0)
		p45 := RunQBonePoint(enc, enc, 1.75e6, 4500, 100+s, 0)
		if p45.Quality < p3.Quality {
			wins++
		}
	}
	if wins < seeds-1 {
		t.Errorf("B=4500 beat B=3000 in only %d of %d seeds", wins, seeds)
	}
}

// TestDeterministicFigures: the same spec run twice gives identical
// output, byte for byte — the property that makes EXPERIMENTS.md
// reproducible.
func TestDeterministicFigures(t *testing.T) {
	t.Parallel()
	spec := Figure9Spec()
	spec.Tokens = Scale(spec.Tokens, 8)
	spec.Runs = 1
	if testing.Short() {
		spec.Tokens = spec.Tokens[:1]
	}
	a := spec.Run().Format()
	b := spec.Run().Format()
	if a != b {
		t.Errorf("figure not reproducible:\n%s\nvs\n%s", a, b)
	}
}
