package experiment

import (
	"fmt"
	"strings"
)

// Plot renders a figure as an ASCII chart: token rate on the x axis,
// quality index (or frame loss) on the y axis, one glyph per series —
// a terminal-friendly stand-in for the paper's figure plots.
func (f *Figure) Plot(width, height int, lossInstead bool) string {
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	if len(f.Series) == 0 || len(f.Series[0].Points) == 0 {
		return f.ID + " (no data)\n"
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	// X range from the first series' token sweep.
	lo := float64(f.Series[0].Points[0].TokenRate)
	hi := lo
	for _, s := range f.Series {
		for _, p := range s.Points {
			v := float64(p.TokenRate)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			y := p.Quality
			if lossInstead {
				y = p.FrameLoss
			}
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			col := int((float64(p.TokenRate) - lo) / (hi - lo) * float64(width-1))
			row := int((1 - y) * float64(height-1))
			grid[row][col] = g
		}
	}

	metric := "quality index"
	if lossInstead {
		metric = "frame loss"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s; 1.0 top, 0.0 bottom)\n", f.ID, f.Title, metric)
	for r, row := range grid {
		label := "    "
		switch r {
		case 0:
			label = "1.0 "
		case height / 2:
			label = "0.5 "
		case height - 1:
			label = "0.0 "
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "    %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(&b, "    %-*s%s\n", width-8,
		fmt.Sprintf("%.0f kbps", lo/1000), fmt.Sprintf("%.0f kbps", hi/1000))
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Label))
	}
	fmt.Fprintf(&b, "    legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}
