package experiment

import "testing"

func TestAblationLocalTCP(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	out := AblationLocalTCP(DefaultSeed)
	t.Log("\n" + out)
	if out == "" {
		t.Fatal("empty")
	}
}
