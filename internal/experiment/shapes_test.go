package experiment

import (
	"strings"
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

// The tests in this file are the acceptance criteria of the
// reproduction: each asserts one of the paper's qualitative findings
// (see DESIGN.md "shape targets"). They run full simulations, so the
// heavier ones are skipped under -short.

func TestShapeTokenRateBelowEncodingRateIsUseless(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	p := RunQBonePoint(enc, enc, 1.2e6, 3000, DefaultSeed, 0)
	if p.Quality < 0.85 {
		t.Errorf("quality %v at 1.2M for a 1.7M stream — should be near worst", p.Quality)
	}
	if p.FrameLoss < 0.2 {
		t.Errorf("frame loss %v — sustained deficit should lose many frames", p.FrameLoss)
	}
}

func TestShapeDepth3000NeedsMaxRate(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	max, avg, _ := enc.RateStats()
	atAvg := RunQBonePoint(enc, enc, units.BitRate(avg), 3000, DefaultSeed, 0)
	atMax := RunQBonePoint(enc, enc, units.BitRate(max*1.05), 3000, DefaultSeed, 0)
	if atAvg.Quality < 0.12 {
		t.Errorf("B=3000 at the average rate scored %v — too good (§4.1 says it needs ≈max)", atAvg.Quality)
	}
	if atMax.Quality > 0.05 {
		t.Errorf("B=3000 above the max rate scored %v — should be near perfect", atMax.Quality)
	}
}

func TestShapeDepth4500AverageRateSuffices(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	_, avg, _ := enc.RateStats()
	// "a token rate set to the average (constant) encoding rate is
	// typically sufficient" — allow the ~3% IP-header overhead margin.
	p := RunQBonePoint(enc, enc, units.BitRate(avg*1.03), 4500, DefaultSeed, 0)
	if p.Quality > 0.15 {
		t.Errorf("B=4500 near the average rate scored %v, want ≈0", p.Quality)
	}
	// And B=3000 at the same rate must be clearly worse.
	p3 := RunQBonePoint(enc, enc, units.BitRate(avg*1.03), 3000, DefaultSeed, 0)
	if p3.Quality < p.Quality+0.05 {
		t.Errorf("depth made no difference at avg rate: B3000=%v B4500=%v", p3.Quality, p.Quality)
	}
}

func TestShapeNonlinearQualityVsLoss(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	// §4.1: below the cutoff, big frame-loss improvements barely move
	// quality (both poor); past it, quality improves much faster.
	enc := video.EncodeCBR(video.Dark(), 1.7e6)
	low := RunQBonePoint(enc, enc, 1.3e6, 3000, DefaultSeed, 0)
	mid := RunQBonePoint(enc, enc, 1.5e6, 3000, DefaultSeed, 0)
	high := RunQBonePoint(enc, enc, 2.0e6, 3000, DefaultSeed, 0)
	lossDrop1 := low.FrameLoss - mid.FrameLoss
	qualDrop1 := low.Quality - mid.Quality
	if lossDrop1 > 0.03 && qualDrop1 > 0.5*lossDrop1+0.3 {
		t.Errorf("below cutoff quality moved too fast: Δloss=%v Δq=%v", lossDrop1, qualDrop1)
	}
	qualDrop2 := mid.Quality - high.Quality
	lossDrop2 := mid.FrameLoss - high.FrameLoss
	if qualDrop2 < lossDrop2 {
		t.Errorf("past cutoff quality (%v) should improve faster than loss (%v)", qualDrop2, lossDrop2)
	}
	if low.Quality < 0.8 || high.Quality > 0.35 {
		t.Errorf("cutoff endpoints wrong: low=%v high=%v", low.Quality, high.Quality)
	}
}

func TestShapeBestEncodingIsLargestBelowTokenRate(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	clip := video.Lost()
	ref := video.EncodeCBR(clip, 1.7e6)
	encs := map[string]*video.Encoding{
		"1.0M": video.EncodeCBR(clip, 1.0e6),
		"1.5M": video.EncodeCBR(clip, 1.5e6),
		"1.7M": ref,
	}
	score := func(name string, tok units.BitRate) float64 {
		return RunQBonePoint(encs[name], ref, tok, 3000, DefaultSeed, 0).Quality
	}
	// At 1.2 Mbps the 1.0M encoding must win.
	if q10, q15 := score("1.0M", 1.2e6), score("1.5M", 1.2e6); q10 >= q15 {
		t.Errorf("at 1.2M: 1.0M=%v not better than 1.5M=%v", q10, q15)
	}
	// At 1.9 Mbps the 1.5M encoding must beat 1.0M (coding quality)
	// and 1.7M (still policed).
	q10, q15, q17 := score("1.0M", 1.9e6), score("1.5M", 1.9e6), score("1.7M", 1.9e6)
	if q15 >= q10 {
		t.Errorf("at 1.9M: 1.5M=%v not better than 1.0M=%v", q15, q10)
	}
	if q15 >= q17 {
		t.Errorf("at 1.9M: 1.5M=%v not better than still-policed 1.7M=%v", q15, q17)
	}
	// At 2.2 Mbps the 1.7M encoding must win outright.
	if q17, q15 := score("1.7M", 2.2e6), score("1.5M", 2.2e6); q17 >= q15 {
		t.Errorf("at 2.2M: 1.7M=%v not better than 1.5M=%v", q17, q15)
	}
}

func TestShapeLocalDepthGapIsLarge(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	// §4.2: the 3000→4500 improvement is much larger with the bursty
	// VBR server than on the QBone; B=3000 never reaches 0 even at
	// twice the cap, B=4500 is near 0 from moderate rates.
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	b3 := RunLocalPoint(enc, 2.1e6, 3000, false, false, DefaultSeed)
	b45 := RunLocalPoint(enc, 2.1e6, 4500, false, false, DefaultSeed)
	if b3.Quality < 0.15 {
		t.Errorf("B=3000 at 2.1M scored %v — paper could not reach 0 there", b3.Quality)
	}
	if b45.Quality > 0.05 {
		t.Errorf("B=4500 at 2.1M scored %v, want ≈0", b45.Quality)
	}
	if b3.Quality-b45.Quality < 0.15 {
		t.Errorf("local depth gap too small: %v vs %v", b3.Quality, b45.Quality)
	}
}

func TestShapeShapingHelps(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	dropOnly := RunLocalPoint(enc, 1.3e6, 3000, false, false, DefaultSeed)
	shaped := RunLocalPoint(enc, 1.3e6, 3000, true, false, DefaultSeed)
	if shaped.Quality >= dropOnly.Quality {
		t.Errorf("shaping did not help: %v vs %v", shaped.Quality, dropOnly.Quality)
	}
	if shaped.Quality > 0.05 {
		t.Errorf("shaped quality %v, want ≈0 at 1.3M", shaped.Quality)
	}
}

func TestFigureSpecsRunScaled(t *testing.T) {
	t.Parallel()
	// Every figure spec must run end to end (scaled down) and produce
	// well-formed, plottable output. Under -short the grid shrinks to
	// the sweep endpoints with a single seed, so the path still runs.
	spec := Figure9Spec()
	spec.Tokens = Scale(spec.Tokens, 4)
	if testing.Short() {
		spec.Tokens = Scale(spec.Tokens, len(spec.Tokens))
		spec.Runs = 1
	}
	fig := spec.Run()
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != len(spec.Tokens) {
			t.Errorf("series %s: %d points, want %d", s.Label, len(s.Points), len(spec.Tokens))
		}
		for _, p := range s.Points {
			if p.Quality < 0 || p.Quality > 1.2 || p.FrameLoss < 0 || p.FrameLoss > 1 {
				t.Errorf("out-of-range point: %+v", p)
			}
		}
	}
	out := fig.Format()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "B=3000") {
		t.Errorf("Format output malformed:\n%s", out)
	}
}

func TestLocalSpecRunScaled(t *testing.T) {
	t.Parallel()
	spec := Figure15Spec()
	spec.Tokens = Scale(spec.Tokens, 5)
	if testing.Short() {
		spec.Tokens = Scale(spec.Tokens, len(spec.Tokens))
	}
	fig := spec.Run()
	if len(fig.Series) != 2 || len(fig.Series[0].Points) == 0 {
		t.Fatal("malformed local figure")
	}
}

func TestRelativeSpecRunScaled(t *testing.T) {
	t.Parallel()
	spec := Figure14Spec()
	spec.Tokens = []units.BitRate{900 * units.Kbps, 2.1e6}
	if testing.Short() {
		spec.Tokens = spec.Tokens[:1]
		spec.Runs = 1
	}
	fig := spec.Run()
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d, want one per encoding", len(fig.Series))
	}
}

func TestTokenSweepAndScale(t *testing.T) {
	s := TokenSweep(1200, 2200, 100)
	if len(s) != 11 || s[0] != 1.2e6 || s[10] != 2.2e6 {
		t.Errorf("TokenSweep wrong: %v", s)
	}
	sc := Scale(s, 4)
	if sc[0] != s[0] || sc[len(sc)-1] != s[len(s)-1] {
		t.Errorf("Scale lost endpoints: %v", sc)
	}
	if len(Scale(s, 1)) != len(s) {
		t.Error("Scale(1) must be identity")
	}
}

func TestTable4Content(t *testing.T) {
	out := Table4()
	for _, want := range []string{"QBone", "Video Charger", "Windows Media", "EF", "Drop", "Shape"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestFigure6Output(t *testing.T) {
	out := Figure6(video.Lost(), 200)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "1.7M") {
		t.Error("Figure 6 output malformed")
	}
	lines := strings.Count(out, "\n")
	if lines < 10 {
		t.Errorf("Figure 6 too short: %d lines", lines)
	}
}

func TestEvaluatePipelinePerfect(t *testing.T) {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	q := RunQBonePointFastPath(t, enc)
	if q > 0.02 {
		t.Errorf("clean pipeline scored %v", q)
	}
}

// RunQBonePointFastPath evaluates a generous-profile run; split out so
// the pipeline is exercised even under -short.
func RunQBonePointFastPath(t *testing.T, enc *video.Encoding) float64 {
	t.Helper()
	p := RunQBonePoint(enc, enc, 3e6, 9000, DefaultSeed, 0)
	return p.Quality
}
