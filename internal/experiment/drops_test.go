package experiment

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// TestDropDistribution histograms policer drops per 5-second bin to
// see whether residual losses at the average token rate are spread or
// clustered (model diagnostics; run with -v).
func TestDropDistribution(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("diagnostic")
	}
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	for _, depth := range []units.ByteSize{3000, 4500} {
		q := topology.BuildQBone(topology.QBoneConfig{
			Seed: DefaultSeed, Enc: enc, TokenRate: 1.7e6, Depth: depth,
		})
		bins := make(map[int]int)
		q.Policer.OnDrop(packet.HandlerFunc(func(p *packet.Packet) {
			bins[int(q.Sim.Now().Seconds())/5]++
		}))
		q.Run()
		t.Logf("depth=%d drops=%d passed=%d", int64(depth), q.Policer.Dropped, q.Policer.Passed)
		for b := 0; b < 16; b++ {
			t.Logf("  t=[%2d,%2d)s drops=%d", b*5, b*5+5, bins[b])
		}
	}
}
