package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ptrace"
	"repro/internal/units"
)

func reducedTandem() TandemSpec {
	spec := TandemSweepSpec()
	spec.Tokens = []units.BitRate{1100 * units.Kbps, 1400 * units.Kbps}
	spec.Runs = 1
	return spec
}

func TestTandemScenarioShape(t *testing.T) {
	t.Parallel()
	fig := RunScenario(reducedTandem(), 0)
	if len(fig.Series) != 2 || fig.Series[0].Label != "1border" || fig.Series[1].Label != "2border" {
		t.Fatalf("series = %+v", fig.Series)
	}
	for si, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %d has %d points, want 2", si, len(s.Points))
		}
	}
	// Re-policing the re-clocked aggregate can only hurt: at every
	// token rate the two-border path loses at least as many packets
	// as the single-border baseline.
	for i := range fig.Series[0].Points {
		one, two := fig.Series[0].Points[i], fig.Series[1].Points[i]
		if two.PacketLoss+1e-9 < one.PacketLoss {
			t.Errorf("token %v: 2-border packet loss %.4f below 1-border %.4f",
				one.TokenRate, two.PacketLoss, one.PacketLoss)
		}
	}
}

func TestTandemScenarioRegisteredAndScalable(t *testing.T) {
	s := Lookup("tandem")
	if s == nil {
		t.Fatal("tandem not registered")
	}
	if _, ok := s.(Scalable); !ok {
		t.Fatal("tandem is not Scalable")
	}
	sc := TandemSweepSpec().Scaled(3).(TandemSpec)
	full := TandemSweepSpec()
	if len(sc.Tokens) >= len(full.Tokens) ||
		sc.Tokens[len(sc.Tokens)-1] != full.Tokens[len(full.Tokens)-1] {
		t.Errorf("Scaled grid wrong: %v", sc.Tokens)
	}
}

// TestTandemTraceFiles drives the dsbench -trace plumbing end to end:
// a traced scenario run writes one readable .ptrace file per grid
// point, and the figure is byte-identical to the untraced run.
func TestTandemTraceFiles(t *testing.T) {
	t.Parallel()
	spec := reducedTandem()
	dir := t.TempDir()
	tr := &TraceRequest{Dir: dir, Config: ptrace.Config{
		Capacity: 1 << 15, Kinds: ptrace.VerdictKinds(),
	}}
	traced := RunScenarioTrace(spec, 2, tr)
	plain := RunScenario(spec, 0)
	if traced.Format() != plain.Format() {
		t.Errorf("tracing changed the figure:\n%s\nvs\n%s", traced.Format(), plain.Format())
	}
	files := tr.Files()
	if len(files) != 4 { // 2 variants × 2 tokens
		t.Fatalf("wrote %d trace files, want 4: %v", len(files), files)
	}
	for _, name := range files {
		if !strings.HasPrefix(name, "tandem-") {
			t.Errorf("trace file %q not scenario-prefixed", name)
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		d, err := ptrace.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(d.Events) == 0 || d.Seen == 0 {
			t.Errorf("%s: empty capture", name)
		}
		if len(d.Events) > 1<<15 {
			t.Errorf("%s: %d events exceed the configured bound", name, len(d.Events))
		}
	}
}

// TestTandemTraceSpill drives the spill plumbing end to end: with
// Spill set, every trace file holds the *complete* filtered capture —
// past the tiny configured ring — in the binary v2 encoding, written
// atomically (no temporary files survive), and the figure stays
// byte-identical to the untraced run.
func TestTandemTraceSpill(t *testing.T) {
	t.Parallel()
	spec := reducedTandem()
	dir := t.TempDir()
	const ringCap = 512 // far below the runs' verdict counts
	tr := &TraceRequest{Dir: dir, Config: ptrace.Config{
		Capacity: ringCap, Kinds: ptrace.VerdictKinds(),
	}, Spill: true}
	traced := RunScenarioTrace(spec, 2, tr)
	plain := RunScenario(spec, 0)
	if traced.Format() != plain.Format() {
		t.Errorf("spill tracing changed the figure:\n%s\nvs\n%s", traced.Format(), plain.Format())
	}
	files := tr.Files()
	if len(files) != 4 {
		t.Fatalf("wrote %d trace files, want 4: %v", len(files), files)
	}
	spilledPastCap := false
	for _, name := range files {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		d, format, err := ptrace.ReadFormat(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if format != ptrace.FormatV2 {
			t.Errorf("%s: spilled as %v, want binary v2", name, format)
		}
		if len(d.Events) > ringCap {
			spilledPastCap = true
		}
		// The spill is the complete filtered capture: with no sampling
		// configured, every filter-surviving event must be present, and
		// timestamps must be monotone (stream order).
		var last units.Time
		for i, e := range d.Events {
			if e.T < last {
				t.Fatalf("%s: event %d out of order", name, i)
			}
			last = e.T
		}
	}
	if !spilledPastCap {
		t.Error("no capture exceeded the ring capacity; spill bound untested")
	}
	// Atomicity: only the four sealed .ptrace files remain — no .spill-*
	// or .ptrace-* temporaries.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("trace dir holds %v, want exactly the 4 sealed traces", names)
	}
}
