package experiment

import (
	"fmt"
	"strings"

	"repro/internal/units"
	"repro/internal/video"
)

// DefaultSeed is the seed every published figure uses; change it to
// check robustness of the shapes to the random stream.
const DefaultSeed uint64 = 2001

// The figure scenarios register here so commands can enumerate and
// run them by name (dsbench -scenario fig7 -parallel 8). Clip models
// are rebuilt per spec constructor, so registration costs no
// simulation work — encodings happen lazily via the cache on first
// Jobs() call.
func init() {
	Register(Figure7Spec())
	Register(Figure8Spec())
	Register(Figure9Spec())
	Register(Figure10Spec())
	Register(Figure11Spec())
	Register(Figure12Spec())
	Register(Figure13Spec())
	Register(Figure14Spec())
	Register(Figure15Spec())
	Register(Figure16Spec())
}

// StandardDepths are the two APS burst sizes of the QBone experiments.
func StandardDepths() []units.ByteSize { return []units.ByteSize{3000, 4500} }

// Scale thins a token sweep for quick runs (benchmarks): keep every
// n-th point, always keeping the endpoints.
func Scale(tokens []units.BitRate, n int) []units.BitRate {
	if n <= 1 || len(tokens) <= 2 {
		return tokens
	}
	var out []units.BitRate
	for i := 0; i < len(tokens); i += n {
		out = append(out, tokens[i])
	}
	if out[len(out)-1] != tokens[len(tokens)-1] {
		out = append(out, tokens[len(tokens)-1])
	}
	return out
}

// Figure7Spec is "QBone Streaming (Lost clip/1.7Mbps encoding): Video
// Quality & Frame Loss vs Token Rate".
func Figure7Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig7", ID: "Figure 7", Title: "QBone, Lost clip @ 1.7 Mbps: quality & frame loss vs token rate",
		Clip: video.Lost(), EncRate: 1.7e6,
		Tokens: TokenSweep(1200, 2200, 100), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure8Spec is the 1.5 Mbps Lost variant.
func Figure8Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig8", ID: "Figure 8", Title: "QBone, Lost clip @ 1.5 Mbps: quality & frame loss vs token rate",
		Clip: video.Lost(), EncRate: 1.5e6,
		Tokens: TokenSweep(1200, 2200, 100), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure9Spec is the 1.0 Mbps Lost variant.
func Figure9Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig9", ID: "Figure 9", Title: "QBone, Lost clip @ 1.0 Mbps: quality & frame loss vs token rate",
		Clip: video.Lost(), EncRate: 1.0e6,
		Tokens: TokenSweep(700, 1100, 50), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure10Spec is the 1.7 Mbps Dark variant.
func Figure10Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig10", ID: "Figure 10", Title: "QBone, Dark clip @ 1.7 Mbps: quality & frame loss vs token rate",
		Clip: video.Dark(), EncRate: 1.7e6,
		Tokens: TokenSweep(1200, 2200, 100), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure11Spec is the 1.5 Mbps Dark variant.
func Figure11Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig11", ID: "Figure 11", Title: "QBone, Dark clip @ 1.5 Mbps: quality & frame loss vs token rate",
		Clip: video.Dark(), EncRate: 1.5e6,
		Tokens: TokenSweep(1200, 2200, 100), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure12Spec is the 1.0 Mbps Dark variant.
func Figure12Spec() QBoneSpec {
	return QBoneSpec{
		Key: "fig12", ID: "Figure 12", Title: "QBone, Dark clip @ 1.0 Mbps: quality & frame loss vs token rate",
		Clip: video.Dark(), EncRate: 1.0e6,
		Tokens: TokenSweep(700, 1100, 50), Depths: StandardDepths(), Seed: DefaultSeed,
	}
}

// Figure13Spec is "Frame Loss and Relative (compared to 1.7Mbps
// version) Quality for Dark Clip".
func Figure13Spec() RelativeSpec {
	return RelativeSpec{
		Key: "fig13", ID: "Figure 13", Title: "Dark clip: relative quality vs 1.7 Mbps reference, B=3000",
		Clip:     video.Dark(),
		EncRates: []units.BitRate{1.5e6, 1.0e6, 1.7e6},
		RefRate:  1.7e6,
		Tokens:   TokenSweep(600, 2100, 150),
		Depth:    3000, Seed: DefaultSeed,
	}
}

// Figure14Spec is the Lost-clip variant of Figure 13.
func Figure14Spec() RelativeSpec {
	return RelativeSpec{
		Key: "fig14", ID: "Figure 14", Title: "Lost clip: relative quality vs 1.7 Mbps reference, B=3000",
		Clip:     video.Lost(),
		EncRates: []units.BitRate{1.5e6, 1.0e6, 1.7e6},
		RefRate:  1.7e6,
		Tokens:   TokenSweep(600, 2100, 150),
		Depth:    3000, Seed: DefaultSeed,
	}
}

// Figure15Spec is "Local Testbed Experiments (Lost clip at 1Mbps) –
// Quality and Frame Loss vs Token Rate" with hard policing only.
func Figure15Spec() LocalSpec {
	return LocalSpec{
		Key: "fig15", ID: "Figure 15", Title: "Local testbed, WMV Lost @ ~1 Mbps cap, drop policing",
		Clip: video.Lost(), CapKbps: video.WMVCapKbps,
		Tokens: TokenSweep(500, 2500, 200), Depths: StandardDepths(),
		UseShaper: false, UseTCP: false, Seed: DefaultSeed,
	}
}

// Figure16Spec is the Figure 15 configuration with the Linux shaping
// router inserted ahead of the policer.
func Figure16Spec() LocalSpec {
	return LocalSpec{
		Key: "fig16", ID: "Figure 16", Title: "Local testbed, WMV Lost @ ~1 Mbps cap, shaper + drop policing",
		Clip: video.Lost(), CapKbps: video.WMVCapKbps,
		Tokens: TokenSweep(500, 2500, 200), Depths: StandardDepths(),
		UseShaper: true, UseTCP: false, Seed: DefaultSeed,
	}
}

// Figure6 renders the instantaneous transmission-rate traces of the
// MPEG encodings (sampled every `every` frames to keep output small).
func Figure6(c *video.Clip, every int) string {
	if every <= 0 {
		every = 31 // coprime with the GoP so samples cycle I/P/B slots
	}
	rates := []units.BitRate{1.7e6, 1.5e6, 1.0e6}
	encs := make([]*video.Encoding, len(rates))
	for i, r := range rates {
		encs[i] = video.EncodeCBR(c, r)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — %s clip transmitted bit rates (bps), every %d frames\n", c.Name, every)
	fmt.Fprintf(&b, "%-8s %-12s %-12s %-12s\n", "Frame", "1.7M", "1.5M", "1M")
	for i := 0; i < c.FrameCount(); i += every {
		fmt.Fprintf(&b, "%-8d %-12.0f %-12.0f %-12.0f\n",
			i+1, encs[0].FrameRate(i), encs[1].FrameRate(i), encs[2].FrameRate(i))
	}
	return b.String()
}

// Table4 renders the experimental-configuration summary.
func Table4() string {
	rows := [][3]string{
		{"", "QBone", "Local Testbed"},
		{"Video server", "Video Charger (paced)", "Windows Media Server"},
		{"Network protocol", "UDP", "TCP, UDP"},
		{"Contents type", "MPEG-1", "WMV format"},
		{"Contents properties", "Constant bit rate", "Max bit rate is constant"},
		{"PHB tested", "EF", "EF"},
		{"Service parameters", "Token rate, bucket depth", "Token rate, bucket depth"},
		{"Out-of-profile action", "Drop", "Drop (router 1) / Shape (Linux router)"},
	}
	var b strings.Builder
	b.WriteString("Table 4 — Summary of experimental configurations\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s | %-26s | %s\n", r[0], r[1], r[2])
	}
	return b.String()
}
