package experiment

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// TestTCPDiag traces the TCP sender state through a lossy policer
// (model diagnostics; run with -v).
func TestTCPDiag(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("diagnostic")
	}
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	l := topology.BuildLocal(topology.LocalConfig{
		Seed: DefaultSeed, Enc: enc, TokenRate: 1.7e6, Depth: 3000, UseTCP: true,
	})
	l.TCPServer.Start()
	for s := 1; s <= 20; s++ {
		l.Sim.RunUntil(units.FromSeconds(float64(s)))
		t.Logf("t=%2ds cwnd=%6.0f una=%8d nxt=%8d app=%8d sent=%5d rexmit=%4d rto=%3d polDrop=%d thin=%d",
			s, l.Sender.Cwnd(), l.Sender.Delivered(), l.Sender.Unacked()+l.Sender.Delivered(),
			l.Sender.Backlog()+l.Sender.Unacked()+l.Sender.Delivered(),
			l.Sender.Sent, l.Sender.Retransmits, l.Sender.Timeouts,
			l.Policer.Dropped, l.TCPServer.FramesThinned)
	}
}
