package experiment

import (
	"math"
	"sort"
	"testing"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// The mixture differential harness: the K-class generalization of
// batcheq_test.go. A two-class mixture run on the batched
// BatchedMixture fan-out must be byte-identical to the same mixture
// built from per-flow servers — and the sharded mixture pipeline must
// be byte-identical to the serial one — so everything the batcheq and
// shardeq harnesses pin for homogeneous populations carries over to
// mixtures. A third suite checks that aggregated-stats mode reports
// exactly what per-flow receivers measure.

// mixClasses is the two-class population the tests run: n "viewers"
// (Lost @ 1.0 Mbps) and n "elephants" (Dark @ 1.5 Mbps) with distinct
// policing, phases and staggers — every per-class knob differs so a
// class-mixup cannot cancel out.
func mixClasses(n int, truncate units.Time) []topology.FlowClass {
	return []topology.FlowClass{
		{Name: "viewers", Enc: video.CachedCBR(video.Lost(), 1.0e6), N: n,
			TokenRate: 1.3e6, Truncate: truncate,
			Stagger: 331 * units.Millisecond},
		{Name: "elephants", Enc: video.CachedCBR(video.Dark(), 1.5e6), N: n,
			TokenRate: 1.95e6, Truncate: truncate,
			Phase: 170 * units.Millisecond, Stagger: 217 * units.Millisecond},
	}
}

// runMixturePoint builds and runs one two-class mixture (n flows per
// class) against a 12 Mbps priority bottleneck — provisioned for
// roughly n=2, so n=4 and n=8 overload it and exercise queue drops.
func runMixturePoint(n int, batch bool, shards int, aggregate bool,
	truncate units.Time, rec *ptrace.Recorder) *topology.MultiFlow {
	m := topology.BuildMultiFlow(topology.MultiFlowConfig{
		Seed: DefaultSeed, Classes: mixClasses(n, truncate),
		Depth: 4500, BottleneckRate: 12e6, Sched: topology.PriorityBottleneck,
		BELoad: 0.15, Batch: batch, Shards: shards, AggregateStats: aggregate,
		Trace: rec,
	})
	m.Run()
	return m
}

// mixEnc maps a global flow index of the test mixture to its class
// encoding (class-major layout: viewers first).
func mixEnc(g, n int) *video.Encoding {
	if g < n {
		return video.CachedCBR(video.Lost(), 1.0e6)
	}
	return video.CachedCBR(video.Dark(), 1.5e6)
}

// diffMixture fails the test wherever two mixture runs differ in any
// downstream-observable way: per-flow delivered counts, per-flow
// policer verdicts, per-flow evaluations, bottleneck totals.
func diffMixture(t *testing.T, labelA, labelB string, a, b *topology.MultiFlow, n int) {
	t.Helper()
	for i := range a.Clients {
		if a.Clients[i].Packets != b.Clients[i].Packets ||
			a.Clients[i].PacketsBytes != b.Clients[i].PacketsBytes {
			t.Errorf("flow %d delivered: %s %d pkts/%d B, %s %d pkts/%d B",
				i, labelA, a.Clients[i].Packets, a.Clients[i].PacketsBytes,
				labelB, b.Clients[i].Packets, b.Clients[i].PacketsBytes)
		}
		enc := mixEnc(i, n)
		ea := Evaluate(a.Clients[i].Trace(), enc, enc)
		eb := Evaluate(b.Clients[i].Trace(), enc, enc)
		if ea != eb {
			t.Errorf("flow %d evaluation diverged:\n%s %+v\n%s %+v", i, labelA, ea, labelB, eb)
		}
	}
	for i := range a.Policers {
		pa, pb := a.Policers[i], b.Policers[i]
		if pa.Passed != pb.Passed || pa.Dropped != pb.Dropped ||
			pa.PassedBytes != pb.PassedBytes || pa.DroppedBytes != pb.DroppedBytes {
			t.Errorf("flow %d policer: %s pass=%d drop=%d (%d/%d B), %s pass=%d drop=%d (%d/%d B)",
				i, labelA, pa.Passed, pa.Dropped, pa.PassedBytes, pa.DroppedBytes,
				labelB, pb.Passed, pb.Dropped, pb.PassedBytes, pb.DroppedBytes)
		}
	}
	if a.Bottleneck.Sent != b.Bottleneck.Sent ||
		a.Bottleneck.SentBytes != b.Bottleneck.SentBytes {
		t.Errorf("bottleneck: %s %d pkts/%d B, %s %d pkts/%d B",
			labelA, a.Bottleneck.Sent, a.Bottleneck.SentBytes,
			labelB, b.Bottleneck.Sent, b.Bottleneck.SentBytes)
	}
}

// TestMixtureBatchedEquivalence pins mixture-batched == unbatched
// byte-identically at two classes × N ∈ {4, 8} flows per class.
func TestMixtureBatchedEquivalence(t *testing.T) {
	t.Parallel()
	for _, n := range []int{4, 8} {
		n := n
		t.Run(map[int]string{4: "N=4", 8: "N=8"}[n], func(t *testing.T) {
			t.Parallel()
			mu := runMixturePoint(n, false, 0, false, 0, nil)
			mb := runMixturePoint(n, true, 0, false, 0, nil)
			diffMixture(t, "unbatched", "batched", mu, mb, n)
			if mb.Sim.Fired() >= mu.Sim.Fired() {
				t.Errorf("batched mixture fired %d events, unbatched %d — no source-side saving",
					mb.Sim.Fired(), mu.Sim.Fired())
			}
			// Every virtual flow emitted its full class schedule.
			for g, sent := range mb.Mixture.Sent {
				want := len(mb.Mixture.Classes[mb.Mixture.ClassOf(g)].Sched.Entries)
				if sent != want {
					t.Errorf("virtual flow %d emitted %d of %d scheduled packets", g, sent, want)
				}
			}
		})
	}
}

// TestMixtureShardedEquivalence pins sharded mixture == serial mixture
// byte-identically, for both the batched fan-out pipeline and the
// unbatched chain-clone pipeline, at several shard counts.
func TestMixtureShardedEquivalence(t *testing.T) {
	t.Parallel()
	const n = 4
	t.Run("batched", func(t *testing.T) {
		t.Parallel()
		serial := runMixturePoint(n, true, 0, false, 0, nil)
		for _, shards := range []int{2, 5} {
			sharded := runMixturePoint(n, true, shards, false, 0, nil)
			if sharded.Stats.Shards < 2 {
				t.Fatalf("shards=%d ran with %d shard workers", shards, sharded.Stats.Shards)
			}
			diffMixture(t, "serial", "sharded", serial, sharded, n)
		}
	})
	t.Run("unbatched", func(t *testing.T) {
		t.Parallel()
		serial := runMixturePoint(n, false, 0, false, 0, nil)
		sharded := runMixturePoint(n, false, 3, false, 0, nil)
		if sharded.Stats.Shards < 2 {
			t.Fatalf("unbatched sharded run used %d shard workers", sharded.Stats.Shards)
		}
		diffMixture(t, "serial", "sharded", serial, sharded, n)
	})
}

// TestMixtureAggregatedMatchesExact checks the aggregated-stats mode
// against per-flow receivers on the identical simulation: per-class
// delivered packet/byte counts must match the sums of the exact
// clients', the streaming delay moments must match the trace-derived
// per-packet delays to floating-point accuracy, and the P² sketch
// quantiles must land within the documented error bound of the exact
// order statistics.
func TestMixtureAggregatedMatchesExact(t *testing.T) {
	t.Parallel()
	const n = 4
	const truncate = 2 * units.Second
	// The exact run records every client delivery (with its one-way
	// delay) into a generously sized recorder; truncated schedules keep
	// the event volume far below capacity.
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 1 << 18})
	exact := runMixturePoint(n, true, 0, false, truncate, rec)
	agg := runMixturePoint(n, true, 0, true, truncate, nil)

	if len(agg.Aggregates) != 2 {
		t.Fatalf("aggregated run has %d aggregates, want 2", len(agg.Aggregates))
	}
	// Tracing and receiver choice are both pure observation: the wire
	// side of the two runs must already be identical.
	if exact.Bottleneck.Sent != agg.Bottleneck.Sent {
		t.Fatalf("bottleneck diverged between exact (%d) and aggregated (%d) runs — receiver choice leaked upstream",
			exact.Bottleneck.Sent, agg.Bottleneck.Sent)
	}

	// Counts: per-class aggregate totals == sums over the class's exact
	// per-flow clients.
	for ci := 0; ci < 2; ci++ {
		var pkts, bytes int64
		for g := ci * n; g < (ci+1)*n; g++ {
			pkts += int64(exact.Clients[g].Packets)
			bytes += exact.Clients[g].PacketsBytes
		}
		a := agg.Aggregates[ci]
		if a.Packets != pkts || a.Bytes != bytes {
			t.Errorf("class %d: aggregate %d pkts/%d B, exact clients %d pkts/%d B",
				ci, a.Packets, a.Bytes, pkts, bytes)
		}
		if a.Delay.N() != pkts {
			t.Errorf("class %d: moments saw %d samples, want %d", ci, a.Delay.N(), pkts)
		}
	}

	// Delays: reconstruct the exact per-class delay samples from the
	// exact run's Deliver events.
	delays := [2][]float64{}
	for _, ev := range rec.Events() {
		if ev.Kind != ptrace.Deliver {
			continue
		}
		g := int(ev.Flow - topology.VideoFlow)
		if g < 0 || g >= 2*n {
			continue
		}
		delays[g/n] = append(delays[g/n], ev.Delay.Seconds())
	}
	if rec.Overwritten() > 0 {
		t.Fatalf("recorder overwrote %d events; the exact-delay reconstruction is incomplete", rec.Overwritten())
	}
	for ci := 0; ci < 2; ci++ {
		a := agg.Aggregates[ci]
		ds := delays[ci]
		if int64(len(ds)) != a.Delay.N() {
			t.Fatalf("class %d: trace has %d deliveries, aggregate saw %d", ci, len(ds), a.Delay.N())
		}
		var sum, sumSq, min, max float64
		min, max = math.Inf(1), math.Inf(-1)
		for _, d := range ds {
			sum += d
			sumSq += d * d
			min = math.Min(min, d)
			max = math.Max(max, d)
		}
		mean := sum / float64(len(ds))
		variance := sumSq/float64(len(ds)) - mean*mean
		if rel := math.Abs(a.Delay.Mean()-mean) / mean; rel > 1e-9 {
			t.Errorf("class %d mean: aggregate %v, exact %v (rel err %g)", ci, a.Delay.Mean(), mean, rel)
		}
		if rel := math.Abs(a.Delay.Var()-variance) / variance; rel > 1e-6 {
			t.Errorf("class %d variance: aggregate %v, exact %v (rel err %g)", ci, a.Delay.Var(), variance, rel)
		}
		if a.Delay.Min() != min || a.Delay.Max() != max {
			t.Errorf("class %d extremes: aggregate [%v, %v], exact [%v, %v]",
				ci, a.Delay.Min(), a.Delay.Max(), min, max)
		}
		// Sketch quantiles against exact order statistics, within a
		// tolerance proportional to the sample range (the P² error
		// model; the moments tests pin the same bound on synthetic
		// streams).
		sort.Float64s(ds)
		tol := 0.05 * (max - min)
		for _, q := range []struct {
			p   float64
			got float64
		}{{0.50, a.DelayP50.Value()}, {0.95, a.DelayP95.Value()}, {0.99, a.DelayP99.Value()}} {
			exactQ := ds[int(q.p*float64(len(ds)-1))]
			if math.Abs(q.got-exactQ) > tol {
				t.Errorf("class %d p%02.0f: sketch %v, exact %v (tol %v)", ci, q.p*100, q.got, exactQ, tol)
			}
		}
	}
}

// TestMixtureBucketWidthInvariance pins the per-run calendar-width
// knob as a pure perf knob at the topology level: the same mixture
// run at very different bucket widths produces byte-identical
// results.
func TestMixtureBucketWidthInvariance(t *testing.T) {
	t.Parallel()
	const n = 4
	run := func(width units.Time) *topology.MultiFlow {
		m := topology.BuildMultiFlow(topology.MultiFlowConfig{
			Seed: DefaultSeed, Classes: mixClasses(n, 0),
			Depth: 4500, BottleneckRate: 12e6, Sched: topology.PriorityBottleneck,
			BELoad: 0.15, Batch: true, BucketWidth: width,
		})
		m.Run()
		return m
	}
	ref := run(0) // scenario/simulator default
	for _, width := range []units.Time{10 * units.Microsecond, 4 * units.Millisecond} {
		diffMixture(t, "default-width", width.String(), ref, run(width), n)
	}
}

// TestNFlowFleetRegistered pins the fleet scenario's registration and
// shape: six-figure top end, batched + aggregated, shard-capable,
// scalable.
func TestNFlowFleetRegistered(t *testing.T) {
	s := Lookup("nflow-fleet")
	if s == nil {
		t.Fatal("nflow-fleet not registered")
	}
	spec, ok := s.(FleetSpec)
	if !ok {
		t.Fatalf("nflow-fleet is %T, want FleetSpec", s)
	}
	if max := spec.Ns[len(spec.Ns)-1]; max < 100000 {
		t.Errorf("nflow-fleet tops out at N=%d, want >= 100000", max)
	}
	if len(spec.Classes) < 2 {
		t.Errorf("nflow-fleet has %d classes, want >= 2", len(spec.Classes))
	}
	if !SupportsSharding(s) {
		t.Error("nflow-fleet does not support shards")
	}
	if _, ok := s.(Scalable); !ok {
		t.Error("nflow-fleet is not Scalable")
	}
	// The PR 7 per-N widthFor heuristic is retired: fleet jobs leave
	// the config width zero so the simulator's density-adaptive policy
	// picks the calendar geometry per point (pinned by the QWidth
	// telemetry check in TestFleetEventsPerVFlowFall).
}

// TestFleetEventsPerVFlowFall is the scaling smoke the bench CI job
// runs: on a shrunken fleet grid crossing a proportionally shrunken
// bottleneck's knee, simulator events per virtual flow must fall as N
// grows — the sublinearity the aggregated mixture fan-out exists to
// buy (past the knee, dropped packets cost no dequeue events and the
// bottleneck transmits at most a pipe's worth).
func TestFleetEventsPerVFlowFall(t *testing.T) {
	t.Parallel()
	spec := NFlowFleetSpec()
	spec.Ns = []int{2000, 8000}
	// Knee at ~4000 flows: ~1000 active × ~1.1 Mbps ≈ 1.1 Gbps.
	spec.BottleneckRate = 1.1e9
	fig := RunScenarioOpts(spec, RunOptions{Parallel: 1})
	pts := fig.Series[0].Points
	small, large := pts[0], pts[1]
	if small.VFlows != 2000 || large.VFlows != 8000 {
		t.Fatalf("unexpected vflow counts: %d, %d", small.VFlows, large.VFlows)
	}
	evS := float64(small.Events) / float64(small.VFlows)
	evL := float64(large.Events) / float64(large.VFlows)
	if evL >= evS {
		t.Errorf("events per vflow grew with N: %.1f at N=%d vs %.1f at N=%d",
			evS, small.VFlows, evL, large.VFlows)
	}
	// Past the knee the large point must actually be lossy — otherwise
	// the grid is not crossing the provisioning knee it claims to.
	if large.FrameLoss <= small.FrameLoss || large.FrameLoss <= 0.01 {
		t.Errorf("delivery shortfall did not rise past the knee: %.4f at N=%d vs %.4f at N=%d",
			small.FrameLoss, small.VFlows, large.FrameLoss, large.VFlows)
	}
	// Fleet points run width-adaptive and report queue telemetry: the
	// final width is the policy's converged choice, and the denser
	// point must not have converged wider than the sparser one.
	if small.QWidth <= 0 || large.QWidth <= 0 || small.QRebases == 0 {
		t.Errorf("queue telemetry missing: QWidth %v/%v, QRebases %d",
			small.QWidth, large.QWidth, small.QRebases)
	}
	if large.QWidth > small.QWidth {
		t.Errorf("adaptive width grew with density: %v at N=%d vs %v at N=%d",
			small.QWidth, small.VFlows, large.QWidth, large.VFlows)
	}
}

// TestFleetAdaptiveNoSlowerThanStatic is the CI width-policy smoke at
// full registered scale: the fleet's densest point (N=200k) must run
// no slower under the adaptive calendar than under the pinned static
// default width — with a generous noise margin, since both are single
// wall-clock samples — and must produce identical aggregates, because
// bucket width is a performance knob, never a semantic one. Skipped
// in -short mode (two full N=200k mixture runs).
func TestFleetAdaptiveNoSlowerThanStatic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full N=200k fleet runs; skipped in -short mode")
	}
	spec := NFlowFleetSpec()
	const n = 200000
	run := func(width units.Time) Point {
		ctx := &Ctx{Pool: packet.NewPool(), BucketWidth: width}
		return evaluateFleet(ctx, topology.MultiFlowConfig{
			Seed: spec.Seed, Classes: spec.classesFor(n),
			Depth:          spec.Depth,
			BottleneckRate: spec.BottleneckRate, Sched: spec.Sched,
			BELoad: spec.BELoad, Pool: ctx.Pool,
			Batch: true, AggregateStats: true,
		}, "N=200000", "N200000")
	}
	static := run(sim.DefaultBucketWidth)
	adaptive := run(0)

	// Same simulation, different geometry: every semantic output must
	// match exactly.
	if adaptive.Events != static.Events || adaptive.VFlows != static.VFlows ||
		adaptive.FrameLoss != static.FrameLoss || adaptive.PacketLoss != static.PacketLoss {
		t.Errorf("adaptive vs static results diverged:\nadaptive %+v\nstatic   %+v",
			adaptive, static)
	}
	if len(adaptive.Classes) != len(static.Classes) {
		t.Fatalf("class counts diverged: %d vs %d", len(adaptive.Classes), len(static.Classes))
	}
	for i := range static.Classes {
		if adaptive.Classes[i] != static.Classes[i] {
			t.Errorf("class %d diverged:\nadaptive %+v\nstatic   %+v",
				i, adaptive.Classes[i], static.Classes[i])
		}
	}
	// The dense point must have converged below the static default —
	// that is the whole premise of retiring the widthFor heuristic.
	if adaptive.QWidth >= sim.DefaultBucketWidth {
		t.Errorf("adaptive width did not narrow on the dense point: %v", adaptive.QWidth)
	}
	if adaptive.RunMS > static.RunMS*1.15 {
		t.Errorf("adaptive slower than static default: %.1f ms vs %.1f ms",
			adaptive.RunMS, static.RunMS)
	}
}
