package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/client"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// The golden tests pin the topology presets to the seed's hand-wired
// constructors byte-for-byte: the files under testdata/ were generated
// from the pre-Builder code, and any refactor of the topology, link,
// or queue layers must keep reproducing them exactly. Regenerate
// (deliberately!) with:
//
//	go test ./internal/experiment -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files from the current code")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s diverged from the seed topology output\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// goldenQBoneSpec is a reduced Figure-7-style grid: small enough to run
// in every test pass, large enough to exercise policing both above and
// below the encoding rate.
func goldenQBoneSpec() QBoneSpec {
	return QBoneSpec{
		Key: "golden-qbone", ID: "Golden QBone",
		Title:   "QBone, Lost @ 1.0 Mbps (reduced golden grid)",
		Clip:    video.Lost(),
		EncRate: 1.0e6,
		Tokens:  []units.BitRate{900 * units.Kbps, 1100 * units.Kbps},
		Depths:  []units.ByteSize{3000},
		Seed:    DefaultSeed, Runs: 1,
	}
}

func TestGoldenQBonePreset(t *testing.T) {
	checkGolden(t, "golden_qbone.txt", RunScenario(goldenQBoneSpec(), 0).Format())
}

func TestGoldenQBoneShapedPreset(t *testing.T) {
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	q := topology.BuildQBone(topology.QBoneConfig{
		Seed: DefaultSeed, Enc: enc, TokenRate: 1.05e6, Depth: 3000, Shape: true,
	})
	q.Client.Tolerance = client.SliceTolerance
	q.Run()
	ev := Evaluate(q.Client.Trace(), enc, enc)
	got := fmt.Sprintf(
		"Golden QBone shaped — Lost @ 1.0M, token 1.05M, B=3000\n"+
			"frameloss=%.6f quality=%.6f\n"+
			"shaper passed=%d delayed=%d dropped=%d\n"+
			"client packets=%d\n"+
			"delay mean=%.6f p99=%.6f jitter=%.6f\n",
		ev.FrameLoss, ev.Quality,
		q.Shaper.Passed, q.Shaper.Delayed, q.Shaper.Dropped,
		q.Client.Packets,
		q.Delay.Delay.Mean(), q.Delay.Delay.Percentile(99), q.Delay.Jitter.Mean())
	checkGolden(t, "golden_qbone_shaped.txt", got)
}

// goldenLocalSpec is a reduced Figure-15-style grid (UDP, drop
// policing).
func goldenLocalSpec() LocalSpec {
	return LocalSpec{
		Key: "golden-local", ID: "Golden Local",
		Title: "Local testbed, WMV Lost, drop policing (reduced golden grid)",
		Clip:  video.Lost(), CapKbps: video.WMVCapKbps,
		Tokens:    []units.BitRate{900 * units.Kbps, 1900 * units.Kbps},
		Depths:    []units.ByteSize{3000},
		UseShaper: false, UseTCP: false, Seed: DefaultSeed,
	}
}

func TestGoldenLocalPreset(t *testing.T) {
	checkGolden(t, "golden_local.txt", RunScenario(goldenLocalSpec(), 0).Format())
}

func TestGoldenLocalTCPShapedPreset(t *testing.T) {
	enc := video.CachedVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	p := RunLocalPoint(enc, 1.5e6, 4500, true, true, DefaultSeed)
	got := fmt.Sprintf(
		"Golden Local TCP shaped — WMV Lost, token 1.5M, B=4500\n"+
			"frameloss=%.6f quality=%.6f pktloss=%.6f calib=%d\n",
		p.FrameLoss, p.Quality, p.PacketLoss, p.Calibration)
	checkGolden(t, "golden_local_tcp.txt", got)
}

func TestGoldenAFPreset(t *testing.T) {
	pts := AblationAFGrid(DefaultSeed, []float64{0.45}, []units.BitRate{1.0e6})
	checkGolden(t, "golden_af.txt", FormatAF(pts))
}
