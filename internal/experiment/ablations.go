package experiment

import (
	"fmt"
	"strings"

	"repro/internal/client"
	"repro/internal/render"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
	"repro/internal/vqm"
)

// This file holds the extension experiments DESIGN.md calls out beyond
// the paper's published figures: the shaper-vs-dropper ablation, the
// multi-hop EF burst-accumulation sweep, the pre-policer jitter sweep
// (the §3.2 CDV-tolerance discussion made quantitative), and the
// Assured Forwarding experiment the paper deferred.

// AblationShaperVsDrop compares drop policing against shaping at the
// QBone border across token rates, at both depths.
func AblationShaperVsDrop(seed uint64) *Figure {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	fig := &Figure{ID: "Ablation A", Title: "QBone border: drop policing vs shaping (Lost @ 1.7M)"}
	for _, mode := range []struct {
		label string
		shape bool
	}{{"drop", false}, {"shape", true}} {
		for _, depth := range []units.ByteSize{3000, 4500} {
			s := Series{Label: fmt.Sprintf("%s/B=%d", mode.label, int64(depth))}
			for _, tok := range TokenSweep(1500, 2100, 200) {
				q := topology.BuildQBone(topology.QBoneConfig{
					Seed: seed, Enc: enc, TokenRate: tok, Depth: depth, Shape: mode.shape,
				})
				q.Client.Tolerance = client.SliceTolerance
				q.Run()
				ev := Evaluate(q.Client.Trace(), enc, enc)
				if q.Policer != nil {
					ev.PacketLoss = q.Policer.LossFraction()
				}
				s.Points = append(s.Points, Point{TokenRate: tok, Depth: depth, Evaluation: ev})
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig
}

// AblationHopCount sweeps the number of QBone hops at a fixed profile,
// quantifying the multi-hop burst-accumulation concern the paper
// raises when discussing larger EF buckets (citing Bennett et al.).
func AblationHopCount(seed uint64) string {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	var b strings.Builder
	b.WriteString("Ablation B — EF across increasing hop counts (Lost @ 1.0M, token 1.1M, B=4500)\n")
	fmt.Fprintf(&b, "%-6s %-12s %-12s %-10s\n", "Hops", "FrameLoss", "Quality", "PktLoss")
	for _, hops := range []int{1, 2, 4, 8, 12} {
		q := topology.BuildQBone(topology.QBoneConfig{
			Seed: seed, Enc: enc, TokenRate: 1.1e6, Depth: 4500,
			Hops: hops, CrossLoad: 0.3,
		})
		q.Client.Tolerance = client.SliceTolerance
		q.Run()
		ev := Evaluate(q.Client.Trace(), enc, enc)
		fmt.Fprintf(&b, "%-6d %-12.4f %-12.3f %-10.4f\n",
			hops, ev.FrameLoss, ev.Quality, q.Policer.LossFraction())
	}
	return b.String()
}

// AblationJitter sweeps the campus jitter ahead of the policer — the
// quantitative version of §3.2's observation that cross traffic before
// the policing point pushes otherwise conformant packets out of
// profile (the ATM CDV-tolerance analogy).
func AblationJitter(seed uint64) string {
	enc := video.EncodeCBR(video.Lost(), 1.7e6)
	var b strings.Builder
	b.WriteString("Ablation C — pre-policer jitter vs conformance (Lost @ 1.7M, token=avg)\n")
	fmt.Fprintf(&b, "%-10s %-14s %-14s %-12s %-12s\n", "Jitter", "PktLoss(3000)", "QI(3000)", "PktLoss(4500)", "QI(4500)")
	for _, jms := range []int{1, 2, 4, 6, 8} {
		row := make([]float64, 0, 4)
		for _, depth := range []units.ByteSize{3000, 4500} {
			q := topology.BuildQBone(topology.QBoneConfig{
				Seed: seed, Enc: enc, TokenRate: 1.72e6, Depth: depth,
				CampusJitter: units.Time(jms) * units.Millisecond,
			})
			q.Client.Tolerance = client.SliceTolerance
			q.Run()
			ev := Evaluate(q.Client.Trace(), enc, enc)
			row = append(row, q.Policer.LossFraction(), ev.Quality)
		}
		fmt.Fprintf(&b, "%-10s %-14.4f %-14.3f %-12.4f %-12.3f\n",
			fmt.Sprintf("%dms", jms), row[0], row[1], row[2], row[3])
	}
	return b.String()
}

// AblationLocalTCP contrasts the local testbed over TCP with the
// era's stack (no Limited Transmit: tiny windows starve fast
// retransmit, so policing losses become RTO stalls) against a stack
// with RFC 3042. The paper reports TCP "produced better quality
// results" than UDP but still could not reach a perfect score at
// B=3000; the era-stack column shows why, and the RFC 3042 column
// shows how little it would have taken to fix.
func AblationLocalTCP(seed uint64) string {
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	var b strings.Builder
	b.WriteString("Ablation E — local testbed over TCP, B=3000: era stack vs RFC 3042\n")
	fmt.Fprintf(&b, "%-10s %-24s %-24s\n", "Token", "era (loss / QI)", "RFC3042 (loss / QI)")
	for _, tok := range TokenSweep(900, 2500, 400) {
		row := make([]float64, 0, 4)
		for _, lt := range []bool{false, true} {
			l := topology.BuildLocal(topology.LocalConfig{
				Seed: seed, Enc: enc, TokenRate: tok, Depth: 3000,
				UseTCP: true, LimitedTransmit: lt,
			})
			l.Run()
			ev := Evaluate(l.Trace(), enc, enc)
			row = append(row, ev.FrameLoss, ev.Quality)
		}
		fmt.Fprintf(&b, "%-10v %7.3f / %-14.3f %7.3f / %-14.3f\n", tok, row[0], row[1], row[2], row[3])
	}
	return b.String()
}

// EFServiceReport summarizes the network-level service the EF
// aggregate received (delay, jitter, loss) across cross-traffic loads
// — the paper's premise that EF keeps delay and jitter small is what
// confused the adaptive servers, so it is worth demonstrating.
func EFServiceReport(seed uint64) string {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	var b strings.Builder
	b.WriteString("EF service quality vs best-effort cross load (Lost @ 1.0M, token 1.3M, B=4500)\n")
	fmt.Fprintf(&b, "%-10s %-12s %-12s %-12s %-12s\n", "CrossLoad", "MeanDelay", "p99Delay", "MeanJitter", "PktLoss")
	for _, load := range []float64{0.02, 0.2, 0.5, 0.8} {
		q := topology.BuildQBone(topology.QBoneConfig{
			Seed: seed, Enc: enc, TokenRate: 1.3e6, Depth: 4500, CrossLoad: load,
		})
		q.Client.Tolerance = client.SliceTolerance
		q.Run()
		fmt.Fprintf(&b, "%-10.2f %-12.2e %-12.2e %-12.2e %-12.4f\n",
			load, q.Delay.Delay.Mean(), q.Delay.Delay.Percentile(99),
			q.Delay.Jitter.Mean(), q.Policer.LossFraction())
	}
	return b.String()
}

// AFPoint is one sample of the Assured Forwarding extension.
type AFPoint struct {
	CIR                units.BitRate
	AFLoad             float64
	Green, Yellow, Red int
	Evaluation
}

// AblationAF runs the AF experiment the paper deferred: the video is
// srTCM-colored (never dropped at the edge) and competes inside a RIO
// AF class at a congested hop. Swept over CIR and in-class load, it
// shows the cross-traffic dependence the authors called out.
func AblationAF(seed uint64) []AFPoint {
	return AblationAFGrid(seed,
		[]float64{0.15, 0.45, 0.75},
		[]units.BitRate{0.6e6, 1.0e6, 1.4e6})
}

// AblationAFGrid runs the AF experiment over an explicit (load, CIR)
// grid — the full ablation uses the default grid, reduced grids serve
// the preset golden tests.
func AblationAFGrid(seed uint64, loads []float64, cirs []units.BitRate) []AFPoint {
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	var out []AFPoint
	for _, load := range loads {
		for _, cir := range cirs {
			a := topology.BuildAF(topology.AFConfig{
				Seed: seed, Enc: enc, CIR: cir, AFLoad: load,
			})
			a.Run()
			tr := client.DecodeMPEG(a.Client.Trace(), enc)
			d := render.Conceal(tr, render.DefaultOptions())
			res := vqm.ScoreSame(d, enc, vqm.Options{})
			out = append(out, AFPoint{
				CIR: cir, AFLoad: load,
				Green: a.Marker.Green, Yellow: a.Marker.Yellow, Red: a.Marker.Red,
				Evaluation: Evaluation{
					FrameLoss:   tr.FrameLossFraction(),
					Quality:     res.Index,
					Calibration: res.CalibrationFailures,
				},
			})
		}
	}
	return out
}

// FormatAF renders the AF ablation.
func FormatAF(points []AFPoint) string {
	var b strings.Builder
	b.WriteString("Ablation D — Assured Forwarding (srTCM + RIO), Lost @ 1.0M\n")
	fmt.Fprintf(&b, "%-8s %-8s %-22s %-12s %-10s\n", "AFLoad", "CIR", "colors (G/Y/R)", "FrameLoss", "Quality")
	for _, p := range points {
		fmt.Fprintf(&b, "%-8.2f %-8s %6d/%6d/%6d   %-12.4f %-10.3f\n",
			p.AFLoad, p.CIR, p.Green, p.Yellow, p.Red, p.FrameLoss, p.Quality)
	}
	return b.String()
}
