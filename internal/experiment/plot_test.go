package experiment

import (
	"strings"
	"testing"
)

func plotFixture() *Figure {
	return &Figure{
		ID: "Figure T", Title: "test",
		Series: []Series{
			{Label: "B=3000", Points: []Point{
				{TokenRate: 1.0e6, Evaluation: Evaluation{Quality: 1, FrameLoss: 0.5}},
				{TokenRate: 1.5e6, Evaluation: Evaluation{Quality: 0.5, FrameLoss: 0.2}},
				{TokenRate: 2.0e6, Evaluation: Evaluation{Quality: 0, FrameLoss: 0}},
			}},
			{Label: "B=4500", Points: []Point{
				{TokenRate: 1.0e6, Evaluation: Evaluation{Quality: 0.9, FrameLoss: 0.4}},
				{TokenRate: 2.0e6, Evaluation: Evaluation{Quality: 0, FrameLoss: 0}},
			}},
		},
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	out := plotFixture().Plot(40, 10, false)
	if !strings.Contains(out, "*=B=3000") || !strings.Contains(out, "o=B=4500") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "1.0 |") || !strings.Contains(out, "0.0 |") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if !strings.Contains(out, "1000 kbps") || !strings.Contains(out, "2000 kbps") {
		t.Errorf("x labels missing:\n%s", out)
	}
	// A QI≈1 point must land on the top row and QI=0 on the bottom
	// (series may overdraw each other at shared cells, so accept any
	// glyph).
	lines := strings.Split(out, "\n")
	if !strings.ContainsAny(lines[1], "*o") {
		t.Errorf("top row missing worst-quality point:\n%s", out)
	}
	if !strings.ContainsAny(lines[10], "*o") {
		t.Errorf("bottom row missing best-quality point:\n%s", out)
	}
}

func TestPlotLossMode(t *testing.T) {
	out := plotFixture().Plot(40, 10, true)
	if !strings.Contains(out, "frame loss") {
		t.Errorf("metric label missing:\n%s", out)
	}
}

func TestPlotEmpty(t *testing.T) {
	f := &Figure{ID: "E"}
	if out := f.Plot(40, 10, false); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
}

func TestPlotDefaults(t *testing.T) {
	out := plotFixture().Plot(0, 0, false)
	if len(strings.Split(out, "\n")) < 10 {
		t.Error("default dimensions too small")
	}
}
