package experiment

import (
	"testing"

	"repro/internal/units"
	"repro/internal/video"
)

func TestRunQBonePointAvgSingleRunEqualsPoint(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	a := RunQBonePointAvg(enc, enc, 1.05e6, 3000, DefaultSeed, 0, 1)
	b := RunQBonePoint(enc, enc, 1.05e6, 3000, DefaultSeed, 0)
	if a.Quality != b.Quality || a.FrameLoss != b.FrameLoss {
		t.Errorf("runs=1 average differs from single point: %+v vs %+v", a.Evaluation, b.Evaluation)
	}
}

func TestRunQBonePointAvgReducesVariance(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	enc := video.EncodeCBR(video.Lost(), 1.0e6)
	// Averages over overlapping windows move less than single seeds.
	singles := make([]float64, 4)
	for i := range singles {
		singles[i] = RunQBonePoint(enc, enc, 1.0e6, 3000, DefaultSeed+uint64(i), 0).Quality
	}
	avg1 := RunQBonePointAvg(enc, enc, 1.0e6, 3000, DefaultSeed, 0, 3).Quality
	avg2 := RunQBonePointAvg(enc, enc, 1.0e6, 3000, DefaultSeed+1, 0, 3).Quality
	spreadSingles := maxMin(singles)
	spreadAvgs := avg1 - avg2
	if spreadAvgs < 0 {
		spreadAvgs = -spreadAvgs
	}
	if spreadAvgs > spreadSingles+1e-9 {
		t.Errorf("averaging increased spread: %v vs %v", spreadAvgs, spreadSingles)
	}
}

func maxMin(v []float64) float64 {
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}

func TestScaleEdgeCases(t *testing.T) {
	if got := Scale(nil, 3); got != nil {
		t.Errorf("Scale(nil) = %v", got)
	}
	two := []units.BitRate{1, 2}
	if got := Scale(two, 10); len(got) != 2 {
		t.Errorf("Scale of 2 points = %v", got)
	}
	s := TokenSweep(100, 1000, 100) // 10 points
	got := Scale(s, 3)              // 100, 400, 700, 1000
	if len(got) != 4 || got[3] != s[9] {
		t.Errorf("Scale(10pts, 3) = %v", got)
	}
}
