package experiment

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestFormatEmptyFigure(t *testing.T) {
	fig := &Figure{ID: "X", Title: "empty"}
	out := fig.Format()
	if !strings.Contains(out, "X — empty") {
		t.Errorf("header missing: %q", out)
	}
}

func TestFormatRaggedSeries(t *testing.T) {
	fig := &Figure{
		ID: "Y", Title: "ragged",
		Series: []Series{
			{Label: "a", Points: []Point{
				{TokenRate: 1e6, Evaluation: Evaluation{FrameLoss: 0.1, Quality: 0.2}},
				{TokenRate: 2e6, Evaluation: Evaluation{FrameLoss: 0, Quality: 0}},
			}},
			{Label: "b", Points: []Point{
				{TokenRate: 1e6, Evaluation: Evaluation{FrameLoss: 0.3, Quality: 0.4}},
			}},
		},
	}
	out := fig.Format()
	if !strings.Contains(out, "0.100") || !strings.Contains(out, "0.400") {
		t.Errorf("values missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 4 {
		t.Errorf("too few rows:\n%s", out)
	}
}

func TestEvaluationFieldsPropagate(t *testing.T) {
	p := Point{TokenRate: 1.5e6, Depth: 3000,
		Evaluation: Evaluation{FrameLoss: 0.25, Quality: 0.5, PacketLoss: 0.1, Calibration: 2}}
	if p.FrameLoss != 0.25 || p.Quality != 0.5 || p.Calibration != 2 {
		t.Error("embedding broken")
	}
	if p.TokenRate != units.BitRate(1.5e6) {
		t.Error("token rate lost")
	}
}

func TestStandardDepths(t *testing.T) {
	d := StandardDepths()
	if len(d) != 2 || d[0] != 3000 || d[1] != 4500 {
		t.Errorf("StandardDepths = %v", d)
	}
}
