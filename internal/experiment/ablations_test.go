package experiment

import "testing"

// TestAblationAFCrossTrafficDependence asserts the reason the paper
// deferred AF (§2.1): outcomes depend on the in-class cross traffic.
// With a lightly loaded class, even a too-small CIR (lots of red
// packets) streams perfectly; under heavy in-class load, quality
// becomes a function of the committed rate.
func TestAblationAFCrossTrafficDependence(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	pts := AblationAF(DefaultSeed)
	t.Log("\n" + FormatAF(pts))
	byKey := map[[2]int]AFPoint{}
	for _, p := range pts {
		byKey[[2]int{int(p.AFLoad * 100), int(p.CIR)}] = p
	}
	lowLoadSmallCIR := byKey[[2]int{15, 600000}]
	highLoadSmallCIR := byKey[[2]int{75, 600000}]
	highLoadBigCIR := byKey[[2]int{75, 1400000}]
	if lowLoadSmallCIR.Quality > 0.05 {
		t.Errorf("light AF class: quality %v despite red marking — RIO should not drop", lowLoadSmallCIR.Quality)
	}
	if highLoadSmallCIR.Quality <= lowLoadSmallCIR.Quality+0.05 {
		t.Errorf("congested AF class did not punish out-of-profile traffic: %v vs %v",
			highLoadSmallCIR.Quality, lowLoadSmallCIR.Quality)
	}
	if highLoadBigCIR.Quality > 0.05 {
		t.Errorf("all-green stream suffered under load: %v", highLoadBigCIR.Quality)
	}
	if highLoadSmallCIR.Quality <= highLoadBigCIR.Quality {
		t.Error("CIR made no difference under congestion")
	}
	// Marking itself must be monotone in CIR.
	if !(byKey[[2]int{15, 600000}].Red > byKey[[2]int{15, 1000000}].Red &&
		byKey[[2]int{15, 1000000}].Red >= byKey[[2]int{15, 1400000}].Red) {
		t.Error("red packet count not monotone in CIR")
	}
}

func TestAblationJitterRuns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	out := AblationJitter(DefaultSeed)
	t.Log("\n" + out)
	if out == "" {
		t.Fatal("empty ablation output")
	}
}

func TestAblationHopCountRuns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	out := AblationHopCount(DefaultSeed)
	t.Log("\n" + out)
	if out == "" {
		t.Fatal("empty ablation output")
	}
}

func TestAblationShaperVsDrop(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	fig := AblationShaperVsDrop(DefaultSeed)
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Where the profile covers the stream (token ≥ avg rate), shaping
	// must be at least as good as dropping: the playout buffer absorbs
	// the shaper's small delays, while policer losses are permanent.
	// Below the average rate both are bad — a shaper under sustained
	// deficit builds unbounded delay — so no ordering is asserted.
	get := func(label string) Series {
		for _, s := range fig.Series {
			if s.Label == label {
				return s
			}
		}
		t.Fatalf("missing series %s", label)
		return Series{}
	}
	for _, depth := range []string{"B=3000", "B=4500"} {
		drop, shape := get("drop/"+depth), get("shape/"+depth)
		for i := range drop.Points {
			if drop.Points[i].TokenRate < 1.7e6 {
				continue // sustained-deficit regime
			}
			if shape.Points[i].Quality > drop.Points[i].Quality+0.05 {
				t.Errorf("%s @ %v: shaping (%.3f) worse than dropping (%.3f)",
					depth, drop.Points[i].TokenRate,
					shape.Points[i].Quality, drop.Points[i].Quality)
			}
		}
	}
}

func TestEFServiceReport(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("full simulation")
	}
	out := EFServiceReport(DefaultSeed)
	t.Log("\n" + out)
	if out == "" {
		t.Fatal("empty report")
	}
}
