package client

import (
	"testing"

	"repro/internal/units"
)

func TestReporterLossFraction(t *testing.T) {
	clk := &fakeClock{}
	c := NewUDP(clk, 100)
	sent := 0
	r := NewReporter(c, func() int { return sent })

	// Interval 1: 10 sent, 8 received.
	sent = 10
	for i := 0; i < 8; i++ {
		c.Handle(frag(i, 0, 1))
	}
	rep := r.Poll(units.Second)
	if rep.Expected != 10 || rep.Received != 8 {
		t.Fatalf("interval 1: %+v", rep)
	}
	if rep.LossFrac < 0.199 || rep.LossFrac > 0.201 {
		t.Errorf("loss = %v, want ≈0.2", rep.LossFrac)
	}

	// Interval 2: 5 more sent, all received — deltas, not cumulative.
	sent = 15
	for i := 8; i < 13; i++ {
		c.Handle(frag(i, 0, 1))
	}
	rep = r.Poll(2 * units.Second)
	if rep.Expected != 5 || rep.Received != 5 || rep.LossFrac != 0 {
		t.Errorf("interval 2: %+v", rep)
	}
	if rep.Interval != units.Second {
		t.Errorf("interval duration %v", rep.Interval)
	}
	if len(r.History) != 2 {
		t.Errorf("history = %d", len(r.History))
	}
}

func TestReporterDelay(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	r := NewReporter(c, func() int { return 0 })
	r.ObserveDelay(10 * units.Millisecond)
	r.ObserveDelay(20 * units.Millisecond)
	rep := r.Poll(units.Second)
	if rep.MeanDelay != 15*units.Millisecond {
		t.Errorf("mean delay = %v", rep.MeanDelay)
	}
	// Next interval starts clean.
	rep = r.Poll(2 * units.Second)
	if rep.MeanDelay != 0 {
		t.Errorf("delay leaked across intervals: %v", rep.MeanDelay)
	}
}

func TestReporterClampsNegativeLoss(t *testing.T) {
	// Duplicated or reordered accounting can make received > expected;
	// the loss fraction must clamp at 0 like RTCP implementations do.
	c := NewUDP(&fakeClock{}, 100)
	sent := 2
	r := NewReporter(c, func() int { return sent })
	for i := 0; i < 3; i++ {
		c.Handle(frag(i, 0, 1))
	}
	rep := r.Poll(units.Second)
	if rep.LossFrac != 0 {
		t.Errorf("loss = %v, want clamp to 0", rep.LossFrac)
	}
}
