package client

import (
	"repro/internal/units"
)

// Report is an RTCP-receiver-report-style summary of one feedback
// interval: what the adaptive servers of §2.2 poll to steer their
// rate. Loss is computed from packet-count deltas the way RTCP does
// (expected minus received over the interval), and delay is the mean
// one-way delay of the interval's packets.
type Report struct {
	Interval  units.Time
	Expected  int // packets the sender reports having sent
	Received  int
	LossFrac  float64
	MeanDelay units.Time
}

// Reporter accumulates per-interval receiver statistics from a UDP
// client and a sender packet counter. It replaces ad-hoc closures in
// experiment wiring: the server polls Poll() once per feedback tick.
type Reporter struct {
	client   *UDP
	sentFn   func() int // sender-side cumulative packet count
	lastSent int
	lastRecv int
	lastTime units.Time

	// delay accumulation for the current interval
	delaySum units.Time
	delayN   int

	History []Report
}

// NewReporter wires a reporter between a client and a sender counter.
func NewReporter(c *UDP, sent func() int) *Reporter {
	return &Reporter{client: c, sentFn: sent}
}

// ObserveDelay feeds one packet's one-way delay (callers that want
// delay in reports tee arriving packets through this).
func (r *Reporter) ObserveDelay(d units.Time) {
	r.delaySum += d
	r.delayN++
}

// Poll closes the current interval and returns its report.
func (r *Reporter) Poll(now units.Time) Report {
	sent, recv := r.sentFn(), r.client.Packets
	rep := Report{
		Interval: now - r.lastTime,
		Expected: sent - r.lastSent,
		Received: recv - r.lastRecv,
	}
	if rep.Expected > 0 {
		rep.LossFrac = 1 - float64(rep.Received)/float64(rep.Expected)
		if rep.LossFrac < 0 {
			rep.LossFrac = 0
		}
	}
	if r.delayN > 0 {
		rep.MeanDelay = r.delaySum / units.Time(r.delayN)
	}
	r.lastSent, r.lastRecv, r.lastTime = sent, recv, now
	r.delaySum, r.delayN = 0, 0
	r.History = append(r.History, rep)
	return rep
}
