package client

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

type fakeClock struct{ now units.Time }

func (c *fakeClock) Now() units.Time { return c.now }

func frag(seq, idx, count int) *packet.Packet {
	return &packet.Packet{FrameSeq: seq, FragIndex: idx, FragCount: count, Size: 1500}
}

func TestUDPReassemblyComplete(t *testing.T) {
	clk := &fakeClock{}
	c := NewUDP(clk, 10)
	clk.now = units.Second
	c.Handle(frag(0, 0, 3))
	clk.now = 2 * units.Second
	c.Handle(frag(0, 1, 3))
	clk.now = 3 * units.Second
	c.Handle(frag(0, 2, 3))
	tr := c.Finish()
	if len(tr.Records) != 1 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	r := tr.Records[0]
	if r.Arrival != 3*units.Second {
		t.Errorf("arrival = %v, want last fragment time", r.Arrival)
	}
	if r.Frags != 3 || r.LostFrags != 0 {
		t.Errorf("frags = %d lost = %d", r.Frags, r.LostFrags)
	}
}

func TestUDPIncompleteFrameNotDelivered(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	c.Handle(frag(0, 0, 3))
	c.Handle(frag(0, 1, 3))
	tr := c.Finish()
	if len(tr.Records) != 0 {
		t.Fatal("incomplete frame delivered without tolerance")
	}
}

func TestUDPToleranceConcealsLoss(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	c.Tolerance = SliceTolerance
	// 5-fragment frame missing one non-first fragment: concealed.
	for _, idx := range []int{0, 1, 2, 4} {
		c.Handle(frag(0, idx, 5))
	}
	// 5-fragment frame missing the first fragment: fatal.
	for _, idx := range []int{1, 2, 3, 4} {
		c.Handle(frag(1, idx, 5))
	}
	tr := c.Finish()
	if len(tr.Records) != 1 || tr.Records[0].Seq != 0 {
		t.Fatalf("records = %+v", tr.Records)
	}
	if tr.Records[0].LostFrags != 1 || tr.Records[0].Frags != 5 {
		t.Errorf("damage bookkeeping: %+v", tr.Records[0])
	}
}

func TestUDPToleranceLimit(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	c.Tolerance = SliceTolerance // (frags+1)/3 = 2 for 6 frags
	// 6-fragment frame missing three: dropped.
	for _, idx := range []int{0, 1, 2} {
		c.Handle(frag(0, idx, 6))
	}
	if len(c.Finish().Records) != 0 {
		t.Error("over-damaged frame delivered")
	}
}

func TestSliceToleranceValues(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 1, 5: 2, 6: 2, 8: 3}
	for frags, want := range cases {
		if got := SliceTolerance(frags); got != want {
			t.Errorf("SliceTolerance(%d) = %d, want %d", frags, got, want)
		}
	}
}

func TestUDPPresentationTimes(t *testing.T) {
	clk := &fakeClock{now: 5 * units.Second}
	c := NewUDP(clk, 10)
	c.Handle(frag(0, 0, 1))
	clk.now = 6 * units.Second
	c.Handle(frag(3, 0, 1))
	tr := c.Finish()
	iv := video.FrameInterval()
	if tr.Records[0].Presentation != 5*units.Second {
		t.Errorf("frame 0 presentation %v", tr.Records[0].Presentation)
	}
	want := 5*units.Second + 3*iv
	if tr.Records[1].Presentation != want {
		t.Errorf("frame 3 presentation %v, want %v", tr.Records[1].Presentation, want)
	}
}

func TestUDPIgnoresDuplicatesAfterEmit(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	c.Handle(frag(0, 0, 1))
	c.Handle(frag(0, 0, 1)) // duplicate
	tr := c.Finish()
	if len(tr.Records) != 1 {
		t.Errorf("duplicate created extra record")
	}
	if c.Packets != 2 {
		t.Errorf("packet count = %d", c.Packets)
	}
}

func TestUDPIgnoresNonVideo(t *testing.T) {
	c := NewUDP(&fakeClock{}, 10)
	c.Handle(&packet.Packet{FrameSeq: -1, Size: 100})
	if len(c.Finish().Records) != 0 {
		t.Error("cross traffic created a frame record")
	}
}

func mkCBREnc() *video.Encoding {
	return video.EncodeCBR(video.Lost(), 1.0e6)
}

func TestDecodeMPEGPropagation(t *testing.T) {
	enc := mkCBREnc()
	// Received: everything except frame 0 (the first I frame).
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	for i := 1; i < 24; i++ {
		tr.Add(trace.FrameRecord{Seq: i})
	}
	out := DecodeMPEG(tr, enc)
	// GoP 1 (frames 0-11): I lost -> P frames (3,6,9) undecodable and
	// B frames too. GoP 2 (frames 12-23) intact: 12 frames.
	for _, r := range out.Records {
		if r.Seq < 12 {
			t.Fatalf("frame %d decoded without its I frame", r.Seq)
		}
	}
	if len(out.Records) != 12 {
		t.Errorf("decoded %d frames, want 12", len(out.Records))
	}
}

func TestDecodeMPEGLostPBreaksChain(t *testing.T) {
	enc := mkCBREnc()
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	// Receive frames 0..11 except the P frame at 3.
	for i := 0; i < 12; i++ {
		if i != 3 {
			tr.Add(trace.FrameRecord{Seq: i})
		}
	}
	out := DecodeMPEG(tr, enc)
	// I(0) ok; B(1,2) ok; P(3) lost -> P(6),P(9) broken and B(4,5,7,8,10,11) too.
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(out.Records) != len(want) {
		t.Fatalf("decoded %d frames: %+v", len(out.Records), out.Records)
	}
	for _, r := range out.Records {
		if !want[r.Seq] {
			t.Errorf("frame %d should not decode", r.Seq)
		}
	}
}

func TestDecodeMPEGPerfectInput(t *testing.T) {
	enc := mkCBREnc()
	tr := &trace.Trace{ClipFrames: enc.Clip.FrameCount()}
	for i := 0; i < enc.Clip.FrameCount(); i++ {
		tr.Add(trace.FrameRecord{Seq: i})
	}
	out := DecodeMPEG(tr, enc)
	if len(out.Records) != enc.Clip.FrameCount() {
		t.Errorf("perfect input lost frames: %d", len(out.Records))
	}
}

func TestStreamAssembler(t *testing.T) {
	var a StreamAssembler
	a.RegisterMessage(0, 100)
	a.RegisterMessage(1, 200)
	a.RegisterMessage(2, 50)
	if a.TotalBytes() != 350 {
		t.Errorf("TotalBytes = %d", a.TotalBytes())
	}
	if got := a.Consume(99); len(got) != 0 {
		t.Errorf("early completion: %v", got)
	}
	if got := a.Consume(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("frame 0 completion: %v", got)
	}
	if got := a.Consume(250); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("remaining completions: %v", got)
	}
	if got := a.Consume(1000); len(got) != 0 {
		t.Errorf("overconsumption: %v", got)
	}
}

func TestStreamReceiver(t *testing.T) {
	clk := &fakeClock{now: units.Second}
	c := NewStream(clk, 10)
	var a StreamAssembler
	a.RegisterMessage(0, 1000)
	a.RegisterMessage(2, 500) // frame 1 thinned by the server
	c.OnDelivered(&a, 1000)
	clk.now = 2 * units.Second
	c.OnDelivered(&a, 500)
	tr := c.Finish()
	if len(tr.Records) != 2 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	if tr.Records[1].Seq != 2 || tr.Records[1].Arrival != 2*units.Second {
		t.Errorf("record: %+v", tr.Records[1])
	}
	if tr.LostFrames() != 8 {
		t.Errorf("lost = %d (thinned frames must count as lost)", tr.LostFrames())
	}
}
