package client

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// TestReassemblyOrderInvariance: a frame's delivery verdict must not
// depend on the order its fragments arrive in.
func TestReassemblyOrderInvariance(t *testing.T) {
	f := func(seed uint64, frags uint8, lose uint8) bool {
		n := int(frags%7) + 2 // 2..8 fragments
		lost := int(lose) % n // 0..n-1 losses
		rng := sim.NewRNG(seed)

		run := func(shuffle bool) (delivered bool, damage int) {
			clk := &fakeClock{}
			c := NewUDP(clk, 10)
			c.Tolerance = SliceTolerance
			idx := make([]int, 0, n)
			for i := 0; i < n; i++ {
				idx = append(idx, i)
			}
			if shuffle {
				for i := len(idx) - 1; i > 0; i-- {
					j := rng.Intn(i + 1)
					idx[i], idx[j] = idx[j], idx[i]
				}
			}
			// Drop the *last* `lost` positions of the canonical order
			// so both runs lose the same fragment identities.
			dropped := map[int]bool{}
			for i := n - lost; i < n; i++ {
				dropped[i] = true
			}
			for _, fi := range idx {
				if dropped[fi] {
					continue
				}
				clk.now += units.Millisecond
				c.Handle(&packet.Packet{FrameSeq: 0, FragIndex: fi, FragCount: n, Size: 1500})
			}
			tr := c.Finish()
			if len(tr.Records) == 0 {
				return false, 0
			}
			return true, tr.Records[0].LostFrags
		}
		d1, l1 := run(false)
		d2, l2 := run(true)
		return d1 == d2 && l1 == l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodeMPEGNeverInventsFrames: the decode-dependency filter can
// only remove frames, never add or duplicate.
func TestDecodeMPEGNeverInventsFrames(t *testing.T) {
	enc := mkCBREnc()
	rng := sim.NewRNG(77)
	for trial := 0; trial < 20; trial++ {
		tr := newRandomTrace(rng, enc.Clip.FrameCount(), 0.3)
		out := DecodeMPEG(tr, enc)
		if len(out.Records) > len(tr.Records) {
			t.Fatal("decode added frames")
		}
		in := map[int]bool{}
		for _, r := range tr.Records {
			in[r.Seq] = true
		}
		seen := map[int]bool{}
		for _, r := range out.Records {
			if !in[r.Seq] {
				t.Fatalf("frame %d invented", r.Seq)
			}
			if seen[r.Seq] {
				t.Fatalf("frame %d duplicated", r.Seq)
			}
			seen[r.Seq] = true
		}
	}
}

// newRandomTrace builds a trace with each frame present independently
// with probability 1-lossP.
func newRandomTrace(rng *sim.RNG, n int, lossP float64) *trace.Trace {
	tr := &trace.Trace{ClipFrames: n}
	for i := 0; i < n; i++ {
		if rng.Float64() < lossP {
			continue
		}
		tr.Add(trace.FrameRecord{Seq: i, Frags: 1})
	}
	return tr
}
