// Package client implements the instrumented receiver: it reassembles
// video frames from UDP fragments (or from an in-order TCP byte
// stream), timestamps each completed frame, and records the timing
// trace the renderer-concealment step and the VQM tool consume — the
// role the modified DirectShow filter graph played in the paper
// (§3.1.1–3.1.2).
package client

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/video"
)

// Clock exposes simulated time.
type Clock interface {
	Now() units.Time
}

// fragState accumulates one frame's reassembly progress.
type fragState struct {
	total    int
	received int
	gotFirst bool
	last     units.Time
}

// UDP is a datagram receiver. By default a frame is usable only when
// all of its fragments arrive — the IP-reassembly semantics that made
// the large-datagram servers so fragile (one policed fragment kills
// the whole datagram and hence the frame). A Tolerance function can
// relax this for servers that send independent small messages, where
// a decoder conceals a missing slice as long as the frame header
// (first fragment) made it.
type UDP struct {
	clock Clock
	tr    *trace.Trace

	// Pool, when set, receives every delivered packet: the client is
	// the terminal owner on the forward path and retains nothing but
	// the frame trace (values, never packet pointers).
	Pool *packet.Pool

	// Tap, when set, receives a Deliver event per packet with the
	// one-way delay since the sender stamped it.
	Tap ptrace.Tap
	Hop ptrace.HopID

	base    units.Time
	started bool

	frameInterval units.Time
	frames        map[int]*fragState
	emitted       map[int]bool

	// Tolerance reports how many lost fragments of a frame with the
	// given fragment count the decoder can conceal. nil means zero.
	Tolerance func(frags int) int

	Packets      int
	PacketsBytes int64
}

// NewUDP returns a receiver for a clip with the given total frames.
func NewUDP(clock Clock, clipFrames int) *UDP {
	return &UDP{
		clock:         clock,
		tr:            &trace.Trace{ClipFrames: clipFrames},
		frameInterval: video.FrameInterval(),
		frames:        make(map[int]*fragState),
		emitted:       make(map[int]bool),
	}
}

// SliceTolerance is the concealment model for small-message servers
// (VideoCharger-style): the decoder conceals roughly one lost slice
// message in four and still emits the frame (with visible damage the
// quality model penalizes); more loss than that, or losing the first
// fragment (picture header — checked separately), drops the frame.
func SliceTolerance(frags int) int {
	t := (frags + 1) / 3
	if t < 1 {
		t = 1
	}
	return t
}

// Trace returns the accumulated frame trace.
func (c *UDP) Trace() *trace.Trace { return c.tr }

// Handle consumes one arriving packet and releases it: frame
// accounting copies everything it needs.
func (c *UDP) Handle(p *packet.Packet) {
	now := c.clock.Now()
	if !c.started {
		c.started = true
		c.base = now
	}
	c.Packets++
	c.PacketsBytes += int64(p.Size)
	if c.Tap != nil {
		c.Tap.Emit(ptrace.Event{
			Kind: ptrace.Deliver, Hop: c.Hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
			Delay: now - p.SentAt,
		})
	}
	seq, fragIndex, fragCount := p.FrameSeq, p.FragIndex, p.FragCount
	c.Pool.Put(p)
	if seq < 0 || c.emitted[seq] {
		return
	}
	st := c.frames[seq]
	if st == nil {
		st = &fragState{total: fragCount}
		c.frames[seq] = st
	}
	st.received++
	st.last = now
	if fragIndex == 0 {
		st.gotFirst = true
	}
	if st.received >= st.total {
		// Fully reassembled: emit immediately with exact timing.
		c.emit(seq, st)
	}
}

func (c *UDP) emit(seq int, st *fragState) {
	c.emitted[seq] = true
	delete(c.frames, seq)
	c.tr.Add(trace.FrameRecord{
		Seq:          seq,
		Arrival:      st.last,
		Presentation: c.base + units.Time(int64(seq))*c.frameInterval,
		Frags:        st.total,
		LostFrags:    st.total - st.received,
	})
}

// Finish resolves partially received frames through the Tolerance
// model, sorts the trace, and returns it.
func (c *UDP) Finish() *trace.Trace {
	if c.Tolerance != nil {
		for seq, st := range c.frames {
			lost := st.total - st.received
			if st.gotFirst && lost <= c.Tolerance(st.total) {
				c.emit(seq, st)
			}
		}
	}
	c.tr.SortBySeq()
	return c.tr
}

// DecodeMPEG filters a received-frame trace through MPEG-1 reference
// dependencies: an I frame decodes on its own; a P frame needs the
// previous anchor (I or P) decoded; a B frame needs the previous
// anchor too (the forward anchor is transmitted before the B pictures
// in coded order, so its availability is implied). A policed I frame
// therefore wipes out its GoP's remainder — the loss amplification a
// real decoder exhibits, and part of why small frame-loss differences
// move video quality so much.
func DecodeMPEG(tr *trace.Trace, enc *video.Encoding) *trace.Trace {
	received := make(map[int]trace.FrameRecord, len(tr.Records))
	for _, r := range tr.Records {
		received[r.Seq] = r
	}
	out := &trace.Trace{ClipFrames: tr.ClipFrames}
	anchorOK := false
	for i := 0; i < len(enc.Frames); i++ {
		r, ok := received[i]
		switch enc.Frames[i].Type {
		case video.IFrame:
			anchorOK = ok
			if ok {
				out.Add(r)
			}
		case video.PFrame:
			ok = ok && anchorOK
			anchorOK = ok
			if ok {
				out.Add(r)
			}
		default: // B frame
			if ok && anchorOK {
				out.Add(r)
			}
		}
	}
	return out
}

// Stream is a byte-stream receiver for TCP delivery: the server
// writes length-prefixed frame messages; the in-order byte stream is
// parsed back into frames. Frames are never lost on the wire — they
// are either delivered (possibly late) or were thinned by the server.
type Stream struct {
	clock Clock
	tr    *trace.Trace

	base    units.Time
	started bool

	frameInterval units.Time

	Bytes int64
}

// NewStream returns a TCP-side frame recorder.
func NewStream(clock Clock, clipFrames int) *Stream {
	return &Stream{
		clock:         clock,
		tr:            &trace.Trace{ClipFrames: clipFrames},
		frameInterval: video.FrameInterval(),
	}
}

// Trace returns the accumulated frame trace.
func (c *Stream) Trace() *trace.Trace { return c.tr }

// FrameHeaderSize is the length-prefix header of each frame message
// on the TCP stream: 4 bytes frame seq + 4 bytes body length.
const FrameHeaderSize = 8

// message is one sender-side framing record.
type message struct {
	seq int
	len int64
}

// StreamAssembler tracks the sender-side message framing so the
// receiver can translate "n more in-order bytes arrived" into
// completed frames. It is shared between the tcpsim sender and the
// Stream receiver; payload contents never exist, only lengths.
type StreamAssembler struct {
	msgs    []message
	cur     int
	curLeft int64
}

// RegisterMessage appends a frame message of length bytes (including
// header) for frame seq.
func (a *StreamAssembler) RegisterMessage(seq int, length int64) {
	a.msgs = append(a.msgs, message{seq: seq, len: length})
}

// TotalBytes reports the total registered stream length.
func (a *StreamAssembler) TotalBytes() int64 {
	var t int64
	for _, m := range a.msgs {
		t += m.len
	}
	return t
}

// Consume advances the assembler by n in-order delivered bytes and
// returns the frame sequence numbers completed by those bytes.
func (a *StreamAssembler) Consume(n int64) []int {
	var completed []int
	for n > 0 && a.cur < len(a.msgs) {
		if a.curLeft == 0 {
			a.curLeft = a.msgs[a.cur].len
		}
		take := n
		if take > a.curLeft {
			take = a.curLeft
		}
		a.curLeft -= take
		n -= take
		if a.curLeft == 0 {
			completed = append(completed, a.msgs[a.cur].seq)
			a.cur++
		}
	}
	return completed
}

// OnDelivered is the callback the tcpsim receiver invokes as the
// cumulative in-order byte count grows.
func (c *Stream) OnDelivered(asm *StreamAssembler, newBytes int64) {
	now := c.clock.Now()
	if !c.started {
		c.started = true
		c.base = now
	}
	c.Bytes += newBytes
	for _, seq := range asm.Consume(newBytes) {
		c.tr.Add(trace.FrameRecord{
			Seq:          seq,
			Arrival:      now,
			Presentation: c.base + units.Time(int64(seq))*c.frameInterval,
			Frags:        1,
		})
	}
}

// Finish sorts the trace and returns it.
func (c *Stream) Finish() *trace.Trace {
	c.tr.SortBySeq()
	return c.tr
}
