package client

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/stats"
)

// Aggregate is the O(1)-memory receiver of the aggregated-stats mode:
// where UDP keeps per-frame reassembly state and a full frame trace
// per flow, an Aggregate absorbs the deliveries of an entire
// equivalence class into streaming moments and fixed-size quantile
// sketches of one-way delay. A six-figure virtual-flow fleet keeps
// one Aggregate per class — memory and assembly cost O(classes), not
// O(flows) — at the price of frame-level semantics: no reassembly, no
// decode dependencies, no VQM scoring. Handle is allocation-free
// (the alloc budget suite pins it at 0 allocs warm), so the delivery
// hot path stays pooled end to end.
type Aggregate struct {
	clock Clock

	// Pool receives every delivered packet: like UDP, the Aggregate is
	// the terminal owner on the forward path.
	Pool *packet.Pool

	// Tap, when set, receives a Deliver event per packet with the
	// one-way delay since the sender stamped it.
	Tap ptrace.Tap
	Hop ptrace.HopID

	Packets int64
	Bytes   int64

	// Delay accumulates one-way delay in seconds; the sketches estimate
	// its median and tail.
	Delay    stats.Moments
	DelayP50 *stats.P2Quantile
	DelayP95 *stats.P2Quantile
	DelayP99 *stats.P2Quantile
}

// NewAggregate returns a class-level delivery accumulator.
func NewAggregate(clock Clock) *Aggregate {
	return &Aggregate{
		clock:    clock,
		DelayP50: stats.NewP2Quantile(0.50),
		DelayP95: stats.NewP2Quantile(0.95),
		DelayP99: stats.NewP2Quantile(0.99),
	}
}

// Handle folds one arriving packet into the class aggregates and
// releases it.
func (a *Aggregate) Handle(p *packet.Packet) {
	now := a.clock.Now()
	a.Packets++
	a.Bytes += int64(p.Size)
	d := (now - p.SentAt).Seconds()
	a.Delay.Add(d)
	a.DelayP50.Add(d)
	a.DelayP95.Add(d)
	a.DelayP99.Add(d)
	if a.Tap != nil {
		a.Tap.Emit(ptrace.Event{
			Kind: ptrace.Deliver, Hop: a.Hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
			Delay: now - p.SentAt,
		})
	}
	a.Pool.Put(p)
}
