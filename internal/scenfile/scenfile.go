// Package scenfile makes scenarios data instead of code: a JSON
// scenario file declares a workload — links, routers, policer/marker
// contracts, source populations (including batched mixtures), sweep
// axes, truncation, and capability flags — and the package compiles it
// into a registered experiment.Scenario, either by targeting one of
// the existing preset spec types (shapes "multiflow", "fleet",
// "tandem") or by compiling an arbitrary element graph onto a
// topology.Builder program (shape "graph").
//
// The compiler is held to the same determinism contract as the Go
// presets: the checked-in nflow and tandem scenario files in testdata/
// compile to byte-identical figures, per-flow stats, and canonicalized
// traces (the parity tests pin this), so a scenario file is a faithful
// spelling of a preset, not an approximation of one.
//
// All validation happens at parse time and every error names the
// offending field ("graph.elements[3].to: ..."), so `dsbench
// -scenario-file` can reject a broken file up front — before any
// simulation runs — matching the CLI's reject-up-front convention.
package scenfile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/experiment"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/video"
)

// Version is the scenario file format version this build parses.
const Version = 1

// File is the root of a scenario file. Exactly one shape section —
// matching the Shape selector — must be present.
type File struct {
	Version int    `json:"version"`
	Name    string `json:"name"`  // registry key (experiment.Register)
	ID      string `json:"id"`    // figure ID, e.g. "Scaling A"
	Title   string `json:"title"` // figure title / Describe() text

	// Shape selects the compilation target: "multiflow", "fleet", and
	// "tandem" compile to the corresponding preset spec types; "graph"
	// compiles an explicit element graph onto a topology.Builder.
	Shape string `json:"shape"`

	// Capabilities declares which runner knobs the compiled scenario
	// honors. The declaration must match what the shape actually
	// supports — the validator rejects a file that over- or
	// under-claims — so a reader can trust the file without knowing
	// the compiler's internals.
	Capabilities Capabilities `json:"capabilities"`

	Multiflow *MultiflowShape `json:"multiflow,omitempty"`
	Fleet     *FleetShape     `json:"fleet,omitempty"`
	Tandem    *TandemShape    `json:"tandem,omitempty"`
	Graph     *GraphShape     `json:"graph,omitempty"`
}

// Capabilities mirrors the runner's capability probes: Shards ↔
// experiment.ShardCapable (dsbench -shards), BucketWidth ↔ the
// -bucket-width knob (every Builder-based scenario honors it).
type Capabilities struct {
	Shards      bool `json:"shards"`
	BucketWidth bool `json:"bucket_width"`
}

// Contract is a token-bucket traffic contract (policer or shaper).
type Contract struct {
	RateBps    float64 `json:"rate_bps"`
	DepthBytes int64   `json:"depth_bytes"`
}

// MultiflowShape compiles to experiment.MultiFlowSpec: N policed
// video flows through one shared bottleneck, sweeping N.
type MultiflowShape struct {
	Clip              string    `json:"clip"` // "lost" or "dark"
	EncRateBps        float64   `json:"enc_rate_bps"`
	Flows             []int     `json:"flows"` // flow counts to sweep
	Policer           *Contract `json:"policer"`
	BottleneckRateBps float64   `json:"bottleneck_rate_bps"`
	Sched             string    `json:"sched"` // "priority", "drr", "wfq"
	BELoad            float64   `json:"be_load"`
	Seed              uint64    `json:"seed"`
	Batch             bool      `json:"batch,omitempty"`
	StaggerUS         int64     `json:"stagger_us,omitempty"`
}

// MixtureClass is one equivalence class of a fleet mixture. Source
// must be empty or "cbr": mixture classes share one cached CBR
// schedule per class, which only deterministic sources support.
type MixtureClass struct {
	Name       string  `json:"name"`
	Source     string  `json:"source,omitempty"` // "" or "cbr"
	Clip       string  `json:"clip"`
	EncRateBps float64 `json:"enc_rate_bps"`
	Share      float64 `json:"share"`
	TokenRate  float64 `json:"token_rate_bps"`
}

// FleetShape compiles to experiment.FleetSpec: class-batched mixtures
// swept across total flow count, with truncation and start windows.
type FleetShape struct {
	Flows             []int          `json:"flows"` // total virtual flows per point
	Classes           []MixtureClass `json:"classes"`
	DepthBytes        int64          `json:"depth_bytes"`
	BottleneckRateBps float64        `json:"bottleneck_rate_bps"`
	Sched             string         `json:"sched"`
	BELoad            float64        `json:"be_load"`
	Seed              uint64         `json:"seed"`
	TruncateUS        int64          `json:"truncate_us,omitempty"`
	StartWindowUS     int64          `json:"start_window_us,omitempty"`
}

// Sweep is a kbps token-rate axis (from/to inclusive).
type Sweep struct {
	FromKbps int `json:"from_kbps"`
	ToKbps   int `json:"to_kbps"`
	StepKbps int `json:"step_kbps"`
}

// TandemShape compiles to experiment.TandemSpec: the two-border
// burst-accumulation sweep.
type TandemShape struct {
	Clip       string  `json:"clip"`
	EncRateBps float64 `json:"enc_rate_bps"`
	TokenSweep *Sweep  `json:"token_sweep"`
	DepthBytes int64   `json:"depth_bytes"`
	Seed       uint64  `json:"seed"`
	Runs       int     `json:"runs,omitempty"`
}

// Parse decodes and validates a scenario file. Unknown fields are
// rejected (a typoed knob must not be silently ignored), and every
// validation error names the offending field.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenfile: %w", err)
	}
	// A second document after the first is a malformed file, not data.
	if dec.More() {
		return nil, fmt.Errorf("scenfile: trailing data after the scenario object")
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Marshal re-emits a file in canonical form: parsing Marshal's output
// yields a File equal to the input (the fuzz harness pins this).
func (f *File) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// errf builds the uniform "scenfile: <field>: <problem>" error.
func errf(field, format string, args ...any) error {
	return fmt.Errorf("scenfile: %s: %s", field, fmt.Sprintf(format, args...))
}

var clips = map[string]func() *video.Clip{
	"lost": video.Lost,
	"dark": video.Dark,
}

var scheds = map[string]topology.BottleneckSched{
	"priority": topology.PriorityBottleneck,
	"drr":      topology.DRRBottleneck,
	"wfq":      topology.WFQBottleneck,
}

var dscps = map[string]packet.DSCP{
	"ef":   packet.EF,
	"af11": packet.AF11,
	"af12": packet.AF12,
	"af13": packet.AF13,
	"be":   packet.BestEffort,
}

func checkClip(field, name string) error {
	if _, ok := clips[name]; !ok {
		return errf(field, "unknown clip %q (have \"lost\", \"dark\")", name)
	}
	return nil
}

func checkSched(field, name string) error {
	if _, ok := scheds[name]; !ok {
		return errf(field, "unknown bottleneck scheduler %q (have \"priority\", \"drr\", \"wfq\")", name)
	}
	return nil
}

func checkRate(field string, bps float64) error {
	if !(bps > 0) || math.IsInf(bps, 0) {
		return errf(field, "rate must be a positive finite bit rate, got %v", bps)
	}
	return nil
}

// Validate checks the whole file; Parse calls it, and Compile refuses
// files that have not passed it.
func (f *File) Validate() error {
	if f.Version != Version {
		return errf("version", "unsupported scenario file version %d (this build reads %d)", f.Version, Version)
	}
	if f.Name == "" {
		return errf("name", "required (the scenario registry key)")
	}
	if f.ID == "" {
		return errf("id", "required (the figure ID)")
	}
	if f.Title == "" {
		return errf("title", "required (the figure title)")
	}
	shapes := []struct {
		name    string
		present bool
	}{
		{"multiflow", f.Multiflow != nil},
		{"fleet", f.Fleet != nil},
		{"tandem", f.Tandem != nil},
		{"graph", f.Graph != nil},
	}
	ok := false
	for _, sh := range shapes {
		ok = ok || sh.name == f.Shape
	}
	if !ok {
		return errf("shape", "unknown shape %q (have \"multiflow\", \"fleet\", \"tandem\", \"graph\")", f.Shape)
	}
	for _, sh := range shapes {
		switch {
		case sh.name == f.Shape && !sh.present:
			return errf(sh.name, "shape is %q but the %q section is missing", f.Shape, sh.name)
		case sh.name != f.Shape && sh.present:
			return errf(sh.name, "section present but shape is %q", f.Shape)
		}
	}
	if !f.Capabilities.BucketWidth {
		return errf("capabilities.bucket_width", "must be true: every compiled scenario honors -bucket-width")
	}
	wantShards := f.Shape != "graph"
	if f.Capabilities.Shards != wantShards {
		if wantShards {
			return errf("capabilities.shards", "must be true: %q scenarios run on shard-capable presets", f.Shape)
		}
		return errf("capabilities.shards", "must be false: graph scenarios build one unpartitioned simulator per point")
	}
	switch f.Shape {
	case "multiflow":
		return f.Multiflow.validate()
	case "fleet":
		return f.Fleet.validate()
	case "tandem":
		return f.Tandem.validate()
	case "graph":
		return f.Graph.validate()
	}
	return nil
}

func validateFlowCounts(field string, ns []int) error {
	if len(ns) == 0 {
		return errf(field, "at least one flow count is required")
	}
	for i, n := range ns {
		if n < 1 {
			return errf(fmt.Sprintf("%s[%d]", field, i), "flow count must be >= 1, got %d", n)
		}
	}
	return nil
}

func (m *MultiflowShape) validate() error {
	if err := checkClip("multiflow.clip", m.Clip); err != nil {
		return err
	}
	if err := checkRate("multiflow.enc_rate_bps", m.EncRateBps); err != nil {
		return err
	}
	if err := validateFlowCounts("multiflow.flows", m.Flows); err != nil {
		return err
	}
	if m.Policer == nil {
		return errf("multiflow.policer", "required (the per-flow EF contract)")
	}
	if !(m.Policer.RateBps > 0) || math.IsInf(m.Policer.RateBps, 0) {
		return errf("multiflow.policer.rate_bps", "policer rate must be positive, got %v", m.Policer.RateBps)
	}
	if m.Policer.DepthBytes <= 0 {
		return errf("multiflow.policer.depth_bytes", "bucket depth must be positive, got %d", m.Policer.DepthBytes)
	}
	if err := checkRate("multiflow.bottleneck_rate_bps", m.BottleneckRateBps); err != nil {
		return err
	}
	if err := checkSched("multiflow.sched", m.Sched); err != nil {
		return err
	}
	if m.BELoad < 0 || m.BELoad >= 1 || math.IsNaN(m.BELoad) {
		return errf("multiflow.be_load", "best-effort load must be in [0, 1), got %v", m.BELoad)
	}
	if m.StaggerUS < 0 {
		return errf("multiflow.stagger_us", "stagger must be >= 0, got %d", m.StaggerUS)
	}
	return nil
}

func (fl *FleetShape) validate() error {
	if err := validateFlowCounts("fleet.flows", fl.Flows); err != nil {
		return err
	}
	if len(fl.Classes) == 0 {
		return errf("fleet.classes", "at least one mixture class is required")
	}
	names := map[string]bool{}
	share := 0.0
	for i, c := range fl.Classes {
		field := fmt.Sprintf("fleet.classes[%d]", i)
		if c.Name == "" {
			return errf(field+".name", "required")
		}
		if names[c.Name] {
			return errf(field+".name", "duplicate class name %q", c.Name)
		}
		names[c.Name] = true
		switch c.Source {
		case "", "cbr":
		case "poisson":
			return errf(field+".source",
				"poisson sources cannot be batched in a mixture class (class batching replays one cached CBR schedule per class; use \"cbr\")")
		default:
			return errf(field+".source", "unknown source model %q (mixture classes support \"cbr\")", c.Source)
		}
		if err := checkClip(field+".clip", c.Clip); err != nil {
			return err
		}
		if err := checkRate(field+".enc_rate_bps", c.EncRateBps); err != nil {
			return err
		}
		if !(c.Share > 0) || c.Share > 1 {
			return errf(field+".share", "share must be in (0, 1], got %v", c.Share)
		}
		if !(c.TokenRate > 0) || math.IsInf(c.TokenRate, 0) {
			return errf(field+".token_rate_bps", "policer rate must be positive, got %v", c.TokenRate)
		}
		share += c.Share
	}
	if math.Abs(share-1) > 1e-9 {
		return errf("fleet.classes", "class shares must sum to 1, got %v", share)
	}
	if fl.DepthBytes <= 0 {
		return errf("fleet.depth_bytes", "bucket depth must be positive, got %d", fl.DepthBytes)
	}
	if err := checkRate("fleet.bottleneck_rate_bps", fl.BottleneckRateBps); err != nil {
		return err
	}
	if err := checkSched("fleet.sched", fl.Sched); err != nil {
		return err
	}
	if fl.BELoad < 0 || fl.BELoad >= 1 || math.IsNaN(fl.BELoad) {
		return errf("fleet.be_load", "best-effort load must be in [0, 1), got %v", fl.BELoad)
	}
	if fl.TruncateUS < 0 {
		return errf("fleet.truncate_us", "truncation must be >= 0 (0 streams the whole clip), got %d", fl.TruncateUS)
	}
	if fl.StartWindowUS < 0 {
		return errf("fleet.start_window_us", "start window must be >= 0, got %d", fl.StartWindowUS)
	}
	return nil
}

func (s *Sweep) validate(field string) error {
	if s.FromKbps <= 0 {
		return errf(field+".from_kbps", "sweep start must be positive, got %d", s.FromKbps)
	}
	if s.ToKbps < s.FromKbps {
		return errf(field+".to_kbps", "sweep end %d is below its start %d", s.ToKbps, s.FromKbps)
	}
	if s.StepKbps <= 0 {
		return errf(field+".step_kbps", "sweep step must be positive, got %d", s.StepKbps)
	}
	return nil
}

func (t *TandemShape) validate() error {
	if err := checkClip("tandem.clip", t.Clip); err != nil {
		return err
	}
	if err := checkRate("tandem.enc_rate_bps", t.EncRateBps); err != nil {
		return err
	}
	if t.TokenSweep == nil {
		return errf("tandem.token_sweep", "required (the border token-rate axis)")
	}
	if err := t.TokenSweep.validate("tandem.token_sweep"); err != nil {
		return err
	}
	if t.DepthBytes <= 0 {
		return errf("tandem.depth_bytes", "bucket depth must be positive, got %d", t.DepthBytes)
	}
	if t.Runs < 0 {
		return errf("tandem.runs", "seed-averaged runs must be >= 0 (0 means the preset default), got %d", t.Runs)
	}
	return nil
}

// Compile turns a validated file into a runnable scenario. The preset
// shapes compile to the same spec types the Go presets construct, so
// equality of the spec values is equality of every output byte.
func (f *File) Compile() (experiment.Scenario, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	switch f.Shape {
	case "multiflow":
		return f.compileMultiflow(), nil
	case "fleet":
		return f.compileFleet(), nil
	case "tandem":
		return f.compileTandem(), nil
	default: // "graph"; Validate admits nothing else
		return f.compileGraph(), nil
	}
}
