package scenfile

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioFile holds the parser to two properties on arbitrary
// bytes: it never panics, and any input it accepts survives a full
// parse → compile → re-emit → parse round trip with the re-parsed
// file equal to the first (so Marshal is a faithful canonical form
// and compilation cannot trip over an input validation admitted).
func FuzzScenarioFile(f *testing.F) {
	ents, err := os.ReadDir("testdata")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version": 1, "name": "x", "shape": "tandem"}`))
	f.Add([]byte(`{]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if _, err := parsed.Compile(); err != nil {
			t.Fatalf("validated file failed to compile: %v", err)
		}
		out, err := parsed.Marshal()
		if err != nil {
			t.Fatalf("validated file failed to marshal: %v", err)
		}
		again, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(parsed, again) {
			t.Fatalf("round trip diverged:\nfirst:  %+v\nsecond: %+v", parsed, again)
		}
	})
}
