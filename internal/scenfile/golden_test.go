package scenfile

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiment"
	"repro/internal/ptrace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestDumbbellGoldenDigest pins the dumbbell scenario — the workload
// that exists only as a config file — to a stored behavioral digest.
// The trace config matches the dsbench defaults, so the very same
// golden gates CI runs through `dstrace -compare-golden`. Scaled(1000)
// thins the sweep to its endpoints; the digest pins the first
// (tightest-contract) point.
func TestDumbbellGoldenDigest(t *testing.T) {
	s, err := LoadScenario("testdata/dumbbell.scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	scaled := s.(experiment.Scalable).Scaled(1000)
	dir := t.TempDir()
	tr := &experiment.TraceRequest{Dir: dir, Config: ptrace.Config{
		Capacity: 1 << 17, Head: 4096, Sample: 1,
	}, Digest: true}
	fig := experiment.RunScenarioOpts(scaled, experiment.RunOptions{Parallel: 2, Trace: tr})
	if len(fig.Series) == 0 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("unexpected figure shape: %+v", fig)
	}

	got, err := os.ReadFile(filepath.Join(dir, "dumbbell-tok1000000.digest"))
	if err != nil {
		t.Fatalf("run produced no digest: %v", err)
	}
	golden := filepath.Join("testdata", "dumbbell.digest")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("dumbbell digest diverged from golden (rerun with -update if intended)\ngot %d bytes, want %d", len(got), len(want))
	}

	// The digest must round-trip through the gate's reader and compare
	// clean against itself under zero thresholds.
	gs, err := ptrace.ReadSummary(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ptrace.ReadSummary(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if d := ptrace.CompareSummaries(ws, gs, ptrace.Thresholds{}); !d.Clean() {
		t.Errorf("digest not clean vs golden:\n%s", d.Format(10))
	}
}

// TestDumbbellRegisters exercises the registry entry point: the
// dumbbell file registers under its own name, a second load of the
// same name errors instead of panicking, and the compiled scenario
// correctly refuses the shard knob (a graph point is one
// unpartitioned simulator).
func TestDumbbellRegisters(t *testing.T) {
	s, err := LoadAndRegister("testdata/dumbbell.scenario.json")
	if err != nil {
		t.Fatal(err)
	}
	if experiment.Lookup("dumbbell") == nil {
		t.Fatal("dumbbell not in the registry after LoadAndRegister")
	}
	if experiment.SupportsSharding(s) {
		t.Error("graph scenario claims shard support")
	}
	if _, ok := s.(experiment.Scalable); !ok {
		t.Error("graph scenario does not honor -scale")
	}
	if _, err := LoadAndRegister("testdata/dumbbell.scenario.json"); err == nil {
		t.Fatal("duplicate registration did not error")
	}
}
