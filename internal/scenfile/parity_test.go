package scenfile

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/ptrace"
)

// The parity harness: a checked-in scenario file must be a faithful
// spelling of its Go preset, so running both must produce
// byte-identical figures, identical per-flow stats, and identical
// canonicalized traces. The file and the preset register under
// different names, so trace file names differ by exactly that prefix
// — everything after it must match.

// runTraced executes s with per-point traces into a temp dir and
// returns the figure plus the trace dir.
func runTraced(t *testing.T, s experiment.Scenario) (*experiment.Figure, string) {
	t.Helper()
	dir := t.TempDir()
	tr := &experiment.TraceRequest{Dir: dir, Config: ptrace.Config{
		Capacity: 1 << 17, Head: 4096, Sample: 1,
	}}
	fig := experiment.RunScenarioOpts(s, experiment.RunOptions{Parallel: 2, Trace: tr})
	return fig, dir
}

// stripAccounting zeroes the per-point fields that are sampled from
// the process, not the simulation (heap and wall clock), so the
// remaining comparison is exact.
func stripAccounting(fig *experiment.Figure) {
	for si := range fig.Series {
		for pi := range fig.Series[si].Points {
			fig.Series[si].Points[pi].HeapBytes = 0
			fig.Series[si].Points[pi].RunMS = 0
		}
	}
}

// tracesByLabel maps "<label>.ptrace" (scenario prefix stripped) to
// the canonicalized decoded trace.
func tracesByLabel(t *testing.T, dir, scenario string) map[string]*ptrace.Data {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]*ptrace.Data{}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".ptrace") {
			continue
		}
		label := strings.TrimPrefix(name, scenario+"-")
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := ptrace.ReadFormat(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ptrace.CanonicalizePacketIDs(d)
		out[label] = d
	}
	return out
}

// assertParity runs the preset and the file-compiled scenario and
// compares figures, per-flow stats, and canonicalized traces.
func assertParity(t *testing.T, preset experiment.Scenario, path string) {
	t.Helper()
	file, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if testing.Short() {
		preset = preset.(experiment.Scalable).Scaled(4)
		file = file.(experiment.Scalable).Scaled(4)
	}

	figP, dirP := runTraced(t, preset)
	figF, dirF := runTraced(t, file)

	if got, want := figF.Format(), figP.Format(); got != want {
		t.Errorf("figure text diverged:\nfile:\n%s\npreset:\n%s", got, want)
	}
	stripAccounting(figP)
	stripAccounting(figF)
	if !reflect.DeepEqual(figF.Series, figP.Series) {
		t.Errorf("per-point stats diverged:\nfile:   %+v\npreset: %+v", figF.Series, figP.Series)
	}

	trP := tracesByLabel(t, dirP, preset.Name())
	trF := tracesByLabel(t, dirF, file.Name())
	if len(trP) == 0 {
		t.Fatal("preset run wrote no traces")
	}
	if len(trF) != len(trP) {
		t.Fatalf("trace count diverged: file %d, preset %d", len(trF), len(trP))
	}
	for label, dp := range trP {
		df, ok := trF[label]
		if !ok {
			t.Errorf("file run missing trace %q", label)
			continue
		}
		if !reflect.DeepEqual(df.Hops, dp.Hops) {
			t.Errorf("%s: hop tables diverged: %v vs %v", label, df.Hops, dp.Hops)
		}
		if !reflect.DeepEqual(df.Events, dp.Events) {
			t.Errorf("%s: canonicalized events diverged (%d vs %d events)",
				label, len(df.Events), len(dp.Events))
		}
	}
}

func TestNFlowFileParity(t *testing.T) {
	assertParity(t, experiment.NFlowSweepSpec(), "testdata/nflow.scenario.json")
}

func TestTandemFileParity(t *testing.T) {
	assertParity(t, experiment.TandemSweepSpec(), "testdata/tandem.scenario.json")
}
