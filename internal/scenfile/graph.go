package scenfile

import (
	"fmt"

	"repro/internal/client"
	"repro/internal/experiment"
	"repro/internal/node"
	"repro/internal/packet"
	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// The "graph" shape: an explicit element graph compiled onto a
// topology.Builder. This is the shape with no Go preset behind it —
// dumbbells, parking lots, asymmetric multi-bottleneck paths — so the
// compiler here owns the full determinism contract: elements are
// declared in file order (the Builder forks the simulator RNG per
// element in declaration order), clients are declared before them in
// flow order, and servers start in flow order after Build. Two runs of
// the same file are therefore bit-identical, like every preset.

// GraphShape declares an element graph plus the video flows that
// traverse it.
type GraphShape struct {
	Seed uint64 `json:"seed"`

	// Flows are the measured video streams: each gets an auto-declared
	// client ("<name>-client") and a paced server injecting at Entry.
	Flows []GraphFlow `json:"flows"`

	// Elements is the wired graph, in declaration order. Targets may
	// reference any element, any "<flow>-client", or the auto-declared
	// terminal "sink".
	Elements []Element `json:"elements"`

	// Borders names the policer elements whose aggregate verdicts
	// define the figure's PacketLoss column (Σ dropped / Σ offered).
	Borders []string `json:"borders,omitempty"`

	// Sweep, when present, overrides the named policers' token rates
	// across the axis — one figure row per rate. Without it the
	// scenario runs a single point at the declared rates.
	Sweep *GraphSweep `json:"sweep,omitempty"`
}

// GraphFlow is one measured video stream.
type GraphFlow struct {
	Name       string  `json:"name"`
	Clip       string  `json:"clip"`
	EncRateBps float64 `json:"enc_rate_bps"`
	Flow       int64   `json:"flow"`  // packet flow id (> 0)
	Entry      string  `json:"entry"` // element the server injects into
}

// SchedJSON selects a link scheduler: "ef_priority" (High/Low class
// limits) or "fifo" (Limit; 0 = unbounded).
type SchedJSON struct {
	Kind  string `json:"kind"`
	High  int    `json:"high,omitempty"`
	Low   int    `json:"low,omitempty"`
	Limit int    `json:"limit,omitempty"`
}

// RuleJSON is one router classification rule: exactly one of Flow or
// DSCP selects the match.
type RuleJSON struct {
	Name string `json:"name"`
	Flow int64  `json:"flow,omitempty"`
	DSCP string `json:"dscp,omitempty"`
	To   string `json:"to"`
}

// SourceJSON is a background-traffic generator attached to a source
// element.
type SourceJSON struct {
	Model   string  `json:"model"` // "poisson" or "cbr"
	RateBps float64 `json:"rate_bps"`
	Size    int     `json:"size,omitempty"` // packet size; 0 = Ethernet MTU
	Flow    int64   `json:"flow"`
	DSCP    string  `json:"dscp"`
	Batch   int     `json:"batch,omitempty"` // CBR only: phase-offset virtual flows
}

// Element is one node of the graph. Kind selects which fields apply:
//
//	link:    rate_bps, delay_us, sched, to
//	jitter:  max_jitter_us, to
//	loss:    loss_p, to
//	router:  to (default route), rules
//	policer: rate_bps, depth_bytes, mark, to
//	shaper:  rate_bps, depth_bytes, mark, to
//	source:  source, to
type Element struct {
	Kind string `json:"kind"`
	Name string `json:"name"`
	To   string `json:"to,omitempty"`

	RateBps     float64     `json:"rate_bps,omitempty"`
	DelayUS     int64       `json:"delay_us,omitempty"`
	Sched       *SchedJSON  `json:"sched,omitempty"`
	MaxJitterUS int64       `json:"max_jitter_us,omitempty"`
	LossP       float64     `json:"loss_p,omitempty"`
	DepthBytes  int64       `json:"depth_bytes,omitempty"`
	Mark        string      `json:"mark,omitempty"`
	Rules       []RuleJSON  `json:"rules,omitempty"`
	Source      *SourceJSON `json:"source,omitempty"`
}

// GraphSweep sweeps a parameter of named elements. "token_rate" (the
// only parameter so far) retargets each named policer's rate.
type GraphSweep struct {
	Parameter string   `json:"parameter"`
	Targets   []string `json:"targets"`
	FromKbps  int      `json:"from_kbps"`
	ToKbps    int      `json:"to_kbps"`
	StepKbps  int      `json:"step_kbps"`
}

func checkDSCP(field, name string) error {
	if _, ok := dscps[name]; !ok {
		return errf(field, "unknown DSCP %q (have \"ef\", \"af11\", \"af12\", \"af13\", \"be\")", name)
	}
	return nil
}

func (g *GraphShape) validate() error {
	if len(g.Flows) == 0 {
		return errf("graph.flows", "at least one measured video flow is required")
	}
	// Known targets: the auto-declared sink and clients, then every
	// element. Collect names first — wiring may reference forward.
	known := map[string]bool{"sink": true}
	for i, gf := range g.Flows {
		field := fmt.Sprintf("graph.flows[%d]", i)
		if gf.Name == "" {
			return errf(field+".name", "required")
		}
		cl := gf.Name + "-client"
		if known[cl] {
			return errf(field+".name", "duplicate flow name %q", gf.Name)
		}
		known[cl] = true
	}
	for i, el := range g.Elements {
		field := fmt.Sprintf("graph.elements[%d]", i)
		if el.Name == "" {
			return errf(field+".name", "required")
		}
		if known[el.Name] {
			return errf(field+".name", "duplicate element name %q", el.Name)
		}
		known[el.Name] = true
	}
	flowIDs := map[int64]bool{}
	for i, gf := range g.Flows {
		field := fmt.Sprintf("graph.flows[%d]", i)
		if err := checkClip(field+".clip", gf.Clip); err != nil {
			return err
		}
		if err := checkRate(field+".enc_rate_bps", gf.EncRateBps); err != nil {
			return err
		}
		if gf.Flow <= 0 {
			return errf(field+".flow", "flow id must be positive, got %d", gf.Flow)
		}
		if flowIDs[gf.Flow] {
			return errf(field+".flow", "duplicate flow id %d", gf.Flow)
		}
		flowIDs[gf.Flow] = true
		if !known[gf.Entry] {
			return errf(field+".entry", "unknown element %q", gf.Entry)
		}
	}
	policers := map[string]bool{}
	for i, el := range g.Elements {
		field := fmt.Sprintf("graph.elements[%d]", i)
		if err := el.validate(field, known); err != nil {
			return err
		}
		if el.Kind == "policer" {
			policers[el.Name] = true
		}
	}
	for i, name := range g.Borders {
		if !policers[name] {
			return errf(fmt.Sprintf("graph.borders[%d]", i), "%q does not name a policer element", name)
		}
	}
	if g.Sweep != nil {
		if g.Sweep.Parameter != "token_rate" {
			return errf("graph.sweep.parameter", "unknown sweep parameter %q (have \"token_rate\")", g.Sweep.Parameter)
		}
		if len(g.Sweep.Targets) == 0 {
			return errf("graph.sweep.targets", "at least one policer target is required")
		}
		for i, name := range g.Sweep.Targets {
			if !policers[name] {
				return errf(fmt.Sprintf("graph.sweep.targets[%d]", i), "%q does not name a policer element", name)
			}
		}
		if err := (&Sweep{FromKbps: g.Sweep.FromKbps, ToKbps: g.Sweep.ToKbps,
			StepKbps: g.Sweep.StepKbps}).validate("graph.sweep"); err != nil {
			return err
		}
	}
	return nil
}

// validate checks one element's kind-specific contract. Fields that
// do not apply to the kind must be unset — a knob that would be
// silently ignored is rejected instead.
func (el *Element) validate(field string, known map[string]bool) error {
	needTo := func() error {
		if el.To == "" {
			return errf(field+".to", "required for kind %q", el.Kind)
		}
		if !known[el.To] {
			return errf(field+".to", "unknown element %q", el.To)
		}
		return nil
	}
	type knob struct {
		set  bool
		name string
	}
	forbid := func(knobs ...knob) error {
		for _, k := range knobs {
			if k.set {
				return errf(field+"."+k.name, "does not apply to kind %q", el.Kind)
			}
		}
		return nil
	}
	rate := knob{el.RateBps != 0, "rate_bps"}
	delay := knob{el.DelayUS != 0, "delay_us"}
	sched := knob{el.Sched != nil, "sched"}
	jit := knob{el.MaxJitterUS != 0, "max_jitter_us"}
	loss := knob{el.LossP != 0, "loss_p"}
	depth := knob{el.DepthBytes != 0, "depth_bytes"}
	mark := knob{el.Mark != "", "mark"}
	rules := knob{el.Rules != nil, "rules"}
	src := knob{el.Source != nil, "source"}

	switch el.Kind {
	case "link":
		if err := forbid(jit, loss, depth, mark, rules, src); err != nil {
			return err
		}
		if err := checkRate(field+".rate_bps", el.RateBps); err != nil {
			return err
		}
		if el.DelayUS < 0 {
			return errf(field+".delay_us", "propagation delay must be >= 0, got %d", el.DelayUS)
		}
		if el.Sched != nil {
			switch el.Sched.Kind {
			case "ef_priority":
				if el.Sched.Limit != 0 {
					return errf(field+".sched.limit", "does not apply to kind %q", el.Sched.Kind)
				}
				if el.Sched.High < 0 || el.Sched.Low < 0 {
					return errf(field+".sched", "class limits must be >= 0")
				}
			case "fifo":
				if el.Sched.High != 0 || el.Sched.Low != 0 {
					return errf(field+".sched", "high/low do not apply to kind %q", el.Sched.Kind)
				}
				if el.Sched.Limit < 0 {
					return errf(field+".sched.limit", "queue limit must be >= 0 (0 = unbounded), got %d", el.Sched.Limit)
				}
			default:
				return errf(field+".sched.kind", "unknown scheduler %q (have \"ef_priority\", \"fifo\")", el.Sched.Kind)
			}
		}
		return needTo()
	case "jitter":
		if err := forbid(rate, delay, sched, loss, depth, mark, rules, src); err != nil {
			return err
		}
		if el.MaxJitterUS < 0 {
			return errf(field+".max_jitter_us", "jitter bound must be >= 0, got %d", el.MaxJitterUS)
		}
		return needTo()
	case "loss":
		if err := forbid(rate, delay, sched, jit, depth, mark, rules, src); err != nil {
			return err
		}
		if el.LossP < 0 || el.LossP > 1 {
			return errf(field+".loss_p", "loss probability must be in [0, 1], got %v", el.LossP)
		}
		return needTo()
	case "router":
		if err := forbid(rate, delay, sched, jit, loss, depth, mark, src); err != nil {
			return err
		}
		ruleNames := map[string]bool{}
		for i, r := range el.Rules {
			rf := fmt.Sprintf("%s.rules[%d]", field, i)
			if r.Name == "" {
				return errf(rf+".name", "required")
			}
			if ruleNames[r.Name] {
				return errf(rf+".name", "duplicate rule name %q", r.Name)
			}
			ruleNames[r.Name] = true
			switch {
			case r.Flow != 0 && r.DSCP != "":
				return errf(rf, "declare flow or dscp, not both")
			case r.Flow < 0:
				return errf(rf+".flow", "flow id must be positive, got %d", r.Flow)
			case r.Flow == 0 && r.DSCP == "":
				return errf(rf, "a rule needs a flow or dscp match")
			case r.DSCP != "":
				if err := checkDSCP(rf+".dscp", r.DSCP); err != nil {
					return err
				}
			}
			if !known[r.To] {
				return errf(rf+".to", "unknown element %q", r.To)
			}
		}
		return needTo()
	case "policer", "shaper":
		if err := forbid(delay, sched, jit, loss, rules, src); err != nil {
			return err
		}
		if !(el.RateBps > 0) {
			return errf(field+".rate_bps", "%s %q needs a positive rate, got %v", el.Kind, el.Name, el.RateBps)
		}
		if el.DepthBytes <= 0 {
			return errf(field+".depth_bytes", "bucket depth must be positive, got %d", el.DepthBytes)
		}
		if err := checkDSCP(field+".mark", el.Mark); err != nil {
			return err
		}
		return needTo()
	case "source":
		if err := forbid(rate, delay, sched, jit, loss, depth, mark, rules); err != nil {
			return err
		}
		if el.Source == nil {
			return errf(field+".source", "required for kind \"source\"")
		}
		s := el.Source
		switch s.Model {
		case "poisson":
			if s.Batch != 0 {
				return errf(field+".source.batch", "poisson sources cannot be batched (their per-flow RNG forks are not replayable); use \"cbr\"")
			}
		case "cbr":
			if s.Batch < 0 {
				return errf(field+".source.batch", "batch must be >= 0, got %d", s.Batch)
			}
		default:
			return errf(field+".source.model", "unknown source model %q (have \"poisson\", \"cbr\")", s.Model)
		}
		if err := checkRate(field+".source.rate_bps", s.RateBps); err != nil {
			return err
		}
		if s.Size < 0 {
			return errf(field+".source.size", "packet size must be >= 0 (0 = Ethernet MTU), got %d", s.Size)
		}
		if s.Flow <= 0 {
			return errf(field+".source.flow", "flow id must be positive, got %d", s.Flow)
		}
		if err := checkDSCP(field+".source.dscp", s.DSCP); err != nil {
			return err
		}
		return needTo()
	default:
		return errf(field+".kind", "unknown element kind %q (have \"link\", \"jitter\", \"loss\", \"router\", \"policer\", \"shaper\", \"source\")", el.Kind)
	}
}

// compileGraph builds the runnable scenario. The token axis is the
// sweep (or a single declared-rates point without one); the figure's
// Depth column shows the first border's declared bucket depth.
func (f *File) compileGraph() experiment.Scenario {
	g := f.Graph
	var tokens []units.BitRate
	if g.Sweep != nil {
		tokens = experiment.TokenSweep(g.Sweep.FromKbps, g.Sweep.ToKbps, g.Sweep.StepKbps)
	} else {
		tokens = []units.BitRate{0} // sentinel: run at declared rates
	}
	var depth units.ByteSize
	if len(g.Borders) > 0 {
		for _, el := range g.Elements {
			if el.Name == g.Borders[0] {
				depth = units.ByteSize(el.DepthBytes)
			}
		}
	}
	return graphScenario{name: f.Name, id: f.ID, title: f.Title, g: g,
		tokens: tokens, depth: depth}
}

// graphScenario implements experiment.Scenario (and Scalable, but not
// ShardCapable: a graph point is one unpartitioned simulator, so
// dsbench -shards is rejected up front through the capability probe).
type graphScenario struct {
	name, id, title string
	g               *GraphShape
	tokens          []units.BitRate
	depth           units.ByteSize
}

// Name implements Scenario.
func (s graphScenario) Name() string { return s.name }

// Describe implements Scenario.
func (s graphScenario) Describe() string { return s.title }

// Scaled implements experiment.Scalable.
func (s graphScenario) Scaled(n int) experiment.Scenario {
	s.tokens = experiment.Scale(s.tokens, n)
	return s
}

// Jobs implements Scenario: one job per token-axis point.
func (s graphScenario) Jobs() []experiment.Job {
	encs := make([]*video.Encoding, len(s.g.Flows))
	for i, gf := range s.g.Flows {
		encs[i] = encodingFor(gf.Clip, gf.EncRateBps)
	}
	jobs := make([]experiment.Job, 0, len(s.tokens))
	for _, tok := range s.tokens {
		tok := tok
		jobs = append(jobs, func(ctx *experiment.Ctx) experiment.Point {
			return s.runPoint(ctx, encs, tok)
		})
	}
	return jobs
}

// Assemble implements Scenario: like the multiflow presets, a "mean"
// series (across-flow mean evaluation, carrying the run accounting)
// and a "worst" series (the worst flow's evaluation, accounting
// zeroed so figure-wide sums count each simulation once).
func (s graphScenario) Assemble(results []experiment.Point) *experiment.Figure {
	fig := &experiment.Figure{ID: s.id, Title: s.title}
	mean := experiment.Series{Label: "mean", Points: results}
	worst := experiment.Series{Label: "worst"}
	for _, pt := range results {
		w := pt
		w.Events = 0
		w.VFlows = 0
		for _, ev := range pt.Flows {
			if ev.Quality > w.Quality {
				w.Evaluation = ev
			}
		}
		w.Flows = nil
		worst.Points = append(worst.Points, w)
	}
	fig.Series = []experiment.Series{mean, worst}
	return fig
}

// runPoint builds and runs the graph once at the given token rate
// (0 = declared rates) and reduces it to a Point.
func (s graphScenario) runPoint(ctx *experiment.Ctx, encs []*video.Encoding, tok units.BitRate) experiment.Point {
	rec := ctx.NewRecorder()
	b := topology.NewBuilderWidth(s.g.Seed, ctx.BucketWidth)
	b.UsePool(ctx.Pool)
	b.UseTrace(rec)

	sink := packet.Sink{Pool: b.Pool()}
	b.Handler("sink", &sink)
	clients := make([]*client.UDP, len(s.g.Flows))
	for i, gf := range s.g.Flows {
		cl := client.NewUDP(b.Sim(), encs[i].Clip.FrameCount())
		cl.Pool = b.Pool()
		cl.Tolerance = client.SliceTolerance
		name := gf.Name + "-client"
		if rec != nil {
			cl.Tap, cl.Hop = rec, rec.Hop(name)
		}
		clients[i] = cl
		b.Handler(name, cl)
	}

	swept := map[string]bool{}
	if s.g.Sweep != nil {
		for _, t := range s.g.Sweep.Targets {
			swept[t] = true
		}
	}
	for i := range s.g.Elements {
		declareElement(b, &s.g.Elements[i], tok, swept)
	}
	net, err := b.Build()
	if err != nil {
		// Validate admitted the graph; a Build failure is a compiler
		// bug, not bad user input.
		panic(fmt.Sprintf("scenfile: building validated graph %q: %v", s.name, err))
	}

	var horizon units.Time
	for i, gf := range s.g.Flows {
		srv := &server.Paced{Sim: b.Sim(), Enc: encs[i], Flow: packet.FlowID(gf.Flow),
			Next: net.Handler(gf.Entry), Pool: net.Pool}
		srv.Start()
		if h := units.FromSeconds(encs[i].Clip.DurationSeconds() + 30); h > horizon {
			horizon = h
		}
	}
	b.Sim().SetHorizon(horizon)
	b.Sim().Run()

	label := "declared"
	if tok > 0 {
		label = fmt.Sprintf("tok%d", int64(tok))
	}
	if err := ctx.SaveTrace(label, rec); err != nil {
		panic(fmt.Sprintf("experiment: saving packet trace: %v", err))
	}

	pt := experiment.Point{TokenRate: tok, Depth: s.depth}
	if tok == 0 {
		pt.Label = label
	}
	for i, cl := range clients {
		cl.Finish()
		ev := experiment.Evaluate(cl.Trace(), encs[i], encs[i])
		pt.Flows = append(pt.Flows, ev)
		pt.FrameLoss += ev.FrameLoss
		pt.Quality += ev.Quality
		pt.Calibration += ev.Calibration
	}
	n := float64(len(pt.Flows))
	pt.FrameLoss /= n
	pt.Quality /= n
	var passed, dropped int
	for _, name := range s.g.Borders {
		p := net.Policer(name)
		passed += p.Passed
		dropped += p.Dropped
	}
	if passed+dropped > 0 {
		pt.PacketLoss = float64(dropped) / float64(passed+dropped)
	}
	pt.Events = b.Sim().Fired()
	pt.VFlows = len(clients)
	qs := b.Sim().QueueStats()
	pt.QRebases = qs.Rebases
	pt.QWidth = qs.Width
	pt.QOverflow = qs.OverflowRatio()
	return pt
}

// declareElement declares one validated element on the Builder,
// substituting the sweep token rate into targeted policers.
func declareElement(b *topology.Builder, el *Element, tok units.BitRate, swept map[string]bool) {
	switch el.Kind {
	case "link":
		b.Link(el.Name, topology.LinkSpec{
			Rate:  units.BitRate(el.RateBps),
			Delay: units.Time(el.DelayUS) * units.Microsecond,
			Sched: schedSpec(el.Sched),
			To:    el.To,
		})
	case "jitter":
		b.Jitter(el.Name, units.Time(el.MaxJitterUS)*units.Microsecond, el.To)
	case "loss":
		b.Loss(el.Name, el.LossP, el.To)
	case "router":
		b.Router(el.Name, el.To)
		for _, r := range el.Rules {
			b.Rule(el.Name, r.Name, classifier(r), r.To)
		}
	case "policer":
		rate := units.BitRate(el.RateBps)
		if tok > 0 && swept[el.Name] {
			rate = tok
		}
		b.Policer(el.Name, rate, units.ByteSize(el.DepthBytes), dscps[el.Mark], el.To)
	case "shaper":
		b.Shaper(el.Name, units.BitRate(el.RateBps), units.ByteSize(el.DepthBytes), dscps[el.Mark], 0, el.To)
	case "source":
		s := el.Source
		kind := topology.PoissonSource
		if s.Model == "cbr" {
			kind = topology.CBRSource
		}
		b.Source(el.Name, topology.SourceSpec{
			Kind: kind, Rate: units.BitRate(s.RateBps), Size: s.Size,
			Flow: packet.FlowID(s.Flow), DSCP: dscps[s.DSCP],
			Batch: s.Batch, To: el.To,
		})
	}
}

// schedSpec maps a validated scheduler declaration to the Builder's
// constructor; nil stays nil (the Builder's unbounded FIFO default).
func schedSpec(s *SchedJSON) topology.SchedulerSpec {
	if s == nil {
		return nil
	}
	if s.Kind == "ef_priority" {
		return topology.EFPriority(s.High, s.Low)
	}
	return topology.PlainFIFO(s.Limit)
}

// classifier builds the rule's match from its validated flow/dscp
// selector.
func classifier(r RuleJSON) node.Classifier {
	if r.Flow != 0 {
		return node.FlowMatch(packet.FlowID(r.Flow))
	}
	return node.DSCPMatch(dscps[r.DSCP])
}
