package scenfile

import (
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/units"
	"repro/internal/video"
)

// This file holds the preset-shape compilers and the load/register
// entry points. The preset shapes do not re-implement anything: they
// populate the exact spec types the Go presets construct
// (experiment.MultiFlowSpec / FleetSpec / TandemSpec), so a scenario
// file that spells out a preset's parameters produces byte-identical
// figures, stats, and traces — the parity tests in this package run
// both and compare.

func (f *File) compileMultiflow() experiment.Scenario {
	m := f.Multiflow
	return experiment.MultiFlowSpec{
		Key: f.Name, ID: f.ID, Title: f.Title,
		Clip:           clips[m.Clip](),
		EncRate:        units.BitRate(m.EncRateBps),
		Ns:             append([]int(nil), m.Flows...),
		TokenRate:      units.BitRate(m.Policer.RateBps),
		Depth:          units.ByteSize(m.Policer.DepthBytes),
		BottleneckRate: units.BitRate(m.BottleneckRateBps),
		Sched:          scheds[m.Sched],
		BELoad:         m.BELoad,
		Seed:           m.Seed,
		Batch:          m.Batch,
		Stagger:        units.Time(m.StaggerUS) * units.Microsecond,
	}
}

func (f *File) compileFleet() experiment.Scenario {
	fl := f.Fleet
	spec := experiment.FleetSpec{
		Key: f.Name, ID: f.ID, Title: f.Title,
		Ns:             append([]int(nil), fl.Flows...),
		Depth:          units.ByteSize(fl.DepthBytes),
		BottleneckRate: units.BitRate(fl.BottleneckRateBps),
		Sched:          scheds[fl.Sched],
		BELoad:         fl.BELoad,
		Seed:           fl.Seed,
		Truncate:       units.Time(fl.TruncateUS) * units.Microsecond,
		StartWindow:    units.Time(fl.StartWindowUS) * units.Microsecond,
	}
	for _, c := range fl.Classes {
		spec.Classes = append(spec.Classes, experiment.FleetClass{
			Name:      c.Name,
			Clip:      clips[c.Clip](),
			EncRate:   units.BitRate(c.EncRateBps),
			Share:     c.Share,
			TokenRate: units.BitRate(c.TokenRate),
		})
	}
	return spec
}

func (f *File) compileTandem() experiment.Scenario {
	t := f.Tandem
	return experiment.TandemSpec{
		Key: f.Name, ID: f.ID, Title: f.Title,
		Clip:    clips[t.Clip](),
		EncRate: units.BitRate(t.EncRateBps),
		Tokens:  experiment.TokenSweep(t.TokenSweep.FromKbps, t.TokenSweep.ToKbps, t.TokenSweep.StepKbps),
		Depth:   units.ByteSize(t.DepthBytes),
		Seed:    t.Seed,
		Runs:    t.Runs,
	}
}

// encodingFor resolves a clip name + rate to the shared encoding
// cache, so file-compiled and preset jobs hit the same cache entries.
func encodingFor(clip string, rateBps float64) *video.Encoding {
	return video.CachedCBR(clips[clip](), units.BitRate(rateBps))
}

// Load reads and parses a scenario file from disk.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// LoadScenario loads and compiles a scenario file without
// registering it.
func LoadScenario(path string) (experiment.Scenario, error) {
	f, err := Load(path)
	if err != nil {
		return nil, err
	}
	s, err := f.Compile()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// LoadAndRegister loads, compiles, and registers a scenario file so
// the usual registry-driven machinery (dsbench -scenario/-run/-list,
// shard and width capability probes) sees it like any preset. A name
// collision with an already registered scenario is an error, not a
// panic: the file's "name" field is user input.
func LoadAndRegister(path string) (experiment.Scenario, error) {
	s, err := LoadScenario(path)
	if err != nil {
		return nil, err
	}
	if experiment.Lookup(s.Name()) != nil {
		return nil, fmt.Errorf("%s: scenario name %q is already registered; rename the file's \"name\" field", path, s.Name())
	}
	experiment.Register(s)
	return s, nil
}
