package scenfile

import (
	"os"
	"strings"
	"testing"
)

// mutate parses a known-good testdata file, applies edit to the raw
// JSON via string replacement, and returns the Parse error.
func parseMutated(t *testing.T, path, old, new string) error {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.Contains(s, old) {
		t.Fatalf("%s does not contain %q", path, old)
	}
	_, perr := Parse([]byte(strings.Replace(s, old, new, 1)))
	return perr
}

// TestValidationNamesOffendingField pins the reject-up-front contract:
// every schema violation is caught at parse time and the error names
// the field that caused it.
func TestValidationNamesOffendingField(t *testing.T) {
	const (
		nflow    = "testdata/nflow.scenario.json"
		tandem   = "testdata/tandem.scenario.json"
		dumbbell = "testdata/dumbbell.scenario.json"
	)
	cases := []struct {
		name, path, old, new, want string
	}{
		{"unknown link reference", dumbbell,
			`"to": "e-jit"`, `"to": "e-jitt"`,
			`graph.elements[15].to: unknown element "e-jitt"`},
		{"zero-rate policer", nflow,
			`"policer": {"rate_bps": 1300000`, `"policer": {"rate_bps": 0`,
			"multiflow.policer.rate_bps: policer rate must be positive"},
		{"zero-rate graph policer", dumbbell,
			`"name": "e-policer", "rate_bps": 1300000`, `"name": "e-policer", "rate_bps": 0`,
			`graph.elements[9].rate_bps: policer "e-policer" needs a positive rate`},
		{"unknown clip", nflow,
			`"clip": "lost"`, `"clip": "lots"`,
			`multiflow.clip: unknown clip "lots"`},
		{"unknown sched", nflow,
			`"sched": "priority"`, `"sched": "fancy"`,
			`multiflow.sched: unknown bottleneck scheduler "fancy"`},
		{"unknown shape", nflow,
			`"shape": "multiflow"`, `"shape": "ring"`,
			`shape: unknown shape "ring"`},
		{"shape/section mismatch", nflow,
			`"shape": "multiflow"`, `"shape": "tandem"`,
			`multiflow: section present but shape is "tandem"`},
		{"capability overclaim", dumbbell,
			`"shards": false`, `"shards": true`,
			"capabilities.shards: must be false"},
		{"capability underclaim", nflow,
			`"shards": true`, `"shards": false`,
			"capabilities.shards: must be true"},
		{"unknown field", nflow,
			`"be_load"`, `"be_loda"`,
			`unknown field "be_loda"`},
		{"bad sweep step", tandem,
			`"step_kbps": 100`, `"step_kbps": 0`,
			"tandem.token_sweep.step_kbps: sweep step must be positive"},
		{"poisson batch on source", dumbbell,
			`"model": "poisson", "rate_bps": 300000, "size": 1500, "flow": 1003, "dscp": "be"`,
			`"model": "poisson", "rate_bps": 300000, "size": 1500, "flow": 1003, "dscp": "be", "batch": 4`,
			"graph.elements[4].source.batch: poisson sources cannot be batched"},
		{"unknown dscp", dumbbell,
			`"mark": "ef", "to": "w-bneck"`, `"mark": "gold", "to": "w-bneck"`,
			`graph.elements[10].mark: unknown DSCP "gold"`},
		{"unknown sweep target", dumbbell,
			`"targets": ["e-policer", "w-policer"]`, `"targets": ["e-policer", "w-police"]`,
			`graph.sweep.targets[1]: "w-police" does not name a policer element`},
		{"unknown flow entry", dumbbell,
			`"flow": 2, "entry": "w-campus"`, `"flow": 2, "entry": "w-campus2"`,
			`graph.flows[1].entry: unknown element "w-campus2"`},
		{"irrelevant knob rejected", dumbbell,
			`"name": "e-jit", "max_jitter_us": 5000`, `"name": "e-jit", "loss_p": 0.5, "max_jitter_us": 5000`,
			`graph.elements[13].loss_p: does not apply to kind "jitter"`},
		{"bad version", nflow,
			`"version": 1`, `"version": 2`,
			"version: unsupported scenario file version 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := parseMutated(t, c.path, c.old, c.new)
			if err == nil {
				t.Fatal("mutation parsed cleanly")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q\ndoes not contain %q", err, c.want)
			}
		})
	}
}

// TestFleetValidation covers the mixture-class rules with a minimal
// fleet file (no fleet preset file is checked in, so build one here).
func TestFleetValidation(t *testing.T) {
	good := `{
  "version": 1, "name": "fleet-x", "id": "X", "title": "t", "shape": "fleet",
  "capabilities": {"shards": true, "bucket_width": true},
  "fleet": {
    "flows": [100],
    "classes": [
      {"name": "viewers", "clip": "lost", "enc_rate_bps": 1000000, "share": 0.85, "token_rate_bps": 1300000},
      {"name": "elephants", "source": "cbr", "clip": "dark", "enc_rate_bps": 1500000, "share": 0.15, "token_rate_bps": 1950000}
    ],
    "depth_bytes": 4500, "bottleneck_rate_bps": 13000000000, "sched": "priority",
    "be_load": 0.02, "seed": 2001, "truncate_us": 1000000, "start_window_us": 4000000
  }
}`
	if _, err := Parse([]byte(good)); err != nil {
		t.Fatalf("valid fleet rejected: %v", err)
	}
	cases := []struct{ name, old, new, want string }{
		{"poisson mixture class",
			`"source": "cbr"`, `"source": "poisson"`,
			"fleet.classes[1].source: poisson sources cannot be batched in a mixture class"},
		{"unknown source model",
			`"source": "cbr"`, `"source": "onoff"`,
			`fleet.classes[1].source: unknown source model "onoff"`},
		{"shares must sum to 1",
			`"share": 0.15`, `"share": 0.25`,
			"fleet.classes: class shares must sum to 1"},
		{"duplicate class name",
			`"name": "elephants"`, `"name": "viewers"`,
			`fleet.classes[1].name: duplicate class name "viewers"`},
		{"zero token rate",
			`"token_rate_bps": 1950000`, `"token_rate_bps": 0`,
			"fleet.classes[1].token_rate_bps: policer rate must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(strings.Replace(good, c.old, c.new, 1)))
			if err == nil {
				t.Fatal("mutation parsed cleanly")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q\ndoes not contain %q", err, c.want)
			}
		})
	}
}

// TestFleetCompilesToPresetSpec pins the fleet shape's compilation
// target: the file above compiles to the same spec type the Go preset
// uses, with every field carried over.
func TestFleetCompilesToPresetSpec(t *testing.T) {
	f, err := Parse([]byte(`{
  "version": 1, "name": "fleet-x", "id": "X", "title": "t", "shape": "fleet",
  "capabilities": {"shards": true, "bucket_width": true},
  "fleet": {
    "flows": [100],
    "classes": [
      {"name": "viewers", "clip": "lost", "enc_rate_bps": 1000000, "share": 1.0, "token_rate_bps": 1300000}
    ],
    "depth_bytes": 4500, "bottleneck_rate_bps": 13000000000, "sched": "priority",
    "be_load": 0.02, "seed": 2001, "truncate_us": 1000000, "start_window_us": 4000000
  }
}`))
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "fleet-x" {
		t.Errorf("name %q", s.Name())
	}
	if !s.(interface{ SupportsShards() bool }).SupportsShards() {
		t.Error("fleet spec lost shard capability")
	}
}
