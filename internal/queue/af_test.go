package queue

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func afPkt(d packet.DSCP, c packet.Color) *packet.Packet {
	return &packet.Packet{Size: 1500, DSCP: d, Color: c}
}

func TestAFSchedulerClassifies(t *testing.T) {
	rng := sim.NewRNG(1)
	s := NewAFScheduler(DefaultREDConfig(), DefaultREDConfig(), rng.Float64, 10)
	s.Enqueue(afPkt(packet.AF11, packet.Green))
	s.Enqueue(afPkt(packet.BestEffort, packet.Green))
	if s.AF.Len() != 1 || s.BE.Len() != 1 {
		t.Errorf("classification wrong: af=%d be=%d", s.AF.Len(), s.BE.Len())
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestAFSchedulerServesAFFirst(t *testing.T) {
	rng := sim.NewRNG(2)
	s := NewAFScheduler(DefaultREDConfig(), DefaultREDConfig(), rng.Float64, 10)
	be := afPkt(packet.BestEffort, packet.Green)
	af := afPkt(packet.AF12, packet.Yellow)
	s.Enqueue(be)
	s.Enqueue(af)
	if got := s.Dequeue(); got != af {
		t.Error("AF not served first")
	}
	if got := s.Dequeue(); got != be {
		t.Error("BE lost")
	}
}

func TestAFSchedulerAllAFClassesShareQueue(t *testing.T) {
	rng := sim.NewRNG(3)
	s := NewAFScheduler(DefaultREDConfig(), DefaultREDConfig(), rng.Float64, 10)
	for _, d := range []packet.DSCP{packet.AF11, packet.AF12, packet.AF13} {
		if !s.Enqueue(afPkt(d, packet.Green)) {
			t.Fatalf("%v rejected at empty queue", d)
		}
	}
	if s.AF.Len() != 3 {
		t.Errorf("AF queue holds %d", s.AF.Len())
	}
}

func TestAFSchedulerBELimit(t *testing.T) {
	rng := sim.NewRNG(4)
	s := NewAFScheduler(DefaultREDConfig(), DefaultREDConfig(), rng.Float64, 2)
	s.Enqueue(afPkt(packet.BestEffort, packet.Green))
	s.Enqueue(afPkt(packet.BestEffort, packet.Green))
	if s.Enqueue(afPkt(packet.BestEffort, packet.Green)) {
		t.Error("BE limit ignored")
	}
}
