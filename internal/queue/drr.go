package queue

import "repro/internal/packet"

// DefaultQuantum is the DRR per-round byte credit when a ClassSpec
// leaves Quantum zero: one MTU, so a class can always send at least
// one full-size packet per round.
const DefaultQuantum = 1500

// ClassSpec configures one class of a multi-class scheduler (DRR or
// WFQ). A nil Match matches every packet, which makes the class a
// wildcard; classification is first-match-wins, and a packet matching
// no class falls back to the last class.
type ClassSpec struct {
	Name    string
	Match   func(packet.DSCP) bool
	Limit   int     // per-class packet cap (0 = unbounded)
	Quantum int     // DRR bytes credited per round (0 = DefaultQuantum)
	Weight  float64 // WFQ service share (0 = 1)
}

// MatchDSCP builds a class matcher for a set of code points.
func MatchDSCP(ds ...packet.DSCP) func(packet.DSCP) bool {
	set := make(map[packet.DSCP]bool, len(ds))
	for _, d := range ds {
		set[d] = true
	}
	return func(d packet.DSCP) bool { return set[d] }
}

type drrClass struct {
	spec     ClassSpec
	fifo     FIFO
	deficit  int
	credited bool // quantum already added for the current visit
}

// DRR is a deficit round robin scheduler (Shreedhar & Varghese):
// backlogged classes are visited in rotation, each earning Quantum
// bytes of credit per visit and sending head packets while its deficit
// covers them. Byte-fair regardless of packet sizes, O(1) per packet,
// and work-conserving.
type DRR struct {
	classes []*drrClass
	ring    []int // backlogged class indices, service order
}

// NewDRR builds a DRR scheduler over the given classes. It panics on
// an empty class list — a scheduler with nowhere to put packets is a
// wiring bug.
func NewDRR(specs ...ClassSpec) *DRR {
	if len(specs) == 0 {
		panic("queue: NewDRR needs at least one class")
	}
	d := &DRR{}
	for _, sp := range specs {
		if sp.Quantum <= 0 {
			sp.Quantum = DefaultQuantum
		}
		d.classes = append(d.classes, &drrClass{
			spec: sp,
			fifo: FIFO{MaxPackets: sp.Limit},
		})
	}
	return d
}

// Enqueue admits p to its class queue and, if the class just became
// backlogged, appends the class to the service ring.
func (d *DRR) Enqueue(p *packet.Packet) bool {
	i := d.classify(p.DSCP)
	c := d.classes[i]
	wasEmpty := c.fifo.Len() == 0
	if !c.fifo.Push(p) {
		return false
	}
	if wasEmpty {
		c.deficit = 0
		c.credited = false
		d.ring = append(d.ring, i)
	}
	return true
}

// Dequeue serves the ring head: credit its quantum once per visit,
// send while the deficit covers the head packet, rotate otherwise.
func (d *DRR) Dequeue() *packet.Packet {
	for len(d.ring) > 0 {
		i := d.ring[0]
		c := d.classes[i]
		if !c.credited {
			c.deficit += c.spec.Quantum
			c.credited = true
		}
		head := c.fifo.Peek()
		if head != nil && head.Size <= c.deficit {
			c.deficit -= head.Size
			p := c.fifo.Pop()
			if c.fifo.Len() == 0 {
				// An idle class must not bank credit (DRR's
				// anti-burst rule).
				c.deficit = 0
				c.credited = false
				d.ring = d.ring[1:]
			}
			return p
		}
		// Visit exhausted: move to the back of the ring, keeping the
		// residual deficit for the next round.
		c.credited = false
		d.ring = append(d.ring[1:], i)
	}
	return nil
}

// Len reports total queued packets.
func (d *DRR) Len() int {
	n := 0
	for _, c := range d.classes {
		n += c.fifo.Len()
	}
	return n
}

// Classes reports per-class counters in configuration order.
func (d *DRR) Classes() []ClassStats {
	out := make([]ClassStats, len(d.classes))
	for i, c := range d.classes {
		out[i] = c.fifo.Stats(c.spec.Name)
	}
	return out
}

// classify returns the first class matching d, falling back to the
// last class.
func (d *DRR) classify(dscp packet.DSCP) int {
	for i, c := range d.classes {
		if c.spec.Match == nil || c.spec.Match(dscp) {
			return i
		}
	}
	return len(d.classes) - 1
}
