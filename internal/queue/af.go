package queue

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
)

// AFScheduler is the per-hop behaviour for an Assured Forwarding
// class: AF-marked packets share one RIO queue whose drop profile
// depends on their color, and are served ahead of a best-effort FIFO
// (a minimal model of an AF class with a bandwidth share on an
// otherwise best-effort port).
type AFScheduler struct {
	AF *RIO
	BE FIFO
}

// NewAFScheduler builds the scheduler with the given RIO profiles and
// best-effort queue limit.
func NewAFScheduler(in, out REDConfig, rand func() float64, beLimit int) *AFScheduler {
	return &AFScheduler{
		AF: NewRIO(in, out, rand),
		BE: FIFO{MaxPackets: beLimit},
	}
}

// SetTap implements Tapped by forwarding to the RIO queue.
func (s *AFScheduler) SetTap(t ptrace.Tap, hop ptrace.HopID) { s.AF.SetTap(t, hop) }

func isAF(d packet.DSCP) bool {
	return d == packet.AF11 || d == packet.AF12 || d == packet.AF13
}

// Enqueue admits p to the AF RIO queue or the best-effort FIFO.
func (s *AFScheduler) Enqueue(p *packet.Packet) bool {
	if isAF(p.DSCP) {
		return s.AF.Enqueue(p)
	}
	return s.BE.Push(p)
}

// Dequeue serves the AF class first.
func (s *AFScheduler) Dequeue() *packet.Packet {
	if p := s.AF.Dequeue(); p != nil {
		return p
	}
	return s.BE.Pop()
}

// Len reports total queued packets.
func (s *AFScheduler) Len() int { return s.AF.Len() + s.BE.Len() }

// Classes reports the RIO in/out classes followed by best effort.
func (s *AFScheduler) Classes() []ClassStats {
	return append(s.AF.Classes(), s.BE.Stats("be"))
}
