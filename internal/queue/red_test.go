package queue

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestREDNoDropsWhenIdle(t *testing.T) {
	rng := sim.NewRNG(1)
	r := NewRED(DefaultREDConfig(), rng.Float64)
	// Alternate enqueue/dequeue: average queue stays ~0.
	for i := 0; i < 1000; i++ {
		if !r.Enqueue(pk(1500, 0)) {
			t.Fatal("RED dropped at empty queue")
		}
		r.Dequeue()
	}
	if r.EarlyDrops != 0 || r.ForcedDrops != 0 {
		t.Errorf("drops at idle: early=%d forced=%d", r.EarlyDrops, r.ForcedDrops)
	}
}

func TestREDDropsUnderSustainedLoad(t *testing.T) {
	rng := sim.NewRNG(2)
	r := NewRED(DefaultREDConfig(), rng.Float64)
	drops := 0
	for i := 0; i < 2000; i++ {
		// Two arrivals per departure: queue builds.
		if !r.Enqueue(pk(1500, 0)) {
			drops++
		}
		if !r.Enqueue(pk(1500, 0)) {
			drops++
		}
		r.Dequeue()
	}
	if drops == 0 {
		t.Error("RED never dropped under overload")
	}
	if r.Len() > DefaultREDConfig().MaxSize {
		t.Errorf("queue exceeded hard limit: %d", r.Len())
	}
}

func TestREDAverageTracksQueue(t *testing.T) {
	rng := sim.NewRNG(3)
	cfg := DefaultREDConfig()
	cfg.Wq = 0.5 // fast EWMA for the test
	r := NewRED(cfg, rng.Float64)
	for i := 0; i < 10; i++ {
		r.Enqueue(pk(1, 0))
	}
	if r.AvgQueue() <= 0 {
		t.Error("average did not rise")
	}
}

func TestREDNeedsRand(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRED(DefaultREDConfig(), nil)
}

func TestRIOProtectsGreen(t *testing.T) {
	rng := sim.NewRNG(4)
	in := REDConfig{MinTh: 40, MaxTh: 55, MaxP: 0.02, Wq: 0.02, MaxSize: 60}
	out := REDConfig{MinTh: 5, MaxTh: 15, MaxP: 0.5, Wq: 0.02, MaxSize: 60}
	r := NewRIO(in, out, rng.Float64)
	greenDrops, yellowDrops := 0, 0
	for i := 0; i < 4000; i++ {
		g := pk(1500, packet.AF11)
		g.Color = packet.Green
		y := pk(1500, packet.AF12)
		y.Color = packet.Yellow
		if !r.Enqueue(g) {
			greenDrops++
		}
		if !r.Enqueue(y) {
			yellowDrops++
		}
		r.Dequeue()
	}
	if yellowDrops == 0 {
		t.Fatal("out-of-profile traffic never dropped under overload")
	}
	if greenDrops*5 > yellowDrops {
		t.Errorf("green not protected: green=%d yellow=%d", greenDrops, yellowDrops)
	}
	if r.DropsIn != greenDrops || r.DropsOut != yellowDrops {
		t.Errorf("counters: in=%d out=%d", r.DropsIn, r.DropsOut)
	}
}

func TestRIODequeueTracksGreenCount(t *testing.T) {
	rng := sim.NewRNG(5)
	r := NewRIO(DefaultREDConfig(), DefaultREDConfig(), rng.Float64)
	g := pk(1, packet.AF11)
	g.Color = packet.Green
	r.Enqueue(g)
	if r.inQueued != 1 {
		t.Fatalf("inQueued = %d", r.inQueued)
	}
	r.Dequeue()
	if r.inQueued != 0 {
		t.Errorf("inQueued after dequeue = %d", r.inQueued)
	}
}
