package queue

import "repro/internal/packet"

// WFQ is a packetized weighted fair queueing scheduler using
// self-clocked fair queueing (Golestani, SCFQ): each admitted packet
// gets a virtual finish tag F = max(v, F_last) + size/weight, where v
// is the finish tag of the packet currently in service, and Dequeue
// always serves the smallest head tag. Classes receive throughput in
// proportion to their weights while backlogged, with per-packet
// latency bounded by one round of competing packets — a closer
// approximation of fluid fairness than DRR at the cost of an O(classes)
// dequeue scan.
type WFQ struct {
	classes []*wfqClass
	vtime   float64 // finish tag of the most recently dequeued packet
}

type wfqClass struct {
	spec  ClassSpec
	fifo  FIFO
	tags  []float64 // finish tags, parallel to the FIFO contents
	head  int       // index of the head tag within tags
	lastF float64   // finish tag of the class's newest packet
}

// NewWFQ builds a WFQ scheduler over the given classes. Weights
// default to 1. It panics on an empty class list.
func NewWFQ(specs ...ClassSpec) *WFQ {
	if len(specs) == 0 {
		panic("queue: NewWFQ needs at least one class")
	}
	w := &WFQ{}
	for _, sp := range specs {
		if sp.Weight <= 0 {
			sp.Weight = 1
		}
		w.classes = append(w.classes, &wfqClass{
			spec: sp,
			fifo: FIFO{MaxPackets: sp.Limit},
		})
	}
	return w
}

// classify returns the first class matching d, falling back to the
// last class.
func (w *WFQ) classify(dscp packet.DSCP) int {
	for i, c := range w.classes {
		if c.spec.Match == nil || c.spec.Match(dscp) {
			return i
		}
	}
	return len(w.classes) - 1
}

// Enqueue admits p to its class and stamps its virtual finish tag.
func (w *WFQ) Enqueue(p *packet.Packet) bool {
	c := w.classes[w.classify(p.DSCP)]
	if !c.fifo.Push(p) {
		return false
	}
	start := c.lastF
	if w.vtime > start {
		start = w.vtime
	}
	c.lastF = start + float64(p.Size)/c.spec.Weight
	c.tags = append(c.tags, c.lastF)
	return true
}

// compact drops the consumed tag prefix once it dominates the slice,
// keeping memory proportional to the class backlog even while the
// class stays continuously backlogged.
func (c *wfqClass) compact() {
	switch {
	case c.head == len(c.tags):
		c.tags = c.tags[:0]
		c.head = 0
	case c.head >= 32 && c.head*2 >= len(c.tags):
		n := copy(c.tags, c.tags[c.head:])
		c.tags = c.tags[:n]
		c.head = 0
	}
}

// Dequeue serves the backlogged class with the smallest head finish
// tag and advances the virtual clock to that tag.
func (w *WFQ) Dequeue() *packet.Packet {
	best := -1
	var bestTag float64
	for i, c := range w.classes {
		if c.fifo.Len() == 0 {
			continue
		}
		tag := c.tags[c.head]
		if best < 0 || tag < bestTag {
			best, bestTag = i, tag
		}
	}
	if best < 0 {
		return nil
	}
	c := w.classes[best]
	p := c.fifo.Pop()
	c.head++
	c.compact()
	w.vtime = bestTag
	if w.Len() == 0 {
		// System idle: reset the virtual clock so tags stay small
		// across busy periods (standard SCFQ housekeeping).
		w.vtime = 0
		for _, c := range w.classes {
			c.lastF = 0
			c.tags = c.tags[:0]
			c.head = 0
		}
	}
	return p
}

// Len reports total queued packets.
func (w *WFQ) Len() int {
	n := 0
	for _, c := range w.classes {
		n += c.fifo.Len()
	}
	return n
}

// Classes reports per-class counters in configuration order.
func (w *WFQ) Classes() []ClassStats {
	out := make([]ClassStats, len(w.classes))
	for i, c := range w.classes {
		out[i] = c.fifo.Stats(c.spec.Name)
	}
	return out
}
