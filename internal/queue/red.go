package queue

import (
	"math"

	"repro/internal/packet"
	"repro/internal/ptrace"
)

// REDConfig parameterizes Random Early Detection (Floyd & Jacobson).
type REDConfig struct {
	MinTh   float64 // average queue length (packets) below which no drops
	MaxTh   float64 // average above which all arrivals drop
	MaxP    float64 // drop probability at MaxTh
	Wq      float64 // EWMA weight for the average queue estimate
	MaxSize int     // hard buffer limit in packets
}

// DefaultREDConfig mirrors the classic 1993 recommendations scaled for
// a small router buffer.
func DefaultREDConfig() REDConfig {
	return REDConfig{MinTh: 5, MaxTh: 15, MaxP: 0.1, Wq: 0.002, MaxSize: 60}
}

// RED is a single-class RED queue. Randomness comes from an injected
// source so experiments stay deterministic.
type RED struct {
	cfg   REDConfig
	rand  func() float64
	fifo  FIFO
	avg   float64
	count int // packets since last drop, for the uniformization trick

	tap ptrace.Tap
	hop ptrace.HopID

	Enqueued    int
	EarlyDrops  int
	ForcedDrops int
}

// SetTap implements Tapped: AQM drop decisions emit REDEarly
// annotations alongside the owning link's QueueDrop events.
func (r *RED) SetTap(t ptrace.Tap, hop ptrace.HopID) { r.tap, r.hop = t, hop }

// annotate emits the RED-decision annotation for a rejected packet.
func (r *RED) annotate(p *packet.Packet) {
	if r.tap != nil {
		r.tap.Emit(ptrace.Event{
			Kind: ptrace.REDEarly, Hop: r.hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
			QLen: int32(r.fifo.Len()),
		})
	}
}

// NewRED returns a RED queue using cfg and the given uniform [0,1)
// source.
func NewRED(cfg REDConfig, rand func() float64) *RED {
	if rand == nil {
		panic("queue: RED needs a random source")
	}
	r := &RED{cfg: cfg, rand: rand, count: -1}
	r.fifo.MaxPackets = cfg.MaxSize
	return r
}

// AvgQueue reports the current EWMA queue estimate.
func (r *RED) AvgQueue() float64 { return r.avg }

// Len reports the instantaneous queue length.
func (r *RED) Len() int { return r.fifo.Len() }

// Enqueue applies the RED drop test and admits p if it survives.
func (r *RED) Enqueue(p *packet.Packet) bool {
	r.avg = (1-r.cfg.Wq)*r.avg + r.cfg.Wq*float64(r.fifo.Len())
	switch {
	case r.avg < r.cfg.MinTh:
		r.count = -1
	case r.avg >= r.cfg.MaxTh:
		r.ForcedDrops++
		r.count = 0
		r.annotate(p)
		return false
	default:
		r.count++
		pb := r.cfg.MaxP * (r.avg - r.cfg.MinTh) / (r.cfg.MaxTh - r.cfg.MinTh)
		pa := pb / math.Max(1e-9, 1-float64(r.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if r.rand() < pa {
			r.EarlyDrops++
			r.count = 0
			r.annotate(p)
			return false
		}
	}
	if !r.fifo.Push(p) {
		r.ForcedDrops++
		return false
	}
	r.Enqueued++
	return true
}

// Dequeue removes the head packet.
func (r *RED) Dequeue() *packet.Packet { return r.fifo.Pop() }

// Classes reports the single RED class, folding early and forced
// drops into one count.
func (r *RED) Classes() []ClassStats {
	return []ClassStats{{
		Name: "red", Queued: r.fifo.Len(), QueuedBytes: r.fifo.Bytes(),
		Enqueued: r.Enqueued, Dropped: r.EarlyDrops + r.ForcedDrops,
		Bytes: r.fifo.EnqueuedBytes,
	}}
}

// RIO ("RED with In and Out") gives marked-in (green) packets a more
// permissive RED profile than out-of-profile (yellow/red) packets in
// the same physical queue — the droppers behind the AF PHB group.
type RIO struct {
	in   REDConfig
	out  REDConfig
	rand func() float64

	fifo              FIFO
	avgIn             float64 // average of in-profile packets only
	avgAll            float64
	countIn, countOut int

	inQueued      int   // in-profile packets currently queued
	inQueuedBytes int64 // bytes of in-profile packets currently queued

	tap ptrace.Tap
	hop ptrace.HopID

	Enqueued    int
	EnqueuedIn  int
	EnqueuedOut int
	BytesIn     int64
	BytesOut    int64
	DropsIn     int
	DropsOut    int
}

// NewRIO returns a RIO queue. in should be more permissive than out.
func NewRIO(in, out REDConfig, rand func() float64) *RIO {
	if rand == nil {
		panic("queue: RIO needs a random source")
	}
	r := &RIO{in: in, out: out, rand: rand, countIn: -1, countOut: -1}
	r.fifo.MaxPackets = in.MaxSize
	return r
}

// Len reports the instantaneous queue length.
func (r *RIO) Len() int { return r.fifo.Len() }

// SetTap implements Tapped (see RED.SetTap).
func (r *RIO) SetTap(t ptrace.Tap, hop ptrace.HopID) { r.tap, r.hop = t, hop }

func redTest(avg float64, cfg REDConfig, count *int, rand func() float64) bool {
	switch {
	case avg < cfg.MinTh:
		*count = -1
		return false
	case avg >= cfg.MaxTh:
		*count = 0
		return true
	default:
		*count++
		pb := cfg.MaxP * (avg - cfg.MinTh) / (cfg.MaxTh - cfg.MinTh)
		pa := pb / math.Max(1e-9, 1-float64(*count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if rand() < pa {
			*count = 0
			return true
		}
		return false
	}
}

// Enqueue admits p using the in profile for green packets and the out
// profile (driven by the total average) otherwise.
func (r *RIO) Enqueue(p *packet.Packet) bool {
	in := p.Color == packet.Green
	r.avgAll = (1-r.out.Wq)*r.avgAll + r.out.Wq*float64(r.fifo.Len())
	r.avgIn = (1-r.in.Wq)*r.avgIn + r.in.Wq*float64(r.inQueued)
	var dropped bool
	if in {
		dropped = redTest(r.avgIn, r.in, &r.countIn, r.rand)
	} else {
		dropped = redTest(r.avgAll, r.out, &r.countOut, r.rand)
	}
	if dropped && r.tap != nil {
		// Annotate the RIO decision; full-buffer rejections below are
		// plain tail drops the owning link already records.
		r.tap.Emit(ptrace.Event{
			Kind: ptrace.REDEarly, Hop: r.hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
			QLen: int32(r.fifo.Len()), Flag: uint8(p.Color),
		})
	}
	if dropped || !r.fifo.Push(p) {
		if in {
			r.DropsIn++
		} else {
			r.DropsOut++
		}
		return false
	}
	if in {
		r.inQueued++
		r.inQueuedBytes += int64(p.Size)
		r.EnqueuedIn++
		r.BytesIn += int64(p.Size)
	} else {
		r.EnqueuedOut++
		r.BytesOut += int64(p.Size)
	}
	r.Enqueued++
	return true
}

// Dequeue removes the head packet.
func (r *RIO) Dequeue() *packet.Packet {
	p := r.fifo.Pop()
	if p != nil && p.Color == packet.Green {
		r.inQueued--
		r.inQueuedBytes -= int64(p.Size)
	}
	return p
}

// Classes reports the in- and out-of-profile accounting of the shared
// RIO queue.
func (r *RIO) Classes() []ClassStats {
	return []ClassStats{
		{
			Name: "in", Queued: r.inQueued, QueuedBytes: r.inQueuedBytes,
			Enqueued: r.EnqueuedIn, Dropped: r.DropsIn, Bytes: r.BytesIn,
		},
		{
			Name: "out", Queued: r.fifo.Len() - r.inQueued,
			QueuedBytes: r.fifo.Bytes() - r.inQueuedBytes,
			Enqueued:    r.EnqueuedOut, Dropped: r.DropsOut, Bytes: r.BytesOut,
		},
	}
}
