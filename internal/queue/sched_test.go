package queue

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func pkt(size int, d packet.DSCP) *packet.Packet {
	return &packet.Packet{Size: size, DSCP: d}
}

// serveBacklogged alternates sustained backlog with service: each step
// enqueues one packet per source then dequeues one packet, so classes
// stay backlogged while the scheduler picks the order. Returns bytes
// served per DSCP over n steps.
func serveBacklogged(t *testing.T, s Scheduler, n int, sources []*packet.Packet) map[packet.DSCP]int64 {
	t.Helper()
	out := map[packet.DSCP]int64{}
	for i := 0; i < n; i++ {
		for _, src := range sources {
			s.Enqueue(pkt(src.Size, src.DSCP))
		}
		p := s.Dequeue()
		if p == nil {
			t.Fatal("Dequeue returned nil while backlogged — not work-conserving")
		}
		out[p.DSCP] += int64(p.Size)
	}
	return out
}

func ratioWithin(t *testing.T, name string, a, b int64, want, tol float64) {
	t.Helper()
	if b == 0 {
		t.Fatalf("%s: zero denominator (a=%d)", name, a)
	}
	got := float64(a) / float64(b)
	if got < want-tol || got > want+tol {
		t.Errorf("%s: byte ratio %.3f, want %.2f±%.2f", name, got, want, tol)
	}
}

func TestDRRByteFairnessEqualQuanta(t *testing.T) {
	// Equal quanta must yield equal byte shares even with a 3:1
	// packet-size mismatch — the property DRR exists for.
	d := NewDRR(
		ClassSpec{Name: "big", Match: MatchDSCP(packet.EF), Quantum: 1500},
		ClassSpec{Name: "small", Match: MatchDSCP(packet.BestEffort), Quantum: 1500},
	)
	got := serveBacklogged(t, d, 4000, []*packet.Packet{
		pkt(1500, packet.EF), pkt(500, packet.BestEffort),
	})
	ratioWithin(t, "DRR equal quanta", got[packet.EF], got[packet.BestEffort], 1.0, 0.05)
}

func TestDRRQuantumWeighting(t *testing.T) {
	d := NewDRR(
		ClassSpec{Name: "gold", Match: MatchDSCP(packet.EF), Quantum: 3000},
		ClassSpec{Name: "bronze", Match: MatchDSCP(packet.BestEffort), Quantum: 1000},
	)
	got := serveBacklogged(t, d, 6000, []*packet.Packet{
		pkt(1000, packet.EF), pkt(1000, packet.BestEffort),
	})
	ratioWithin(t, "DRR 3:1 quanta", got[packet.EF], got[packet.BestEffort], 3.0, 0.25)
}

func TestWFQWeightFairness(t *testing.T) {
	w := NewWFQ(
		ClassSpec{Name: "heavy", Match: MatchDSCP(packet.EF), Weight: 2},
		ClassSpec{Name: "light", Match: MatchDSCP(packet.BestEffort), Weight: 1},
	)
	got := serveBacklogged(t, w, 6000, []*packet.Packet{
		pkt(1200, packet.EF), pkt(1200, packet.BestEffort),
	})
	ratioWithin(t, "WFQ 2:1 weights", got[packet.EF], got[packet.BestEffort], 2.0, 0.15)
}

func TestWFQByteFairnessUnequalSizes(t *testing.T) {
	// Equal weights, 1500B vs 300B packets: byte shares equalize
	// because small packets earn proportionally smaller tag advances.
	w := NewWFQ(
		ClassSpec{Name: "big", Match: MatchDSCP(packet.EF), Weight: 1},
		ClassSpec{Name: "small", Match: MatchDSCP(packet.BestEffort), Weight: 1},
	)
	got := serveBacklogged(t, w, 6000, []*packet.Packet{
		pkt(1500, packet.EF), pkt(300, packet.BestEffort),
	})
	ratioWithin(t, "WFQ equal weights", got[packet.EF], got[packet.BestEffort], 1.0, 0.05)
}

func TestWFQPreservesIntraClassOrder(t *testing.T) {
	w := NewWFQ(
		ClassSpec{Name: "a", Match: MatchDSCP(packet.EF)},
		ClassSpec{Name: "b", Match: MatchDSCP(packet.BestEffort)},
	)
	for i := 0; i < 50; i++ {
		p := pkt(100+i, packet.EF)
		p.ID = uint64(i)
		w.Enqueue(p)
	}
	var last uint64
	first := true
	for p := w.Dequeue(); p != nil; p = w.Dequeue() {
		if !first && p.ID <= last {
			t.Fatalf("intra-class reorder: %d after %d", p.ID, last)
		}
		last, first = p.ID, false
	}
}

func TestMultiClassWorkConservation(t *testing.T) {
	// Invariant under random load: Dequeue returns a packet exactly
	// when Len() > 0, and Len always equals the sum of class Queued.
	mk := map[string]func() Scheduler{
		"drr": func() Scheduler {
			return NewDRR(
				ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF), Limit: 60},
				ClassSpec{Name: "af", Match: MatchDSCP(packet.AF11, packet.AF12, packet.AF13), Limit: 60},
				ClassSpec{Name: "be", Limit: 60},
			)
		},
		"wfq": func() Scheduler {
			return NewWFQ(
				ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF), Weight: 4, Limit: 60},
				ClassSpec{Name: "af", Match: MatchDSCP(packet.AF11, packet.AF12, packet.AF13), Weight: 2, Limit: 60},
				ClassSpec{Name: "be", Weight: 1, Limit: 60},
			)
		},
	}
	dscps := []packet.DSCP{packet.EF, packet.AF11, packet.AF12, packet.BestEffort, packet.DSCP(0x07)}
	for name, make := range mk {
		t.Run(name, func(t *testing.T) {
			s := make()
			rng := rand.New(rand.NewSource(7))
			for step := 0; step < 20000; step++ {
				if rng.Intn(3) > 0 {
					s.Enqueue(pkt(40+rng.Intn(1460), dscps[rng.Intn(len(dscps))]))
				} else {
					p := s.Dequeue()
					if (p == nil) != (s.Len() == 0 && p == nil) {
						t.Fatal("inconsistent Dequeue/Len")
					}
					if p == nil && s.Len() != 0 {
						t.Fatalf("step %d: Dequeue nil with %d queued — not work-conserving", step, s.Len())
					}
				}
				sum := 0
				for _, c := range s.Classes() {
					sum += c.Queued
				}
				if sum != s.Len() {
					t.Fatalf("step %d: class Queued sum %d != Len %d", step, sum, s.Len())
				}
			}
			for s.Len() > 0 {
				if s.Dequeue() == nil {
					t.Fatal("drain stalled with packets queued")
				}
			}
		})
	}
}

func TestClassStatsAccounting(t *testing.T) {
	for name, s := range map[string]Scheduler{
		"drr": NewDRR(
			ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF), Limit: 5},
			ClassSpec{Name: "be", Limit: 5},
		),
		"wfq": NewWFQ(
			ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF), Limit: 5},
			ClassSpec{Name: "be", Limit: 5},
		),
		"priority": NewEFPriority(5, 5),
	} {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 8; i++ { // 3 over the EF limit
				s.Enqueue(pkt(1000, packet.EF))
			}
			s.Enqueue(pkt(700, packet.BestEffort))
			cs := s.Classes()
			if len(cs) != 2 {
				t.Fatalf("classes = %d, want 2", len(cs))
			}
			ef := cs[0]
			if ef.Enqueued != 5 || ef.Dropped != 3 || ef.Queued != 5 {
				t.Errorf("ef stats = %+v, want enq 5 drop 3 queued 5", ef)
			}
			if ef.Bytes != 5000 || ef.QueuedBytes != 5000 {
				t.Errorf("ef bytes = %d/%d, want 5000/5000", ef.Bytes, ef.QueuedBytes)
			}
			for s.Dequeue() != nil {
			}
			cs = s.Classes()
			if cs[0].Queued != 0 || cs[0].Enqueued != 5 {
				t.Errorf("post-drain ef stats = %+v", cs[0])
			}
		})
	}
}

func TestClassifyFallsBackToLastClass(t *testing.T) {
	d := NewDRR(
		ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF)},
		ClassSpec{Name: "be", Match: MatchDSCP(packet.BestEffort)},
	)
	d.Enqueue(pkt(100, packet.DSCP(0x33))) // matches neither
	cs := d.Classes()
	if cs[1].Queued != 1 {
		t.Errorf("unmatched DSCP not in fallback class: %+v", cs)
	}
	w := NewWFQ(
		ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF)},
		ClassSpec{Name: "be", Match: MatchDSCP(packet.BestEffort)},
	)
	w.Enqueue(pkt(100, packet.DSCP(0x33)))
	if w.Classes()[1].Queued != 1 {
		t.Errorf("WFQ unmatched DSCP not in fallback class")
	}
}

func TestDRRIdleClassLosesDeficit(t *testing.T) {
	// A class that drains must restart with zero deficit — otherwise
	// an idle class banks credit and bursts later.
	d := NewDRR(
		ClassSpec{Name: "a", Match: MatchDSCP(packet.EF), Quantum: 9000},
		ClassSpec{Name: "b", Quantum: 1500},
	)
	d.Enqueue(pkt(1500, packet.EF))
	if p := d.Dequeue(); p == nil || p.DSCP != packet.EF {
		t.Fatal("expected the EF packet")
	}
	if d.classes[0].deficit != 0 {
		t.Errorf("drained class kept deficit %d", d.classes[0].deficit)
	}
}

func TestWFQTagsStayBounded(t *testing.T) {
	// A continuously backlogged class must not accumulate consumed
	// tags: the compaction keeps the slice proportional to the
	// backlog, not to the packets ever served.
	w := NewWFQ(
		ClassSpec{Name: "ef", Match: MatchDSCP(packet.EF), Limit: 50},
		ClassSpec{Name: "be", Limit: 50},
	)
	for i := 0; i < 20000; i++ {
		w.Enqueue(pkt(1000, packet.EF))
		w.Enqueue(pkt(1000, packet.BestEffort))
		w.Dequeue() // net backlog grows to the limits, then stays full
	}
	for _, c := range w.classes {
		if len(c.tags) > 4*c.spec.Limit+64 {
			t.Errorf("class %s tags grew to %d (head %d) — compaction ineffective",
				c.spec.Name, len(c.tags), c.head)
		}
		if len(c.tags)-c.head != c.fifo.Len() {
			t.Errorf("class %s outstanding tags %d != backlog %d",
				c.spec.Name, len(c.tags)-c.head, c.fifo.Len())
		}
	}
}
