package queue

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func pk(size int, d packet.DSCP) *packet.Packet {
	return &packet.Packet{Size: size, DSCP: d}
}

func TestFIFOOrder(t *testing.T) {
	var q FIFO
	for i := 1; i <= 5; i++ {
		p := pk(i, packet.BestEffort)
		p.ID = uint64(i)
		if !q.Push(p) {
			t.Fatal("unbounded FIFO refused a packet")
		}
	}
	for i := 1; i <= 5; i++ {
		if got := q.Pop(); got.ID != uint64(i) {
			t.Fatalf("pop %d: got id %d", i, got.ID)
		}
	}
	if q.Pop() != nil {
		t.Error("empty pop != nil")
	}
}

func TestFIFOPacketLimit(t *testing.T) {
	q := FIFO{MaxPackets: 2}
	q.Push(pk(1, 0))
	q.Push(pk(1, 0))
	if q.Push(pk(1, 0)) {
		t.Error("limit not enforced")
	}
	if q.Dropped != 1 || q.Enqueued != 2 {
		t.Errorf("counters: dropped=%d enq=%d", q.Dropped, q.Enqueued)
	}
}

func TestFIFOByteLimit(t *testing.T) {
	q := FIFO{MaxBytes: 3000}
	q.Push(pk(1500, 0))
	q.Push(pk(1500, 0))
	if q.Push(pk(1, 0)) {
		t.Error("byte limit not enforced")
	}
	q.Pop()
	if !q.Push(pk(1500, 0)) {
		t.Error("space freed by pop not usable")
	}
	if q.Bytes() != 3000 {
		t.Errorf("Bytes = %d", q.Bytes())
	}
}

func TestFIFOPeek(t *testing.T) {
	var q FIFO
	if q.Peek() != nil {
		t.Error("peek on empty")
	}
	p := pk(9, 0)
	q.Push(p)
	if q.Peek() != p || q.Len() != 1 {
		t.Error("peek must not remove")
	}
}

func TestPriorityServesEFFirst(t *testing.T) {
	s := NewEFPriority(0, 0)
	be := pk(1, packet.BestEffort)
	ef := pk(1, packet.EF)
	s.Enqueue(be)
	s.Enqueue(ef)
	if got := s.Dequeue(); got != ef {
		t.Error("EF not served first")
	}
	if got := s.Dequeue(); got != be {
		t.Error("BE lost")
	}
}

func TestPriorityStrictStarvation(t *testing.T) {
	s := NewEFPriority(0, 0)
	for i := 0; i < 10; i++ {
		s.Enqueue(pk(1, packet.EF))
		s.Enqueue(pk(1, packet.BestEffort))
	}
	for i := 0; i < 10; i++ {
		if got := s.Dequeue(); got.DSCP != packet.EF {
			t.Fatalf("dequeue %d served %v before EF drained", i, got.DSCP)
		}
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPriorityCustomHighSet(t *testing.T) {
	s := NewPriority(0, 0, packet.AF11, packet.EF)
	s.Enqueue(pk(1, packet.AF11))
	if s.High.Len() != 1 {
		t.Error("AF11 not classified high")
	}
	s.Enqueue(pk(1, packet.AF13))
	if s.Low.Len() != 1 {
		t.Error("AF13 not classified low")
	}
}

func TestPriorityPerClassLimits(t *testing.T) {
	s := NewEFPriority(1, 1)
	if !s.Enqueue(pk(1, packet.EF)) || s.Enqueue(pk(1, packet.EF)) {
		t.Error("high limit wrong")
	}
	if !s.Enqueue(pk(1, packet.BestEffort)) || s.Enqueue(pk(1, packet.BestEffort)) {
		t.Error("low limit wrong")
	}
}

func TestSingleFIFOScheduler(t *testing.T) {
	s := NewSingleFIFO(2)
	s.Enqueue(pk(1, 0))
	s.Enqueue(pk(2, 0))
	if s.Enqueue(pk(3, 0)) {
		t.Error("limit ignored")
	}
	if s.Len() != 2 || s.Dequeue() == nil {
		t.Error("basic ops broken")
	}
}

// FIFO conservation: everything pushed is popped exactly once, in
// order, for any interleaving of pushes and pops.
func TestFIFOConservation(t *testing.T) {
	f := func(ops []bool) bool {
		var q FIFO
		next := uint64(1)
		wantNext := uint64(1)
		for _, push := range ops {
			if push {
				p := pk(1, 0)
				p.ID = next
				next++
				q.Push(p)
			} else if p := q.Pop(); p != nil {
				if p.ID != wantNext {
					return false
				}
				wantNext++
			}
		}
		for p := q.Pop(); p != nil; p = q.Pop() {
			if p.ID != wantNext {
				return false
			}
			wantNext++
		}
		return wantNext == next
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
