// Package queue provides the buffer-management and scheduling
// mechanisms a DiffServ router port needs. Three families of
// work-conserving schedulers are available behind the uniform
// Scheduler interface:
//
//   - strict priority (the paper's core configuration: EF served from
//     "a simple priority queue structure", §3.2.1.2), plus plain FIFOs;
//   - deficit round robin (DRR) and self-clocked weighted fair queueing
//     (WFQ), for class-isolated sharing of a bottleneck among several
//     behavior aggregates;
//   - RED / RIO active queue management for the Assured Forwarding
//     extension.
//
// Every scheduler reports per-class accounting through Classes(), so
// the measurement harness can ask any port "what did each class
// enqueue, drop, and hold" without knowing the scheduling discipline.
package queue

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
)

// FIFO is a bounded drop-tail queue measured in packets and bytes.
// Either limit may be zero to disable it. The zero value is an
// unbounded queue. The packets ride a packet.Ring, so the
// steady-state push/pop cycle of a busy port performs no allocation.
type FIFO struct {
	MaxPackets int
	MaxBytes   int64

	ring  packet.Ring
	bytes int64

	Enqueued      int
	Dropped       int
	EnqueuedBytes int64
	DroppedBytes  int64
}

// Len reports the number of queued packets.
func (q *FIFO) Len() int { return q.ring.Len() }

// Bytes reports the queued byte count.
func (q *FIFO) Bytes() int64 { return q.bytes }

// Push appends p, or drops it (returning false) if a limit would be
// exceeded.
func (q *FIFO) Push(p *packet.Packet) bool {
	if q.MaxPackets > 0 && q.ring.Len() >= q.MaxPackets {
		q.Dropped++
		q.DroppedBytes += int64(p.Size)
		return false
	}
	if q.MaxBytes > 0 && q.bytes+int64(p.Size) > q.MaxBytes {
		q.Dropped++
		q.DroppedBytes += int64(p.Size)
		return false
	}
	q.ring.Push(p)
	q.bytes += int64(p.Size)
	q.Enqueued++
	q.EnqueuedBytes += int64(p.Size)
	return true
}

// Pop removes and returns the head packet, or nil if empty.
func (q *FIFO) Pop() *packet.Packet {
	p := q.ring.Pop()
	if p != nil {
		q.bytes -= int64(p.Size)
	}
	return p
}

// Peek returns the head packet without removing it, or nil.
func (q *FIFO) Peek() *packet.Packet { return q.ring.Peek() }

// ClassStats is the uniform per-class counter set every Scheduler
// exposes: what the class admitted, dropped, and currently holds.
type ClassStats struct {
	Name        string
	Queued      int   // packets currently queued
	QueuedBytes int64 // bytes currently queued
	Enqueued    int   // packets admitted since start
	Dropped     int   // packets rejected since start
	Bytes       int64 // bytes admitted since start
}

// Stats snapshots the FIFO's counters as a named class.
func (q *FIFO) Stats(name string) ClassStats {
	return ClassStats{
		Name: name, Queued: q.Len(), QueuedBytes: q.Bytes(),
		Enqueued: q.Enqueued, Dropped: q.Dropped, Bytes: q.EnqueuedBytes,
	}
}

// Tapped is implemented by schedulers that can annotate their drop
// decisions on a packet trace (the RED/RIO AQMs, whose probabilistic
// drops are otherwise indistinguishable from tail drops in the owning
// link's QueueDrop events). The topology builder wires the tap into
// any scheduler that supports it.
type Tapped interface {
	SetTap(t ptrace.Tap, hop ptrace.HopID)
}

// Scheduler selects the next packet to transmit from a set of queues.
type Scheduler interface {
	// Enqueue admits p to the appropriate queue; reports false on drop.
	Enqueue(p *packet.Packet) bool
	// Dequeue removes and returns the next packet to send, or nil.
	Dequeue() *packet.Packet
	// Len reports the total queued packets.
	Len() int
	// Classes snapshots per-class accounting, in the scheduler's
	// class order.
	Classes() []ClassStats
}

// Priority is a strict two-level priority scheduler: packets whose
// DSCP is in the high set are always served before anything else.
// This is exactly the paper's core configuration: "the high priority
// queue being assigned to traffic marked with the EF DSCP".
type Priority struct {
	High FIFO
	Low  FIFO

	isHigh func(packet.DSCP) bool
}

// NewPriority returns a priority scheduler that treats the given code
// points as high priority, with per-class packet limits (0 = unbounded).
func NewPriority(highLimit, lowLimit int, high ...packet.DSCP) *Priority {
	set := make(map[packet.DSCP]bool, len(high))
	for _, d := range high {
		set[d] = true
	}
	return &Priority{
		High:   FIFO{MaxPackets: highLimit},
		Low:    FIFO{MaxPackets: lowLimit},
		isHigh: func(d packet.DSCP) bool { return set[d] },
	}
}

// NewEFPriority is the common case: EF is high priority, everything
// else best effort.
func NewEFPriority(highLimit, lowLimit int) *Priority {
	return NewPriority(highLimit, lowLimit, packet.EF)
}

// Enqueue admits p to its class queue.
func (s *Priority) Enqueue(p *packet.Packet) bool {
	if s.isHigh(p.DSCP) {
		return s.High.Push(p)
	}
	return s.Low.Push(p)
}

// Dequeue serves the high queue exhaustively before the low queue.
func (s *Priority) Dequeue() *packet.Packet {
	if p := s.High.Pop(); p != nil {
		return p
	}
	return s.Low.Pop()
}

// Len reports total queued packets.
func (s *Priority) Len() int { return s.High.Len() + s.Low.Len() }

// Classes reports the high and low class counters.
func (s *Priority) Classes() []ClassStats {
	return []ClassStats{s.High.Stats("high"), s.Low.Stats("low")}
}

// SingleFIFO adapts a FIFO to the Scheduler interface (a best-effort
// only interface).
type SingleFIFO struct{ Q FIFO }

// NewSingleFIFO returns a FIFO scheduler with the given packet limit.
func NewSingleFIFO(limit int) *SingleFIFO {
	return &SingleFIFO{Q: FIFO{MaxPackets: limit}}
}

// Enqueue admits p.
func (s *SingleFIFO) Enqueue(p *packet.Packet) bool { return s.Q.Push(p) }

// Dequeue removes the head packet.
func (s *SingleFIFO) Dequeue() *packet.Packet { return s.Q.Pop() }

// Len reports queued packets.
func (s *SingleFIFO) Len() int { return s.Q.Len() }

// Classes reports the single class's counters.
func (s *SingleFIFO) Classes() []ClassStats {
	return []ClassStats{s.Q.Stats("fifo")}
}
