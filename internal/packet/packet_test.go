package packet

import (
	"strings"
	"testing"
)

func TestDSCPString(t *testing.T) {
	cases := map[DSCP]string{
		BestEffort: "BE", EF: "EF", AF11: "AF11", AF12: "AF12", AF13: "AF13",
		DSCP(0x07): "DSCP(0x07)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestColorProtoString(t *testing.T) {
	if Green.String() != "green" || Yellow.String() != "yellow" || Red.String() != "red" {
		t.Error("color names wrong")
	}
	if Color(9).String() != "Color(9)" {
		t.Error("unknown color format")
	}
	if UDP.String() != "UDP" || TCP.String() != "TCP" {
		t.Error("proto names wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 7, Flow: 1, Size: 1500, DSCP: EF, FrameSeq: 42, FragIndex: 1, FragCount: 5}
	s := p.String()
	for _, want := range []string{"id=7", "EF", "frame=42", "frag=2/5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSink(t *testing.T) {
	var s Sink
	p := &Packet{Size: 100}
	s.Handle(p)
	s.Handle(&Packet{Size: 200})
	if s.Count != 2 || s.Bytes != 300 || s.Last.Size != 200 {
		t.Errorf("sink state: %+v", s)
	}
}

func TestTee(t *testing.T) {
	var a, b Sink
	tee := Tee{A: &a, B: &b}
	tee.Handle(&Packet{Size: 10})
	if a.Count != 1 || b.Count != 1 {
		t.Error("tee did not duplicate")
	}
	// Nil halves are tolerated.
	Tee{A: &a}.Handle(&Packet{})
	Tee{B: &b}.Handle(&Packet{})
	if a.Count != 2 || b.Count != 2 {
		t.Error("tee with nil half misbehaved")
	}
}

func TestCounter(t *testing.T) {
	var sink Sink
	c := Counter{Next: &sink}
	c.Handle(&Packet{Size: 50})
	if c.Count != 1 || c.Bytes != 50 || sink.Count != 1 {
		t.Error("counter miscounted")
	}
	// Counter without next must not panic.
	(&Counter{}).Handle(&Packet{})
}

func TestHandlerFunc(t *testing.T) {
	called := false
	HandlerFunc(func(*Packet) { called = true }).Handle(&Packet{})
	if !called {
		t.Error("HandlerFunc not invoked")
	}
}
