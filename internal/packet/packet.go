// Package packet defines the unit of work that flows through the
// simulated network: an IP-datagram-sized packet annotated with the
// DiffServ code point, flow identity, and the application-level frame
// it carries.
//
// Packets are passed by pointer and never copied once created, so a
// component may stamp metadata (marking, timestamps) in place, in the
// spirit of gopacket's zero-copy decoding paths.
//
// # Ownership
//
// Handle takes ownership of its packet. A component does exactly one
// of three things with a packet it receives:
//
//   - forward it to the next Handler (ownership moves with it);
//   - hold it (a queue, a link in flight, a shaper) and forward later;
//   - terminate it — deliver, drop, or consume — and release it back
//     to the simulation's Pool.
//
// Nothing may retain a *Packet after its Handle call returns unless
// it now owns the packet; observers that want to remember a packet
// (taps, sinks, drop hooks) must copy the value, never keep the
// pointer — the owner will recycle it. All pool plumbing is nil-safe:
// a component with a nil Pool falls back to plain heap allocation, so
// hand-wired tests need no pool at all.
package packet

import (
	"fmt"
	"sync/atomic"

	"repro/internal/units"
)

// nextID hands out packet ids. There is exactly one counter in the
// process: ids stamped by servers, background sources, and batched
// fan-outs never collide, so a trace's id → packet mapping is
// injective and ptrace.CanonicalizePacketIDs can relabel equivalent
// captures to identical bytes. (Two counters — the historical layout
// — aliased a server packet and a source packet whenever their
// independent counts crossed, which made canonicalized full captures
// compare differently from run to run.) The counter is atomic because
// independent simulations run concurrently on the experiment runner
// pool; ids only need to be unique and non-zero, not dense.
var nextID atomic.Uint64

// NewID returns a process-unique non-zero packet id.
func NewID() uint64 { return nextID.Add(1) }

// ResetIDs restarts the id counter (tests and experiment isolation).
func ResetIDs() { nextID.Store(0) }

// DSCP is a Differentiated Services Code Point (RFC 2474).
type DSCP uint8

// Code points used in the experiments.
const (
	// BestEffort is the default PHB.
	BestEffort DSCP = 0
	// EF is the Expedited Forwarding code point 101110b (RFC 2598).
	// (The paper's testbed configured 101100b on the routers; the
	// constant here follows the RFC value — only equality matters.)
	EF DSCP = 0x2E
	// AF11..AF13 are the Assured Forwarding class-1 drop precedences
	// (RFC 2597), used by the srTCM/trTCM markers: green, yellow, red.
	AF11 DSCP = 0x0A
	AF12 DSCP = 0x0C
	AF13 DSCP = 0x0E
)

// String names the code point.
func (d DSCP) String() string {
	switch d {
	case BestEffort:
		return "BE"
	case EF:
		return "EF"
	case AF11:
		return "AF11"
	case AF12:
		return "AF12"
	case AF13:
		return "AF13"
	default:
		return fmt.Sprintf("DSCP(0x%02x)", uint8(d))
	}
}

// Color is the token-bucket marker verdict used by the three-color
// markers (RFC 2697/2698).
type Color uint8

// Marker verdicts.
const (
	Green Color = iota
	Yellow
	Red
)

// String names the color.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// Proto is the transport protocol of a packet.
type Proto uint8

// Transport protocols the servers use.
const (
	UDP Proto = iota
	TCP
)

// String names the protocol.
func (p Proto) String() string {
	if p == TCP {
		return "TCP"
	}
	return "UDP"
}

// FlowID identifies a transport flow (the classifier key). The paper's
// router-1 policy classifies on (src, dst) of the video connection;
// a small integer id is the simulation equivalent.
type FlowID uint32

// Packet is one IP datagram in flight.
type Packet struct {
	ID    uint64 // unique per simulation, in send order
	Flow  FlowID // classifier key
	Proto Proto  // transport protocol
	Size  int    // bytes on the wire, including headers
	DSCP  DSCP   // current marking
	Color Color  // marker verdict, when a 3-color marker ran

	// Application payload description. FrameSeq identifies the video
	// frame this packet is a fragment of; FragIndex/FragCount locate
	// the fragment within the frame's datagram; a frame is delivered
	// only when every fragment arrives (IP fragmentation semantics,
	// which is what made the large-datagram servers fragile).
	FrameSeq  int
	FragIndex int
	FragCount int

	// TCP bookkeeping (used only by tcpsim flows).
	Seq   int64 // first payload byte sequence number
	Ack   int64 // cumulative ack carried (for ACK segments Size is hdr only)
	IsAck bool
	SYN   bool
	FIN   bool

	SentAt     units.Time // stamped by the sender
	EnqueuedAt units.Time // last queue admission time, for delay stats

	// pooled marks packets currently resting in a Pool, to catch
	// double releases (see Pool.Put).
	pooled bool
}

// String summarizes the packet for logs and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d flow=%d %s %dB %s frame=%d frag=%d/%d}",
		p.ID, p.Flow, p.Proto, p.Size, p.DSCP, p.FrameSeq, p.FragIndex+1, p.FragCount)
}

// Pool recycles Packets so the per-packet hot path allocates nothing
// in the steady state. A Pool is deliberately not goroutine-safe:
// each simulation (and therefore each runner worker at any given
// moment) owns its own arena, so packets never cross goroutines.
//
// All methods are nil-safe: a nil *Pool allocates from the heap on
// Get and discards on Put, so pooling is strictly opt-in.
type Pool struct {
	free []*Packet

	// Gets counts Get calls, News the subset that had to allocate,
	// Puts the packets returned. Gets - News is the recycle hit count.
	Gets, News, Puts uint64
}

// NewPool returns an empty arena.
func NewPool() *Pool { return &Pool{} }

// Get returns a zeroed packet, recycled if possible.
func (pl *Pool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	pl.Gets++
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		return p
	}
	pl.News++
	return &Packet{}
}

// Put releases p back to the arena. Releasing the same packet twice
// panics: a double put means two components both believed they owned
// the packet, which is exactly the aliasing bug the ownership rules
// exist to prevent.
func (pl *Pool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	if p.pooled {
		panic("packet: double Put — two owners released the same packet")
	}
	p.pooled = true
	pl.Puts++
	pl.free = append(pl.free, p)
}

// Free reports how many packets are currently in the arena.
func (pl *Pool) Free() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}

// Ring is a FIFO of packets on a compacting slice: Pop nils the
// consumed slot and advances a head index, the backing array restarts
// once empty, and the consumed prefix is compacted away when it
// dominates, so memory stays proportional to occupancy and the
// steady-state push/pop cycle never allocates. It is the shared
// in-flight/pending structure of queues, links, jitter elements and
// paced senders. The zero value is an empty ring.
type Ring struct {
	items []*Packet
	head  int
}

// Len reports the packets currently queued.
func (r *Ring) Len() int { return len(r.items) - r.head }

// Push appends p.
func (r *Ring) Push(p *Packet) {
	if r.head == len(r.items) {
		// Empty: restart at the front so a ping-pong push/pop reuses
		// slot zero forever.
		r.items = r.items[:0]
		r.head = 0
	}
	r.items = append(r.items, p)
}

// Pop removes and returns the oldest packet, or nil if empty.
func (r *Ring) Pop() *Packet {
	if r.head == len(r.items) {
		return nil
	}
	p := r.items[r.head]
	r.items[r.head] = nil
	r.head++
	if r.head == len(r.items) {
		r.items = r.items[:0]
		r.head = 0
	} else if r.head >= 32 && r.head*2 >= len(r.items) {
		n := copy(r.items, r.items[r.head:])
		for i := n; i < len(r.items); i++ {
			r.items[i] = nil
		}
		r.items = r.items[:n]
		r.head = 0
	}
	return p
}

// Peek returns the oldest packet without removing it, or nil.
func (r *Ring) Peek() *Packet {
	if r.head == len(r.items) {
		return nil
	}
	return r.items[r.head]
}

// Cap reports the size of the ring's backing array, consumed slots
// included — a boundedness probe for tests.
func (r *Ring) Cap() int { return cap(r.items) }

// Handler consumes packets. Every data-plane component (policer,
// queue, link, router, client) implements Handler, so topologies are
// built by plugging Handlers together.
type Handler interface {
	// Handle takes ownership of p at the current simulated time: the
	// implementation must forward p, hold it for later forwarding, or
	// terminate it (releasing it to the pool when one is wired). See
	// the package comment for the full ownership contract.
	Handle(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// Handle calls f(p).
func (f HandlerFunc) Handle(p *Packet) { f(p) }

// Sink is a terminal Handler that counts and discards everything;
// useful as a default next hop and in tests. It retains the last
// packet by value (copy-on-retain), never by pointer, so it is safe
// behind a pool.
type Sink struct {
	Count int
	Bytes int64
	Last  Packet // value copy of the most recent packet
	Pool  *Pool  // optional: terminal release target
}

// Handle records and terminates p.
func (s *Sink) Handle(p *Packet) {
	s.Count++
	s.Bytes += int64(p.Size)
	s.Last = *p
	s.Pool.Put(p)
}

// Tee forwards to an observer A and then to the owner B: A borrows
// the packet for the duration of its Handle call (it must neither
// retain nor release it), B takes ownership. With pooling in play a
// Tee must never point A at a terminal handler.
type Tee struct{ A, B Handler }

// Handle lends p to A, then hands ownership to B.
func (t Tee) Handle(p *Packet) {
	if t.A != nil {
		t.A.Handle(p)
	}
	if t.B != nil {
		t.B.Handle(p)
	}
}

// Counter wraps a next hop and counts what passes through. With a nil
// Next it is terminal and releases to Pool (when set).
type Counter struct {
	Next  Handler
	Pool  *Pool
	Count int
	Bytes int64
}

// Handle counts p then forwards it, or terminates it when Next is nil.
func (c *Counter) Handle(p *Packet) {
	c.Count++
	c.Bytes += int64(p.Size)
	if c.Next != nil {
		c.Next.Handle(p)
		return
	}
	c.Pool.Put(p)
}
