// Package packet defines the unit of work that flows through the
// simulated network: an IP-datagram-sized packet annotated with the
// DiffServ code point, flow identity, and the application-level frame
// it carries.
//
// Packets are passed by pointer and never copied once created, so a
// component may stamp metadata (marking, timestamps) in place, in the
// spirit of gopacket's zero-copy decoding paths.
package packet

import (
	"fmt"

	"repro/internal/units"
)

// DSCP is a Differentiated Services Code Point (RFC 2474).
type DSCP uint8

// Code points used in the experiments.
const (
	// BestEffort is the default PHB.
	BestEffort DSCP = 0
	// EF is the Expedited Forwarding code point 101110b (RFC 2598).
	// (The paper's testbed configured 101100b on the routers; the
	// constant here follows the RFC value — only equality matters.)
	EF DSCP = 0x2E
	// AF11..AF13 are the Assured Forwarding class-1 drop precedences
	// (RFC 2597), used by the srTCM/trTCM markers: green, yellow, red.
	AF11 DSCP = 0x0A
	AF12 DSCP = 0x0C
	AF13 DSCP = 0x0E
)

// String names the code point.
func (d DSCP) String() string {
	switch d {
	case BestEffort:
		return "BE"
	case EF:
		return "EF"
	case AF11:
		return "AF11"
	case AF12:
		return "AF12"
	case AF13:
		return "AF13"
	default:
		return fmt.Sprintf("DSCP(0x%02x)", uint8(d))
	}
}

// Color is the token-bucket marker verdict used by the three-color
// markers (RFC 2697/2698).
type Color uint8

// Marker verdicts.
const (
	Green Color = iota
	Yellow
	Red
)

// String names the color.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("Color(%d)", uint8(c))
	}
}

// Proto is the transport protocol of a packet.
type Proto uint8

// Transport protocols the servers use.
const (
	UDP Proto = iota
	TCP
)

// String names the protocol.
func (p Proto) String() string {
	if p == TCP {
		return "TCP"
	}
	return "UDP"
}

// FlowID identifies a transport flow (the classifier key). The paper's
// router-1 policy classifies on (src, dst) of the video connection;
// a small integer id is the simulation equivalent.
type FlowID uint32

// Packet is one IP datagram in flight.
type Packet struct {
	ID    uint64 // unique per simulation, in send order
	Flow  FlowID // classifier key
	Proto Proto  // transport protocol
	Size  int    // bytes on the wire, including headers
	DSCP  DSCP   // current marking
	Color Color  // marker verdict, when a 3-color marker ran

	// Application payload description. FrameSeq identifies the video
	// frame this packet is a fragment of; FragIndex/FragCount locate
	// the fragment within the frame's datagram; a frame is delivered
	// only when every fragment arrives (IP fragmentation semantics,
	// which is what made the large-datagram servers fragile).
	FrameSeq  int
	FragIndex int
	FragCount int

	// TCP bookkeeping (used only by tcpsim flows).
	Seq   int64 // first payload byte sequence number
	Ack   int64 // cumulative ack carried (for ACK segments Size is hdr only)
	IsAck bool
	SYN   bool
	FIN   bool

	SentAt     units.Time // stamped by the sender
	EnqueuedAt units.Time // last queue admission time, for delay stats
}

// String summarizes the packet for logs and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d flow=%d %s %dB %s frame=%d frag=%d/%d}",
		p.ID, p.Flow, p.Proto, p.Size, p.DSCP, p.FrameSeq, p.FragIndex+1, p.FragCount)
}

// Handler consumes packets. Every data-plane component (policer,
// queue, link, router, client) implements Handler, so topologies are
// built by plugging Handlers together.
type Handler interface {
	// Handle takes ownership of p at the current simulated time.
	Handle(p *Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(p *Packet)

// Handle calls f(p).
func (f HandlerFunc) Handle(p *Packet) { f(p) }

// Sink is a Handler that counts and otherwise discards everything;
// useful as a default next hop and in tests.
type Sink struct {
	Count int
	Bytes int64
	Last  *Packet
}

// Handle records and drops p.
func (s *Sink) Handle(p *Packet) {
	s.Count++
	s.Bytes += int64(p.Size)
	s.Last = p
}

// Tee duplicates delivery to both handlers, in order.
type Tee struct{ A, B Handler }

// Handle forwards p to A then B.
func (t Tee) Handle(p *Packet) {
	if t.A != nil {
		t.A.Handle(p)
	}
	if t.B != nil {
		t.B.Handle(p)
	}
}

// Counter wraps a next hop and counts what passes through.
type Counter struct {
	Next  Handler
	Count int
	Bytes int64
}

// Handle counts p then forwards it.
func (c *Counter) Handle(p *Packet) {
	c.Count++
	c.Bytes += int64(p.Size)
	if c.Next != nil {
		c.Next.Handle(p)
	}
}
