// Package trace holds the frame timing records the instrumented client
// produces — the simulation analog of the "parallel ASCII file" the
// paper's DirectShow storage filter wrote next to the BigYUV frame
// dump (§3.1.2) — plus a text encoding so traces can be saved and fed
// to cmd/vqmtool offline, exactly like the original workflow.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/units"
)

// FrameRecord is the timing of one received (decodable) frame.
type FrameRecord struct {
	Seq          int        // frame sequence number in the clip
	Arrival      units.Time // when the last byte of the frame arrived
	Presentation units.Time // when the frame was due to be rendered

	// Frags and LostFrags describe partial delivery: a decoder that
	// concealed LostFrags missing slices still produced the frame,
	// but with visible damage the quality model accounts for.
	Frags     int
	LostFrags int
}

// DamageFraction reports the fraction of the frame's fragments that
// were concealed rather than received.
func (r FrameRecord) DamageFraction() float64 {
	if r.Frags <= 0 {
		return 0
	}
	return float64(r.LostFrags) / float64(r.Frags)
}

// Trace is the ordered set of received-frame records for one run.
type Trace struct {
	ClipFrames int // total frames in the original clip
	Records    []FrameRecord
}

// Add appends a record.
func (t *Trace) Add(r FrameRecord) { t.Records = append(t.Records, r) }

// SortBySeq orders records by frame sequence (receivers can complete
// frames out of order when fragments interleave).
func (t *Trace) SortBySeq() {
	sort.Slice(t.Records, func(i, j int) bool { return t.Records[i].Seq < t.Records[j].Seq })
}

// LostFrames reports how many of the clip's frames never arrived.
func (t *Trace) LostFrames() int { return t.ClipFrames - len(t.Records) }

// FrameLossFraction is the headline network-level metric of every
// figure: the fraction of the clip's frames never delivered.
func (t *Trace) FrameLossFraction() float64 {
	if t.ClipFrames == 0 {
		return 0
	}
	return float64(t.LostFrames()) / float64(t.ClipFrames)
}

// LateFrames reports frames that arrived after their presentation
// time by more than slack.
func (t *Trace) LateFrames(slack units.Time) int {
	n := 0
	for _, r := range t.Records {
		if r.Arrival > r.Presentation+slack {
			n++
		}
	}
	return n
}

// WriteTo emits the ASCII format: a header line then one
// "seq arrival_ns presentation_ns" line per frame.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	c, err := fmt.Fprintf(w, "frames %d received %d\n", t.ClipFrames, len(t.Records))
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, r := range t.Records {
		c, err := fmt.Fprintf(w, "%d %d %d %d %d\n",
			r.Seq, int64(r.Arrival), int64(r.Presentation), r.Frags, r.LostFrags)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Read parses the ASCII format produced by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	var total, recv int
	if _, err := fmt.Sscanf(sc.Text(), "frames %d received %d", &total, &recv); err != nil {
		return nil, fmt.Errorf("trace: bad header %q: %w", sc.Text(), err)
	}
	t := &Trace{ClipFrames: total}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var seq, frags, lost int
		var a, p int64
		if n, err := fmt.Sscanf(line, "%d %d %d %d %d", &seq, &a, &p, &frags, &lost); err != nil && n < 3 {
			return nil, fmt.Errorf("trace: bad record %q: %w", line, err)
		}
		t.Add(FrameRecord{
			Seq: seq, Arrival: units.Time(a), Presentation: units.Time(p),
			Frags: frags, LostFrags: lost,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
