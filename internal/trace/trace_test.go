package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestLossFraction(t *testing.T) {
	tr := &Trace{ClipFrames: 10}
	for i := 0; i < 7; i++ {
		tr.Add(FrameRecord{Seq: i})
	}
	if tr.LostFrames() != 3 {
		t.Errorf("LostFrames = %d", tr.LostFrames())
	}
	if got := tr.FrameLossFraction(); got != 0.3 {
		t.Errorf("FrameLossFraction = %v", got)
	}
	if (&Trace{}).FrameLossFraction() != 0 {
		t.Error("empty trace loss fraction")
	}
}

func TestLateFrames(t *testing.T) {
	tr := &Trace{ClipFrames: 3}
	tr.Add(FrameRecord{Seq: 0, Arrival: 10, Presentation: 20})
	tr.Add(FrameRecord{Seq: 1, Arrival: 30, Presentation: 20})
	tr.Add(FrameRecord{Seq: 2, Arrival: 200, Presentation: 20})
	if got := tr.LateFrames(0); got != 2 {
		t.Errorf("LateFrames(0) = %d", got)
	}
	if got := tr.LateFrames(50); got != 1 {
		t.Errorf("LateFrames(50) = %d", got)
	}
}

func TestSortBySeq(t *testing.T) {
	tr := &Trace{ClipFrames: 3}
	tr.Add(FrameRecord{Seq: 2})
	tr.Add(FrameRecord{Seq: 0})
	tr.Add(FrameRecord{Seq: 1})
	tr.SortBySeq()
	for i, r := range tr.Records {
		if r.Seq != i {
			t.Fatalf("not sorted: %v", tr.Records)
		}
	}
}

func TestDamageFraction(t *testing.T) {
	r := FrameRecord{Frags: 4, LostFrags: 1}
	if r.DamageFraction() != 0.25 {
		t.Errorf("DamageFraction = %v", r.DamageFraction())
	}
	if (FrameRecord{}).DamageFraction() != 0 {
		t.Error("zero-frag damage must be 0")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr := &Trace{ClipFrames: 100}
	tr.Add(FrameRecord{Seq: 0, Arrival: 123, Presentation: 456, Frags: 5, LostFrags: 1})
	tr.Add(FrameRecord{Seq: 7, Arrival: 1e9, Presentation: 2e9, Frags: 3})
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClipFrames != 100 || len(got.Records) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Read(strings.NewReader("not a header\n")); err == nil {
		t.Error("bad header accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seqs []uint16, arrivals []uint32) bool {
		tr := &Trace{ClipFrames: 70000}
		for i, s := range seqs {
			var a uint32
			if i < len(arrivals) {
				a = arrivals[i]
			}
			tr.Add(FrameRecord{
				Seq: int(s), Arrival: units.Time(a),
				Presentation: units.Time(a) + units.Second,
				Frags:        i%7 + 1, LostFrags: i % 2,
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
