package runner

import (
	"fmt"
	"sync"
)

// Group runs the shard workers of ONE simulation job. It is the
// intra-run complement of Map/MapArena: where the pool parallelizes
// across independent grid points, a Group parallelizes inside a single
// run (sharded execution, internal/topology), so it nests freely
// inside a pool worker. Panics in shard goroutines are captured,
// Quit is closed so sibling shards blocked on channel hand-offs can
// bail out, and Wait re-panics on the calling goroutine with the
// lowest faulting shard index attached — the same attribution contract
// MapArena gives job panics.
type Group struct {
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  *groupFailure
	quit chan struct{}
	once sync.Once
}

type groupFailure struct {
	shard int
	err   any
}

// NewGroup returns an empty group.
func NewGroup() *Group { return &Group{quit: make(chan struct{})} }

// Quit is closed when any shard panics (or Abort is called); shard
// workers must select on it wherever they block on a channel, or a
// faulting sibling would deadlock them.
func (g *Group) Quit() <-chan struct{} { return g.quit }

// Abort closes Quit without recording a failure — the orchestrator's
// own early exit path.
func (g *Group) Abort() { g.once.Do(func() { close(g.quit) }) }

// Go runs fn as shard worker i on its own goroutine.
func (g *Group) Go(i int, fn func()) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if g.err == nil || i < g.err.shard {
					g.err = &groupFailure{shard: i, err: r}
				}
				g.mu.Unlock()
				g.Abort()
			}
		}()
		fn()
	}()
}

// Wait blocks until every shard worker returned, then re-panics with
// the lowest faulting shard attached if any panicked.
func (g *Group) Wait() {
	g.wg.Wait()
	if g.err != nil {
		panic(fmt.Sprintf("runner: shard %d panicked: %v", g.err.shard, g.err.err))
	}
}
