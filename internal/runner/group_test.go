package runner

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestGroupRunsAllShards(t *testing.T) {
	g := NewGroup()
	var sum atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		g.Go(i, func() { sum.Add(int64(i)) })
	}
	g.Wait()
	if sum.Load() != 28 {
		t.Errorf("shard sum = %d, want 28", sum.Load())
	}
}

// TestGroupPanicUnblocksSiblings pins the deadlock-avoidance contract:
// a faulting shard closes Quit, a sibling blocked on a channel hand-off
// escapes via the select, and Wait re-panics naming the faulting shard.
func TestGroupPanicUnblocksSiblings(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("shard panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "shard 1") {
			t.Errorf("panic value %v does not name the shard", r)
		}
	}()
	g := NewGroup()
	ch := make(chan int) // unbuffered, never read: shard 0 blocks forever
	g.Go(0, func() {
		select {
		case ch <- 1:
		case <-g.Quit():
		}
	})
	g.Go(1, func() { panic("boom") })
	g.Wait()
}

func TestGroupAbort(t *testing.T) {
	g := NewGroup()
	g.Go(0, func() { <-g.Quit() })
	g.Abort()
	g.Abort() // idempotent
	g.Wait()  // must not panic
}
