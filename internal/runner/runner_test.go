package runner

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestMapEmpty(t *testing.T) {
	if got := Map[int](4, nil); len(got) != 0 {
		t.Errorf("Map(nil) = %v", got)
	}
}

func TestMapSerialOrder(t *testing.T) {
	var order []int
	jobs := make([]func() int, 5)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			order = append(order, i)
			return i * i
		}
	}
	got := Map(1, jobs)
	for i, v := range got {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}

// TestMapOrderedByIndex is the property test of the determinism
// contract: jobs that complete in deliberately scrambled order (later
// indexes finish first) must still land at their own index.
func TestMapOrderedByIndex(t *testing.T) {
	const n = 32
	jobs := make([]func() int, n)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			// Early jobs sleep longest, so completion order is roughly
			// the reverse of index order.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i
		}
	}
	for _, workers := range []int{2, 7, n} {
		got := Map(workers, jobs)
		for i, v := range got {
			if v != i {
				t.Errorf("workers=%d: result[%d] = %d — collected by arrival, not index", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	jobs := make([]func() int, 24)
	for i := range jobs {
		jobs[i] = func() int {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return 0
		}
	}
	Map(workers, jobs)
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

// TestMapDeterministicAcrossWorkerCounts runs genuinely random-looking
// work — a seeded simulation per job — under several pool sizes and
// demands bit-identical results.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	mk := func() []func() uint64 {
		jobs := make([]func() uint64, 16)
		for i := range jobs {
			i := i
			jobs[i] = func() uint64 {
				s := sim.New(uint64(1000 + i))
				var acc uint64
				for k := 0; k < 50; k++ {
					s.After(1, func() { acc = acc*31 + s.RNG().Uint64()%997 })
				}
				s.Run()
				return acc
			}
		}
		return jobs
	}
	ref := Map(1, mk())
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := Map(w, mk())
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: job %d produced %d, serial produced %d", w, i, got[i], ref[i])
			}
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "job 3") {
			t.Errorf("panic value %v does not name the job", r)
		}
	}()
	jobs := make([]func() int, 8)
	for i := range jobs {
		i := i
		jobs[i] = func() int {
			if i == 3 {
				panic("boom")
			}
			return i
		}
	}
	Map(4, jobs)
}

func TestMapPanicPropagatesSerial(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("serial panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "job 1") {
			t.Errorf("serial panic value %v does not name the job", r)
		}
	}()
	Map(1, []func() int{
		func() int { return 0 },
		func() int { panic("boom") },
	})
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("Workers(5) != 5")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Error("Workers(<=0) should default to GOMAXPROCS")
	}
}
