// Package runner is a deterministic worker-pool executor for
// independent simulation jobs.
//
// Every point of every paper figure is one self-contained run of the
// discrete-event simulator: the job builds its own sim.Simulator (and
// therefore its own RNG stream), runs it to completion, and reduces
// the outcome to a small value. Jobs share no mutable state, so they
// can execute on any number of goroutines without changing a single
// bit of any result. The runner exploits that: it fans a job slice out
// across a bounded pool of workers and collects results **by job
// index**, never by completion order, so the output of Map is
// byte-for-byte identical whether it ran on one worker or sixty-four.
//
// The experiment layer (internal/experiment) builds every figure
// through Map; cmd/dsbench, cmd/dsstream and the examples expose the
// worker count as -parallel.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: n if positive,
// otherwise GOMAXPROCS (the default "use the machine" setting).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs every job and returns their results indexed exactly like
// jobs, regardless of the order in which workers finish them. At most
// Workers(workers) jobs execute concurrently; workers <= 1 runs the
// jobs serially on the calling goroutine in index order, which is the
// reference execution the concurrent path must (and does) match.
//
// If a job panics, Map stops dispatching further jobs, waits for the
// in-flight ones to drain, and re-panics on the calling goroutine with
// the job index attached, so a crash inside a simulation surfaces
// promptly and is attributable rather than silently swallowed by a
// worker goroutine.
func Map[T any](workers int, jobs []func() T) []T {
	wrapped := make([]func(struct{}) T, len(jobs))
	for i, job := range jobs {
		job := job
		wrapped[i] = func(struct{}) T { return job() }
	}
	return MapArena(workers, func() struct{} { return struct{}{} }, wrapped)
}

// MapArena is Map for jobs that want a per-worker arena: newArena is
// called once per worker goroutine (once total in the serial case)
// and the worker passes its arena to every job it executes. An arena
// therefore never crosses goroutines and never sees two jobs
// concurrently — the contract that lets simulations reuse packet and
// event pools across jobs without any locking. Jobs must not let the
// arena outlive their call.
//
// Everything else matches Map: results are collected by job index, so
// output is byte-identical at every parallelism level provided jobs
// are deterministic functions of their inputs (arena reuse must not
// leak state between jobs — pools hand out zeroed objects).
func MapArena[A, T any](workers int, newArena func() A, jobs []func(A) T) []T {
	results := make([]T, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	w := Workers(workers)
	if w > len(jobs) {
		w = len(jobs)
	}
	if w <= 1 {
		arena := newArena()
		for i, job := range jobs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						panic(fmt.Sprintf("runner: job %d panicked: %v", i, r))
					}
				}()
				results[i] = job(arena)
			}()
		}
		return results
	}

	type failure struct {
		index int
		err   any
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *failure
		failed   atomic.Bool
	)
	next := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := newArena()
			for i := range next {
				if failed.Load() {
					continue
				}
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							failed.Store(true)
							mu.Lock()
							if firstErr == nil || i < firstErr.index {
								firstErr = &failure{index: i, err: r}
							}
							mu.Unlock()
						}
					}()
					results[i] = jobs[i](arena)
				}(i)
			}
		}()
	}
	for i := range jobs {
		if failed.Load() {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		panic(fmt.Sprintf("runner: job %d panicked: %v", firstErr.index, firstErr.err))
	}
	return results
}
