package ptrace_test

import (
	"strings"
	"testing"

	"repro/internal/ptrace"
	"repro/internal/units"
)

// TestCompareSelfIsClean pins the self-comparison contract on the real
// tandem capture: a summary diffed against itself has no deltas and no
// breaches at the strictest (zero) thresholds.
func TestCompareSelfIsClean(t *testing.T) {
	s := ptrace.Analyze(corpusData(t), units.Second)
	d := ptrace.CompareSummaries(s, s, ptrace.Thresholds{})
	if !d.Clean() || d.Breaches != 0 {
		t.Fatalf("self-compare not clean: %d breaches\n%s", d.Breaches, d.Format(0))
	}
	if d.HopsCompared == 0 || d.FlowsCompared == 0 {
		t.Errorf("nothing compared: %d hops, %d flows", d.HopsCompared, d.FlowsCompared)
	}
	if !strings.Contains(d.Format(0), "no behavioral deltas") {
		t.Errorf("clean diff renders without the clean verdict:\n%s", d.Format(0))
	}
}

// TestCompareThresholds pins the breach semantics: exact gates catch
// any count shift, relative tolerance absorbs proportional drift, and
// the absolute time floor silences sub-floor delay jitter that a
// relative gate alone would trip on.
func TestCompareThresholds(t *testing.T) {
	base := func() *ptrace.Summary {
		return &ptrace.Summary{
			Hops: []ptrace.HopStats{{
				Name: "border", Drops: 100,
				Residence: ptrace.Quantiles{N: 50, P50: units.Millisecond, P99: 2 * units.Millisecond},
			}},
			Flows: []ptrace.FlowStats{{Flow: 7, Delivered: 1000}},
		}
	}

	a, b := base(), base()
	b.Hops[0].Drops = 103
	b.Hops[0].Residence.P50 += 10 * units.Microsecond

	// Exact: both the count shift and the delay jitter breach.
	d := ptrace.CompareSummaries(a, b, ptrace.Thresholds{})
	if d.Breaches != 2 || !d.Hops[0].Breach {
		t.Errorf("exact gate: %d field breaches, want 2\n%s", d.Breaches, d.Format(0))
	}
	if got := len(d.Hops[0].Fields); got != 2 {
		t.Errorf("exact gate: %d differing fields, want 2 (drops, res-p50)", got)
	}

	// 5%% relative tolerance absorbs the 3%% drop shift; the delay
	// delta (1%%) is also inside it.
	d = ptrace.CompareSummaries(a, b, ptrace.Thresholds{Rel: 0.05})
	if d.Breaches != 0 {
		t.Errorf("5%% tolerance still breaches:\n%s", d.Format(0))
	}

	// 0.5%% relative tolerance catches the drops again; the 10 µs
	// delay delta (1%% of 1 ms) breaches too unless the absolute floor
	// covers it.
	d = ptrace.CompareSummaries(a, b, ptrace.Thresholds{Rel: 0.005})
	if d.Breaches != 2 {
		t.Errorf("0.5%% tolerance: %d field breaches, want 2", d.Breaches)
	}
	var fields []string
	for _, f := range d.Hops[0].Fields {
		if f.Breach {
			fields = append(fields, f.Field)
		}
	}
	if len(fields) != 2 {
		t.Errorf("0.5%% tolerance: breaching fields %v, want [drops res-p50]", fields)
	}
	d = ptrace.CompareSummaries(a, b, ptrace.Thresholds{Rel: 0.005, AbsTime: 20 * units.Microsecond})
	fields = fields[:0]
	for _, f := range d.Hops[0].Fields {
		if f.Breach {
			fields = append(fields, f.Field)
		}
	}
	if len(fields) != 1 || fields[0] != "drops" {
		t.Errorf("abs floor: breaching fields %v, want [drops]", fields)
	}
}

// TestCompareMissingEntities pins that a hop or flow present in only
// one run is always a breach, whatever the thresholds.
func TestCompareMissingEntities(t *testing.T) {
	a := &ptrace.Summary{
		Hops:  []ptrace.HopStats{{Name: "border"}, {Name: "ghost"}},
		Flows: []ptrace.FlowStats{{Flow: 7}},
	}
	b := &ptrace.Summary{
		Hops:  []ptrace.HopStats{{Name: "border"}},
		Flows: []ptrace.FlowStats{{Flow: 7}, {Flow: 9}},
	}
	d := ptrace.CompareSummaries(a, b, ptrace.Thresholds{Rel: 1e9})
	if d.Breaches != 2 {
		t.Fatalf("%d breaches, want 2 (missing hop + extra flow)\n%s", d.Breaches, d.Format(0))
	}
	out := d.Format(0)
	if !strings.Contains(out, "only in a") || !strings.Contains(out, "only in b") {
		t.Errorf("presence deltas not rendered:\n%s", out)
	}
}
