package ptrace

// The binary v2 trace encoding. JSONL (encode.go) spends ~50 bytes
// per event on decimal digits and separators; a fleet-scale capture
// (PR 7's N=200k mixtures emit tens of millions of verdicts) needs a
// format whose cost per event is a small constant. v2 is that format:
//
//	magic (8 bytes, 0x89 "PTRC2" CR LF)
//	blocks:
//	  uvarint count            // events in this block; 0 = trailer
//	  uvarint byteLen          // payload length (length-prefixed)
//	  payload[byteLen]         // `count` packed records, see below
//	trailer (after the count==0 marker):
//	  uvarint hopCount, hopCount × (uvarint len, name bytes)
//	  uvarint seen             // total events emitted during the run
//	  uvarint totalEvents      // must equal the decoded event count
//
// Records are delta-packed varints rather than fixed-width words: each
// event carries its kind byte, then a uvarint presence bitmap naming
// the fields that differ from a reference — T against the previous
// event in the stream, every other field against the previous event
// of the *same kind* — and then one zigzag-varint delta per named
// field. Consecutive same-kind events share hop, DSCP, size and near
// ids, so most fields are absent and a steady-state event costs ~8-12
// bytes against JSONL's ~50 (the encoding ratio test pins ≤ 1/3 on
// the fuzz-corpus seeds). Deltas use wrapping int64 arithmetic, so
// every field round-trips exactly at the full range the JSONL decoder
// accepts, extreme values included.
//
// The hop table and totals live in the *trailer*, not a header, so the
// format can be written incrementally while a simulation runs — the
// Recorder's spill mode streams blocks to a writer during the run and
// seals the trailer afterwards, which is what lets `dsbench -trace`
// capture beyond -trace-cap without growing the ring. The trailing
// totalEvents doubles as the truncation check: a file cut off mid-run
// fails to decode instead of silently passing for a shorter capture.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/units"
)

// VersionV2 is the binary trace format version this file implements.
const VersionV2 = 2

// magicV2 opens every binary v2 trace. The 0x89 lead byte keeps it
// disjoint from JSONL ('{') and from plain text; CR LF catches
// line-ending mangling the way PNG's signature does.
var magicV2 = [8]byte{0x89, 'P', 'T', 'R', 'C', '2', '\r', '\n'}

// Format identifies a trace file's wire encoding.
type Format uint8

const (
	// FormatUnknown is returned alongside sniffing errors.
	FormatUnknown Format = iota
	// FormatJSONL is the versioned JSONL v1 encoding (encode.go).
	FormatJSONL
	// FormatV2 is the length-prefixed binary v2 encoding (this file).
	FormatV2
)

// String names the format the way dstrace reports it.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatV2:
		return "binary-v2"
	}
	return "unknown"
}

// Presence-bitmap bits of one packed record. Frequently-changing
// fields sit in the low seven bits so the uvarint bitmap of a typical
// event is one byte.
const (
	bitT = 1 << iota
	bitPkt
	bitDelay
	bitQLen
	bitFrame
	bitFlow
	bitSize
	bitHop
	bitDSCP
	bitFlag

	knownBits = 1<<10 - 1
)

// Decode sanity bounds: untrusted counts are only trusted up to these
// before the corresponding bytes have actually been read.
const (
	maxBlockBytes = 1 << 26
	maxHopNames   = 1 << 20
	maxHopNameLen = 1 << 20
	// blockEvents is the writer's records-per-block target.
	blockEvents = 4096
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// v2Writer packs events into blocks on the fly. It backs both the
// one-shot Data.WriteV2To and the Recorder's spill mode; after the
// last event, finish seals the trailer. All state is O(1): the block
// buffer tops out around blockEvents packed records and is reused.
type v2Writer struct {
	w       io.Writer
	buf     []byte // packed records of the open block
	scratch []byte // block framing scratch
	n       int    // events in the open block
	total   uint64
	written int64
	err     error

	prevT    int64
	prevKind [256]Event // same-kind field references
}

func newV2Writer(w io.Writer) *v2Writer {
	v := &v2Writer{w: w, buf: make([]byte, 0, 1<<14)}
	v.write(magicV2[:])
	return v
}

func (v *v2Writer) write(p []byte) {
	if v.err != nil {
		return
	}
	n, err := v.w.Write(p)
	v.written += int64(n)
	v.err = err
}

// add packs one event into the open block, flushing a full block.
func (v *v2Writer) add(e Event) {
	if v.err != nil {
		return
	}
	ref := &v.prevKind[e.Kind]
	var bits uint64
	if int64(e.T) != v.prevT {
		bits |= bitT
	}
	if e.PktID != ref.PktID {
		bits |= bitPkt
	}
	if e.Delay != ref.Delay {
		bits |= bitDelay
	}
	if e.QLen != ref.QLen {
		bits |= bitQLen
	}
	if e.FrameSeq != ref.FrameSeq {
		bits |= bitFrame
	}
	if e.Flow != ref.Flow {
		bits |= bitFlow
	}
	if e.Size != ref.Size {
		bits |= bitSize
	}
	if e.Hop != ref.Hop {
		bits |= bitHop
	}
	if e.DSCP != ref.DSCP {
		bits |= bitDSCP
	}
	if e.Flag != ref.Flag {
		bits |= bitFlag
	}
	b := append(v.buf, byte(e.Kind))
	b = binary.AppendUvarint(b, bits)
	if bits&bitT != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.T)-v.prevT))
	}
	if bits&bitPkt != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.PktID-ref.PktID)))
	}
	if bits&bitDelay != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Delay)-int64(ref.Delay)))
	}
	if bits&bitQLen != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.QLen)-int64(ref.QLen)))
	}
	if bits&bitFrame != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.FrameSeq)-int64(ref.FrameSeq)))
	}
	if bits&bitFlow != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Flow)-int64(ref.Flow)))
	}
	if bits&bitSize != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Size)-int64(ref.Size)))
	}
	if bits&bitHop != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Hop)-int64(ref.Hop)))
	}
	if bits&bitDSCP != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.DSCP)-int64(ref.DSCP)))
	}
	if bits&bitFlag != 0 {
		b = binary.AppendUvarint(b, zigzag(int64(e.Flag)-int64(ref.Flag)))
	}
	v.buf = b
	v.prevT = int64(e.T)
	*ref = e
	v.n++
	v.total++
	if v.n >= blockEvents {
		v.flushBlock()
	}
}

// flushBlock frames and writes the open block.
func (v *v2Writer) flushBlock() {
	if v.n == 0 {
		return
	}
	v.scratch = v.scratch[:0]
	v.scratch = binary.AppendUvarint(v.scratch, uint64(v.n))
	v.scratch = binary.AppendUvarint(v.scratch, uint64(len(v.buf)))
	v.write(v.scratch)
	v.write(v.buf)
	v.buf = v.buf[:0]
	v.n = 0
}

// finish flushes the open block and seals the trailer.
func (v *v2Writer) finish(hops []string, seen uint64) (int64, error) {
	v.flushBlock()
	v.scratch = v.scratch[:0]
	v.scratch = binary.AppendUvarint(v.scratch, 0) // trailer marker
	v.scratch = binary.AppendUvarint(v.scratch, uint64(len(hops)))
	v.write(v.scratch)
	for _, h := range hops {
		v.scratch = binary.AppendUvarint(v.scratch[:0], uint64(len(h)))
		v.write(v.scratch)
		v.write([]byte(h))
	}
	v.scratch = binary.AppendUvarint(v.scratch[:0], seen)
	v.scratch = binary.AppendUvarint(v.scratch, v.total)
	v.write(v.scratch)
	return v.written, v.err
}

// WriteV2To emits the binary v2 encoding. Read accepts either format
// transparently; pick v2 when the trace is big enough that bytes per
// event matter (it is ~5× denser than JSONL) and JSONL when a human
// or a line-oriented tool needs to look inside.
func (d *Data) WriteV2To(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	v := newV2Writer(bw)
	for _, e := range d.Events {
		v.add(e)
	}
	n, err := v.finish(d.Hops, d.Seen)
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// streamV2 decodes a v2 stream, feeding each event to fn in order.
// The hop table and totals arrive only with the trailer, so they are
// returned rather than available up front; fn must not need them.
func streamV2(br *bufio.Reader, fn func(Event) error) (hops []string, seen, total uint64, err error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != magicV2 {
		return nil, 0, 0, fmt.Errorf("ptrace: not a v2 trace (bad magic)")
	}
	var (
		prevT    int64
		prevKind [256]Event
		payload  []byte
		decoded  uint64
	)
	for {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trace (block header): %w", err)
		}
		if count == 0 {
			break // trailer follows
		}
		byteLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trace (block length): %w", err)
		}
		if byteLen > maxBlockBytes || count > byteLen {
			return nil, 0, 0, fmt.Errorf("ptrace: corrupt v2 block (%d events in %d bytes)", count, byteLen)
		}
		if uint64(cap(payload)) < byteLen {
			payload = make([]byte, byteLen)
		}
		payload = payload[:byteLen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 block: %w", err)
		}
		c := fieldCursor{p: payload, ok: true}
		for i := uint64(0); i < count; i++ {
			if len(c.p) == 0 {
				return nil, 0, 0, fmt.Errorf("ptrace: v2 block underruns its payload")
			}
			kind := c.p[0]
			c.p = c.p[1:]
			bits, n := binary.Uvarint(c.p)
			if n <= 0 || bits&^uint64(knownBits) != 0 {
				return nil, 0, 0, fmt.Errorf("ptrace: corrupt v2 record bitmap")
			}
			c.p = c.p[n:]
			// An absent field decodes as a zero delta, so every field is
			// uniformly reference + delta.
			ref := &prevKind[kind]
			e := Event{
				Kind:     Kind(kind),
				T:        units.Time(prevT + c.take(bits, bitT)),
				PktID:    ref.PktID + uint64(c.take(bits, bitPkt)),
				Delay:    ref.Delay + units.Time(c.take(bits, bitDelay)),
				QLen:     ref.QLen + int32(c.take(bits, bitQLen)),
				FrameSeq: ref.FrameSeq + int32(c.take(bits, bitFrame)),
				Flow:     packet.FlowID(int64(ref.Flow) + c.take(bits, bitFlow)),
				Size:     ref.Size + int32(c.take(bits, bitSize)),
				Hop:      HopID(int64(ref.Hop) + c.take(bits, bitHop)),
				DSCP:     packet.DSCP(int64(ref.DSCP) + c.take(bits, bitDSCP)),
				Flag:     uint8(int64(ref.Flag) + c.take(bits, bitFlag)),
			}
			if !c.ok {
				return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 record")
			}
			prevT = int64(e.T)
			*ref = e
			decoded++
			if err := fn(e); err != nil {
				return nil, 0, 0, err
			}
		}
		if len(c.p) != 0 {
			return nil, 0, 0, fmt.Errorf("ptrace: v2 block has %d trailing payload bytes", len(c.p))
		}
	}
	nHops, err := binary.ReadUvarint(br)
	if err != nil || nHops > maxHopNames {
		return nil, 0, 0, fmt.Errorf("ptrace: corrupt v2 trailer (hop count)")
	}
	hops = make([]string, 0, min(nHops, 256))
	name := make([]byte, 0, 64)
	for i := uint64(0); i < nHops; i++ {
		ln, err := binary.ReadUvarint(br)
		if err != nil || ln > maxHopNameLen {
			return nil, 0, 0, fmt.Errorf("ptrace: corrupt v2 trailer (hop name length)")
		}
		if uint64(cap(name)) < ln {
			name = make([]byte, ln)
		}
		name = name[:ln]
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trailer (hop names): %w", err)
		}
		hops = append(hops, string(name))
	}
	if seen, err = binary.ReadUvarint(br); err != nil {
		return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trailer (seen): %w", err)
	}
	if total, err = binary.ReadUvarint(br); err != nil {
		return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trailer (event count): %w", err)
	}
	if total != decoded {
		return nil, 0, 0, fmt.Errorf("ptrace: truncated v2 trace: trailer promises %d events, decoded %d", total, decoded)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, 0, 0, fmt.Errorf("ptrace: trailing data after v2 trailer")
	}
	return hops, seen, total, nil
}

// fieldCursor walks a block payload's varint fields, latching the
// first truncation instead of erroring at every call site.
type fieldCursor struct {
	p  []byte
	ok bool
}

// take consumes the zigzag-varint delta for the field named by `on`
// when the bitmap includes it; an absent field is a zero delta.
func (c *fieldCursor) take(bits, on uint64) int64 {
	if bits&on == 0 || !c.ok {
		return 0
	}
	u, n := binary.Uvarint(c.p)
	if n <= 0 {
		c.ok = false
		return 0
	}
	c.p = c.p[n:]
	return unzigzag(u)
}
