package ptrace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/units"
)

type fakeClock struct{ t units.Time }

func (c *fakeClock) Now() units.Time { return c.t }

func TestRecorderRingBounds(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8})
	clk := &fakeClock{}
	r.SetClock(clk)
	for i := 0; i < 20; i++ {
		clk.t = units.Time(i)
		r.Emit(Event{PktID: uint64(i)})
	}
	if r.Seen() != 20 {
		t.Fatalf("seen %d, want 20", r.Seen())
	}
	if r.Retained() != 8 {
		t.Fatalf("retained %d, want 8", r.Retained())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint64(12 + i); e.PktID != want {
			t.Errorf("event %d id %d, want %d (last-8 window)", i, e.PktID, want)
		}
	}
	if r.Overwritten() != 12 {
		t.Errorf("overwritten %d, want 12", r.Overwritten())
	}
}

func TestRecorderHeadTail(t *testing.T) {
	r := NewRecorder(Config{Capacity: 8, Head: 3})
	for i := 0; i < 20; i++ {
		r.Emit(Event{PktID: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d, want 8", len(evs))
	}
	// First 3 pinned, last 5 ringed.
	for i := 0; i < 3; i++ {
		if evs[i].PktID != uint64(i) {
			t.Errorf("head %d id %d, want %d", i, evs[i].PktID, i)
		}
	}
	for i := 0; i < 5; i++ {
		if want := uint64(15 + i); evs[3+i].PktID != want {
			t.Errorf("tail %d id %d, want %d", i, evs[3+i].PktID, want)
		}
	}
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(Config{Capacity: 1000, Sample: 10})
	for i := 0; i < 1000; i++ {
		r.Emit(Event{PktID: uint64(i)})
	}
	if got := r.Retained(); got != 100 {
		t.Fatalf("retained %d with 1-in-10 sampling, want 100", got)
	}
}

// TestRecorderSamplingPerKind pins the per-kind stride: a stream that
// strictly alternates two kinds under Sample=2 must retain half of
// EACH kind, not all of one and none of the other.
func TestRecorderSamplingPerKind(t *testing.T) {
	r := NewRecorder(Config{Capacity: 1000, Sample: 2})
	for i := 0; i < 400; i++ {
		k := PolicerPass
		if i%2 == 1 {
			k = Deliver
		}
		r.Emit(Event{Kind: k})
	}
	got := map[Kind]int{}
	for _, e := range r.Events() {
		got[e.Kind]++
	}
	if got[PolicerPass] != 100 || got[Deliver] != 100 {
		t.Fatalf("per-kind sampling broken: pass=%d deliver=%d, want 100 each",
			got[PolicerPass], got[Deliver])
	}
}

func TestRecorderKindAndFlowFilters(t *testing.T) {
	r := NewRecorder(Config{
		Capacity: 100,
		Kinds:    KindMask(PolicerDrop, Deliver),
		Flows:    []packet.FlowID{1},
	})
	r.Emit(Event{Kind: PolicerDrop, Flow: 1})  // kept
	r.Emit(Event{Kind: LinkEnqueue, Flow: 1})  // kind filtered
	r.Emit(Event{Kind: PolicerDrop, Flow: 99}) // flow filtered
	r.Emit(Event{Kind: Deliver, Flow: 1})      // kept
	if r.Seen() != 4 {
		t.Errorf("seen %d, want 4 (filters still count emissions)", r.Seen())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Kind != PolicerDrop || evs[1].Kind != Deliver {
		t.Fatalf("retained %+v, want the two flow-1 masked kinds", evs)
	}
}

func TestRecorderHopInterning(t *testing.T) {
	r := NewRecorder(Config{Capacity: 4})
	a, b2 := r.Hop("alpha"), r.Hop("beta")
	if a == b2 {
		t.Fatal("distinct names share an id")
	}
	if r.Hop("alpha") != a {
		t.Fatal("re-interning changed the id")
	}
	if r.HopName(a) != "alpha" || r.HopName(b2) != "beta" {
		t.Fatalf("name table broken: %q %q", r.HopName(a), r.HopName(b2))
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	r := NewRecorder(Config{Capacity: 1024})
	clk := &fakeClock{}
	r.SetClock(clk)
	var tap Tap = r // through the interface, as hook sites use it
	allocs := testing.AllocsPerRun(2000, func() {
		clk.t++
		tap.Emit(Event{Kind: LinkEnqueue, PktID: 7, Size: 1500, QLen: 3})
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.2f/op, want 0", allocs)
	}
}

// randomEvent draws an event with every field exercised, including
// negative FrameSeq and large ids.
func randomEvent(rng *rand.Rand) Event {
	return Event{
		T:        units.Time(rng.Int63n(1e12)),
		Delay:    units.Time(rng.Int63n(1e9)),
		PktID:    rng.Uint64(),
		Flow:     packet.FlowID(rng.Uint32()),
		Size:     int32(rng.Intn(65536)),
		QLen:     int32(rng.Intn(1000)),
		FrameSeq: int32(rng.Intn(5000) - 1),
		Hop:      HopID(rng.Intn(4)),
		Kind:     Kind(rng.Intn(int(numKinds))),
		DSCP:     packet.DSCP(rng.Intn(64)),
		Flag:     uint8(rng.Intn(3)),
	}
}

// TestEncodeDecodeRoundTrip is the property test for the trace
// format: any capture survives WriteTo → Read bit-exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		d := &Data{
			Hops: []string{"campus", "jit", "border", "hop0"},
			Seen: rng.Uint64() % 1e9,
		}
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			d.Events = append(d.Events, randomEvent(rng))
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if got.Seen != d.Seen || !reflect.DeepEqual(got.Hops, d.Hops) {
			t.Fatalf("trial %d: header mismatch: %+v vs %+v", trial, got, d)
		}
		if len(got.Events) != len(d.Events) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got.Events), len(d.Events))
		}
		for i := range d.Events {
			if got.Events[i] != d.Events[i] {
				t.Fatalf("trial %d event %d: %+v != %+v", trial, i, got.Events[i], d.Events[i])
			}
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"not ptrace":  `{"format":"other","version":1}` + "\n",
		"bad version": `{"format":"ptrace","version":99}` + "\n",
		"short line":  `{"format":"ptrace","version":1,"hops":[]}` + "\n[1,2,3]\n",
	}
	for name, in := range cases {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: Read accepted bad input", name)
		}
	}
}

func TestAnalyzeAndAttribute(t *testing.T) {
	d := &Data{Hops: []string{"policer", "bottleneck", "client"}, Seen: 9}
	ms := func(n int64) units.Time { return units.Time(n) * units.Millisecond }
	d.Events = []Event{
		{T: ms(1), Kind: PolicerPass, Hop: 0, Flow: 1, PktID: 1, FrameSeq: 0},
		{T: ms(1), Kind: LinkEnqueue, Hop: 1, Flow: 1, PktID: 1, FrameSeq: 0, QLen: 2},
		{T: ms(2), Kind: LinkTx, Hop: 1, Flow: 1, PktID: 1, FrameSeq: 0, Delay: ms(1)},
		{T: ms(3), Kind: Deliver, Hop: 2, Flow: 1, PktID: 1, FrameSeq: 0, Delay: ms(2)},
		{T: ms(4), Kind: PolicerDrop, Hop: 0, Flow: 1, PktID: 2, FrameSeq: 1},
		{T: ms(5), Kind: PolicerDrop, Hop: 0, Flow: 1, PktID: 3, FrameSeq: 1},
		{T: ms(6), Kind: QueueDrop, Hop: 1, Flow: 1, PktID: 4, FrameSeq: 2},
		{T: ms(7), Kind: PolicerPass, Hop: 0, Flow: 1, PktID: 5, FrameSeq: 3},
		{T: ms(8), Kind: Deliver, Hop: 2, Flow: 1, PktID: 5, FrameSeq: 3, Delay: ms(4)},
	}
	s := Analyze(d, units.Second)
	if len(s.Hops) != 3 {
		t.Fatalf("hops %d, want 3", len(s.Hops))
	}
	pol := s.Hops[0]
	if pol.Counts[PolicerPass] != 2 || pol.Counts[PolicerDrop] != 2 || pol.Drops != 2 {
		t.Errorf("policer stats wrong: %+v", pol)
	}
	if s.Hops[1].MaxQLen != 2 || s.Hops[1].Residence.N != 1 {
		t.Errorf("bottleneck stats wrong: %+v", s.Hops[1])
	}
	if len(s.Flows) != 1 || s.Flows[0].Delivered != 2 || s.Flows[0].Drops != 3 {
		t.Fatalf("flow stats wrong: %+v", s.Flows)
	}
	if len(s.Timeline) != 1 || s.Timeline[0].Pass != 2 || s.Timeline[0].Drops != 2 {
		t.Errorf("timeline wrong: %+v", s.Timeline)
	}
	out := s.Format()
	if out == "" {
		t.Error("empty summary")
	}

	// Frames 0 and 3 arrived; 1 (policer) and 2 (bottleneck) were lost.
	ft := &trace.Trace{ClipFrames: 4}
	ft.Add(trace.FrameRecord{Seq: 0})
	ft.Add(trace.FrameRecord{Seq: 3})
	a := AttributeFrameLoss(d, ft)
	if a.LostFrames != 2 || len(a.Attributed) != 2 || a.Unattributed != 0 {
		t.Fatalf("attribution wrong: %+v", a)
	}
	if a.Attributed[0].Hop != "policer" || a.Attributed[0].Frags != 2 {
		t.Errorf("frame 1 attribution wrong: %+v", a.Attributed[0])
	}
	if a.Attributed[1].Hop != "bottleneck" {
		t.Errorf("frame 2 attribution wrong: %+v", a.Attributed[1])
	}
	if a.ByHop["policer"] != 1 || a.ByHop["bottleneck"] != 1 {
		t.Errorf("by-hop counts wrong: %+v", a.ByHop)
	}
	if a.Format(10) == "" {
		t.Error("empty attribution format")
	}
}
