package ptrace_test

import (
	"bytes"
	"testing"

	"repro/internal/ptrace"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/video"
)

// tandemSeed captures a real tandem run's trace — a representative
// corpus entry with every verdict kind, multiple hops, and both video
// and cross-traffic flows.
func tandemSeed() []byte {
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 2048, Head: 256, Sample: 4})
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	td := topology.BuildTandem(topology.TandemConfig{
		Seed: 1, Enc: enc, TokenRate: 1.1e6, Depth: 3000,
		SecondBorder: true, Trace: rec,
	})
	td.Run()
	var buf bytes.Buffer
	if _, err := rec.Data().WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzJSONLRoundTrip guards the versioned JSONL trace encoding ahead
// of the planned binary v2: any input Read accepts must re-encode to
// a byte-stable form that decodes to the same Data — the property
// dstrace and the trace-diffing roadmap item rely on.
func FuzzJSONLRoundTrip(f *testing.F) {
	f.Add(tandemSeed())
	// Minimal header-only capture.
	f.Add([]byte(`{"format":"ptrace","version":1,"seen":0,"events":0,"hops":[]}` + "\n"))
	// Hand-built capture exercising negative, zero and extreme values,
	// blank lines, and an out-of-range hop id.
	f.Add([]byte(`{"format":"ptrace","version":1,"seen":12,"events":3,"hops":["a","b c","d\ne"]}
[0,0,0,0,0,0,0,0,0,-1,0]

[9223372036854775807,14,255,65535,4294967295,18446744073709551615,2147483647,46,-1,-2147483648,-9223372036854775808]
[-5,1,2,9,900,1,1500,10,3,7,250000]
`))

	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := ptrace.Read(bytes.NewReader(in))
		if err != nil {
			return // malformed inputs may be rejected, never crash
		}
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo after successful Read: %v", err)
		}
		d2, err := ptrace.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of own encoding: %v\nencoding:\n%s", err, buf.Bytes())
		}
		if !dataEqual(d, d2) {
			t.Fatalf("round trip changed the capture:\nfirst  %+v\nsecond %+v", d, d2)
		}
		var buf2 bytes.Buffer
		if _, err := d2.WriteTo(&buf2); err != nil {
			t.Fatalf("second WriteTo: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding is not byte-stable")
		}
		// HopName must stay total on whatever ids the events carry.
		for _, e := range d2.Events {
			_ = d2.HopName(e.Hop)
		}
	})
}

// dataEqual compares captures up to nil-vs-empty slice differences
// (an empty capture decodes with non-nil zero-length slices).
func dataEqual(a, b *ptrace.Data) bool {
	if a.Seen != b.Seen || len(a.Hops) != len(b.Hops) || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}

// TestFuzzSeedTimesAreSane sanity-checks the generated corpus entry:
// the tandem capture must hold monotone timestamps (the property the
// analyzer's timeline logic leans on) and resolve every hop name.
func TestFuzzSeedTimesAreSane(t *testing.T) {
	d, err := ptrace.Read(bytes.NewReader(tandemSeed()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) == 0 {
		t.Fatal("tandem seed capture is empty")
	}
	var last units.Time
	for i, e := range d.Events {
		if e.T < last {
			t.Fatalf("event %d goes back in time: %v after %v", i, e.T, last)
		}
		last = e.T
		if d.HopName(e.Hop) == "" {
			t.Fatalf("event %d has unresolvable hop %d", i, e.Hop)
		}
	}
}
