package ptrace

import (
	"bytes"
	"testing"

	"repro/internal/units"
)

// TestCanonicalizePacketIDs pins the relabeling contract: two captures
// whose events are identical except for the absolute packet-id values
// (different counter offsets, different interleaving of id allocation)
// encode to the same bytes after canonicalization.
func TestCanonicalizePacketIDs(t *testing.T) {
	mk := func(ids []uint64) *Data {
		d := &Data{Hops: []string{"", "hub"}}
		for i, id := range ids {
			d.Events = append(d.Events, Event{
				T: units.Time(i) * units.Millisecond, Kind: LinkDeliver,
				Hop: 1, Flow: 7, PktID: id, Size: 1200,
			})
		}
		return d
	}

	// Same packet identity structure — a, b, a, c, b — under two
	// unrelated absolute labelings, plus a zero (no-packet) event.
	a := mk([]uint64{901, 44, 901, 7000, 44, 0})
	b := mk([]uint64{12, 350, 12, 13, 350, 0})
	CanonicalizePacketIDs(a)
	CanonicalizePacketIDs(b)

	want := []uint64{1, 2, 1, 3, 2, 0}
	for i, ev := range a.Events {
		if ev.PktID != want[i] {
			t.Errorf("event %d: canonical id %d, want %d", i, ev.PktID, want[i])
		}
	}

	var ba, bb bytes.Buffer
	if _, err := a.WriteTo(&ba); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteTo(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("canonicalized captures are not byte-identical")
	}

	// Structurally different labelings must stay distinguishable.
	c := mk([]uint64{5, 5, 6, 7, 8, 0}) // a, a, b, c, d
	CanonicalizePacketIDs(c)
	var bc bytes.Buffer
	if _, err := c.WriteTo(&bc); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bc.Bytes()) {
		t.Error("different packet-identity structures canonicalized to equal bytes")
	}
}

// TestCanonicalizeV2FixedPoint composes canonicalization with the
// binary encoding: canonicalize → encode v2 → decode → canonicalize
// must be a fixed point, so golden comparisons can route traces
// through either format without the relabeling drifting.
func TestCanonicalizeV2FixedPoint(t *testing.T) {
	d := &Data{Hops: []string{"", "hub", "edge"}, Seen: 17}
	ids := []uint64{901, 44, 901, 7000, 44, 0, 7000, 12345}
	for i, id := range ids {
		d.Events = append(d.Events, Event{
			T: units.Time(i) * units.Millisecond, Kind: Kind(i % int(numKinds)),
			Hop: HopID(i % 3), Flow: 7, PktID: id, Size: 1200,
		})
	}
	CanonicalizePacketIDs(d)
	first := append([]Event(nil), d.Events...)

	var enc bytes.Buffer
	if _, err := d.WriteV2To(&enc); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	CanonicalizePacketIDs(got)
	if len(got.Events) != len(first) {
		t.Fatalf("event count changed: %d -> %d", len(first), len(got.Events))
	}
	for i := range first {
		if got.Events[i] != first[i] {
			t.Fatalf("event %d drifted through canonicalize∘v2:\nbefore %+v\nafter  %+v",
				i, first[i], got.Events[i])
		}
	}
	var enc2 bytes.Buffer
	if _, err := got.WriteV2To(&enc2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Bytes(), enc2.Bytes()) {
		t.Error("canonicalized v2 encodings are not byte-identical")
	}
}
