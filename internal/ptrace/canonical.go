package ptrace

// CanonicalizePacketIDs relabels a capture's packet ids densely
// (1, 2, 3, …) in order of first appearance, in place.
//
// Absolute packet ids are process-global atomic counters (see
// traffic.NewPacketID and the server package's counter), so two runs
// of the same simulation in one process — or the shards of one
// sharded run racing on the counters — produce different absolute ids
// for the same packets. Everything else about a trace is a pure
// function of the simulation, so canonicalizing the ids is exactly
// what makes two equivalent captures byte-comparable: after
// relabeling, serial and sharded runs of the same experiment encode
// to identical .ptrace bytes (the shardeq harness pins this). Id 0
// (events that carry no packet) is preserved.
func CanonicalizePacketIDs(d *Data) {
	ids := make(map[uint64]uint64, len(d.Events))
	var next uint64
	for i := range d.Events {
		old := d.Events[i].PktID
		if old == 0 {
			continue
		}
		id, ok := ids[old]
		if !ok {
			next++
			id = next
			ids[old] = id
		}
		d.Events[i].PktID = id
	}
}
