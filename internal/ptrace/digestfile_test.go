package ptrace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/units"
)

// digestFixture builds a small deterministic summary through the same
// Digester the analysis paths use.
func digestFixture() *Summary {
	g := NewDigester(units.Second)
	for i := 0; i < 50; i++ {
		g.Add(Event{T: units.Time(i) * units.Millisecond, Kind: LinkEnqueue, Hop: 0,
			Flow: 1, QLen: int32(i % 7)})
		g.Add(Event{T: units.Time(i) * units.Millisecond, Kind: LinkTx, Hop: 0,
			Flow: 1, Delay: units.Time(100+i) * units.Microsecond})
		g.Add(Event{T: units.Time(i) * units.Millisecond, Kind: Deliver, Hop: 1,
			Flow: 1, Delay: units.Time(900+i) * units.Microsecond})
		if i%5 == 0 {
			g.Add(Event{T: units.Time(i) * units.Millisecond, Kind: PolicerDrop, Hop: 2, Flow: 1})
		}
	}
	return g.Summarize([]string{"hop0", "client", "policer"}, 200)
}

func TestDigestFileRoundTrip(t *testing.T) {
	s := digestFixture()
	var buf bytes.Buffer
	if err := WriteSummary(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSummary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Errorf("round trip diverged:\nwrote %+v\nread  %+v", s, got)
	}
	if d := CompareSummaries(s, got, Thresholds{}); d.Breaches != 0 || !d.Clean() {
		t.Errorf("round-tripped digest not clean under zero thresholds: %d breaches", d.Breaches)
	}
	// Deterministic serialization: writing the read-back summary must
	// reproduce the bytes, so golden .digest files can be byte-compared.
	var buf2 bytes.Buffer
	if err := WriteSummary(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("serialization not deterministic")
	}
}

func TestReadSummaryRejectsForeignFiles(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"garbage", "not json", "not a digest file"},
		{"wrong format", `{"format":"something-else","version":1}`, "not a digest file"},
		{"future version", `{"format":"ptrace-digest","version":99,"kinds":1}`, "version 99"},
		{"kind table mismatch", `{"format":"ptrace-digest","version":1,"kinds":1}`, "event kinds"},
		{"no summary", `{"format":"ptrace-digest","version":1,"kinds":` + itoa(int(numKinds)) + `}`, "no summary"},
	}
	for _, c := range cases {
		_, err := ReadSummary(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.want)
		}
	}
}

func itoa(n int) string {
	var b [8]byte
	i := len(b)
	for {
		i--
		b[i] = byte('0' + n%10)
		if n /= 10; n == 0 {
			return string(b[i:])
		}
	}
}
