package ptrace

// Behavioral regression diffing. Two runs of the "same" experiment —
// before and after a scheduler, policer or batching change — can agree
// on every figure yet behave differently underneath: drops moving
// from one hop to another, residence percentiles fattening, verdicts
// shifting from pass to demote. CompareSummaries joins two trace
// digests into a per-hop/per-flow delta table with configurable
// relative thresholds, and dstrace -compare turns a breach into a
// non-zero exit — a behavioral regression gate for CI, beside the
// figure-diff gate the golden tests already provide.

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/units"
)

// Thresholds configures when a delta counts as a breach. The zero
// value is the strictest gate: any difference breaches — which is
// exactly what comparing a run against itself (or a supposedly
// equivalent refactor) wants.
type Thresholds struct {
	// Rel is the relative tolerance: a field breaches when
	// |b-a| > Rel × max(|a|, 1). Zero means exact.
	Rel float64
	// AbsTime is an absolute noise floor for delay fields: a delay
	// delta within AbsTime never breaches, whatever its relative size.
	// Keeps nanosecond jitter on microsecond percentiles from tripping
	// a relative gate.
	AbsTime units.Time
}

// FieldDelta is one compared metric of a hop or flow.
type FieldDelta struct {
	Field  string
	A, B   float64
	IsTime bool // values are units.Time nanoseconds (rendered as ms)
	Breach bool
}

// EntityDelta is one hop's or flow's differing fields. Entities whose
// fields all match are counted but not listed.
type EntityDelta struct {
	Name   string
	Only   string // "a" or "b" when the entity exists in one run only
	Fields []FieldDelta
	Breach bool
}

// Diff is the join of two trace summaries.
type Diff struct {
	Hops, Flows   []EntityDelta // entities with ≥ 1 differing field
	HopsCompared  int
	FlowsCompared int
	// Breaches counts threshold-breaching fields, plus one per entity
	// present in only one run.
	Breaches   int
	Thresholds Thresholds
}

func (t Thresholds) countBreach(a, b float64) bool {
	return math.Abs(b-a) > t.Rel*math.Max(math.Abs(a), 1)
}

func (t Thresholds) timeBreach(a, b float64) bool {
	d := math.Abs(b - a)
	return d > float64(t.AbsTime) && d > t.Rel*math.Max(math.Abs(a), 1)
}

// delta records one field pair, marking breaches per the thresholds.
func (t Thresholds) delta(out []FieldDelta, field string, a, b float64, isTime bool) []FieldDelta {
	if a == b {
		return out
	}
	breach := t.countBreach(a, b)
	if isTime {
		breach = t.timeBreach(a, b)
	}
	return append(out, FieldDelta{Field: field, A: a, B: b, IsTime: isTime, Breach: breach})
}

func (t Thresholds) hopDelta(a, b *HopStats) []FieldDelta {
	var out []FieldDelta
	out = t.delta(out, "enqueue", float64(a.Counts[LinkEnqueue]), float64(b.Counts[LinkEnqueue]), false)
	out = t.delta(out, "tx", float64(a.Counts[LinkTx]), float64(b.Counts[LinkTx]), false)
	out = t.delta(out, "deliver", float64(a.Counts[LinkDeliver]+a.Counts[Deliver]),
		float64(b.Counts[LinkDeliver]+b.Counts[Deliver]), false)
	out = t.delta(out, "drops", float64(a.Drops), float64(b.Drops), false)
	out = t.delta(out, "pass", float64(a.Counts[PolicerPass]+a.Counts[ShaperRelease]),
		float64(b.Counts[PolicerPass]+b.Counts[ShaperRelease]), false)
	out = t.delta(out, "demote", float64(a.Counts[PolicerDemote]), float64(b.Counts[PolicerDemote]), false)
	out = t.delta(out, "maxQ", float64(a.MaxQLen), float64(b.MaxQLen), false)
	out = t.delta(out, "res-p50", float64(a.Residence.P50), float64(b.Residence.P50), true)
	out = t.delta(out, "res-p99", float64(a.Residence.P99), float64(b.Residence.P99), true)
	return out
}

func (t Thresholds) flowDelta(a, b *FlowStats) []FieldDelta {
	var out []FieldDelta
	out = t.delta(out, "delivered", float64(a.Delivered), float64(b.Delivered), false)
	out = t.delta(out, "drops", float64(a.Drops), float64(b.Drops), false)
	out = t.delta(out, "oneway-p50", float64(a.OneWay.P50), float64(b.OneWay.P50), true)
	out = t.delta(out, "oneway-p99", float64(a.OneWay.P99), float64(b.OneWay.P99), true)
	out = t.delta(out, "oneway-max", float64(a.OneWay.Max), float64(b.OneWay.Max), true)
	return out
}

// CompareSummaries joins two digests entity by entity: hops by name,
// flows by id. An entity present in only one run is always a breach —
// a hop appearing or vanishing is the loudest behavioral diff there
// is.
func CompareSummaries(a, b *Summary, th Thresholds) *Diff {
	d := &Diff{Thresholds: th}

	ah := map[string]*HopStats{}
	for i := range a.Hops {
		ah[a.Hops[i].Name] = &a.Hops[i]
	}
	seen := map[string]bool{}
	for i := range b.Hops {
		name := b.Hops[i].Name
		seen[name] = true
		d.HopsCompared++
		if ha := ah[name]; ha != nil {
			fields := th.hopDelta(ha, &b.Hops[i])
			d.addEntity(&d.Hops, EntityDelta{Name: name, Fields: fields})
		} else {
			d.addEntity(&d.Hops, EntityDelta{Name: name, Only: "b", Breach: true})
		}
	}
	for i := range a.Hops {
		if !seen[a.Hops[i].Name] {
			d.HopsCompared++
			d.addEntity(&d.Hops, EntityDelta{Name: a.Hops[i].Name, Only: "a", Breach: true})
		}
	}

	af := map[string]*FlowStats{}
	for i := range a.Flows {
		af[fmt.Sprint(a.Flows[i].Flow)] = &a.Flows[i]
	}
	fseen := map[string]bool{}
	for i := range b.Flows {
		name := fmt.Sprint(b.Flows[i].Flow)
		fseen[name] = true
		d.FlowsCompared++
		if fa := af[name]; fa != nil {
			fields := th.flowDelta(fa, &b.Flows[i])
			d.addEntity(&d.Flows, EntityDelta{Name: "flow " + name, Fields: fields})
		} else {
			d.addEntity(&d.Flows, EntityDelta{Name: "flow " + name, Only: "b", Breach: true})
		}
	}
	for i := range a.Flows {
		name := fmt.Sprint(a.Flows[i].Flow)
		if !fseen[name] {
			d.FlowsCompared++
			d.addEntity(&d.Flows, EntityDelta{Name: "flow " + name, Only: "a", Breach: true})
		}
	}
	return d
}

// addEntity files an entity under the diff when it differs at all,
// folding its breach count into the total.
func (d *Diff) addEntity(list *[]EntityDelta, e EntityDelta) {
	if e.Only != "" {
		d.Breaches++
		*list = append(*list, e)
		return
	}
	if len(e.Fields) == 0 {
		return
	}
	for _, f := range e.Fields {
		if f.Breach {
			e.Breach = true
			d.Breaches++
		}
	}
	*list = append(*list, e)
}

// Clean reports whether the two runs matched exactly — no differing
// entity anywhere, breach thresholds aside.
func (d *Diff) Clean() bool { return len(d.Hops) == 0 && len(d.Flows) == 0 }

// Format renders the delta table. maxRows bounds the listed entities
// per section (breaching entities are listed first; <= 0 lists all).
func (d *Diff) Format(maxRows int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "compared: %d hops, %d flows (rel tol %.3g, abs floor %.3g ms)\n",
		d.HopsCompared, d.FlowsCompared, d.Thresholds.Rel,
		float64(d.Thresholds.AbsTime)/float64(units.Millisecond))
	if d.Clean() {
		b.WriteString("no behavioral deltas: the runs are identical under this digest\n")
		return b.String()
	}
	d.section(&b, "per-hop deltas", d.Hops, maxRows)
	d.section(&b, "per-flow deltas", d.Flows, maxRows)
	fmt.Fprintf(&b, "\n%d threshold breach(es)\n", d.Breaches)
	return b.String()
}

func (d *Diff) section(b *strings.Builder, title string, list []EntityDelta, maxRows int) {
	if len(list) == 0 {
		return
	}
	// Breaching entities first, stable within each class.
	ordered := make([]EntityDelta, 0, len(list))
	for _, e := range list {
		if e.Breach {
			ordered = append(ordered, e)
		}
	}
	breaching := len(ordered)
	for _, e := range list {
		if !e.Breach {
			ordered = append(ordered, e)
		}
	}
	fmt.Fprintf(b, "\n%s (%d differing, %d breaching):\n", title, len(list), breaching)
	fmt.Fprintf(b, "%-16s %-12s %14s %14s %14s  %s\n", "entity", "field", "a", "b", "delta", "")
	rows := 0
	for _, e := range ordered {
		if maxRows > 0 && rows >= maxRows {
			fmt.Fprintf(b, "  ... %d more entities\n", len(ordered)-rows)
			break
		}
		rows++
		if e.Only != "" {
			fmt.Fprintf(b, "%-16s %-12s %44s  BREACH\n", e.Name, "(presence)",
				"only in "+e.Only)
			continue
		}
		for i, f := range e.Fields {
			name := e.Name
			if i > 0 {
				name = ""
			}
			mark := ""
			if f.Breach {
				mark = "BREACH"
			}
			av, bv := f.A, f.B
			if f.IsTime {
				av /= float64(units.Millisecond)
				bv /= float64(units.Millisecond)
			}
			fmt.Fprintf(b, "%-16s %-12s %14.6g %14.6g %+14.6g  %s\n",
				name, f.Field, av, bv, bv-av, mark)
		}
	}
}
