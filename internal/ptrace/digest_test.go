package ptrace_test

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/units"
)

// TestAnalyzeStreamMatchesAnalyze pins that the streaming path and the
// materialized path are the same digest: identical summaries on the
// real tandem capture, through both encodings.
func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	d := corpusData(t)
	want := ptrace.Analyze(d, units.Second)

	var jl bytes.Buffer
	if _, err := d.WriteTo(&jl); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		enc  []byte
	}{
		{"jsonl", jl.Bytes()},
		{"v2", encodeV2(t, d)},
	} {
		got, info, err := ptrace.AnalyzeStream(bytes.NewReader(tc.enc), units.Second)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if info.Events != uint64(len(d.Events)) || info.Seen != d.Seen || info.Hops != len(d.Hops) {
			t.Errorf("%s: info %+v, want events=%d seen=%d hops=%d",
				tc.name, info, len(d.Events), d.Seen, len(d.Hops))
		}
		if got.Format() != want.Format() {
			t.Errorf("%s: streaming and materialized summaries differ:\n--- stream\n%s\n--- analyze\n%s",
				tc.name, got.Format(), want.Format())
		}
	}
}

// TestDigestQuantileTolerance bounds the P² sketch percentiles against
// exact sort-based order statistics on reference delay distributions —
// the accuracy contract that replaced held-in-RAM exact percentiles.
func TestDigestQuantileTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	dists := []struct {
		name string
		gen  func() float64
		tol  float64 // relative error bound at p50/p90/p99
	}{
		{"uniform", func() float64 { return rng.Float64() * 1e7 }, 0.02},
		{"exponential", func() float64 { return rng.ExpFloat64() * 2e6 }, 0.03},
		// The upper mode holds 25% of the mass so every measured
		// quantile sits inside a mode: P² interpolates across density
		// gaps, so a quantile landing exactly on the inter-mode jump is
		// the sketch's known weak spot and not part of its contract.
		{"bimodal", func() float64 {
			if rng.Intn(4) == 0 {
				return 5e7 + rng.Float64()*1e6 // queue-buildup mode
			}
			return 1e5 + rng.Float64()*1e5
		}, 0.05},
	}
	for _, dist := range dists {
		g := ptrace.NewDigester(units.Second)
		exact := make([]float64, n)
		for i := 0; i < n; i++ {
			// Delay is integer nanoseconds, so the exact reference gets
			// the same truncated value the digest sees.
			v := units.Time(dist.gen())
			exact[i] = float64(v)
			g.Add(ptrace.Event{Kind: ptrace.Deliver, Flow: 1, Delay: v})
		}
		sort.Float64s(exact)
		s := g.Summarize([]string{"src"}, n)
		if len(s.Flows) != 1 {
			t.Fatalf("%s: %d flows, want 1", dist.name, len(s.Flows))
		}
		q := s.Flows[0].OneWay
		for _, p := range []struct {
			p   float64
			got units.Time
		}{{0.50, q.P50}, {0.90, q.P90}, {0.99, q.P99}} {
			want := exact[int(p.p*float64(n))]
			relErr := math.Abs(float64(p.got)-want) / want
			t.Logf("%s p%d: sketch %.0f exact %.0f (rel err %.4f)",
				dist.name, int(p.p*100), float64(p.got), want, relErr)
			if relErr > dist.tol {
				t.Errorf("%s p%d: sketch %.0f vs exact %.0f, rel err %.4f > %.3f",
					dist.name, int(p.p*100), float64(p.got), want, relErr, dist.tol)
			}
		}
		if got, want := float64(q.Max), math.Round(exact[n-1]); got != want {
			t.Errorf("%s: max %f, want exact %f", dist.name, got, want)
		}
		if q.N != n {
			t.Errorf("%s: N %d, want %d", dist.name, q.N, n)
		}
	}
}

// fleetTrace streams a synthetic fleet-scale v2 trace — flows flows,
// events total events round-robined across them over hops hops —
// straight into w without ever materializing an event slice.
func fleetTrace(w *bytes.Buffer, flows, events, hops int) error {
	rec := ptrace.NewRecorder(ptrace.Config{Capacity: 1}) // ring stays tiny; spill carries the trace
	rec.SpillTo(w)
	names := make([]ptrace.HopID, hops)
	for i := range names {
		names[i] = rec.Hop("hop" + string(rune('a'+i)))
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < events; i++ {
		flow := packet.FlowID(i%flows + 1)
		hop := names[i%hops]
		kind := ptrace.Deliver
		if i%13 == 0 {
			kind = ptrace.QueueDrop
		}
		rec.Emit(ptrace.Event{
			T: units.Time(i) * units.Microsecond, Kind: kind, Hop: hop, Flow: flow,
			PktID: uint64(i), Size: 1200, Delay: units.Time(rng.Intn(1e7)),
		})
	}
	return rec.FinishSpill()
}

// TestDigestMemoryBoundedByState pins the tentpole memory guarantee:
// digesting a fleet-scale trace (100k flows) costs memory proportional
// to the per-hop/per-flow state, not the trace length — tripling the
// event count over the same flows must not grow the digester's heap.
func TestDigestMemoryBoundedByState(t *testing.T) {
	const flows = 100000
	heapCost := func(events int) uint64 {
		var trace bytes.Buffer
		if err := fleetTrace(&trace, flows, events, 4); err != nil {
			t.Fatal(err)
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		s, info, err := ptrace.AnalyzeStream(bytes.NewReader(trace.Bytes()), units.Second)
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		if info.Events != uint64(events) || len(s.Flows) != flows {
			t.Fatalf("digested %d events / %d flows, want %d / %d",
				info.Events, len(s.Flows), events, flows)
		}
		// Keep s live past the second ReadMemStats so the digest state is
		// actually in the "after" heap.
		runtime.KeepAlive(s)
		return after.TotalAlloc - before.TotalAlloc
	}

	small := heapCost(1000000)
	large := heapCost(3000000)
	t.Logf("allocated digesting 1M events: %d MiB; 3M events: %d MiB",
		small>>20, large>>20)
	// Cumulative allocation is dominated by the O(flows) digest state
	// (rebuilt per call); the per-event streaming path must not add a
	// per-event term, so 3× the events may cost at most ~1.25× the
	// allocation of 1×.
	if large > small+small/4 {
		t.Errorf("allocation grew with trace length: 1M events cost %d bytes, 3M cost %d", small, large)
	}
	// Absolute sanity: the state for 100k flows (several sketches each)
	// must stay well under materializing 3M 48-byte events would cost.
	if large > 100<<20 {
		t.Errorf("digesting 3M events allocated %d MiB, want << event-slice cost", large>>20)
	}
}
