package ptrace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/packet"
	"repro/internal/trace"
	"repro/internal/units"
)

// Quantiles summarizes a delay sample stream. Max and N are exact;
// the percentiles are P² sketch estimates (see digest.go), which
// converge on the exact order statistics as the stream grows.
type Quantiles struct {
	N                  int
	P50, P90, P99, Max units.Time
}

func ms(t units.Time) float64 { return float64(t) / float64(units.Millisecond) }

// HopStats aggregates one hop's events.
type HopStats struct {
	Name   string
	Counts [numKinds]int
	// Drops is the terminal drops at this hop (Kind.IsDrop kinds).
	Drops int
	// MaxQLen is the deepest queue observed at enqueue.
	MaxQLen int32
	// Residence summarizes LinkTx delays: queueing + serialization at
	// this hop.
	Residence Quantiles
}

// FlowStats aggregates client deliveries of one flow.
type FlowStats struct {
	Flow      packet.FlowID
	Delivered int
	Drops     int // drops of this flow anywhere on the path
	// OneWay summarizes the end-to-end delay of Deliver events.
	OneWay Quantiles
}

// VerdictBucket is one time bucket of a hop's policer/marker verdicts.
type VerdictBucket struct {
	Hop                 string
	Start               units.Time
	Pass, Demote, Drops int
}

// Summary is the offline digest dstrace prints.
type Summary struct {
	Seen     uint64
	Retained int
	Span     units.Time // time covered by the retained window
	Hops     []HopStats
	Flows    []FlowStats
	// Timeline buckets policer/marker verdicts per hop over time.
	Timeline []VerdictBucket
}

// Analyze digests a capture. bucket sets the verdict-timeline
// granularity (<= 0 means 1 s). It is a single pass over the events
// through the same bounded-memory Digester that AnalyzeStream feeds
// straight from a file, so the two agree exactly on any trace.
func Analyze(d *Data, bucket units.Time) *Summary {
	g := NewDigester(bucket)
	for _, e := range d.Events {
		g.Add(e)
	}
	return g.Summarize(d.Hops, d.Seen)
}

// Format renders the summary as aligned text tables.
func (s *Summary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d emitted, %d retained", s.Seen, s.Retained)
	if s.Seen > 0 && s.Retained > 0 {
		fmt.Fprintf(&b, " (%.1f%%), window %.1f ms",
			100*float64(s.Retained)/float64(s.Seen), ms(s.Span))
	}
	b.WriteString("\n\nper-hop:\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %7s %6s %6s %6s %6s %5s %9s %9s\n",
		"hop", "enq", "tx", "deliver", "drops", "qdrop", "pol-", "shp-", "loss", "maxQ", "p50ms", "p99ms")
	for _, h := range s.Hops {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %7d %6d %6d %6d %6d %5d %9.3f %9.3f\n",
			h.Name, h.Counts[LinkEnqueue], h.Counts[LinkTx],
			h.Counts[LinkDeliver]+h.Counts[Deliver], h.Drops,
			h.Counts[QueueDrop], h.Counts[PolicerDrop], h.Counts[ShaperDrop],
			h.Counts[Loss], h.MaxQLen,
			ms(h.Residence.P50), ms(h.Residence.P99))
	}
	if conditioned(s.Hops) {
		b.WriteString("\nconditioner verdicts:\n")
		fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %8s\n",
			"hop", "pass", "demote", "drop", "release", "red")
		for _, h := range s.Hops {
			total := h.Counts[PolicerPass] + h.Counts[PolicerDemote] + h.Counts[PolicerDrop] +
				h.Counts[ShaperRelease] + h.Counts[ShaperDrop] + h.Counts[REDEarly]
			if total == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-12s %8d %8d %8d %8d %8d\n",
				h.Name, h.Counts[PolicerPass], h.Counts[PolicerDemote],
				h.Counts[PolicerDrop]+h.Counts[ShaperDrop],
				h.Counts[ShaperRelease], h.Counts[REDEarly])
		}
	}
	if len(s.Flows) > 0 {
		b.WriteString("\nper-flow one-way delay (client deliveries):\n")
		fmt.Fprintf(&b, "%-6s %8s %7s %9s %9s %9s %9s\n",
			"flow", "deliv", "drops", "p50ms", "p90ms", "p99ms", "maxms")
		for _, f := range s.Flows {
			fmt.Fprintf(&b, "%-6d %8d %7d %9.3f %9.3f %9.3f %9.3f\n",
				f.Flow, f.Delivered, f.Drops,
				ms(f.OneWay.P50), ms(f.OneWay.P90), ms(f.OneWay.P99), ms(f.OneWay.Max))
		}
	}
	if len(s.Timeline) > 0 {
		b.WriteString("\nverdict timeline:\n")
		fmt.Fprintf(&b, "%-12s %9s %8s %8s %8s\n", "hop", "t0(s)", "pass", "demote", "drop")
		for _, tb := range s.Timeline {
			fmt.Fprintf(&b, "%-12s %9.1f %8d %8d %8d\n",
				tb.Hop, float64(tb.Start)/float64(units.Second), tb.Pass, tb.Demote, tb.Drops)
		}
	}
	return b.String()
}

func conditioned(hops []HopStats) bool {
	for _, h := range hops {
		if h.Counts[PolicerPass]+h.Counts[PolicerDemote]+h.Counts[PolicerDrop]+
			h.Counts[ShaperRelease]+h.Counts[ShaperDrop]+h.Counts[REDEarly] > 0 {
			return true
		}
	}
	return false
}

// FrameLossCause attributes one lost clip frame to the hop that
// dropped its fragments.
type FrameLossCause struct {
	FrameSeq int
	Hop      string // hop with the most dropped fragments; "" if unknown
	Frags    int    // dropped fragments seen for this frame
}

// Attribution is the join of a packet trace against a frame trace.
type Attribution struct {
	LostFrames   int
	Attributed   []FrameLossCause
	Unattributed int // lost frames with no drop evidence in the window
	// ByHop counts frame kills per hop.
	ByHop map[string]int
}

// AttributeFrameLoss joins the packet trace against the client's frame
// trace: for every clip frame the client never produced, find the hop
// whose drop events claimed that frame's fragments. Frames whose drops
// fell outside the bounded capture window come back unattributed.
func AttributeFrameLoss(d *Data, ft *trace.Trace) *Attribution {
	received := make(map[int]bool, len(ft.Records))
	for _, r := range ft.Records {
		received[r.Seq] = true
	}
	// frame -> hop -> dropped fragment count
	drops := map[int]map[HopID]int{}
	for _, e := range d.Events {
		if !e.Kind.IsDrop() || e.FrameSeq < 0 {
			continue
		}
		m := drops[int(e.FrameSeq)]
		if m == nil {
			m = map[HopID]int{}
			drops[int(e.FrameSeq)] = m
		}
		m[e.Hop]++
	}
	a := &Attribution{ByHop: map[string]int{}}
	for seq := 0; seq < ft.ClipFrames; seq++ {
		if received[seq] {
			continue
		}
		a.LostFrames++
		m := drops[seq]
		if len(m) == 0 {
			a.Unattributed++
			continue
		}
		best, bestN, total := HopID(0), 0, 0
		for hop, n := range m {
			total += n
			if n > bestN || (n == bestN && hop < best) {
				best, bestN = hop, n
			}
		}
		name := d.HopName(best)
		a.Attributed = append(a.Attributed, FrameLossCause{FrameSeq: seq, Hop: name, Frags: total})
		a.ByHop[name]++
	}
	sort.Slice(a.Attributed, func(i, j int) bool { return a.Attributed[i].FrameSeq < a.Attributed[j].FrameSeq })
	return a
}

// Format renders the attribution; top bounds the per-frame listing
// (<= 0 lists every lost frame).
func (a *Attribution) Format(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lost frames: %d (%d attributed, %d outside the capture window)\n",
		a.LostFrames, len(a.Attributed), a.Unattributed)
	if len(a.ByHop) > 0 {
		var hops []string
		for h := range a.ByHop {
			hops = append(hops, h)
		}
		sort.Slice(hops, func(i, j int) bool {
			if a.ByHop[hops[i]] != a.ByHop[hops[j]] {
				return a.ByHop[hops[i]] > a.ByHop[hops[j]]
			}
			return hops[i] < hops[j]
		})
		b.WriteString("frame kills by hop:\n")
		for _, h := range hops {
			fmt.Fprintf(&b, "  %-12s %d\n", h, a.ByHop[h])
		}
	}
	n := len(a.Attributed)
	if top > 0 && n > top {
		n = top
	}
	if n > 0 {
		b.WriteString("lost frames (frame -> killing hop, dropped frags):\n")
		for _, c := range a.Attributed[:n] {
			fmt.Fprintf(&b, "  frame %5d  %-12s %d\n", c.FrameSeq, c.Hop, c.Frags)
		}
		if n < len(a.Attributed) {
			fmt.Fprintf(&b, "  ... %d more\n", len(a.Attributed)-n)
		}
	}
	return b.String()
}
