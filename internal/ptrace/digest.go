package ptrace

// Streaming trace analysis. Analyze used to keep every residence and
// one-way delay sample in RAM and sort for percentiles — fine for a
// bounded ring capture, hopeless for a spilled fleet-scale trace whose
// event count is unbounded. The Digester replaces the sample slices
// with constant-size accumulators per hop and per flow: counts,
// Welford moments (stats.Moments, exact mean/min/max) and P² quantile
// sketches (stats.P2Quantile, estimated p50/p90/p99), so digesting a
// trace costs O(hops + flows + timeline buckets) memory no matter how
// many events stream through. TestDigestMemoryBoundedByState pins
// that: doubling a 100k-flow trace's event count must not grow the
// digester's heap. The sketch estimates converge on the exact
// sort-based percentiles as streams grow; TestDigestQuantileTolerance
// bounds the error against the retired exact implementation.

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/units"
)

// delayDigest accumulates one delay stream in O(1) space: exact
// count/mean/min/max via Welford moments, estimated percentiles via
// three P² sketches.
type delayDigest struct {
	moments       stats.Moments
	p50, p90, p99 stats.P2Quantile
}

func (d *delayDigest) init() {
	d.p50.Init(0.50)
	d.p90.Init(0.90)
	d.p99.Init(0.99)
}

func (d *delayDigest) add(t units.Time) {
	v := float64(t)
	d.moments.Add(v)
	d.p50.Add(v)
	d.p90.Add(v)
	d.p99.Add(v)
}

// quantiles converts the accumulated stream into the Quantiles form
// the Summary reports. Max is exact (moments); the percentiles are the
// sketch estimates.
func (d *delayDigest) quantiles() Quantiles {
	q := Quantiles{N: int(d.moments.N())}
	if q.N == 0 {
		return q
	}
	round := func(v float64) units.Time { return units.Time(math.Round(v)) }
	q.P50, q.P90, q.P99 = round(d.p50.Value()), round(d.p90.Value()), round(d.p99.Value())
	q.Max = round(d.moments.Max())
	return q
}

type hopDigest struct {
	counts    [numKinds]int
	drops     int
	maxQLen   int32
	residence delayDigest
}

type flowDigest struct {
	delivered int
	drops     int
	oneWay    delayDigest
}

type timelineKey struct {
	hop HopID
	t   int64
}

// Digester folds a trace into a Summary one event at a time. Feed it
// with Add (any order the trace supplies) and seal it with Summarize;
// Analyze and AnalyzeStream are both thin wrappers over it.
type Digester struct {
	bucket units.Time

	count       uint64
	first, last units.Time

	hops     []hopDigest // indexed by HopID, grown on demand
	flows    map[packet.FlowID]*flowDigest
	timeline map[timelineKey]*VerdictBucket
}

// NewDigester returns an empty digester; bucket sets the
// verdict-timeline granularity (<= 0 means 1 s).
func NewDigester(bucket units.Time) *Digester {
	if bucket <= 0 {
		bucket = units.Second
	}
	return &Digester{
		bucket:   bucket,
		flows:    map[packet.FlowID]*flowDigest{},
		timeline: map[timelineKey]*VerdictBucket{},
	}
}

func (g *Digester) flow(id packet.FlowID) *flowDigest {
	f := g.flows[id]
	if f == nil {
		f = &flowDigest{}
		f.oneWay.init()
		g.flows[id] = f
	}
	return f
}

// Add digests one event.
func (g *Digester) Add(e Event) {
	if e.Kind >= numKinds {
		return // corrupt kind; skip rather than crash the tool
	}
	if g.count == 0 {
		g.first = e.T
	}
	g.last = e.T
	g.count++
	for int(e.Hop) >= len(g.hops) {
		g.hops = append(g.hops, hopDigest{})
		g.hops[len(g.hops)-1].residence.init()
	}
	h := &g.hops[e.Hop]
	h.counts[e.Kind]++
	if e.Kind.IsDrop() {
		h.drops++
		g.flow(e.Flow).drops++
	}
	switch e.Kind {
	case LinkEnqueue:
		if e.QLen > h.maxQLen {
			h.maxQLen = e.QLen
		}
	case LinkTx:
		h.residence.add(e.Delay)
	case Deliver:
		f := g.flow(e.Flow)
		f.delivered++
		f.oneWay.add(e.Delay)
	case PolicerPass, PolicerDemote, PolicerDrop, ShaperRelease, ShaperDrop:
		k := timelineKey{e.Hop, int64(e.T / g.bucket)}
		b := g.timeline[k]
		if b == nil {
			b = &VerdictBucket{Start: units.Time(k.t) * g.bucket}
			g.timeline[k] = b
		}
		switch e.Kind {
		case PolicerPass, ShaperRelease:
			b.Pass++
		case PolicerDemote:
			b.Demote++
		default:
			b.Drops++
		}
	}
}

// Events reports how many events have been digested.
func (g *Digester) Events() uint64 { return g.count }

// Summarize seals the digest into the Summary form, resolving hop ids
// against the trace's name table (ids beyond it get numeric names, the
// same fallback Data.HopName applies). seen is the run's total emitted
// count from the trace header or trailer.
func (g *Digester) Summarize(hopNames []string, seen uint64) *Summary {
	s := &Summary{Seen: seen, Retained: int(g.count)}
	if g.count > 0 {
		s.Span = g.last - g.first
	}
	name := func(id HopID) string {
		if int(id) < len(hopNames) {
			return hopNames[id]
		}
		return fmt.Sprintf("hop#%d", id)
	}
	for id := range g.hops {
		h := &g.hops[id]
		total := 0
		for _, c := range h.counts {
			total += c
		}
		if total == 0 {
			continue // interned but never hit, or a hole in the id space
		}
		s.Hops = append(s.Hops, HopStats{
			Name: name(HopID(id)), Counts: h.counts, Drops: h.drops,
			MaxQLen: h.maxQLen, Residence: h.residence.quantiles(),
		})
	}
	flowIDs := make([]packet.FlowID, 0, len(g.flows))
	for id := range g.flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		f := g.flows[id]
		s.Flows = append(s.Flows, FlowStats{
			Flow: id, Delivered: f.delivered, Drops: f.drops,
			OneWay: f.oneWay.quantiles(),
		})
	}
	for k, b := range g.timeline {
		b.Hop = name(k.hop)
		s.Timeline = append(s.Timeline, *b)
	}
	sort.Slice(s.Timeline, func(i, j int) bool {
		if s.Timeline[i].Hop != s.Timeline[j].Hop {
			return s.Timeline[i].Hop < s.Timeline[j].Hop
		}
		return s.Timeline[i].Start < s.Timeline[j].Start
	})
	return s
}

// StreamInfo describes what AnalyzeStream read.
type StreamInfo struct {
	Format Format
	Events uint64 // events decoded and digested
	Hops   int    // size of the trace's hop name table
	Seen   uint64 // events emitted during the traced run
}

// AnalyzeStream digests a trace in one pass directly from its encoded
// form — either format, sniffed like Read — without ever materializing
// the event slice, so peak memory is bounded by the digest state, not
// the trace length. This is dstrace's summarize path; Read+Analyze
// remains for consumers that need the events themselves (frame-loss
// attribution).
func AnalyzeStream(r io.Reader, bucket units.Time) (*Summary, StreamInfo, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	g := NewDigester(bucket)
	format, err := sniff(br)
	if err != nil {
		return nil, StreamInfo{}, err
	}
	info := StreamInfo{Format: format}
	digest := func(e Event) error {
		g.Add(e)
		return nil
	}
	var hops []string
	switch format {
	case FormatV2:
		v2Hops, seen, _, err := streamV2(br, digest)
		if err != nil {
			return nil, info, err
		}
		hops, info.Seen = v2Hops, seen
	default:
		hdr, err := streamJSONL(br, digest)
		if err != nil {
			return nil, info, err
		}
		hops, info.Seen = hdr.Hops, hdr.Seen
	}
	info.Events = g.Events()
	info.Hops = len(hops)
	return g.Summarize(hops, info.Seen), info, nil
}
