// Package ptrace is the packet-level tracing subsystem: a set of tap
// points threaded through the datapath (links, queues, policers,
// shapers, markers, loss elements, clients, the TCP endpoints) that
// emit compact value-type Event records into a bounded per-run
// Recorder.
//
// # Design constraints
//
// Tracing must cost nothing when disabled: every hook site is a
// nil-check on a Tap field, and the Event value is only constructed
// inside the guarded branch, so the per-packet hot paths keep their
// 0 allocs/op budget (see TestLinkHotPathAllocationBudget). When a
// Recorder is attached, Emit writes into storage preallocated at
// construction — the steady state records events without allocating
// either.
//
// Events never retain a *packet.Packet: hook sites copy the handful
// of fields they need before ownership moves on, so tracing composes
// with packet.Pool recycling without extending any packet's lifetime.
//
// # Bounded capture
//
// A Recorder holds at most Config.Capacity events. Three capture
// shapes compose:
//
//   - plain ring (the default): the last Capacity events survive;
//   - head/tail: Config.Head pins the first Head events of the run
//     (connection setup, the first policer verdicts) and the ring
//     keeps the tail;
//   - sampling: Config.Sample keeps one event in N once the head is
//     full, stretching the ring's time coverage N-fold.
//
// Total emitted events are always counted (Seen), so an analyzer can
// report how much of the run the retained window covers.
package ptrace

import (
	"fmt"
	"io"

	"repro/internal/packet"
	"repro/internal/units"
)

// Kind identifies the datapath action an Event records.
type Kind uint8

// Tap-point kinds. The verdict-style kinds reuse the policer family:
// an AF marker "demotes" (yellow/red re-mark) where a policer drops.
const (
	// LinkEnqueue: a packet was admitted to a link port's scheduler.
	LinkEnqueue Kind = iota
	// QueueDrop: the port's scheduler rejected the packet (tail drop,
	// class limit, or an AQM decision — see REDEarly).
	QueueDrop
	// REDEarly annotates a QueueDrop that was a RED/RIO probabilistic
	// or threshold decision rather than a full buffer. The owning
	// link still emits the QueueDrop; REDEarly is detail, not a
	// second drop.
	REDEarly
	// LinkTx: serialization finished; Delay holds the packet's
	// queueing+serialization time at this hop.
	LinkTx
	// LinkDeliver: propagation finished, packet handed to the next hop.
	LinkDeliver
	// PolicerPass: a token-bucket verdict let the packet through
	// conformant (policer conform, marker green).
	PolicerPass
	// PolicerDemote: a three-color marker re-marked the packet to a
	// worse drop precedence (yellow/red); Flag carries the Color.
	PolicerDemote
	// PolicerDrop: a hard policer dropped the packet out of profile.
	PolicerDrop
	// ShaperRelease: a shaper forwarded a packet at its conformance
	// time (Flag is 1 when the packet had to wait in the shaper queue).
	ShaperRelease
	// ShaperDrop: the shaper dropped an oversized or overflow packet.
	ShaperDrop
	// Loss: a random-loss element dropped the packet.
	Loss
	// Deliver: the client consumed the packet; Delay holds the one-way
	// delay since SentAt.
	Deliver
	// TCPSend: the TCP sender emitted a segment (Flag is 1 for a
	// retransmission); QLen holds the flight in segments.
	TCPSend
	// TCPAck: the TCP sender processed a cumulative ACK (Flag is 1 for
	// a duplicate); Delay holds the current smoothed RTT.
	TCPAck
	// TCPRTO: the sender's retransmission timer expired; Delay holds
	// the timeout that expired.
	TCPRTO

	numKinds
)

var kindNames = [numKinds]string{
	"enqueue", "queue-drop", "red-early", "tx", "deliver",
	"policer-pass", "policer-demote", "policer-drop",
	"shaper-release", "shaper-drop", "loss", "client-deliver",
	"tcp-send", "tcp-ack", "tcp-rto",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsDrop reports whether the event terminates the packet. REDEarly is
// excluded: it annotates a QueueDrop the owning link also emits, so
// counting both would double-book the drop.
func (k Kind) IsDrop() bool {
	switch k {
	case QueueDrop, PolicerDrop, ShaperDrop, Loss:
		return true
	}
	return false
}

// HopID is an interned hop (element) name — a small integer so Event
// stays a compact value type. The Recorder owns the name table.
type HopID uint16

// Event is one datapath observation. All fields are plain values;
// nothing points back into the simulation.
type Event struct {
	T     units.Time // stamped by the Recorder at Emit
	Delay units.Time // kind-specific latency annotation (see Kind docs)
	PktID uint64
	Flow  packet.FlowID
	Size  int32
	// QLen is the hop's queue occupancy after the action, where the
	// hop has a queue (links, shapers, TCP flight in segments).
	QLen     int32
	FrameSeq int32 // video frame the packet fragments, -1 otherwise
	Hop      HopID
	Kind     Kind
	DSCP     packet.DSCP
	// Flag is a kind-specific annotation: retransmission (TCPSend),
	// duplicate (TCPAck), waited-in-queue (ShaperRelease), the
	// packet.Color (PolicerDemote).
	Flag uint8
}

// Tap consumes events. Datapath components hold a nil Tap by default;
// a hook site fires only when one is attached, so disabled tracing is
// a single pointer comparison per tap point.
type Tap interface {
	Emit(e Event)
}

// Clock exposes simulated time; *sim.Simulator satisfies it. The
// Recorder stamps Event.T itself so hook sites that have no clock of
// their own (queue AQMs) can still emit.
type Clock interface {
	Now() units.Time
}

// Config bounds a Recorder's capture. The zero value means: 64 Ki
// events of plain ring, no head pinning, no sampling.
type Config struct {
	// Capacity is the maximum number of retained events (default 65536).
	Capacity int
	// Head pins the first Head events of the run; the remaining
	// capacity rings over the tail. Clamped to Capacity.
	Head int
	// Sample keeps one event in Sample once the head is full; <= 1
	// keeps every event. Sampling is per kind (every kind keeps its
	// own 1-in-Sample stride), so a patterned event stream — a packet
	// always emitting the same fixed sequence of kinds — cannot land
	// one kind on a stride phase that discards it entirely.
	Sample int
	// Kinds restricts capture to the masked kinds (build the mask
	// with KindMask); 0 captures everything. Filtering the bulk
	// enqueue/tx/deliver kinds stretches a bounded ring across a whole
	// run's verdicts and drops — the mode frame-loss attribution
	// wants.
	Kinds uint32
	// Flows restricts capture to the listed flow ids; empty captures
	// every flow. Filtering to the video flow keeps a run-length
	// capture from being swamped by cross-traffic churn (best-effort
	// queue drops outnumber video verdicts by orders of magnitude on
	// a loaded path).
	Flows []packet.FlowID
}

// KindMask builds a Config.Kinds mask.
func KindMask(ks ...Kind) uint32 {
	var m uint32
	for _, k := range ks {
		m |= 1 << k
	}
	return m
}

// VerdictKinds is the compact diagnosis mask: conditioner verdicts,
// every drop kind, client deliveries, and the TCP endpoint events —
// everything dstrace needs to attribute loss, without the bulk
// per-hop forwarding events.
func VerdictKinds() uint32 {
	return KindMask(QueueDrop, REDEarly, PolicerPass, PolicerDemote, PolicerDrop,
		ShaperRelease, ShaperDrop, Loss, Deliver, TCPSend, TCPAck, TCPRTO)
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 65536
	}
	if c.Head < 0 {
		c.Head = 0
	}
	if c.Head > c.Capacity {
		c.Head = c.Capacity
	}
	if c.Sample < 1 {
		c.Sample = 1
	}
	return c
}

// Recorder is a bounded, allocation-free event sink for one
// simulation run. It is not goroutine-safe for the same reason a
// packet.Pool is not: each simulation owns its recorder, and the
// runner never shares a simulation across workers.
type Recorder struct {
	clock Clock
	cfg   Config

	head        []Event // first cfg.Head events, pinned
	ring        []Event // circular tail over the rest of the capacity
	start       int
	count       int
	seen        uint64
	overwritten uint64
	// kindSeen counts filter-surviving events per kind, the stride
	// basis for per-kind sampling.
	kindSeen [numKinds]uint64

	hops    []string
	hopByID map[string]HopID

	// spill, when set, streams every capture-eligible event to an
	// external writer in the binary v2 encoding, unbounded by Capacity.
	spill *v2Writer
}

// NewRecorder returns a recorder with cfg's bounds, storage fully
// preallocated. Attach a clock with SetClock before the run starts.
func NewRecorder(cfg Config) *Recorder {
	cfg = cfg.withDefaults()
	return &Recorder{
		cfg:     cfg,
		head:    make([]Event, 0, cfg.Head),
		ring:    make([]Event, cfg.Capacity-cfg.Head),
		hopByID: make(map[string]HopID),
	}
}

// SetClock attaches the time source that stamps Event.T. The topology
// builder calls this with the run's simulator.
func (r *Recorder) SetClock(c Clock) { r.clock = c }

// Hop interns a hop name, returning its stable id. Called at wiring
// time, never on the per-packet path.
func (r *Recorder) Hop(name string) HopID {
	if id, ok := r.hopByID[name]; ok {
		return id
	}
	id := HopID(len(r.hops))
	r.hops = append(r.hops, name)
	r.hopByID[name] = id
	return id
}

// HopName resolves an interned id; unknown ids get a numeric name.
func (r *Recorder) HopName(id HopID) string {
	if int(id) < len(r.hops) {
		return r.hops[id]
	}
	return fmt.Sprintf("hop#%d", id)
}

// Emit records e, stamping its time. Steady-state cost is a bounds
// check and a 48-byte copy into preallocated storage — no allocation.
func (r *Recorder) Emit(e Event) {
	r.seen++
	if r.cfg.Kinds != 0 && r.cfg.Kinds&(1<<e.Kind) == 0 {
		return
	}
	if len(r.cfg.Flows) > 0 {
		ok := false
		for _, f := range r.cfg.Flows {
			if e.Flow == f {
				ok = true
				break
			}
		}
		if !ok {
			return
		}
	}
	if r.clock != nil {
		e.T = r.clock.Now()
	}
	if len(r.head) < cap(r.head) {
		r.head = append(r.head, e)
		if r.spill != nil {
			r.spill.add(e)
		}
		return
	}
	if e.Kind < numKinds { // out-of-range kinds fall through unsampled
		r.kindSeen[e.Kind]++
		if r.cfg.Sample > 1 && r.kindSeen[e.Kind]%uint64(r.cfg.Sample) != 0 {
			return
		}
	}
	// The spill stream gets every event the ring is offered — including
	// the ones a full ring would overwrite — so a spilled capture is
	// complete past Capacity while the in-RAM window stays bounded.
	if r.spill != nil {
		r.spill.add(e)
	}
	if len(r.ring) == 0 {
		return // head-only capture
	}
	if r.count < len(r.ring) {
		r.ring[(r.start+r.count)%len(r.ring)] = e
		r.count++
		return
	}
	r.ring[r.start] = e
	r.start = (r.start + 1) % len(r.ring)
	r.overwritten++
}

// Seen reports the total events emitted, retained or not.
func (r *Recorder) Seen() uint64 { return r.seen }

// Retained reports how many events are currently held.
func (r *Recorder) Retained() int { return len(r.head) + r.count }

// Overwritten reports ring events displaced by newer ones.
func (r *Recorder) Overwritten() uint64 { return r.overwritten }

// Events returns the retained events in emission (and therefore time)
// order: the pinned head, then the surviving tail window.
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.Retained())
	out = append(out, r.head...)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.start+i)%len(r.ring)])
	}
	return out
}

// Data snapshots the recorder into the exportable form.
func (r *Recorder) Data() *Data {
	return &Data{Hops: append([]string(nil), r.hops...), Seen: r.seen, Events: r.Events()}
}

// SpillTo streams every subsequently captured event to w in the binary
// v2 encoding as it is emitted, unbounded by Config.Capacity: the ring
// keeps its fixed in-RAM window while the spill stream gets the whole
// filtered capture. The spill honors the Kind and Flow filters and the
// per-kind sampling stride (head-phase events are always written), so
// -trace-sample still bounds a fleet-scale spill file's size. Call
// before the run starts, and seal the stream with FinishSpill after it
// ends; w should be buffered — add writes it one small block at a
// time.
func (r *Recorder) SpillTo(w io.Writer) {
	r.spill = newV2Writer(w)
}

// Spilled reports the events written to the spill stream so far (0
// when spilling is off).
func (r *Recorder) Spilled() uint64 {
	if r.spill == nil {
		return 0
	}
	return r.spill.total
}

// FinishSpill seals the spill stream's v2 trailer — hop table, seen
// count, event total — and detaches it, returning the first error the
// stream hit. Without the trailer the spill file is a truncated trace
// by construction, so forgetting this shows up loudly at read time.
// A recorder that never spilled, or already finished, returns nil.
func (r *Recorder) FinishSpill() error {
	if r.spill == nil {
		return nil
	}
	_, err := r.spill.finish(r.hops, r.seen)
	r.spill = nil
	return err
}
