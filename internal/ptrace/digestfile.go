package ptrace

// The on-disk digest format. A .digest file is a serialized Summary —
// the same bounded-memory digest dstrace prints and -compare joins —
// so a scenario can pin its expected behavior once and every later
// run can be gated against it ("dstrace -compare-golden FILE.digest
// run.ptrace") without storing the full golden trace. Digests carry
// no packet ids, so no canonicalization is needed before comparing,
// and CompareSummaries ignores the capture-size fields (Seen,
// Retained), so the gate keys on behavior, not on trace length.

import (
	"encoding/json"
	"fmt"
	"io"
)

// digestFormat identifies a digest file; digestVersion is bumped on
// any layout change.
const (
	digestFormat  = "ptrace-digest"
	digestVersion = 1
)

// digestFile is the envelope around the serialized Summary. Kinds
// records the event-kind table size the writer was compiled with:
// HopStats.Counts is a positional array indexed by Kind, so a digest
// written under a different kind table must be regenerated, not
// silently misread.
type digestFile struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Kinds   int      `json:"kinds"`
	Summary *Summary `json:"summary"`
}

// WriteSummary serializes a digest. The output is deterministic for a
// deterministic Summary, so golden digest files can be compared
// byte-for-byte as well as semantically.
func WriteSummary(w io.Writer, s *Summary) error {
	data, err := json.MarshalIndent(digestFile{
		Format: digestFormat, Version: digestVersion, Kinds: int(numKinds), Summary: s,
	}, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ReadSummary deserializes a digest written by WriteSummary,
// validating the envelope so a stale or foreign file fails loudly
// instead of producing a nonsense comparison.
func ReadSummary(r io.Reader) (*Summary, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var df digestFile
	if err := json.Unmarshal(data, &df); err != nil {
		return nil, fmt.Errorf("ptrace: not a digest file: %w", err)
	}
	if df.Format != digestFormat {
		return nil, fmt.Errorf("ptrace: not a digest file (format %q, want %q)", df.Format, digestFormat)
	}
	if df.Version != digestVersion {
		return nil, fmt.Errorf("ptrace: digest version %d not supported (want %d); regenerate the golden", df.Version, digestVersion)
	}
	if df.Kinds != int(numKinds) {
		return nil, fmt.Errorf("ptrace: digest written with %d event kinds, this build has %d; regenerate the golden", df.Kinds, numKinds)
	}
	if df.Summary == nil {
		return nil, fmt.Errorf("ptrace: digest file has no summary")
	}
	return df.Summary, nil
}
