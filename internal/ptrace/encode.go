package ptrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/packet"
	"repro/internal/units"
)

// Version is the trace format version this package writes and reads.
const Version = 1

// Data is the exportable form of a capture: the hop name table plus
// the retained events. It is what cmd/dstrace reads back.
type Data struct {
	Hops   []string
	Seen   uint64 // total events emitted during the run
	Events []Event
}

// HopName resolves an event's hop against the data's name table.
func (d *Data) HopName(id HopID) string {
	if int(id) < len(d.Hops) {
		return d.Hops[id]
	}
	return fmt.Sprintf("hop#%d", id)
}

// header is the first JSONL line: everything but the events.
type header struct {
	Format  string   `json:"format"`
	Version int      `json:"version"`
	Seen    uint64   `json:"seen"`
	Events  int      `json:"events"`
	Hops    []string `json:"hops"`
}

// eventFields is the number of values per event line.
const eventFields = 11

// WriteTo emits the versioned JSONL encoding: one header object line,
// then one compact JSON array per event —
// [t, kind, flag, hop, flow, pkt, size, dscp, qlen, frame, delay].
func (d *Data) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	hdr, err := json.Marshal(header{
		Format: "ptrace", Version: Version,
		Seen: d.Seen, Events: len(d.Events), Hops: d.Hops,
	})
	if err != nil {
		return 0, err
	}
	c, err := fmt.Fprintf(bw, "%s\n", hdr)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, e := range d.Events {
		c, err := fmt.Fprintf(bw, "[%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d]\n",
			int64(e.T), e.Kind, e.Flag, e.Hop, e.Flow, e.PktID,
			e.Size, e.DSCP, e.QLen, e.FrameSeq, int64(e.Delay))
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses either trace encoding — the JSONL v1 produced by
// WriteTo or the binary v2 produced by WriteV2To — sniffing the
// format from the leading bytes, so every consumer accepts both
// transparently.
func Read(r io.Reader) (*Data, error) {
	d, _, err := ReadFormat(r)
	return d, err
}

// ReadFormat is Read, also reporting which encoding the input used.
func ReadFormat(r io.Reader) (*Data, Format, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	format, err := sniff(br)
	if err != nil {
		return nil, FormatUnknown, err
	}
	d := &Data{}
	collect := func(e Event) error {
		d.Events = append(d.Events, e)
		return nil
	}
	switch format {
	case FormatV2:
		hops, seen, _, err := streamV2(br, collect)
		if err != nil {
			return nil, format, err
		}
		d.Hops, d.Seen = hops, seen
	default:
		hdr, err := streamJSONL(br, collect)
		if err != nil {
			return nil, format, err
		}
		d.Hops, d.Seen = hdr.Hops, hdr.Seen
	}
	return d, format, nil
}

// sniff identifies the trace encoding from the buffered input's
// leading bytes without consuming them.
func sniff(br *bufio.Reader) (Format, error) {
	lead, err := br.Peek(1)
	if err != nil {
		return FormatUnknown, fmt.Errorf("ptrace: empty input")
	}
	switch {
	case lead[0] == magicV2[0]:
		return FormatV2, nil
	case lead[0] == '{':
		return FormatJSONL, nil
	}
	return FormatUnknown, fmt.Errorf("ptrace: not a packet trace (leading byte 0x%02x is neither JSONL nor v2 magic)", lead[0])
}

// streamJSONL decodes the JSONL encoding, feeding each event to fn in
// order. Unlike v2, the header — hop table, seen count — leads the
// stream, so it is returned immediately usable.
func streamJSONL(br *bufio.Reader, fn func(Event) error) (header, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	if !sc.Scan() {
		return header{}, fmt.Errorf("ptrace: empty input")
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, fmt.Errorf("ptrace: bad header: %w", err)
	}
	if hdr.Format != "ptrace" {
		return hdr, fmt.Errorf("ptrace: not a packet trace (format %q)", hdr.Format)
	}
	if hdr.Version != Version {
		return hdr, fmt.Errorf("ptrace: unsupported version %d (want %d)", hdr.Version, Version)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var raw []json.Number
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return hdr, fmt.Errorf("ptrace: line %d: %w", line, err)
		}
		if len(raw) != eventFields {
			return hdr, fmt.Errorf("ptrace: line %d: %d fields, want %d", line, len(raw), eventFields)
		}
		var f [eventFields]int64
		var pkt uint64
		for i, v := range raw {
			var err error
			if i == 5 { // PktID is the one unsigned 64-bit field
				pkt, err = strconv.ParseUint(v.String(), 10, 64)
			} else {
				f[i], err = v.Int64()
			}
			if err != nil {
				return hdr, fmt.Errorf("ptrace: line %d field %d: %w", line, i, err)
			}
		}
		err := fn(Event{
			T: units.Time(f[0]), Kind: Kind(f[1]), Flag: uint8(f[2]),
			Hop: HopID(f[3]), Flow: packet.FlowID(f[4]), PktID: pkt,
			Size: int32(f[6]), DSCP: packet.DSCP(f[7]), QLen: int32(f[8]),
			FrameSeq: int32(f[9]), Delay: units.Time(f[10]),
		})
		if err != nil {
			return hdr, err
		}
	}
	if err := sc.Err(); err != nil {
		return hdr, err
	}
	return hdr, nil
}
