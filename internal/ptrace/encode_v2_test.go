package ptrace_test

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/units"
)

// corpusData decodes the tandem fuzz seed — the representative real
// capture the encoding tests and benchmarks share.
func corpusData(t testing.TB) *ptrace.Data {
	t.Helper()
	d, err := ptrace.Read(bytes.NewReader(tandemSeed()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) == 0 {
		t.Fatal("tandem seed capture is empty")
	}
	return d
}

func encodeV2(t testing.TB, d *ptrace.Data) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.WriteV2To(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomData builds a capture of adversarially jumpy events: every
// field swings across its full range, so nothing about the delta
// packing's "fields rarely change" assumption holds.
func randomData(rng *rand.Rand, n int) *ptrace.Data {
	d := &ptrace.Data{Hops: []string{"", "a", "hop with spaces", "端"}, Seen: rng.Uint64()}
	for i := 0; i < n; i++ {
		d.Events = append(d.Events, ptrace.Event{
			T:        units.Time(rng.Uint64()),
			Delay:    units.Time(rng.Uint64()),
			PktID:    rng.Uint64(),
			Flow:     packet.FlowID(rng.Uint32()),
			Size:     int32(rng.Uint32()),
			QLen:     int32(rng.Uint32()),
			FrameSeq: int32(rng.Uint32()),
			Hop:      ptrace.HopID(rng.Uint32()),
			Kind:     ptrace.Kind(rng.Intn(15)),
			DSCP:     packet.DSCP(rng.Uint32()),
			Flag:     uint8(rng.Uint32()),
		})
	}
	return d
}

// TestV2RoundTripRandomEvents pins exact round-tripping at full field
// range: wrapping delta arithmetic must reproduce every extreme value,
// not just the well-behaved captures real runs produce.
func TestV2RoundTripRandomEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 5, 4095, 4096, 4097, 20000} {
		d := randomData(rng, n)
		enc := encodeV2(t, d)
		got, format, err := ptrace.ReadFormat(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if format != ptrace.FormatV2 {
			t.Fatalf("n=%d: format %v, want v2", n, format)
		}
		if !dataEqual(d, got) {
			t.Fatalf("n=%d: round trip changed the capture", n)
		}
		if again := encodeV2(t, got); !bytes.Equal(enc, again) {
			t.Fatalf("n=%d: re-encoding is not byte-stable", n)
		}
	}
}

// TestV2RoundTripCorpus pins the same property on the real tandem
// capture, plus cross-format equivalence: decoding the v2 encoding
// must equal decoding the JSONL encoding of the same capture.
func TestV2RoundTripCorpus(t *testing.T) {
	fromJSONL := corpusData(t)
	fromV2, err := ptrace.Read(bytes.NewReader(encodeV2(t, fromJSONL)))
	if err != nil {
		t.Fatal(err)
	}
	if !dataEqual(fromJSONL, fromV2) {
		t.Fatal("v2 and JSONL decode to different captures")
	}
}

// TestV2RejectsTruncation cuts a valid v2 trace at every length and
// requires a decode error each time: the trailer's event total makes
// silent truncation impossible, which is what lets dstrace trust a
// spilled file from an interrupted run to fail loudly.
func TestV2RejectsTruncation(t *testing.T) {
	d := randomData(rand.New(rand.NewSource(3)), 300)
	enc := encodeV2(t, d)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := ptrace.Read(bytes.NewReader(enc[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(enc))
		}
	}
	// Trailing garbage after a complete trace must also fail.
	if _, err := ptrace.Read(bytes.NewReader(append(append([]byte{}, enc...), 0xFF))); err == nil {
		t.Fatal("trailing byte after the trailer decoded without error")
	}
}

// TestReadFormatSniffs pins the format detection contract.
func TestReadFormatSniffs(t *testing.T) {
	d := corpusData(t)
	var jl bytes.Buffer
	if _, err := d.WriteTo(&jl); err != nil {
		t.Fatal(err)
	}
	if _, f, err := ptrace.ReadFormat(bytes.NewReader(jl.Bytes())); err != nil || f != ptrace.FormatJSONL {
		t.Errorf("jsonl: format %v err %v", f, err)
	}
	if _, f, err := ptrace.ReadFormat(bytes.NewReader(encodeV2(t, d))); err != nil || f != ptrace.FormatV2 {
		t.Errorf("v2: format %v err %v", f, err)
	}
	if _, _, err := ptrace.ReadFormat(bytes.NewReader([]byte("PK\x03\x04zipfile"))); err == nil {
		t.Error("garbage sniffed as a trace")
	}
	if _, _, err := ptrace.ReadFormat(bytes.NewReader(nil)); err == nil {
		t.Error("empty input sniffed as a trace")
	}
}

// TestV2Density pins the acceptance bar: on the fuzz-corpus tandem
// capture, v2 must cost at most 1/3 the bytes per event of JSONL.
func TestV2Density(t *testing.T) {
	d := corpusData(t)
	var jl bytes.Buffer
	if _, err := d.WriteTo(&jl); err != nil {
		t.Fatal(err)
	}
	v2 := encodeV2(t, d)
	n := float64(len(d.Events))
	jb, vb := float64(jl.Len())/n, float64(len(v2))/n
	t.Logf("bytes/event: jsonl %.1f, v2 %.1f (ratio %.2f)", jb, vb, vb/jb)
	if vb > jb/3 {
		t.Errorf("v2 costs %.1f bytes/event, more than 1/3 of JSONL's %.1f", vb, jb)
	}
}

// FuzzBinaryRoundTrip extends the JSONL fuzz guarantee across both
// encodings: any input Read accepts — either format — must re-encode
// to byte-stable v2 that decodes to the same Data, and its JSONL and
// v2 encodings must decode identically (the differential property the
// format-sniffing consumers rely on).
func FuzzBinaryRoundTrip(f *testing.F) {
	seedData, err := ptrace.Read(bytes.NewReader(tandemSeed()))
	if err != nil {
		f.Fatal(err)
	}
	var v2Seed bytes.Buffer
	if _, err := seedData.WriteV2To(&v2Seed); err != nil {
		f.Fatal(err)
	}
	f.Add(v2Seed.Bytes())
	f.Add(tandemSeed())
	var empty bytes.Buffer
	if _, err := (&ptrace.Data{}).WriteV2To(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	var extreme bytes.Buffer
	if _, err := randomData(rand.New(rand.NewSource(1)), 64).WriteV2To(&extreme); err != nil {
		f.Fatal(err)
	}
	f.Add(extreme.Bytes())

	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := ptrace.Read(bytes.NewReader(in))
		if err != nil {
			return // malformed inputs may be rejected, never crash
		}
		var v2 bytes.Buffer
		if _, err := d.WriteV2To(&v2); err != nil {
			t.Fatalf("WriteV2To after successful Read: %v", err)
		}
		d2, err := ptrace.Read(bytes.NewReader(v2.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of own v2 encoding: %v", err)
		}
		if !dataEqual(d, d2) {
			t.Fatal("v2 round trip changed the capture")
		}
		var v2b bytes.Buffer
		if _, err := d2.WriteV2To(&v2b); err != nil {
			t.Fatalf("second WriteV2To: %v", err)
		}
		if !bytes.Equal(v2.Bytes(), v2b.Bytes()) {
			t.Fatal("v2 re-encoding is not byte-stable")
		}
		// Differential: the JSONL encoding of the same capture decodes
		// to the same Data the v2 encoding does.
		var jl bytes.Buffer
		if _, err := d.WriteTo(&jl); err != nil {
			t.Fatalf("WriteTo after successful Read: %v", err)
		}
		dj, err := ptrace.Read(bytes.NewReader(jl.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of own JSONL encoding: %v", err)
		}
		if !dataEqual(dj, d2) {
			t.Fatal("JSONL and v2 encodings decode to different captures")
		}
	})
}

func benchEncode(b *testing.B, write func(*ptrace.Data, *bytes.Buffer) int64) {
	d := corpusData(b)
	var buf bytes.Buffer
	b.ResetTimer()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		buf.Reset()
		bytesOut = write(d, &buf)
	}
	b.ReportMetric(float64(bytesOut)/float64(len(d.Events)), "bytes/event")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(d.Events)), "ns/event")
}

func BenchmarkTraceEncodeJSONL(b *testing.B) {
	benchEncode(b, func(d *ptrace.Data, buf *bytes.Buffer) int64 {
		n, err := d.WriteTo(buf)
		if err != nil {
			b.Fatal(err)
		}
		return n
	})
}

func BenchmarkTraceEncodeV2(b *testing.B) {
	benchEncode(b, func(d *ptrace.Data, buf *bytes.Buffer) int64 {
		n, err := d.WriteV2To(buf)
		if err != nil {
			b.Fatal(err)
		}
		return n
	})
}

func benchDecode(b *testing.B, enc []byte, events int) {
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ptrace.Read(bytes.NewReader(enc)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events), "ns/event")
}

func BenchmarkTraceDecodeJSONL(b *testing.B) {
	d := corpusData(b)
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	benchDecode(b, buf.Bytes(), len(d.Events))
}

func BenchmarkTraceDecodeV2(b *testing.B) {
	d := corpusData(b)
	benchDecode(b, encodeV2(b, d), len(d.Events))
}
