package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Second != Time(time.Second) {
		t.Errorf("Second = %d, want %d", Second, time.Second)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := FromDuration(3 * time.Millisecond); got != 3*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if s := (1500 * Millisecond).String(); s != "1.5s" {
		t.Errorf("String() = %q", s)
	}
}

func TestTxTime(t *testing.T) {
	// 1500 bytes at 12 kbps is exactly one second.
	r := BitRate(12000)
	if got := r.TxTime(1500); got != Second {
		t.Errorf("TxTime = %v, want 1s", got)
	}
	if got := BitRate(0).TxTime(1500); got != 0 {
		t.Errorf("zero rate TxTime = %v, want 0", got)
	}
	// 2 Mbps, 1500B -> 6 ms.
	if got := (2 * Mbps).TxTime(1500); got != 6*Millisecond {
		t.Errorf("2Mbps TxTime(1500) = %v, want 6ms", got)
	}
}

func TestBytesIn(t *testing.T) {
	if got := (8 * Mbps).BytesIn(Second); got != 1_000_000 {
		t.Errorf("BytesIn = %d", got)
	}
	if got := (8 * Mbps).BytesIn(-Second); got != 0 {
		t.Errorf("negative duration BytesIn = %d", got)
	}
}

func TestTxTimeBytesInRoundTrip(t *testing.T) {
	// Transmitting n bytes then asking how many bytes fit in that time
	// must return (approximately) n for any positive rate.
	f := func(n uint16, rk uint16) bool {
		rate := BitRate(rk%10000+1) * Kbps
		bytes := int(n%60000) + 1
		dt := rate.TxTime(bytes)
		got := rate.BytesIn(dt)
		return math.Abs(float64(got)-float64(bytes)) <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitRateString(t *testing.T) {
	cases := []struct {
		r    BitRate
		want string
	}{
		{1.7 * Mbps, "1.7Mbps"},
		{500 * Kbps, "500Kbps"},
		{2 * Gbps, "2Gbps"},
		{12, "12bps"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.r), got, c.want)
		}
	}
}

func TestByteSize(t *testing.T) {
	if KB.Bits() != 8000 {
		t.Errorf("KB.Bits() = %d", KB.Bits())
	}
	if KiB != 1024 {
		t.Errorf("KiB = %d", KiB)
	}
	if s := (3 * KB).String(); s != "3KB" {
		t.Errorf("String = %q", s)
	}
	if s := ByteSize(42).String(); s != "42B" {
		t.Errorf("String = %q", s)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	f := func(v, lo, hi float64) bool {
		if lo > hi {
			lo, hi = hi, lo
		}
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBitRate(t *testing.T) {
	cases := map[string]BitRate{
		"1.7M":   1.7e6,
		"900k":   9e5,
		"900K":   9e5,
		"2g":     2e9,
		"250000": 250000,
		" 1.5M ": 1.5e6,
	}
	for in, want := range cases {
		got, err := ParseBitRate(in)
		if err != nil || got != want {
			t.Errorf("ParseBitRate(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "fast", "-3M", "1.2X"} {
		if _, err := ParseBitRate(bad); err == nil {
			t.Errorf("ParseBitRate(%q) accepted", bad)
		}
	}
}
