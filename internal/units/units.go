// Package units provides the small set of physical quantities the
// simulator traffics in: bit rates, byte sizes, and simulated time.
//
// Simulated time is an int64 nanosecond count from the start of the
// experiment, mirroring time.Duration so the two interconvert freely.
// Bit rates are expressed in bits per second as float64 for arithmetic
// convenience, with helpers that keep token-bucket math in exact
// byte·nanosecond integer space where it matters.
package units

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Time is a simulated clock reading in nanoseconds since the start of
// the run. The zero value is the start of the simulation.
type Time int64

// Common simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a simulated time to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats t using time.Duration notation.
func (t Time) String() string { return time.Duration(t).String() }

// FromDuration converts a time.Duration to a simulated Time.
func FromDuration(d time.Duration) Time { return Time(d) }

// FromSeconds converts floating-point seconds to a simulated Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// BitRate is a transmission rate in bits per second.
type BitRate float64

// Common rates.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
)

// String formats the rate with an appropriate SI suffix.
func (r BitRate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.3gGbps", float64(r/Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.4gMbps", float64(r/Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.4gKbps", float64(r/Kbps))
	default:
		return fmt.Sprintf("%gbps", float64(r))
	}
}

// TxTime reports how long transmitting n bytes takes at rate r.
// A zero or negative rate means an infinitely fast link: zero time.
func (r BitRate) TxTime(n int) Time {
	if r <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return Time(bits / float64(r) * float64(Second))
}

// BytesIn reports how many whole bytes rate r delivers in dt.
func (r BitRate) BytesIn(dt Time) int64 {
	if r <= 0 || dt <= 0 {
		return 0
	}
	return int64(float64(r) / 8 * dt.Seconds())
}

// ByteSize is a size in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	KiB           = 1024 * Byte
	MB            = 1000 * KB
	MiB           = 1024 * KiB
)

// Bits reports the size in bits.
func (s ByteSize) Bits() int64 { return int64(s) * 8 }

// String formats the size with an SI suffix.
func (s ByteSize) String() string {
	switch {
	case s >= MB:
		return fmt.Sprintf("%.4gMB", float64(s)/float64(MB))
	case s >= KB:
		return fmt.Sprintf("%.4gKB", float64(s)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(s))
	}
}

// EthernetMTU is the classic Ethernet maximum transmission unit the
// paper's EF discussion is phrased in ("two to three link MTUs").
const EthernetMTU = 1500

// ParseBitRate parses a human-friendly rate: "1.7M", "900k", "250000".
func ParseBitRate(s string) (BitRate, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad bit rate %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative bit rate %q", s)
	}
	return BitRate(v * mult), nil
}

// Clamp returns v limited to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
