// Package stats provides the summary statistics the measurement
// harness reports: running moments, percentiles, histograms, and
// per-packet delay/jitter collectors for characterizing what the EF
// service actually delivered (the network-level side of the paper's
// quality story: small delay and jitter inside the EF aggregate).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/packet"
	"repro/internal/units"
)

// Summary accumulates running moments plus the full sample set for
// exact percentiles. For the experiment sizes in this repository
// (≤ a few hundred thousand samples) keeping samples is cheap and
// avoids quantile-sketch approximations.
type Summary struct {
	samples []float64
	sum     float64
	sumSq   float64
	sorted  bool
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sum += v
	s.sumSq += v * v
	s.sorted = false
}

// N reports the sample count.
func (s *Summary) N() int { return len(s.samples) }

// Mean reports the sample mean (0 for no samples).
func (s *Summary) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Var reports the population variance.
func (s *Summary) Var() float64 {
	n := float64(len(s.samples))
	if n == 0 {
		return 0
	}
	m := s.Mean()
	v := s.sumSq/n - m*m
	if v < 0 {
		v = 0 // float cancellation guard
	}
	return v
}

// Stddev reports the population standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest sample (0 for none).
func (s *Summary) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max reports the largest sample (0 for none).
func (s *Summary) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

func (s *Summary) sort() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Percentile reports the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks.
func (s *Summary) Percentile(p float64) float64 {
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n {
		return s.samples[n-1]
	}
	return s.samples[lo]*(1-frac) + s.samples[lo+1]*frac
}

// CI95 reports the half-width of the 95% confidence interval of the
// mean under the normal approximation.
func (s *Summary) CI95() float64 {
	n := float64(len(s.samples))
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(n)
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N(), s.Mean(), s.Stddev(), s.Min(), s.Percentile(50), s.Percentile(99), s.Max())
}

// Histogram counts samples into fixed-width bins over [Lo, Hi); out of
// range samples land in the clamping edge bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	count  int
}

// NewHistogram returns a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: bad histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.count++
}

// N reports total samples.
func (h *Histogram) N() int { return h.count }

// Fraction reports the share of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.count)
}

// Render draws a crude text histogram.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	var out strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, b := range h.Bins {
		bar := 0
		if max > 0 {
			bar = b * width / max
		}
		fmt.Fprintf(&out, "%10.4g |%s %d\n", h.Lo+float64(i)*binW, strings.Repeat("#", bar), b)
	}
	return out.String()
}

// DelayCollector is a packet.Handler wrapper that records one-way
// delay (now minus SentAt) and inter-arrival jitter of everything
// passing through it, then forwards to Next.
type DelayCollector struct {
	Clock interface{ Now() units.Time }
	Next  packet.Handler

	// Match restricts measurement to matching packets (everything is
	// still forwarded). nil measures every packet.
	Match func(*packet.Packet) bool

	Delay  Summary // seconds
	Jitter Summary // seconds, |gap - prevGap| (RFC 3550 style, unsmoothed)

	lastArrival units.Time
	lastGap     units.Time
	haveGap     bool
	haveArrival bool
}

// Handle records and forwards p.
func (d *DelayCollector) Handle(p *packet.Packet) {
	if d.Match != nil && !d.Match(p) {
		if d.Next != nil {
			d.Next.Handle(p)
		}
		return
	}
	now := d.Clock.Now()
	if p.SentAt > 0 || p.ID != 0 {
		d.Delay.Add((now - p.SentAt).Seconds())
	}
	if d.haveArrival {
		gap := now - d.lastArrival
		if d.haveGap {
			diff := gap - d.lastGap
			if diff < 0 {
				diff = -diff
			}
			d.Jitter.Add(diff.Seconds())
		}
		d.lastGap = gap
		d.haveGap = true
	}
	d.lastArrival = now
	d.haveArrival = true
	if d.Next != nil {
		d.Next.Handle(p)
	}
}
