package stats

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so the property tests pin
// exact streams without importing the simulator RNG.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(uint64(*g)>>11) / float64(1<<53)
}

// streams the property tests run over: the uniform and heavy-tailed
// shapes the delay sketches see in practice.
func testStreams() map[string][]float64 {
	g := lcg(12345)
	uniform := make([]float64, 20000)
	for i := range uniform {
		uniform[i] = g.next()
	}
	exp := make([]float64, 20000)
	for i := range exp {
		exp[i] = -math.Log(1 - g.next())
	}
	bimodal := make([]float64, 20000)
	for i := range bimodal {
		v := g.next()
		if g.next() < 0.2 {
			v += 10
		}
		bimodal[i] = v
	}
	return map[string][]float64{"uniform": uniform, "exponential": exp, "bimodal": bimodal}
}

// TestMomentsMatchSummary pins the streaming moments against the
// sample-retaining Summary on identical streams: the aggregated-stats
// mode reports Moments where per-flow mode reports Summary, and the
// two must agree to floating-point precision.
func TestMomentsMatchSummary(t *testing.T) {
	for name, xs := range testStreams() {
		var m Moments
		var s Summary
		for _, x := range xs {
			m.Add(x)
			s.Add(x)
		}
		if m.N() != int64(s.N()) {
			t.Errorf("%s: n %d vs %d", name, m.N(), s.N())
		}
		close := func(what string, a, b float64) {
			if math.Abs(a-b) > 1e-9*(1+math.Abs(b)) {
				t.Errorf("%s: %s %g vs exact %g", name, what, a, b)
			}
		}
		close("mean", m.Mean(), s.Mean())
		close("var", m.Var(), s.Var())
		close("stddev", m.Stddev(), s.Stddev())
		close("min", m.Min(), s.Min())
		close("max", m.Max(), s.Max())
	}
}

// TestP2QuantileWithinErrorBounds pins the P² sketch against exact
// percentiles on the reference streams. P² carries no worst-case
// bound, so the tolerance is empirical — 2% of the sample spread —
// and the deterministic streams make the assertion exact-repeatable.
func TestP2QuantileWithinErrorBounds(t *testing.T) {
	for name, xs := range testStreams() {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			sk := NewP2Quantile(p)
			var s Summary
			for _, x := range xs {
				sk.Add(x)
				s.Add(x)
			}
			exact := s.Percentile(p * 100)
			tol := 0.02 * (s.Max() - s.Min())
			if got := sk.Value(); math.Abs(got-exact) > tol {
				t.Errorf("%s p%.0f: sketch %g vs exact %g (tol %g)", name, p*100, got, exact, tol)
			}
		}
	}
}

// TestP2QuantileShortStreams pins the exact-order-statistic fallback
// for streams shorter than the five bootstrap markers.
func TestP2QuantileShortStreams(t *testing.T) {
	sk := NewP2Quantile(0.5)
	if sk.Value() != 0 {
		t.Errorf("empty sketch value = %g", sk.Value())
	}
	sk.Add(3)
	if sk.Value() != 3 {
		t.Errorf("one-sample median = %g, want 3", sk.Value())
	}
	sk.Add(1)
	sk.Add(2)
	if got := sk.Value(); got != 2 {
		t.Errorf("three-sample median = %g, want 2", got)
	}
}

// TestP2QuantileMonotoneStream feeds a sorted stream — the hardest
// case for marker drift — and checks the median lands mid-range.
func TestP2QuantileMonotoneStream(t *testing.T) {
	sk := NewP2Quantile(0.5)
	for i := 0; i < 10001; i++ {
		sk.Add(float64(i))
	}
	if got := sk.Value(); math.Abs(got-5000) > 200 {
		t.Errorf("median of 0..10000 estimated at %g", got)
	}
}
