package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/units"
)

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.N() != 5 || s.Mean() != 3 {
		t.Errorf("n=%d mean=%v", s.N(), s.Mean())
	}
	if math.Abs(s.Var()-2) > 1e-9 {
		t.Errorf("var = %v, want 2", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("min/max: %v %v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stddev() != 0 || s.Percentile(50) != 0 || s.CI95() != 0 {
		t.Error("empty summary must report zeros")
	}
}

func TestPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 0.01 {
		t.Errorf("p50 = %v", got)
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Percentile(99); got < 98 || got > 100 {
		t.Errorf("p99 = %v", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		if len(vals) == 0 {
			return true
		}
		var s Summary
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return s.Percentile(pa) <= s.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAfterSortStillCorrect(t *testing.T) {
	var s Summary
	s.Add(5)
	_ = s.Percentile(50) // forces sort
	s.Add(1)
	if s.Min() != 1 {
		t.Error("sample added after sort lost")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var a, b Summary
	for i := 0; i < 10; i++ {
		a.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		b.Add(float64(i % 3))
	}
	if b.CI95() >= a.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", a.CI95(), b.CI95())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	for i := range h.Bins {
		if h.Bins[i] != 1 {
			t.Errorf("bin %d = %d", i, h.Bins[i])
		}
	}
	h.Add(-5) // clamps low
	h.Add(50) // clamps high
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Error("edge clamping wrong")
	}
	if h.N() != 12 || h.Fraction(0) != 2.0/12 {
		t.Errorf("N=%d frac=%v", h.N(), h.Fraction(0))
	}
	if h.Render(20) == "" {
		t.Error("empty render")
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 10)
}

type fakeClock struct{ now units.Time }

func (c *fakeClock) Now() units.Time { return c.now }

func TestDelayCollector(t *testing.T) {
	clk := &fakeClock{}
	var sink packet.Sink
	d := &DelayCollector{Clock: clk, Next: &sink}
	// Three packets sent at t=0,10ms,20ms arriving with 5,6,8 ms delay.
	arrivals := []units.Time{5, 16, 28}
	sent := []units.Time{0, 10, 20}
	for i := range arrivals {
		clk.now = arrivals[i] * units.Millisecond
		d.Handle(&packet.Packet{ID: uint64(i + 1), SentAt: sent[i] * units.Millisecond, Size: 100})
	}
	if sink.Count != 3 {
		t.Fatal("not forwarded")
	}
	if n := d.Delay.N(); n != 3 {
		t.Fatalf("delay samples = %d", n)
	}
	wantMean := (0.005 + 0.006 + 0.008) / 3
	if math.Abs(d.Delay.Mean()-wantMean) > 1e-9 {
		t.Errorf("delay mean = %v, want %v", d.Delay.Mean(), wantMean)
	}
	// Gaps: 11ms, 12ms -> one jitter sample of 1ms.
	if d.Jitter.N() != 1 || math.Abs(d.Jitter.Mean()-0.001) > 1e-9 {
		t.Errorf("jitter: n=%d mean=%v", d.Jitter.N(), d.Jitter.Mean())
	}
}
