package stats

import "math"

// This file holds the bounded-memory counterparts of Summary: Welford
// streaming moments and the P² quantile sketch. Summary keeps every
// sample for exact percentiles, which is the right trade for a few
// hundred thousand samples; the aggregated-stats mode of the fleet
// scenarios feeds hundreds of millions of per-packet observations
// through a handful of per-class accumulators, so those accumulators
// must be O(1) in memory and allocation-free per observation.

// Moments accumulates count, mean, variance, min and max of a sample
// stream in O(1) space using Welford's recurrence. Against Summary on
// the same stream it agrees to floating-point precision (the moments
// property test pins this); unlike Summary it never retains samples.
// The zero value is ready to use.
type Moments struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (m *Moments) Add(v float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	d := v - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (v - m.mean)
}

// N reports the sample count.
func (m *Moments) N() int64 { return m.n }

// Mean reports the sample mean (0 for no samples).
func (m *Moments) Mean() float64 { return m.mean }

// Var reports the population variance, matching Summary.Var.
func (m *Moments) Var() float64 {
	if m.n == 0 {
		return 0
	}
	v := m.m2 / float64(m.n)
	if v < 0 {
		v = 0 // float cancellation guard
	}
	return v
}

// Stddev reports the population standard deviation.
func (m *Moments) Stddev() float64 { return math.Sqrt(m.Var()) }

// Min reports the smallest sample (0 for none).
func (m *Moments) Min() float64 { return m.min }

// Max reports the largest sample (0 for none).
func (m *Moments) Max() float64 { return m.max }

// P2Quantile estimates one quantile of a sample stream in O(1) space
// with the P² algorithm (Jain & Chlamtac, CACM 1985): five markers
// track the running minimum, the target quantile, the midpoints to
// either side, and the maximum; each observation shifts marker
// positions and adjusts marker heights by a piecewise-parabolic
// interpolation. Add is allocation-free, which is what lets a
// per-class delay sketch sit on the packet delivery hot path. The
// estimate converges to the true quantile as the stream grows; the
// sketch property test bounds its error against exact percentiles on
// reference distributions. The zero value is unusable; call
// NewP2Quantile.
type P2Quantile struct {
	p     float64
	n     int64      // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired marker positions
	dwant [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns a sketch for the p-th quantile, 0 < p < 1.
func NewP2Quantile(p float64) *P2Quantile {
	s := &P2Quantile{}
	s.Init(p)
	return s
}

// Init readies a zero-value sketch for the p-th quantile, 0 < p < 1,
// discarding any prior observations. It exists so aggregates that hold
// many sketches — one per flow of a fleet-scale trace digest — can
// embed them by value instead of paying a pointer and an allocation
// apiece.
func (s *P2Quantile) Init(p float64) {
	if p <= 0 || p >= 1 {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	*s = P2Quantile{p: p}
	s.dwant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
}

// P reports the quantile this sketch targets.
func (s *P2Quantile) P() float64 { return s.p }

// N reports the number of observations.
func (s *P2Quantile) N() int64 { return s.n }

// Add records one observation.
func (s *P2Quantile) Add(v float64) {
	s.n++
	if s.n <= 5 {
		// Insertion-sort the bootstrap observations into the markers.
		i := int(s.n) - 1
		s.q[i] = v
		for i > 0 && s.q[i-1] > s.q[i] {
			s.q[i-1], s.q[i] = s.q[i], s.q[i-1]
			i--
		}
		if s.n == 5 {
			for j := range s.pos {
				s.pos[j] = float64(j + 1)
				s.want[j] = 1 + 4*s.dwant[j]
			}
		}
		return
	}
	// Locate the cell of v, extending the extreme markers if needed.
	var k int
	switch {
	case v < s.q[0]:
		s.q[0] = v
		k = 0
	case v >= s.q[4]:
		s.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.dwant[i]
	}
	// Nudge the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			q := s.parabolic(i, sign)
			if s.q[i-1] < q && q < s.q[i+1] {
				s.q[i] = q
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height adjustment.
func (s *P2Quantile) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback when the parabola leaves the bracket.
func (s *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Value reports the current quantile estimate. Streams shorter than
// five observations fall back to the exact order statistic.
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n <= 5 {
		// Exact quantile of the sorted bootstrap prefix, by nearest rank.
		k := int(s.p * float64(s.n))
		if k >= int(s.n) {
			k = int(s.n) - 1
		}
		return s.q[k]
	}
	return s.q[2]
}
