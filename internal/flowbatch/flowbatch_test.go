package flowbatch

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/link"
	"repro/internal/packet"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// emission is what the comparison tests record at a chain's exit.
type emission struct {
	at       units.Time
	flow     packet.FlowID
	size     int
	frameSeq int
	sentAt   units.Time
}

// recorder is a terminal handler capturing every packet's identity.
type recorder struct {
	sim  *sim.Simulator
	pool *packet.Pool
	got  []emission
}

func (r *recorder) Handle(p *packet.Packet) {
	r.got = append(r.got, emission{r.sim.Now(), p.Flow, p.Size, p.FrameSeq, p.SentAt})
	r.pool.Put(p)
}

// TestPacedScheduleMatchesServer pins the shared schedule to what a
// real server.Paced emits: same instants, sizes and frame metadata.
func TestPacedScheduleMatchesServer(t *testing.T) {
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	sched := PacedSchedule(enc, 0, 0)
	if len(sched.Entries) == 0 {
		t.Fatal("empty schedule")
	}

	s := sim.New(1)
	pool := packet.NewPool()
	rec := &recorder{sim: s, pool: pool}
	srv := &server.Paced{Sim: s, Enc: enc, Flow: 7, Next: rec, Pool: pool}
	srv.Start()
	s.Run()

	if len(rec.got) != len(sched.Entries) {
		t.Fatalf("server sent %d packets, schedule has %d entries", len(rec.got), len(sched.Entries))
	}
	var bytes int64
	for i, e := range sched.Entries {
		g := rec.got[i]
		if g.at != e.At || g.size != e.Size || g.frameSeq != int(e.FrameSeq) {
			t.Fatalf("entry %d: schedule (at=%v size=%d frame=%d) vs server (at=%v size=%d frame=%d)",
				i, e.At, e.Size, e.FrameSeq, g.at, g.size, g.frameSeq)
		}
		bytes += int64(e.Size)
	}
	if bytes != sched.Bytes || bytes != srv.SentBytes {
		t.Errorf("bytes: schedule sum %d, Schedule.Bytes %d, server %d", bytes, sched.Bytes, srv.SentBytes)
	}
}

// TestCachedPacedScheduleShares pins the one-plan-per-encoding
// sharing discipline.
func TestCachedPacedScheduleShares(t *testing.T) {
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	if CachedPacedSchedule(enc) != CachedPacedSchedule(enc) {
		t.Error("cached schedule not shared")
	}
}

// buildChain hand-wires the real access-link + jitter chain a batched
// source folds: link(rate, delay, FIFO) → jitter(max) → next.
func buildChain(s *sim.Simulator, pool *packet.Pool, spec ChainSpec, next packet.Handler) packet.Handler {
	j := &link.Jitter{Sim: s, Max: spec.JitterMax, Next: next}
	l := link.New(s, spec.AccessRate, spec.AccessDelay, queue.NewSingleFIFO(0), j)
	l.Pool = pool
	return l
}

// TestBatchedPacedFoldsChainExactly compares a BatchedPaced source
// against per-flow server-style emissions through real link and
// jitter elements, with a synthetic schedule that includes
// back-to-back same-instant entries — forcing the access link to
// queue, so the busyUntil serialization emulation is exercised, not
// just the idle path. Both simulations share a seed, so the jitter
// draws must line up in global arrival order for the outputs to
// match.
func TestBatchedPacedFoldsChainExactly(t *testing.T) {
	sched := &Schedule{}
	rng := rand.New(rand.NewSource(42))
	var at units.Time
	for i := 0; i < 300; i++ {
		// Clumped arrivals: several entries at the same instant, then a
		// short gap — far denser than the access link drains.
		burst := 1 + rng.Intn(3)
		for j := 0; j < burst; j++ {
			size := 200 + rng.Intn(1300)
			sched.Entries = append(sched.Entries, Entry{
				At: at, Size: size, FrameSeq: int32(i), FragIndex: int32(j), FragCount: int32(burst),
			})
			sched.Bytes += int64(size)
		}
		at += units.Time(rng.Intn(400_000)) // up to 400 µs, ns granular
	}
	// Off-round-number parameters keep cross-flow arrival instants off
	// a shared lattice: exact same-tick ties across flows are where
	// batched fan-out order (flow index) and a real event queue's
	// scheduling order could legitimately differ, and the fold's
	// exactness contract excludes them (see the package comment).
	chain := ChainSpec{AccessRate: 9_700_000, AccessDelay: 500 * units.Microsecond,
		JitterMax: 3 * units.Millisecond}
	const n = 3
	offset := units.Time(1_712_345) // ~1.7 ms

	// Reference: n per-flow chains of real elements, fed by scheduled
	// emissions in the same merged (time, flow) order the batched
	// source produces.
	s1 := sim.New(99)
	pool1 := packet.NewPool()
	ref := &recorder{sim: s1, pool: pool1}
	chains := make([]packet.Handler, n)
	for i := 0; i < n; i++ {
		chains[i] = buildChain(s1, pool1, chain, ref)
	}
	type em struct {
		at   units.Time
		flow int
		e    Entry
	}
	var ems []em
	for i := 0; i < n; i++ {
		for _, e := range sched.Entries {
			ems = append(ems, em{units.Time(int64(i))*offset + e.At, i, e})
		}
	}
	sort.SliceStable(ems, func(a, b int) bool {
		if ems[a].at != ems[b].at {
			return ems[a].at < ems[b].at
		}
		return ems[a].flow < ems[b].flow
	})
	for _, m := range ems {
		m := m
		s1.At(m.at, func() {
			p := pool1.Get()
			p.Flow = 100 + packet.FlowID(m.flow)
			p.Size = m.e.Size
			p.FrameSeq = int(m.e.FrameSeq)
			p.SentAt = s1.Now()
			chains[m.flow].Handle(p)
		})
	}
	s1.Run()

	// Batched: one source, folded chain, same seed.
	s2 := sim.New(99)
	pool2 := packet.NewPool()
	got := &recorder{sim: s2, pool: pool2}
	src := &BatchedPaced{Sim: s2, Sched: sched, N: n, BaseFlow: 100, Offset: offset,
		Chain: chain, Next: []packet.Handler{got}, Pool: pool2}
	src.Start()
	s2.Run()

	if len(got.got) != len(ref.got) {
		t.Fatalf("batched delivered %d packets, reference %d", len(got.got), len(ref.got))
	}
	for i := range ref.got {
		w, g := ref.got[i], got.got[i]
		if w.at != g.at || w.flow != g.flow || w.size != g.size ||
			w.frameSeq != g.frameSeq || w.sentAt != g.sentAt {
			t.Fatalf("packet %d diverged:\nreference %+v\nbatched   %+v", i, w, g)
		}
	}
	if src.TotalSent() != n*len(sched.Entries) {
		t.Errorf("TotalSent = %d, want %d", src.TotalSent(), n*len(sched.Entries))
	}
}

// runBatchedAtWidth runs the clumped-schedule batched fixture on a
// calendar pinned to the given bucket width (0 = adaptive) and
// returns the delivered stream.
func runBatchedAtWidth(sched *Schedule, width units.Time) (*sim.Simulator, []emission) {
	s := sim.NewWithBucketWidth(77, width)
	pool := packet.NewPool()
	got := &recorder{sim: s, pool: pool}
	src := &BatchedPaced{Sim: s, Sched: sched, N: 4, BaseFlow: 200, Offset: 1_712_345,
		Chain: ChainSpec{AccessRate: 9_700_000, AccessDelay: 500 * units.Microsecond,
			JitterMax: 3 * units.Millisecond},
		Next: []packet.Handler{got}, Pool: pool}
	src.Start()
	s.Run()
	return s, got.got
}

// TestBatchedPacedWidthInvariant pins calendar geometry out of the
// results: the same batched simulation run under the adaptive default
// and under pinned widths far finer and far coarser than the traffic
// spacing must deliver byte-identical packet streams — same instants,
// flows, sizes and jitter draws (seeded RNG consumed in the same
// event order). Bucket width is a performance knob only.
func TestBatchedPacedWidthInvariant(t *testing.T) {
	sched := &Schedule{}
	rng := rand.New(rand.NewSource(9))
	var at units.Time
	for i := 0; i < 800; i++ {
		burst := 1 + rng.Intn(3)
		for j := 0; j < burst; j++ {
			size := 200 + rng.Intn(1300)
			sched.Entries = append(sched.Entries, Entry{
				At: at, Size: size, FrameSeq: int32(i), FragIndex: int32(j), FragCount: int32(burst),
			})
			sched.Bytes += int64(size)
		}
		at += units.Time(rng.Intn(400_000))
	}

	s, adaptive := runBatchedAtWidth(sched, 0)
	if len(adaptive) == 0 {
		t.Fatal("adaptive run delivered nothing")
	}
	if qs := s.QueueStats(); qs.Rebases == 0 {
		t.Fatalf("adaptive run never rebased — fixture too short to exercise the policy: %+v", qs)
	}
	for _, width := range []units.Time{units.Microsecond, 4 * units.Millisecond} {
		_, pinned := runBatchedAtWidth(sched, width)
		if len(pinned) != len(adaptive) {
			t.Fatalf("width %v delivered %d packets, adaptive %d", width, len(pinned), len(adaptive))
		}
		for i := range adaptive {
			if adaptive[i] != pinned[i] {
				t.Fatalf("width %v: packet %d diverged:\nadaptive %+v\npinned   %+v",
					width, i, adaptive[i], pinned[i])
			}
		}
	}
}

// TestBatchedCBREquivalence pins BatchedCBR with Phase 0 to N plain
// CBR sources started in flow-id order: same ticks, same per-flow
// packets, same Until cutoff.
func TestBatchedCBREquivalence(t *testing.T) {
	const n = 4
	rate := 2 * units.Mbps
	until := 500 * units.Millisecond

	s1 := sim.New(5)
	pool1 := packet.NewPool()
	ref := &recorder{sim: s1, pool: pool1}
	for i := 0; i < n; i++ {
		src := &traffic.CBR{Sim: s1, Rate: rate, Size: 1200, Flow: 50 + packet.FlowID(i),
			DSCP: packet.AF12, Next: ref, Pool: pool1, Until: until}
		src.Start()
	}
	s1.Run()

	s2 := sim.New(5)
	pool2 := packet.NewPool()
	got := &recorder{sim: s2, pool: pool2}
	src := &BatchedCBR{Sim: s2, Rate: rate, Size: 1200, BaseFlow: 50, DSCP: packet.AF12,
		N: n, Next: got, Pool: pool2, Until: until}
	src.Start()
	s2.Run()

	if len(got.got) != len(ref.got) || len(got.got) == 0 {
		t.Fatalf("batched emitted %d packets, reference %d", len(got.got), len(ref.got))
	}
	for i := range ref.got {
		if ref.got[i] != got.got[i] {
			t.Fatalf("packet %d diverged:\nreference %+v\nbatched   %+v", i, ref.got[i], got.got[i])
		}
	}
	if src.Sent != len(got.got) {
		t.Errorf("Sent = %d, want %d", src.Sent, len(got.got))
	}
}

// TestFlowHeapOrdering property-tests the index heap: pops come out in
// (key, index) order under interleaved pushes and key advances.
func TestFlowHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]units.Time, 64)
	h := flowHeap{idx: make([]int32, 0, len(keys)), key: keys}
	for i := range keys {
		keys[i] = units.Time(rng.Intn(1000))
		h.push(int32(i))
	}
	var prevKey units.Time = -1
	var prevIdx int32 = -1
	for h.len() > 0 {
		i := h.min()
		if keys[i] < prevKey || (keys[i] == prevKey && i < prevIdx) {
			t.Fatalf("heap order violated: (%d,%d) after (%d,%d)", keys[i], i, prevKey, prevIdx)
		}
		prevKey, prevIdx = keys[i], i
		if rng.Intn(3) == 0 {
			// Advance the root's key in place, as the arrival walk does.
			keys[i] += units.Time(rng.Intn(500))
			h.fixMin()
			prevKey, prevIdx = -1, -1
			continue
		}
		h.pop()
	}
}

// TestTimeRingFIFO pins the drawn-ahead ring's FIFO behaviour and its
// slot reuse (no growth once drained).
func TestTimeRingFIFO(t *testing.T) {
	var r timeRing
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			r.Push(units.Time(round*10 + i))
		}
		for i := 0; i < 3; i++ {
			if got := r.Pop(); got != units.Time(round*10+i) {
				t.Fatalf("round %d pop %d = %v", round, i, got)
			}
		}
	}
	if r.Len() != 0 {
		t.Errorf("ring not drained: %d", r.Len())
	}
	if cap(r.items) > 8 {
		t.Errorf("ring grew to %d slots for occupancy 3", cap(r.items))
	}

	// Sustained backlog: the ring never fully drains, so the consumed
	// prefix must be compacted away — memory stays proportional to
	// occupancy, not to total pushes.
	var b timeRing
	next, want := 0, 0
	for i := 0; i < 3; i++ {
		b.Push(units.Time(next))
		next++
	}
	for i := 0; i < 10000; i++ {
		b.Push(units.Time(next))
		next++
		if got := b.Pop(); got != units.Time(want) {
			t.Fatalf("backlogged pop %d = %v, want %v", i, got, want)
		}
		want++
	}
	if b.Len() != 3 {
		t.Errorf("backlogged ring length %d, want 3", b.Len())
	}
	if cap(b.items) > 128 {
		t.Errorf("backlogged ring grew to %d slots for occupancy 3", cap(b.items))
	}
}
