// Package flowbatch batches identical paced flows: one representative
// flow's emission schedule, computed once per equivalence class (same
// encoding, message size, pacing spread) and cached, fans out as N
// phase-offset virtual flows. Each virtual flow keeps its own flow id,
// its own policer, its own client and its own per-flow statistics —
// downstream elements cannot tell a batched source from N real
// servers — but the source-side work (fragmenting every frame,
// scheduling every frame closure, running a private access link and
// jitter element per flow) is paid once instead of N times.
//
// # Exactness
//
// BatchedPaced folds the per-flow access link and campus jitter of the
// multi-flow topology into the source and reproduces them exactly:
//
//   - the access link is emulated by per-flow serialization state
//     (txStart = max(emission, busyUntil)), which is bit-identical to a
//     dedicated link.Link that only this flow crosses;
//   - the jitter element's uniform draw is taken from the simulator's
//     root RNG in global arrival order across all virtual flows — the
//     same stream positions the N real link.Jitter elements would have
//     consumed — and the order-preserving clamp is applied per flow.
//
// Batching is therefore exact (byte-identical figures, delivered and
// dropped counts) when the batched flows' jitter elements are the only
// consumers of the simulator's root RNG stream during the run (forks
// taken at build time do not matter) and no two same-instant events
// race across virtual flows. The multi-flow topology satisfies both;
// internal/experiment's differential harness pins the equivalence at
// N ≤ 8 on the nflow grid and through N = 32 on the wide
// configuration (empirically exact through N = 96). At larger N the
// phase-offset lattice eventually realizes an exact same-instant
// cross-flow coincidence; the fan-out resolves it in deterministic
// (time, flow) order where a real event queue resolves it in
// scheduling-sequence order, so past that point a batched run is a
// statistically equivalent sample of the same chaotic saturated
// system rather than a bit-equal one. N = 128 is the first wide grid
// point where that divergence is realized under the default seed —
// TestBatchedWideTieDivergence in internal/experiment pins both
// sides of the boundary as a regression witness. Batching is approximate for
// topologies where batched flows share a pre-policer queue with other
// traffic, and unsupported for random (Poisson, on-off) sources,
// whose per-flow RNG forks cannot be reproduced by one shared stream.
//
// # Mixtures
//
// BatchedMixture generalizes the fan-out from one homogeneous
// population to K equivalence classes (MixtureClass): each class
// brings its own cached schedule, access chain, phase and stagger,
// and fans out as its own set of phase-offset virtual flows, with
// global flow indices laid out class-major. One arrival wheel and one
// delivery wheel (flowWheel, a calendar of time buckets over flow
// indices — O(1) amortized where a binary heap pays a cache-hostile
// O(log N) sift) interleave the classes in exact global (time, flow)
// order, so the jitter stream is drawn at exactly the positions K
// separate per-flow populations would consume and the exactness
// contract above — and both the batcheq and shardeq differential
// harnesses — extend to mixtures unchanged. A single class with zero
// phase is packet-for-packet identical to BatchedPaced.
// TruncateSchedule caps a class's schedule to a clip prefix for
// fleet-scale sweeps. Sharded execution reuses the shift-invariance
// argument per class: ShardArrivals carries per-flow base-sequence
// indirection (Bases) and JitterSequencer per-flow jitter bounds
// (JitterMaxOf), so one border replay serves heterogeneous shards.
package flowbatch

import (
	"fmt"
	"sync"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
	"repro/internal/video"
)

// Entry is one packet of the representative flow's emission plan.
type Entry struct {
	At        units.Time // emission offset from the flow's start
	Size      int        // bytes on the wire (payload + UDP/IP header)
	FrameSeq  int32
	FragIndex int32
	FragCount int32
}

// Schedule is the complete emission plan of one representative paced
// flow: every fragment server.Paced would send, with the same sizes
// and the same integer pacing arithmetic, precomputed so N virtual
// flows can share it.
type Schedule struct {
	Entries []Entry
	Bytes   int64 // total wire bytes per flow
}

// PacedSchedule computes the emission plan of a server.Paced streaming
// enc: frame i starts at i*FrameInterval, its fragments spread across
// paceSpread of the interval with the exact integer arithmetic the
// server uses. msgSize <= 0 means one MTU's worth of payload;
// paceSpread <= 0 means the server's 0.95 default. Spreads above 1
// panic, as they do in server.Paced.Start.
func PacedSchedule(enc *video.Encoding, msgSize int, paceSpread float64) *Schedule {
	if msgSize <= 0 {
		msgSize = server.MaxUDPPayload
	}
	if paceSpread <= 0 {
		paceSpread = 0.95
	}
	if paceSpread > 1 {
		panic("flowbatch: paceSpread > 1 would overlap adjacent frames' sends")
	}
	interval := video.FrameInterval()
	spread := units.Time(float64(interval) * paceSpread)
	sched := &Schedule{}
	for i := range enc.Frames {
		size := enc.Frames[i].Size
		frags := (size + msgSize - 1) / msgSize
		if frags == 0 {
			frags = 1
		}
		frameAt := units.Time(int64(i)) * interval
		for j := 0; j < frags; j++ {
			payload := msgSize
			if j == frags-1 {
				payload = size - (frags-1)*msgSize
			}
			var at units.Time
			if frags > 1 {
				at = units.Time(int64(spread) * int64(j) / int64(frags))
			}
			wire := payload + server.UDPHeader
			sched.Entries = append(sched.Entries, Entry{
				At: frameAt + at, Size: wire,
				FrameSeq: int32(i), FragIndex: int32(j), FragCount: int32(frags),
			})
			sched.Bytes += int64(wire)
		}
	}
	return sched
}

// schedCache memoizes default-parameter schedules per encoding, the
// same sharing discipline video.CachedCBR applies to encodings: every
// grid point of a sweep reuses one plan.
var schedCache sync.Map // *video.Encoding -> *Schedule

// CachedPacedSchedule returns the shared default-parameter schedule
// for enc, computing it on first use.
func CachedPacedSchedule(enc *video.Encoding) *Schedule {
	if s, ok := schedCache.Load(enc); ok {
		return s.(*Schedule)
	}
	s := PacedSchedule(enc, 0, 0)
	actual, _ := schedCache.LoadOrStore(enc, s)
	return actual.(*Schedule)
}

// ChainSpec is the deterministic pre-policer path folded into a
// BatchedPaced source: a dedicated access link (serialization at
// AccessRate plus AccessDelay propagation) followed by an
// order-preserving uniform jitter element bounded by JitterMax. A zero
// AccessRate means an infinitely fast access link; a zero JitterMax
// draws nothing from the RNG, exactly like link.Jitter.
type ChainSpec struct {
	AccessRate  units.BitRate
	AccessDelay units.Time
	JitterMax   units.Time
}

// flowHeap is a binary min-heap of virtual-flow indices ordered by an
// external key slice, ties broken by index so same-instant fan-out is
// deterministic.
type flowHeap struct {
	idx []int32
	key []units.Time
}

func (h *flowHeap) len() int   { return len(h.idx) }
func (h *flowHeap) min() int32 { return h.idx[0] }

func (h *flowHeap) less(a, b int32) bool {
	if h.key[a] != h.key[b] {
		return h.key[a] < h.key[b]
	}
	return a < b
}

func (h *flowHeap) push(i int32) {
	h.idx = append(h.idx, i)
	c := len(h.idx) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !h.less(h.idx[c], h.idx[p]) {
			break
		}
		h.idx[c], h.idx[p] = h.idx[p], h.idx[c]
		c = p
	}
}

// fixMin restores heap order after the root's key changed.
func (h *flowHeap) fixMin() { h.siftDown(0) }

func (h *flowHeap) pop() int32 {
	top := h.idx[0]
	last := len(h.idx) - 1
	h.idx[0] = h.idx[last]
	h.idx = h.idx[:last]
	if len(h.idx) > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *flowHeap) siftDown(i int) {
	n := len(h.idx)
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(h.idx[l], h.idx[s]) {
			s = l
		}
		if r < n && h.less(h.idx[r], h.idx[s]) {
			s = r
		}
		if s == i {
			return
		}
		h.idx[i], h.idx[s] = h.idx[s], h.idx[i]
		i = s
	}
}

// timeRing is a FIFO of timestamps on a compacting slice — the
// packet.Ring pattern, holding the drawn-but-undelivered jitter
// delivery times of one virtual flow. Steady-state push/pop never
// allocates.
type timeRing struct {
	items []units.Time
	head  int
}

func (r *timeRing) Len() int { return len(r.items) - r.head }

func (r *timeRing) Push(t units.Time) {
	if r.head == len(r.items) {
		r.items = r.items[:0]
		r.head = 0
	}
	r.items = append(r.items, t)
}

func (r *timeRing) Peek() units.Time { return r.items[r.head] }

func (r *timeRing) Pop() units.Time {
	t := r.items[r.head]
	r.head++
	if r.head == len(r.items) {
		r.items = r.items[:0]
		r.head = 0
	} else if r.head >= 32 && r.head*2 >= len(r.items) {
		// Compact the consumed prefix once it dominates, so a ring that
		// never fully drains still keeps memory proportional to
		// occupancy, not to total packets pushed.
		n := copy(r.items, r.items[r.head:])
		r.items = r.items[:n]
		r.head = 0
	}
	return t
}

// BatchedPaced streams one shared Schedule as N virtual paced flows.
// Flow i starts at Start time + i*Offset, carries flow id BaseFlow+i,
// and delivers into Next[i] (or Next[0] when one shared next hop is
// given). The folded ChainSpec stands in for the per-flow access link
// and jitter elements; see the package comment for when the fold is
// exact.
//
// Two pre-bound Timers drive the whole fan-out: an arrival timer that
// walks the merged (per-flow serialized) arrival sequence, drawing
// each packet's jitter at its arrival instant, and a delivery timer
// that hands materialized packets to the per-flow next hops at their
// jittered times. Steady-state emission allocates nothing: packets
// come from Pool, timestamps ride preallocated heaps and rings, and
// the simulator recycles both timer events.
type BatchedPaced struct {
	Sim      *sim.Simulator
	Sched    *Schedule
	N        int
	BaseFlow packet.FlowID
	Offset   units.Time // start stagger between consecutive virtual flows
	Chain    ChainSpec
	Next     []packet.Handler // per-virtual-flow next hop; a single entry is shared
	Pool     *packet.Pool

	// Tap, when set, receives one LinkDeliver event per packet as it
	// leaves the folded chain — the observable the real chain's last
	// element would have emitted, with the virtual flow id preserved.
	Tap ptrace.Tap
	Hop ptrace.HopID

	// Per-virtual-flow emission counters (delivery-ordered).
	Sent      []int
	SentBytes []int64

	start        []units.Time
	drawn        []int // entries whose jitter has been drawn
	delivered    []int // entries handed to Next
	busyUntil    []units.Time
	lastDelivery []units.Time
	nextArr      []units.Time
	nextDel      []units.Time
	pending      []timeRing

	arrHeap flowHeap
	delHeap flowHeap

	arrive  sim.Timer
	deliver sim.Timer
}

// arriveTimer and deliverTimer give the source two Fire methods
// without per-schedule closures (the link.Link pattern).
type (
	arriveTimer  BatchedPaced
	deliverTimer BatchedPaced
)

// Fire advances the merged arrival sequence.
func (t *arriveTimer) Fire(now units.Time) { (*BatchedPaced)(t).processArrivals(now) }

// Fire hands due packets to their virtual flows' next hops.
func (t *deliverTimer) Fire(now units.Time) { (*BatchedPaced)(t).deliverDue(now) }

// Start schedules the fan-out. Flow 0's first packet follows the same
// chain timing a freshly started server.Paced would produce.
func (s *BatchedPaced) Start() {
	if s.N <= 0 || s.Sched == nil || len(s.Sched.Entries) == 0 {
		return
	}
	if len(s.Next) != s.N && len(s.Next) != 1 {
		panic(fmt.Sprintf("flowbatch: %d next hops for %d virtual flows (want N or 1)", len(s.Next), s.N))
	}
	n := s.N
	s.Sent = make([]int, n)
	s.SentBytes = make([]int64, n)
	s.start = make([]units.Time, n)
	s.drawn = make([]int, n)
	s.delivered = make([]int, n)
	s.busyUntil = make([]units.Time, n)
	s.lastDelivery = make([]units.Time, n)
	s.nextArr = make([]units.Time, n)
	s.nextDel = make([]units.Time, n)
	s.pending = make([]timeRing, n)
	s.arrHeap = flowHeap{idx: make([]int32, 0, n), key: s.nextArr}
	s.delHeap = flowHeap{idx: make([]int32, 0, n), key: s.nextDel}
	s.arrive = (*arriveTimer)(s)
	s.deliver = (*deliverTimer)(s)
	now := s.Sim.Now()
	for i := 0; i < n; i++ {
		s.start[i] = now + units.Time(int64(i))*s.Offset
		s.computeArrival(i)
		s.arrHeap.push(int32(i))
	}
	s.Sim.AtTimer(s.nextArr[s.arrHeap.min()], s.arrive)
}

// computeArrival advances flow i's access-link emulation to its next
// undrawn entry: serialization starts at the emission instant or when
// the link frees up, whichever is later — exactly a dedicated
// link.Link's FIFO.
func (s *BatchedPaced) computeArrival(i int) {
	e := &s.Sched.Entries[s.drawn[i]]
	txStart := s.start[i] + e.At
	if s.busyUntil[i] > txStart {
		txStart = s.busyUntil[i]
	}
	done := txStart + s.Chain.AccessRate.TxTime(e.Size)
	s.busyUntil[i] = done
	s.nextArr[i] = done + s.Chain.AccessDelay
}

// processArrivals draws jitter for every virtual-flow packet arriving
// now, in (time, flow) order — the same root-RNG consumption order N
// real jitter elements would produce — and schedules each packet's
// delivery at its jittered instant.
func (s *BatchedPaced) processArrivals(now units.Time) {
	for s.arrHeap.len() > 0 {
		i := s.arrHeap.min()
		a := s.nextArr[i]
		if a > now {
			break
		}
		// Uniform draw plus order-preserving clamp: link.Jitter.Handle,
		// with the element's state held per virtual flow.
		t := a
		if s.Chain.JitterMax > 0 {
			t = a + units.Time(s.Sim.RNG().Float64()*float64(s.Chain.JitterMax))
		}
		if t < s.lastDelivery[i] {
			t = s.lastDelivery[i]
		}
		s.lastDelivery[i] = t
		if s.pending[i].Len() == 0 {
			s.nextDel[i] = t
			s.delHeap.push(i)
		}
		s.pending[i].Push(t)
		s.Sim.AtTimer(t, s.deliver)
		s.drawn[i]++
		if s.drawn[i] < len(s.Sched.Entries) {
			s.computeArrival(int(i))
			s.arrHeap.fixMin()
		} else {
			s.arrHeap.pop()
		}
	}
	if s.arrHeap.len() > 0 {
		s.Sim.AtTimer(s.nextArr[s.arrHeap.min()], s.arrive)
	}
}

// deliverDue materializes and forwards every packet whose jittered
// delivery instant is now, in (time, flow) order.
func (s *BatchedPaced) deliverDue(now units.Time) {
	for s.delHeap.len() > 0 {
		i := s.delHeap.min()
		if s.nextDel[i] > now {
			break
		}
		s.pending[i].Pop()
		k := s.delivered[i]
		s.delivered[i]++
		e := &s.Sched.Entries[k]
		p := s.Pool.Get()
		p.ID = traffic.NewPacketID()
		p.Flow = s.BaseFlow + packet.FlowID(i)
		p.Proto = packet.UDP
		p.Size = e.Size
		p.FrameSeq, p.FragIndex, p.FragCount = int(e.FrameSeq), int(e.FragIndex), int(e.FragCount)
		p.SentAt = s.start[i] + e.At
		s.Sent[i]++
		s.SentBytes[i] += int64(e.Size)
		if s.Tap != nil {
			s.Tap.Emit(ptrace.Event{
				Kind: ptrace.LinkDeliver, Hop: s.Hop, Flow: p.Flow, PktID: p.ID,
				Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: e.FrameSeq,
			})
		}
		next := s.Next[0]
		if len(s.Next) > 1 {
			next = s.Next[i]
		}
		next.Handle(p)
		if s.pending[i].Len() > 0 {
			s.nextDel[i] = s.pending[i].Peek()
			s.delHeap.fixMin()
		} else {
			s.delHeap.pop()
		}
	}
}

// TotalSent sums the per-virtual-flow emission counters.
func (s *BatchedPaced) TotalSent() int {
	total := 0
	for _, n := range s.Sent {
		total += n
	}
	return total
}

// BatchedCBR fans one constant-bit-rate emission pattern out as N
// phase-offset virtual flows carrying ids BaseFlow..BaseFlow+N-1, all
// feeding Next directly — the batched form of N identical traffic.CBR
// declarations. With Phase 0 it is packet-for-packet identical to N
// CBR sources started in flow-id order (same tick, same emission
// order, same id counter); a non-zero Phase staggers the virtual
// flows' starts, which plain CBR sources cannot express.
type BatchedCBR struct {
	Sim      *sim.Simulator
	Rate     units.BitRate
	Size     int
	BaseFlow packet.FlowID
	DSCP     packet.DSCP
	N        int
	Phase    units.Time // start stagger between consecutive virtual flows
	Next     packet.Handler
	Pool     *packet.Pool
	Until    units.Time // stop time; 0 = run to horizon

	Sent int

	nextAt []units.Time
	heap   flowHeap
	timer  sim.Timer
}

// batchedCBRTimer is the pointer-conversion Timer of a BatchedCBR.
type batchedCBRTimer BatchedCBR

// Fire emits every virtual flow due now.
func (t *batchedCBRTimer) Fire(now units.Time) { (*BatchedCBR)(t).emitDue(now) }

// Start schedules the first emissions.
func (c *BatchedCBR) Start() {
	if c.N <= 0 {
		return
	}
	if c.Size <= 0 {
		c.Size = units.EthernetMTU
	}
	c.nextAt = make([]units.Time, c.N)
	c.heap = flowHeap{idx: make([]int32, 0, c.N), key: c.nextAt}
	c.timer = (*batchedCBRTimer)(c)
	now := c.Sim.Now()
	for i := 0; i < c.N; i++ {
		c.nextAt[i] = now + units.Time(int64(i))*c.Phase
		c.heap.push(int32(i))
	}
	c.Sim.AtTimer(c.nextAt[c.heap.min()], c.timer)
}

func (c *BatchedCBR) emitDue(now units.Time) {
	step := c.Rate.TxTime(c.Size)
	for c.heap.len() > 0 {
		i := c.heap.min()
		if c.nextAt[i] > now {
			break
		}
		if c.Until > 0 && now >= c.Until {
			c.heap.pop()
			continue
		}
		p := c.Pool.Get()
		p.ID, p.Flow, p.Size = traffic.NewPacketID(), c.BaseFlow+packet.FlowID(i), c.Size
		p.DSCP, p.SentAt, p.FrameSeq = c.DSCP, now, -1
		c.Sent++
		c.Next.Handle(p)
		c.nextAt[i] = now + step
		c.heap.fixMin()
	}
	if c.heap.len() > 0 {
		c.Sim.AtTimer(c.nextAt[c.heap.min()], c.timer)
	}
}
