package flowbatch

import (
	"repro/internal/units"
)

// flowWheel orders virtual-flow indices by (key[flow], flow) — the
// same selection rule as flowHeap — on a calendar of time buckets
// instead of a binary heap. At six-figure flow counts the heap's
// O(log N) sift touches log N random key-array cache lines per
// operation and dominates the mixture fan-out's profile; the wheel
// makes every operation O(1) amortized: a push appends to the bucket
// covering its key, the minimum is the (key, flow)-least entry of the
// first non-empty bucket, and the cursor only moves forward. Entries
// beyond the bucket window park in an overflow list that is
// redistributed when the window drains (the sim calendar's design,
// applied to flow indices with an external key array).
//
// The wheel is a pure data-structure swap: selection order is
// identical to flowHeap's, so the fan-out's emission order — and
// every byte downstream — is unchanged (the mixture differential
// tests pin this).
type flowWheel struct {
	key   []units.Time // external key array (nextArr or nextDel)
	width units.Time
	base  units.Time // start instant of bucket 0
	cur   int        // first possibly non-empty bucket

	buckets [][]int32
	over    []int32 // entries with key >= base + window
	inBuck  int     // live entries across buckets

	cachedMin    int32 // -1 when invalid
	cachedBucket int
	cachedSlot   int
}

const (
	wheelMinBuckets = 1 << 8
	wheelMaxBuckets = 1 << 18
	wheelMinWidth   = 500 * units.Nanosecond
	wheelMaxWidth   = 100 * units.Microsecond
)

// newFlowWheel sizes the bucket lattice for an expected total of
// events spread over span: width ~ mean event spacing, clamped so the
// window stays wide enough for per-flow re-push distances and narrow
// enough that bucket scans stay short. The bucket count scales with
// the flow population — roughly every flow keeps one resident entry,
// so ~2 buckets per flow holds per-bucket occupancy (and with it the
// random key-array touches per pop) near one at any N.
func newFlowWheel(key []units.Time, events int64, span units.Time) flowWheel {
	width := wheelMaxWidth
	if events > 0 {
		if w := span / units.Time(events); w < width {
			width = w
		}
	}
	if width < wheelMinWidth {
		width = wheelMinWidth
	}
	n := wheelMinBuckets
	for n < wheelMaxBuckets && n < 2*len(key) {
		n <<= 1
	}
	return flowWheel{key: key, width: width, buckets: make([][]int32, n), cachedMin: -1}
}

func (w *flowWheel) len() int { return w.inBuck + len(w.over) }

func (w *flowWheel) window() units.Time { return w.width * units.Time(len(w.buckets)) }

// push inserts flow g keyed at key[g].
func (w *flowWheel) push(g int32) {
	t := w.key[g]
	if w.len() == 0 {
		w.base = (t / w.width) * w.width
		w.cur = 0
	} else if t < w.base {
		// A key before the window start (rare: a delivery scheduled
		// while the wheel had rebased past it). Spill everything,
		// rebase down, and re-file whatever the lowered window now
		// covers — overflow must never hold an in-window key, or min()
		// would answer from the buckets and miss it.
		w.spillAll()
		w.base = (t / w.width) * w.width
		w.cur = 0
		w.redistribute()
	}
	b := int((t - w.base) / w.width)
	if b >= len(w.buckets) {
		w.over = append(w.over, g)
		return
	}
	w.buckets[b] = append(w.buckets[b], g)
	w.inBuck++
	if b < w.cur {
		w.cur = b
	}
	if m := w.cachedMin; m >= 0 && (t < w.key[m] || (t == w.key[m] && g < m)) {
		w.cachedMin = -1
	}
}

// min returns the flow with the least (key, flow); the wheel must be
// non-empty. All keys in an earlier bucket precede all keys in a
// later one, so the global minimum is the least entry of the first
// non-empty bucket.
func (w *flowWheel) min() int32 {
	if w.cachedMin >= 0 {
		return w.cachedMin
	}
	for {
		for b := w.cur; b < len(w.buckets); b++ {
			bucket := w.buckets[b]
			if len(bucket) == 0 {
				w.cur = b + 1
				continue
			}
			best, slot := bucket[0], 0
			for i := 1; i < len(bucket); i++ {
				g := bucket[i]
				if w.key[g] < w.key[best] || (w.key[g] == w.key[best] && g < best) {
					best, slot = g, i
				}
			}
			w.cur = b
			w.cachedMin, w.cachedBucket, w.cachedSlot = best, b, slot
			return best
		}
		w.rebase()
	}
}

// pop removes and returns the minimum.
func (w *flowWheel) pop() int32 {
	g := w.min()
	bucket := w.buckets[w.cachedBucket]
	last := len(bucket) - 1
	bucket[w.cachedSlot] = bucket[last]
	w.buckets[w.cachedBucket] = bucket[:last]
	w.inBuck--
	w.cachedMin = -1
	return g
}

// fixMin re-files the current minimum after its key increased.
func (w *flowWheel) fixMin() {
	w.push(w.pop())
}

// rebase advances the window to the overflow's minimum key and pulls
// every overflow entry now inside the window into its bucket. Only
// called with all buckets empty.
func (w *flowWheel) rebase() {
	minT := w.key[w.over[0]]
	for _, g := range w.over[1:] {
		if w.key[g] < minT {
			minT = w.key[g]
		}
	}
	w.base = (minT / w.width) * w.width
	w.cur = 0
	w.redistribute()
}

// redistribute pulls every overflow entry inside the current window
// into its bucket, restoring the invariant that overflow keys are all
// at or beyond the window end.
func (w *flowWheel) redistribute() {
	win := w.window()
	kept := w.over[:0]
	for _, g := range w.over {
		if d := w.key[g] - w.base; d < win {
			w.buckets[d/w.width] = append(w.buckets[d/w.width], g)
			w.inBuck++
		} else {
			kept = append(kept, g)
		}
	}
	w.over = kept
}

// spillAll moves every bucketed entry to overflow (rare rebase-down
// path).
func (w *flowWheel) spillAll() {
	for b := w.cur; b < len(w.buckets); b++ {
		if len(w.buckets[b]) > 0 {
			w.over = append(w.over, w.buckets[b]...)
			w.buckets[b] = w.buckets[b][:0]
		}
	}
	w.inBuck = 0
	w.cachedMin = -1
}
