package flowbatch

import (
	"math/bits"
	"slices"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
)

// This file splits BatchedPaced into the three stages of the sharded
// execution mode (see internal/topology's sharded runs):
//
//   - ShardArrivals: the RNG-free arrival walk (per-flow access-link
//     serialization) over a subset of the virtual flows, advanced
//     directly in conservative lookahead windows;
//   - JitterSequencer: the single serialization point that merges the
//     shards' arrival streams back into exact global (time, flow)
//     order, draws each packet's jitter from the root RNG at exactly
//     the stream position the serial run would have used, and releases
//     deliveries once the lookahead frontier proves them final;
//   - BatchedPaced.InitReplay/Inject: materialization of each
//     delivery on the border simulator, at the delivery instant, in
//     the exact order the sequencer released them.
//
// The decomposition is exact because the arrival walk of one virtual
// flow depends only on that flow's own serialization state (pure
// integer arithmetic — no RNG, no cross-flow coupling), while every
// RNG draw and every downstream side effect happens on the border in
// serial order. Sharding therefore moves work, not decisions.
//
// The arrival walk goes further than relocating computeArrival: every
// virtual flow plays the same shared schedule through the same chain
// parameters, and the serialization recurrence is shift-invariant —
// max(a+c, b+c) = max(a, b)+c, so a flow started at s produces
// arrival k at exactly s + base[k], where base is the walk of a flow
// started at 0. BaseArrivals computes that base sequence once; a
// shard then emits nothing but shifted copies of one array, with no
// per-arrival arithmetic and no event queue at all.
//
// Ordering inside a window is established by sorting, not by a merge
// heap. Each stage's keys are unique total orders — at most one
// arrival per (time, flow) because per-flow arrival times strictly
// increase, and deliveries carry a per-flow draw index as the final
// tie-break — so a plain unstable sort of the window's batch yields
// the exact global sequence. On contiguous 16-byte records with an
// inlined comparator this is several times cheaper than the log-N
// sift per element that a merge heap pays (the heap was the top
// profile entry at N=512), and the lookahead window is purely the
// batching grain.

// Arrival is one packet of one virtual flow leaving its folded access
// chain: entry Entry of the shared schedule, owned by global virtual
// flow Flow, arriving at the jitter element at At.
type Arrival struct {
	At    units.Time
	Flow  int32
	Entry int32
}

// Delivery is one packet whose jittered delivery instant is final: no
// arrival still unprocessed anywhere can deliver at or before it.
// Deliveries are released in exact global (time, flow) order.
type Delivery struct {
	At    units.Time
	Flow  int32
	Entry int32
}

// BaseArrivals walks one virtual flow's access-chain serialization
// (BatchedPaced.computeArrival with start 0) over the whole schedule
// and returns the arrival instant of every entry. Per-flow arrival
// times are strictly increasing (serialization time is positive), and
// a flow started at s arrives at s + base[k] — the shift-invariance
// every sharded walk relies on.
func BaseArrivals(sched *Schedule, chain ChainSpec) []units.Time {
	if sched == nil {
		return nil
	}
	base := make([]units.Time, len(sched.Entries))
	var busy units.Time
	for k := range sched.Entries {
		e := &sched.Entries[k]
		tx := e.At
		if busy > tx {
			tx = busy
		}
		busy = tx + chain.AccessRate.TxTime(e.Size)
		base[k] = busy + chain.AccessDelay
	}
	return base
}

// ShardArrivals generates the merged arrival sequence of a subset of
// a BatchedPaced's virtual flows, window by window. It is the
// shard-local half of processArrivals: the same per-flow access-link
// serialization (via the shared base sequence), the same (time, flow)
// order — minus the jitter draw, which must happen centrally.
// Arrivals accumulate in Out; the shard worker drains lookahead
// windows with AdvanceTo and hands Out chunks to the sequencer.
type ShardArrivals struct {
	Base    []units.Time // shared arrival offsets (BaseArrivals)
	Flows   []int32      // owned global virtual-flow indices, ascending
	Start   []units.Time // start time per owned flow (parallel to Flows)
	Horizon units.Time   // arrivals after this never fire serially; 0 = unbounded

	// Bases, when set, gives each owned flow its own base sequence
	// (parallel to Flows) — the mixture case, where every class walks
	// its own schedule through its own chain. nil means every owned
	// flow shares Base.
	Bases [][]units.Time

	// Out collects the arrivals of the current window in (time, flow)
	// order. The worker swaps it out after each window.
	Out []Arrival

	// Produced counts arrivals generated so far — the shard-side work
	// metric ShardStats aggregates.
	Produced uint64

	pos     []int32   // next schedule entry per owned flow
	live    []int32   // owned-flow indices not yet exhausted
	scratch []Arrival // radix-sort ping-pong buffer
}

// baseOf reports the base sequence of owned flow loc.
func (sa *ShardArrivals) baseOf(loc int32) []units.Time {
	if sa.Bases != nil {
		return sa.Bases[loc]
	}
	return sa.Base
}

// Init seeds the per-flow walk state.
func (sa *ShardArrivals) Init() {
	n := len(sa.Flows)
	if n == 0 {
		return
	}
	sa.pos = make([]int32, n)
	sa.live = make([]int32, 0, n)
	for i := range sa.Flows {
		base := sa.baseOf(int32(i))
		if len(base) == 0 {
			continue
		}
		first := sa.Start[i] + base[0]
		if sa.Horizon > 0 && first > sa.Horizon {
			continue
		}
		sa.live = append(sa.live, int32(i))
	}
}

// Done reports whether every owned flow's schedule has been walked to
// the end (or past the horizon).
func (sa *ShardArrivals) Done() bool { return len(sa.live) == 0 }

// AdvanceTo appends to Out every arrival strictly before frontier, in
// (time, global flow) order: each live flow contributes a contiguous
// run of its shifted base sequence, and one sort of the window batch
// interleaves the runs. Arrivals past the horizon are never produced:
// the serial run's event loop would never fire them, and per-flow
// arrival times are strictly increasing, so a flow whose next arrival
// passes the horizon is finished.
func (sa *ShardArrivals) AdvanceTo(frontier units.Time) {
	mark := len(sa.Out)
	w := 0
	for _, loc := range sa.live {
		start, flow := sa.Start[loc], sa.Flows[loc]
		base := sa.baseOf(loc)
		n := int32(len(base))
		k := sa.pos[loc]
		for k < n {
			at := start + base[k]
			if sa.Horizon > 0 && at > sa.Horizon {
				k = n
				break
			}
			if at >= frontier {
				break
			}
			sa.Out = append(sa.Out, Arrival{At: at, Flow: flow, Entry: k})
			k++
		}
		sa.pos[loc] = k
		if k < n {
			sa.live[w] = loc // in-place compaction; write index trails read
			w++
		}
	}
	sa.live = sa.live[:w]
	sa.Produced += uint64(len(sa.Out) - mark)
	sa.scratch = sortArrivals(sa.Out[mark:], sa.scratch)
}

// sortArrivals orders one window batch by (time, flow) — a unique key,
// so an unstable sort is exact. The hot path is a stable LSD radix
// sort on the packed key (at − min(at)) << fb | flow, where fb is the
// bit width of the batch's largest flow index — sized per batch so
// six-figure flow counts radix-sort just like small ones, and small
// ones pay no extra passes for headroom they don't use. One window
// spans at most the lookahead width, so the key fits a few bytes and
// the sort is a handful of counting passes over contiguous records
// instead of m·log m branchy comparisons. Returns the scratch buffer
// for reuse.
func sortArrivals(batch []Arrival, scratch []Arrival) []Arrival {
	if len(batch) < radixMinLen {
		slices.SortFunc(batch, compareArrivals)
		return scratch
	}
	minAt, maxAt := batch[0].At, batch[0].At
	var maxFlow int32
	for i := range batch {
		a := &batch[i]
		if a.At < minAt {
			minAt = a.At
		}
		if a.At > maxAt {
			maxAt = a.At
		}
		if a.Flow > maxFlow {
			maxFlow = a.Flow
		}
	}
	fb := bits.Len32(uint32(maxFlow))
	if uint64(maxAt-minAt) >= 1<<(64-fb) {
		slices.SortFunc(batch, compareArrivals)
		return scratch
	}
	if cap(scratch) < len(batch) {
		scratch = make([]Arrival, len(batch))
	}
	scratch = scratch[:len(batch)]
	maxKey := uint64(maxAt-minAt)<<fb | (1<<fb - 1)
	src, dst := batch, scratch
	for shift := 0; maxKey>>shift != 0; shift += 8 {
		var count [256]int
		for i := range src {
			k := uint64(src[i].At-minAt)<<fb | uint64(src[i].Flow)
			count[(k>>shift)&0xff]++
		}
		pos := 0
		for b := range count {
			pos, count[b] = pos+count[b], pos
		}
		for i := range src {
			k := uint64(src[i].At-minAt)<<fb | uint64(src[i].Flow)
			b := (k >> shift) & 0xff
			dst[count[b]] = src[i]
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &batch[0] {
		copy(batch, src)
	}
	return scratch
}

// radixMinLen is the batch size below which the comparator sort's
// lower constant wins over the radix passes.
const radixMinLen = 64

func compareArrivals(a, b Arrival) int {
	if a.At != b.At {
		if a.At < b.At {
			return -1
		}
		return 1
	}
	return int(a.Flow) - int(b.Flow)
}

// pendingDelivery is one drawn-but-unreleased delivery: its (possibly
// clamped) instant, owning flow, and the flow's draw index — the
// unique (at, flow, entry) release key.
type pendingDelivery struct {
	at    units.Time
	flow  int32
	entry int32
}

// JitterSequencer is the serialization point of a sharded batched run.
// It consumes the shards' arrival chunks window by window, merges them
// into exact global (time, flow) order, draws one uniform jitter per
// arrival from the root RNG in that order — the identical stream
// positions the serial BatchedPaced consumes — applies the per-flow
// order-preserving clamp, and releases a delivery once the frontier
// proves nothing can precede it: every arrival still unprocessed is at
// or after the frontier, and jitter and clamping only move times
// later, so any pending delivery strictly before the frontier is
// final. Released deliveries are ordered by one sort of the window's
// finalized batch — the per-flow draw index makes the key unique and
// reproduces the serial per-flow FIFO on same-instant deliveries.
type JitterSequencer struct {
	RNG       *sim.RNG
	JitterMax units.Time
	Horizon   units.Time // deliveries after this are dropped (the serial horizon)
	N         int        // total virtual flows across all shards

	// JitterMaxOf, when set, gives each global flow its own jitter
	// bound (the mixture case, indexed by flow). nil means every flow
	// shares JitterMax.
	JitterMaxOf []units.Time

	lastDelivery []units.Time
	drawn        []int32
	buf          []pendingDelivery // drawn, not yet final; unsorted
	rel          []pendingDelivery // per-window release scratch
	scratch      []pendingDelivery // radix-sort ping-pong buffer
	pos          []int
}

// Init allocates the per-flow sequencing state.
func (q *JitterSequencer) Init() {
	q.lastDelivery = make([]units.Time, q.N)
	q.drawn = make([]int32, q.N)
}

// Feed merges one window's arrival chunks — every arrival strictly
// before frontier, one sorted chunk per shard — draws their jitter in
// global order, and appends to out every delivery that became final.
// It returns the extended out slice; released deliveries are in exact
// (time, flow) order across calls.
func (q *JitterSequencer) Feed(chunks [][]Arrival, frontier units.Time, out []Delivery) []Delivery {
	if cap(q.pos) < len(chunks) {
		q.pos = make([]int, len(chunks))
	}
	pos := q.pos[:len(chunks)]
	for i := range pos {
		pos[i] = 0
	}
	for {
		best := -1
		for s := range chunks {
			if pos[s] >= len(chunks[s]) {
				continue
			}
			h := &chunks[s][pos[s]]
			if best < 0 {
				best = s
				continue
			}
			b := &chunks[best][pos[best]]
			if h.At < b.At || (h.At == b.At && h.Flow < b.Flow) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		a := chunks[best][pos[best]]
		pos[best]++
		q.draw(a)
	}
	return q.release(frontier, out)
}

// draw consumes one root-RNG position for arrival a and queues its
// delivery — the jitter half of BatchedPaced.processArrivals. The
// per-flow clamp makes delivery times non-decreasing within a flow,
// so the draw index doubles as the flow's release order.
func (q *JitterSequencer) draw(a Arrival) {
	jm := q.JitterMax
	if q.JitterMaxOf != nil {
		jm = q.JitterMaxOf[a.Flow]
	}
	t := a.At
	if jm > 0 {
		t = a.At + units.Time(q.RNG.Float64()*float64(jm))
	}
	i := a.Flow
	if t < q.lastDelivery[i] {
		t = q.lastDelivery[i]
	}
	q.lastDelivery[i] = t
	q.buf = append(q.buf, pendingDelivery{at: t, flow: i, entry: q.drawn[i]})
	q.drawn[i]++
}

// release emits every pending delivery strictly before frontier in
// (time, flow, draw-index) order — the exact serial sequence, since
// same-instant deliveries of one flow leave in FIFO draw order there
// too. Deliveries past the horizon are consumed but not emitted: the
// serial run's event loop would never fire them. Deliveries at or
// after the frontier are carried; everything drawn later is at or
// after the frontier as well, so ordering holds across calls.
func (q *JitterSequencer) release(frontier units.Time, out []Delivery) []Delivery {
	if len(q.buf) == 0 {
		return out
	}
	rel := q.rel[:0]
	keep := q.buf[:0]
	for _, d := range q.buf {
		if d.at < frontier {
			rel = append(rel, d)
		} else {
			keep = append(keep, d) // in-place compaction; write index trails read
		}
	}
	q.buf, q.rel = keep, rel
	q.scratch = sortDeliveries(rel, q.scratch)
	for _, d := range rel {
		if q.Horizon <= 0 || d.at <= q.Horizon {
			out = append(out, Delivery{At: d.at, Flow: d.flow, Entry: d.entry})
		}
	}
	return out
}

// sortDeliveries orders one release batch by (time, flow, draw index).
// Like sortArrivals it radix-sorts the packed (at − min, flow) key;
// stability supplies the draw-index tie-break for free, because draws
// of one flow enter the buffer in draw order and the partition in
// release preserves it.
func sortDeliveries(batch []pendingDelivery, scratch []pendingDelivery) []pendingDelivery {
	if len(batch) < radixMinLen {
		slices.SortFunc(batch, compareDeliveries)
		return scratch
	}
	minAt, maxAt := batch[0].at, batch[0].at
	var maxFlow int32
	for i := range batch {
		d := &batch[i]
		if d.at < minAt {
			minAt = d.at
		}
		if d.at > maxAt {
			maxAt = d.at
		}
		if d.flow > maxFlow {
			maxFlow = d.flow
		}
	}
	fb := bits.Len32(uint32(maxFlow))
	if uint64(maxAt-minAt) >= 1<<(64-fb) {
		slices.SortStableFunc(batch, compareDeliveries)
		return scratch
	}
	if cap(scratch) < len(batch) {
		scratch = make([]pendingDelivery, len(batch))
	}
	scratch = scratch[:len(batch)]
	maxKey := uint64(maxAt-minAt)<<fb | (1<<fb - 1)
	src, dst := batch, scratch
	for shift := 0; maxKey>>shift != 0; shift += 8 {
		var count [256]int
		for i := range src {
			k := uint64(src[i].at-minAt)<<fb | uint64(src[i].flow)
			count[(k>>shift)&0xff]++
		}
		pos := 0
		for b := range count {
			pos, count[b] = pos+count[b], pos
		}
		for i := range src {
			k := uint64(src[i].at-minAt)<<fb | uint64(src[i].flow)
			b := (k >> shift) & 0xff
			dst[count[b]] = src[i]
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &batch[0] {
		copy(batch, src)
	}
	return scratch
}

func compareDeliveries(a, b pendingDelivery) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.flow != b.flow {
		return int(a.flow) - int(b.flow)
	}
	return int(a.entry) - int(b.entry)
}

// Flush releases every remaining pending delivery (the final frontier
// is past every drawn time).
func (q *JitterSequencer) Flush(out []Delivery) []Delivery {
	const never = units.Time(int64(^uint64(0) >> 1))
	return q.release(never, out)
}

// InitReplay prepares the fan-out for border replay: the per-flow
// counters and start times are laid out exactly as Start would lay
// them out, but no timers are scheduled — an external sequencer
// replays the delivery order through Inject instead.
func (s *BatchedPaced) InitReplay() {
	n := s.N
	s.Sent = make([]int, n)
	s.SentBytes = make([]int64, n)
	s.start = make([]units.Time, n)
	now := s.Sim.Now()
	for i := 0; i < n; i++ {
		s.start[i] = now + units.Time(int64(i))*s.Offset
	}
}

// StartOf reports virtual flow i's start time (valid after Start or
// InitReplay) — the shard orchestrator seeds ShardArrivals.Start from
// it so both sides agree bit-for-bit.
func (s *BatchedPaced) StartOf(i int) units.Time { return s.start[i] }

// Inject materializes entry k of virtual flow i at the current border
// clock and forwards it to the flow's next hop — the body of
// deliverDue for one externally sequenced delivery. The caller must
// have advanced the border simulator to the delivery instant so packet
// ids, taps and downstream elements observe the serial timeline.
func (s *BatchedPaced) Inject(i, k int32) {
	e := &s.Sched.Entries[k]
	p := s.Pool.Get()
	p.ID = traffic.NewPacketID()
	p.Flow = s.BaseFlow + packet.FlowID(i)
	p.Proto = packet.UDP
	p.Size = e.Size
	p.FrameSeq, p.FragIndex, p.FragCount = int(e.FrameSeq), int(e.FragIndex), int(e.FragCount)
	p.SentAt = s.start[i] + e.At
	s.Sent[i]++
	s.SentBytes[i] += int64(e.Size)
	if s.Tap != nil {
		s.Tap.Emit(ptrace.Event{
			Kind: ptrace.LinkDeliver, Hop: s.Hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: e.FrameSeq,
		})
	}
	next := s.Next[0]
	if len(s.Next) > 1 {
		next = s.Next[i]
	}
	next.Handle(p)
}
