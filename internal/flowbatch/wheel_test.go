package flowbatch

import (
	"math/rand"
	"testing"

	"repro/internal/units"
)

// TestFlowWheelMatchesFlowHeap drives a flowWheel and a flowHeap
// through the same randomized (push, fixMin, pop) sequence over a
// shared key array and demands identical min() answers at every step —
// the wheel's byte-identity claim reduces to this.
func TestFlowWheelMatchesFlowHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		n := 1 + rng.Intn(64)
		keyH := make([]units.Time, n)
		keyW := make([]units.Time, n)
		h := flowHeap{idx: make([]int32, 0, n), key: keyH}
		// Deliberately hostile sizing: tiny widths force overflow and
		// rebase churn, huge widths collapse everything into one bucket.
		span := units.Time(1 + rng.Intn(1_000_000))
		events := int64(1 + rng.Intn(4096))
		w := newFlowWheel(keyW, events, span)
		live := make(map[int32]bool)

		push := func(g int32, at units.Time) {
			keyH[g], keyW[g] = at, at
			h.push(g)
			w.push(g)
			live[g] = true
		}
		for g := 0; g < n; g++ {
			if rng.Intn(4) > 0 {
				push(int32(g), units.Time(rng.Intn(2_000_000)))
			}
		}
		for step := 0; step < 20_000 && h.len() > 0; step++ {
			if h.len() != w.len() {
				t.Fatalf("trial %d step %d: len heap=%d wheel=%d", trial, step, h.len(), w.len())
			}
			gh, gw := h.min(), w.min()
			if gh != gw {
				t.Fatalf("trial %d step %d: min heap=%d@%d wheel=%d@%d",
					trial, step, gh, keyH[gh], gw, keyW[gw])
			}
			switch op := rng.Intn(10); {
			case op < 5: // advance the min's key (the fan-out's hot path)
				bump := units.Time(rng.Intn(50_000))
				keyH[gh] += bump
				keyW[gh] += bump
				h.fixMin()
				w.fixMin()
			case op < 8: // retire the min
				h.pop()
				w.pop()
				delete(live, gh)
			default: // push a currently-absent flow, sometimes far away
				var g int32 = -1
				for c := int32(0); c < int32(n); c++ {
					if !live[c] {
						g = c
						break
					}
				}
				if g < 0 {
					continue
				}
				at := units.Time(rng.Intn(2_000_000))
				if rng.Intn(8) == 0 {
					at += 500_000_000 // deep overflow territory
				}
				push(g, at)
			}
		}
	}
}
