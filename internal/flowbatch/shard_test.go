package flowbatch

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// clumpedSchedule builds the same kind of adversarial plan the fold
// test uses: same-instant bursts that force access-link queuing.
func clumpedSchedule(seed int64, frames int) *Schedule {
	sched := &Schedule{}
	rng := rand.New(rand.NewSource(seed))
	var at units.Time
	for i := 0; i < frames; i++ {
		burst := 1 + rng.Intn(3)
		for j := 0; j < burst; j++ {
			size := 200 + rng.Intn(1300)
			sched.Entries = append(sched.Entries, Entry{
				At: at, Size: size, FrameSeq: int32(i), FragIndex: int32(j), FragCount: int32(burst),
			})
			sched.Bytes += int64(size)
		}
		at += units.Time(rng.Intn(400_000))
	}
	return sched
}

// runSerial drives a plain BatchedPaced to the horizon (0 = drain) and
// returns its emissions plus per-flow counters.
func runSerial(sched *Schedule, chain ChainSpec, n int, offset, horizon units.Time) (*recorder, *BatchedPaced) {
	s := sim.New(99)
	pool := packet.NewPool()
	rec := &recorder{sim: s, pool: pool}
	src := &BatchedPaced{Sim: s, Sched: sched, N: n, BaseFlow: 100, Offset: offset,
		Chain: chain, Next: []packet.Handler{rec}, Pool: pool}
	src.Start()
	if horizon > 0 {
		s.SetHorizon(horizon)
	}
	s.Run()
	return rec, src
}

// runSharded drives the decomposed pipeline: per-shard arrival walks
// in lookahead windows, central jitter sequencing, border replay.
func runSharded(t *testing.T, sched *Schedule, chain ChainSpec, n, shards int, offset, horizon, window units.Time) (*recorder, *BatchedPaced) {
	t.Helper()
	border := sim.New(99)
	pool := packet.NewPool()
	rec := &recorder{sim: border, pool: pool}
	bp := &BatchedPaced{Sim: border, Sched: sched, N: n, BaseFlow: 100, Offset: offset,
		Chain: chain, Next: []packet.Handler{rec}, Pool: pool}
	bp.InitReplay()

	base := BaseArrivals(sched, chain)
	sas := make([]*ShardArrivals, shards)
	for s := 0; s < shards; s++ {
		sa := &ShardArrivals{Base: base, Horizon: horizon}
		for i := s; i < n; i += shards {
			sa.Flows = append(sa.Flows, int32(i))
			sa.Start = append(sa.Start, bp.StartOf(i))
		}
		sa.Init()
		sas[s] = sa
	}
	seq := &JitterSequencer{RNG: border.RNG(), JitterMax: chain.JitterMax, Horizon: horizon, N: n}
	seq.Init()

	chunks := make([][]Arrival, shards)
	var dels []Delivery
	replay := func(dels []Delivery) {
		for _, d := range dels {
			border.RunBefore(d.At)
			border.AdvanceTo(d.At)
			bp.Inject(d.Flow, d.Entry)
		}
	}
	for frontier := window; ; frontier += window {
		done := true
		for s, sa := range sas {
			sa.AdvanceTo(frontier)
			chunks[s], sa.Out = sa.Out, chunks[s][:0]
			if !sa.Done() {
				done = false
			}
		}
		dels = seq.Feed(chunks, frontier, dels[:0])
		replay(dels)
		if done {
			break
		}
	}
	replay(seq.Flush(dels[:0]))
	if horizon > 0 {
		border.SetHorizon(horizon)
	}
	border.Run()
	return rec, bp
}

// TestShardedPipelineMatchesSerial pins the decomposition: for shard
// counts 1–4 and several window widths, the sharded pipeline delivers
// the identical packet sequence (instants, flows, sizes, frame
// metadata, send stamps) and identical per-flow counters as the serial
// BatchedPaced with the same seed.
func TestShardedPipelineMatchesSerial(t *testing.T) {
	sched := clumpedSchedule(42, 300)
	chain := ChainSpec{AccessRate: 9_700_000, AccessDelay: 500 * units.Microsecond,
		JitterMax: 3 * units.Millisecond}
	const n = 5
	offset := units.Time(1_712_345)

	ref, refSrc := runSerial(sched, chain, n, offset, 0)
	for _, shards := range []int{1, 2, 3, 4} {
		for _, window := range []units.Time{700 * units.Microsecond, 10 * units.Millisecond, units.FromSeconds(1)} {
			got, gotSrc := runSharded(t, sched, chain, n, shards, offset, 0, window)
			compareEmissions(t, ref, got, shards, window)
			for i := 0; i < n; i++ {
				if refSrc.Sent[i] != gotSrc.Sent[i] || refSrc.SentBytes[i] != gotSrc.SentBytes[i] {
					t.Errorf("shards=%d window=%v flow %d: sent %d/%d bytes, serial %d/%d",
						shards, window, i, gotSrc.Sent[i], gotSrc.SentBytes[i], refSrc.Sent[i], refSrc.SentBytes[i])
				}
			}
		}
	}
}

// TestShardedPipelineHorizonParity pins the truncation semantics: a
// horizon that cuts the run mid-schedule must drop exactly the same
// tail in both modes (the serial event loop stops firing deliveries
// past the horizon; the sequencer drops them explicitly).
func TestShardedPipelineHorizonParity(t *testing.T) {
	sched := clumpedSchedule(7, 400)
	chain := ChainSpec{AccessRate: 9_700_000, AccessDelay: 500 * units.Microsecond,
		JitterMax: 3 * units.Millisecond}
	const n = 4
	offset := units.Time(1_712_345)
	span := sched.Entries[len(sched.Entries)-1].At
	horizon := span / 2 // mid-schedule cut

	ref, _ := runSerial(sched, chain, n, offset, horizon)
	if len(ref.got) == 0 {
		t.Fatal("horizon truncated everything; test is vacuous")
	}
	got, _ := runSharded(t, sched, chain, n, 3, offset, horizon, 5*units.Millisecond)
	compareEmissions(t, ref, got, 3, 5*units.Millisecond)
}

// TestShardedZeroJitter pins the degenerate chain (no RNG draws at
// all): deliveries at exact arrival instants, including same-instant
// cross-flow ties resolved by flow order.
func TestShardedZeroJitter(t *testing.T) {
	sched := clumpedSchedule(13, 200)
	chain := ChainSpec{AccessRate: 9_700_000, AccessDelay: 500 * units.Microsecond}
	const n = 4
	ref, _ := runSerial(sched, chain, n, 0, 0) // zero offset: maximal ties
	got, _ := runSharded(t, sched, chain, n, 4, 0, 0, 3*units.Millisecond)
	compareEmissions(t, ref, got, 4, 3*units.Millisecond)
}

func compareEmissions(t *testing.T, ref, got *recorder, shards int, window units.Time) {
	t.Helper()
	if len(got.got) != len(ref.got) {
		t.Fatalf("shards=%d window=%v: delivered %d packets, serial %d",
			shards, window, len(got.got), len(ref.got))
	}
	for i := range ref.got {
		w, g := ref.got[i], got.got[i]
		if w != g {
			t.Fatalf("shards=%d window=%v packet %d diverged:\nserial  %+v\nsharded %+v",
				shards, window, i, w, g)
		}
	}
}
