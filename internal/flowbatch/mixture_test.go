package flowbatch

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/video"
)

// capRec is one captured emission: everything observable downstream of
// the fan-out except the globally monotone packet id.
type capRec struct {
	at     units.Time
	flow   packet.FlowID
	size   int
	sentAt units.Time
}

type captureHandler struct {
	sim  *sim.Simulator
	pool *packet.Pool
	recs []capRec
}

func (c *captureHandler) Handle(p *packet.Packet) {
	c.recs = append(c.recs, capRec{at: c.sim.Now(), flow: p.Flow, size: p.Size, sentAt: p.SentAt})
	c.pool.Put(p)
}

// TestMixtureSingleClassMatchesBatchedPaced pins the degenerate-case
// contract of BatchedMixture: one class with zero phase must be
// packet-for-packet identical to a BatchedPaced over the same schedule
// — same delivery instants, same flow ids, same sizes, same send
// stamps, same per-flow counters.
func TestMixtureSingleClassMatchesBatchedPaced(t *testing.T) {
	t.Parallel()
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	sched := CachedPacedSchedule(enc)
	chain := ChainSpec{AccessRate: 100 * units.Mbps,
		AccessDelay: 500 * units.Microsecond, JitterMax: 3 * units.Millisecond}
	const n = 8
	const offset = 53 * units.Millisecond
	horizon := units.FromSeconds(80) + units.Time(n)*offset

	runPaced := func() ([]capRec, []int) {
		s := sim.New(7)
		pool := packet.NewPool()
		cap := &captureHandler{sim: s, pool: pool}
		bp := &BatchedPaced{Sim: s, Sched: sched, N: n, Offset: offset,
			Chain: chain, Next: []packet.Handler{cap}, Pool: pool}
		bp.Start()
		s.SetHorizon(horizon)
		s.Run()
		return cap.recs, bp.Sent
	}
	runMixture := func() ([]capRec, []int) {
		s := sim.New(7)
		pool := packet.NewPool()
		cap := &captureHandler{sim: s, pool: pool}
		mix := &BatchedMixture{Sim: s,
			Classes: []MixtureClass{{Sched: sched, N: n, Offset: offset, Chain: chain}},
			Next:    []packet.Handler{cap}, Pool: pool}
		mix.Start()
		s.SetHorizon(horizon)
		s.Run()
		return cap.recs, mix.Sent
	}

	pr, ps := runPaced()
	mr, msent := runMixture()
	if len(pr) != len(mr) {
		t.Fatalf("emission counts differ: paced %d, mixture %d", len(pr), len(mr))
	}
	for i := range pr {
		if pr[i] != mr[i] {
			t.Fatalf("emission %d differs: paced %+v, mixture %+v", i, pr[i], mr[i])
		}
	}
	for i := range ps {
		if ps[i] != msent[i] {
			t.Errorf("flow %d Sent: paced %d, mixture %d", i, ps[i], msent[i])
		}
		if ps[i] != len(sched.Entries) {
			t.Errorf("flow %d emitted %d of %d scheduled", i, ps[i], len(sched.Entries))
		}
	}
}

// TestMixtureClassLayout pins the class-major global flow indexing and
// per-class start lattice.
func TestMixtureClassLayout(t *testing.T) {
	t.Parallel()
	enc := video.CachedCBR(video.Lost(), 1.0e6)
	sched := CachedPacedSchedule(enc)
	s := sim.New(1)
	pool := packet.NewPool()
	sink := &captureHandler{sim: s, pool: pool}
	mix := &BatchedMixture{Sim: s, Classes: []MixtureClass{
		{Sched: sched, N: 3, Offset: 10 * units.Millisecond, Chain: ChainSpec{AccessRate: units.Mbps}},
		{Sched: sched, N: 2, Phase: units.Second, Offset: 20 * units.Millisecond, Chain: ChainSpec{AccessRate: units.Mbps}},
	}, Next: []packet.Handler{sink}, Pool: pool}
	mix.InitReplay()
	if got := mix.TotalFlows(); got != 5 {
		t.Fatalf("TotalFlows = %d, want 5", got)
	}
	if got := mix.FlowBase(1); got != 3 {
		t.Errorf("FlowBase(1) = %d, want 3", got)
	}
	wantClass := []int{0, 0, 0, 1, 1}
	wantStart := []units.Time{0, 10 * units.Millisecond, 20 * units.Millisecond,
		units.Second, units.Second + 20*units.Millisecond}
	for g := 0; g < 5; g++ {
		if mix.ClassOf(g) != wantClass[g] {
			t.Errorf("ClassOf(%d) = %d, want %d", g, mix.ClassOf(g), wantClass[g])
		}
		if mix.StartOf(g) != wantStart[g] {
			t.Errorf("StartOf(%d) = %v, want %v", g, mix.StartOf(g), wantStart[g])
		}
	}
}

func TestTruncateSchedule(t *testing.T) {
	t.Parallel()
	sched := &Schedule{Entries: []Entry{
		{At: 0, Size: 100}, {At: units.Second, Size: 200}, {At: 2 * units.Second, Size: 300},
	}, Bytes: 600}
	if got := TruncateSchedule(sched, 0); got != sched {
		t.Error("cutoff 0 should return the schedule unchanged")
	}
	if got := TruncateSchedule(sched, 10*units.Second); got != sched {
		t.Error("cutoff past the end should return the schedule unchanged")
	}
	tr := TruncateSchedule(sched, 2*units.Second)
	if len(tr.Entries) != 2 || tr.Bytes != 300 {
		t.Errorf("cutoff 2s: got %d entries / %d bytes, want 2 / 300 (entry at the cutoff is excluded)",
			len(tr.Entries), tr.Bytes)
	}
	if &tr.Entries[0] != &sched.Entries[0] {
		t.Error("truncated schedule should share the backing array")
	}
	if got := TruncateSchedule(nil, units.Second); got != nil {
		t.Error("nil schedule should pass through")
	}
}
