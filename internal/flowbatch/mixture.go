package flowbatch

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/sim"
	"repro/internal/traffic"
	"repro/internal/units"
)

// This file generalizes the homogeneous fan-out to a mixture of
// equivalence classes: K cached schedules, each fanned out as its own
// phase-offset virtual-flow population, interleaved in one global
// (time, flow) order. The interleaving is what makes the mixture
// exact: the jitter draws of every class come from the simulator's
// root RNG in the identical sequence N real per-flow jitter elements
// would consume, which K independent BatchedPaced sources — each
// walking its own arrival heap — could not reproduce.

// TruncateSchedule returns the prefix of sched strictly before cutoff
// (emission offsets, not absolute times). The entries share sched's
// backing array, so truncation costs one header and a byte recount —
// fleet sweeps clip long schedules per grid point without recomputing
// or duplicating the cached plan. A cutoff <= 0 returns sched.
func TruncateSchedule(sched *Schedule, cutoff units.Time) *Schedule {
	if sched == nil || cutoff <= 0 {
		return sched
	}
	n := 0
	var bytes int64
	for i := range sched.Entries {
		if sched.Entries[i].At >= cutoff {
			break
		}
		bytes += int64(sched.Entries[i].Size)
		n = i + 1
	}
	if n == len(sched.Entries) {
		return sched
	}
	return &Schedule{Entries: sched.Entries[:n], Bytes: bytes}
}

// MixtureClass is one equivalence class of a BatchedMixture: a shared
// emission schedule fanned out as N virtual flows with their own
// folded chain parameters and start lattice. Flow j of the class
// starts at mixture start + Phase + j*Offset.
type MixtureClass struct {
	Sched  *Schedule
	N      int
	Phase  units.Time // class start offset from the mixture's start
	Offset units.Time // start stagger between consecutive flows of the class
	Chain  ChainSpec
}

// BatchedMixture streams K class schedules as one interleaved fan-out.
// Global virtual-flow indices are class-major: class 0 owns flows
// [0, N0), class 1 owns [N0, N0+N1), and so on; flow g carries packet
// flow id BaseFlow+g and delivers into Next[g] (or Next[0] when one
// shared next hop is given). With a single class and zero phase it is
// packet-for-packet identical to a BatchedPaced over the same
// schedule — the mixture tests pin this — and the exactness contract
// of the package comment carries over unchanged: per-flow access-link
// serialization is folded bit-exactly, and jitter is drawn from the
// root RNG in global (time, flow) arrival order across all classes.
type BatchedMixture struct {
	Sim      *sim.Simulator
	Classes  []MixtureClass
	BaseFlow packet.FlowID
	Next     []packet.Handler // per-global-flow next hop; a single entry is shared
	Pool     *packet.Pool

	// Tap, when set, receives one LinkDeliver event per packet as it
	// leaves the folded chain, with the virtual flow id preserved.
	Tap ptrace.Tap
	Hop ptrace.HopID

	// Per-virtual-flow emission counters (delivery-ordered), indexed by
	// global flow.
	Sent      []int
	SentBytes []int64

	classOf      []int32 // global flow -> class index
	start        []units.Time
	drawn        []int
	delivered    []int
	busyUntil    []units.Time
	lastDelivery []units.Time
	nextArr      []units.Time
	nextDel      []units.Time
	pending      []timeRing

	arrWheel flowWheel
	delWheel flowWheel

	// delArmed is the earliest instant a delivery timer is armed for
	// (-1: none) and delTimer its handle. The delivery wheel already
	// orders every pending packet, so the simulator only ever needs one
	// timer at the wheel's minimum — arming per packet would keep
	// thousands of resident calendar events whose only effect is
	// lengthening every bucket scan in the hot loop. When a new jitter
	// draw undercuts the armed instant the stale timer is cancelled,
	// not abandoned: abandoned timers re-arm on every no-op fire and
	// accumulate without bound.
	delArmed units.Time
	delTimer sim.Handle

	arrive  sim.Timer
	deliver sim.Timer
}

// mixArriveTimer and mixDeliverTimer give the mixture two Fire methods
// without closures (the BatchedPaced pattern).
type (
	mixArriveTimer  BatchedMixture
	mixDeliverTimer BatchedMixture
)

// Fire advances the merged arrival sequence.
func (t *mixArriveTimer) Fire(now units.Time) { (*BatchedMixture)(t).processArrivals(now) }

// Fire hands due packets to their virtual flows' next hops.
func (t *mixDeliverTimer) Fire(now units.Time) { (*BatchedMixture)(t).deliverDue(now) }

// TotalFlows sums the class populations.
func (s *BatchedMixture) TotalFlows() int {
	n := 0
	for _, c := range s.Classes {
		n += c.N
	}
	return n
}

// FlowBase reports the first global flow index of class c.
func (s *BatchedMixture) FlowBase(c int) int {
	base := 0
	for i := 0; i < c; i++ {
		base += s.Classes[i].N
	}
	return base
}

// ClassOf reports the class owning global flow g (valid after Start or
// InitReplay).
func (s *BatchedMixture) ClassOf(g int) int { return int(s.classOf[g]) }

// init lays out the per-flow state arrays in class-major flow order.
func (s *BatchedMixture) init() int {
	n := s.TotalFlows()
	if len(s.Next) != n && len(s.Next) != 1 {
		panic(fmt.Sprintf("flowbatch: %d next hops for %d mixture flows (want N or 1)", len(s.Next), n))
	}
	s.Sent = make([]int, n)
	s.SentBytes = make([]int64, n)
	s.classOf = make([]int32, n)
	s.start = make([]units.Time, n)
	now := s.Sim.Now()
	g := 0
	for ci := range s.Classes {
		c := &s.Classes[ci]
		for j := 0; j < c.N; j++ {
			s.classOf[g] = int32(ci)
			s.start[g] = now + c.Phase + units.Time(int64(j))*c.Offset
			g++
		}
	}
	return n
}

// Start schedules the interleaved fan-out.
func (s *BatchedMixture) Start() {
	if s.TotalFlows() <= 0 {
		return
	}
	n := s.init()
	s.drawn = make([]int, n)
	s.delivered = make([]int, n)
	s.busyUntil = make([]units.Time, n)
	s.lastDelivery = make([]units.Time, n)
	s.nextArr = make([]units.Time, n)
	s.nextDel = make([]units.Time, n)
	s.pending = make([]timeRing, n)
	// Size the merge wheels from the mixture's event density: total
	// scheduled packets spread over the fan-out's full span.
	var events int64
	var span units.Time
	for ci := range s.Classes {
		c := &s.Classes[ci]
		if c.N == 0 || len(c.Sched.Entries) == 0 {
			continue
		}
		events += int64(c.N) * int64(len(c.Sched.Entries))
		end := c.Phase + units.Time(int64(c.N-1))*c.Offset + c.Sched.Entries[len(c.Sched.Entries)-1].At
		if end > span {
			span = end
		}
	}
	s.arrWheel = newFlowWheel(s.nextArr, events, span)
	s.delWheel = newFlowWheel(s.nextDel, events, span)
	s.delArmed = -1
	s.arrive = (*mixArriveTimer)(s)
	s.deliver = (*mixDeliverTimer)(s)
	for g := 0; g < n; g++ {
		if len(s.Classes[s.classOf[g]].Sched.Entries) == 0 {
			continue
		}
		s.computeArrival(g)
		s.arrWheel.push(int32(g))
	}
	if s.arrWheel.len() > 0 {
		s.Sim.AtTimer(s.nextArr[s.arrWheel.min()], s.arrive)
	}
}

// computeArrival advances flow g's access-link emulation to its next
// undrawn entry of its class schedule — BatchedPaced.computeArrival
// with the schedule and chain looked up per class.
func (s *BatchedMixture) computeArrival(g int) {
	c := &s.Classes[s.classOf[g]]
	e := &c.Sched.Entries[s.drawn[g]]
	txStart := s.start[g] + e.At
	if s.busyUntil[g] > txStart {
		txStart = s.busyUntil[g]
	}
	done := txStart + c.Chain.AccessRate.TxTime(e.Size)
	s.busyUntil[g] = done
	s.nextArr[g] = done + c.Chain.AccessDelay
}

// processArrivals draws jitter for every packet arriving now, in
// global (time, flow) order across all classes, and schedules each
// packet's delivery at its jittered instant.
func (s *BatchedMixture) processArrivals(now units.Time) {
	for s.arrWheel.len() > 0 {
		g := s.arrWheel.min()
		a := s.nextArr[g]
		if a > now {
			break
		}
		c := &s.Classes[s.classOf[g]]
		t := a
		if c.Chain.JitterMax > 0 {
			t = a + units.Time(s.Sim.RNG().Float64()*float64(c.Chain.JitterMax))
		}
		if t < s.lastDelivery[g] {
			t = s.lastDelivery[g]
		}
		s.lastDelivery[g] = t
		if s.pending[g].Len() == 0 {
			s.nextDel[g] = t
			s.delWheel.push(g)
		}
		s.pending[g].Push(t)
		s.drawn[g]++
		if s.drawn[g] < len(c.Sched.Entries) {
			s.computeArrival(int(g))
			s.arrWheel.fixMin()
		} else {
			s.arrWheel.pop()
		}
	}
	s.armDeliver()
	if s.arrWheel.len() > 0 {
		s.Sim.AtTimer(s.nextArr[s.arrWheel.min()], s.arrive)
	}
}

// armDeliver keeps exactly one delivery timer armed at the wheel's
// minimum, cancelling the previous one when the minimum moved earlier
// (the handle of a timer that already fired is stale, so Cancel is a
// no-op in the common re-arm-after-fire case).
func (s *BatchedMixture) armDeliver() {
	if s.delWheel.len() == 0 {
		return
	}
	if t := s.nextDel[s.delWheel.min()]; s.delArmed < 0 || t < s.delArmed {
		s.delTimer.Cancel()
		s.delTimer = s.Sim.AtTimer(t, s.deliver)
		s.delArmed = t
	}
}

// deliverDue materializes and forwards every packet whose jittered
// delivery instant is now, in (time, flow) order.
func (s *BatchedMixture) deliverDue(now units.Time) {
	s.delArmed = -1
	for s.delWheel.len() > 0 {
		g := s.delWheel.min()
		if s.nextDel[g] > now {
			break
		}
		s.pending[g].Pop()
		k := s.delivered[g]
		s.delivered[g]++
		s.emit(g, int32(k))
		if s.pending[g].Len() > 0 {
			s.nextDel[g] = s.pending[g].Peek()
			s.delWheel.fixMin()
		} else {
			s.delWheel.pop()
		}
	}
	s.armDeliver()
}

// emit materializes entry k of global flow g and forwards it — shared
// by the serial delivery loop and the sharded border replay.
func (s *BatchedMixture) emit(g, k int32) {
	c := &s.Classes[s.classOf[g]]
	e := &c.Sched.Entries[k]
	p := s.Pool.Get()
	p.ID = traffic.NewPacketID()
	p.Flow = s.BaseFlow + packet.FlowID(g)
	p.Proto = packet.UDP
	p.Size = e.Size
	p.FrameSeq, p.FragIndex, p.FragCount = int(e.FrameSeq), int(e.FragIndex), int(e.FragCount)
	p.SentAt = s.start[g] + e.At
	s.Sent[g]++
	s.SentBytes[g] += int64(e.Size)
	if s.Tap != nil {
		s.Tap.Emit(ptrace.Event{
			Kind: ptrace.LinkDeliver, Hop: s.Hop, Flow: p.Flow, PktID: p.ID,
			Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: e.FrameSeq,
		})
	}
	next := s.Next[0]
	if len(s.Next) > 1 {
		next = s.Next[g]
	}
	next.Handle(p)
}

// InitReplay prepares the mixture for sharded border replay: flow
// layout and counters as Start would build them, but no timers — an
// external sequencer replays the delivery order through Inject.
func (s *BatchedMixture) InitReplay() { s.init() }

// StartOf reports global flow g's start time (valid after Start or
// InitReplay).
func (s *BatchedMixture) StartOf(g int) units.Time { return s.start[g] }

// Inject materializes entry k of global flow g at the current border
// clock — the mixture counterpart of BatchedPaced.Inject. The caller
// must have advanced the border simulator to the delivery instant.
func (s *BatchedMixture) Inject(g, k int32) { s.emit(g, k) }

// TotalSent sums the per-virtual-flow emission counters.
func (s *BatchedMixture) TotalSent() int {
	total := 0
	for _, n := range s.Sent {
		total += n
	}
	return total
}
