package tokenbucket

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func mkPkt(size int) *packet.Packet {
	return &packet.Packet{Size: size, FrameSeq: -1}
}

func TestPolicerMarksAndForwards(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	p := NewPolicer(s, units.Mbps, 3000, packet.EF, &sink)
	pk := mkPkt(1500)
	p.Handle(pk)
	if sink.Count != 1 {
		t.Fatal("conformant packet not forwarded")
	}
	if pk.DSCP != packet.EF {
		t.Errorf("DSCP = %v, want EF", pk.DSCP)
	}
	if p.Passed != 1 || p.Dropped != 0 {
		t.Errorf("counters: passed=%d dropped=%d", p.Passed, p.Dropped)
	}
}

func TestPolicerDropsNonConformant(t *testing.T) {
	s := sim.New(1)
	var sink, drops packet.Sink
	p := NewPolicer(s, units.Mbps, 3000, packet.EF, &sink)
	p.OnDrop(&drops)
	p.Handle(mkPkt(3000)) // drains the bucket
	p.Handle(mkPkt(1500)) // must drop: no time has passed
	if sink.Count != 1 || drops.Count != 1 {
		t.Errorf("sink=%d drops=%d", sink.Count, drops.Count)
	}
	if got := p.LossFraction(); got != 0.5 {
		t.Errorf("LossFraction = %v", got)
	}
	if p.DroppedBytes != 1500 || p.PassedBytes != 3000 {
		t.Errorf("bytes: passed=%d dropped=%d", p.PassedBytes, p.DroppedBytes)
	}
}

func TestPolicerConservation(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	p := NewPolicer(s, 2*units.Mbps, 3000, packet.EF, &sink)
	n := 1000
	rng := sim.NewRNG(5)
	now := units.Time(0)
	for i := 0; i < n; i++ {
		now += units.Time(rng.Intn(3000)) * units.Microsecond
		final := now
		s.At(final, func() { p.Handle(mkPkt(1500)) })
	}
	s.Run()
	if p.Passed+p.Dropped != n {
		t.Errorf("conservation: %d + %d != %d", p.Passed, p.Dropped, n)
	}
	if sink.Count != p.Passed {
		t.Errorf("forwarded %d != passed %d", sink.Count, p.Passed)
	}
}

func TestShaperDelaysInsteadOfDropping(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	var arrivals []units.Time
	sh := NewShaper(s, 8*units.Mbps, 3000, packet.EF, packet.HandlerFunc(func(p *packet.Packet) {
		sink.Handle(p)
		arrivals = append(arrivals, s.Now())
	}))
	// Three back-to-back 1500B packets: the first two conform (bucket
	// 3000), the third must be delayed ~1500µs (1 B/µs refill).
	s.At(0, func() {
		sh.Handle(mkPkt(1500))
		sh.Handle(mkPkt(1500))
		sh.Handle(mkPkt(1500))
	})
	s.Run()
	if sink.Count != 3 {
		t.Fatalf("delivered %d of 3", sink.Count)
	}
	if sh.Dropped != 0 {
		t.Errorf("shaper dropped %d", sh.Dropped)
	}
	if arrivals[2] < 1400*units.Microsecond {
		t.Errorf("third packet released too early: %v", arrivals[2])
	}
	if sh.Delayed == 0 {
		t.Error("no packet recorded as delayed")
	}
}

func TestShaperPreservesOrder(t *testing.T) {
	s := sim.New(1)
	var got []uint64
	sh := NewShaper(s, units.Mbps, 3000, packet.EF, packet.HandlerFunc(func(p *packet.Packet) {
		got = append(got, p.ID)
	}))
	s.At(0, func() {
		for i := 1; i <= 20; i++ {
			pk := mkPkt(1000)
			pk.ID = uint64(i)
			sh.Handle(pk)
		}
	})
	s.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, id := range got {
		if id != uint64(i+1) {
			t.Fatalf("order violated at %d: %d", i, id)
		}
	}
}

func TestShaperDropsOversized(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	sh := NewShaper(s, units.Mbps, 3000, packet.EF, &sink)
	s.At(0, func() {
		sh.Handle(mkPkt(3000)) // drain so the next goes to the queue path
		sh.Handle(mkPkt(4000)) // can never conform
	})
	s.Run()
	if sh.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", sh.Dropped)
	}
	if sink.Count != 1 {
		t.Errorf("delivered = %d, want 1", sink.Count)
	}
}

func TestShaperQueueLimit(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	sh := NewShaper(s, 100*units.Kbps, 3000, packet.EF, &sink)
	sh.SetQueueLimit(5)
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			sh.Handle(mkPkt(1500))
		}
	})
	s.RunUntil(100 * units.Millisecond)
	if sh.Dropped == 0 {
		t.Error("queue limit never enforced")
	}
	if sh.QueueLen() > 5 {
		t.Errorf("queue length %d exceeds limit", sh.QueueLen())
	}
}

// TestShaperOutputConforms verifies the defining shaper property: the
// released stream itself conforms to the shaping profile.
func TestShaperOutputConforms(t *testing.T) {
	s := sim.New(1)
	check := NewBucket(units.Mbps, 3001) // +1: release rounding slack
	violations := 0
	sh := NewShaper(s, units.Mbps, 3000, packet.EF, packet.HandlerFunc(func(p *packet.Packet) {
		if !check.Conform(s.Now(), p.Size) {
			violations++
		}
	}))
	rng := sim.NewRNG(9)
	now := units.Time(0)
	for i := 0; i < 500; i++ {
		now += units.Time(rng.Intn(5000)) * units.Microsecond
		s.At(now, func() { sh.Handle(mkPkt(1500)) })
	}
	s.Run()
	if violations != 0 {
		t.Errorf("%d released packets violate the profile", violations)
	}
}
