package tokenbucket

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestSRTCMColorsInOrder(t *testing.T) {
	// CIR 8 Mbps (1 B/µs), CBS 3000, EBS 3000. Both buckets full at 0.
	m := NewSRTCM(8*units.Mbps, 3000, 3000)
	if c := m.Mark(0, 3000); c != packet.Green {
		t.Errorf("first packet %v, want green", c)
	}
	if c := m.Mark(0, 3000); c != packet.Yellow {
		t.Errorf("second packet %v, want yellow (excess bucket)", c)
	}
	if c := m.Mark(0, 3000); c != packet.Red {
		t.Errorf("third packet %v, want red", c)
	}
}

func TestSRTCMCommittedRefillFeedsExcess(t *testing.T) {
	m := NewSRTCM(8*units.Mbps, 1000, 2000)
	// Drain both.
	m.Mark(0, 1000)
	m.Mark(0, 1000)
	m.Mark(0, 1000)
	// After 4 ms (4000 bytes of tokens at 1B/µs): C refills to 1000,
	// overflow 3000 goes to E capped at 2000.
	now := 4 * units.Millisecond
	if c := m.Mark(now, 1000); c != packet.Green {
		t.Errorf("want green after refill, got %v", c)
	}
	if c := m.Mark(now, 2000); c != packet.Yellow {
		t.Errorf("want yellow from excess, got %v", c)
	}
	if c := m.Mark(now, 500); c != packet.Red {
		t.Errorf("want red when both drained, got %v", c)
	}
}

func TestTRTCMPeakDominates(t *testing.T) {
	// PIR 16 Mbps / PBS 1500, CIR 8 Mbps / CBS 6000: a burst violating
	// the peak profile is red even though committed tokens remain.
	m := NewTRTCM(8*units.Mbps, 16*units.Mbps, 6000, 1500)
	if c := m.Mark(0, 1500); c != packet.Green {
		t.Errorf("first %v, want green", c)
	}
	if c := m.Mark(0, 1500); c != packet.Red {
		t.Errorf("second %v, want red (peak violated)", c)
	}
}

func TestTRTCMYellowWhenCommittedExhausted(t *testing.T) {
	m := NewTRTCM(units.Mbps, 8*units.Mbps, 1500, 6000)
	if c := m.Mark(0, 1500); c != packet.Green {
		t.Errorf("first %v", c)
	}
	if c := m.Mark(0, 1500); c != packet.Yellow {
		t.Errorf("second %v, want yellow (committed gone, peak ok)", c)
	}
}

func TestTRTCMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for pir < cir")
		}
	}()
	NewTRTCM(2*units.Mbps, units.Mbps, 1000, 1000)
}

func TestColorToDSCP(t *testing.T) {
	if ColorToDSCP(packet.Green) != packet.AF11 ||
		ColorToDSCP(packet.Yellow) != packet.AF12 ||
		ColorToDSCP(packet.Red) != packet.AF13 {
		t.Error("AF mapping wrong")
	}
}

func TestAFMarkerRemarksAndCounts(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	m := NewAFMarkerSR(s, NewSRTCM(8*units.Mbps, 3000, 3000), &sink)
	for i := 0; i < 3; i++ {
		m.Handle(mkPkt(3000))
	}
	if sink.Count != 3 {
		t.Fatalf("AF marker must forward everything, got %d", sink.Count)
	}
	if m.Green != 1 || m.Yellow != 1 || m.Red != 1 {
		t.Errorf("counts G=%d Y=%d R=%d", m.Green, m.Yellow, m.Red)
	}
	if sink.Last.DSCP != packet.AF13 {
		t.Errorf("last DSCP = %v, want AF13", sink.Last.DSCP)
	}
}

func TestAFMarkerTR(t *testing.T) {
	s := sim.New(1)
	var sink packet.Sink
	m := NewAFMarkerTR(s, NewTRTCM(units.Mbps, 8*units.Mbps, 1500, 6000), &sink)
	m.Handle(mkPkt(1500))
	m.Handle(mkPkt(1500))
	if m.Green != 1 || m.Yellow != 1 {
		t.Errorf("counts G=%d Y=%d R=%d", m.Green, m.Yellow, m.Red)
	}
}

// TestSRTCMLongRunRates: over a long saturated run, green bytes track
// CIR — the marker's contract.
func TestSRTCMLongRunRates(t *testing.T) {
	m := NewSRTCM(2*units.Mbps, 3000, 6000)
	var green, total int64
	now := units.Time(0)
	for i := 0; i < 100000; i++ {
		now += 200 * units.Microsecond // 60 Mbps offered
		if m.Mark(now, 1500) == packet.Green {
			green += 1500
		}
		total += 1500
	}
	wantGreen := int64(float64(2*units.Mbps) / 8 * now.Seconds())
	ratio := float64(green) / float64(wantGreen)
	if ratio < 0.98 || ratio > 1.02 {
		t.Errorf("green bytes %d, want ≈%d (ratio %.3f)", green, wantGreen, ratio)
	}
}
