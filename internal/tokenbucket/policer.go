package tokenbucket

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/sim"
	"repro/internal/units"
)

// Clock exposes the simulated time to conditioning elements. Both
// *sim.Simulator and test fakes satisfy it.
type Clock interface {
	Now() units.Time
}

// Policer enforces a token-bucket profile the way the paper's router 1
// and the QBone's Cisco CAR did for the EF service: conformant packets
// are re-marked with the EF code point and forwarded; non-conformant
// packets are dropped ("hard" policing, §3.2.1.2).
type Policer struct {
	clock Clock
	// The bucket is embedded by value: a conformance check touches one
	// object, not a policer plus a pointed-to bucket — at six-figure
	// flow counts, where the policer working set is far past cache,
	// that second dependent line is measurable.
	bucket Bucket
	mark   packet.DSCP
	next   packet.Handler
	drop   packet.Handler // optional observer for dropped packets

	// Pool, when set, receives dropped packets — the policer owns its
	// drops. The drop observer is called first and only borrows the
	// packet (copy-on-retain).
	Pool *packet.Pool

	// Tap, when set, receives a verdict event per packet.
	Tap ptrace.Tap
	Hop ptrace.HopID

	Passed       int
	Dropped      int
	PassedBytes  int64
	DroppedBytes int64
}

// NewPolicer returns a dropping policer with the given profile that
// marks conformant traffic with mark and forwards it to next.
func NewPolicer(clock Clock, rate units.BitRate, depth units.ByteSize, mark packet.DSCP, next packet.Handler) *Policer {
	p := new(Policer)
	p.Init(clock, rate, depth, mark, next)
	return p
}

// Init (re)initializes p in place — NewPolicer for fleets that
// allocate their policers as one contiguous slice instead of N
// scattered objects.
func (p *Policer) Init(clock Clock, rate units.BitRate, depth units.ByteSize, mark packet.DSCP, next packet.Handler) {
	*p = Policer{clock: clock, mark: mark, next: next}
	p.bucket.Init(rate, depth)
}

// OnDrop registers an observer that receives each dropped packet.
func (p *Policer) OnDrop(h packet.Handler) { p.drop = h }

// SetNext redirects conformant traffic to h (topology-builder wiring;
// not for use once packets are flowing).
func (p *Policer) SetNext(h packet.Handler) { p.next = h }

// Bucket exposes the underlying bucket (for tests and inspection).
func (p *Policer) Bucket() *Bucket { return &p.bucket }

// Handle applies the profile to pkt.
func (p *Policer) Handle(pkt *packet.Packet) {
	now := p.clock.Now()
	if p.bucket.Conform(now, pkt.Size) {
		pkt.DSCP = p.mark
		p.Passed++
		p.PassedBytes += int64(pkt.Size)
		if p.Tap != nil {
			p.Tap.Emit(p.verdict(ptrace.PolicerPass, pkt))
		}
		p.next.Handle(pkt)
		return
	}
	p.Dropped++
	p.DroppedBytes += int64(pkt.Size)
	if p.Tap != nil {
		p.Tap.Emit(p.verdict(ptrace.PolicerDrop, pkt))
	}
	if p.drop != nil {
		p.drop.Handle(pkt) // observer borrows; must not retain or release
	}
	p.Pool.Put(pkt)
}

// verdict copies the trace fields out of pkt before ownership moves.
func (p *Policer) verdict(k ptrace.Kind, pkt *packet.Packet) ptrace.Event {
	return ptrace.Event{
		Kind: k, Hop: p.Hop, Flow: pkt.Flow, PktID: pkt.ID,
		Size: int32(pkt.Size), DSCP: pkt.DSCP, FrameSeq: int32(pkt.FrameSeq),
	}
}

// LossFraction reports the fraction of packets dropped so far.
func (p *Policer) LossFraction() float64 {
	total := p.Passed + p.Dropped
	if total == 0 {
		return 0
	}
	return float64(p.Dropped) / float64(total)
}

// Shaper is a token bucket that delays non-conformant packets until
// they conform instead of dropping them (footnote 5 in the paper). It
// keeps a FIFO of waiting packets and releases them at their earliest
// conformance times via the simulator. Packets that can never conform
// (larger than the depth) are dropped; a bounded queue emulates the
// finite buffering of the Linux shaping router.
type Shaper struct {
	sim    *sim.Simulator
	bucket *Bucket
	mark   packet.DSCP
	next   packet.Handler

	// Pool, when set, receives packets the shaper drops (oversized or
	// queue overflow).
	Pool *packet.Pool

	// Tap, when set, receives release/drop events; released packets
	// that had to wait in the shaper queue carry Flag=1.
	Tap ptrace.Tap
	Hop ptrace.HopID

	queue    packet.Ring
	maxQueue int
	busy     bool

	Passed  int
	Delayed int
	Dropped int
}

// shaperTimer is the pointer-conversion Timer of a Shaper.
type shaperTimer Shaper

// Fire releases the head packet at its conformance time.
func (sh *shaperTimer) Fire(units.Time) { (*Shaper)(sh).releaseHead() }

// NewShaper returns a shaper with the given profile. maxQueue bounds
// the number of waiting packets; 0 means a generous default (1024).
func NewShaper(s *sim.Simulator, rate units.BitRate, depth units.ByteSize, mark packet.DSCP, next packet.Handler) *Shaper {
	return &Shaper{sim: s, bucket: NewBucket(rate, depth), mark: mark, next: next, maxQueue: 1024}
}

// SetNext redirects the shaper's output to h (topology-builder
// wiring; not for use once packets are flowing).
func (sh *Shaper) SetNext(h packet.Handler) { sh.next = h }

// SetQueueLimit bounds the shaper's waiting room.
func (sh *Shaper) SetQueueLimit(n int) {
	if n > 0 {
		sh.maxQueue = n
	}
}

// QueueLen reports the number of packets waiting in the shaper.
func (sh *Shaper) QueueLen() int { return sh.queue.Len() }

// Handle shapes pkt.
func (sh *Shaper) Handle(pkt *packet.Packet) {
	now := sh.sim.Now()
	if !sh.busy && sh.queue.Len() == 0 && sh.bucket.Conform(now, pkt.Size) {
		pkt.DSCP = sh.mark
		sh.Passed++
		if sh.Tap != nil {
			sh.Tap.Emit(sh.event(ptrace.ShaperRelease, pkt, 0))
		}
		sh.next.Handle(pkt)
		return
	}
	if int64(pkt.Size) > int64(sh.bucket.Depth()) {
		sh.Dropped++ // can never conform
		if sh.Tap != nil {
			sh.Tap.Emit(sh.event(ptrace.ShaperDrop, pkt, 0))
		}
		sh.Pool.Put(pkt)
		return
	}
	if sh.queue.Len() >= sh.maxQueue {
		sh.Dropped++
		if sh.Tap != nil {
			sh.Tap.Emit(sh.event(ptrace.ShaperDrop, pkt, 0))
		}
		sh.Pool.Put(pkt)
		return
	}
	sh.queue.Push(pkt)
	sh.Delayed++
	if !sh.busy {
		sh.scheduleNext()
	}
}

func (sh *Shaper) scheduleNext() {
	head := sh.queue.Peek()
	if head == nil {
		sh.busy = false
		return
	}
	t, ok := sh.bucket.NextConformTime(sh.sim.Now(), head.Size)
	if !ok {
		// Unreachable given the Handle guard, but keep the queue moving.
		sh.queue.Pop()
		sh.Dropped++
		if sh.Tap != nil {
			sh.Tap.Emit(sh.event(ptrace.ShaperDrop, head, 0))
		}
		sh.Pool.Put(head)
		sh.scheduleNext()
		return
	}
	sh.busy = true
	sh.sim.AtTimer(t, (*shaperTimer)(sh))
}

// releaseHead forwards the head packet once it conforms.
func (sh *Shaper) releaseHead() {
	p := sh.queue.Pop()
	if p == nil {
		sh.busy = false
		return
	}
	sh.bucket.Debit(sh.sim.Now(), p.Size)
	p.DSCP = sh.mark
	sh.Passed++
	if sh.Tap != nil {
		sh.Tap.Emit(sh.event(ptrace.ShaperRelease, p, 1))
	}
	sh.next.Handle(p)
	sh.scheduleNext()
}

// event copies the trace fields out of p before ownership moves.
func (sh *Shaper) event(k ptrace.Kind, p *packet.Packet, flag uint8) ptrace.Event {
	return ptrace.Event{
		Kind: k, Hop: sh.Hop, Flow: p.Flow, PktID: p.ID,
		Size: int32(p.Size), DSCP: p.DSCP, FrameSeq: int32(p.FrameSeq),
		QLen: int32(sh.queue.Len()), Flag: flag,
	}
}
