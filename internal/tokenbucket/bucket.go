// Package tokenbucket implements the traffic conditioning elements the
// paper's experiments revolve around: the token bucket itself, a
// dropping policer, a delaying shaper, and the RFC 2697/2698 single-
// and two-rate three-color markers used for Assured Forwarding.
//
// Token arithmetic is done in integer token-nanoseconds so that two
// runs of the same experiment produce identical conformance decisions:
// a bucket of depth B bytes filling at R bits/s holds B*8e9/R
// "credit-nanoseconds", and a packet of size S bytes costs S*8e9/R.
// Working in this space avoids float drift across millions of packets.
package tokenbucket

import (
	"fmt"

	"repro/internal/units"
)

// Bucket is a classic token bucket: tokens (bytes of credit) arrive at
// Rate up to Depth. Conform(n) answers whether n bytes may pass now and
// debits them if so. The zero value is unusable; call NewBucket.
type Bucket struct {
	rate  units.BitRate
	depth units.ByteSize

	// tokens are tracked as bytes scaled by 1e9 (i.e. byte-nanoseconds
	// of credit at 1 B/ns) to keep refill exact under integer math.
	scaled     int64 // current credit, in 1e-9 bytes
	scaledMax  int64
	lastUpdate units.Time
}

const tokenScale = 1e9

// NewBucket returns a bucket that starts full, which matches both the
// router implementations in the paper's testbed and RFC 2697/2698.
func NewBucket(rate units.BitRate, depth units.ByteSize) *Bucket {
	b := new(Bucket)
	b.Init(rate, depth)
	return b
}

// Init (re)initializes b in place to a full bucket — NewBucket over
// caller-owned storage, so six-figure fan-outs can lay their buckets
// out contiguously instead of as N scattered allocations.
func (b *Bucket) Init(rate units.BitRate, depth units.ByteSize) {
	if rate <= 0 {
		panic("tokenbucket: non-positive rate")
	}
	if depth <= 0 {
		panic("tokenbucket: non-positive depth")
	}
	*b = Bucket{rate: rate, depth: depth}
	b.scaledMax = int64(depth) * tokenScale
	b.scaled = b.scaledMax
}

// Rate reports the token arrival rate.
func (b *Bucket) Rate() units.BitRate { return b.rate }

// Depth reports the bucket depth in bytes.
func (b *Bucket) Depth() units.ByteSize { return b.depth }

// refill advances the bucket state to time now.
func (b *Bucket) refill(now units.Time) {
	if now <= b.lastUpdate {
		return
	}
	dt := now - b.lastUpdate
	b.lastUpdate = now
	// bytes/ns = rate/8e9; scaled credit gained = dt * rate/8 (in 1e-9 B).
	gain := int64(float64(dt) * float64(b.rate) / 8)
	b.scaled += gain
	if b.scaled > b.scaledMax {
		b.scaled = b.scaledMax
	}
}

// Tokens reports the whole bytes of credit available at time now.
func (b *Bucket) Tokens(now units.Time) int64 {
	b.refill(now)
	return b.scaled / tokenScale
}

// Conform reports whether n bytes conform at time now, debiting the
// bucket if they do. Packets larger than the bucket depth can never
// conform (the EF small-depth pathology the paper studies).
func (b *Bucket) Conform(now units.Time, n int) bool {
	b.refill(now)
	need := int64(n) * tokenScale
	if need > b.scaled {
		return false
	}
	b.scaled -= need
	return true
}

// Debit unconditionally removes n bytes of credit (may go negative);
// used by shapers that have already committed to sending.
func (b *Bucket) Debit(now units.Time, n int) {
	b.refill(now)
	b.scaled -= int64(n) * tokenScale
}

// NextConformTime reports the earliest time ≥ now at which n bytes
// would conform, assuming no intervening debits. If n exceeds the
// depth it reports ok=false: the packet can never conform.
func (b *Bucket) NextConformTime(now units.Time, n int) (t units.Time, ok bool) {
	if int64(n) > int64(b.depth) {
		return 0, false
	}
	b.refill(now)
	need := int64(n)*tokenScale - b.scaled
	if need <= 0 {
		return now, true
	}
	// wait = need / (rate/8) nanoseconds, rounded up.
	rateScaled := float64(b.rate) / 8 // 1e-9 B per ns
	wait := units.Time(float64(need)/rateScaled) + 1
	return now + wait, true
}

// String describes the bucket configuration.
func (b *Bucket) String() string {
	return fmt.Sprintf("bucket{r=%v b=%v}", b.rate, b.depth)
}
