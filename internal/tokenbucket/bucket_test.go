package tokenbucket

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestBucketStartsFull(t *testing.T) {
	b := NewBucket(1*units.Mbps, 3000)
	if got := b.Tokens(0); got != 3000 {
		t.Errorf("initial tokens = %d, want 3000", got)
	}
	if !b.Conform(0, 3000) {
		t.Error("full bucket rejected a depth-sized packet")
	}
	if b.Conform(0, 1) {
		t.Error("empty bucket accepted a packet")
	}
}

func TestBucketRefillExact(t *testing.T) {
	// 8 Mbps = 1 byte per microsecond.
	b := NewBucket(8*units.Mbps, 10000)
	b.Conform(0, 10000) // drain
	if got := b.Tokens(1500 * units.Microsecond); got != 1500 {
		t.Errorf("tokens after 1.5ms = %d, want 1500", got)
	}
}

func TestBucketCapsAtDepth(t *testing.T) {
	b := NewBucket(8*units.Mbps, 3000)
	if got := b.Tokens(time10s()); got != 3000 {
		t.Errorf("tokens = %d, want cap 3000", got)
	}
}

func time10s() units.Time { return 10 * units.Second }

func TestOversizedPacketNeverConforms(t *testing.T) {
	b := NewBucket(10*units.Mbps, 3000)
	if b.Conform(0, 3001) {
		t.Error("packet larger than depth conformed")
	}
	if _, ok := b.NextConformTime(0, 3001); ok {
		t.Error("NextConformTime claims an oversized packet can conform")
	}
}

func TestNextConformTime(t *testing.T) {
	b := NewBucket(8*units.Mbps, 3000) // 1 B/µs
	b.Conform(0, 3000)
	at, ok := b.NextConformTime(0, 1500)
	if !ok {
		t.Fatal("NextConformTime not ok")
	}
	want := 1500 * units.Microsecond
	if at < want || at > want+units.Microsecond {
		t.Errorf("NextConformTime = %v, want ≈%v", at, want)
	}
	// And the packet must actually conform then.
	if !b.Conform(at, 1500) {
		t.Error("packet did not conform at NextConformTime")
	}
}

func TestNextConformTimeImmediate(t *testing.T) {
	b := NewBucket(units.Mbps, 3000)
	at, ok := b.NextConformTime(5*units.Second, 1000)
	if !ok || at != 5*units.Second {
		t.Errorf("immediate conform: at=%v ok=%v", at, ok)
	}
}

func TestDebitGoesNegative(t *testing.T) {
	b := NewBucket(8*units.Mbps, 3000)
	b.Debit(0, 5000)
	if b.Conform(0, 1) {
		t.Error("negative bucket conformed")
	}
	// After enough refill it recovers: 5000 deficit + 1 byte.
	if !b.Conform(5200*units.Microsecond, 1) {
		t.Error("bucket did not recover from negative credit")
	}
}

func TestBucketRateDepthAccessors(t *testing.T) {
	b := NewBucket(2*units.Mbps, 4500)
	if b.Rate() != 2*units.Mbps || b.Depth() != 4500 {
		t.Errorf("accessors: %v %v", b.Rate(), b.Depth())
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestBucketPanicsOnBadParams(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBucket(0, 100) },
		func() { NewBucket(units.Mbps, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// TestBucketLongRunRate checks the fundamental policer property: over
// a long window, the bytes admitted by a saturated bucket converge to
// rate*time + depth.
func TestBucketLongRunRate(t *testing.T) {
	b := NewBucket(2*units.Mbps, 3000)
	var admitted int64
	now := units.Time(0)
	for i := 0; i < 200000; i++ {
		now += 100 * units.Microsecond // offered 1500B/100µs = 120 Mbps
		if b.Conform(now, 1500) {
			admitted += 1500
		}
	}
	want := int64(float64(2*units.Mbps)/8*now.Seconds()) + 3000
	diff := admitted - want
	if diff < -1500 || diff > 1500 {
		t.Errorf("admitted %d bytes, want %d ±1500", admitted, want)
	}
}

// TestBucketNeverExceedsProfile is the property-based version: for any
// arrival pattern, admitted bytes over [0,T] never exceed rate*T+depth.
func TestBucketNeverExceedsProfile(t *testing.T) {
	f := func(gaps []uint16, sizes []uint16) bool {
		if len(gaps) == 0 {
			return true
		}
		b := NewBucket(units.Mbps, 4500)
		now := units.Time(0)
		var admitted int64
		for i, g := range gaps {
			now += units.Time(g) * units.Microsecond
			size := 1
			if i < len(sizes) {
				size = int(sizes[i]%4500) + 1
			}
			if b.Conform(now, size) {
				admitted += int64(size)
			}
		}
		limit := int64(float64(units.Mbps)/8*now.Seconds()) + 4500 + 1
		return admitted <= limit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
