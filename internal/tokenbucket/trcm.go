package tokenbucket

import (
	"repro/internal/packet"
	"repro/internal/ptrace"
	"repro/internal/units"
)

// SRTCM is the Single Rate Three Color Marker of RFC 2697 (Heinanen &
// Guérin): a committed bucket (CIR, CBS) and an excess bucket (EBS)
// fed by committed-bucket overflow. Packets are green if they fit the
// committed bucket, yellow if they fit the excess bucket, red
// otherwise. Color-blind mode only, which is what an ingress marker
// for unmarked video traffic runs.
type SRTCM struct {
	cir units.BitRate

	// Committed (C) and excess (E) token counts, scaled like Bucket.
	scaledC, scaledE     int64
	scaledCBS, scaledEBS int64
	lastUpdate           units.Time
}

// NewSRTCM returns a marker with committed rate cir, committed burst
// cbs and excess burst ebs (both in bytes). Both buckets start full.
func NewSRTCM(cir units.BitRate, cbs, ebs units.ByteSize) *SRTCM {
	if cir <= 0 || cbs <= 0 || ebs < 0 {
		panic("tokenbucket: bad srTCM parameters")
	}
	m := &SRTCM{cir: cir}
	m.scaledCBS = int64(cbs) * tokenScale
	m.scaledEBS = int64(ebs) * tokenScale
	m.scaledC = m.scaledCBS
	m.scaledE = m.scaledEBS
	return m
}

func (m *SRTCM) refill(now units.Time) {
	if now <= m.lastUpdate {
		return
	}
	dt := now - m.lastUpdate
	m.lastUpdate = now
	gain := int64(float64(dt) * float64(m.cir) / 8)
	m.scaledC += gain
	if m.scaledC > m.scaledCBS {
		// Overflow of the committed bucket feeds the excess bucket.
		m.scaledE += m.scaledC - m.scaledCBS
		m.scaledC = m.scaledCBS
		if m.scaledE > m.scaledEBS {
			m.scaledE = m.scaledEBS
		}
	}
}

// Mark colors a packet of n bytes arriving at now, debiting the
// appropriate bucket per RFC 2697 §3 (color-blind).
func (m *SRTCM) Mark(now units.Time, n int) packet.Color {
	m.refill(now)
	need := int64(n) * tokenScale
	if m.scaledC >= need {
		m.scaledC -= need
		return packet.Green
	}
	if m.scaledE >= need {
		m.scaledE -= need
		return packet.Yellow
	}
	return packet.Red
}

// TRTCM is the Two Rate Three Color Marker of RFC 2698: a peak bucket
// (PIR, PBS) and a committed bucket (CIR, CBS). A packet is red if it
// violates the peak profile, yellow if it only violates the committed
// profile, green otherwise. Color-blind mode.
type TRTCM struct {
	cir, pir units.BitRate

	scaledC, scaledP     int64
	scaledCBS, scaledPBS int64
	lastUpdate           units.Time
}

// NewTRTCM returns a two-rate marker. pir must be ≥ cir (RFC 2698 §2).
func NewTRTCM(cir, pir units.BitRate, cbs, pbs units.ByteSize) *TRTCM {
	if cir <= 0 || pir < cir || cbs <= 0 || pbs <= 0 {
		panic("tokenbucket: bad trTCM parameters")
	}
	m := &TRTCM{cir: cir, pir: pir}
	m.scaledCBS = int64(cbs) * tokenScale
	m.scaledPBS = int64(pbs) * tokenScale
	m.scaledC = m.scaledCBS
	m.scaledP = m.scaledPBS
	return m
}

func (m *TRTCM) refill(now units.Time) {
	if now <= m.lastUpdate {
		return
	}
	dt := now - m.lastUpdate
	m.lastUpdate = now
	gc := int64(float64(dt) * float64(m.cir) / 8)
	gp := int64(float64(dt) * float64(m.pir) / 8)
	m.scaledC += gc
	if m.scaledC > m.scaledCBS {
		m.scaledC = m.scaledCBS
	}
	m.scaledP += gp
	if m.scaledP > m.scaledPBS {
		m.scaledP = m.scaledPBS
	}
}

// Mark colors a packet of n bytes arriving at now per RFC 2698 §3
// (color-blind).
func (m *TRTCM) Mark(now units.Time, n int) packet.Color {
	m.refill(now)
	need := int64(n) * tokenScale
	if m.scaledP < need {
		return packet.Red
	}
	if m.scaledC < need {
		m.scaledP -= need
		return packet.Yellow
	}
	m.scaledP -= need
	m.scaledC -= need
	return packet.Green
}

// ColorToDSCP maps a marker verdict to the AF class-1 drop precedence
// code points, the mapping an AF ingress would apply.
func ColorToDSCP(c packet.Color) packet.DSCP {
	switch c {
	case packet.Green:
		return packet.AF11
	case packet.Yellow:
		return packet.AF12
	default:
		return packet.AF13
	}
}

// AFMarker is a conditioning element that colors packets with a three
// color marker and re-marks their DSCP accordingly, forwarding
// everything (AF marks rather than drops — §2.1 of the paper).
type AFMarker struct {
	clock Clock
	srtcm *SRTCM
	trtcm *TRTCM
	next  packet.Handler

	// Tap, when set, receives a verdict per packet: PolicerPass for
	// green, PolicerDemote (Flag = the Color) for yellow and red.
	Tap ptrace.Tap
	Hop ptrace.HopID

	Green, Yellow, Red int
}

// NewAFMarkerSR returns an AF marker driven by an srTCM profile.
func NewAFMarkerSR(clock Clock, m *SRTCM, next packet.Handler) *AFMarker {
	return &AFMarker{clock: clock, srtcm: m, next: next}
}

// NewAFMarkerTR returns an AF marker driven by a trTCM profile.
func NewAFMarkerTR(clock Clock, m *TRTCM, next packet.Handler) *AFMarker {
	return &AFMarker{clock: clock, trtcm: m, next: next}
}

// SetNext redirects marked traffic to h (topology-builder wiring; not
// for use once packets are flowing).
func (a *AFMarker) SetNext(h packet.Handler) { a.next = h }

// Handle colors and forwards pkt.
func (a *AFMarker) Handle(pkt *packet.Packet) {
	now := a.clock.Now()
	var c packet.Color
	if a.srtcm != nil {
		c = a.srtcm.Mark(now, pkt.Size)
	} else {
		c = a.trtcm.Mark(now, pkt.Size)
	}
	pkt.Color = c
	pkt.DSCP = ColorToDSCP(c)
	switch c {
	case packet.Green:
		a.Green++
	case packet.Yellow:
		a.Yellow++
	default:
		a.Red++
	}
	if a.Tap != nil {
		k := ptrace.PolicerPass
		if c != packet.Green {
			k = ptrace.PolicerDemote
		}
		a.Tap.Emit(ptrace.Event{
			Kind: k, Hop: a.Hop, Flow: pkt.Flow, PktID: pkt.ID,
			Size: int32(pkt.Size), DSCP: pkt.DSCP, FrameSeq: int32(pkt.FrameSeq),
			Flag: uint8(c),
		})
	}
	a.next.Handle(pkt)
}
