package server

import (
	"testing"

	"repro/internal/client"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcpsim"
	"repro/internal/units"
	"repro/internal/video"
)

func TestPacedCustomMsgSize(t *testing.T) {
	s := sim.New(1)
	maxPayload := 0
	enc := tiny(t, 1.0e6)
	srv := &Paced{Sim: s, Enc: enc, Flow: 1, MsgSize: 512,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			if pl := p.Size - UDPHeader; pl > maxPayload {
				maxPayload = pl
			}
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(2))
	s.Run()
	if maxPayload > 512 {
		t.Errorf("payload %d exceeds configured message size", maxPayload)
	}
}

func TestPacedFragmentSizesSumToFrame(t *testing.T) {
	s := sim.New(1)
	sizes := map[int]int{}
	enc := tiny(t, 1.7e6)
	srv := &Paced{Sim: s, Enc: enc, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			sizes[p.FrameSeq] += p.Size - UDPHeader
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(3))
	s.Run()
	for seq, total := range sizes {
		if seq < 60 && total != enc.Frames[seq].Size {
			t.Fatalf("frame %d: fragments sum to %d, frame is %d", seq, total, enc.Frames[seq].Size)
		}
	}
}

func TestBurstLargeFrameSpansDatagrams(t *testing.T) {
	// A frame larger than MaxDatagram must still be sent completely,
	// as multiple datagrams whose fragments share the frame's fate.
	s := sim.New(1)
	clip := video.Lost()
	// Use a high rate so frames are large; scale up artificially by
	// using the rate multiplier path (frame sizes ~8.5 KB < 16280, so
	// craft an encoding with a big frame instead).
	enc := video.EncodeCBR(clip, 1.7e6)
	big := *enc
	big.Frames = append([]video.EncodedFrame(nil), enc.Frames...)
	big.Frames[0].Size = 40000 // 3 datagrams
	var got int
	srv := &Burst{Sim: s, Enc: &big, Flow: 1,
		Next: packet.HandlerFunc(func(p *packet.Packet) {
			if p.FrameSeq == 0 {
				got += p.Size - UDPHeader
			}
		})}
	srv.Start()
	s.SetHorizon(units.FromSeconds(1))
	s.Run()
	if got != 40000 {
		t.Errorf("delivered %d bytes of a 40000-byte frame", got)
	}
}

func TestWMTTCPNoThinningOnFastPath(t *testing.T) {
	// A sender whose segments are acked instantly (infinite-capacity
	// network) must never thin.
	s := sim.New(1)
	enc := video.EncodeVBR(video.Lost(), units.BitRate(video.WMVCapKbps)*units.Kbps)
	var snd *tcpsim.Sender
	snd = tcpsim.NewSender(s, 1, packet.HandlerFunc(func(p *packet.Packet) {
		ack := &packet.Packet{Flow: 1, Proto: packet.TCP, Size: tcpsim.HeaderSize,
			Ack: p.Seq + int64(p.Size-tcpsim.HeaderSize), IsAck: true}
		s.After(units.Microsecond, func() { snd.HandleAck(ack) })
	}))
	asm := &client.StreamAssembler{}
	srv := &WMTTCP{Sim: s, Enc: enc, Sender: snd, Asm: asm}
	srv.Start()
	s.SetHorizon(units.FromSeconds(enc.Clip.DurationSeconds() + 2))
	s.Run()
	if srv.FramesSent == 0 {
		t.Fatal("nothing sent")
	}
	if srv.FramesThinned != 0 {
		t.Errorf("thinned %d frames on an infinite-capacity path", srv.FramesThinned)
	}
}
